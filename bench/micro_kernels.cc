// google-benchmark micro suite: the hot kernels behind the headline
// numbers — distances, lower bounds, envelope, interval algebra, index
// build/probe and storage block/SSTable paths.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/rng.h"
#include "distance/dtw.h"
#include "distance/ed.h"
#include "distance/envelope.h"
#include "distance/lower_bounds.h"
#include "index/index_builder.h"
#include "storage/block.h"
#include "storage/sstable.h"
#include "ts/generator.h"
#include "ts/stats_oracle.h"

namespace kvmatch {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Uniform(-5, 5);
  return v;
}

void BM_EuclideanDistance(benchmark::State& state) {
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EuclideanDistance)->Arg(128)->Arg(1024)->Arg(8192);

void BM_EdEarlyAbandon(benchmark::State& state) {
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEdEarlyAbandon(a, b, 10.0));
  }
}
BENCHMARK(BM_EdEarlyAbandon)->Arg(1024)->Arg(8192);

void BM_DtwBanded(benchmark::State& state) {
  const size_t m = 512;
  const auto a = RandomSeries(m, 1);
  const auto b = RandomSeries(m, 2);
  const size_t rho = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a, b, rho));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(5)->Arg(25)->Arg(100);

void BM_Envelope(benchmark::State& state) {
  const auto q = RandomSeries(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEnvelope(q, q.size() / 20));
  }
}
BENCHMARK(BM_Envelope)->Arg(512)->Arg(8192);

void BM_LbKeogh(benchmark::State& state) {
  const auto s = RandomSeries(512, 4);
  const auto q = RandomSeries(512, 5);
  const Envelope env = BuildEnvelope(q, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbKeoghSquared(s, env, 1e18, nullptr));
  }
}
BENCHMARK(BM_LbKeogh);

void BM_IntervalIntersect(benchmark::State& state) {
  Rng rng(6);
  IntervalList a, b;
  int64_t pa = 0, pb = 0;
  for (int i = 0; i < state.range(0); ++i) {
    pa += rng.UniformInt(2, 20);
    a.AppendInterval({pa, pa + rng.UniformInt(0, 10)});
    pa = a.intervals().back().r;
    pb += rng.UniformInt(2, 20);
    b.AppendInterval({pb, pb + rng.UniformInt(0, 10)});
    pb = b.intervals().back().r;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalList::Intersect(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalIntersect)->Arg(1000)->Arg(100000);

void BM_IndexBuild(benchmark::State& state) {
  Rng rng(7);
  const TimeSeries x = GenerateUcrLike(static_cast<size_t>(state.range(0)),
                                       &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildKvIndex(x, {.window = 50}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(100000)->Arg(1000000)->Unit(
    benchmark::kMillisecond);

void BM_IndexProbe(benchmark::State& state) {
  Rng rng(8);
  const TimeSeries x = GenerateUcrLike(500'000, &rng);
  const KvIndex index = BuildKvIndex(x, {.window = 50});
  const MinMax mm = ComputeMinMax(x.values());
  double lo = mm.min;
  for (auto _ : state) {
    lo += 0.37;
    if (lo > mm.max - 1.5) lo = mm.min;
    benchmark::DoNotOptimize(index.ProbeRange(lo, lo + 1.0));
  }
}
BENCHMARK(BM_IndexProbe);

void BM_PrefixStatsWindow(benchmark::State& state) {
  Rng rng(9);
  const TimeSeries x = GenerateSynthetic(1'000'000, &rng);
  const PrefixStats ps(x);
  size_t off = 0;
  for (auto _ : state) {
    off = (off + 997) % (x.size() - 512);
    benchmark::DoNotOptimize(ps.WindowMeanStd(off, 512));
  }
}
BENCHMARK(BM_PrefixStatsWindow);

void BM_BlockBuildParse(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries.emplace_back(key, std::string(32, 'v'));
  }
  for (auto _ : state) {
    BlockBuilder builder(16);
    for (const auto& [k, v] : entries) builder.Add(k, v);
    auto block = BlockReader::Parse(builder.Finish());
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BlockBuildParse);

void BM_SstableScan(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kvm_bench.sst").string();
  {
    SstableBuilder builder(path, 4096);
    for (int i = 0; i < 50'000; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%08d", i);
      builder.Add(key, std::string(16, 'v')).ok();
    }
    builder.Finish().ok();
  }
  auto reader = SstableReader::Open(path);
  for (auto _ : state) {
    size_t count = 0;
    for (auto it = (*reader)->Scan("key00010000", "key00020000");
         it->Valid(); it->Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
  std::remove(path.c_str());
}
BENCHMARK(BM_SstableScan);

}  // namespace
}  // namespace kvmatch

BENCHMARK_MAIN();
