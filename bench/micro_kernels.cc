// google-benchmark micro suite: the hot kernels behind the headline
// numbers — distances, lower bounds, envelope, interval algebra, index
// build/probe and storage block/SSTable paths, plus the dispatch-tier
// comparison benches for the SIMD verify kernels (BM_Simd*<scalar> vs
// BM_Simd*<avx2> on the same inputs).
//
//   ./bench_micro_kernels [gbench flags] [--json OUT]
//
// --json writes {name, ns_per_op, bytes_per_s, tier} rows for tracking
// perf trajectory across PRs (BENCH_micro_kernels.json).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "distance/dtw.h"
#include "distance/ed.h"
#include "distance/envelope.h"
#include "distance/lower_bounds.h"
#include "distance/simd/kernels.h"
#include "index/index_builder.h"
#include "storage/block.h"
#include "storage/sstable.h"
#include "ts/generator.h"
#include "ts/stats_oracle.h"

namespace kvmatch {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Uniform(-5, 5);
  return v;
}

void BM_EuclideanDistance(benchmark::State& state) {
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EuclideanDistance(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EuclideanDistance)->Arg(128)->Arg(1024)->Arg(8192);

void BM_EdEarlyAbandon(benchmark::State& state) {
  const auto a = RandomSeries(static_cast<size_t>(state.range(0)), 1);
  const auto b = RandomSeries(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredEdEarlyAbandon(a, b, 10.0));
  }
}
BENCHMARK(BM_EdEarlyAbandon)->Arg(1024)->Arg(8192);

void BM_DtwBanded(benchmark::State& state) {
  const size_t m = 512;
  const auto a = RandomSeries(m, 1);
  const auto b = RandomSeries(m, 2);
  const size_t rho = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a, b, rho));
  }
}
BENCHMARK(BM_DtwBanded)->Arg(5)->Arg(25)->Arg(100);

void BM_Envelope(benchmark::State& state) {
  const auto q = RandomSeries(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEnvelope(q, q.size() / 20));
  }
}
BENCHMARK(BM_Envelope)->Arg(512)->Arg(8192);

void BM_LbKeogh(benchmark::State& state) {
  const auto s = RandomSeries(512, 4);
  const auto q = RandomSeries(512, 5);
  const Envelope env = BuildEnvelope(q, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LbKeoghSquared(s, env, 1e18, nullptr));
  }
}
BENCHMARK(BM_LbKeogh);

void BM_IntervalIntersect(benchmark::State& state) {
  Rng rng(6);
  IntervalList a, b;
  int64_t pa = 0, pb = 0;
  for (int i = 0; i < state.range(0); ++i) {
    pa += rng.UniformInt(2, 20);
    a.AppendInterval({pa, pa + rng.UniformInt(0, 10)});
    pa = a.intervals().back().r;
    pb += rng.UniformInt(2, 20);
    b.AppendInterval({pb, pb + rng.UniformInt(0, 10)});
    pb = b.intervals().back().r;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntervalList::Intersect(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalIntersect)->Arg(1000)->Arg(100000);

void BM_IndexBuild(benchmark::State& state) {
  Rng rng(7);
  const TimeSeries x = GenerateUcrLike(static_cast<size_t>(state.range(0)),
                                       &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildKvIndex(x, {.window = 50}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexBuild)->Arg(100000)->Arg(1000000)->Unit(
    benchmark::kMillisecond);

void BM_IndexProbe(benchmark::State& state) {
  Rng rng(8);
  const TimeSeries x = GenerateUcrLike(500'000, &rng);
  const KvIndex index = BuildKvIndex(x, {.window = 50});
  const MinMax mm = ComputeMinMax(x.values());
  double lo = mm.min;
  for (auto _ : state) {
    lo += 0.37;
    if (lo > mm.max - 1.5) lo = mm.min;
    benchmark::DoNotOptimize(index.ProbeRange(lo, lo + 1.0));
  }
}
BENCHMARK(BM_IndexProbe);

void BM_PrefixStatsWindow(benchmark::State& state) {
  Rng rng(9);
  const TimeSeries x = GenerateSynthetic(1'000'000, &rng);
  const PrefixStats ps(x);
  size_t off = 0;
  for (auto _ : state) {
    off = (off + 997) % (x.size() - 512);
    benchmark::DoNotOptimize(ps.WindowMeanStd(off, 512));
  }
}
BENCHMARK(BM_PrefixStatsWindow);

void BM_BlockBuildParse(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries.emplace_back(key, std::string(32, 'v'));
  }
  for (auto _ : state) {
    BlockBuilder builder(16);
    for (const auto& [k, v] : entries) builder.Add(k, v);
    auto block = BlockReader::Parse(builder.Finish());
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BlockBuildParse);

void BM_SstableScan(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "kvm_bench.sst").string();
  {
    SstableBuilder builder(path, 4096);
    for (int i = 0; i < 50'000; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%08d", i);
      builder.Add(key, std::string(16, 'v')).ok();
    }
    builder.Finish().ok();
  }
  auto reader = SstableReader::Open(path);
  for (auto _ : state) {
    size_t count = 0;
    for (auto it = (*reader)->Scan("key00010000", "key00020000");
         it->Valid(); it->Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
  std::remove(path.c_str());
}
BENCHMARK(BM_SstableScan);

// ---- Dispatch-tier comparison benches for the SIMD verify kernels ----
//
// Registered once per available tier so one run shows the scalar baseline
// and the AVX2 speedup side by side on identical inputs. Thresholds are
// +inf: these measure full-kernel throughput, not abandon luck.

constexpr double kNoAbandon = std::numeric_limits<double>::infinity();

void RegisterSimdKernelBenches() {
  struct TierEntry {
    const char* name;
    const simd::Kernels* ker;
  };
  std::vector<TierEntry> tiers = {{"scalar", &simd::ScalarKernels()}};
  if (const simd::Kernels* avx2 = simd::Avx2KernelsOrNull()) {
    tiers.push_back({"avx2", avx2});
  }
  const std::vector<size_t> lengths = {256, 1024, 8192};
  for (const TierEntry& tier : tiers) {
    const simd::Kernels* ker = tier.ker;
    const std::string suffix = std::string("<") + tier.name + ">/";
    for (size_t n : lengths) {
      benchmark::RegisterBenchmark(
          ("BM_SimdSquaredEd" + suffix + std::to_string(n)).c_str(),
          [ker, n](benchmark::State& state) {
            const auto a = RandomSeries(n, 1);
            const auto b = RandomSeries(n, 2);
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  ker->squared_ed(a.data(), b.data(), n, kNoAbandon));
            }
            state.SetBytesProcessed(
                static_cast<int64_t>(state.iterations() * n * 2 *
                                     sizeof(double)));
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdEdZnormOrdered" + suffix + std::to_string(n)).c_str(),
          [ker, n](benchmark::State& state) {
            const auto s = RandomSeries(n, 1);
            const auto q = RandomSeries(n, 2);
            const auto order = SortedAbsOrder(q);
            std::vector<double> q_ordered(n);
            for (size_t i = 0; i < n; ++i) {
              q_ordered[i] = q[static_cast<size_t>(order[i])];
            }
            for (auto _ : state) {
              benchmark::DoNotOptimize(ker->squared_ed_znorm_ordered(
                  s.data(), order.data(), q_ordered.data(), n, 0.1, 0.9,
                  kNoAbandon));
            }
            state.SetBytesProcessed(
                static_cast<int64_t>(state.iterations() * n * 2 *
                                     sizeof(double)));
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdL1" + suffix + std::to_string(n)).c_str(),
          [ker, n](benchmark::State& state) {
            const auto a = RandomSeries(n, 1);
            const auto b = RandomSeries(n, 2);
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  ker->l1(a.data(), b.data(), n, kNoAbandon));
            }
            state.SetBytesProcessed(
                static_cast<int64_t>(state.iterations() * n * 2 *
                                     sizeof(double)));
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdLbKeogh" + suffix + std::to_string(n)).c_str(),
          [ker, n](benchmark::State& state) {
            const auto s = RandomSeries(n, 4);
            const auto q = RandomSeries(n, 5);
            const Envelope env = BuildEnvelope(q, n / 20);
            for (auto _ : state) {
              benchmark::DoNotOptimize(
                  ker->lb_keogh(s.data(), env.lower.data(), env.upper.data(),
                                n, kNoAbandon, nullptr));
            }
            state.SetBytesProcessed(
                static_cast<int64_t>(state.iterations() * n * 3 *
                                     sizeof(double)));
          });
      benchmark::RegisterBenchmark(
          ("BM_SimdRollingMeanStd" + suffix + std::to_string(n)).c_str(),
          [ker, n](benchmark::State& state) {
            const size_t m = 256;
            const PrefixStats ps(
                std::span<const double>(RandomSeries(n + m, 6)));
            std::vector<double> means(n), stds(n);
            for (auto _ : state) {
              ker->rolling_mean_std(ps.prefix_sums().data(),
                                    ps.prefix_squares().data(), n, m,
                                    means.data(), stds.data());
              benchmark::DoNotOptimize(means.data());
              benchmark::DoNotOptimize(stds.data());
            }
            state.SetBytesProcessed(
                static_cast<int64_t>(state.iterations() * n * 4 *
                                     sizeof(double)));
          });
    }
  }
}

// ---- --json OUT: machine-readable results ----

struct JsonRow {
  std::string name;
  std::string tier;
  double ns_per_op = 0.0;
  double bytes_per_s = 0.0;
};

/// Console reporter that also collects every run, so the human-readable
/// table still prints while --json captures machine-readable rows.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      JsonRow row;
      row.name = run.benchmark_name();
      if (row.name.find("<scalar>") != std::string::npos) {
        row.tier = "scalar";
      } else if (row.name.find("<avx2>") != std::string::npos) {
        row.tier = "avx2";
      } else {
        // Non-tiered benches run whatever the process-wide dispatch chose.
        row.tier = simd::TierName(simd::ActiveTier());
      }
      if (run.iterations > 0) {
        row.ns_per_op =
            run.real_accumulated_time / static_cast<double>(run.iterations) *
            1e9;
      }
      if (auto it = run.counters.find("bytes_per_second");
          it != run.counters.end()) {
        row.bytes_per_s = it->second.value;
      }
      rows_.push_back(std::move(row));
    }
  }

  bool Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_kernels\",\n"
                 "  \"dispatch_tier\": \"%s\",\n  \"results\": [\n",
                 simd::TierName(simd::ActiveTier()));
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"tier\": \"%s\", "
                   "\"ns_per_op\": %.3f, \"bytes_per_s\": %.0f}%s\n",
                   rows_[i].name.c_str(), rows_[i].tier.c_str(),
                   rows_[i].ns_per_op, rows_[i].bytes_per_s,
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<JsonRow> rows_;
};

}  // namespace
}  // namespace kvmatch

int main(int argc, char** argv) {
  // Peel off --json OUT before google-benchmark sees the argument list.
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);
  int args_count = static_cast<int>(args.size()) - 1;

  benchmark::Initialize(&args_count, args.data());
  kvmatch::RegisterSimdKernelBenches();
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    kvmatch::JsonCollector collector;
    benchmark::RunSpecifiedBenchmarks(&collector);
    if (!collector.Write(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  benchmark::Shutdown();
  return 0;
}
