// Table VII: ratio of KV-match to FRM candidate counts — per window
// (KV-match CS_i vs FRM range-query hits) and final (intersection vs
// union) — across window sizes w and query lengths |Q|.
//
//   ./table7_frm_ratio [--n <len>] [--runs <k>] [--seed <s>] [--quick]
#include "bench_common.h"

#include "baseline/general_match.h"
#include "match/kv_match.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.n = std::min<size_t>(flags.n, flags.quick ? 100'000 : 500'000);
  std::printf("Table VII reproduction: KV-match vs FRM candidates, n=%zu, "
              "%d runs\n\n", flags.n, flags.runs);
  const Workload w = Workload::Make(flags.n, flags.seed);

  const std::vector<size_t> windows = flags.quick
                                          ? std::vector<size_t>{50, 100}
                                          : std::vector<size_t>{50, 100, 200,
                                                                400};
  std::vector<size_t> lengths = flags.quick
                                    ? std::vector<size_t>{512, 1024}
                                    : std::vector<size_t>{512, 1024, 2048,
                                                          4096, 8192};
  const std::vector<SelectivityLevel> levels = {
      {"10^-6", 1e-3}, {"10^-5", 1e-2}, {"10^-4", 5e-2}};

  TablePrinter table({"Selectivity", "|Q|", "w", "per-window ratio",
                      "final ratio"});
  Rng rng(flags.seed + 1);
  // Build each w's KV-index and FRM tree once; one tree lives at a time to
  // bound memory.
  for (size_t win : windows) {
    const KvIndex index = BuildKvIndex(w.series, {.window = win});
    GeneralMatch frm(w.series, w.prefix,
                     {.window = win, .paa_dims = 4, .stride = 1});
    for (const auto& level : levels) {
      if (flags.quick && level.fraction > 1e-2) continue;
      for (size_t m : lengths) {
        double ratio_window_sum = 0, ratio_final_sum = 0;
        int counted = 0;
        for (int run = 0; run < flags.runs; ++run) {
          const auto q = MakeQuery(w, m, &rng, 0.05);
          QueryParams params{QueryType::kRsmEd, 0.0, 1.0, 0.0, 0};
          params.epsilon = CalibrateOnPrefix(w, q, params, level.fraction);

          // KV-match per-window candidates: probe each window alone.
          const size_t p = m / win;
          std::vector<QuerySegment> segments;
          for (size_t i = 0; i < p; ++i) {
            segments.push_back({&index, i * win, win});
          }
          const auto qwindows = ComputeQueryWindows(q, win, params);
          double kv_per_window = 0;
          for (const auto& qw : qwindows) {
            auto is = index.ProbeRange(qw.lr, qw.ur);
            if (!is.ok()) return 1;
            kv_per_window += static_cast<double>(is->num_positions());
          }
          kv_per_window /= static_cast<double>(p);
          MatchStats kv_stats;
          auto cs = ComputeCandidateSet(w.series, q, params, segments,
                                        &kv_stats);
          if (!cs.ok()) return 1;

          RtreeMatchStats frm_stats;
          frm.Match(q, params.epsilon, &frm_stats);
          double frm_per_window = 0;
          for (uint64_t c : frm_stats.per_window_candidates) {
            frm_per_window += static_cast<double>(c);
          }
          frm_per_window /=
              static_cast<double>(frm_stats.per_window_candidates.size());

          if (frm_per_window > 0 && frm_stats.candidate_positions > 0) {
            ratio_window_sum += kv_per_window / frm_per_window;
            ratio_final_sum +=
                static_cast<double>(kv_stats.candidate_positions) /
                static_cast<double>(frm_stats.candidate_positions);
            ++counted;
          }
        }
        if (counted == 0) continue;
        table.AddRow({level.paper_label, std::to_string(m),
                      std::to_string(win),
                      TablePrinter::Fmt(ratio_window_sum / counted, 2),
                      TablePrinter::Fmt(ratio_final_sum / counted, 4)});
      }
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table VII): per-window, KV-match generates\n"
      "MORE candidates than FRM (ratio > 1, growing for small w / large\n"
      "|Q|), but the final intersected set is far SMALLER than FRM's\n"
      "union (ratio << 1).\n");
  return 0;
}
