// Fig. 8: index size and build time vs data length — KVM-DP (all five
// KV-indexes) vs DMatch (R-tree), with the raw data size for reference.
//
// Paper sweeps 10⁶..10⁹ on a cluster; default here is 10⁵..4·10⁶
// (--n raises the top point).
//
//   ./fig8_size_buildtime [--n <len>] [--seed <s>] [--quick]
#include "bench_common.h"

#include "baseline/dmatch.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  std::vector<size_t> lengths = {100'000, 400'000, 1'000'000, 4'000'000};
  if (flags.quick) {
    lengths = {100'000, 400'000};
  } else if (flags.n > lengths.back()) {
    lengths.push_back(flags.n);
  }

  std::printf("Fig. 8 reproduction: index size & build time vs data "
              "length\n\n");
  TablePrinter table({"Data length", "Data (MB)", "KVM-DP size (MB)",
                      "KVM-DP build (s)", "DMatch size (MB)",
                      "DMatch build (s)"});
  for (size_t n : lengths) {
    const Workload w = Workload::Make(n, flags.seed);
    const double data_mb = static_cast<double>(n * sizeof(double)) / 1e6;

    const DpStack stack(w.series);
    const double kvm_mb = static_cast<double>(stack.TotalBytes()) / 1e6;

    Stopwatch sw;
    const DMatch dmatch(w.series, w.prefix, {.window = 64, .paa_dims = 4});
    const double dm_s = sw.Seconds();
    const double dm_mb = static_cast<double>(dmatch.IndexBytes()) / 1e6;

    table.AddRow({std::to_string(n), TablePrinter::Fmt(data_mb, 1),
                  TablePrinter::Fmt(kvm_mb, 2),
                  TablePrinter::Fmt(stack.build_seconds, 2),
                  TablePrinter::Fmt(dm_mb, 2), TablePrinter::Fmt(dm_s, 2)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 8): both index families are a small\n"
      "fraction of the data and grow linearly; KV-index builds are faster\n"
      "than the R-tree baseline (O(n) streaming vs sort/tile + tree).\n");
  return 0;
}
