// Fig. 3: motif-pair statistics — for the top motif (closest normalized
// pair) of each dataset, report ΔMean = |µX - µY| / (max - min) and
// ΔStd = σX / σY. The paper's point: even unconstrained motifs have very
// close means and stds, so cNSM with small (α, β) would find them.
//
//   ./fig3_motif_stats [--seed <s>] [--quick]
#include <cmath>

#include "bench_common.h"
#include "distance/ed.h"

using namespace kvmatch;

namespace {

// Brute-force top motif over a coarse offset grid (exact motif discovery
// is out of scope; the statistic of interest is the winning pair's
// mean/std agreement, which the grid preserves).
struct Motif {
  size_t a = 0, b = 0;
  double dist = 1e300;
};

Motif FindMotif(const TimeSeries& x, size_t m, size_t stride) {
  const PrefixStats ps(x);
  // Motif convention: skip near-constant windows, whose normalization
  // amplifies noise into spurious "closest pairs".
  const double global_std = ComputeMeanStd(x.values()).std;
  std::vector<size_t> offsets;
  for (size_t off = 0; off + m <= x.size(); off += stride) {
    if (ps.WindowStd(off, m) >= 0.1 * global_std) offsets.push_back(off);
  }
  std::vector<std::vector<double>> normalized(offsets.size());
  for (size_t i = 0; i < offsets.size(); ++i) {
    normalized[i] = ZNormalize(x.Subsequence(offsets[i], m));
  }
  Motif best;
  for (size_t i = 0; i < offsets.size(); ++i) {
    for (size_t j = i + 1; j < offsets.size(); ++j) {
      if (offsets[j] - offsets[i] < m) continue;  // trivial-match exclusion
      const double d_sq = SquaredEdEarlyAbandon(normalized[i], normalized[j],
                                                best.dist * best.dist);
      if (d_sq < best.dist * best.dist) {
        best = {offsets[i], offsets[j], std::sqrt(d_sq)};
      }
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t n = flags.quick ? 20'000 : 60'000;
  const size_t m = 256;
  const size_t stride = 16;

  std::printf("Fig. 3 reproduction: motif-pair mean/std agreement "
              "(n=%zu per dataset, |motif|=%zu)\n\n", n, m);

  struct Dataset {
    const char* name;
    TimeSeries series;
  };
  // Domain-shaped datasets mirroring the paper's Fig. 3 sources (Power,
  // Temperature, Commute, ECG, ...): strongly repeated structure at a
  // consistent level, which is what gives motif pairs their mean/std
  // agreement.
  Rng rng(flags.seed);
  std::vector<Dataset> datasets;
  {
    // Power-like: daily cycle + weekday amplitude + noise.
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      const double day = std::sin(2.0 * M_PI * static_cast<double>(i) / 960.0);
      const double week =
          1.0 + 0.15 * std::sin(2.0 * M_PI * static_cast<double>(i) / 6720.0);
      v[i] = 50.0 + 20.0 * week * day + rng.Gaussian(0.0, 1.0);
    }
    datasets.push_back({"Power-like", TimeSeries(std::move(v))});
  }
  {
    // Temperature-like: slow seasonal drift + daily cycle.
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      const double season =
          2.0 * std::sin(2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(n));
      const double day = std::sin(2.0 * M_PI * static_cast<double>(i) / 480.0);
      v[i] = 15.0 + season + 5.0 * day + rng.Gaussian(0.0, 0.4);
    }
    datasets.push_back({"Temp-like", TimeSeries(std::move(v))});
  }
  {
    // Commute-like: quiet baseline with rush-hour bursts.
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      const double phase =
          std::fmod(static_cast<double>(i), 1200.0) / 1200.0;
      const double rush =
          std::exp(-120.0 * (phase - 0.33) * (phase - 0.33)) +
          0.8 * std::exp(-120.0 * (phase - 0.71) * (phase - 0.71));
      v[i] = 10.0 + 25.0 * rush + rng.Gaussian(0.0, 0.8);
    }
    datasets.push_back({"Commute-like", TimeSeries(std::move(v))});
  }
  {
    SyntheticConfig cfg;
    cfg.sine_amp_lo = 1.0;
    cfg.sine_amp_hi = 3.0;
    datasets.push_back({"Sine-heavy", GenerateSynthetic(n, &rng, cfg)});
  }
  {
    // ECG-like: periodic spikes with drifting baseline.
    std::vector<double> v(n);
    double baseline = 0.0;
    for (size_t i = 0; i < n; ++i) {
      baseline += rng.Gaussian(0.0, 0.01);
      const double phase = std::fmod(static_cast<double>(i), 180.0) / 180.0;
      v[i] = baseline + 3.0 * std::exp(-400.0 * (phase - 0.3) * (phase - 0.3)) -
             1.0 * std::exp(-200.0 * (phase - 0.45) * (phase - 0.45)) +
             rng.Gaussian(0.0, 0.05);
    }
    datasets.push_back({"ECG-like", TimeSeries(std::move(v))});
  }

  TablePrinter table({"Dataset", "motif dist", "dMean (rel)", "dStd ratio"});
  for (const auto& ds : datasets) {
    const Motif motif = FindMotif(ds.series, m, stride);
    const MeanStd ms_a = ComputeMeanStd(ds.series.Subsequence(motif.a, m));
    const MeanStd ms_b = ComputeMeanStd(ds.series.Subsequence(motif.b, m));
    const MinMax mm = ComputeMinMax(ds.series.values());
    const double d_mean =
        std::fabs(ms_a.mean - ms_b.mean) / (mm.max - mm.min);
    const double d_std = ms_b.std > 1e-12 ? ms_a.std / ms_b.std : 0.0;
    table.AddRow({ds.name, TablePrinter::Fmt(motif.dist, 3),
                  TablePrinter::Fmt(d_mean, 4),
                  TablePrinter::Fmt(d_std, 3)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 3): ΔMean is a few percent or less and\n"
      "ΔStd is close to 1 — motif pairs satisfy tight cNSM constraints\n"
      "even though none were imposed, so cNSM queries can find them.\n");
  return 0;
}
