// Table VIII: influence of window size w on KV-index size and build time,
// plus a γ (merge-threshold) ablation — the design choice DESIGN.md calls
// out for the row-merge step.
//
//   ./table8_window_size [--n <len>] [--seed <s>] [--quick]
#include "bench_common.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.quick) flags.n = std::min<size_t>(flags.n, 500'000);
  std::printf("Table VIII reproduction: index size & build time vs w, "
              "n=%zu\n\n", flags.n);
  const Workload w = Workload::Make(flags.n, flags.seed);

  TablePrinter table({"w", "Size (MB)", "Building time (s)", "#rows"});
  for (size_t win : {25u, 50u, 100u, 200u, 400u}) {
    Stopwatch sw;
    const KvIndex index = BuildKvIndex(w.series, {.window = win});
    const double secs = sw.Seconds();
    table.AddRow({std::to_string(win),
                  TablePrinter::Fmt(
                      static_cast<double>(index.EncodedSizeBytes()) / 1e6, 3),
                  TablePrinter::Fmt(secs, 2),
                  std::to_string(index.num_rows())});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table VIII): both size and build time\n"
      "decrease as w grows (smoother window means -> fewer intervals).\n");

  // ---- Ablation: merge threshold γ at w = 50. ----
  std::printf("\nAblation: row-merge threshold gamma (w=50)\n");
  TablePrinter ablation({"gamma", "#rows", "Size (MB)",
                         "avg scan rows for 1-wide probe"});
  for (double gamma : {0.0, 0.4, 0.8, 0.95}) {
    const KvIndex index = BuildKvIndex(
        w.series,
        {.window = 50, .width = 0.5, .merge_threshold = gamma});
    // Probe cost proxy: rows fetched for 200 random 1.0-wide mean ranges.
    Rng rng(flags.seed + 2);
    const MinMax mm = ComputeMinMax(w.series.values());
    double rows_sum = 0;
    for (int t = 0; t < 200; ++t) {
      const double lr = rng.Uniform(mm.min, mm.max - 1.0);
      ProbeStats stats;
      auto is = index.ProbeRange(lr, lr + 1.0, &stats);
      if (!is.ok()) return 1;
      rows_sum += static_cast<double>(stats.rows_fetched);
    }
    ablation.AddRow({TablePrinter::Fmt(gamma, 2),
                     std::to_string(index.num_rows()),
                     TablePrinter::Fmt(
                         static_cast<double>(index.EncodedSizeBytes()) / 1e6,
                         3),
                     TablePrinter::Fmt(rows_sum / 200.0, 1)});
  }
  ablation.Print();
  std::printf("\nLarger gamma merges more aggressively: fewer, fatter rows "
              "and fewer rows per scan,\nat the cost of more negative "
              "candidates per row (bounded by the row-width cap).\n");
  return 0;
}
