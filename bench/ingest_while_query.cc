// Query latency under a live ingest stream: the cost of the catalog's
// online write path (epoch builds, WriteBatch commits, retired-epoch
// cleanup) as seen by concurrent readers.
//
// Two phases over the same catalog and query batch:
//   1. baseline — queries only;
//   2. contended — the same queries while a writer thread streams chunked
//      AppendSeries calls into one series (each append installs a new
//      epoch) and periodically ReplaceSeries to force full rebuilds.
// Reported per phase: aggregate QPS and mean/p99 latency, plus the
// ingest-side throughput (points/s, epochs installed) and the mean commit
// latency of appends vs replaces. The interesting numbers are the p99
// delta — how much an epoch flip costs a reader — and the append/replace
// latency gap: with epoch delta-commits an append writes only the grown
// tail chunks (O(appended)), so it should stay flat as the series grows
// while a replace pays the full O(n) rewrite.
//
// Also reported, from the StatsRegistry the catalog feeds: the per-commit
// span breakdown (journal / data / index / header / flip wall time) and
// the write amplification (encoded bytes committed per raw point byte),
// and — last — an ingest-path A/B of Catalog::Options::instrument_storage
// off vs on, the overhead of the per-op storage instrumentation.
//
//   ./bench_ingest_while_query [--n <points per series>] [--runs <mult>]
//                              [--seed <s>] [--quick]
#include "bench_common.h"

#include <atomic>
#include <future>
#include <thread>

#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"

using namespace kvmatch;

namespace {

struct PhaseResult {
  double seconds = 0.0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  size_t queries = 0;
};

PhaseResult RunPhase(QueryService* service,
                     const std::vector<QueryRequest>& requests, int rounds) {
  service->ResetStats();
  Stopwatch sw;
  size_t ok = 0;
  for (int r = 0; r < rounds; ++r) {
    auto futures = service->SubmitBatch(requests);
    for (auto& f : futures) {
      if (f.get().status.ok()) ++ok;
    }
  }
  PhaseResult out;
  out.seconds = sw.Seconds();
  out.queries = ok;
  const ServiceStatsSnapshot snap = service->Stats();
  out.mean_ms = snap.latency.mean_ms;
  out.p99_ms = snap.latency.p99_ms;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  size_t per_series = flags.n == 2'000'000 ? 200'000 : flags.n;
  size_t batch = 48 * static_cast<size_t>(std::max(1, flags.runs));
  int rounds = 4;
  size_t append_chunk = 20'000;
  if (flags.quick) {
    per_series = 50'000;
    batch = 16;
    rounds = 2;
    append_chunk = 10'000;
  }
  const size_t m = 256;
  const size_t kQuerySeries = 4;

  std::printf("ingest-while-query: %zu query series x %zu points, |Q|=%zu, "
              "%zu queries x %d rounds, append chunk %zu\n\n",
              kQuerySeries, per_series, m, batch, rounds, append_chunk);

  MemKvStore store;
  Catalog catalog(&store);
  std::vector<TimeSeries> references;
  for (size_t i = 0; i < kQuerySeries; ++i) {
    Rng rng(flags.seed + i);
    TimeSeries x = GenerateUcrLike(per_series, &rng);
    references.push_back(x);
    if (!catalog.CreateSeries("q" + std::to_string(i), std::move(x)).ok()) {
      std::fprintf(stderr, "create failed\n");
      return 1;
    }
  }
  // The series the writer hammers; queries touch it too, so epoch flips
  // land on the hot path instead of a cold bystander.
  {
    Rng rng(flags.seed + 500);
    if (!catalog.CreateSeries("hot", GenerateUcrLike(per_series, &rng))
             .ok()) {
      std::fprintf(stderr, "create failed\n");
      return 1;
    }
  }

  Rng rng(flags.seed + 100);
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < batch; ++i) {
    const size_t series = i % (kQuerySeries + 1);
    QueryRequest req;
    const bool hot = series == kQuerySeries;
    req.series = hot ? "hot" : "q" + std::to_string(series);
    const auto& ref = references[hot ? 0 : series];
    const size_t qoff = (1237 * i) % (per_series - m);
    req.query = ExtractQuery(ref, qoff, m, 0.05, &rng);
    req.params.type = i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
    req.params.epsilon = 3.0;
    req.params.alpha = 1.5;
    req.params.beta = 3.0;
    requests.push_back(std::move(req));
  }

  QueryService::Options sopts;
  sopts.num_threads = 4;
  sopts.max_queue = 4 * batch;
  QueryService service(&catalog, sopts);
  catalog.SetStatsRegistry(service.stats_registry());

  const PhaseResult baseline = RunPhase(&service, requests, rounds);

  // Phase 2: identical query load with a live writer.
  std::atomic<bool> stop{false};
  std::atomic<size_t> points_ingested{0};
  std::atomic<size_t> epochs{0};
  std::atomic<double> append_ms_total{0.0};
  std::atomic<size_t> append_count{0};
  std::atomic<double> replace_ms_total{0.0};
  std::atomic<size_t> replace_count{0};
  std::thread writer([&] {
    Rng wrng(flags.seed + 900);
    size_t appends = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const TimeSeries chunk = GenerateUcrLike(append_chunk, &wrng);
      Status st;
      if (++appends % 8 == 0) {
        // Periodic wholesale replace: the worst-case write (full rebuild
        // into a fresh data generation). Generated outside the timer so
        // the commit latencies compare writes, not data generation.
        TimeSeries fresh = GenerateUcrLike(per_series, &wrng);
        Stopwatch commit_sw;
        st = catalog.ReplaceSeries("hot", std::move(fresh));
        if (st.ok()) {
          points_ingested += per_series;
          replace_ms_total.store(replace_ms_total.load() +
                                 commit_sw.Seconds() * 1e3);
          replace_count += 1;
        }
      } else {
        // Delta commit: only the grown tail chunks + header + index.
        Stopwatch commit_sw;
        st = catalog.AppendSeries("hot", chunk.values());
        if (st.ok()) {
          points_ingested += append_chunk;
          append_ms_total.store(append_ms_total.load() +
                                commit_sw.Seconds() * 1e3);
          append_count += 1;
        }
      }
      if (!st.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
        return;
      }
      epochs += 1;
    }
  });
  const PhaseResult contended = RunPhase(&service, requests, rounds);
  stop.store(true);
  writer.join();
  const double ingest_pps =
      contended.seconds > 0.0
          ? static_cast<double>(points_ingested.load()) / contended.seconds
          : 0.0;

  TablePrinter table({"Phase", "Queries", "Wall (s)", "QPS", "Mean (ms)",
                      "p99 (ms)"});
  table.AddRow({"query only", TablePrinter::FmtInt(baseline.queries),
                TablePrinter::Fmt(baseline.seconds, 2),
                TablePrinter::Fmt(baseline.queries / baseline.seconds, 1),
                TablePrinter::Fmt(baseline.mean_ms, 2),
                TablePrinter::Fmt(baseline.p99_ms, 2)});
  table.AddRow({"with ingest", TablePrinter::FmtInt(contended.queries),
                TablePrinter::Fmt(contended.seconds, 2),
                TablePrinter::Fmt(contended.queries / contended.seconds, 1),
                TablePrinter::Fmt(contended.mean_ms, 2),
                TablePrinter::Fmt(contended.p99_ms, 2)});
  table.Print();
  std::printf("\ningest stream: %zu epochs installed, %.0f points/s; "
              "p99 %.2f -> %.2f ms (%+.1f%%)\n",
              epochs.load(), ingest_pps, baseline.p99_ms, contended.p99_ms,
              baseline.p99_ms > 0.0
                  ? 100.0 * (contended.p99_ms - baseline.p99_ms) /
                        baseline.p99_ms
                  : 0.0);
  if (append_count.load() > 0) {
    const double append_mean =
        append_ms_total.load() / static_cast<double>(append_count.load());
    std::printf("delta commits: %zu appends, mean %.2f ms "
                "(%zu-point tail into a %zu+-point series)",
                append_count.load(), append_mean, append_chunk, per_series);
    if (replace_count.load() > 0) {
      std::printf("; %zu replaces, mean %.2f ms (full rewrite)",
                  replace_count.load(),
                  replace_ms_total.load() /
                      static_cast<double>(replace_count.load()));
    }
    std::printf("\n");
  }

  // Commit span breakdown, from the registry the catalog fed during the
  // contended phase (RunPhase reset it at the phase boundary).
  const ServiceStatsSnapshot snap = service.Stats();
  const uint64_t commits =
      snap.commits_create + snap.commits_append + snap.commits_replace;
  if (commits > 0) {
    const double stage_total = snap.commit_journal_ms + snap.commit_data_ms +
                               snap.commit_index_ms + snap.commit_header_ms +
                               snap.commit_flip_ms;
    std::printf("\ncommit spans (%llu commits: %llu append, %llu replace):\n",
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(snap.commits_append),
                static_cast<unsigned long long>(snap.commits_replace));
    TablePrinter spans({"Stage", "Total (ms)", "Mean (ms)", "Share"});
    const auto add_stage = [&](const char* name, double total) {
      spans.AddRow({name, TablePrinter::Fmt(total, 1),
                    TablePrinter::Fmt(total / commits, 3),
                    TablePrinter::Fmt(
                        stage_total > 0.0 ? 100.0 * total / stage_total : 0.0,
                        1) + "%"});
    };
    add_stage("journal", snap.commit_journal_ms);
    add_stage("data", snap.commit_data_ms);
    add_stage("index", snap.commit_index_ms);
    add_stage("header", snap.commit_header_ms);
    add_stage("flip", snap.commit_flip_ms);
    spans.Print();
    const uint64_t raw_bytes = 8ull * points_ingested.load();
    if (raw_bytes > 0) {
      std::printf("write amplification: %.2fx (%llu committed bytes / "
                  "%llu raw point bytes; %llu chunk rows, %llu index rows)\n",
                  static_cast<double>(snap.commit_bytes) / raw_bytes,
                  static_cast<unsigned long long>(snap.commit_bytes),
                  static_cast<unsigned long long>(raw_bytes),
                  static_cast<unsigned long long>(snap.commit_chunk_rows),
                  static_cast<unsigned long long>(snap.commit_index_rows));
    }
  }

  // Instrumentation overhead A/B: the same append stream into a fresh
  // catalog, storage instrumentation off vs on. Chunks are pre-generated
  // so the loop times only the write path.
  const size_t overhead_appends = flags.quick ? 6 : 16;
  const size_t overhead_rounds = flags.quick ? 3 : 5;
  double pps[2] = {0.0, 0.0};
  const auto run_once = [&](bool instrumented) -> double {
    MemKvStore plain;
    Catalog::Options copts;
    copts.instrument_storage = instrumented;
    Catalog bench_catalog(&plain, copts);
    Rng brng(flags.seed + 1234);  // same seed both ways: identical bytes
    if (!bench_catalog
             .CreateSeries("w", GenerateUcrLike(per_series, &brng))
             .ok()) {
      return -1.0;
    }
    std::vector<TimeSeries> chunks;
    for (size_t i = 0; i <= overhead_appends; ++i) {
      chunks.push_back(GenerateUcrLike(append_chunk, &brng));
    }
    // One untimed warmup append so allocator/page-cache warmup lands
    // outside the measurement.
    if (!bench_catalog.AppendSeries("w", chunks.back().values()).ok()) {
      return -1.0;
    }
    chunks.pop_back();
    Stopwatch sw;
    for (const auto& chunk : chunks) {
      if (!bench_catalog.AppendSeries("w", chunk.values()).ok()) {
        return -1.0;
      }
    }
    const double secs = sw.Seconds();
    return secs > 0.0
               ? static_cast<double>(overhead_appends * append_chunk) / secs
               : 0.0;
  };
  // Alternate configurations across rounds and keep each one's best rate,
  // so process warmup and scheduler noise don't bias whichever side runs
  // first; best-of-N is the standard noise filter for a rate.
  for (size_t round = 0; round < overhead_rounds; ++round) {
    for (int instrumented = 0; instrumented <= 1; ++instrumented) {
      const double rate = run_once(instrumented == 1);
      if (rate < 0.0) {
        std::fprintf(stderr, "overhead run failed\n");
        return 1;
      }
      if (rate > pps[instrumented]) pps[instrumented] = rate;
    }
  }
  std::printf("\ninstrumentation overhead (%zu appends x %zu points):\n",
              overhead_appends, append_chunk);
  TablePrinter overhead({"Instrumentation", "Points/s", "Overhead"});
  overhead.AddRow({"off", TablePrinter::Fmt(pps[0], 0), "-"});
  overhead.AddRow(
      {"on", TablePrinter::Fmt(pps[1], 0),
       TablePrinter::Fmt(
           pps[1] > 0.0 ? 100.0 * (pps[0] / pps[1] - 1.0) : 0.0, 1) + "%"});
  overhead.Print();
  return 0;
}
