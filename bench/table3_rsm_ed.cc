// Table III: RSM queries under ED — General Match (R-tree) vs KV-matchDP.
// Columns: selectivity, #candidates, #index accesses, time (ms).
//
//   ./table3_rsm_ed [--n <len>] [--runs <k>] [--seed <s>] [--quick]
#include "bench_common.h"
#include "baseline/general_match.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.quick) flags.n = std::min<size_t>(flags.n, 200'000);
  const size_t m = 1024;

  std::printf("Table III reproduction: RSM-ED, n=%zu, |Q|=%zu, %d runs\n\n",
              flags.n, m, flags.runs);
  const Workload w = Workload::Make(flags.n, flags.seed);

  Stopwatch sw_gm;
  GeneralMatch gmatch(w.series, w.prefix, {.window = 50, .paa_dims = 4,
                                           .stride = 1});
  std::printf("GeneralMatch index built in %.1fs (%.1f MB)\n",
              sw_gm.Seconds(),
              static_cast<double>(gmatch.IndexBytes()) / 1e6);
  const DpStack stack(w.series);
  std::printf("KVM-DP indexes built in %.1fs (%.1f MB)\n\n",
              stack.build_seconds,
              static_cast<double>(stack.TotalBytes()) / 1e6);
  const KvMatchDp kvm(w.series, w.prefix, stack.ptrs);

  TablePrinter table({"Approach", "Selectivity", "#candidates",
                      "#index accesses", "Time (ms)"});
  Rng rng(flags.seed + 1);
  for (const auto& level : PaperSelectivities(flags.quick)) {
    double gm_cand = 0, gm_acc = 0, gm_ms = 0;
    double kv_cand = 0, kv_acc = 0, kv_ms = 0;
    for (int run = 0; run < flags.runs; ++run) {
      const auto q = MakeQuery(w, m, &rng, 0.05);
      QueryParams params{QueryType::kRsmEd, 0.0, 1.0, 0.0, 0};
      params.epsilon = CalibrateOnPrefix(w, q, params, level.fraction);

      {
        RtreeMatchStats stats;
        Stopwatch sw;
        gmatch.Match(q, params.epsilon, &stats);
        gm_ms += sw.Ms();
        gm_cand += static_cast<double>(stats.candidate_positions);
        gm_acc += static_cast<double>(stats.index_accesses);
      }
      {
        MatchStats stats;
        Stopwatch sw;
        auto r = kvm.Match(q, params, &stats);
        kv_ms += sw.Ms();
        if (!r.ok()) {
          std::fprintf(stderr, "kvm failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        kv_cand += static_cast<double>(stats.candidate_positions);
        kv_acc += static_cast<double>(stats.probe.index_accesses);
      }
    }
    const double k = flags.runs;
    table.AddRow({"GMatch", level.paper_label, TablePrinter::Fmt(gm_cand / k),
                  TablePrinter::Fmt(gm_acc / k),
                  TablePrinter::Fmt(gm_ms / k)});
    table.AddRow({"KVM-DP", level.paper_label, TablePrinter::Fmt(kv_cand / k),
                  TablePrinter::Fmt(kv_acc / k),
                  TablePrinter::Fmt(kv_ms / k)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table III): KVM-DP uses ~2 orders of\n"
      "magnitude fewer index accesses and wins overall time at every\n"
      "selectivity; GMatch candidates explode at high selectivity.\n");
  return 0;
}
