// Table VI: cNSM queries under DTW — KVM-DP across the (α, β′) grid vs the
// UCR Suite and FAST full scans (ρ = 5% of |Q|).
//
//   ./table6_cnsm_dtw [--n <len>] [--runs <k>] [--seed <s>] [--quick]
#include "bench_common.h"

#include "baseline/fast_matcher.h"
#include "baseline/ucr_suite.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.n = std::min<size_t>(flags.n, flags.quick ? 100'000 : 500'000);
  flags.runs = std::min(flags.runs, 3);  // DTW verification dominates
  const size_t m = 512;
  const size_t rho = m / 20;

  std::printf(
      "Table VI reproduction: cNSM-DTW, n=%zu, |Q|=%zu, rho=%zu, %d runs\n\n",
      flags.n, m, rho, flags.runs);
  const Workload w = Workload::Make(flags.n, flags.seed);
  const MinMax mm = ComputeMinMax(w.series.values());
  const double range = mm.max - mm.min;

  const DpStack stack(w.series);
  const KvMatchDp kvm(w.series, w.prefix, stack.ptrs);
  const UcrSuite ucr(w.series, w.prefix);
  const FastMatcher fast(w.series, w.prefix);

  const double alphas[] = {1.1, 1.5, 2.0};
  const double beta_primes[] = {1.0, 5.0, 10.0};

  TablePrinter table({"Selectivity", "alpha", "KVM b'=1.0 (s)",
                      "KVM b'=5.0 (s)", "KVM b'=10.0 (s)", "UCR avg (s)",
                      "FAST avg (s)"});
  Rng rng(flags.seed + 1);
  for (const auto& level : PaperSelectivities(flags.quick)) {
    std::vector<std::vector<double>> q_batch;
    std::vector<double> eps_batch;
    for (int run = 0; run < flags.runs; ++run) {
      auto q = MakeQuery(w, m, &rng, 0.05);
      QueryParams cal{QueryType::kCnsmDtw, 0.0, 1.5, range * 5.0 / 100.0,
                      rho};
      eps_batch.push_back(
          CalibrateOnPrefix(w, q, cal, level.fraction, 100'000));
      q_batch.push_back(std::move(q));
    }

    double ucr_s = 0, fast_s = 0;
    for (int run = 0; run < flags.runs; ++run) {
      QueryParams params{QueryType::kCnsmDtw, eps_batch[run], 1.5,
                         range * 5.0 / 100.0, rho};
      {
        Stopwatch sw;
        ucr.Match(q_batch[run], params);
        ucr_s += sw.Seconds();
      }
      {
        Stopwatch sw;
        fast.Match(q_batch[run], params);
        fast_s += sw.Seconds();
      }
    }

    for (double alpha : alphas) {
      std::vector<std::string> row = {level.paper_label,
                                      TablePrinter::Fmt(alpha)};
      for (double bp : beta_primes) {
        double kvm_s = 0;
        for (int run = 0; run < flags.runs; ++run) {
          QueryParams params{QueryType::kCnsmDtw, eps_batch[run], alpha,
                             range * bp / 100.0, rho};
          Stopwatch sw;
          auto r = kvm.Match(q_batch[run], params);
          kvm_s += sw.Seconds();
          if (!r.ok()) {
            std::fprintf(stderr, "kvm failed: %s\n",
                         r.status().ToString().c_str());
            return 1;
          }
        }
        row.push_back(TablePrinter::Fmt(kvm_s / flags.runs, 3));
      }
      row.push_back(TablePrinter::Fmt(ucr_s / flags.runs, 3));
      row.push_back(TablePrinter::Fmt(fast_s / flags.runs, 3));
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table VI): KVM-DP still wins, by a smaller\n"
      "factor at the loosest settings; under DTW FAST's extra bounds beat\n"
      "plain UCR (unlike Table V).\n");
  return 0;
}
