// Network front-end scaling: aggregate QPS through the TCP server as the
// number of concurrent remote clients grows from 1 to N, against an
// 8-series catalog over loopback.
//
// Each simulated client is one TCP connection pipelining `batch`
// by-reference queries (the remote-bench shape): requests are a few bytes
// on the wire and the server extracts the query window from the series it
// already holds. The same total work is replayed at every client count,
// so the table isolates connection fan-in + response streaming overhead
// from query execution cost (compare bench_service_throughput, which
// drives the QueryService in-process).
//
// With --shards N the same catalog is instead hash-partitioned across
// 1/2/.../N in-process shard servers behind a scatter-gather
// coordinator, and a fixed client pool replays the identical workload
// through it — the table shows how federated QPS scales with shard
// count (overhead of the extra hop included).
//
//   ./bench_net_throughput [--n <total points>] [--runs <batch mult>]
//                          [--seed <s>] [--quick] [--shards N]
#include "bench_common.h"

#include <cstring>
#include <memory>
#include <thread>

#include "coord/coord_server.h"
#include "coord/shard_map.h"
#include "net/client.h"
#include "net/server.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"

using namespace kvmatch;

namespace {

/// One self-contained shard process-in-miniature: its own store,
/// catalog, service and wire server on an ephemeral loopback port.
struct ShardStack {
  MemKvStore store;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::Server> server;
};

int RunShardScaling(const BenchFlags& flags, size_t max_shards) {
  const size_t kSeries = 8;
  size_t total_points = flags.n == 2'000'000 ? 400'000 : flags.n;
  size_t batch = 32 * static_cast<size_t>(std::max(1, flags.runs));
  if (flags.quick) {
    total_points = 100'000;
    batch = 16;
  }
  const size_t per_series = total_points / kSeries;
  const size_t m = 256;
  const size_t clients = 4;

  std::printf("federated net throughput: %zu series x %zu points, "
              "|Q|=%zu, %zu clients x %zu queries, scatter-gather over "
              "loopback shards\n\n",
              kSeries, per_series, m, clients, batch);

  TablePrinter table(
      {"Shards", "Queries", "Seconds", "QPS", "Speedup", "p99 (ms)"});
  double baseline_seconds = 0.0;
  for (size_t num_shards : {1u, 2u, 4u}) {
    if (num_shards > max_shards) break;

    // Shards first (ephemeral ports), then the map from their ports.
    std::vector<std::unique_ptr<ShardStack>> shards;
    std::vector<coord::ShardEndpoint> endpoints;
    for (size_t s = 0; s < num_shards; ++s) {
      auto stack = std::make_unique<ShardStack>();
      stack->catalog = std::make_unique<Catalog>(&stack->store);
      stack->service = std::make_unique<QueryService>(
          stack->catalog.get(),
          QueryService::Options{.num_threads = 4, .max_queue = 4096});
      net::Server::Options sopts;
      sopts.port = 0;
      stack->server = std::make_unique<net::Server>(
          stack->catalog.get(), stack->service.get(), sopts);
      if (Status st = stack->server->Start(); !st.ok()) {
        std::fprintf(stderr, "shard %zu: %s\n", s, st.ToString().c_str());
        return 1;
      }
      endpoints.push_back(
          coord::ShardEndpoint{"127.0.0.1", stack->server->port()});
      shards.push_back(std::move(stack));
    }
    auto map = coord::ShardMap::FromEndpoints(endpoints);
    if (!map.ok()) {
      std::fprintf(stderr, "map: %s\n", map.status().ToString().c_str());
      return 1;
    }

    // Hash-partitioned ingest: each series lands on its owner only.
    for (size_t i = 0; i < kSeries; ++i) {
      const std::string name = "bench" + std::to_string(i);
      Rng rng(flags.seed + i);
      const uint32_t owner = map->OwnerOf(name);
      if (!shards[owner]
               ->catalog->Ingest(name, GenerateUcrLike(per_series, &rng))
               .ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }

    coord::CoordServer::CoordOptions copts;
    copts.server.port = 0;
    copts.num_threads = 2 * clients;
    copts.coord.verify_shard_identity = false;  // ephemeral shard ports
    coord::CoordServer coordinator(std::move(*map), copts);
    if (Status st = coordinator.Start(); !st.ok()) {
      std::fprintf(stderr, "coord: %s\n", st.ToString().c_str());
      return 1;
    }

    std::vector<std::thread> threads;
    std::vector<size_t> errors(clients, 0);
    Stopwatch sw;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::Client::Connect("127.0.0.1", coordinator.port());
        if (!client.ok()) {
          errors[c] = batch;
          return;
        }
        std::vector<uint64_t> ids;
        for (size_t i = 0; i < batch; ++i) {
          net::WireQueryRequest wire;
          wire.request.series =
              "bench" + std::to_string((c * batch + i) % kSeries);
          wire.request.params.type =
              i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
          wire.request.params.epsilon = 3.0;
          wire.request.params.alpha = 1.5;
          wire.request.params.beta = 3.0;
          wire.by_reference = true;
          wire.ref_length = m;
          wire.ref_offset =
              (flags.seed + 1237 * (c * batch + i)) % (per_series - m);
          auto id = (*client)->SendRequest(wire);
          if (!id.ok()) {
            errors[c] += 1;
            return;
          }
          ids.push_back(*id);
        }
        for (uint64_t id : ids) {
          auto response = (*client)->WaitResponse(id);
          if (!response.ok() || !response->status.ok()) errors[c] += 1;
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = sw.Seconds();
    if (num_shards == 1) baseline_seconds = seconds;

    size_t failed = 0;
    for (size_t e : errors) failed += e;
    const size_t total = clients * batch - failed;
    const ServiceStatsSnapshot snap =
        coordinator.stats_registry()->Snapshot();
    table.AddRow(
        {TablePrinter::FmtInt(num_shards), TablePrinter::FmtInt(total),
         TablePrinter::Fmt(seconds, 2),
         TablePrinter::Fmt(static_cast<double>(total) / seconds, 1),
         TablePrinter::Fmt(
             baseline_seconds > 0.0 ? baseline_seconds / seconds : 0.0, 2),
         TablePrinter::Fmt(snap.latency.p99_ms, 2)});
    if (failed > 0) {
      std::fprintf(stderr, "warning: %zu queries failed at %zu shards\n",
                   failed, num_shards);
    }
    coordinator.Stop();
    for (auto& stack : shards) stack->server->Stop();
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  size_t shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  if (shards > 0) return RunShardScaling(flags, shards);
  const size_t kSeries = 8;
  size_t total_points = flags.n == 2'000'000 ? 400'000 : flags.n;
  size_t batch = 32 * static_cast<size_t>(std::max(1, flags.runs));
  if (flags.quick) {
    total_points = 100'000;
    batch = 16;
  }
  const size_t per_series = total_points / kSeries;
  const size_t m = 256;

  std::printf("net throughput: %zu series x %zu points, |Q|=%zu, "
              "batch=%zu per client, loopback TCP\n\n",
              kSeries, per_series, m, batch);

  MemKvStore store;
  {
    Catalog ingest_catalog(&store);
    Stopwatch sw;
    for (size_t i = 0; i < kSeries; ++i) {
      Rng rng(flags.seed + i);
      if (!ingest_catalog
               .Ingest("bench" + std::to_string(i),
                       GenerateUcrLike(per_series, &rng))
               .ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }
    std::printf("ingest: %.2fs\n\n", sw.Seconds());
  }

  Catalog catalog(&store);
  QueryService service(&catalog, {.num_threads = 4, .max_queue = 4096});
  net::Server::Options nopts;
  nopts.port = 0;
  net::Server server(&catalog, &service, nopts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }

  TablePrinter table(
      {"Clients", "Queries", "Seconds", "QPS", "Speedup", "p99 (ms)"});
  double baseline_seconds = 0.0;
  for (size_t clients : {1u, 2u, 4u, 8u}) {
    service.ResetStats();
    std::vector<std::thread> threads;
    std::vector<size_t> errors(clients, 0);
    Stopwatch sw;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::Client::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          errors[c] = batch;
          return;
        }
        std::vector<uint64_t> ids;
        for (size_t i = 0; i < batch; ++i) {
          net::WireQueryRequest wire;
          wire.request.series =
              "bench" + std::to_string((c * batch + i) % kSeries);
          wire.request.params.type =
              i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
          wire.request.params.epsilon = 3.0;
          wire.request.params.alpha = 1.5;
          wire.request.params.beta = 3.0;
          wire.by_reference = true;
          wire.ref_length = m;
          wire.ref_offset =
              (flags.seed + 1237 * (c * batch + i)) % (per_series - m);
          auto id = (*client)->SendRequest(wire);
          if (!id.ok()) {
            errors[c] += 1;
            return;
          }
          ids.push_back(*id);
        }
        for (uint64_t id : ids) {
          auto response = (*client)->WaitResponse(id);
          if (!response.ok() || !response->status.ok()) errors[c] += 1;
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = sw.Seconds();
    if (clients == 1) baseline_seconds = seconds;

    size_t failed = 0;
    for (size_t e : errors) failed += e;
    const size_t total = clients * batch - failed;
    const ServiceStatsSnapshot snap = service.Stats();
    table.AddRow({TablePrinter::FmtInt(clients), TablePrinter::FmtInt(total),
                  TablePrinter::Fmt(seconds, 2),
                  TablePrinter::Fmt(static_cast<double>(total) / seconds, 1),
                  TablePrinter::Fmt(
                      baseline_seconds > 0.0
                          ? (baseline_seconds * static_cast<double>(clients)) /
                                seconds
                          : 0.0,
                      2),
                  TablePrinter::Fmt(snap.latency.p99_ms, 2)});
    if (failed > 0) {
      std::fprintf(stderr, "warning: %zu queries failed at %zu clients\n",
                   failed, clients);
    }
  }
  table.Print();
  server.Stop();
  return 0;
}
