// Network front-end scaling: aggregate QPS through the TCP server as the
// number of concurrent remote clients grows from 1 to N, against an
// 8-series catalog over loopback.
//
// Each simulated client is one TCP connection pipelining `batch`
// by-reference queries (the remote-bench shape): requests are a few bytes
// on the wire and the server extracts the query window from the series it
// already holds. The same total work is replayed at every client count,
// so the table isolates connection fan-in + response streaming overhead
// from query execution cost (compare bench_service_throughput, which
// drives the QueryService in-process).
//
//   ./bench_net_throughput [--n <total points>] [--runs <batch mult>]
//                          [--seed <s>] [--quick]
#include "bench_common.h"

#include <thread>

#include "net/client.h"
#include "net/server.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t kSeries = 8;
  size_t total_points = flags.n == 2'000'000 ? 400'000 : flags.n;
  size_t batch = 32 * static_cast<size_t>(std::max(1, flags.runs));
  if (flags.quick) {
    total_points = 100'000;
    batch = 16;
  }
  const size_t per_series = total_points / kSeries;
  const size_t m = 256;

  std::printf("net throughput: %zu series x %zu points, |Q|=%zu, "
              "batch=%zu per client, loopback TCP\n\n",
              kSeries, per_series, m, batch);

  MemKvStore store;
  {
    Catalog ingest_catalog(&store);
    Stopwatch sw;
    for (size_t i = 0; i < kSeries; ++i) {
      Rng rng(flags.seed + i);
      if (!ingest_catalog
               .Ingest("bench" + std::to_string(i),
                       GenerateUcrLike(per_series, &rng))
               .ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }
    std::printf("ingest: %.2fs\n\n", sw.Seconds());
  }

  Catalog catalog(&store);
  QueryService service(&catalog, {.num_threads = 4, .max_queue = 4096});
  net::Server::Options nopts;
  nopts.port = 0;
  net::Server server(&catalog, &service, nopts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }

  TablePrinter table(
      {"Clients", "Queries", "Seconds", "QPS", "Speedup", "p99 (ms)"});
  double baseline_seconds = 0.0;
  for (size_t clients : {1u, 2u, 4u, 8u}) {
    service.ResetStats();
    std::vector<std::thread> threads;
    std::vector<size_t> errors(clients, 0);
    Stopwatch sw;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::Client::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          errors[c] = batch;
          return;
        }
        std::vector<uint64_t> ids;
        for (size_t i = 0; i < batch; ++i) {
          net::WireQueryRequest wire;
          wire.request.series =
              "bench" + std::to_string((c * batch + i) % kSeries);
          wire.request.params.type =
              i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
          wire.request.params.epsilon = 3.0;
          wire.request.params.alpha = 1.5;
          wire.request.params.beta = 3.0;
          wire.by_reference = true;
          wire.ref_length = m;
          wire.ref_offset =
              (flags.seed + 1237 * (c * batch + i)) % (per_series - m);
          auto id = (*client)->SendRequest(wire);
          if (!id.ok()) {
            errors[c] += 1;
            return;
          }
          ids.push_back(*id);
        }
        for (uint64_t id : ids) {
          auto response = (*client)->WaitResponse(id);
          if (!response.ok() || !response->status.ok()) errors[c] += 1;
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = sw.Seconds();
    if (clients == 1) baseline_seconds = seconds;

    size_t failed = 0;
    for (size_t e : errors) failed += e;
    const size_t total = clients * batch - failed;
    const ServiceStatsSnapshot snap = service.Stats();
    table.AddRow({TablePrinter::FmtInt(clients), TablePrinter::FmtInt(total),
                  TablePrinter::Fmt(seconds, 2),
                  TablePrinter::Fmt(static_cast<double>(total) / seconds, 1),
                  TablePrinter::Fmt(
                      baseline_seconds > 0.0
                          ? (baseline_seconds * static_cast<double>(clients)) /
                                seconds
                          : 0.0,
                      2),
                  TablePrinter::Fmt(snap.latency.p99_ms, 2)});
    if (failed > 0) {
      std::fprintf(stderr, "warning: %zu queries failed at %zu clients\n",
                   failed, clients);
    }
  }
  table.Print();
  server.Stop();
  return 0;
}
