// Network front-end scaling: aggregate QPS through the TCP server as the
// number of concurrent remote clients grows from 1 to N, against an
// 8-series catalog over loopback.
//
// Each simulated client is one TCP connection pipelining `batch`
// by-reference queries (the remote-bench shape): requests are a few bytes
// on the wire and the server extracts the query window from the series it
// already holds. The same total work is replayed at every client count,
// so the table isolates connection fan-in + response streaming overhead
// from query execution cost (compare bench_service_throughput, which
// drives the QueryService in-process).
//
// With --shards N the same catalog is instead hash-partitioned across
// 1/2/.../N in-process shard servers behind a scatter-gather
// coordinator, and a fixed client pool replays the identical workload
// through it — the table shows how federated QPS scales with shard
// count (overhead of the extra hop included).
//
// With --idle-connections N the bench instead measures C10k behavior:
// N idle frame connections are parked against one server (held by forked
// helper processes so the bench side's fd budget never caps the sweep)
// while a single active client runs its queries — the table reports the
// active client's p99, the server process's RSS, fd count and thread
// count at N = 100 / 1000 / ... / N. The thread count staying flat as N
// grows is the point of the epoll reactor: connections cost one fd and
// one registration, not two threads.
//
//   ./bench_net_throughput [--n <total points>] [--runs <batch mult>]
//                          [--seed <s>] [--quick] [--shards N]
//                          [--idle-connections N] [--json OUT]
#include "bench_common.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <thread>

#include "coord/coord_server.h"
#include "coord/shard_map.h"
#include "net/client.h"
#include "net/server.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"

using namespace kvmatch;

namespace {

/// One self-contained shard process-in-miniature: its own store,
/// catalog, service and wire server on an ephemeral loopback port.
struct ShardStack {
  MemKvStore store;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::Server> server;
};

int RunShardScaling(const BenchFlags& flags, size_t max_shards) {
  const size_t kSeries = 8;
  size_t total_points = flags.n == 2'000'000 ? 400'000 : flags.n;
  size_t batch = 32 * static_cast<size_t>(std::max(1, flags.runs));
  if (flags.quick) {
    total_points = 100'000;
    batch = 16;
  }
  const size_t per_series = total_points / kSeries;
  const size_t m = 256;
  const size_t clients = 4;

  std::printf("federated net throughput: %zu series x %zu points, "
              "|Q|=%zu, %zu clients x %zu queries, scatter-gather over "
              "loopback shards\n\n",
              kSeries, per_series, m, clients, batch);

  TablePrinter table(
      {"Shards", "Queries", "Seconds", "QPS", "Speedup", "p99 (ms)"});
  double baseline_seconds = 0.0;
  for (size_t num_shards : {1u, 2u, 4u}) {
    if (num_shards > max_shards) break;

    // Shards first (ephemeral ports), then the map from their ports.
    std::vector<std::unique_ptr<ShardStack>> shards;
    std::vector<coord::ShardEndpoint> endpoints;
    for (size_t s = 0; s < num_shards; ++s) {
      auto stack = std::make_unique<ShardStack>();
      stack->catalog = std::make_unique<Catalog>(&stack->store);
      stack->service = std::make_unique<QueryService>(
          stack->catalog.get(),
          QueryService::Options{.num_threads = 4, .max_queue = 4096});
      net::Server::Options sopts;
      sopts.port = 0;
      stack->server = std::make_unique<net::Server>(
          stack->catalog.get(), stack->service.get(), sopts);
      if (Status st = stack->server->Start(); !st.ok()) {
        std::fprintf(stderr, "shard %zu: %s\n", s, st.ToString().c_str());
        return 1;
      }
      endpoints.push_back(
          coord::ShardEndpoint{"127.0.0.1", stack->server->port()});
      shards.push_back(std::move(stack));
    }
    auto map = coord::ShardMap::FromEndpoints(endpoints);
    if (!map.ok()) {
      std::fprintf(stderr, "map: %s\n", map.status().ToString().c_str());
      return 1;
    }

    // Hash-partitioned ingest: each series lands on its owner only.
    for (size_t i = 0; i < kSeries; ++i) {
      const std::string name = "bench" + std::to_string(i);
      Rng rng(flags.seed + i);
      const uint32_t owner = map->OwnerOf(name);
      if (!shards[owner]
               ->catalog->Ingest(name, GenerateUcrLike(per_series, &rng))
               .ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }

    coord::CoordServer::CoordOptions copts;
    copts.server.port = 0;
    copts.num_threads = 2 * clients;
    copts.coord.verify_shard_identity = false;  // ephemeral shard ports
    coord::CoordServer coordinator(std::move(*map), copts);
    if (Status st = coordinator.Start(); !st.ok()) {
      std::fprintf(stderr, "coord: %s\n", st.ToString().c_str());
      return 1;
    }

    std::vector<std::thread> threads;
    std::vector<size_t> errors(clients, 0);
    Stopwatch sw;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::Client::Connect("127.0.0.1", coordinator.port());
        if (!client.ok()) {
          errors[c] = batch;
          return;
        }
        std::vector<uint64_t> ids;
        for (size_t i = 0; i < batch; ++i) {
          net::WireQueryRequest wire;
          wire.request.series =
              "bench" + std::to_string((c * batch + i) % kSeries);
          wire.request.params.type =
              i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
          wire.request.params.epsilon = 3.0;
          wire.request.params.alpha = 1.5;
          wire.request.params.beta = 3.0;
          wire.by_reference = true;
          wire.ref_length = m;
          wire.ref_offset =
              (flags.seed + 1237 * (c * batch + i)) % (per_series - m);
          auto id = (*client)->SendRequest(wire);
          if (!id.ok()) {
            errors[c] += 1;
            return;
          }
          ids.push_back(*id);
        }
        for (uint64_t id : ids) {
          auto response = (*client)->WaitResponse(id);
          if (!response.ok() || !response->status.ok()) errors[c] += 1;
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = sw.Seconds();
    if (num_shards == 1) baseline_seconds = seconds;

    size_t failed = 0;
    for (size_t e : errors) failed += e;
    const size_t total = clients * batch - failed;
    const ServiceStatsSnapshot snap =
        coordinator.stats_registry()->Snapshot();
    table.AddRow(
        {TablePrinter::FmtInt(num_shards), TablePrinter::FmtInt(total),
         TablePrinter::Fmt(seconds, 2),
         TablePrinter::Fmt(static_cast<double>(total) / seconds, 1),
         TablePrinter::Fmt(
             baseline_seconds > 0.0 ? baseline_seconds / seconds : 0.0, 2),
         TablePrinter::Fmt(snap.latency.p99_ms, 2)});
    if (failed > 0) {
      std::fprintf(stderr, "warning: %zu queries failed at %zu shards\n",
                   failed, num_shards);
    }
    coordinator.Stop();
    for (auto& stack : shards) stack->server->Stop();
  }
  table.Print();
  return 0;
}

// ------------------------------------------------- idle-connection sweep

/// "VmRSS:", "Threads:", ... from /proc/self/status (Linux). 0 if absent.
size_t ReadProcStatus(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t value = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      value = std::strtoull(line + key_len, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return value;
}

size_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count > 0 ? count - 1 : 0;  // exclude the dirfd itself
}

/// Child-process body after fork: park `count` idle connections against
/// the server, report readiness, hold until the parent says stop. The
/// parent is multithreaded, so the child sticks to raw syscalls — no
/// stdio, no allocation (either could deadlock on a lock some other
/// parent thread held at fork time).
[[noreturn]] void HoldIdleConnections(int port, size_t count, int ready_fd,
                                      int stop_fd) {
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) _exit(2);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      _exit(3);
    }
    // Pace the storm: keep the aggregate in-flight connect count under
    // the server's listen backlog so no SYN hits a retransmit timeout.
    if (i % 64 == 63) ::usleep(2000);
  }
  char byte = 1;
  if (::write(ready_fd, &byte, 1) != 1) _exit(4);
  (void)!::read(stop_fd, &byte, 1);  // parked until the parent signals
  _exit(0);                          // kernel closes every held socket
}

int RunIdleConnections(const BenchFlags& flags, size_t max_idle) {
  // Each forked holder owns at most this many sockets, comfortably under
  // typical fd limits even before the setrlimit below.
  constexpr size_t kConnsPerChild = 4000;
  // The server side needs one fd per idle connection plus headroom;
  // raise the soft limit to the hard cap up front.
  struct rlimit lim = {};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
  if (lim.rlim_max != RLIM_INFINITY &&
      max_idle + 200 > static_cast<size_t>(lim.rlim_max)) {
    std::fprintf(stderr,
                 "warning: fd hard limit %llu caps the sweep below "
                 "--idle-connections %zu\n",
                 static_cast<unsigned long long>(lim.rlim_max), max_idle);
  }

  const size_t kSeries = 8;
  size_t total_points = flags.n == 2'000'000 ? 400'000 : flags.n;
  size_t queries = 64 * static_cast<size_t>(std::max(1, flags.runs));
  if (flags.quick) {
    total_points = 100'000;
    queries = 48;
  }
  const size_t per_series = total_points / kSeries;
  const size_t m = 256;

  MemKvStore store;
  Catalog catalog(&store);
  for (size_t i = 0; i < kSeries; ++i) {
    Rng rng(flags.seed + i);
    if (!catalog
             .Ingest("bench" + std::to_string(i),
                     GenerateUcrLike(per_series, &rng))
             .ok()) {
      std::fprintf(stderr, "ingest failed\n");
      return 1;
    }
  }
  QueryService service(&catalog, {.num_threads = 4, .max_queue = 4096});
  net::Server::Options nopts;
  nopts.port = 0;
  nopts.max_connections = max_idle + 64;
  net::Server server(&catalog, &service, nopts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("idle-connection scaling: %zu series x %zu points, |Q|=%zu, "
              "%zu active queries per row, idle holders in forked "
              "processes\n\n",
              kSeries, per_series, m, queries);

  std::vector<size_t> sweep;
  for (size_t n : {size_t{100}, size_t{1000}, size_t{10000}}) {
    if (n <= max_idle) sweep.push_back(n);
  }
  if (sweep.empty() || sweep.back() != max_idle) sweep.push_back(max_idle);

  struct Row {
    size_t idle;
    double p99_ms, mean_ms, qps;
    size_t rss_kb, fds, threads;
  };
  std::vector<Row> rows;
  TablePrinter table({"Idle conns", "Queries", "p99 (ms)", "mean (ms)",
                      "QPS", "RSS (MB)", "FDs", "Threads"});
  for (size_t idle : sweep) {
    // Spawn the holders and wait until every idle connection is up.
    int ready_pipe[2], stop_pipe[2];
    if (::pipe(ready_pipe) != 0 || ::pipe(stop_pipe) != 0) {
      std::fprintf(stderr, "pipe failed\n");
      return 1;
    }
    std::vector<pid_t> children;
    size_t remaining = idle;
    while (remaining > 0) {
      const size_t batch = std::min(remaining, kConnsPerChild);
      const pid_t pid = ::fork();
      if (pid < 0) {
        std::fprintf(stderr, "fork failed\n");
        return 1;
      }
      if (pid == 0) {
        ::close(ready_pipe[0]);
        ::close(stop_pipe[1]);
        HoldIdleConnections(server.port(), batch, ready_pipe[1],
                            stop_pipe[0]);
      }
      children.push_back(pid);
      remaining -= batch;
    }
    ::close(ready_pipe[1]);
    ::close(stop_pipe[0]);
    for (size_t c = 0; c < children.size(); ++c) {
      char byte = 0;
      if (::read(ready_pipe[0], &byte, 1) != 1) {
        std::fprintf(stderr, "idle holder died before connecting %zu\n",
                     idle);
        return 1;
      }
    }

    // One active client measured against the parked fleet.
    service.ResetStats();
    auto client = net::Client::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "client: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    std::vector<double> latencies;
    latencies.reserve(queries);
    size_t failed = 0;
    Stopwatch total;
    for (size_t i = 0; i < queries; ++i) {
      net::WireQueryRequest wire;
      wire.request.series = "bench" + std::to_string(i % kSeries);
      wire.request.params.type =
          i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
      wire.request.params.epsilon = 3.0;
      wire.request.params.alpha = 1.5;
      wire.request.params.beta = 3.0;
      wire.by_reference = true;
      wire.ref_length = m;
      wire.ref_offset =
          (flags.seed + 1237 * i) % (per_series - m);
      Stopwatch sw;
      auto id = (*client)->SendRequest(wire);
      if (!id.ok()) {
        failed += 1;
        continue;
      }
      auto response = (*client)->WaitResponse(*id);
      if (!response.ok() || !response->status.ok()) {
        failed += 1;
        continue;
      }
      latencies.push_back(sw.Ms());
    }
    const double seconds = total.Seconds();
    std::sort(latencies.begin(), latencies.end());
    double mean = 0.0;
    for (double v : latencies) mean += v;
    if (!latencies.empty()) mean /= static_cast<double>(latencies.size());
    const double p99 =
        latencies.empty()
            ? 0.0
            : latencies[std::min(latencies.size() - 1,
                                 latencies.size() * 99 / 100)];

    Row row;
    row.idle = idle;
    row.p99_ms = p99;
    row.mean_ms = mean;
    row.qps = seconds > 0.0
                  ? static_cast<double>(latencies.size()) / seconds
                  : 0.0;
    row.rss_kb = ReadProcStatus("VmRSS:");
    row.fds = CountOpenFds();
    row.threads = ReadProcStatus("Threads:");
    rows.push_back(row);
    table.AddRow({TablePrinter::FmtInt(idle),
                  TablePrinter::FmtInt(latencies.size()),
                  TablePrinter::Fmt(p99, 2), TablePrinter::Fmt(mean, 2),
                  TablePrinter::Fmt(row.qps, 1),
                  TablePrinter::Fmt(
                      static_cast<double>(row.rss_kb) / 1024.0, 1),
                  TablePrinter::FmtInt(row.fds),
                  TablePrinter::FmtInt(row.threads)});
    if (failed > 0) {
      std::fprintf(stderr, "warning: %zu queries failed at %zu idle\n",
                   failed, idle);
    }

    // Release the fleet and reap.
    ::close(stop_pipe[1]);  // EOF wakes every holder's read()
    ::close(ready_pipe[0]);
    for (pid_t pid : children) {
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
    }
    // Let the server observe the disconnects before the next row.
    const size_t t0 = server.ActiveConnections();
    for (int spin = 0; spin < 200 && server.ActiveConnections() > 1;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    (void)t0;
  }
  table.Print();
  server.Stop();

  if (!flags.json_out.empty()) {
    std::FILE* f = std::fopen(flags.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"net_idle_connections\",\n"
                    "  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(
          f,
          "    {\"idle\": %zu, \"p99_ms\": %.4f, \"mean_ms\": %.4f, "
          "\"qps\": %.2f, \"rss_kb\": %zu, \"fds\": %zu, "
          "\"threads\": %zu}%s\n",
          rows[i].idle, rows[i].p99_ms, rows[i].mean_ms, rows[i].qps,
          rows[i].rss_kb, rows[i].fds, rows[i].threads,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  size_t shards = 0;
  size_t idle = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--idle-connections") == 0 && i + 1 < argc) {
      idle = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  if (idle > 0) return RunIdleConnections(flags, idle);
  if (shards > 0) return RunShardScaling(flags, shards);
  const size_t kSeries = 8;
  size_t total_points = flags.n == 2'000'000 ? 400'000 : flags.n;
  size_t batch = 32 * static_cast<size_t>(std::max(1, flags.runs));
  if (flags.quick) {
    total_points = 100'000;
    batch = 16;
  }
  const size_t per_series = total_points / kSeries;
  const size_t m = 256;

  std::printf("net throughput: %zu series x %zu points, |Q|=%zu, "
              "batch=%zu per client, loopback TCP\n\n",
              kSeries, per_series, m, batch);

  MemKvStore store;
  {
    Catalog ingest_catalog(&store);
    Stopwatch sw;
    for (size_t i = 0; i < kSeries; ++i) {
      Rng rng(flags.seed + i);
      if (!ingest_catalog
               .Ingest("bench" + std::to_string(i),
                       GenerateUcrLike(per_series, &rng))
               .ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }
    std::printf("ingest: %.2fs\n\n", sw.Seconds());
  }

  Catalog catalog(&store);
  QueryService service(&catalog, {.num_threads = 4, .max_queue = 4096});
  net::Server::Options nopts;
  nopts.port = 0;
  net::Server server(&catalog, &service, nopts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }

  TablePrinter table(
      {"Clients", "Queries", "Seconds", "QPS", "Speedup", "p99 (ms)"});
  double baseline_seconds = 0.0;
  for (size_t clients : {1u, 2u, 4u, 8u}) {
    service.ResetStats();
    std::vector<std::thread> threads;
    std::vector<size_t> errors(clients, 0);
    Stopwatch sw;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto client = net::Client::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          errors[c] = batch;
          return;
        }
        std::vector<uint64_t> ids;
        for (size_t i = 0; i < batch; ++i) {
          net::WireQueryRequest wire;
          wire.request.series =
              "bench" + std::to_string((c * batch + i) % kSeries);
          wire.request.params.type =
              i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
          wire.request.params.epsilon = 3.0;
          wire.request.params.alpha = 1.5;
          wire.request.params.beta = 3.0;
          wire.by_reference = true;
          wire.ref_length = m;
          wire.ref_offset =
              (flags.seed + 1237 * (c * batch + i)) % (per_series - m);
          auto id = (*client)->SendRequest(wire);
          if (!id.ok()) {
            errors[c] += 1;
            return;
          }
          ids.push_back(*id);
        }
        for (uint64_t id : ids) {
          auto response = (*client)->WaitResponse(id);
          if (!response.ok() || !response->status.ok()) errors[c] += 1;
        }
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = sw.Seconds();
    if (clients == 1) baseline_seconds = seconds;

    size_t failed = 0;
    for (size_t e : errors) failed += e;
    const size_t total = clients * batch - failed;
    const ServiceStatsSnapshot snap = service.Stats();
    table.AddRow({TablePrinter::FmtInt(clients), TablePrinter::FmtInt(total),
                  TablePrinter::Fmt(seconds, 2),
                  TablePrinter::Fmt(static_cast<double>(total) / seconds, 1),
                  TablePrinter::Fmt(
                      baseline_seconds > 0.0
                          ? (baseline_seconds * static_cast<double>(clients)) /
                                seconds
                          : 0.0,
                      2),
                  TablePrinter::Fmt(snap.latency.p99_ms, 2)});
    if (failed > 0) {
      std::fprintf(stderr, "warning: %zu queries failed at %zu clients\n",
                   failed, clients);
    }
  }
  table.Print();
  server.Stop();
  return 0;
}
