// Table V: cNSM queries under ED — KVM-DP across the (α, β′) grid vs the
// UCR Suite and FAST full scans.
//
// β′ is the relative offset shift: β = (max(X) - min(X)) · β′%.
//
//   ./table5_cnsm_ed [--n <len>] [--runs <k>] [--seed <s>] [--quick]
#include "bench_common.h"

#include "baseline/fast_matcher.h"
#include "baseline/ucr_suite.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.quick) flags.n = std::min<size_t>(flags.n, 200'000);
  const size_t m = 512;

  std::printf("Table V reproduction: cNSM-ED, n=%zu, |Q|=%zu, %d runs\n\n",
              flags.n, m, flags.runs);
  const Workload w = Workload::Make(flags.n, flags.seed);
  const MinMax mm = ComputeMinMax(w.series.values());
  const double range = mm.max - mm.min;

  const DpStack stack(w.series);
  const KvMatchDp kvm(w.series, w.prefix, stack.ptrs);
  const UcrSuite ucr(w.series, w.prefix);
  const FastMatcher fast(w.series, w.prefix);

  const double alphas[] = {1.1, 1.5, 2.0};
  const double beta_primes[] = {1.0, 5.0, 10.0};

  TablePrinter table({"Selectivity", "alpha", "KVM b'=1.0 (s)",
                      "KVM b'=5.0 (s)", "KVM b'=10.0 (s)", "UCR avg (s)",
                      "FAST avg (s)"});
  Rng rng(flags.seed + 1);
  for (const auto& level : PaperSelectivities(flags.quick)) {
    // Calibrate ε once per selectivity with middle constraints.
    std::vector<std::vector<double>> q_batch;
    std::vector<double> eps_batch;
    for (int run = 0; run < flags.runs; ++run) {
      auto q = MakeQuery(w, m, &rng, 0.05);
      QueryParams cal{QueryType::kCnsmEd, 0.0, 1.5,
                      range * 5.0 / 100.0, 0};
      eps_batch.push_back(CalibrateOnPrefix(w, q, cal, level.fraction));
      q_batch.push_back(std::move(q));
    }

    // UCR and FAST runtimes are stable across (α, β); the paper reports a
    // per-selectivity average. Use the middle constraint setting.
    double ucr_s = 0, fast_s = 0;
    for (int run = 0; run < flags.runs; ++run) {
      QueryParams params{QueryType::kCnsmEd, eps_batch[run], 1.5,
                         range * 5.0 / 100.0, 0};
      {
        Stopwatch sw;
        ucr.Match(q_batch[run], params);
        ucr_s += sw.Seconds();
      }
      {
        Stopwatch sw;
        fast.Match(q_batch[run], params);
        fast_s += sw.Seconds();
      }
    }

    for (double alpha : alphas) {
      std::vector<std::string> row = {level.paper_label,
                                      TablePrinter::Fmt(alpha)};
      for (double bp : beta_primes) {
        double kvm_s = 0;
        for (int run = 0; run < flags.runs; ++run) {
          QueryParams params{QueryType::kCnsmEd, eps_batch[run], alpha,
                             range * bp / 100.0, 0};
          Stopwatch sw;
          auto r = kvm.Match(q_batch[run], params);
          kvm_s += sw.Seconds();
          if (!r.ok()) {
            std::fprintf(stderr, "kvm failed: %s\n",
                         r.status().ToString().c_str());
            return 1;
          }
        }
        row.push_back(TablePrinter::Fmt(kvm_s / flags.runs, 3));
      }
      row.push_back(TablePrinter::Fmt(ucr_s / flags.runs, 3));
      row.push_back(TablePrinter::Fmt(fast_s / flags.runs, 3));
      table.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table V): KVM-DP grows with selectivity and\n"
      "with looser (α, β'); UCR/FAST are flat (full scans) and 1-2 orders\n"
      "slower; FAST's extra bounds don't pay off under ED.\n");
  return 0;
}
