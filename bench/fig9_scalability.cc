// Fig. 9: scalability of cNSM queries — KVM-DP vs UCR Suite under ED and
// DTW across data lengths, with α = 1.5, β′ = 1.0 and fixed selectivity
// (the paper holds selectivity at 10⁻⁷ by adjusting ε).
//
//   ./fig9_scalability [--n <len>] [--runs <k>] [--seed <s>] [--quick]
#include "bench_common.h"

#include "baseline/ucr_suite.h"
#include "distance/simd/kernels.h"

using namespace kvmatch;

namespace {

struct JsonRow {
  size_t n;
  double kvm_ed, ucr_ed, kvm_dtw, ucr_dtw;
};

/// --json OUT: machine-readable results for perf tracking across PRs
/// (BENCH_fig9.json), tagged with the active SIMD dispatch tier.
bool WriteJson(const std::string& path, size_t m, int runs,
               const std::vector<JsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n  \"bench\": \"fig9_scalability\",\n"
               "  \"dispatch_tier\": \"%s\",\n"
               "  \"query_length\": %zu,\n  \"runs\": %d,\n"
               "  \"results\": [\n",
               simd::TierName(simd::ActiveTier()), m, runs);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"n\": %zu, \"kvm_ed_s\": %.6f, \"ucr_ed_s\": %.6f, "
                 "\"kvm_dtw_s\": %.6f, \"ucr_dtw_s\": %.6f}%s\n",
                 rows[i].n, rows[i].kvm_ed, rows[i].ucr_ed, rows[i].kvm_dtw,
                 rows[i].ucr_dtw, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  std::vector<size_t> lengths = {100'000, 400'000, 1'000'000, 4'000'000};
  if (flags.quick) {
    lengths = {100'000, 400'000};
  } else if (flags.n > lengths.back()) {
    lengths.push_back(flags.n);
  }
  const size_t m = 512;
  const size_t rho = m / 20;
  const double fraction = 1e-4;  // paper-equivalent selectivity (see note)
  const int runs = std::max(1, flags.runs / 2);

  std::printf("Fig. 9 reproduction: cNSM scalability, |Q|=%zu, alpha=1.5, "
              "beta'=1.0, %d runs\n\n", m, runs);
  TablePrinter table({"Data length", "KVM ED (s)", "UCR ED (s)",
                      "KVM DTW (s)", "UCR DTW (s)"});
  std::vector<JsonRow> json_rows;
  for (size_t n : lengths) {
    const Workload w = Workload::Make(n, flags.seed);
    const MinMax mm = ComputeMinMax(w.series.values());
    const double beta = (mm.max - mm.min) * 1.0 / 100.0;

    const DpStack stack(w.series);
    const KvMatchDp kvm(w.series, w.prefix, stack.ptrs);
    const UcrSuite ucr(w.series, w.prefix);

    double kvm_ed = 0, ucr_ed = 0, kvm_dtw = 0, ucr_dtw = 0;
    Rng rng(flags.seed + 1);
    for (int run = 0; run < runs; ++run) {
      const auto q = MakeQuery(w, m, &rng, 0.05);
      QueryParams ed{QueryType::kCnsmEd, 0.0, 1.5, beta, 0};
      ed.epsilon = CalibrateOnPrefix(w, q, ed, fraction, 100'000);
      QueryParams dtw{QueryType::kCnsmDtw, 0.0, 1.5, beta, rho};
      dtw.epsilon = CalibrateOnPrefix(w, q, dtw, fraction, 50'000);

      {
        Stopwatch sw;
        auto r = kvm.Match(q, ed);
        if (!r.ok()) return 1;
        kvm_ed += sw.Seconds();
      }
      {
        Stopwatch sw;
        ucr.Match(q, ed);
        ucr_ed += sw.Seconds();
      }
      {
        Stopwatch sw;
        auto r = kvm.Match(q, dtw);
        if (!r.ok()) return 1;
        kvm_dtw += sw.Seconds();
      }
      {
        Stopwatch sw;
        ucr.Match(q, dtw);
        ucr_dtw += sw.Seconds();
      }
    }
    const double k = runs;
    table.AddRow({std::to_string(n), TablePrinter::Fmt(kvm_ed / k, 3),
                  TablePrinter::Fmt(ucr_ed / k, 3),
                  TablePrinter::Fmt(kvm_dtw / k, 3),
                  TablePrinter::Fmt(ucr_dtw / k, 3)});
    json_rows.push_back({n, kvm_ed / k, ucr_ed / k, kvm_dtw / k, ucr_dtw / k});
  }
  table.Print();
  if (!flags.json_out.empty() && !WriteJson(flags.json_out, m, runs,
                                            json_rows)) {
    std::fprintf(stderr, "cannot write %s\n", flags.json_out.c_str());
    return 1;
  }
  std::printf(
      "\nExpected shape (paper Fig. 9): UCR time grows linearly with data\n"
      "length; KVM-DP grows much more slowly, opening a gap of orders of\n"
      "magnitude as the series lengthens (2-3 orders at the paper's 10^12\n"
      "scale).\n");
  return 0;
}
