// Service throughput scaling: aggregate QPS of the QueryService as the
// worker pool grows from 1 to N threads over a multi-series catalog.
//
// Setup mirrors the production shape the ROADMAP targets: one shared
// KvStore holding 8 independent series (default 10⁶ points total), a
// Catalog of store-backed sessions with the synchronized row cache, and a
// fixed batch of mixed ε-match queries fanned across the series. The same
// batch is replayed at each pool size; speedup is wall-clock relative to
// the 1-thread run.
//
//   ./bench_service_throughput [--n <total points>] [--runs <batch mult>]
//                              [--seed <s>] [--quick]
#include "bench_common.h"

#include <future>

#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t kSeries = 8;
  size_t total_points = flags.n == 2'000'000 ? 1'000'000 : flags.n;
  size_t batch = 64 * static_cast<size_t>(std::max(1, flags.runs));
  if (flags.quick) {
    total_points = 200'000;
    batch = 32;
  }
  const size_t per_series = total_points / kSeries;
  const size_t m = 256;

  std::printf("service throughput: %zu series x %zu points, |Q|=%zu, "
              "batch=%zu\n\n", kSeries, per_series, m, batch);

  MemKvStore store;
  std::vector<TimeSeries> references;
  {
    Catalog ingest_catalog(&store);
    Stopwatch sw;
    for (size_t i = 0; i < kSeries; ++i) {
      Rng rng(flags.seed + i);
      TimeSeries x = GenerateUcrLike(per_series, &rng);
      references.push_back(x);
      if (!ingest_catalog.Ingest("bench" + std::to_string(i), std::move(x))
               .ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }
    std::printf("ingested %zu series in %.2fs\n", kSeries, sw.Seconds());
  }

  // The workload: ε-matches alternating raw/normalized ED, drawn from the
  // data with light noise so every query does real phase-1 + phase-2 work.
  Rng rng(flags.seed + 100);
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < batch; ++i) {
    const size_t series = i % kSeries;
    QueryRequest req;
    req.series = "bench" + std::to_string(series);
    const size_t qoff = (1237 * i) % (per_series - m);
    req.query = ExtractQuery(references[series], qoff, m, 0.05, &rng);
    req.params.type = i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
    req.params.epsilon = 3.0;
    req.params.alpha = 1.5;
    req.params.beta = 3.0;
    requests.push_back(std::move(req));
  }

  TablePrinter table({"Threads", "Batch", "Wall (s)", "Agg QPS", "Speedup",
                      "Mean (ms)", "p99 (ms)"});
  double base_seconds = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // A fresh catalog per pool size: cold sessions and row caches, so
    // every run pays the same open + fetch costs.
    Catalog catalog(&store);
    QueryService::Options sopts;
    sopts.num_threads = threads;
    sopts.max_queue = 2 * batch;
    QueryService service(&catalog, sopts);

    Stopwatch sw;
    auto futures = service.SubmitBatch(requests);
    size_t failed = 0;
    for (auto& f : futures) {
      if (!f.get().status.ok()) ++failed;
    }
    const double seconds = sw.Seconds();
    if (failed > 0) {
      std::fprintf(stderr, "%zu queries failed\n", failed);
      return 1;
    }
    if (threads == 1) base_seconds = seconds;

    const ServiceStatsSnapshot snap = service.Stats();
    table.AddRow({TablePrinter::FmtInt(threads),
                  TablePrinter::FmtInt(batch),
                  TablePrinter::Fmt(seconds, 2),
                  TablePrinter::Fmt(static_cast<double>(batch) / seconds, 1),
                  TablePrinter::Fmt(base_seconds / seconds, 2),
                  TablePrinter::Fmt(snap.latency.mean_ms, 2),
                  TablePrinter::Fmt(snap.latency.p99_ms, 2)});
  }
  table.Print();
  std::printf("\nnote: speedup is bounded by available cores "
              "(hardware_concurrency=%u)\n",
              std::thread::hardware_concurrency());
  return 0;
}
