// Service throughput scaling: aggregate QPS of the QueryService as the
// worker pool grows from 1 to N threads over a multi-series catalog.
//
// Setup mirrors the production shape the ROADMAP targets: one shared
// KvStore holding 8 independent series (default 10⁶ points total), a
// Catalog of store-backed sessions with the synchronized row cache, and a
// fixed batch of mixed ε-match queries fanned across the series. The same
// batch is replayed at each pool size; speedup is wall-clock relative to
// the 1-thread run.
//
//   ./bench_service_throughput [--n <total points>] [--runs <batch mult>]
//                              [--seed <s>] [--quick]
#include "bench_common.h"

#include <cmath>
#include <future>

#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t kSeries = 8;
  size_t total_points = flags.n == 2'000'000 ? 1'000'000 : flags.n;
  size_t batch = 64 * static_cast<size_t>(std::max(1, flags.runs));
  if (flags.quick) {
    total_points = 200'000;
    batch = 32;
  }
  const size_t per_series = total_points / kSeries;
  const size_t m = 256;

  std::printf("service throughput: %zu series x %zu points, |Q|=%zu, "
              "batch=%zu\n\n", kSeries, per_series, m, batch);

  MemKvStore store;
  std::vector<TimeSeries> references;
  {
    Catalog ingest_catalog(&store);
    Stopwatch sw;
    for (size_t i = 0; i < kSeries; ++i) {
      Rng rng(flags.seed + i);
      TimeSeries x = GenerateUcrLike(per_series, &rng);
      references.push_back(x);
      if (!ingest_catalog.Ingest("bench" + std::to_string(i), std::move(x))
               .ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }
    std::printf("ingested %zu series in %.2fs\n", kSeries, sw.Seconds());
  }

  // The workload: ε-matches alternating raw/normalized ED, drawn from the
  // data with light noise so every query does real phase-1 + phase-2 work.
  Rng rng(flags.seed + 100);
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < batch; ++i) {
    const size_t series = i % kSeries;
    QueryRequest req;
    req.series = "bench" + std::to_string(series);
    const size_t qoff = (1237 * i) % (per_series - m);
    req.query = ExtractQuery(references[series], qoff, m, 0.05, &rng);
    req.params.type = i % 2 == 0 ? QueryType::kRsmEd : QueryType::kCnsmEd;
    req.params.epsilon = 3.0;
    req.params.alpha = 1.5;
    req.params.beta = 3.0;
    requests.push_back(std::move(req));
  }

  TablePrinter table({"Threads", "Batch", "Wall (s)", "Agg QPS", "Speedup",
                      "Mean (ms)", "p99 (ms)"});
  double base_seconds = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // A fresh catalog per pool size: cold sessions and row caches, so
    // every run pays the same open + fetch costs.
    Catalog catalog(&store);
    QueryService::Options sopts;
    sopts.num_threads = threads;
    sopts.max_queue = 2 * batch;
    QueryService service(&catalog, sopts);

    Stopwatch sw;
    auto futures = service.SubmitBatch(requests);
    size_t failed = 0;
    for (auto& f : futures) {
      if (!f.get().status.ok()) ++failed;
    }
    const double seconds = sw.Seconds();
    if (failed > 0) {
      std::fprintf(stderr, "%zu queries failed\n", failed);
      return 1;
    }
    if (threads == 1) base_seconds = seconds;

    const ServiceStatsSnapshot snap = service.Stats();
    table.AddRow({TablePrinter::FmtInt(threads),
                  TablePrinter::FmtInt(batch),
                  TablePrinter::Fmt(seconds, 2),
                  TablePrinter::Fmt(static_cast<double>(batch) / seconds, 1),
                  TablePrinter::Fmt(base_seconds / seconds, 2),
                  TablePrinter::Fmt(snap.latency.mean_ms, 2),
                  TablePrinter::Fmt(snap.latency.p99_ms, 2)});
  }
  table.Print();
  std::printf("\nnote: speedup is bounded by available cores "
              "(hardware_concurrency=%u)\n",
              std::thread::hardware_concurrency());

  // ---- Intra-query parallelism: verify slices of ONE query fanned
  // across the pool (QueryService::Options::parallel_verify). The
  // workload is verification-heavy by construction: a cNSM-ED query with
  // loose α/β/ε bounds, so phase 1 prunes little and nearly every
  // position reaches the phase-2 distance cascade.
  const size_t heavy_n = total_points;
  const size_t heavy_m = 256;
  {
    Catalog ingest_catalog(&store);
    Rng rng(flags.seed + 77);
    TimeSeries heavy = GenerateUcrLike(heavy_n, &rng);
    if (!ingest_catalog.Ingest("verifyheavy", std::move(heavy)).ok()) {
      std::fprintf(stderr, "heavy ingest failed\n");
      return 1;
    }
  }
  QueryRequest heavy_req;
  heavy_req.series = "verifyheavy";
  heavy_req.params.type = QueryType::kCnsmEd;
  // ε at ~0.75·√(2m): unrelated z-normalized windows sit near √(2m), so
  // early abandoning triggers late and phase 2 does real work per
  // candidate without flooding the result set.
  heavy_req.params.epsilon =
      0.75 * std::sqrt(2.0 * static_cast<double>(heavy_m));
  heavy_req.params.alpha = 4.0;
  heavy_req.params.beta = 16.0;
  {
    Catalog probe(&store);
    auto session = probe.Acquire("verifyheavy");
    if (!session.ok()) {
      std::fprintf(stderr, "acquire failed\n");
      return 1;
    }
    Rng rng(flags.seed + 78);
    heavy_req.query =
        ExtractQuery((*session)->series(), heavy_n / 3, heavy_m, 0.05, &rng);
  }

  std::printf("\nintra-query parallel verify: one cNSM-ED query, %zu "
              "points, |Q|=%zu, eps=%.1f\n\n",
              heavy_n, heavy_m, heavy_req.params.epsilon);
  TablePrinter ptable({"Parallel verify", "Threads", "Latency (ms)",
                       "Speedup", "Matches", "Candidates"});
  const size_t pool_threads = 8;
  const int reps = flags.quick ? 2 : 3;
  double serial_ms = 0.0;
  for (bool parallel : {false, true}) {
    Catalog catalog(&store);
    QueryService::Options sopts;
    sopts.num_threads = pool_threads;
    sopts.parallel_verify = parallel;
    QueryService service(&catalog, sopts);
    double best_ms = 0.0;
    size_t matches = 0;
    uint64_t candidates = 0;
    for (int r = 0; r < reps; ++r) {
      const QueryResponse response = service.Submit(heavy_req).get();
      if (!response.status.ok()) {
        std::fprintf(stderr, "heavy query failed: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
      if (r == 0 || response.latency_ms < best_ms) {
        best_ms = response.latency_ms;
      }
      matches = response.matches.size();
      candidates = response.stats.candidate_positions;
    }
    if (!parallel) serial_ms = best_ms;
    ptable.AddRow({parallel ? "on" : "off",
                   TablePrinter::FmtInt(pool_threads),
                   TablePrinter::Fmt(best_ms, 2),
                   TablePrinter::Fmt(serial_ms / best_ms, 2),
                   TablePrinter::FmtInt(matches),
                   TablePrinter::FmtInt(candidates)});
  }
  ptable.Print();
  std::printf("\nnote: like the table above, intra-query speedup is "
              "bounded by available cores (hardware_concurrency=%u)\n",
              std::thread::hardware_concurrency());

  // ---- Tracing overhead: the same batch replayed with per-request span
  // collection off vs on. Off is the production default and must stay
  // within noise of the pre-tracing baseline (the <5% regression budget);
  // on shows what a "trace everything" deployment pays.
  std::printf("\ntracing overhead: %zu-query batch on 4 threads, "
              "collect_trace off vs on\n\n",
              batch);
  TablePrinter ttable({"Tracing", "Wall (s)", "Agg QPS", "vs off"});
  double off_seconds = 0.0;
  for (bool tracing : {false, true}) {
    std::vector<QueryRequest> traced = requests;
    for (auto& req : traced) req.collect_trace = tracing;
    Catalog catalog(&store);
    QueryService::Options sopts;
    sopts.num_threads = 4;
    sopts.max_queue = 2 * batch;
    QueryService service(&catalog, sopts);
    Stopwatch sw;
    auto futures = service.SubmitBatch(traced);
    size_t failed = 0;
    for (auto& f : futures) {
      if (!f.get().status.ok()) ++failed;
    }
    const double seconds = sw.Seconds();
    if (failed > 0) {
      std::fprintf(stderr, "%zu traced queries failed\n", failed);
      return 1;
    }
    if (!tracing) off_seconds = seconds;
    ttable.AddRow({tracing ? "on" : "off", TablePrinter::Fmt(seconds, 3),
                   TablePrinter::Fmt(static_cast<double>(batch) / seconds, 1),
                   TablePrinter::Fmt(
                       100.0 * (seconds - off_seconds) / off_seconds, 1) +
                       "%"});
  }
  ttable.Print();
  return 0;
}
