// Ablation: the phase-2 lower-bound cascade (VerifyOptions). Measures
// cNSM-DTW verification time and pruning counters with each stage of the
// cascade toggled — quantifying what LB_Kim, LB_Keogh and reordered early
// abandoning contribute to the headline numbers.
//
//   ./ablation_verifier [--n <len>] [--runs <k>] [--seed <s>] [--quick]
#include "bench_common.h"

#include "match/kv_match.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.n = std::min<size_t>(flags.n, flags.quick ? 100'000 : 400'000);
  const size_t m = 512;
  const size_t rho = m / 20;

  std::printf("Ablation: verifier lower-bound cascade, cNSM-DTW, n=%zu, "
              "|Q|=%zu, %d runs\n\n", flags.n, m, flags.runs);
  const Workload w = Workload::Make(flags.n, flags.seed);
  const MinMax mm = ComputeMinMax(w.series.values());
  const KvIndex index = BuildKvIndex(w.series, {.window = 64});
  const KvMatcher matcher(w.series, w.prefix, index);

  Rng rng(flags.seed + 1);
  std::vector<std::vector<double>> queries;
  std::vector<double> eps;
  for (int run = 0; run < flags.runs; ++run) {
    auto q = MakeQuery(w, m, &rng, 0.05);
    QueryParams cal{QueryType::kCnsmDtw, 0.0, 1.5,
                    (mm.max - mm.min) * 0.05, rho};
    eps.push_back(CalibrateOnPrefix(w, q, cal, 1e-4, 100'000));
    queries.push_back(std::move(q));
  }

  struct Config {
    const char* name;
    bool kim, keogh;
  };
  const Config configs[] = {
      {"no lower bounds", false, false},
      {"LB_Kim only", true, false},
      {"LB_Keogh only", false, true},
      {"full cascade (default)", true, true},
  };

  TablePrinter table({"Cascade", "phase2 (ms)", "LB pruned", "DTW calls"});
  for (const Config& config : configs) {
    double ms = 0;
    uint64_t pruned = 0, calls = 0;
    for (int run = 0; run < flags.runs; ++run) {
      QueryParams params{QueryType::kCnsmDtw, eps[static_cast<size_t>(run)],
                         1.5, (mm.max - mm.min) * 0.05, rho};
      MatchOptions options;
      options.verify.use_lb_kim = config.kim;
      options.verify.use_lb_keogh = config.keogh;
      MatchStats stats;
      auto r = matcher.Match(queries[static_cast<size_t>(run)], params,
                             &stats, options);
      if (!r.ok()) {
        std::fprintf(stderr, "match failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      ms += stats.phase2_ms;
      pruned += stats.lb_pruned;
      calls += stats.distance_calls;
    }
    const double k = flags.runs;
    table.AddRow({config.name, TablePrinter::Fmt(ms / k, 1),
                  TablePrinter::Fmt(static_cast<double>(pruned) / k),
                  TablePrinter::Fmt(static_cast<double>(calls) / k)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: each stage cuts DTW calls; LB_Keogh does the heavy\n"
      "lifting, LB_Kim is a cheap first filter, and the full cascade gives\n"
      "the lowest phase-2 time. All configurations return identical\n"
      "results (verified in match_test.cc).\n");
  return 0;
}
