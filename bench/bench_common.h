// Shared conventions for the per-table/figure bench harnesses.
//
// Scale note: the paper evaluates on length-10⁹ series (HBase cluster);
// these harnesses default to 10⁶-ish local workloads. Selectivity levels
// are chosen so the *absolute match counts* mirror the paper's: the
// paper's selectivity 10⁻⁹..10⁻⁵ of 10⁹ offsets = 1..10⁴ matches; we use
// 10⁻⁶..10⁻² of ~10⁶ offsets = 1..10⁴ matches. Pass --n to scale up.
#ifndef KVMATCH_BENCH_BENCH_COMMON_H_
#define KVMATCH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/calibration.h"
#include "bench_util/table_printer.h"
#include "bench_util/workload.h"
#include "index/index_builder.h"
#include "matchdp/kv_match_dp.h"

namespace kvmatch {

/// Paper-equivalent selectivity ladder (see scale note above). Labels keep
/// the paper's exponents for easy cross-reading.
struct SelectivityLevel {
  const char* paper_label;  // as printed in the paper's tables
  double fraction;          // of our (n - m + 1) offsets
};

inline std::vector<SelectivityLevel> PaperSelectivities(bool quick) {
  std::vector<SelectivityLevel> levels = {
      {"10^-9", 1e-6}, {"10^-8", 1e-5}, {"10^-7", 1e-4},
      {"10^-6", 1e-3}, {"10^-5", 1e-2},
  };
  if (quick) levels.resize(2);
  return levels;
}

/// Builds the default KV-matchDP index stack Σ = {25, 50, 100, 200, 400}
/// (paper §VIII-A4).
struct DpStack {
  std::vector<KvIndex> indexes;
  std::vector<const KvIndex*> ptrs;
  double build_seconds = 0.0;

  explicit DpStack(const TimeSeries& series, size_t wu = 25, size_t levels = 5,
                   double width = 0.5) {
    Stopwatch sw;
    indexes = BuildIndexSet(series, wu, levels, width);
    build_seconds = sw.Seconds();
    for (const auto& index : indexes) ptrs.push_back(&index);
  }

  uint64_t TotalBytes() const {
    uint64_t bytes = 0;
    for (const auto& index : indexes) bytes += index.EncodedSizeBytes();
    return bytes;
  }
};

/// Calibrates ε for a target fraction on a bounded prefix of the workload
/// (full-series calibration via repeated scans would dominate bench time).
inline double CalibrateOnPrefix(const Workload& w, std::span<const double> q,
                                QueryParams params, double fraction,
                                size_t prefix_cap = 400'000) {
  if (w.series.size() <= prefix_cap) {
    return CalibrateEpsilonViaEd(w.series, w.prefix, q, params, fraction);
  }
  TimeSeries prefix_series(std::vector<double>(
      w.series.values().begin(),
      w.series.values().begin() + static_cast<long>(prefix_cap)));
  PrefixStats ps(prefix_series);
  return CalibrateEpsilonViaEd(prefix_series, ps, q, params, fraction);
}

}  // namespace kvmatch

#endif  // KVMATCH_BENCH_BENCH_COMMON_H_
