// Fig. 10: KV-matchDP vs the basic KV-match with each single fixed-w
// index, across query lengths, for a low-selectivity ε (a) and a
// high-selectivity ε (b). RSM-ED as in the paper (§VIII-G).
//
//   ./fig10_dp_vs_single [--n <len>] [--runs <k>] [--seed <s>] [--quick]
#include "bench_common.h"

#include "match/kv_match.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.quick) flags.n = std::min<size_t>(flags.n, 200'000);
  std::vector<size_t> lengths = {128, 256, 512, 1024, 2048, 4096, 8192};
  if (flags.quick) lengths = {128, 512, 2048};

  std::printf("Fig. 10 reproduction: DP segmentation vs single-w indexes, "
              "n=%zu, %d runs\n\n", flags.n, flags.runs);
  const Workload w = Workload::Make(flags.n, flags.seed);
  const DpStack stack(w.series);  // w = 25..400
  const KvMatchDp dp(w.series, w.prefix, stack.ptrs);
  std::vector<KvMatcher> singles;
  singles.reserve(stack.indexes.size());
  for (const auto& index : stack.indexes) {
    singles.emplace_back(w.series, w.prefix, index);
  }

  for (double epsilon : {10.0, 100.0}) {
    std::printf("epsilon = %.0f (%s selectivity)\n", epsilon,
                epsilon < 50 ? "low" : "high");
    TablePrinter table({"|Q|", "KVM-25 (ms)", "KVM-50 (ms)", "KVM-100 (ms)",
                        "KVM-200 (ms)", "KVM-400 (ms)", "KVM-DP (ms)"});
    Rng rng(flags.seed + 1);
    for (size_t m : lengths) {
      std::vector<std::string> row = {std::to_string(m)};
      std::vector<std::vector<double>> queries;
      for (int run = 0; run < flags.runs; ++run) {
        queries.push_back(MakeQuery(w, m, &rng, 0.05));
      }
      QueryParams params{QueryType::kRsmEd, epsilon, 1.0, 0.0, 0};
      for (const auto& matcher : singles) {
        double ms = 0;
        bool valid = true;
        for (const auto& q : queries) {
          Stopwatch sw;
          auto r = matcher.Match(q, params);
          if (!r.ok()) {
            valid = false;  // query shorter than this index's window
            break;
          }
          ms += sw.Ms();
        }
        row.push_back(valid ? TablePrinter::Fmt(ms / flags.runs, 1) : "-");
      }
      {
        double ms = 0;
        for (const auto& q : queries) {
          Stopwatch sw;
          auto r = dp.Match(q, params);
          if (!r.ok()) return 1;
          ms += sw.Ms();
        }
        row.push_back(TablePrinter::Fmt(ms / flags.runs, 1));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 10): small-w indexes win only on short\n"
      "queries, large-w only on long ones; KVM-DP tracks or beats the best\n"
      "single index across the whole length range.\n");
  return 0;
}
