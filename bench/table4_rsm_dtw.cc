// Table IV: RSM queries under DTW — DMatch (duality R-tree) vs KV-matchDP.
// Columns: selectivity, #candidates, #index accesses, time (ms).
//
//   ./table4_rsm_dtw [--n <len>] [--runs <k>] [--seed <s>] [--quick]
#include "bench_common.h"
#include "baseline/dmatch.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.n = std::min<size_t>(flags.n, flags.quick ? 100'000 : 500'000);
  flags.runs = std::min(flags.runs, 3);  // DTW verification dominates
  const size_t m = 512;
  const size_t rho = m / 20;  // 5% Sakoe-Chiba band

  std::printf(
      "Table IV reproduction: RSM-DTW, n=%zu, |Q|=%zu, rho=%zu, %d runs\n\n",
      flags.n, m, rho, flags.runs);
  const Workload w = Workload::Make(flags.n, flags.seed);

  Stopwatch sw_dm;
  DMatch dmatch(w.series, w.prefix, {.window = 64, .paa_dims = 4});
  std::printf("DMatch index built in %.1fs (%.1f MB)\n", sw_dm.Seconds(),
              static_cast<double>(dmatch.IndexBytes()) / 1e6);
  const DpStack stack(w.series);
  std::printf("KVM-DP indexes built in %.1fs (%.1f MB)\n\n",
              stack.build_seconds,
              static_cast<double>(stack.TotalBytes()) / 1e6);
  const KvMatchDp kvm(w.series, w.prefix, stack.ptrs);

  TablePrinter table({"Approach", "Selectivity", "#candidates",
                      "#index accesses", "Time (ms)"});
  Rng rng(flags.seed + 1);
  for (const auto& level : PaperSelectivities(flags.quick)) {
    double dm_cand = 0, dm_acc = 0, dm_ms = 0;
    double kv_cand = 0, kv_acc = 0, kv_ms = 0;
    for (int run = 0; run < flags.runs; ++run) {
      const auto q = MakeQuery(w, m, &rng, 0.05);
      QueryParams params{QueryType::kRsmDtw, 0.0, 1.0, 0.0, rho};
      params.epsilon =
          CalibrateOnPrefix(w, q, params, level.fraction, 150'000);

      {
        RtreeMatchStats stats;
        Stopwatch sw;
        dmatch.Match(q, params.epsilon, rho, &stats);
        dm_ms += sw.Ms();
        dm_cand += static_cast<double>(stats.candidate_positions);
        dm_acc += static_cast<double>(stats.index_accesses);
      }
      {
        MatchStats stats;
        Stopwatch sw;
        auto r = kvm.Match(q, params, &stats);
        kv_ms += sw.Ms();
        if (!r.ok()) {
          std::fprintf(stderr, "kvm failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        kv_cand += static_cast<double>(stats.candidate_positions);
        kv_acc += static_cast<double>(stats.probe.index_accesses);
      }
    }
    const double k = flags.runs;
    table.AddRow({"DMatch", level.paper_label, TablePrinter::Fmt(dm_cand / k),
                  TablePrinter::Fmt(dm_acc / k),
                  TablePrinter::Fmt(dm_ms / k)});
    table.AddRow({"KVM-DP", level.paper_label, TablePrinter::Fmt(kv_cand / k),
                  TablePrinter::Fmt(kv_acc / k),
                  TablePrinter::Fmt(kv_ms / k)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper Table IV): DMatch verifies 1-2 orders of\n"
      "magnitude more candidates; KVM-DP needs only a few index scans and\n"
      "wins total time at every selectivity.\n");
  return 0;
}
