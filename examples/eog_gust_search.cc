// Industry scenario from the paper's introduction: find Extreme Operating
// Gust (EOG) occurrences in wind-speed history.
//
// EOG events share a shape (dip - sharp rise - drop - recovery, Fig. 2)
// and their magnitude lies in a bounded physical range — exactly the cNSM
// setting: normalized shape match + α/β constraints rejecting patterns
// whose fluctuation is implausibly small (measurement jitter) or large.
//
//   ./eog_gust_search [--n <len>] [--seed <s>]
#include <cmath>
#include <cstdio>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "matchdp/kv_match_dp.h"
#include "ts/generator.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t n = flags.quick ? 200'000 : std::min<size_t>(flags.n, 2'000'000);
  Rng rng(flags.seed);

  // ---- Build a wind-speed history: slow weather drift + turbulence,
  // with EOG events of varying magnitude planted at known offsets. ----
  std::vector<double> wind;
  wind.reserve(n);
  double base = 8.0;  // m/s
  while (wind.size() < n) {
    base += rng.Gaussian(0.0, 0.05);
    base = std::min(std::max(base, 4.0), 14.0);
    wind.push_back(base + rng.Gaussian(0.0, 0.35));
  }
  const size_t eog_len = 512;
  struct Planted {
    size_t offset;
    double magnitude;
  };
  std::vector<Planted> planted;
  for (int k = 0; k < 20; ++k) {
    const size_t off = 10'000 + static_cast<size_t>(rng.UniformInt(
                                    0, static_cast<int64_t>(n - 20'000)));
    // Gust magnitude: realistic events 6-10 m/s above base; two outliers
    // with tiny magnitude (sensor artifact) that NSM would wrongly return.
    const double magnitude = k < 18 ? rng.Uniform(6.0, 10.0)
                                    : rng.Uniform(0.3, 0.6);
    const double local_base = wind[off];
    const auto shape =
        EogPattern(eog_len, local_base, magnitude * 0.25,
                   local_base + magnitude);
    for (size_t i = 0; i < eog_len; ++i) {
      wind[off + i] = shape[i] + rng.Gaussian(0.0, 0.15);
    }
    planted.push_back({off, magnitude});
  }
  const TimeSeries x{std::move(wind)};
  const PrefixStats prefix(x);
  std::printf("wind history: %zu samples, %zu planted gusts "
              "(2 low-magnitude artifacts)\n", x.size(), planted.size());

  // ---- Index once, query with the DP matcher. ----
  const auto indexes = BuildIndexSet(x, 32, 4);  // w = 32, 64, 128, 256
  std::vector<const KvIndex*> ptrs;
  for (const auto& index : indexes) ptrs.push_back(&index);
  const KvMatchDp matcher(x, prefix, ptrs);

  // Query: a canonical EOG template at base 8 m/s, magnitude 8 m/s.
  const auto q = EogPattern(eog_len, 8.0, 2.0, 16.0);

  // cNSM-ED: shape within ε after normalization; σ-ratio constrained to
  // [1/2, 2] so only genuine-magnitude gusts qualify; β tolerates base
  // wind level differences up to 4 m/s.
  QueryParams params{QueryType::kCnsmEd, 0.0, 2.0, 4.0, 0};
  params.epsilon = 7.0;

  MatchStats stats;
  auto results = matcher.Match(q, params, &stats);
  if (!results.ok()) {
    std::fprintf(stderr, "match failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  // ---- Report: which planted events were recovered? ----
  auto covered = [&](size_t off) {
    for (const auto& m : *results) {
      if (m.offset + eog_len > off && m.offset < off + eog_len) return true;
    }
    return false;
  };
  size_t recovered = 0, artifacts_hit = 0;
  for (const auto& p : planted) {
    const bool hit = covered(p.offset);
    if (p.magnitude > 1.0) {
      recovered += hit;
    } else {
      artifacts_hit += hit;
    }
    std::printf("  gust@%-8zu magnitude=%5.2f m/s  %s\n", p.offset,
                p.magnitude, hit ? "FOUND" : "-");
  }
  std::printf(
      "\nrecovered %zu/18 genuine gusts; %zu/2 low-magnitude artifacts "
      "matched (σ-constraint filters them)\n",
      recovered, artifacts_hit);
  std::printf("candidates verified: %llu of %zu offsets (%.4f%%), "
              "phase1=%.1fms phase2=%.1fms\n",
              static_cast<unsigned long long>(stats.candidate_positions),
              x.size() - eog_len + 1,
              100.0 * static_cast<double>(stats.candidate_positions) /
                  static_cast<double>(x.size() - eog_len + 1),
              stats.phase1_ms, stats.phase2_ms);
  return artifacts_hit > 0 || recovered < 12 ? 1 : 0;
}
