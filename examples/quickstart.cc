// Quickstart: build a KV-index over a series, run all four query types,
// and print the matches. Mirrors the README's 60-second tour.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "ts/generator.h"

using namespace kvmatch;

namespace {

const char* TypeName(QueryType t) {
  switch (t) {
    case QueryType::kRsmEd: return "RSM-ED  ";
    case QueryType::kRsmDtw: return "RSM-DTW ";
    case QueryType::kCnsmEd: return "cNSM-ED ";
    case QueryType::kCnsmDtw: return "cNSM-DTW";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Data: 100k points of heterogeneous synthetic time series.
  Rng rng(seed);
  const TimeSeries x = GenerateSynthetic(100'000, &rng);
  const PrefixStats prefix(x);
  std::printf("series: %zu points\n", x.size());

  // 2. One KV-index (w = 50) serves all four query types.
  const KvIndex index = BuildKvIndex(x, {.window = 50});
  std::printf("index:  %zu rows, ~%llu bytes\n\n", index.num_rows(),
              static_cast<unsigned long long>(index.EncodedSizeBytes()));

  // 3. Query: a subsequence of the data with light noise.
  const auto q = ExtractQuery(x, 31'415, 400, 0.1, &rng);
  const KvMatcher matcher(x, prefix, index);

  const QueryParams queries[] = {
      {QueryType::kRsmEd, 8.0, 1.0, 0.0, 0},
      {QueryType::kRsmDtw, 6.0, 1.0, 0.0, 20},
      {QueryType::kCnsmEd, 4.0, 1.5, 2.0, 0},
      {QueryType::kCnsmDtw, 3.0, 1.5, 2.0, 20},
  };
  for (const QueryParams& params : queries) {
    MatchStats stats;
    auto results = matcher.Match(q, params, &stats);
    if (!results.ok()) {
      std::fprintf(stderr, "match failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%s eps=%.1f  matches=%zu  candidates=%llu (of %zu offsets)  "
        "probe=%llu scans  t=%.2f+%.2f ms\n",
        TypeName(params.type), params.epsilon, results->size(),
        static_cast<unsigned long long>(stats.candidate_positions),
        x.size() - q.size() + 1,
        static_cast<unsigned long long>(stats.probe.index_accesses),
        stats.phase1_ms, stats.phase2_ms);
    size_t shown = 0;
    for (const auto& m : *results) {
      std::printf("    offset=%-8zu dist=%.3f\n", m.offset, m.distance);
      if (++shown == 3) break;
    }
  }

  // 4. Sanity: agree with the brute-force reference on the last query.
  const auto truth = BruteForceMatch(x, q, queries[3]);
  std::printf("\nbrute-force check: %zu matches (expect same as cNSM-DTW)\n",
              truth.size());
  return 0;
}
