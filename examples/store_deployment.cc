// Store deployment walkthrough (paper §VII-B): everything — the series,
// chunked into rows, and the whole KV-matchDP index stack — lives in ONE
// key-value store (MiniKv, our HBase stand-in). The query side cold-starts
// from the store, probes with the §VI-C row cache enabled, and answers
// both threshold and top-k queries.
//
//   ./store_deployment [--n <len>] [--seed <s>]
#include <cstdio>
#include <filesystem>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/top_k.h"
#include "matchdp/kv_match_dp.h"
#include "storage/minikv.h"
#include "ts/generator.h"
#include "ts/series_store.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t n = std::min<size_t>(flags.n, 1'000'000);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kvmatch_deployment").string();
  std::filesystem::remove_all(dir);

  // ---- Ingestion side ----
  {
    Rng rng(flags.seed);
    const TimeSeries x = GenerateUcrLike(n, &rng);
    auto kv = MiniKv::Open(dir);
    if (!kv.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   kv.status().ToString().c_str());
      return 1;
    }
    if (Status st = SeriesStore::Write(kv->get(), x, "data/"); !st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (const auto& index : BuildIndexSet(x, 25, 4)) {
      const std::string ns = "idx/w" + std::to_string(index.window()) + "/";
      if (Status st = index.Persist(kv->get(), ns); !st.ok()) {
        std::fprintf(stderr, "persist failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    if (Status st = (*kv)->Compact(); !st.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("ingested %zu points + 4 indexes into %s (%.1f MB, %zu "
                "SSTables)\n",
                x.size(), dir.c_str(),
                static_cast<double>((*kv)->TotalFileBytes()) / 1e6,
                (*kv)->NumTables());
  }

  // ---- Query side: cold start from the store ----
  auto kv = MiniKv::Open(dir);
  if (!kv.ok()) return 1;
  auto series = SeriesStore::Open(kv->get(), "data/");
  if (!series.ok()) return 1;
  auto data = series->ReadAll();  // phase 2 needs the values
  if (!data.ok()) return 1;
  const PrefixStats prefix(*data);

  std::vector<KvIndex> indexes;
  for (size_t w = 25; w <= 200; w *= 2) {
    auto index = KvIndex::Open(kv->get(), "idx/w" + std::to_string(w) + "/");
    if (!index.ok()) {
      std::fprintf(stderr, "index open failed: %s\n",
                   index.status().ToString().c_str());
      return 1;
    }
    index->EnableRowCache(2048);  // §VI-C optimization 1
    indexes.push_back(std::move(index).value());
  }
  std::vector<const KvIndex*> ptrs;
  for (const auto& index : indexes) ptrs.push_back(&index);
  const KvMatchDp matcher(*data, prefix, ptrs);

  Rng qrng(flags.seed + 9);
  const auto q = ExtractQuery(*data, n / 3, 400, 0.1, &qrng);

  // Threshold query, twice: second run shows cache reuse.
  QueryParams params{QueryType::kCnsmEd, 3.0, 1.5, 2.0, 0};
  for (int round = 0; round < 2; ++round) {
    MatchStats stats;
    auto results = matcher.Match(q, params, &stats);
    if (!results.ok()) {
      std::fprintf(stderr, "match failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::printf("cNSM-ED eps=%.1f: %zu matches | rows fetched=%llu "
                "cache hits=%llu | %.2f+%.2f ms\n",
                params.epsilon, results->size(),
                static_cast<unsigned long long>(stats.probe.rows_fetched),
                static_cast<unsigned long long>(stats.probe.cache_hits),
                stats.phase1_ms, stats.phase2_ms);
  }

  // Top-k on the same stack.
  auto top = TopKMatch(
      [&](double eps) {
        QueryParams p = params;
        p.epsilon = eps;
        return matcher.Match(q, p);
      },
      5, {.exclusion_zone = q.size()});
  if (!top.ok()) return 1;
  std::printf("top-5 (exclusion zone |Q|):\n");
  for (const auto& m : *top) {
    std::printf("  offset=%-10zu dist=%.4f\n", m.offset, m.distance);
  }

  std::filesystem::remove_all(dir);
  return 0;
}
