// Example 1 from the paper (PAMAP-style activity monitoring): normalized
// matching alone confuses activities whose normalized shapes collide
// (lying vs sitting vs breaks); adding the cNSM mean constraint recovers
// the intended activity. This example also demonstrates the exploratory
// workflow the paper motivates: one index, four query types, interactive
// knob turning.
//
//   ./activity_explorer [--seed <s>]
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "ts/generator.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  Rng rng(flags.seed);

  // ---- A day of accelerometer data: activities in 3-minute blocks at
  // 100 Hz equivalent (scaled down), sharing oscillation shape but
  // differing in level/amplitude. ----
  const size_t block_len = 2'000;
  const int kActivities = 5;
  const char* kNames[] = {"lying", "sitting", "standing", "walking",
                          "running"};
  std::vector<double> data;
  std::vector<std::pair<size_t, int>> blocks;
  for (int rep = 0; rep < 12; ++rep) {
    for (int act = 0; act < kActivities; ++act) {
      blocks.emplace_back(data.size(), act);
      const double level = 2.0 * act - 4.0;
      const double amp = 0.3 + 0.25 * act;
      for (size_t i = 0; i < block_len; ++i) {
        data.push_back(level +
                       amp * std::sin(2.0 * M_PI * 0.015 *
                                      static_cast<double>(i)) +
                       rng.Gaussian(0.0, 0.02));
      }
    }
  }
  const TimeSeries x{std::move(data)};
  const PrefixStats prefix(x);
  std::printf("accelerometer record: %zu samples, %zu activity blocks\n\n",
              x.size(), blocks.size());

  const KvIndex index = BuildKvIndex(x, {.window = 50, .width = 0.25});
  const KvMatcher matcher(x, prefix, index);

  // Query: a window of "lying" (activity 0).
  const size_t q_len = 1'000;
  const auto q = ExtractQuery(x, blocks[0].first + 300, q_len, 0.0, &rng);

  auto report = [&](const char* label, const QueryParams& params) {
    MatchStats stats;
    auto results = matcher.Match(q, params, &stats);
    if (!results.ok()) {
      std::fprintf(stderr, "match failed: %s\n",
                   results.status().ToString().c_str());
      std::exit(1);
    }
    size_t per_activity[kActivities] = {};
    for (const auto& m : *results) {
      for (const auto& [off, act] : blocks) {
        if (m.offset >= off && m.offset + q_len <= off + block_len) {
          ++per_activity[act];
          break;
        }
      }
    }
    std::printf("%s: %zu matches | ", label, results->size());
    for (int act = 0; act < kActivities; ++act) {
      if (per_activity[act] > 0) {
        std::printf("%s:%zu ", kNames[act], per_activity[act]);
      }
    }
    std::printf("| %llu candidates\n",
                static_cast<unsigned long long>(stats.candidate_positions));
  };

  // NSM-like query (huge α/β): normalized shape only — activities collide.
  report("NSM  (no constraint)     ",
         {QueryType::kCnsmEd, 6.0, 1000.0, 1000.0, 0});
  // cNSM with a tight mean constraint: only "lying" survives.
  report("cNSM (|µ-µQ| <= 0.5)     ",
         {QueryType::kCnsmEd, 6.0, 1000.0, 0.5, 0});
  // cNSM with σ constraint as well: the paper's full knob.
  report("cNSM (α=1.3, β=0.5)      ",
         {QueryType::kCnsmEd, 6.0, 1.3, 0.5, 0});
  // Same index also answers RSM and DTW queries (exploratory search).
  report("RSM-ED (raw values)      ", {QueryType::kRsmEd, 8.0, 1.0, 0.0, 0});
  report("cNSM-DTW (warping ±50)   ",
         {QueryType::kCnsmDtw, 5.0, 1.3, 0.5, 50});

  std::printf(
      "\nOne KV-index served all five queries; only the per-window mean\n"
      "ranges differ between query types (paper §III, Lemmas 1-4).\n");
  return 0;
}
