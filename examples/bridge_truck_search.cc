// IoT scenario from the paper's introduction: a strain meter in a bridge
// shows a characteristic pulse when a vehicle crosses; the pulse height
// scales with vehicle weight. Given one example crossing of a container
// truck, find other crossings of trucks in a similar weight class by
// constraining the amplitude scaling (α) and mean (β) — a cNSM query that
// plain NSM cannot express (it would also return cars and motorbikes,
// whose normalized pulses look identical).
//
//   ./bridge_truck_search [--n <len>] [--seed <s>]
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "ts/generator.h"

using namespace kvmatch;

int main(int argc, char** argv) {
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t n = flags.quick ? 300'000 : std::min<size_t>(flags.n, 2'000'000);
  Rng rng(flags.seed);

  // ---- Strain record: baseline with thermal drift + crossings of three
  // vehicle classes (pulse height ~ weight). ----
  const size_t pulse_len = 256;
  std::vector<double> strain;
  strain.reserve(n);
  double thermal = 100.0;
  while (strain.size() < n) {
    thermal += rng.Gaussian(0.0, 0.002);
    strain.push_back(thermal + rng.Gaussian(0.0, 0.05));
  }
  struct Crossing {
    size_t offset;
    int klass;  // 0 = car, 1 = van, 2 = container truck
  };
  const double kHeights[] = {0.8, 3.0, 12.0};
  const char* kNames[] = {"car  ", "van  ", "truck"};
  std::vector<Crossing> crossings;
  size_t cursor = 5'000;
  while (cursor + pulse_len + 5'000 < n) {
    const int klass = static_cast<int>(rng.UniformInt(0, 2));
    const double height = kHeights[klass] * rng.Uniform(0.85, 1.15);
    const auto pulse = StrainPulse(pulse_len, 0.0, height);
    for (size_t i = 0; i < pulse_len; ++i) strain[cursor + i] += pulse[i];
    crossings.push_back({cursor, klass});
    cursor += pulse_len +
              static_cast<size_t>(rng.UniformInt(2'000, 10'000));
  }
  const TimeSeries x{std::move(strain)};
  const PrefixStats prefix(x);

  size_t trucks = 0;
  for (const auto& c : crossings) trucks += (c.klass == 2);
  std::printf("strain record: %zu samples, %zu crossings (%zu trucks)\n",
              x.size(), crossings.size(), trucks);

  // ---- Query: one truck crossing taken from the data. ----
  size_t truck_off = 0;
  for (const auto& c : crossings) {
    if (c.klass == 2) {
      truck_off = c.offset;
      break;
    }
  }
  const auto q = ExtractQuery(x, truck_off, pulse_len, 0.0, &rng);

  const KvIndex index = BuildKvIndex(x, {.window = 32, .width = 0.1});
  const KvMatcher matcher(x, prefix, index);

  // cNSM-ED: same shape, σ within 1.4x (weight class), mean within 2
  // (thermal drift tolerance). For contrast, an unconstrained variant.
  QueryParams constrained{QueryType::kCnsmEd, 4.0, 1.4, 2.0, 0};
  QueryParams unconstrained{QueryType::kCnsmEd, 4.0, 1000.0, 1000.0, 0};

  for (const auto& [label, params] :
       {std::pair{"cNSM (truck weight class)", constrained},
        std::pair{"NSM-like (no constraints) ", unconstrained}}) {
    MatchStats stats;
    auto results = matcher.Match(q, params, &stats);
    if (!results.ok()) {
      std::fprintf(stderr, "match failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    // Count hits per class (a hit covers a crossing's pulse).
    size_t hits[3] = {0, 0, 0};
    for (const auto& c : crossings) {
      for (const auto& m : *results) {
        if (m.offset + pulse_len > c.offset + 20 &&
            m.offset + 20 < c.offset + pulse_len) {
          ++hits[c.klass];
          break;
        }
      }
    }
    std::printf("\n%s: %zu matches, %llu candidates verified\n", label,
                results->size(),
                static_cast<unsigned long long>(stats.candidate_positions));
    for (int k = 0; k < 3; ++k) {
      std::printf("    %s crossings matched: %zu\n", kNames[k], hits[k]);
    }
  }
  std::printf("\nThe α/β knobs turn 'same shape' into 'same shape AND same "
              "weight class'.\n");
  return 0;
}
