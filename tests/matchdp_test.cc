// KV-matchDP: DP segmentation validity and optimality, multi-index
// matching agreement with brute force.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "matchdp/kv_match_dp.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

struct DpFixture {
  TimeSeries x;
  PrefixStats ps;
  std::vector<KvIndex> indexes;
  std::vector<const KvIndex*> ptrs;

  explicit DpFixture(size_t n, uint64_t seed = 51, size_t wu = 25,
                     size_t levels = 3) {
    Rng rng(seed);
    x = GenerateSynthetic(n, &rng);
    ps = PrefixStats(x);
    indexes = BuildIndexSet(x, wu, levels);
    for (const auto& index : indexes) ptrs.push_back(&index);
  }
};

TEST(SegmenterTest, LengthsAreInSigmaAndTileQueryPrefix) {
  DpFixture f(8000);
  Rng rng(52);
  for (size_t m : {50u, 100u, 175u, 200u, 400u, 730u}) {
    const auto q = ExtractQuery(f.x, 100, m, 0.2, &rng);
    QueryParams params{QueryType::kRsmEd, 2.0, 1.0, 0.0, 0};
    auto sg = SegmentQuery(q, params, f.ptrs);
    ASSERT_TRUE(sg.ok()) << "m=" << m;
    size_t total = 0;
    for (size_t len : sg->lengths) {
      EXPECT_TRUE(len == 25 || len == 50 || len == 100) << "m=" << m;
      total += len;
    }
    // Covers the longest prefix that is a multiple of wu.
    EXPECT_EQ(total, (m / 25) * 25) << "m=" << m;
  }
}

TEST(SegmenterTest, QueryShorterThanWuFails) {
  DpFixture f(3000);
  const std::vector<double> q(20, 1.0);
  QueryParams params{QueryType::kRsmEd, 1.0, 1.0, 0.0, 0};
  EXPECT_FALSE(SegmentQuery(q, params, f.ptrs).ok());
}

TEST(SegmenterTest, DpBeatsAllEnumeratedSegmentations) {
  // Exhaustively enumerate valid segmentations of a short query and check
  // the DP's objective is minimal.
  DpFixture f(6000, 53);
  Rng rng(54);
  const auto q = ExtractQuery(f.x, 1000, 200, 0.3, &rng);
  QueryParams params{QueryType::kCnsmEd, 2.0, 1.5, 3.0, 0};
  auto sg = SegmentQuery(q, params, f.ptrs);
  ASSERT_TRUE(sg.ok());

  // Enumerate all tilings of 8 wu-units with pieces {1, 2, 4}.
  std::vector<std::vector<size_t>> all;
  std::vector<size_t> current;
  std::function<void(size_t)> enumerate = [&](size_t remaining) {
    if (remaining == 0) {
      all.push_back(current);
      return;
    }
    for (size_t piece : {1u, 2u, 4u}) {
      if (piece <= remaining) {
        current.push_back(piece * 25);
        enumerate(remaining - piece);
        current.pop_back();
      }
    }
  };
  enumerate(8);
  ASSERT_GT(all.size(), 10u);

  double best_enum = 1e300;
  for (const auto& lengths : all) {
    auto f_val = EvaluateSegmentation(q, params, f.ptrs, lengths);
    ASSERT_TRUE(f_val.ok());
    best_enum = std::min(best_enum, *f_val);
  }
  EXPECT_NEAR(sg->objective, best_enum, 1e-9 + best_enum * 1e-9);
}

TEST(SegmenterTest, ObjectiveMatchesEvaluateSegmentation) {
  DpFixture f(5000, 55);
  Rng rng(56);
  const auto q = ExtractQuery(f.x, 500, 300, 0.2, &rng);
  QueryParams params{QueryType::kRsmEd, 3.0, 1.0, 0.0, 0};
  auto sg = SegmentQuery(q, params, f.ptrs);
  ASSERT_TRUE(sg.ok());
  auto f_val = EvaluateSegmentation(q, params, f.ptrs, sg->lengths);
  ASSERT_TRUE(f_val.ok());
  EXPECT_NEAR(sg->objective, *f_val, 1e-9 + *f_val * 1e-9);
}

struct DpMatchCase {
  QueryType type;
  double epsilon;
  double alpha;
  double beta;
  size_t rho;
  size_t m;
  const char* name;
};

class KvMatchDpAgainstBruteForce
    : public ::testing::TestWithParam<DpMatchCase> {};

TEST_P(KvMatchDpAgainstBruteForce, ExactAgreement) {
  const DpMatchCase mc = GetParam();
  DpFixture f(6000, 57);
  const KvMatchDp matcher(f.x, f.ps, f.ptrs);
  Rng rng(58);
  for (int trial = 0; trial < 3; ++trial) {
    const size_t off = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(f.x.size() - mc.m)));
    const auto q = ExtractQuery(f.x, off, mc.m, 0.2, &rng);
    QueryParams params{mc.type, mc.epsilon, mc.alpha, mc.beta, mc.rho};
    const auto expected = BruteForceMatch(f.x, q, params);
    auto got = matcher.Match(q, params);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), expected.size()) << mc.name;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].offset, expected[i].offset) << mc.name;
      EXPECT_NEAR((*got)[i].distance, expected[i].distance, 1e-6) << mc.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, KvMatchDpAgainstBruteForce,
    ::testing::Values(
        DpMatchCase{QueryType::kRsmEd, 4.0, 1.0, 0.0, 0, 150, "rsm_ed"},
        DpMatchCase{QueryType::kRsmDtw, 3.0, 1.0, 0.0, 5, 150, "rsm_dtw"},
        DpMatchCase{QueryType::kCnsmEd, 3.0, 1.5, 2.0, 0, 175, "cnsm_ed"},
        DpMatchCase{QueryType::kCnsmDtw, 3.0, 1.5, 3.0, 5, 200, "cnsm_dtw"},
        DpMatchCase{QueryType::kRsmEd, 6.0, 1.0, 0.0, 0, 425, "rsm_ed_long"}),
    [](const auto& info) { return info.param.name; });

TEST(KvMatchDpTest, AgreesWithBasicKvMatchOnAlignedQueries) {
  DpFixture f(6000, 59);
  Rng rng(60);
  const KvMatchDp dp(f.x, f.ps, f.ptrs);
  const KvMatcher basic(f.x, f.ps, f.indexes[0]);  // w = 25
  const auto q = ExtractQuery(f.x, 2500, 250, 0.2, &rng);
  QueryParams params{QueryType::kCnsmEd, 3.5, 1.5, 4.0, 0};
  auto a = dp.Match(q, params);
  auto b = basic.Match(q, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].offset, (*b)[i].offset);
  }
}

TEST(SegmenterTest, EstimateUpperBoundsActualProbe) {
  // The DP plans from meta-table estimates; those must never undercount
  // the intervals an actual probe unions (else the plan could be built on
  // impossible optimism).
  DpFixture f(6000, 62);
  Rng rng(63);
  const auto q = ExtractQuery(f.x, 800, 200, 0.3, &rng);
  QueryParams params{QueryType::kCnsmEd, 2.5, 1.5, 2.0, 0};
  const QueryRangeContext ctx(q, params);
  for (const auto* index : f.ptrs) {
    for (size_t off = 0; off + index->window() <= q.size();
         off += index->window()) {
      const QueryWindow qw = ComputeWindowRange(ctx, off, index->window());
      auto is = index->ProbeRange(qw.lr, qw.ur);
      ASSERT_TRUE(is.ok());
      EXPECT_GE(index->EstimateIntervals(qw.lr, qw.ur),
                is->num_intervals());
    }
  }
}

TEST(SegmenterTest, SingleLevelDegeneratesToFixedWindows) {
  // With one index the DP has no choice: every window is wu long.
  DpFixture f(4000, 64, /*wu=*/25, /*levels=*/1);
  Rng rng(65);
  const auto q = ExtractQuery(f.x, 500, 175, 0.2, &rng);
  QueryParams params{QueryType::kRsmEd, 2.0, 1.0, 0.0, 0};
  auto sg = SegmentQuery(q, params, f.ptrs);
  ASSERT_TRUE(sg.ok());
  EXPECT_EQ(sg->lengths.size(), 7u);
  for (size_t len : sg->lengths) EXPECT_EQ(len, 25u);
}

TEST(KvMatchDpTest, MismatchedIndexSetRejected) {
  DpFixture f(3000, 61);
  // Drop the middle index: windows no longer double.
  std::vector<const KvIndex*> bad = {f.ptrs[0], f.ptrs[2]};
  const std::vector<double> q(100, 1.0);
  QueryParams params{QueryType::kRsmEd, 1.0, 1.0, 0.0, 0};
  EXPECT_FALSE(SegmentQuery(q, params, bad).ok());
}

}  // namespace
}  // namespace kvmatch
