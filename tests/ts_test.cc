// Unit tests for ts/: TimeSeries statistics, PrefixStats oracle, I/O,
// generators.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "ts/generator.h"
#include "ts/io.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries ts({1.0, 2.0, 3.0});
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_FALSE(ts.empty());
  EXPECT_EQ(ts[1], 2.0);
  const auto sub = ts.Subsequence(1, 2);
  EXPECT_EQ(sub[0], 2.0);
  EXPECT_EQ(sub[1], 3.0);
}

TEST(TimeSeriesTest, MeanAndStd) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);  // classic population-σ example
}

TEST(TimeSeriesTest, MeanStdEmptyIsZero) {
  const std::vector<double> v;
  const MeanStd ms = ComputeMeanStd(v);
  EXPECT_EQ(ms.mean, 0.0);
  EXPECT_EQ(ms.std, 0.0);
}

TEST(TimeSeriesTest, ZNormalizeProperties) {
  Rng rng(3);
  std::vector<double> v(257);
  for (auto& x : v) x = rng.Uniform(-10, 10);
  const auto z = ZNormalize(v);
  const MeanStd ms = ComputeMeanStd(z);
  EXPECT_NEAR(ms.mean, 0.0, 1e-9);
  EXPECT_NEAR(ms.std, 1.0, 1e-9);
}

TEST(TimeSeriesTest, ZNormalizeConstantSeriesIsZeros) {
  const std::vector<double> v(10, 3.5);
  for (double z : ZNormalize(v)) EXPECT_EQ(z, 0.0);
}

TEST(TimeSeriesTest, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0, 2.0};
  const MinMax mm = ComputeMinMax(v);
  EXPECT_EQ(mm.min, -1.0);
  EXPECT_EQ(mm.max, 7.0);
}

TEST(PrefixStatsTest, MatchesNaiveOnRandomWindows) {
  Rng rng(5);
  std::vector<double> v(1000);
  for (auto& x : v) x = rng.Uniform(-100, 100);
  TimeSeries ts(v);
  PrefixStats ps(ts);
  EXPECT_EQ(ps.series_length(), 1000u);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 100));
    const size_t off =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(1000 - len)));
    const MeanStd naive = ComputeMeanStd(ts.Subsequence(off, len));
    const MeanStd fast = ps.WindowMeanStd(off, len);
    // Prefix sums trade a little precision (cancellation) for O(1) reads.
    EXPECT_NEAR(fast.mean, naive.mean, 1e-8);
    EXPECT_NEAR(fast.std, naive.std, 2e-5 + naive.std * 1e-6);
  }
}

TEST(PrefixStatsTest, SlidingMeansMatchWindowMean) {
  Rng rng(6);
  std::vector<double> v(300);
  for (auto& x : v) x = rng.Uniform(-5, 5);
  PrefixStats ps{std::span<const double>(v)};
  const auto means = ps.SlidingMeans(32);
  ASSERT_EQ(means.size(), 300u - 32 + 1);
  for (size_t i = 0; i < means.size(); i += 13) {
    EXPECT_NEAR(means[i], ps.WindowMean(i, 32), 1e-12);
  }
}

TEST(PrefixStatsTest, SlidingMeansEmptyWhenWindowTooLarge) {
  const std::vector<double> v(10, 1.0);
  PrefixStats ps{std::span<const double>(v)};
  EXPECT_TRUE(ps.SlidingMeans(11).empty());
  EXPECT_TRUE(ps.SlidingMeans(0).empty());
}

TEST(IoTest, BinaryRoundTrip) {
  Rng rng(7);
  std::vector<double> v(1234);
  for (auto& x : v) x = rng.Uniform(-1e6, 1e6);
  TimeSeries ts(v);
  const std::string path = TempPath("kvmatch_io_test.bin");
  ASSERT_TRUE(WriteBinary(ts, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->values(), ts.values());
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRangeRead) {
  TimeSeries ts({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const std::string path = TempPath("kvmatch_io_range.bin");
  ASSERT_TRUE(WriteBinary(ts, path).ok());
  auto range = ReadBinaryRange(path, 3, 4);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, (std::vector<double>{3, 4, 5, 6}));
  auto past_end = ReadBinaryRange(path, 8, 5);
  EXPECT_FALSE(past_end.ok());
  std::remove(path.c_str());
}

TEST(IoTest, CsvRoundTrip) {
  TimeSeries ts({1.25, -2.5, 3e10, 0.0});
  const std::string path = TempPath("kvmatch_io_test.csv");
  ASSERT_TRUE(WriteCsv(ts, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->values(), ts.values());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIOError) {
  EXPECT_FALSE(ReadBinary("/nonexistent/kvmatch.bin").ok());
  EXPECT_FALSE(ReadCsv("/nonexistent/kvmatch.csv").ok());
}

TEST(GeneratorTest, SyntheticExactLengthAndDeterminism) {
  Rng r1(42), r2(42);
  const TimeSeries a = GenerateSynthetic(10000, &r1);
  const TimeSeries b = GenerateSynthetic(10000, &r2);
  EXPECT_EQ(a.size(), 10000u);
  EXPECT_EQ(a.values(), b.values());
}

TEST(GeneratorTest, SyntheticVariesAcrossSeeds) {
  Rng r1(1), r2(2);
  const TimeSeries a = GenerateSynthetic(5000, &r1);
  const TimeSeries b = GenerateSynthetic(5000, &r2);
  EXPECT_NE(a.values(), b.values());
}

TEST(GeneratorTest, UcrLikeExactLength) {
  Rng rng(8);
  EXPECT_EQ(GenerateUcrLike(12345, &rng).size(), 12345u);
}

TEST(GeneratorTest, UcrLikeValuesBounded) {
  Rng rng(9);
  const TimeSeries ts = GenerateUcrLike(50000, &rng);
  const MinMax mm = ComputeMinMax(ts.values());
  EXPECT_GT(mm.min, -100.0);
  EXPECT_LT(mm.max, 100.0);
}

TEST(GeneratorTest, ExtractQueryNoNoiseIsExact) {
  Rng rng(10);
  const TimeSeries ts = GenerateSynthetic(1000, &rng);
  const auto q = ExtractQuery(ts, 100, 50, 0.0, &rng);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(q[i], ts[100 + i]);
}

TEST(GeneratorTest, ShiftScaleAppliesAffine) {
  const std::vector<double> q = {1.0, 2.0, 3.0};
  const auto out = ShiftScale(q, 10.0, 2.0);
  EXPECT_EQ(out, (std::vector<double>{12.0, 14.0, 16.0}));
}

TEST(GeneratorTest, EogPatternShape) {
  const auto p = EogPattern(200, 500.0, 50.0, 900.0);
  ASSERT_EQ(p.size(), 200u);
  const MinMax mm = ComputeMinMax(p);
  EXPECT_NEAR(mm.max, 900.0, 1.0);   // reaches the peak
  EXPECT_LT(mm.min, 500.0);          // dips below base
  EXPECT_NEAR(p.front(), 500.0, 1.0);
}

TEST(GeneratorTest, StrainPulseReturnsToBaseline) {
  const auto p = StrainPulse(100, 10.0, 5.0);
  EXPECT_NEAR(p.front(), 10.0, 1e-9);
  EXPECT_NEAR(p.back(), 10.0, 1e-9);
  EXPECT_GT(ComputeMinMax(p).max, 14.0);
}

TEST(GeneratorTest, ActivityBlockLevelsSeparateActivities) {
  Rng rng(11);
  const auto a0 = ActivityBlock(500, 0, &rng);
  const auto a2 = ActivityBlock(500, 2, &rng);
  EXPECT_GT(std::fabs(Mean(a0) - Mean(a2)), 1.0);
}

}  // namespace
}  // namespace kvmatch
