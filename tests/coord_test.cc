// Tests for the scatter-gather query federation layer: shard map
// routing/fingerprinting, the cross-shard top-k merge order, and a
// 3-shard in-process cluster whose federated answers must equal (byte
// for byte, order included) a single node holding every series. The
// failure-path tests run against shards that were never started or are
// killed mid-test — a dead shard must become a *typed* partial result,
// never a hang.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/rng.h"
#include "coord/coord_server.h"
#include "coord/coordinator.h"
#include "coord/shard_client.h"
#include "coord/shard_map.h"
#include "match/top_k.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"
#include "ts/generator.h"

namespace kvmatch {
namespace coord {
namespace {

// ------------------------------------------------------------- shard map

TEST(ShardMapTest, ParseSerializeRoundTrip) {
  auto map = ShardMap::Parse(
      "# three-node cluster\n"
      "shard 1 node-b 7101\n"
      "\n"
      "shard 0 node-a 7100\n"
      "shard 2 node-c 7102\n");
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  EXPECT_EQ(map->num_shards(), 3u);
  EXPECT_EQ(map->endpoint(0).host, "node-a");
  EXPECT_EQ(map->endpoint(1).port, 7101);
  EXPECT_EQ(map->endpoint(2).host, "node-c");

  // The canonical serialization reparses to the same map — and therefore
  // the same fingerprint, which is what cluster members compare.
  const std::string canonical = map->Serialize();
  auto reparsed = ShardMap::Parse(canonical);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Serialize(), canonical);
  EXPECT_EQ(reparsed->Fingerprint(), map->Fingerprint());
  EXPECT_NE(map->Fingerprint(), 0u);
}

TEST(ShardMapTest, RejectsMalformedTopologies) {
  EXPECT_FALSE(ShardMap::Parse("").ok());
  EXPECT_FALSE(ShardMap::Parse("shard 0 a 1\nshard 0 b 2\n").ok());
  EXPECT_FALSE(ShardMap::Parse("shard 0 a 1\nshard 2 b 2\n").ok());
  EXPECT_FALSE(ShardMap::Parse("shard x a 1\n").ok());
  EXPECT_FALSE(ShardMap::Parse("bogus 0 a 1\n").ok());
  EXPECT_FALSE(ShardMap::FromEndpoints({}).ok());
}

TEST(ShardMapTest, OwnerIsThePinnedHashOfTheName) {
  auto map = ShardMap::FromEndpoints(
      {{"a", 1}, {"b", 2}, {"c", 3}});
  ASSERT_TRUE(map.ok());
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 64; ++i) {
    const std::string name = "series-" + std::to_string(i);
    const uint32_t owner = map->OwnerOf(name);
    EXPECT_EQ(owner, static_cast<uint32_t>(Fnv1a64(name) % 3));
    ASSERT_LT(owner, 3u);
    seen[owner] = true;
  }
  // FNV spreads: 64 names must touch every shard.
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(ShardMapTest, FingerprintTracksTopology) {
  auto a = ShardMap::Parse("shard 0 host 7100\nshard 1 host 7101\n");
  auto b = ShardMap::Parse("shard 0 host 7100\nshard 1 host 7102\n");
  auto c = ShardMap::Parse("shard 0 host 7100\n");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a->Fingerprint(), b->Fingerprint());
  EXPECT_NE(a->Fingerprint(), c->Fingerprint());
}

TEST(GlobMatchTest, MatchesShellStylePatterns) {
  EXPECT_TRUE(GlobMatch("abc", "abc"));
  EXPECT_FALSE(GlobMatch("abc", "abd"));
  EXPECT_TRUE(GlobMatch("", ""));
  EXPECT_FALSE(GlobMatch("", "a"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("a*", "abc"));
  EXPECT_TRUE(GlobMatch("*c", "abc"));
  EXPECT_TRUE(GlobMatch("a*b*c", "axxbyyc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "axxbyy"));
  EXPECT_TRUE(GlobMatch("**a*", "baa"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "abbc"));
  EXPECT_TRUE(GlobMatch("s*-??", "sensor-07"));
  EXPECT_FALSE(GlobMatch("s*-??", "sensor-7"));
  EXPECT_TRUE(IsGlobPattern("f*"));
  EXPECT_TRUE(IsGlobPattern("f?"));
  EXPECT_FALSE(IsGlobPattern("f7"));
}

// --------------------------------------------------------- top-k merge

TEST(MergeTopKTest, EqualDistancesOrderBySeriesThenOffset) {
  // Three sources with a duplicate distance (1.0) spread across series:
  // the (distance, series, offset) total order must break the tie the
  // same way regardless of source order.
  const std::vector<std::vector<SeriesMatch>> sources = {
      {{"b", {10, 1.0}}, {"b", {30, 1.0}}},
      {{"a", {20, 1.0}}, {"a", {5, 2.0}}},
      {{"c", {1, 0.5}}},
  };
  const std::vector<SeriesMatch> expected = {
      {"c", {1, 0.5}},
      {"a", {20, 1.0}},
      {"b", {10, 1.0}},
      {"b", {30, 1.0}},
  };
  EXPECT_EQ(MergeTopK(sources, 4), expected);

  std::vector<std::vector<SeriesMatch>> reversed(sources.rbegin(),
                                                 sources.rend());
  EXPECT_EQ(MergeTopK(reversed, 4), expected);

  // The heap is bounded: k=2 keeps only the global best two.
  const auto top2 = MergeTopK(sources, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], expected[0]);
  EXPECT_EQ(top2[1], expected[1]);

  EXPECT_TRUE(MergeTopK({}, 3).empty());
  EXPECT_TRUE(MergeTopK(sources, 0).empty());
}

// ------------------------------------------------------ deadline budget

TEST(RemainingBudgetMsTest, SubtractsElapsedAtEachHop) {
  const auto now = std::chrono::steady_clock::now();
  // "No deadline" and "already expired" markers pass through untouched.
  EXPECT_EQ(net::RemainingBudgetMs(0.0, now), 0.0);
  EXPECT_EQ(net::RemainingBudgetMs(-3.0, now), -3.0);
  // A live budget shrinks by the time spent at this hop.
  const auto received = now - std::chrono::milliseconds(100);
  const double remaining = net::RemainingBudgetMs(250.0, received);
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 150.0);
  // A budget the hop outspent goes negative — expired, not unlimited.
  EXPECT_LT(net::RemainingBudgetMs(50.0, received), 0.0);
}

// -------------------------------------------------- in-process cluster

constexpr size_t kClusterShards = 3;
constexpr size_t kClusterSeries = 9;  // "f0".."f8": 3 owned by each shard
constexpr size_t kClusterLen = 2048;

Session::Options SmallOptions() {
  Session::Options options;
  options.wu = 25;
  options.levels = 3;
  return options;
}

/// One self-contained shard: its own store, catalog, service and wire
/// server on an ephemeral loopback port.
struct ShardNode {
  MemKvStore store;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::Server> server;
};

std::unique_ptr<ShardNode> StartShardNode(
    uint32_t shard_id, uint32_t num_shards,
    const std::shared_ptr<ShardMap>& map, size_t threads = 4) {
  Catalog::Options copts;
  copts.session = SmallOptions();
  auto node = std::make_unique<ShardNode>();
  node->catalog = std::make_unique<Catalog>(&node->store, copts);
  node->service = std::make_unique<QueryService>(
      node->catalog.get(),
      QueryService::Options{.num_threads = threads, .max_queue = 1024});
  node->catalog->SetStatsRegistry(node->service->stats_registry());
  net::Server::Options sopts;
  sopts.port = 0;
  sopts.shard_id = shard_id;
  sopts.num_shards = num_shards;
  // Ownership fence. The map is filled in only after every shard has an
  // ephemeral port, so an empty map means "fence not armed yet".
  sopts.owns_series = [map, shard_id](const std::string& name) {
    return map->num_shards() == 0 || map->OwnerOf(name) == shard_id;
  };
  node->server = std::make_unique<net::Server>(node->catalog.get(),
                                               node->service.get(), sopts);
  Status st = node->server->Start();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return node;
}

/// A 3-shard cluster with the catalog hash-partitioned across it, plus a
/// single node holding EVERY series — the ground truth a federated
/// answer must reproduce exactly.
struct ClusterFixture {
  std::vector<std::unique_ptr<ShardNode>> nodes;
  std::shared_ptr<ShardMap> map = std::make_shared<ShardMap>();

  MemKvStore all_store;
  std::unique_ptr<Catalog> all_catalog;
  std::unique_ptr<QueryService> all_service;
  std::unique_ptr<net::Server> all_server;

  std::vector<std::string> names;
  std::vector<TimeSeries> refs;

  ClusterFixture() {
    for (uint32_t s = 0; s < kClusterShards; ++s) {
      nodes.push_back(StartShardNode(s, kClusterShards, map));
    }
    std::vector<ShardEndpoint> endpoints;
    for (auto& node : nodes) {
      endpoints.push_back(ShardEndpoint{"127.0.0.1", node->server->port()});
    }
    auto built = ShardMap::FromEndpoints(std::move(endpoints));
    EXPECT_TRUE(built.ok());
    *map = *built;  // arms the ownership fences

    Catalog::Options copts;
    copts.session = SmallOptions();
    all_catalog = std::make_unique<Catalog>(&all_store, copts);
    all_service = std::make_unique<QueryService>(
        all_catalog.get(),
        QueryService::Options{.num_threads = 4, .max_queue = 1024});
    net::Server::Options aopts;
    aopts.port = 0;
    all_server = std::make_unique<net::Server>(all_catalog.get(),
                                               all_service.get(), aopts);
    Status st = all_server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();

    std::vector<bool> owns(kClusterShards, false);
    for (size_t i = 0; i < kClusterSeries; ++i) {
      names.push_back("f" + std::to_string(i));
      Rng rng(7000 + i);
      TimeSeries x = GenerateSynthetic(kClusterLen, &rng);
      refs.push_back(x);
      const uint32_t owner = map->OwnerOf(names[i]);
      owns[owner] = true;
      TimeSeries copy = x;
      EXPECT_TRUE(
          nodes[owner]->catalog->Ingest(names[i], std::move(copy)).ok());
      EXPECT_TRUE(all_catalog->Ingest(names[i], std::move(x)).ok());
    }
    // The comparisons below only exercise federation if no shard is idle.
    for (size_t s = 0; s < kClusterShards; ++s) {
      EXPECT_TRUE(owns[s]) << "shard " << s << " owns no series";
    }
  }

  Coordinator::Options CoordinatorOptions() const {
    Coordinator::Options options;
    // Ephemeral ports: the shards started before the map existed, so
    // their identity cannot carry its fingerprint.
    options.verify_shard_identity = false;
    return options;
  }

  CoordServer::CoordOptions CoordServerOptions() const {
    CoordServer::CoordOptions options;
    options.server.port = 0;
    options.coord = CoordinatorOptions();
    return options;
  }
};

/// Exact-series request i of a workload covering all five query types,
/// threshold and top-k.
QueryRequest MakeRequest(const ClusterFixture& fx, size_t i) {
  const QueryType kTypes[] = {QueryType::kRsmEd, QueryType::kRsmDtw,
                              QueryType::kCnsmEd, QueryType::kCnsmDtw,
                              QueryType::kRsmL1};
  Rng rng(90 + i);
  const size_t series = i % fx.names.size();
  QueryRequest req;
  req.series = fx.names[series];
  const size_t qlen = 100 + 25 * (i % 3);
  const size_t qoff = (173 * i) % (kClusterLen - qlen);
  req.query = ExtractQuery(fx.refs[series], qoff, qlen, 0.1, &rng);
  req.params.type = kTypes[i % 5];
  req.params.epsilon = 2.0 + static_cast<double>(i % 3);
  req.params.alpha = 1.5;
  req.params.beta = 3.0;
  req.params.rho = 5;
  if (i % 4 == 3) req.top_k = 4;
  return req;
}

std::vector<MatchResult> SerialQuery(Catalog* catalog,
                                     const QueryRequest& req) {
  auto session = catalog->Acquire(req.series);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  auto matches = req.top_k > 0
                     ? (*session)->QueryTopK(req.query, req.params,
                                             req.top_k, req.topk_options)
                     : (*session)->Query(req.query, req.params);
  EXPECT_TRUE(matches.ok()) << matches.status().ToString();
  return std::move(matches).value();
}

TEST(CoordFederationTest, ExactSeriesAnswersByteIdenticalToSingleNode) {
  ClusterFixture fx;
  CoordServer coordinator(*fx.map, fx.CoordServerOptions());
  ASSERT_TRUE(coordinator.Start().ok());

  auto fed = net::Client::Connect("127.0.0.1", coordinator.port());
  auto single = net::Client::Connect("127.0.0.1", fx.all_server->port());
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  // A coordinator identifies itself as such on the wire.
  auto info = (*fed)->GetShardInfo();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->shard_id, net::kCoordinatorShardId);
  EXPECT_EQ(info->num_shards, kClusterShards);
  EXPECT_EQ(info->map_fingerprint, fx.map->Fingerprint());

  for (size_t i = 0; i < 20; ++i) {
    const QueryRequest req = MakeRequest(fx, i);
    auto a = (*fed)->Query(req);
    auto b = (*single)->Query(req);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_TRUE(a->status.ok()) << a->status.ToString();
    ASSERT_TRUE(b->status.ok()) << b->status.ToString();
    // Matches identical INCLUDING order, and the deterministic stats
    // counters agree — the shard did the same work the single node did.
    EXPECT_EQ(a->matches, b->matches) << "request " << i;
    EXPECT_EQ(a->stats.candidate_positions, b->stats.candidate_positions);
    EXPECT_EQ(a->stats.distance_calls, b->stats.distance_calls);
    // Byte identity once the run-dependent timing is normalized.
    QueryResponse na = *a;
    QueryResponse nb = *b;
    na.latency_ms = nb.latency_ms = 0.0;
    na.stats = nb.stats = MatchStats();
    std::string wire_a, wire_b;
    net::EncodeQueryResponseBody(na, &wire_a);
    net::EncodeQueryResponseBody(nb, &wire_b);
    EXPECT_EQ(wire_a, wire_b) << "request " << i;
  }
  coordinator.Stop();
}

TEST(CoordFederationTest, PatternThresholdMergesEveryShardInNameOrder) {
  ClusterFixture fx;
  CoordServer coordinator(*fx.map, fx.CoordServerOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  auto client = net::Client::Connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(client.ok());

  Rng rng(31);
  net::WireQueryRequest wire;
  wire.request.series = "f*";
  wire.request.query = ExtractQuery(fx.refs[2], 300, 128, 0.1, &rng);
  wire.request.params.type = QueryType::kRsmEd;
  wire.request.params.epsilon = 3.0;

  auto fed = (*client)->FederatedQuery(wire);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  ASSERT_TRUE(fed->status.ok()) << fed->status.ToString();
  EXPECT_EQ(fed->shards_total, kClusterShards);
  EXPECT_EQ(fed->shards_ok, kClusterShards);
  EXPECT_FALSE(fed->partial());
  EXPECT_TRUE(fed->shard_errors.empty());

  // Every series answers, groups sorted by name, each group identical
  // (order included) to the single node's per-series result.
  ASSERT_EQ(fed->groups.size(), fx.names.size());
  for (size_t i = 0; i < fed->groups.size(); ++i) {
    EXPECT_EQ(fed->groups[i].series, fx.names[i]);
    if (i > 0) EXPECT_LT(fed->groups[i - 1].series, fed->groups[i].series);
    QueryRequest per = wire.request;
    per.series = fed->groups[i].series;
    EXPECT_EQ(fed->groups[i].matches, SerialQuery(fx.all_catalog.get(), per))
        << fed->groups[i].series;
  }
  coordinator.Stop();
}

TEST(CoordFederationTest, PatternTopKIsTheGlobalBoundedHeapOrder) {
  ClusterFixture fx;
  CoordServer coordinator(*fx.map, fx.CoordServerOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  auto client = net::Client::Connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(client.ok());

  Rng rng(47);
  net::WireQueryRequest wire;
  wire.request.series = "f?";
  wire.request.query = ExtractQuery(fx.refs[4], 512, 150, 0.1, &rng);
  wire.request.params.type = QueryType::kRsmEd;
  wire.request.top_k = 5;

  auto fed = (*client)->FederatedQuery(wire);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  ASSERT_TRUE(fed->status.ok()) << fed->status.ToString();
  EXPECT_FALSE(fed->partial());

  // Expected: each series' local top-k from the single node, merged
  // through the same (distance, series, offset) bounded heap.
  std::vector<std::vector<SeriesMatch>> sources;
  for (const auto& name : fx.names) {
    QueryRequest per = wire.request;
    per.series = name;
    std::vector<SeriesMatch> tagged;
    for (const MatchResult& m : SerialQuery(fx.all_catalog.get(), per)) {
      tagged.push_back(SeriesMatch{name, m});
    }
    sources.push_back(std::move(tagged));
  }
  std::map<std::string, std::vector<MatchResult>> regrouped;
  for (SeriesMatch& winner : MergeTopK(std::move(sources), 5)) {
    regrouped[winner.series].push_back(winner.match);
  }

  size_t total = 0;
  ASSERT_EQ(fed->groups.size(), regrouped.size());
  size_t i = 0;
  for (const auto& [series, matches] : regrouped) {
    EXPECT_EQ(fed->groups[i].series, series);
    EXPECT_EQ(fed->groups[i].matches, matches) << series;
    total += fed->groups[i].matches.size();
    ++i;
  }
  EXPECT_EQ(total, 5u);
  coordinator.Stop();
}

TEST(CoordFederationTest, PatternRejectsByReferenceQueries) {
  ClusterFixture fx;
  CoordServer coordinator(*fx.map, fx.CoordServerOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  auto client = net::Client::Connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(client.ok());

  net::WireQueryRequest wire;
  wire.request.series = "f*";
  wire.by_reference = true;
  wire.ref_offset = 0;
  wire.ref_length = 128;
  auto fed = (*client)->FederatedQuery(wire);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  EXPECT_TRUE(fed->status.IsInvalidArgument()) << fed->status.ToString();

  // The connection survives the rejection.
  EXPECT_TRUE((*client)->Ping().ok());
  coordinator.Stop();
}

TEST(CoordFederationTest, PatternTraceAggregatesShardSpans) {
  ClusterFixture fx;
  CoordServer coordinator(*fx.map, fx.CoordServerOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  auto client = net::Client::Connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(client.ok());

  Rng rng(13);
  net::WireQueryRequest wire;
  wire.request.series = "f*";
  wire.request.query = ExtractQuery(fx.refs[0], 100, 128, 0.1, &rng);
  wire.request.params.type = QueryType::kRsmEd;
  wire.request.params.epsilon = 2.0;
  wire.request.collect_trace = true;

  auto fed = (*client)->FederatedQuery(wire);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  ASSERT_TRUE(fed->status.ok()) << fed->status.ToString();
  ASSERT_NE(fed->trace, nullptr);

  // One round-trip span per shard, the coordinator's merge span, and the
  // shards' own stage spans re-based and namespaced under shardN/series.
  std::vector<bool> shard_span(kClusterShards, false);
  bool merge_span = false;
  bool namespaced = false;
  for (const TraceSpan& span : fed->trace->spans()) {
    for (size_t s = 0; s < kClusterShards; ++s) {
      if (span.name == "shard" + std::to_string(s)) shard_span[s] = true;
    }
    if (span.name == "merge") merge_span = true;
    if (span.name.find("/f") != std::string::npos) namespaced = true;
    EXPECT_GE(span.start_ms, 0.0) << span.name;
  }
  for (size_t s = 0; s < kClusterShards; ++s) {
    EXPECT_TRUE(shard_span[s]) << "missing span for shard " << s;
  }
  EXPECT_TRUE(merge_span);
  EXPECT_TRUE(namespaced);
  coordinator.Stop();
}

TEST(CoordFederationTest, ExpiredDeadlineAnswersTypedDeadlineExceeded) {
  ClusterFixture fx;
  CoordServer coordinator(*fx.map, fx.CoordServerOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  auto client = net::Client::Connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(client.ok());

  // A microsecond budget is spent before the shard can dequeue: the
  // re-anchored (negative) remaining budget must arrive at the shard as
  // "expired", not be mistaken for "no deadline".
  QueryRequest req = MakeRequest(fx, 0);
  req.top_k = 0;
  req.timeout_ms = 0.0001;
  auto response = (*client)->Query(req);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsDeadlineExceeded())
      << response->status.ToString();

  // The connection and the cluster survive; an unbounded retry works.
  req.timeout_ms = 0.0;
  auto retry = (*client)->Query(req);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->status.ok()) << retry->status.ToString();
  coordinator.Stop();
}

TEST(CoordFederationTest, IngestRoutesToOwnerAndFenceRejectsMisrouted) {
  ClusterFixture fx;
  CoordServer coordinator(*fx.map, fx.CoordServerOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  auto client = net::Client::Connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(client.ok());

  Rng rng(555);
  const TimeSeries fresh = GenerateSynthetic(600, &rng);
  auto ack = (*client)->CreateSeries("routed", fresh.values());
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();

  // The series landed on its owner shard and nowhere else.
  const uint32_t owner = fx.map->OwnerOf("routed");
  for (uint32_t s = 0; s < kClusterShards; ++s) {
    auto direct =
        net::Client::Connect("127.0.0.1", fx.nodes[s]->server->port());
    ASSERT_TRUE(direct.ok());
    auto listing = (*direct)->ListSeries();
    ASSERT_TRUE(listing.ok());
    const bool found =
        std::any_of(listing->begin(), listing->end(),
                    [](const net::SeriesInfo& info) {
                      return info.name == "routed";
                    });
    EXPECT_EQ(found, s == owner) << "shard " << s;

    // A misrouted write straight to a non-owner shard hits the fence.
    if (s != owner) {
      auto misrouted = (*direct)->CreateSeries("routed", fresh.values());
      EXPECT_FALSE(misrouted.ok());
    }
  }

  // Appends and drops route the same way.
  auto extended = (*client)->AppendSeries("routed", fresh.values());
  ASSERT_TRUE(extended.ok()) << extended.status().ToString();
  EXPECT_EQ(extended->length, 2 * fresh.values().size());
  ASSERT_TRUE((*client)->DropSeries("routed").ok());

  // LIST through the coordinator is the union of every shard.
  auto listing = (*client)->ListSeries();
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), fx.names.size());
  for (size_t i = 0; i < fx.names.size(); ++i) {
    EXPECT_EQ((*listing)[i].name, fx.names[i]);
  }
  coordinator.Stop();
}

TEST(CoordFederationTest, ReshardLeftoverIsDeduplicatedByOwnership) {
  ClusterFixture fx;
  // A stale replica of f0 (shorter, so answers would differ) left on a
  // non-owner shard, as after an interrupted reshard.
  const uint32_t owner = fx.map->OwnerOf("f0");
  const uint32_t other = (owner + 1) % kClusterShards;
  Rng rng(8100);
  ASSERT_TRUE(fx.nodes[other]
                  ->catalog->Ingest("f0", GenerateSynthetic(700, &rng))
                  .ok());

  CoordServer coordinator(*fx.map, fx.CoordServerOptions());
  ASSERT_TRUE(coordinator.Start().ok());
  auto client = net::Client::Connect("127.0.0.1", coordinator.port());
  ASSERT_TRUE(client.ok());

  // LIST keeps one entry — the owner's copy (full length).
  auto listing = (*client)->ListSeries();
  ASSERT_TRUE(listing.ok());
  size_t seen = 0;
  for (const auto& info : *listing) {
    if (info.name == "f0") {
      ++seen;
      EXPECT_EQ(info.length, kClusterLen);
    }
  }
  EXPECT_EQ(seen, 1u);

  // A pattern query produces ONE group for f0, computed on the owner.
  Rng qrng(8101);
  net::WireQueryRequest wire;
  wire.request.series = "f0*";
  wire.request.query = ExtractQuery(fx.refs[0], 200, 128, 0.1, &qrng);
  wire.request.params.type = QueryType::kRsmEd;
  wire.request.params.epsilon = 3.0;
  auto fed = (*client)->FederatedQuery(wire);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  ASSERT_TRUE(fed->status.ok());
  ASSERT_EQ(fed->groups.size(), 1u);
  EXPECT_EQ(fed->groups[0].series, "f0");
  QueryRequest per = wire.request;
  per.series = "f0";
  EXPECT_EQ(fed->groups[0].matches, SerialQuery(fx.all_catalog.get(), per));
  coordinator.Stop();
}

// ------------------------------------------------------- failure paths

/// A loopback port with no listener behind it (bound, inspected, closed).
int ReserveClosedPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(CoordFederationTest, DeadShardYieldsTypedPartialResults) {
  // Shards 0 and 1 live; shard 2's endpoint was never started. Series
  // hashing to shard 2 ("g3", "g4", "g8") are simply down.
  auto map = std::make_shared<ShardMap>();
  std::vector<std::unique_ptr<ShardNode>> nodes;
  nodes.push_back(StartShardNode(0, 3, map));
  nodes.push_back(StartShardNode(1, 3, map));
  auto built = ShardMap::FromEndpoints(
      {ShardEndpoint{"127.0.0.1", nodes[0]->server->port()},
       ShardEndpoint{"127.0.0.1", nodes[1]->server->port()},
       ShardEndpoint{"127.0.0.1", ReserveClosedPort()}});
  ASSERT_TRUE(built.ok());
  *map = *built;

  std::vector<std::string> live_names;
  std::string dead_name;
  TimeSeries source;
  for (size_t i = 0; i < 9; ++i) {
    const std::string name = "g" + std::to_string(i);
    const uint32_t owner = map->OwnerOf(name);
    if (owner >= 2) {
      dead_name = name;
      continue;
    }
    Rng rng(6200 + i);
    TimeSeries x = GenerateSynthetic(1024, &rng);
    if (source.empty()) source = x;
    ASSERT_TRUE(nodes[owner]->catalog->Ingest(name, std::move(x)).ok());
    live_names.push_back(name);
  }
  ASSERT_FALSE(dead_name.empty());
  ASSERT_FALSE(live_names.empty());
  std::sort(live_names.begin(), live_names.end());

  Coordinator::Options options;
  options.verify_shard_identity = false;
  options.client.call_timeout_ms = 2'000.0;
  Coordinator coord(*map, options);

  // Pattern: the live shards answer in full, the dead shard is a typed
  // per-shard error — partial, not failed, and never a hang.
  Rng qrng(6300);
  net::WireQueryRequest wire;
  wire.request.series = "g*";
  wire.request.query = ExtractQuery(source, 100, 128, 0.1, &qrng);
  wire.request.params.type = QueryType::kRsmEd;
  wire.request.params.epsilon = 3.0;
  net::FederatedResponse fed = coord.ExecutePattern(wire, nullptr);
  EXPECT_TRUE(fed.status.ok()) << fed.status.ToString();
  EXPECT_EQ(fed.shards_total, 3u);
  EXPECT_EQ(fed.shards_ok, 2u);
  EXPECT_TRUE(fed.partial());
  ASSERT_EQ(fed.shard_errors.size(), 1u);
  EXPECT_EQ(fed.shard_errors[0].first, 2u);
  EXPECT_FALSE(fed.shard_errors[0].second.ok());
  ASSERT_EQ(fed.groups.size(), live_names.size());
  for (size_t i = 0; i < live_names.size(); ++i) {
    EXPECT_EQ(fed.groups[i].series, live_names[i]);
  }

  // Exact routing to the dead shard: typed error, fast.
  net::WireQueryRequest exact = wire;
  exact.request.series = dead_name;
  const QueryResponse direct = coord.ExecuteExact(exact, nullptr);
  EXPECT_FALSE(direct.status.ok());
}

TEST(CoordFederationTest, KilledShardBecomesTypedErrorWithDialBackoff) {
  ClusterFixture fx;
  Coordinator::Options options = fx.CoordinatorOptions();
  options.client.call_timeout_ms = 2'000.0;
  options.client.backoff_initial_ms = 200.0;
  Coordinator coord(*fx.map, options);

  // f3 hashes to shard 0, f1 to shard 1 (pinned by Fnv1a64).
  ASSERT_EQ(fx.map->OwnerOf("f3"), 0u);
  ASSERT_EQ(fx.map->OwnerOf("f1"), 1u);

  Rng rng(911);
  net::WireQueryRequest wire;
  wire.request.series = "f3";
  wire.request.query = ExtractQuery(fx.refs[3], 50, 128, 0.1, &rng);
  wire.request.params.type = QueryType::kRsmEd;
  wire.request.params.epsilon = 3.0;
  EXPECT_TRUE(coord.ExecuteExact(wire, nullptr).status.ok());
  EXPECT_TRUE(coord.shard(0)->connected());

  // Kill shard 0 under an established connection.
  fx.nodes[0]->server->Stop();
  const QueryResponse after = coord.ExecuteExact(wire, nullptr);
  EXPECT_FALSE(after.status.ok());
  EXPECT_FALSE(coord.shard(0)->connected());

  // Redial fails (nobody listens), arming the backoff; the next attempt
  // inside the window fails FAST with the typed backoff status.
  EXPECT_FALSE(coord.ExecuteExact(wire, nullptr).status.ok());
  const QueryResponse backed_off = coord.ExecuteExact(wire, nullptr);
  EXPECT_TRUE(backed_off.status.IsResourceExhausted())
      << backed_off.status.ToString();

  // The other shards are untouched.
  net::WireQueryRequest other = wire;
  other.request.series = "f1";
  Rng rng2(912);
  other.request.query = ExtractQuery(fx.refs[1], 50, 128, 0.1, &rng2);
  EXPECT_TRUE(coord.ExecuteExact(other, nullptr).status.ok());
}

TEST(ShardClientTest, RefusesShardWithWrongIdentity) {
  // A shard claiming (shard 1, fingerprint 0xABC).
  MemKvStore store;
  Catalog catalog(&store);
  QueryService service(&catalog,
                       QueryService::Options{.num_threads = 1,
                                             .max_queue = 16});
  net::Server::Options sopts;
  sopts.port = 0;
  sopts.shard_id = 1;
  sopts.num_shards = 2;
  sopts.shard_map_fingerprint = 0xABC;
  net::Server server(&catalog, &service, sopts);
  ASSERT_TRUE(server.Start().ok());
  const ShardEndpoint endpoint{"127.0.0.1", server.port()};

  ShardClient::Options wrong_map;
  wrong_map.expect_fingerprint = 0xDEF;
  wrong_map.expect_shard_id = 1;
  ShardClient refused(endpoint, wrong_map);
  Status st = refused.EnsureConnected();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_FALSE(refused.connected());
  // The refusal armed the dial backoff: an immediate retry fails fast.
  st = refused.EnsureConnected();
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();

  ShardClient::Options wrong_id;
  wrong_id.expect_fingerprint = 0xABC;
  wrong_id.expect_shard_id = 0;
  ShardClient misplaced(endpoint, wrong_id);
  EXPECT_TRUE(misplaced.EnsureConnected().IsInvalidArgument());

  ShardClient::Options right;
  right.expect_fingerprint = 0xABC;
  right.expect_shard_id = 1;
  ShardClient accepted(endpoint, right);
  EXPECT_TRUE(accepted.EnsureConnected().ok());
  EXPECT_TRUE(accepted.connected());
  server.Stop();
}

// ---------------------------------------------------- cancel fan-out

TEST(CoordFederationTest, CancelFansKCancelToEveryShard) {
  // One never-finishing query per shard (loose cNSM-DTW bounds force the
  // full verify cascade over 60k points — minutes uncancelled), so the
  // cancel must be what ends each of them. heavy0/1/2 hash to shards
  // 1/2/0 respectively: every shard runs exactly one sub-query.
  auto map = std::make_shared<ShardMap>();
  std::vector<std::unique_ptr<ShardNode>> nodes;
  for (uint32_t s = 0; s < 3; ++s) {
    nodes.push_back(StartShardNode(s, 3, map, /*threads=*/2));
  }
  auto built = ShardMap::FromEndpoints(
      {ShardEndpoint{"127.0.0.1", nodes[0]->server->port()},
       ShardEndpoint{"127.0.0.1", nodes[1]->server->port()},
       ShardEndpoint{"127.0.0.1", nodes[2]->server->port()}});
  ASSERT_TRUE(built.ok());
  *map = *built;

  Rng rng(4242);
  const TimeSeries heavy = GenerateSynthetic(60'000, &rng);
  std::vector<bool> owns(3, false);
  for (int i = 0; i < 3; ++i) {
    const std::string name = "heavy" + std::to_string(i);
    const uint32_t owner = map->OwnerOf(name);
    owns[owner] = true;
    TimeSeries copy = heavy;
    ASSERT_TRUE(nodes[owner]->catalog->Ingest(name, std::move(copy)).ok());
  }
  ASSERT_TRUE(owns[0] && owns[1] && owns[2]);

  Coordinator::Options options;
  options.verify_shard_identity = false;
  Coordinator coord(*map, options);

  net::WireQueryRequest wire;
  wire.request.series = "heavy*";
  wire.request.query = ExtractQuery(heavy, 30'000, 512, 0.3, &rng);
  wire.request.params.type = QueryType::kCnsmDtw;
  wire.request.params.epsilon = 1e6;
  wire.request.params.alpha = 1e6;
  wire.request.params.beta = 1e6;
  wire.request.params.rho = 32;

  auto cancel = std::make_shared<CancelToken>();
  std::thread killer([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    cancel->Cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  net::FederatedResponse fed = coord.ExecutePattern(wire, cancel);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  killer.join();

  // Every sub-query ended Cancelled, so no shard contributed and the
  // whole federated answer is typed Cancelled — well before the queries'
  // natural runtime.
  EXPECT_TRUE(fed.status.IsCancelled()) << fed.status.ToString();
  EXPECT_EQ(fed.shards_ok, 0u);
  EXPECT_EQ(fed.shard_errors.size(), 3u);
  EXPECT_LT(elapsed_ms, 10'000.0);

  // The kCancel reached EVERY shard: each shard's own service observed
  // exactly its one sub-query cancelled.
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(nodes[s]->service->Stats().cancelled, 1u) << "shard " << s;
  }
}

}  // namespace
}  // namespace coord
}  // namespace kvmatch
