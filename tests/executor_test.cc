// Tests for the cooperative query executor: stepwise phase 1, bounded
// verify slices, cancellation/deadline semantics at both the executor and
// QueryService layers, and — most importantly — that the decomposed paths
// (stepwise, sliced, service-parallel, cancelled-and-retried) all return
// exactly the brute-force reference results. The racing-cancel test is a
// TSan target: N submitter threads against a canceller firing tokens at
// random while queries run.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "match/executor.h"
#include "matchdp/session.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

Session::Options SmallOptions() {
  Session::Options options;
  options.wu = 25;
  options.levels = 3;
  return options;
}

void ExpectSameMatches(const std::vector<MatchResult>& got,
                       const std::vector<MatchResult>& expected,
                       const char* label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].offset, expected[i].offset) << label << " i=" << i;
    EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-6)
        << label << " i=" << i;
  }
}

/// A query whose phase 2 visits (nearly) every position and cannot finish
/// instantly: loose cNSM-DTW bounds force the full lower-bound cascade —
/// and usually the exact banded DTW — on each of ~n candidates.
QueryRequest HeavyRequest(const TimeSeries& series, size_t m, size_t rho) {
  Rng rng(909);
  QueryRequest req;
  req.series = "heavy";
  req.query = ExtractQuery(series, series.size() / 2, m, 0.3, &rng);
  req.params.type = QueryType::kCnsmDtw;
  req.params.epsilon = 1e6;  // never abandons, never prunes
  req.params.alpha = 1e6;
  req.params.beta = 1e6;
  req.params.rho = rho;
  return req;
}

TEST(QueryExecutorTest, SlicedExecutionAgreesWithSingleShotAndBruteForce) {
  Rng rng(51);
  const TimeSeries x = GenerateSynthetic(5000, &rng);
  auto session = Session::FromSeries(x, SmallOptions());
  ASSERT_TRUE(session.ok());

  const QueryParams cases[] = {
      {QueryType::kRsmEd, 6.0, 1.0, 0.0, 0},
      {QueryType::kRsmDtw, 4.0, 1.0, 0.0, 6},
      {QueryType::kCnsmEd, 4.0, 1.5, 2.0, 0},
      {QueryType::kCnsmDtw, 3.0, 1.5, 2.0, 6},
      {QueryType::kRsmL1, 60.0, 1.0, 0.0, 0},
  };
  for (const auto& params : cases) {
    const auto q = ExtractQuery(x, 700, 150, 0.2, &rng);
    const auto expected = BruteForceMatch(x, q, params);
    const auto single = (*session)->Query(q, params);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    ExpectSameMatches(*single, expected, "single-shot");

    // Manual drive: step every probe, slice tiny, verify slice by slice.
    auto executor = (*session)->MakeExecutor(q, params);
    ASSERT_TRUE(executor.ok()) << executor.status().ToString();
    EXPECT_GT((*executor)->probes_total(), 0u);
    while (!(*executor)->phase1_done()) {
      ASSERT_TRUE((*executor)->StepProbe().ok());
    }
    EXPECT_EQ((*executor)->probes_done(), (*executor)->probes_total());
    const size_t slices = (*executor)->SliceCandidates(64);
    std::vector<MatchResult> sliced;
    MatchStats stats;
    for (size_t i = 0; i < slices; ++i) {
      auto part = (*executor)->VerifySlice(i, {}, &stats);
      ASSERT_TRUE(part.ok());
      sliced.insert(sliced.end(), part->begin(), part->end());
    }
    ExpectSameMatches(sliced, expected, "sliced");
    // Every candidate position was visited exactly once across slices.
    EXPECT_EQ(static_cast<int64_t>(stats.distance_calls + stats.lb_pruned +
                                   stats.constraint_pruned),
              (*executor)->candidates().num_positions());
  }
}

TEST(QueryExecutorTest, SliceDecompositionIsBoundedAndExhaustive) {
  Rng rng(52);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  auto session = Session::FromSeries(x, SmallOptions());
  ASSERT_TRUE(session.ok());
  QueryParams params{QueryType::kRsmEd, 20.0, 1.0, 0.0, 0};  // loose
  const auto q = ExtractQuery(x, 100, 100, 0.3, &rng);

  auto executor = (*session)->MakeExecutor(q, params);
  ASSERT_TRUE(executor.ok());
  ASSERT_TRUE((*executor)->RunPhase1().ok());
  const int64_t total = (*executor)->candidates().num_positions();
  ASSERT_GT(total, 100);  // loose ε: plenty of candidates

  const size_t max_positions = 37;
  const size_t slices = (*executor)->SliceCandidates(max_positions);
  EXPECT_EQ(slices, (*executor)->num_slices());
  int64_t covered = 0;
  for (size_t i = 0; i < slices; ++i) {
    const IntervalList& slice = (*executor)->slice(i);
    EXPECT_LE(slice.num_positions(),
              static_cast<int64_t>(max_positions));
    EXPECT_FALSE(slice.empty());
    covered += slice.num_positions();
  }
  EXPECT_EQ(covered, total);  // a partition: no loss, no overlap in count
  // Expected ceil-division slice count for a bounded partition.
  EXPECT_EQ(static_cast<int64_t>(slices),
            (total + static_cast<int64_t>(max_positions) - 1) /
                static_cast<int64_t>(max_positions));
}

TEST(QueryExecutorTest, CancelAndDeadlineStopAtCheckpoints) {
  Rng rng(53);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  auto session = Session::FromSeries(x, SmallOptions());
  ASSERT_TRUE(session.ok());
  QueryParams params{QueryType::kRsmEd, 20.0, 1.0, 0.0, 0};
  const auto q = ExtractQuery(x, 100, 100, 0.3, &rng);

  // Pre-cancelled token: phase 1 refuses to take a single step.
  {
    CancelToken token;
    token.Cancel();
    ExecContext ctx;
    ctx.cancel = &token;
    auto executor = (*session)->MakeExecutor(q, params);
    ASSERT_TRUE(executor.ok());
    const Status st = (*executor)->RunPhase1(ctx);
    EXPECT_TRUE(st.IsCancelled()) << st.ToString();
    EXPECT_EQ((*executor)->probes_done(), 0u);
  }

  // Expired deadline: same, but DeadlineExceeded.
  {
    ExecContext ctx;
    ctx.deadline = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1);
    auto executor = (*session)->MakeExecutor(q, params);
    ASSERT_TRUE(executor.ok());
    EXPECT_TRUE((*executor)->RunPhase1(ctx).IsDeadlineExceeded());
  }

  // Mid-phase-2 cancel stops within ONE slice: verify k slices, fire the
  // token, and the very next VerifySlice call returns Cancelled.
  {
    auto executor = (*session)->MakeExecutor(q, params);
    ASSERT_TRUE(executor.ok());
    ASSERT_TRUE((*executor)->RunPhase1().ok());
    const size_t slices = (*executor)->SliceCandidates(32);
    ASSERT_GT(slices, 4u);
    CancelToken token;
    ExecContext ctx;
    ctx.cancel = &token;
    MatchStats stats;
    size_t verified = 0;
    for (size_t i = 0; i < slices; ++i) {
      if (i == 3) token.Cancel();
      auto part = (*executor)->VerifySlice(i, ctx, &stats);
      if (!part.ok()) {
        EXPECT_TRUE(part.status().IsCancelled());
        break;
      }
      ++verified;
    }
    EXPECT_EQ(verified, 3u);  // slices 0..2 ran; slice 3 refused to start
    // Partial stats: exactly the three verified slices' positions.
    int64_t three_slices = 0;
    for (size_t i = 0; i < 3; ++i) {
      three_slices += (*executor)->slice(i).num_positions();
    }
    EXPECT_EQ(static_cast<int64_t>(stats.distance_calls + stats.lb_pruned +
                                   stats.constraint_pruned),
              three_slices);
  }
}

TEST(QueryExecutorTest, RunReportsPartialStatsOnAbort) {
  Rng rng(54);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  auto session = Session::FromSeries(x, SmallOptions());
  ASSERT_TRUE(session.ok());
  QueryParams params{QueryType::kRsmEd, 20.0, 1.0, 0.0, 0};
  const auto q = ExtractQuery(x, 100, 100, 0.3, &rng);

  // A deadline that expires immediately after phase 1: Run() aborts in
  // phase 2 but still carries the phase-1 candidate accounting.
  auto executor = (*session)->MakeExecutor(q, params);
  ASSERT_TRUE(executor.ok());
  ASSERT_TRUE((*executor)->RunPhase1().ok());
  (*executor)->SliceCandidates(16);
  ExecContext ctx;
  ctx.deadline = std::chrono::steady_clock::now();
  MatchStats stats;
  auto result = (*executor)->Run(ctx, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_GT(stats.candidate_positions, 0u);
  EXPECT_GT(stats.probe.index_accesses, 0u);
}

// ---------------------------------------------------------------- service

struct ServiceFixture {
  MemKvStore store;
  TimeSeries reference;
  std::unique_ptr<Catalog> catalog;

  explicit ServiceFixture(size_t n) {
    Rng rng(77);
    reference = GenerateSynthetic(n, &rng);
    Catalog::Options copts;
    copts.session = SmallOptions();
    catalog = std::make_unique<Catalog>(&store, copts);
    EXPECT_TRUE(catalog->Ingest("heavy", reference).ok());
  }
};

TEST(QueryServiceExecutorTest, ParallelVerifySlicesMatchSerialExecution) {
  ServiceFixture fx(6000);
  QueryParams params{QueryType::kCnsmEd, 5.0, 2.0, 8.0, 0};
  Rng rng(78);

  auto session = fx.catalog->Acquire("heavy");
  ASSERT_TRUE(session.ok());

  QueryService::Options popts;
  popts.num_threads = 4;
  popts.parallel_verify = true;
  popts.verify_slice_positions = 128;  // force many slices
  QueryService parallel(fx.catalog.get(), popts);

  QueryService::Options sopts_serial = popts;
  sopts_serial.parallel_verify = false;
  QueryService serial(fx.catalog.get(), sopts_serial);

  for (int trial = 0; trial < 3; ++trial) {
    QueryRequest req;
    req.series = "heavy";
    const size_t m = 100 + 50 * trial;
    req.query = ExtractQuery(fx.reference, 500 + 700 * trial, m, 0.2, &rng);
    req.params = params;

    const auto expected = BruteForceMatch(fx.reference, req.query,
                                          req.params);
    const QueryResponse from_parallel = parallel.Submit(req).get();
    const QueryResponse from_serial = serial.Submit(req).get();
    ASSERT_TRUE(from_parallel.status.ok())
        << from_parallel.status.ToString();
    ASSERT_TRUE(from_serial.status.ok());
    ExpectSameMatches(from_parallel.matches, expected, "parallel");
    ExpectSameMatches(from_serial.matches, expected, "serial");
    // Both paths verified every candidate exactly once.
    EXPECT_EQ(from_parallel.stats.distance_calls +
                  from_parallel.stats.lb_pruned +
                  from_parallel.stats.constraint_pruned,
              from_serial.stats.distance_calls +
                  from_serial.stats.lb_pruned +
                  from_serial.stats.constraint_pruned);
  }
  EXPECT_EQ(parallel.InFlight(), 0u);
}

TEST(QueryServiceExecutorTest, DeadlineAbortsRunningQueryMidPhase2) {
  ServiceFixture fx(60'000);
  QueryService::Options opts;
  opts.num_threads = 1;
  QueryService service(fx.catalog.get(), opts);

  // The worker is idle, so the request dequeues immediately and the 30ms
  // budget expires mid-execution (the query needs far longer than that):
  // the abort must come from a probe/slice checkpoint, carrying partial
  // stats and the dedicated mid-flight counter.
  QueryRequest req = HeavyRequest(fx.reference, 512, 32);
  req.timeout_ms = 30.0;
  const QueryResponse response = service.Submit(req).get();
  ASSERT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  EXPECT_TRUE(response.matches.empty());
  // Partial progress was made and reported.
  EXPECT_GT(response.stats.probe.index_accesses, 0u);

  const ServiceStatsSnapshot snap = service.Stats();
  EXPECT_EQ(snap.deadline_aborted_running, 1u);
  EXPECT_EQ(snap.deadline_exceeded, 0u);  // it DID start running
  EXPECT_EQ(snap.in_flight, 0u);
}

TEST(QueryServiceExecutorTest, CancelByRequestIdAbortsRunningQuery) {
  ServiceFixture fx(60'000);
  QueryService::Options opts;
  opts.num_threads = 1;
  QueryService service(fx.catalog.get(), opts);

  std::promise<QueryResponse> delivered;
  const uint64_t id = service.SubmitWithCallback(
      HeavyRequest(fx.reference, 512, 32),
      [&](QueryResponse response) { delivered.set_value(std::move(response)); });
  // Let the (idle) worker pick it up, then cancel mid-flight. The query
  // runs for many seconds uncancelled, so 50ms is deep inside execution.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(service.Cancel(id).ok());

  const QueryResponse response = delivered.get_future().get();
  ASSERT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  EXPECT_TRUE(response.matches.empty());

  const ServiceStatsSnapshot snap = service.Stats();
  EXPECT_EQ(snap.cancelled, 1u);
  EXPECT_EQ(snap.in_flight, 0u);
  // The id is gone once answered.
  EXPECT_TRUE(service.Cancel(id).IsNotFound());
}

TEST(QueryServiceExecutorTest, CancelQueuedRequestNeverExecutes) {
  ServiceFixture fx(60'000);
  QueryService::Options opts;
  opts.num_threads = 1;
  QueryService service(fx.catalog.get(), opts);

  // Occupy the only worker, queue a second request, cancel it while it
  // waits: it must answer Cancelled without running (no per-series query
  // recorded for it).
  auto busy_token = std::make_shared<CancelToken>();
  QueryRequest busy = HeavyRequest(fx.reference, 512, 32);
  busy.cancel = busy_token;
  auto busy_future = service.Submit(busy);

  QueryRequest queued;
  queued.series = "heavy";
  Rng rng(5);
  queued.query = ExtractQuery(fx.reference, 10, 100, 0.0, &rng);
  queued.params.epsilon = 1.0;
  std::promise<QueryResponse> delivered;
  const uint64_t id = service.SubmitWithCallback(
      std::move(queued),
      [&](QueryResponse response) { delivered.set_value(std::move(response)); });
  EXPECT_TRUE(service.Cancel(id).ok());
  busy_token->Cancel();  // release the worker

  EXPECT_TRUE(busy_future.get().status.IsCancelled());
  const QueryResponse response = delivered.get_future().get();
  EXPECT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  EXPECT_EQ(service.Stats().cancelled, 2u);
  EXPECT_EQ(service.Stats().total_queries, 0u);  // neither ever completed
}

TEST(QueryServiceExecutorTest, CancelUnknownIdIsNotFound) {
  ServiceFixture fx(1000);
  QueryService service(fx.catalog.get(), {.num_threads = 1});
  EXPECT_TRUE(service.Cancel(123456789).IsNotFound());
}

// The TSan centerpiece: submitter threads race a canceller that fires
// tokens while queries run. Every response must be either Cancelled or
// exactly the reference answer — nothing torn, no counter drift, and the
// in-flight gauge returns to zero.
TEST(QueryServiceExecutorTest, RacingCancelsAgainstRunningQueries) {
  ServiceFixture fx(8000);
  QueryService::Options opts;
  opts.num_threads = 4;
  opts.verify_slice_positions = 256;  // frequent checkpoints
  QueryService service(fx.catalog.get(), opts);

  // A moderately slow query (loose DTW) so cancels land mid-flight often.
  QueryRequest base = HeavyRequest(fx.reference, 128, 8);
  const auto expected =
      BruteForceMatch(fx.reference, base.query, base.params);

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 6;
  std::vector<std::shared_ptr<CancelToken>> tokens(kSubmitters * kPerThread);
  for (auto& t : tokens) t = std::make_shared<CancelToken>();

  std::atomic<bool> stop_cancelling{false};
  std::thread canceller([&] {
    Rng rng(99);
    while (!stop_cancelling.load(std::memory_order_relaxed)) {
      tokens[static_cast<size_t>(rng.UniformInt(
                 0, static_cast<int64_t>(tokens.size()) - 1))]
          ->Cancel();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> submitters;
  std::atomic<size_t> ok_count{0}, cancelled_count{0};
  std::vector<std::string> failures(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryRequest req = base;
        req.cancel = tokens[static_cast<size_t>(t * kPerThread + i)];
        const QueryResponse response = service.Submit(req).get();
        if (response.status.ok()) {
          if (response.matches.size() != expected.size()) {
            failures[t] = "torn result";
            return;
          }
          ok_count.fetch_add(1);
        } else if (response.status.IsCancelled()) {
          cancelled_count.fetch_add(1);
        } else {
          failures[t] = response.status.ToString();
          return;
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  stop_cancelling.store(true);
  canceller.join();
  for (const auto& failure : failures) EXPECT_EQ(failure, "");

  const ServiceStatsSnapshot snap = service.Stats();
  EXPECT_EQ(ok_count.load() + cancelled_count.load(),
            static_cast<size_t>(kSubmitters * kPerThread));
  EXPECT_EQ(snap.cancelled, cancelled_count.load());
  EXPECT_EQ(snap.in_flight, 0u);
  EXPECT_EQ(service.InFlight(), 0u);
}

}  // namespace
}  // namespace kvmatch
