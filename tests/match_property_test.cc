// Randomized end-to-end property sweep: across seeds, window sizes, data
// generators and query types, KV-match and KV-matchDP must return exactly
// the brute-force answer (no false dismissals, no false positives), and
// the candidate set must contain every true match.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "matchdp/kv_match_dp.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

// (seed, window, ucr_like)
using SweepParam = std::tuple<uint64_t, size_t, bool>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, KvMatchEqualsBruteForceOnAllQueryTypes) {
  const auto [seed, w, ucr_like] = GetParam();
  Rng rng(seed);
  const TimeSeries x =
      ucr_like ? GenerateUcrLike(4000, &rng) : GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = w});
  const KvMatcher matcher(x, ps, index);

  const size_t m = 4 * w;
  const size_t off = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(x.size() - m)));
  const auto q = ExtractQuery(x, off, m, 0.15, &rng);

  const QueryParams cases[] = {
      {QueryType::kRsmEd, 4.0, 1.0, 0.0, 0},
      {QueryType::kRsmDtw, 3.0, 1.0, 0.0, w / 4},
      {QueryType::kCnsmEd, 3.0, 1.4, 2.5, 0},
      {QueryType::kCnsmDtw, 2.5, 1.4, 2.5, w / 4},
  };
  for (const auto& params : cases) {
    const auto expected = BruteForceMatch(x, q, params);
    auto got = matcher.Match(q, params);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), expected.size())
        << "type=" << static_cast<int>(params.type) << " seed=" << seed
        << " w=" << w;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].offset, expected[i].offset);
      EXPECT_NEAR((*got)[i].distance, expected[i].distance, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PipelineSweep,
    ::testing::Combine(::testing::Values(1, 7, 13, 29, 101),
                       ::testing::Values(16, 25, 50),
                       ::testing::Bool()));

class DpSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpSweep, KvMatchDpEqualsBruteForceAcrossLengths) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31 + 5);
  const TimeSeries x = GenerateSynthetic(5000, &rng);
  PrefixStats ps(x);
  const auto set = BuildIndexSet(x, 20, 3);  // w = 20, 40, 80
  std::vector<const KvIndex*> ptrs;
  for (const auto& index : set) ptrs.push_back(&index);
  const KvMatchDp matcher(x, ps, ptrs);

  for (size_t m : {60u, 140u, 300u}) {
    const size_t off = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(x.size() - m)));
    const auto q = ExtractQuery(x, off, m, 0.2, &rng);
    QueryParams params{QueryType::kCnsmEd, 3.0, 1.5, 3.0, 0};
    const auto expected = BruteForceMatch(x, q, params);
    auto got = matcher.Match(q, params);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), expected.size()) << "seed=" << seed << " m=" << m;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].offset, expected[i].offset);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpSweep,
                         ::testing::Values(2, 3, 5, 8, 21, 55));

// Shift/scale invariance: a query that is an affine transform of a data
// subsequence must be found by cNSM as long as (α, β) admit the transform,
// and must be rejected once they do not.
class AffineKnobs : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(AffineKnobs, ConstraintsAdmitOrRejectAffineTransforms) {
  const auto [scale, shift] = GetParam();
  Rng rng(77);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  const KvMatcher matcher(x, ps, index);

  const size_t off = 1500, m = 200;
  const auto base = ExtractQuery(x, off, m, 0.0, &rng);
  const auto q = ShiftScale(base, shift, scale);

  // Admitting knobs: α covers the scale, β covers the shift (plus the
  // change of mean from scaling). Normalized shapes are identical, so any
  // small ε works.
  const MeanStd base_ms = ComputeMeanStd(base);
  const double mean_delta =
      std::fabs((scale - 1.0) * base_ms.mean + shift);
  QueryParams admit{QueryType::kCnsmEd, 0.5,
                    std::max(scale, 1.0 / scale) + 0.01,
                    mean_delta + 0.01, 0};
  auto got = matcher.Match(q, admit);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(std::any_of(got->begin(), got->end(), [&](const MatchResult& r) {
    return r.offset == off;
  })) << "scale=" << scale << " shift=" << shift;

  // Rejecting knobs: α strictly below the scale (when scaling) or β
  // strictly below the shift (when shifting).
  if (scale != 1.0) {
    QueryParams reject = admit;
    reject.alpha = std::max(scale, 1.0 / scale) * 0.9;
    if (reject.alpha < 1.0) reject.alpha = 1.0;
    auto r = matcher.Match(q, reject);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(std::any_of(r->begin(), r->end(), [&](const MatchResult& m2) {
      return m2.offset == off;
    }));
  }
  if (shift != 0.0 && scale == 1.0) {
    QueryParams reject = admit;
    reject.beta = mean_delta * 0.9;
    auto r = matcher.Match(q, reject);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(std::any_of(r->begin(), r->end(), [&](const MatchResult& m2) {
      return m2.offset == off;
    }));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Transforms, AffineKnobs,
    ::testing::Values(std::make_tuple(1.0, 3.0), std::make_tuple(1.0, -5.0),
                      std::make_tuple(1.8, 0.0), std::make_tuple(0.6, 0.0),
                      std::make_tuple(1.5, 2.0), std::make_tuple(0.7, -1.5)));

}  // namespace
}  // namespace kvmatch
