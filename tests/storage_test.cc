// Unit tests for storage/: MemKvStore, FileKvStore, block format, SSTable,
// MiniKv (including corruption detection and newest-wins merge semantics).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "common/event_log.h"
#include "common/rng.h"
#include "storage/block.h"
#include "ts/series_store.h"
#include "storage/file_kvstore.h"
#include "storage/instrumented_kvstore.h"
#include "storage/mem_kvstore.h"
#include "storage/minikv.h"
#include "storage/sstable.h"

namespace kvmatch {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

// ---- Shared KvStore contract, parameterized over implementations ----

enum class StoreKind { kMem, kFile, kMini };

struct StoreFixture {
  std::unique_ptr<KvStore> store;
  std::string path;  // for cleanup

  StoreFixture() = default;
  StoreFixture(StoreFixture&&) = default;
  StoreFixture& operator=(StoreFixture&&) = default;

  ~StoreFixture() {
    store.reset();
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

StoreFixture MakeStore(StoreKind kind, const std::string& tag) {
  StoreFixture f;
  switch (kind) {
    case StoreKind::kMem:
      f.store = std::make_unique<MemKvStore>();
      break;
    case StoreKind::kFile: {
      f.path = TempPath("kvm_file_" + tag);
      std::remove(f.path.c_str());
      auto r = FileKvStore::Open(f.path);
      EXPECT_TRUE(r.ok());
      f.store = std::move(r).value();
      break;
    }
    case StoreKind::kMini: {
      f.path = TempPath("kvm_mini_" + tag);
      fs::remove_all(f.path);
      auto r = MiniKv::Open(f.path);
      EXPECT_TRUE(r.ok());
      f.store = std::move(r).value();
      break;
    }
  }
  return f;
}

class KvStoreContract : public ::testing::TestWithParam<StoreKind> {};

TEST_P(KvStoreContract, PutGetRoundTrip) {
  auto f = MakeStore(GetParam(), "putget");
  ASSERT_TRUE(f.store->Put("alpha", "1").ok());
  ASSERT_TRUE(f.store->Put("beta", "2").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  std::string v;
  ASSERT_TRUE(f.store->Get("alpha", &v).ok());
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(f.store->Get("beta", &v).ok());
  EXPECT_EQ(v, "2");
  EXPECT_TRUE(f.store->Get("gamma", &v).IsNotFound());
}

TEST_P(KvStoreContract, OverwriteKeepsLatest) {
  auto f = MakeStore(GetParam(), "overwrite");
  ASSERT_TRUE(f.store->Put("k", "old").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  ASSERT_TRUE(f.store->Put("k", "new").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  std::string v;
  ASSERT_TRUE(f.store->Get("k", &v).ok());
  EXPECT_EQ(v, "new");
}

TEST_P(KvStoreContract, ScanIsOrderedAndBounded) {
  auto f = MakeStore(GetParam(), "scan");
  Rng rng(1);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 500; ++i) {
    const std::string k = Key(static_cast<int>(rng.UniformInt(0, 9999)));
    const std::string v = "v" + std::to_string(i);
    truth[k] = v;
    ASSERT_TRUE(f.store->Put(k, v).ok());
  }
  ASSERT_TRUE(f.store->Flush().ok());

  const std::string lo = Key(2500), hi = Key(7500);
  std::map<std::string, std::string> expected;
  for (const auto& [k, v] : truth) {
    if (k >= lo && k < hi) expected[k] = v;
  }
  std::map<std::string, std::string> got;
  std::string prev;
  for (auto it = f.store->Scan(lo, hi); it->Valid(); it->Next()) {
    ASSERT_TRUE(it->status().ok());
    const std::string k(it->key());
    EXPECT_GT(k, prev);  // strictly increasing
    prev = k;
    got[k] = std::string(it->value());
  }
  EXPECT_EQ(got, expected);
}

TEST_P(KvStoreContract, ScanEmptyEndKeyGoesToEnd) {
  auto f = MakeStore(GetParam(), "scanend");
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(f.store->Put(Key(i), "x").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  size_t count = 0;
  for (auto it = f.store->Scan(Key(10), ""); it->Valid(); it->Next()) ++count;
  EXPECT_EQ(count, 10u);
}

TEST_P(KvStoreContract, ScanEmptyRange) {
  auto f = MakeStore(GetParam(), "scannone");
  ASSERT_TRUE(f.store->Put("m", "1").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  auto it = f.store->Scan("x", "z");
  EXPECT_FALSE(it->Valid());
}

TEST_P(KvStoreContract, DeleteRemovesKeyFromGetAndScan) {
  auto f = MakeStore(GetParam(), "delete");
  ASSERT_TRUE(f.store->Put("a", "1").ok());
  ASSERT_TRUE(f.store->Put("b", "2").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  ASSERT_TRUE(f.store->Delete("a").ok());
  ASSERT_TRUE(f.store->Delete("missing").ok());  // idempotent
  ASSERT_TRUE(f.store->Flush().ok());
  std::string v;
  EXPECT_TRUE(f.store->Get("a", &v).IsNotFound());
  ASSERT_TRUE(f.store->Get("b", &v).ok());
  size_t count = 0;
  for (auto it = f.store->Scan("", ""); it->Valid(); it->Next()) {
    EXPECT_EQ(it->key(), "b");
    ++count;
  }
  EXPECT_EQ(count, 1u);
  // A deleted key can be rewritten.
  ASSERT_TRUE(f.store->Put("a", "3").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  ASSERT_TRUE(f.store->Get("a", &v).ok());
  EXPECT_EQ(v, "3");
}

TEST_P(KvStoreContract, DeleteRangeRemovesExactlyTheRange) {
  auto f = MakeStore(GetParam(), "delrange");
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(f.store->Put(Key(i), "v").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  ASSERT_TRUE(f.store->DeleteRange(Key(10), Key(40)).ok());
  ASSERT_TRUE(f.store->Flush().ok());
  std::vector<std::string> kept;
  for (auto it = f.store->Scan("", ""); it->Valid(); it->Next()) {
    kept.emplace_back(it->key());
  }
  ASSERT_EQ(kept.size(), 20u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(kept[static_cast<size_t>(i)], Key(i));
  for (int i = 40; i < 50; ++i) {
    EXPECT_EQ(kept[static_cast<size_t>(i - 30)], Key(i));
  }
}

TEST_P(KvStoreContract, DeleteRangeByPrefixCoversUnflushedWrites) {
  auto f = MakeStore(GetParam(), "delprefix");
  ASSERT_TRUE(f.store->Put("series/a/data/1", "x").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  ASSERT_TRUE(f.store->Put("series/a/data/2", "y").ok());  // staged only
  ASSERT_TRUE(f.store->Put("series/b/data/1", "z").ok());
  const std::string prefix = "series/a/";
  ASSERT_TRUE(f.store->DeleteRange(prefix, PrefixUpperBound(prefix)).ok());
  ASSERT_TRUE(f.store->Flush().ok());
  std::string v;
  EXPECT_TRUE(f.store->Get("series/a/data/1", &v).IsNotFound());
  EXPECT_TRUE(f.store->Get("series/a/data/2", &v).IsNotFound());
  ASSERT_TRUE(f.store->Get("series/b/data/1", &v).ok());
}

TEST_P(KvStoreContract, WriteBatchRespectsOpOrder) {
  auto f = MakeStore(GetParam(), "batch");
  ASSERT_TRUE(f.store->Put("old", "1").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  WriteBatch batch;
  batch.Put("k", "first");
  batch.Delete("k");
  batch.Put("k", "second");  // later op wins
  batch.DeleteRange("old", "oldz");
  batch.Put("old2", "kept");  // written after the range delete
  ASSERT_TRUE(f.store->Apply(batch).ok());
  ASSERT_TRUE(f.store->Flush().ok());
  std::string v;
  ASSERT_TRUE(f.store->Get("k", &v).ok());
  EXPECT_EQ(v, "second");
  EXPECT_TRUE(f.store->Get("old", &v).IsNotFound());
  ASSERT_TRUE(f.store->Get("old2", &v).ok());
  EXPECT_EQ(v, "kept");
}

TEST_P(KvStoreContract, ScanIsASnapshotAcrossLaterWrites) {
  auto f = MakeStore(GetParam(), "snapshot");
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.store->Put(Key(i), "v0").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  auto it = f.store->Scan("", "");
  // Mutate everything after the scan started.
  ASSERT_TRUE(f.store->DeleteRange("", "").ok());
  ASSERT_TRUE(f.store->Put(Key(99), "new").ok());
  ASSERT_TRUE(f.store->Flush().ok());
  size_t count = 0;
  for (; it->Valid(); it->Next()) {
    ASSERT_TRUE(it->status().ok());
    EXPECT_EQ(it->value(), "v0");
    ++count;
  }
  EXPECT_EQ(count, 10u);
  // A fresh scan sees the new state.
  count = 0;
  for (auto it2 = f.store->Scan("", ""); it2->Valid(); it2->Next()) {
    EXPECT_EQ(it2->key(), Key(99));
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllStores, KvStoreContract,
                         ::testing::Values(StoreKind::kMem, StoreKind::kFile,
                                           StoreKind::kMini));

// ---- Cross-backend parity: one op sequence, three implementations ----

// The write path (Delete/DeleteRange/WriteBatch) relies on all backends
// implementing identical overwrite and delete semantics. Drive the same
// randomized op sequence into every backend plus a std::map oracle and
// require byte-identical scan results at every Flush checkpoint.
TEST(StorageParityTest, SameOpSequenceYieldsIdenticalScans) {
  MiniKv::Options mini_opts;
  mini_opts.memtable_limit_bytes = 2048;  // force frequent table turnover
  const std::string mini_dir = TempPath("kvm_parity_mini");
  const std::string file_path = TempPath("kvm_parity_file");
  fs::remove_all(mini_dir);
  std::remove(file_path.c_str());

  std::vector<std::unique_ptr<KvStore>> stores;
  stores.push_back(std::make_unique<MemKvStore>());
  {
    auto r = FileKvStore::Open(file_path);
    ASSERT_TRUE(r.ok());
    stores.push_back(std::move(r).value());
  }
  {
    auto r = MiniKv::Open(mini_dir, mini_opts);
    ASSERT_TRUE(r.ok());
    stores.push_back(std::move(r).value());
  }

  std::map<std::string, std::string> oracle;
  auto oracle_delete_range = [&oracle](const std::string& lo,
                                       const std::string& hi) {
    auto begin = oracle.lower_bound(lo);
    auto end = hi.empty() ? oracle.end() : oracle.lower_bound(hi);
    oracle.erase(begin, end);
  };

  Rng rng(20260730);
  auto random_key = [&rng] {
    return Key(static_cast<int>(rng.UniformInt(0, 149)));
  };

  for (int step = 0; step < 1200; ++step) {
    const int64_t roll = rng.UniformInt(0, 99);
    if (roll < 55) {
      const std::string k = random_key();
      const std::string v = "v" + std::to_string(rng.Next() % 1000);
      oracle[k] = v;
      for (auto& s : stores) ASSERT_TRUE(s->Put(k, v).ok());
    } else if (roll < 75) {
      const std::string k = random_key();
      oracle.erase(k);
      for (auto& s : stores) ASSERT_TRUE(s->Delete(k).ok());
    } else if (roll < 85) {
      std::string lo = random_key(), hi = random_key();
      if (hi < lo) std::swap(lo, hi);
      oracle_delete_range(lo, hi);
      for (auto& s : stores) ASSERT_TRUE(s->DeleteRange(lo, hi).ok());
    } else {
      WriteBatch batch;
      const int64_t ops = rng.UniformInt(2, 6);
      for (int64_t i = 0; i < ops; ++i) {
        const std::string k = random_key();
        if (rng.UniformInt(0, 2) == 0) {
          batch.Delete(k);
          oracle.erase(k);
        } else {
          const std::string v = "b" + std::to_string(rng.Next() % 1000);
          batch.Put(k, v);
          oracle[k] = v;
        }
      }
      for (auto& s : stores) ASSERT_TRUE(s->Apply(batch).ok());
    }

    if (step % 150 == 149) {
      for (auto& s : stores) ASSERT_TRUE(s->Flush().ok());
      for (size_t si = 0; si < stores.size(); ++si) {
        std::map<std::string, std::string> got;
        for (auto it = stores[si]->Scan("", ""); it->Valid(); it->Next()) {
          ASSERT_TRUE(it->status().ok());
          got[std::string(it->key())] = std::string(it->value());
        }
        ASSERT_EQ(got, oracle) << "store " << si << " diverged at step "
                               << step;
      }
    }
  }

  stores.clear();
  fs::remove_all(mini_dir);
  std::remove(file_path.c_str());
}

// The epoch delta-commit layout leans on namespace-wide DeleteRange
// (epoch purges, data-generation purges, appended-tail trims) interleaved
// with chunk/index writes across "series/<s>/d<G>/" and "series/<s>/e<N>/"
// prefixes. Drive that exact op shape into every backend plus the oracle.
TEST(StorageParityTest, SharedDataAndEpochNamespaceOpsStayInParity) {
  MiniKv::Options mini_opts;
  mini_opts.memtable_limit_bytes = 2048;
  const std::string mini_dir = TempPath("kvm_parity_ns_mini");
  const std::string file_path = TempPath("kvm_parity_ns_file");
  fs::remove_all(mini_dir);
  std::remove(file_path.c_str());

  std::vector<std::unique_ptr<KvStore>> stores;
  stores.push_back(std::make_unique<MemKvStore>());
  {
    auto r = FileKvStore::Open(file_path);
    ASSERT_TRUE(r.ok());
    stores.push_back(std::move(r).value());
  }
  {
    auto r = MiniKv::Open(mini_dir, mini_opts);
    ASSERT_TRUE(r.ok());
    stores.push_back(std::move(r).value());
  }

  std::map<std::string, std::string> oracle;
  auto oracle_delete_range = [&oracle](const std::string& lo,
                                       const std::string& hi) {
    auto begin = oracle.lower_bound(lo);
    auto end = hi.empty() ? oracle.end() : oracle.lower_bound(hi);
    oracle.erase(begin, end);
  };

  Rng rng(20260731);
  const std::vector<std::string> names = {"a", "bb"};
  // The real chunk-row key encoding, so the test tracks the layout.
  const auto chunk_key = SeriesStore::ChunkKey;
  auto data_ns = [&](const std::string& name) {
    return "series/" + name + "/d" +
           std::to_string(rng.UniformInt(0, 3)) + "/";
  };
  auto epoch_ns = [&](const std::string& name) {
    return "series/" + name + "/e" +
           std::to_string(rng.UniformInt(0, 5)) + "/";
  };
  auto apply_all = [&](const WriteBatch& batch) {
    for (auto& s : stores) ASSERT_TRUE(s->Apply(batch).ok());
  };

  for (int step = 0; step < 900; ++step) {
    const std::string name = names[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(names.size()) - 1))];
    const int64_t roll = rng.UniformInt(0, 99);
    if (roll < 35) {
      // Chunk row into a shared data generation.
      const std::string k = chunk_key(
          data_ns(name), 64 * static_cast<uint64_t>(rng.UniformInt(0, 15)));
      const std::string v = "chunk" + std::to_string(rng.Next() % 100);
      oracle[k] = v;
      for (auto& s : stores) ASSERT_TRUE(s->Put(k, v).ok());
    } else if (roll < 55) {
      // Epoch rows: header + an index row, as one atomic batch.
      const std::string ns = epoch_ns(name);
      WriteBatch batch;
      const std::string hk = ns + "data/h";
      const std::string rk =
          ns + "idx/w25/r" + std::to_string(rng.UniformInt(0, 9));
      const std::string hv = "hdr" + std::to_string(rng.Next() % 100);
      const std::string rv = "row" + std::to_string(rng.Next() % 100);
      batch.Put(hk, hv);
      batch.Put(rk, rv);
      oracle[hk] = hv;
      oracle[rk] = rv;
      apply_all(batch);
    } else if (roll < 70) {
      // Namespace purge (epoch retire or data-generation death).
      const std::string ns =
          rng.UniformInt(0, 1) == 0 ? data_ns(name) : epoch_ns(name);
      oracle_delete_range(ns, PrefixUpperBound(ns));
      for (auto& s : stores) {
        ASSERT_TRUE(s->DeleteRange(ns, PrefixUpperBound(ns)).ok());
      }
    } else if (roll < 85) {
      // Appended-tail trim: every chunk at or past a rollback length.
      const std::string ns = data_ns(name);
      const std::string lo = chunk_key(
          ns, 64 * static_cast<uint64_t>(rng.UniformInt(0, 15)));
      const std::string hi = PrefixUpperBound(ns + "c");
      oracle_delete_range(lo, hi);
      for (auto& s : stores) ASSERT_TRUE(s->DeleteRange(lo, hi).ok());
    } else {
      // Rollback-shaped batch: delete a namespace, rewrite a directory
      // row, drop a journal row — all atomically.
      const std::string ns = epoch_ns(name);
      WriteBatch batch;
      batch.DeleteRange(ns, PrefixUpperBound(ns));
      const std::string dk = "catalog/" + name;
      const std::string dv = "dir" + std::to_string(rng.Next() % 100);
      batch.Put(dk, dv);
      batch.Delete("journal/" + name);
      oracle_delete_range(ns, PrefixUpperBound(ns));
      oracle[dk] = dv;
      oracle.erase("journal/" + name);
      apply_all(batch);
      // Occasionally re-stage a journal row for later deletes to hit.
      if (rng.UniformInt(0, 1) == 0) {
        const std::string jk = "journal/" + name;
        const std::string jv = "intent" + std::to_string(rng.Next() % 10);
        oracle[jk] = jv;
        for (auto& s : stores) ASSERT_TRUE(s->Put(jk, jv).ok());
      }
    }

    if (step % 100 == 99) {
      for (auto& s : stores) ASSERT_TRUE(s->Flush().ok());
      for (size_t si = 0; si < stores.size(); ++si) {
        std::map<std::string, std::string> got;
        for (auto it = stores[si]->Scan("", ""); it->Valid(); it->Next()) {
          ASSERT_TRUE(it->status().ok());
          got[std::string(it->key())] = std::string(it->value());
        }
        ASSERT_EQ(got, oracle) << "store " << si << " diverged at step "
                               << step;
      }
    }
  }

  stores.clear();
  fs::remove_all(mini_dir);
  std::remove(file_path.c_str());
}

// ---- FileKvStore specifics ----

TEST(FileKvStoreTest, PersistsAcrossReopen) {
  const std::string path = TempPath("kvm_file_reopen");
  std::remove(path.c_str());
  {
    auto r = FileKvStore::Open(path);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE((*r)->Put("persist", "yes").ok());
    ASSERT_TRUE((*r)->Flush().ok());
  }
  auto r = FileKvStore::Open(path);
  ASSERT_TRUE(r.ok());
  std::string v;
  ASSERT_TRUE((*r)->Get("persist", &v).ok());
  EXPECT_EQ(v, "yes");
  std::remove(path.c_str());
}

TEST(FileKvStoreTest, DetectsCorruptedMeta) {
  const std::string path = TempPath("kvm_file_corrupt");
  std::remove(path.c_str());
  {
    auto r = FileKvStore::Open(path);
    ASSERT_TRUE(r.ok());
    for (int i = 0; i < 50; ++i) ASSERT_TRUE((*r)->Put(Key(i), "v").ok());
    ASSERT_TRUE((*r)->Flush().ok());
  }
  // Flip a byte in the middle of the file (meta area is near the end).
  {
    std::FILE* fp = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(fp, nullptr);
    std::fseek(fp, -40, SEEK_END);
    int c = std::fgetc(fp);
    std::fseek(fp, -40, SEEK_END);
    std::fputc(c ^ 0xff, fp);
    std::fclose(fp);
  }
  auto r = FileKvStore::Open(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(FileKvStoreTest, FileBytesGrowsWithData) {
  const std::string path = TempPath("kvm_file_bytes");
  std::remove(path.c_str());
  auto r = FileKvStore::Open(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->FileBytes(), 0u);
  ASSERT_TRUE((*r)->Put("k", std::string(10000, 'x')).ok());
  ASSERT_TRUE((*r)->Flush().ok());
  EXPECT_GT((*r)->FileBytes(), 10000u);
  std::remove(path.c_str());
}

// ---- Block format ----

TEST(BlockTest, BuildParseIterate) {
  BlockBuilder builder(4);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 100; ++i) {
    truth[Key(i)] = "value" + std::to_string(i);
  }
  for (const auto& [k, v] : truth) builder.Add(k, v);
  auto block = BlockReader::Parse(builder.Finish());
  ASSERT_TRUE(block.ok());
  auto it = block->NewIterator();
  auto expect = truth.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++expect) {
    ASSERT_NE(expect, truth.end());
    EXPECT_EQ(it.key(), expect->first);
    EXPECT_EQ(it.value(), expect->second);
  }
  EXPECT_EQ(expect, truth.end());
}

TEST(BlockTest, SeekFindsLowerBound) {
  BlockBuilder builder(4);
  for (int i = 0; i < 100; i += 2) builder.Add(Key(i), "v");
  auto block = BlockReader::Parse(builder.Finish());
  ASSERT_TRUE(block.ok());
  auto it = block->NewIterator();
  it.Seek(Key(31));  // odd key: lower bound is 32
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(32));
  it.Seek(Key(0));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(0));
  it.Seek(Key(99));  // past the last key
  EXPECT_FALSE(it.Valid());
}

TEST(BlockTest, SharedPrefixCompressionShrinks) {
  BlockBuilder with_sharing(16);
  BlockBuilder no_sharing(1);  // restart every entry: no sharing
  for (int i = 0; i < 64; ++i) {
    with_sharing.Add(Key(i), "v");
    no_sharing.Add(Key(i), "v");
  }
  EXPECT_LT(with_sharing.Finish().size(), no_sharing.Finish().size());
}

TEST(BlockTest, ParseRejectsGarbage) {
  EXPECT_FALSE(BlockReader::Parse("no").ok());
  // Restart count overflowing the block.
  std::string bogus(4, '\xff');
  EXPECT_FALSE(BlockReader::Parse(bogus).ok());
}

// ---- SSTable ----

TEST(SstableTest, BuildOpenGetScan) {
  const std::string path = TempPath("kvm_sstable_basic");
  std::remove(path.c_str());
  {
    SstableBuilder builder(path, 256);  // small blocks: force many
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(builder.Add(Key(i), "value" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(builder.Finish().ok());
  }
  auto reader = SstableReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_entries(), 1000u);
  std::string v;
  ASSERT_TRUE((*reader)->Get(Key(512), &v).ok());
  EXPECT_EQ(v, "value512");
  EXPECT_TRUE((*reader)->Get("nope", &v).IsNotFound());

  size_t count = 0;
  std::string prev;
  for (auto it = (*reader)->Scan(Key(100), Key(200)); it->Valid();
       it->Next()) {
    EXPECT_GT(std::string(it->key()), prev);
    prev = std::string(it->key());
    ++count;
  }
  EXPECT_EQ(count, 100u);
  std::remove(path.c_str());
}

TEST(SstableTest, RejectsOutOfOrderKeys) {
  const std::string path = TempPath("kvm_sstable_order");
  SstableBuilder builder(path);
  ASSERT_TRUE(builder.Add("b", "1").ok());
  EXPECT_FALSE(builder.Add("a", "2").ok());
  EXPECT_FALSE(builder.Add("b", "3").ok());  // duplicates rejected too
  std::remove(path.c_str());
}

TEST(SstableTest, DetectsBlockCorruption) {
  const std::string path = TempPath("kvm_sstable_corrupt");
  std::remove(path.c_str());
  {
    SstableBuilder builder(path, 128);
    for (int i = 0; i < 500; ++i) ASSERT_TRUE(builder.Add(Key(i), "v").ok());
    ASSERT_TRUE(builder.Finish().ok());
  }
  {
    std::FILE* fp = std::fopen(path.c_str(), "rb+");
    std::fseek(fp, 10, SEEK_SET);  // inside the first data block
    int c = std::fgetc(fp);
    std::fseek(fp, 10, SEEK_SET);
    std::fputc(c ^ 0x1, fp);
    std::fclose(fp);
  }
  auto reader = SstableReader::Open(path);
  ASSERT_TRUE(reader.ok());  // index block is intact
  std::string v;
  EXPECT_TRUE((*reader)->Get(Key(0), &v).IsCorruption());
  std::remove(path.c_str());
}

// ---- MiniKv specifics ----

TEST(MiniKvTest, MemtableFlushCreatesTables) {
  const std::string dir = TempPath("kvm_mini_flush");
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE((*kv)->Put(Key(i), "v").ok());
  EXPECT_EQ((*kv)->NumTables(), 0u);
  ASSERT_TRUE((*kv)->Flush().ok());
  EXPECT_EQ((*kv)->NumTables(), 1u);
  EXPECT_GT((*kv)->TotalFileBytes(), 0u);
  fs::remove_all(dir);
}

TEST(MiniKvTest, NewestWinsAcrossTables) {
  const std::string dir = TempPath("kvm_mini_newest");
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("k", "v1").ok());
  ASSERT_TRUE((*kv)->Flush().ok());
  ASSERT_TRUE((*kv)->Put("k", "v2").ok());
  ASSERT_TRUE((*kv)->Flush().ok());
  ASSERT_TRUE((*kv)->Put("k", "v3").ok());  // stays in memtable
  std::string v;
  ASSERT_TRUE((*kv)->Get("k", &v).ok());
  EXPECT_EQ(v, "v3");
  // Scan sees exactly one version.
  size_t count = 0;
  for (auto it = (*kv)->Scan("", ""); it->Valid(); it->Next()) {
    EXPECT_EQ(it->value(), "v3");
    ++count;
  }
  EXPECT_EQ(count, 1u);
  fs::remove_all(dir);
}

TEST(MiniKvTest, PersistsAcrossReopen) {
  const std::string dir = TempPath("kvm_mini_reopen");
  fs::remove_all(dir);
  {
    auto kv = MiniKv::Open(dir);
    ASSERT_TRUE(kv.ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE((*kv)->Put(Key(i), std::to_string(i)).ok());
    }
    ASSERT_TRUE((*kv)->Flush().ok());
  }
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  std::string v;
  ASSERT_TRUE((*kv)->Get(Key(77), &v).ok());
  EXPECT_EQ(v, "77");
  fs::remove_all(dir);
}

TEST(MiniKvTest, CompactMergesToSingleTable) {
  const std::string dir = TempPath("kvm_mini_compact");
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = round * 50; i < round * 50 + 100; ++i) {
      ASSERT_TRUE((*kv)->Put(Key(i), "r" + std::to_string(round)).ok());
    }
    ASSERT_TRUE((*kv)->Flush().ok());
  }
  EXPECT_EQ((*kv)->NumTables(), 4u);
  ASSERT_TRUE((*kv)->Compact().ok());
  EXPECT_EQ((*kv)->NumTables(), 1u);
  // Overlapping rounds: later rounds win.
  std::string v;
  ASSERT_TRUE((*kv)->Get(Key(60), &v).ok());
  EXPECT_EQ(v, "r1");
  ASSERT_TRUE((*kv)->Get(Key(160), &v).ok());
  EXPECT_EQ(v, "r3");
  fs::remove_all(dir);
}

TEST(MiniKvTest, AutoFlushOnMemtableLimit) {
  const std::string dir = TempPath("kvm_mini_autoflush");
  fs::remove_all(dir);
  MiniKv::Options opts;
  opts.memtable_limit_bytes = 1024;
  auto kv = MiniKv::Open(dir, opts);
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE((*kv)->Put(Key(i), std::string(32, 'x')).ok());
  }
  EXPECT_GT((*kv)->NumTables(), 1u);
  fs::remove_all(dir);
}

TEST(MiniKvTest, CompactDropsTombstonesAndShadowedVersions) {
  const std::string dir = TempPath("kvm_mini_tombstone");
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE((*kv)->Put(Key(i), "v").ok());
  ASSERT_TRUE((*kv)->Flush().ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE((*kv)->Delete(Key(i)).ok());
  ASSERT_TRUE((*kv)->Flush().ok());
  EXPECT_EQ((*kv)->NumTables(), 2u);
  // Tombstones shadow across tables before compaction...
  std::string v;
  EXPECT_TRUE((*kv)->Get(Key(10), &v).IsNotFound());
  ASSERT_TRUE((*kv)->Compact().ok());
  EXPECT_EQ((*kv)->NumTables(), 1u);
  // ...and are physically gone afterwards: the surviving table holds
  // exactly the 50 live keys.
  EXPECT_EQ((*kv)->ApproximateCount(), 50u);
  EXPECT_TRUE((*kv)->Get(Key(10), &v).IsNotFound());
  ASSERT_TRUE((*kv)->Get(Key(75), &v).ok());
  fs::remove_all(dir);
}

TEST(MiniKvTest, CompactingEverythingAwayLeavesNoTables) {
  const std::string dir = TempPath("kvm_mini_allgone");
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE((*kv)->Put("a", "1").ok());
  ASSERT_TRUE((*kv)->Flush().ok());
  ASSERT_TRUE((*kv)->Delete("a").ok());
  ASSERT_TRUE((*kv)->Flush().ok());
  ASSERT_TRUE((*kv)->Compact().ok());
  EXPECT_EQ((*kv)->NumTables(), 0u);
  EXPECT_FALSE((*kv)->Scan("", "")->Valid());
  fs::remove_all(dir);
}

TEST(MiniKvTest, StatsCountTombstonesFlushesAndCompactions) {
  const std::string dir = TempPath("kvm_mini_lsmstats");
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  EventLog log;
  (*kv)->SetEventLog(&log);

  for (int i = 0; i < 100; ++i) ASSERT_TRUE((*kv)->Put(Key(i), "v").ok());
  ASSERT_TRUE((*kv)->Flush().ok());
  for (int i = 0; i < 40; ++i) ASSERT_TRUE((*kv)->Delete(Key(i)).ok());
  ASSERT_TRUE((*kv)->Flush().ok());

  MiniKv::LsmStats stats = (*kv)->Stats();
  EXPECT_EQ(stats.tombstones_written, 40u);
  EXPECT_EQ(stats.flushes, 2u);
  EXPECT_EQ(stats.compactions, 0u);

  ASSERT_TRUE((*kv)->Compact().ok());
  stats = (*kv)->Stats();
  EXPECT_EQ(stats.compactions, 1u);
  // 140 entries in (100 puts + 40 tombstones), 60 live out.
  EXPECT_EQ(stats.compaction_dropped, 80u);

  // The compaction surfaced as a structured event...
  const auto counts = log.CountsByType();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].first, std::string(kEventCompaction));
  EXPECT_EQ(counts[0].second, 1u);
  const auto lines = log.RingLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"entries_in\":140"), std::string::npos);
  EXPECT_NE(lines[0].find("\"entries_live\":60"), std::string::npos);
  EXPECT_NE(lines[0].find("\"dropped\":80"), std::string::npos);

  // ...and the cumulative totals ride the backend gauges.
  std::vector<std::pair<std::string, uint64_t>> gauges;
  (*kv)->FillGauges(&gauges);
  auto find = [&gauges](const std::string& name) -> const uint64_t* {
    for (const auto& [n, v] : gauges) {
      if (n == name) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(find("tables"), nullptr);
  EXPECT_EQ(*find("tables"), 1u);
  ASSERT_NE(find("tombstones_written_total"), nullptr);
  EXPECT_EQ(*find("tombstones_written_total"), 40u);
  ASSERT_NE(find("flushes_total"), nullptr);
  EXPECT_GE(*find("flushes_total"), 2u);
  ASSERT_NE(find("compactions_total"), nullptr);
  EXPECT_EQ(*find("compactions_total"), 1u);
  fs::remove_all(dir);
}

TEST(MiniKvTest, LargeRandomWorkloadMatchesStdMap) {
  const std::string dir = TempPath("kvm_mini_random");
  fs::remove_all(dir);
  MiniKv::Options opts;
  opts.memtable_limit_bytes = 4096;
  auto kv = MiniKv::Open(dir, opts);
  ASSERT_TRUE(kv.ok());
  Rng rng(77);
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 3000; ++i) {
    const std::string k = Key(static_cast<int>(rng.UniformInt(0, 999)));
    const std::string v = std::to_string(rng.Next());
    truth[k] = v;
    ASSERT_TRUE((*kv)->Put(k, v).ok());
  }
  // Full scan equals the map.
  auto expect = truth.begin();
  for (auto it = (*kv)->Scan("", ""); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, truth.end());
    EXPECT_EQ(it->key(), expect->first);
    EXPECT_EQ(it->value(), expect->second);
  }
  EXPECT_EQ(expect, truth.end());
  fs::remove_all(dir);
}

// ---- InstrumentedKvStore: the observability decorator ----

// The decorator must be transparent: the same randomized op sequence
// driven through a wrapped store and a bare store of the same backend
// must yield byte-identical scans — for every backend.
TEST(InstrumentedKvStoreTest, WrappedBackendIsOpForOpIdenticalToBare) {
  for (const StoreKind kind :
       {StoreKind::kMem, StoreKind::kFile, StoreKind::kMini}) {
    StoreFixture bare = MakeStore(kind, "instr_bare");
    StoreFixture wrapped_base = MakeStore(kind, "instr_wrapped");
    InstrumentedKvStore wrapped(wrapped_base.store.get());

    Rng rng(20260808);
    auto random_key = [&rng] {
      return Key(static_cast<int>(rng.UniformInt(0, 99)));
    };
    for (int step = 0; step < 600; ++step) {
      const int64_t roll = rng.UniformInt(0, 99);
      if (roll < 55) {
        const std::string k = random_key();
        const std::string v = "v" + std::to_string(rng.Next() % 1000);
        ASSERT_TRUE(bare.store->Put(k, v).ok());
        ASSERT_TRUE(wrapped.Put(k, v).ok());
      } else if (roll < 70) {
        const std::string k = random_key();
        ASSERT_TRUE(bare.store->Delete(k).ok());
        ASSERT_TRUE(wrapped.Delete(k).ok());
      } else if (roll < 80) {
        std::string lo = random_key(), hi = random_key();
        if (hi < lo) std::swap(lo, hi);
        ASSERT_TRUE(bare.store->DeleteRange(lo, hi).ok());
        ASSERT_TRUE(wrapped.DeleteRange(lo, hi).ok());
      } else if (roll < 90) {
        WriteBatch batch;
        const int64_t ops = rng.UniformInt(2, 6);
        for (int64_t i = 0; i < ops; ++i) {
          const std::string k = random_key();
          if (rng.UniformInt(0, 2) == 0) {
            batch.Delete(k);
          } else {
            batch.Put(k, "b" + std::to_string(rng.Next() % 1000));
          }
        }
        ASSERT_TRUE(bare.store->Apply(batch).ok());
        ASSERT_TRUE(wrapped.Apply(batch).ok());
      } else {
        const std::string k = random_key();
        std::string v1, v2;
        const Status s1 = bare.store->Get(k, &v1);
        const Status s2 = wrapped.Get(k, &v2);
        ASSERT_EQ(s1.ok(), s2.ok());
        if (s1.ok()) ASSERT_EQ(v1, v2);
      }

      if (step % 200 == 199) {
        ASSERT_TRUE(bare.store->Flush().ok());
        ASSERT_TRUE(wrapped.Flush().ok());
        auto bit = bare.store->Scan("", "");
        auto wit = wrapped.Scan("", "");
        while (bit->Valid() && wit->Valid()) {
          ASSERT_EQ(bit->key(), wit->key());
          ASSERT_EQ(bit->value(), wit->value());
          bit->Next();
          wit->Next();
        }
        ASSERT_EQ(bit->Valid(), wit->Valid()) << "length mismatch";
      }
    }
    EXPECT_GT(wrapped.stats()->TakeSnapshot().TotalOps(), 0u);
  }
}

TEST(InstrumentedKvStoreTest, CountsOpsBytesScanRowsAndBatchSizes) {
  MemKvStore base;
  InstrumentedKvStore store(&base);
  const auto& stats = store.stats();

  ASSERT_TRUE(store.Put("alpha", "12345").ok());
  ASSERT_TRUE(store.Put("beta", "678").ok());
  std::string v;
  ASSERT_TRUE(store.Get("alpha", &v).ok());
  EXPECT_TRUE(store.Get("missing", &v).IsNotFound());
  ASSERT_TRUE(store.Delete("beta").ok());
  WriteBatch batch;
  batch.Put("g1", "x");
  batch.Put("g2", "y");
  batch.Delete("g1");
  ASSERT_TRUE(store.Apply(batch).ok());
  size_t rows = 0;
  for (auto it = store.Scan("", ""); it->Valid(); it->Next()) ++rows;
  EXPECT_EQ(rows, 2u);  // alpha, g2
  ASSERT_TRUE(store.Flush().ok());

  const KvStoreStats::Snapshot snap = stats->TakeSnapshot();
  EXPECT_EQ(snap.ops[KvStoreStats::kPut].count, 2u);
  EXPECT_EQ(snap.ops[KvStoreStats::kGet].count, 2u);
  EXPECT_EQ(snap.ops[KvStoreStats::kGet].errors, 0u);  // a miss is an answer
  EXPECT_EQ(snap.ops[KvStoreStats::kDelete].count, 1u);
  EXPECT_EQ(snap.ops[KvStoreStats::kApply].count, 1u);
  EXPECT_EQ(snap.ops[KvStoreStats::kScan].count, 1u);
  EXPECT_EQ(snap.ops[KvStoreStats::kFlush].count, 1u);
  // Writes: "alpha12345" (10) + "beta678" (7) + the batch's encoded bytes.
  EXPECT_GE(snap.bytes_written, 17u);
  // Reads: the "alpha" hit (5 + 5) plus the scanned rows' keys+values.
  EXPECT_GE(snap.bytes_read, 10u);
  EXPECT_EQ(snap.scan_rows, 2u);
  EXPECT_EQ(snap.batch_ops.total, 1u);           // one Apply...
  EXPECT_DOUBLE_EQ(snap.batch_ops.max_ms, 3.0);  // ...of three ops
  EXPECT_EQ(snap.TotalOps(), 8u);

  stats->Reset();
  const KvStoreStats::Snapshot zero = stats->TakeSnapshot();
  EXPECT_EQ(zero.TotalOps(), 0u);
  EXPECT_EQ(zero.bytes_written, 0u);
  EXPECT_EQ(zero.scan_rows, 0u);
  EXPECT_EQ(zero.batch_ops.total, 0u);
}

TEST(InstrumentedKvStoreTest, ForwardsBackendGauges) {
  const std::string path = TempPath("kvm_instr_gauges");
  std::remove(path.c_str());
  auto file = FileKvStore::Open(path);
  ASSERT_TRUE(file.ok());
  InstrumentedKvStore store(file->get());
  ASSERT_TRUE(store.Put("k", "v").ok());
  ASSERT_TRUE(store.Flush().ok());
  std::vector<std::pair<std::string, uint64_t>> gauges;
  store.FillGauges(&gauges);
  bool saw_entries = false, saw_file_bytes = false;
  for (const auto& [name, value] : gauges) {
    if (name == "entries") saw_entries = value == 1;
    if (name == "file_bytes") saw_file_bytes = value > 0;
  }
  EXPECT_TRUE(saw_entries);
  EXPECT_TRUE(saw_file_bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kvmatch
