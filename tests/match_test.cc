// KV-match correctness: exact agreement with brute force on all four query
// types (the paper's central no-false-dismissal + verification guarantee),
// plus candidate-set and option behaviors.
#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

struct MatchCase {
  QueryType type;
  double epsilon;
  double alpha;
  double beta;
  size_t rho;
  const char* name;
};

void ExpectSameMatches(const std::vector<MatchResult>& got,
                       const std::vector<MatchResult>& expected,
                       const char* label) {
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].offset, expected[i].offset) << label << " i=" << i;
    EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-6)
        << label << " i=" << i;
  }
}

class KvMatchAgainstBruteForce : public ::testing::TestWithParam<MatchCase> {
};

TEST_P(KvMatchAgainstBruteForce, ExactAgreement) {
  const MatchCase mc = GetParam();
  Rng rng(41);
  const TimeSeries x = GenerateSynthetic(6000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 32});
  const KvMatcher matcher(x, ps, index);

  for (int trial = 0; trial < 4; ++trial) {
    const size_t m = 128;
    const size_t off = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(x.size() - m)));
    const auto q = ExtractQuery(x, off, m, 0.2, &rng);

    QueryParams params{mc.type, mc.epsilon, mc.alpha, mc.beta, mc.rho};
    const auto expected = BruteForceMatch(x, q, params);
    MatchStats stats;
    auto got = matcher.Match(q, params, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameMatches(*got, expected, mc.name);
    // The planted (noisy) query should match itself at small ε... only
    // guaranteed when ε is generous; here just check candidate accounting.
    EXPECT_GE(stats.candidate_positions,
              static_cast<uint64_t>(expected.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, KvMatchAgainstBruteForce,
    ::testing::Values(
        MatchCase{QueryType::kRsmEd, 3.0, 1.0, 0.0, 0, "rsm_ed_tight"},
        MatchCase{QueryType::kRsmEd, 10.0, 1.0, 0.0, 0, "rsm_ed_loose"},
        MatchCase{QueryType::kRsmDtw, 3.0, 1.0, 0.0, 6, "rsm_dtw"},
        MatchCase{QueryType::kRsmDtw, 8.0, 1.0, 0.0, 12, "rsm_dtw_loose"},
        MatchCase{QueryType::kCnsmEd, 3.0, 1.5, 2.0, 0, "cnsm_ed"},
        MatchCase{QueryType::kCnsmEd, 6.0, 2.0, 8.0, 0, "cnsm_ed_loose"},
        MatchCase{QueryType::kCnsmDtw, 3.0, 1.5, 2.0, 6, "cnsm_dtw"},
        MatchCase{QueryType::kCnsmDtw, 5.0, 2.0, 6.0, 10, "cnsm_dtw_loose"},
        MatchCase{QueryType::kRsmL1, 30.0, 1.0, 0.0, 0, "rsm_l1"},
        MatchCase{QueryType::kRsmL1, 90.0, 1.0, 0.0, 0, "rsm_l1_loose"}),
    [](const auto& info) { return info.param.name; });

TEST(KvMatchTest, SelfQueryAtZeroEpsilonFindsItself) {
  Rng rng(42);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  const KvMatcher matcher(x, ps, index);
  const auto q = ExtractQuery(x, 1234, 100, 0.0, &rng);
  QueryParams params{QueryType::kRsmEd, 1e-9, 1.0, 0.0, 0};
  auto got = matcher.Match(q, params);
  ASSERT_TRUE(got.ok());
  ASSERT_GE(got->size(), 1u);
  EXPECT_TRUE(std::any_of(got->begin(), got->end(),
                          [](const MatchResult& r) {
                            return r.offset == 1234;
                          }));
}

TEST(KvMatchTest, QueryShorterThanWindowIsInvalid) {
  Rng rng(43);
  const TimeSeries x = GenerateSynthetic(1000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 50});
  const KvMatcher matcher(x, ps, index);
  const std::vector<double> q(30, 1.0);
  QueryParams params{QueryType::kRsmEd, 1.0, 1.0, 0.0, 0};
  EXPECT_FALSE(matcher.Match(q, params).ok());
}

TEST(KvMatchTest, NonMultipleQueryLengthUsesPrefix) {
  // |Q| = 110, w = 32: p = 3 windows, remainder ignored; results must
  // still agree with brute force on the full query.
  Rng rng(44);
  const TimeSeries x = GenerateSynthetic(3000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 32});
  const KvMatcher matcher(x, ps, index);
  const auto q = ExtractQuery(x, 500, 110, 0.1, &rng);
  QueryParams params{QueryType::kRsmEd, 4.0, 1.0, 0.0, 0};
  const auto expected = BruteForceMatch(x, q, params);
  auto got = matcher.Match(q, params);
  ASSERT_TRUE(got.ok());
  ExpectSameMatches(*got, expected, "prefix");
}

TEST(KvMatchTest, CandidateSetContainsAllTrueMatches) {
  Rng rng(45);
  const TimeSeries x = GenerateSynthetic(5000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  for (QueryType type : {QueryType::kRsmEd, QueryType::kRsmDtw,
                         QueryType::kCnsmEd, QueryType::kCnsmDtw}) {
    const auto q = ExtractQuery(x, 2000, 100, 0.3, &rng);
    QueryParams params{type, 5.0, 1.5, 3.0, 5};
    const auto expected = BruteForceMatch(x, q, params);
    std::vector<QuerySegment> segments;
    for (size_t i = 0; i < 4; ++i) segments.push_back({&index, i * 25, 25});
    auto cs = ComputeCandidateSet(x, q, params, segments);
    ASSERT_TRUE(cs.ok());
    for (const auto& match : expected) {
      EXPECT_TRUE(cs->Contains(static_cast<int64_t>(match.offset)))
          << "type=" << static_cast<int>(type)
          << " offset=" << match.offset;
    }
  }
}

TEST(KvMatchTest, MoreWindowsNeverEnlargeCandidateSet) {
  Rng rng(46);
  const TimeSeries x = GenerateSynthetic(5000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  const auto q = ExtractQuery(x, 1000, 200, 0.2, &rng);
  QueryParams params{QueryType::kRsmEd, 5.0, 1.0, 0.0, 0};
  int64_t prev = INT64_MAX;
  for (size_t use = 1; use <= 8; ++use) {
    std::vector<QuerySegment> segments;
    for (size_t i = 0; i < use; ++i) segments.push_back({&index, i * 25, 25});
    auto cs = ComputeCandidateSet(x, q, params, segments);
    ASSERT_TRUE(cs.ok());
    EXPECT_LE(cs->num_positions(), prev);
    prev = cs->num_positions();
  }
}

TEST(KvMatchTest, ReorderAndCapOptionsKeepCorrectness) {
  Rng rng(47);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  const KvMatcher matcher(x, ps, index);
  const auto q = ExtractQuery(x, 700, 150, 0.2, &rng);
  QueryParams params{QueryType::kCnsmEd, 4.0, 1.5, 3.0, 0};
  const auto expected = BruteForceMatch(x, q, params);

  for (MatchOptions options :
       {MatchOptions{.reorder_windows = true},
        MatchOptions{.max_windows = 2},
        MatchOptions{.reorder_windows = true, .max_windows = 3}}) {
    auto got = matcher.Match(q, params, nullptr, options);
    ASSERT_TRUE(got.ok());
    ExpectSameMatches(*got, expected, "options");
  }
}

TEST(KvMatchTest, VerifierOptionTogglesKeepCorrectness) {
  Rng rng(48);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  const KvMatcher matcher(x, ps, index);
  const auto q = ExtractQuery(x, 900, 100, 0.3, &rng);
  QueryParams params{QueryType::kCnsmDtw, 4.0, 1.5, 3.0, 5};
  const auto expected = BruteForceMatch(x, q, params);

  for (int mask = 0; mask < 8; ++mask) {
    MatchOptions options;
    options.verify.use_lb_kim = mask & 1;
    options.verify.use_lb_keogh = mask & 2;
    options.verify.use_reordered_ed = mask & 4;
    auto got = matcher.Match(q, params, nullptr, options);
    ASSERT_TRUE(got.ok());
    ExpectSameMatches(*got, expected, "verify toggles");
  }
}

TEST(KvMatchTest, StatsArePopulated) {
  Rng rng(49);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  const KvMatcher matcher(x, ps, index);
  const auto q = ExtractQuery(x, 100, 100, 0.1, &rng);
  QueryParams params{QueryType::kRsmEd, 5.0, 1.0, 0.0, 0};
  MatchStats stats;
  ASSERT_TRUE(matcher.Match(q, params, &stats).ok());
  EXPECT_EQ(stats.probe.index_accesses, 4u);  // one scan per window
  EXPECT_GT(stats.candidate_positions, 0u);
  EXPECT_GE(stats.phase1_ms, 0.0);
  EXPECT_GE(stats.phase2_ms, 0.0);
}

TEST(KvMatchTest, EmptySeriesAndDegenerateInputs) {
  const TimeSeries x(std::vector<double>(200, 1.0));
  PrefixStats ps(x);
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  const KvMatcher matcher(x, ps, index);
  // Constant data, constant query: normalized distance is 0 everywhere.
  const std::vector<double> q(50, 1.0);
  QueryParams params{QueryType::kRsmEd, 0.5, 1.0, 0.0, 0};
  auto got = matcher.Match(q, params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 200u - 50 + 1);
}

}  // namespace
}  // namespace kvmatch
