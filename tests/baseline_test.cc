// Baseline correctness: UCR Suite, FAST, R-tree, FRM / Dual-Match
// (General Match), DMatch — each against brute force / naive references.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/brute_force.h"
#include "baseline/dmatch.h"
#include "baseline/fast_matcher.h"
#include "baseline/general_match.h"
#include "baseline/rtree.h"
#include "baseline/transforms.h"
#include "baseline/ucr_suite.h"
#include "common/rng.h"
#include "distance/ed.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

struct ScanCase {
  QueryType type;
  double epsilon;
  double alpha;
  double beta;
  size_t rho;
  const char* name;
};

class UcrAgainstBruteForce : public ::testing::TestWithParam<ScanCase> {};

TEST_P(UcrAgainstBruteForce, ExactAgreement) {
  const ScanCase sc = GetParam();
  Rng rng(71);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const UcrSuite ucr(x, ps);
  for (int trial = 0; trial < 3; ++trial) {
    const auto q = ExtractQuery(
        x,
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                  x.size() - 128))),
        128, 0.2, &rng);
    QueryParams params{sc.type, sc.epsilon, sc.alpha, sc.beta, sc.rho};
    const auto expected = BruteForceMatch(x, q, params);
    UcrStats stats;
    const auto got = ucr.Match(q, params, &stats);
    ASSERT_EQ(got.size(), expected.size()) << sc.name;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].offset, expected[i].offset) << sc.name;
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-6) << sc.name;
    }
    EXPECT_EQ(stats.offsets_scanned, x.size() - 128 + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, UcrAgainstBruteForce,
    ::testing::Values(
        ScanCase{QueryType::kRsmEd, 5.0, 1.0, 0.0, 0, "rsm_ed"},
        ScanCase{QueryType::kRsmDtw, 4.0, 1.0, 0.0, 6, "rsm_dtw"},
        ScanCase{QueryType::kCnsmEd, 4.0, 1.5, 3.0, 0, "cnsm_ed"},
        ScanCase{QueryType::kCnsmDtw, 4.0, 1.5, 3.0, 6, "cnsm_dtw"},
        ScanCase{QueryType::kRsmL1, 40.0, 1.0, 0.0, 0, "rsm_l1"}),
    [](const auto& info) { return info.param.name; });

class FastAgainstBruteForce : public ::testing::TestWithParam<ScanCase> {};

TEST_P(FastAgainstBruteForce, ExactAgreement) {
  const ScanCase sc = GetParam();
  Rng rng(72);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const FastMatcher fast(x, ps);
  const auto q = ExtractQuery(x, 700, 128, 0.2, &rng);
  QueryParams params{sc.type, sc.epsilon, sc.alpha, sc.beta, sc.rho};
  const auto expected = BruteForceMatch(x, q, params);
  FastStats stats;
  const auto got = fast.Match(q, params, &stats);
  ASSERT_EQ(got.size(), expected.size()) << sc.name;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].offset, expected[i].offset) << sc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, FastAgainstBruteForce,
    ::testing::Values(
        ScanCase{QueryType::kRsmEd, 5.0, 1.0, 0.0, 0, "rsm_ed"},
        ScanCase{QueryType::kRsmDtw, 4.0, 1.0, 0.0, 6, "rsm_dtw"},
        ScanCase{QueryType::kCnsmEd, 4.0, 1.5, 3.0, 0, "cnsm_ed"},
        ScanCase{QueryType::kCnsmDtw, 4.0, 1.5, 3.0, 6, "cnsm_dtw"},
        ScanCase{QueryType::kRsmL1, 40.0, 1.0, 0.0, 0, "rsm_l1"}),
    [](const auto& info) { return info.param.name; });

// ---- R-tree ----

TEST(RectTest, IntersectionAndContainment) {
  Rect a{{0, 0}, {2, 2}};
  Rect b{{1, 1}, {3, 3}};
  Rect c{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.ContainsPoint({1.0, 1.0}));
  EXPECT_FALSE(a.ContainsPoint({3.0, 1.0}));
}

TEST(RectTest, EnlargeAndVolume) {
  Rect a{{0, 0}, {1, 1}};
  EXPECT_DOUBLE_EQ(a.Volume(), 1.0);
  a.Enlarge(Rect{{2, 0}, {3, 2}});
  EXPECT_EQ(a.lo, (std::vector<double>{0, 0}));
  EXPECT_EQ(a.hi, (std::vector<double>{3, 2}));
  EXPECT_DOUBLE_EQ(a.Volume(), 6.0);
}

std::set<int64_t> NaiveRange(
    const std::vector<std::pair<Rect, int64_t>>& items, const Rect& query) {
  std::set<int64_t> out;
  for (const auto& [rect, id] : items) {
    if (rect.Intersects(query)) out.insert(id);
  }
  return out;
}

class RTreeBuildMode : public ::testing::TestWithParam<bool> {};

TEST_P(RTreeBuildMode, RangeQueryMatchesNaive) {
  const bool bulk = GetParam();
  Rng rng(73);
  const size_t dims = 3;
  std::vector<std::pair<Rect, int64_t>> items;
  for (int64_t i = 0; i < 2000; ++i) {
    std::vector<double> p(dims);
    for (auto& v : p) v = rng.Uniform(-10, 10);
    items.emplace_back(Rect::Point(p), i);
  }
  RTree tree(dims, 8);
  if (bulk) {
    tree.BulkLoad(items);
  } else {
    for (const auto& [rect, id] : items) tree.Insert(rect, id);
  }
  EXPECT_EQ(tree.size(), 2000u);

  for (int t = 0; t < 30; ++t) {
    Rect query;
    query.lo.resize(dims);
    query.hi.resize(dims);
    for (size_t d = 0; d < dims; ++d) {
      const double c = rng.Uniform(-10, 10);
      const double half = rng.Uniform(0.1, 4.0);
      query.lo[d] = c - half;
      query.hi[d] = c + half;
    }
    std::vector<int64_t> got;
    const uint64_t visited = tree.RangeQuery(query, &got);
    EXPECT_GT(visited, 0u);
    EXPECT_EQ(std::set<int64_t>(got.begin(), got.end()),
              NaiveRange(items, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, RTreeBuildMode, ::testing::Bool());

TEST(RTreeTest, EmptyTreeAnswersEmpty) {
  RTree tree(2);
  std::vector<int64_t> got;
  tree.RangeQuery(Rect{{0, 0}, {1, 1}}, &got);
  EXPECT_TRUE(got.empty());
}

TEST(RTreeTest, PrunesDisjointRegions) {
  // Two far-apart clusters: querying one must not visit most of the other.
  Rng rng(74);
  RTree tree(2, 8);
  std::vector<std::pair<Rect, int64_t>> items;
  for (int64_t i = 0; i < 1000; ++i) {
    const double cx = i < 500 ? 0.0 : 1000.0;
    items.emplace_back(
        Rect::Point({cx + rng.Uniform(-1, 1), rng.Uniform(-1, 1)}), i);
  }
  tree.BulkLoad(items);
  std::vector<int64_t> got;
  const uint64_t visited = tree.RangeQuery(Rect{{-2, -2}, {2, 2}}, &got);
  EXPECT_EQ(got.size(), 500u);
  // Far fewer nodes than total leaves * 2.
  EXPECT_LT(visited, 200u);
}

// ---- PAA ----

TEST(PaaTest, MeansOfSegments) {
  const std::vector<double> s = {1, 1, 3, 3, 5, 5, 7, 7};
  const auto paa = Paa(s, 4);
  EXPECT_EQ(paa, (std::vector<double>{1, 3, 5, 7}));
}

TEST(PaaTest, LowerBoundsEuclidean) {
  Rng rng(75);
  for (int t = 0; t < 50; ++t) {
    std::vector<double> a(64), b(64);
    for (auto& v : a) v = rng.Uniform(-5, 5);
    for (auto& v : b) v = rng.Uniform(-5, 5);
    const auto pa = Paa(a, 8);
    const auto pb = Paa(b, 8);
    double paa_sq = 0.0;
    for (size_t i = 0; i < 8; ++i) {
      paa_sq += (pa[i] - pb[i]) * (pa[i] - pb[i]);
    }
    paa_sq *= 64.0 / 8.0;
    const double ed = EuclideanDistance(a, b);
    EXPECT_LE(paa_sq, ed * ed + 1e-9);
  }
}

// ---- FRM / Dual-Match / DMatch: no false dismissals + exact verify ----

class GeneralMatchStride : public ::testing::TestWithParam<size_t> {};

TEST_P(GeneralMatchStride, AgreesWithBruteForce) {
  Rng rng(76);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  GeneralMatch::Options options;
  options.window = 32;
  options.stride = GetParam();  // 1 = FRM, 32 = Dual-Match
  const GeneralMatch gm(x, ps, options);
  for (int trial = 0; trial < 3; ++trial) {
    const size_t m = 128;
    const auto q = ExtractQuery(
        x,
        static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(x.size() - m))),
        m, 0.2, &rng);
    QueryParams params{QueryType::kRsmEd, 4.0, 1.0, 0.0, 0};
    const auto expected = BruteForceMatch(x, q, params);
    RtreeMatchStats stats;
    const auto got = gm.Match(q, params.epsilon, &stats);
    ASSERT_EQ(got.size(), expected.size()) << "stride=" << GetParam();
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].offset, expected[i].offset);
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-6);
    }
    EXPECT_GE(stats.candidate_positions, expected.size());
    EXPECT_GT(stats.index_accesses, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, GeneralMatchStride,
                         ::testing::Values(1, 8, 32));

TEST(DMatchTest, AgreesWithBruteForceUnderDtw) {
  Rng rng(77);
  const TimeSeries x = GenerateSynthetic(3000, &rng);
  PrefixStats ps(x);
  DMatch::Options options;
  options.window = 32;
  const DMatch dm(x, ps, options);
  for (int trial = 0; trial < 2; ++trial) {
    const size_t m = 128;
    const auto q = ExtractQuery(
        x,
        static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(x.size() - m))),
        m, 0.2, &rng);
    QueryParams params{QueryType::kRsmDtw, 3.0, 1.0, 0.0, 5};
    const auto expected = BruteForceMatch(x, q, params);
    RtreeMatchStats stats;
    const auto got = dm.Match(q, params.epsilon, params.rho, &stats);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].offset, expected[i].offset);
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-6);
    }
  }
}

TEST(DMatchTest, QueryTooShortReturnsEmpty) {
  Rng rng(78);
  const TimeSeries x = GenerateSynthetic(1000, &rng);
  PrefixStats ps(x);
  const DMatch dm(x, ps, {.window = 64});
  const std::vector<double> q(100, 1.0);  // < 2*64 - 1
  EXPECT_TRUE(dm.Match(q, 1.0, 5).empty());
}

TEST(GeneralMatchTest, PerWindowCandidatesReported) {
  Rng rng(79);
  const TimeSeries x = GenerateSynthetic(3000, &rng);
  PrefixStats ps(x);
  const GeneralMatch gm(x, ps, {.window = 32, .stride = 1});
  const auto q = ExtractQuery(x, 500, 128, 0.2, &rng);
  RtreeMatchStats stats;
  gm.Match(q, 4.0, &stats);
  EXPECT_EQ(stats.per_window_candidates.size(), 4u);  // 128 / 32
}

}  // namespace
}  // namespace kvmatch
