// Unit tests for common/event_log.h: JSONL rendering, the fixed-size
// flight-recorder ring, per-type counters, the streaming sink, counter
// rebasing, and multi-threaded emission (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/event_log.h"

namespace kvmatch {
namespace {

TEST(EventLogTest, RendersOneJsonLinePerEvent) {
  EventLog log;
  log.Emit(Event{kEventEpochCommit, "sensor1"}
               .Num("epoch", 7)
               .Num("bytes", 4096)
               .FNum("total_ms", 1.5)
               .Str("kind", "append"));

  const auto lines = log.RingLines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"epoch_commit\""), std::string::npos);
  EXPECT_NE(line.find("\"series\":\"sensor1\""), std::string::npos);
  EXPECT_NE(line.find("\"epoch\":7"), std::string::npos);
  EXPECT_NE(line.find("\"bytes\":4096"), std::string::npos);
  EXPECT_NE(line.find("\"total_ms\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"append\""), std::string::npos);
}

TEST(EventLogTest, OmitsEmptySeries) {
  EventLog log;
  log.Emit(Event{kEventOrphanSweep}.Str("prefix", "series/x/e3/"));
  const auto lines = log.RingLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].find("\"series\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"prefix\":\"series/x/e3/\""),
            std::string::npos);
}

TEST(EventLogTest, EscapesStringFields) {
  EventLog log;
  log.Emit(Event{kEventSeriesDrop, "a\"b\\c"}.Str("note", "tab\there"));
  const auto lines = log.RingLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"series\":\"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"note\":\"tab\\there\""), std::string::npos);
}

TEST(EventLogTest, RingKeepsTheNewestLinesOldestFirst) {
  EventLog log(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    log.Emit(Event{kEventEviction}.Num("i", static_cast<uint64_t>(i)));
  }
  const auto lines = log.RingLines();
  ASSERT_EQ(lines.size(), 4u);
  // The ring holds events 6..9; seq is global, so the wrap is visible.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(lines[i].find("\"seq\":" + std::to_string(6 + i)),
              std::string::npos)
        << lines[i];
    EXPECT_NE(lines[i].find("\"i\":" + std::to_string(6 + i)),
              std::string::npos)
        << lines[i];
  }
  EXPECT_EQ(log.TotalEvents(), 10u);  // counters see every emission
}

TEST(EventLogTest, CountsByType) {
  EventLog log;
  log.Emit(Event{kEventEpochCommit, "a"});
  log.Emit(Event{kEventEpochCommit, "b"});
  log.Emit(Event{kEventCompaction});
  EXPECT_EQ(log.TotalEvents(), 3u);
  const auto counts = log.CountsByType();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, std::string(kEventCompaction));
  EXPECT_EQ(counts[0].second, 1u);
  EXPECT_EQ(counts[1].first, std::string(kEventEpochCommit));
  EXPECT_EQ(counts[1].second, 2u);
}

TEST(EventLogTest, SinkReceivesEveryLineAsEmitted) {
  EventLog log;
  std::vector<std::string> seen;
  log.SetSink([&seen](const std::string& line) { seen.push_back(line); });
  log.Emit(Event{kEventEpochCommit, "s"});
  log.Emit(Event{kEventEviction, "s"});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], log.RingLines()[0]);
  EXPECT_EQ(seen[1], log.RingLines()[1]);
  log.SetSink(nullptr);
  log.Emit(Event{kEventEviction, "s"});  // must not crash
  EXPECT_EQ(seen.size(), 2u);
}

TEST(EventLogTest, ResetCountersPreservesTheFlightRecorder) {
  EventLog log;
  log.Emit(Event{kEventEpochCommit, "s"});
  log.Emit(Event{kEventSlowCommit, "s"});
  ASSERT_EQ(log.TotalEvents(), 2u);

  log.ResetCounters();
  EXPECT_EQ(log.TotalEvents(), 0u);
  EXPECT_TRUE(log.CountsByType().empty());
  // The incident history survives the stats rebase, and sequence numbers
  // keep climbing — the recorder's timeline is never restarted.
  ASSERT_EQ(log.RingLines().size(), 2u);
  log.Emit(Event{kEventEviction, "s"});
  const auto lines = log.RingLines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[2].find("\"seq\":2"), std::string::npos);
  EXPECT_EQ(log.TotalEvents(), 1u);
}

TEST(EventLogTest, DumpJsonLinesJoinsWithNewlines) {
  EventLog log;
  EXPECT_EQ(log.DumpJsonLines(), "");
  log.Emit(Event{kEventEpochCommit, "a"});
  log.Emit(Event{kEventEviction, "b"});
  const std::string dump = log.DumpJsonLines();
  EXPECT_EQ(dump, log.RingLines()[0] + "\n" + log.RingLines()[1] + "\n");
}

// The TSan target: emitters on 8 threads hammer one log (whose ring is
// smaller than the event count, so wrap-around races are exercised too)
// while a reader thread snapshots concurrently.
TEST(EventLogTest, ConcurrentEmittersAndReaders) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  EventLog log(/*ring_capacity=*/64);
  std::atomic<uint64_t> sink_calls{0};
  log.SetSink([&sink_calls](const std::string&) {
    sink_calls.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Emit(Event{kEventEpochCommit, "t" + std::to_string(t)}
                     .Num("i", static_cast<uint64_t>(i)));
      }
    });
  }
  threads.emplace_back([&log] {
    for (int i = 0; i < 200; ++i) {
      (void)log.RingLines();
      (void)log.CountsByType();
      (void)log.TotalEvents();
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(log.TotalEvents(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink_calls.load(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.RingLines().size(), 64u);
  const auto counts = log.CountsByType();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].second, static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace kvmatch
