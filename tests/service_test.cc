// Tests for the service layer: Catalog registration/eviction and the
// QueryService's concurrent execution — most importantly that a mixed
// ε/top-k workload executed by many worker threads returns exactly the
// results of serial execution.
#include <gtest/gtest.h>

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

constexpr size_t kNumSeries = 6;
constexpr size_t kSeriesLen = 4000;

Session::Options SmallOptions() {
  Session::Options options;
  options.wu = 25;
  options.levels = 3;
  return options;
}

std::string SeriesName(size_t i) { return "s" + std::to_string(i); }

// Ingests kNumSeries synthetic series into `store` and returns copies of
// their values for query extraction.
std::vector<TimeSeries> IngestFixture(KvStore* store) {
  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog ingest_catalog(store, copts);
  std::vector<TimeSeries> references;
  for (size_t i = 0; i < kNumSeries; ++i) {
    Rng rng(1000 + i);
    TimeSeries x = GenerateSynthetic(kSeriesLen, &rng);
    references.push_back(x);
    EXPECT_TRUE(ingest_catalog.Ingest(SeriesName(i), std::move(x)).ok());
  }
  return references;
}

// A deterministic mixed workload: every series, all five query types,
// ε-threshold and top-k, varying lengths and offsets.
std::vector<QueryRequest> MakeWorkload(const std::vector<TimeSeries>& refs,
                                       size_t count) {
  const QueryType kTypes[] = {QueryType::kRsmEd, QueryType::kRsmDtw,
                              QueryType::kCnsmEd, QueryType::kCnsmDtw,
                              QueryType::kRsmL1};
  Rng rng(77);
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    const size_t series = i % refs.size();
    QueryRequest req;
    req.series = SeriesName(series);
    const size_t qlen = 100 + 40 * (i % 4);
    const size_t qoff = (137 * i) % (kSeriesLen - qlen);
    req.query = ExtractQuery(refs[series], qoff, qlen, 0.1, &rng);
    req.params.type = kTypes[i % 5];
    req.params.epsilon = 2.0 + static_cast<double>(i % 4);
    req.params.alpha = 1.5;
    req.params.beta = 3.0;
    req.params.rho = 5;
    if (i % 7 == 3) req.top_k = 5;  // every 7th request is a top-k search
    requests.push_back(std::move(req));
  }
  return requests;
}

// Serial reference execution: one thread, straight through the sessions.
std::vector<std::vector<MatchResult>> RunSerial(
    Catalog* catalog, const std::vector<QueryRequest>& requests) {
  std::vector<std::vector<MatchResult>> results;
  for (const auto& req : requests) {
    auto session = catalog->Acquire(req.series);
    EXPECT_TRUE(session.ok());
    auto matches = req.top_k > 0
                       ? (*session)->QueryTopK(req.query, req.params,
                                               req.top_k, req.topk_options)
                       : (*session)->Query(req.query, req.params);
    EXPECT_TRUE(matches.ok());
    results.push_back(std::move(matches).value());
  }
  return results;
}

TEST(QueryServiceTest, ConcurrentMixedWorkloadMatchesSerialExecution) {
  MemKvStore store;
  const auto refs = IngestFixture(&store);
  const auto requests = MakeWorkload(refs, 60);

  // Serial baseline over one catalog, concurrent run over a second,
  // freshly opened one (store-backed sessions, cold row caches) so the
  // synchronized read path does real work.
  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog serial_catalog(&store, copts);
  const auto expected = RunSerial(&serial_catalog, requests);

  Catalog concurrent_catalog(&store, copts);
  QueryService::Options sopts;
  sopts.num_threads = 8;
  QueryService service(&concurrent_catalog, sopts);
  ASSERT_EQ(service.num_threads(), 8u);

  // Three interleaved copies of the batch stress session sharing and the
  // row caches; each copy must still match the serial baseline exactly.
  std::vector<std::vector<std::future<QueryResponse>>> rounds;
  for (int round = 0; round < 3; ++round) {
    rounds.push_back(service.SubmitBatch(requests));
  }
  for (auto& futures : rounds) {
    ASSERT_EQ(futures.size(), requests.size());
    for (size_t i = 0; i < futures.size(); ++i) {
      QueryResponse response = futures[i].get();
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.matches, expected[i]) << "request " << i;
    }
  }

  const ServiceStatsSnapshot snap = service.Stats();
  EXPECT_EQ(snap.total_queries, 3 * requests.size());
  EXPECT_EQ(snap.total_errors, 0u);
  EXPECT_EQ(snap.series.size(), kNumSeries);
  uint64_t per_series_total = 0;
  for (const auto& s : snap.series) {
    EXPECT_GT(s.queries, 0u);
    EXPECT_GT(s.qps, 0.0);
    EXPECT_LE(s.latency.min_ms, s.latency.p99_ms);
    EXPECT_LE(s.latency.p99_ms, s.latency.max_ms);
    per_series_total += s.queries;
  }
  EXPECT_EQ(per_series_total, snap.total_queries);
}

TEST(CatalogTest, ReopensIngestedSeriesFromStore) {
  MemKvStore store;
  const auto refs = IngestFixture(&store);

  Catalog catalog(&store);
  EXPECT_EQ(catalog.ListSeries().size(), kNumSeries);
  EXPECT_TRUE(catalog.Contains("s0"));
  EXPECT_FALSE(catalog.Contains("nope"));

  auto session = catalog.Acquire("s2");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->series().size(), kSeriesLen);
  EXPECT_TRUE(catalog.Acquire("nope").status().IsNotFound());

  // Re-acquire hits the cache: same underlying session object.
  auto again = catalog.Acquire("s2");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(session->get(), again->get());
}

TEST(CatalogTest, RejectsBadAndDuplicateNames) {
  MemKvStore store;
  Catalog catalog(&store);
  Rng rng(9);
  EXPECT_TRUE(
      catalog.Ingest("ok-name", GenerateSynthetic(500, &rng)).ok());
  EXPECT_TRUE(catalog.Ingest("ok-name", GenerateSynthetic(500, &rng))
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog.Ingest("bad/name", GenerateSynthetic(500, &rng))
                  .IsInvalidArgument());
  EXPECT_TRUE(
      catalog.Ingest("", GenerateSynthetic(500, &rng)).IsInvalidArgument());
}

TEST(CatalogTest, EvictsColdSessionsUnderMemoryBudget) {
  MemKvStore store;
  const auto refs = IngestFixture(&store);

  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog probe(&store, copts);
  const uint64_t one = (*probe.Acquire("s0"))->MemoryBytes();

  copts.memory_budget_bytes = 2 * one + one / 2;  // fits two sessions
  Catalog catalog(&store, copts);
  for (size_t i = 0; i < kNumSeries; ++i) {
    auto session = catalog.Acquire(SeriesName(i));
    ASSERT_TRUE(session.ok());
    // Evicted or not, acquired sessions stay queryable.
    QueryParams params;
    params.epsilon = 3.0;
    Rng rng(5);
    const auto q = ExtractQuery(refs[i], 50, 100, 0.0, &rng);
    EXPECT_TRUE((*session)->Query(q, params).ok());
  }
  EXPECT_LE(catalog.cached_sessions(), 2u);
  EXPECT_LE(catalog.cached_bytes(), copts.memory_budget_bytes);

  // The budget never evicts the most recently used entry.
  EXPECT_GE(catalog.cached_sessions(), 1u);
}

TEST(QueryServiceTest, ShedsLoadWhenQueueIsFull) {
  MemKvStore store;
  const auto refs = IngestFixture(&store);
  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog catalog(&store, copts);

  QueryService::Options sopts;
  sopts.num_threads = 1;
  sopts.max_queue = 2;
  QueryService service(&catalog, sopts);

  const auto requests = MakeWorkload(refs, 40);
  auto futures = service.SubmitBatch(requests);

  size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const QueryResponse response = f.get();
    if (response.status.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(response.status.IsResourceExhausted())
          << response.status.ToString();
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, requests.size());
  EXPECT_GT(shed, 0u);  // 40 instant submissions cannot fit a queue of 2
  EXPECT_GT(ok, 0u);    // the worker drains at least the accepted ones
  EXPECT_EQ(service.Stats().rejected, shed);
}

TEST(QueryServiceTest, ExpiredRequestsFailWithDeadlineExceeded) {
  MemKvStore store;
  const auto refs = IngestFixture(&store);
  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog catalog(&store, copts);

  QueryService::Options sopts;
  sopts.num_threads = 1;
  QueryService service(&catalog, sopts);

  // Occupy the single worker, then enqueue a request whose budget is
  // (effectively) already spent: by the time it is dequeued the deadline
  // has passed and it must fail without executing.
  auto requests = MakeWorkload(refs, 2);
  auto busy = service.Submit(requests[0]);
  requests[1].timeout_ms = 1e-6;
  auto expired = service.Submit(requests[1]);

  EXPECT_TRUE(busy.get().status.ok());
  const QueryResponse response = expired.get();
  EXPECT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  EXPECT_TRUE(response.matches.empty());
  EXPECT_EQ(service.Stats().deadline_exceeded, 1u);
}

TEST(QueryServiceTest, SpentBudgetFailsFastWithoutQueueing) {
  MemKvStore store;
  const auto refs = IngestFixture(&store);
  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog catalog(&store, copts);
  QueryService service(&catalog, {.num_threads = 1, .max_queue = 4});

  // A negative budget is spent by definition: the request must be
  // answered inline with DeadlineExceeded, never occupying a queue slot
  // or executing.
  auto requests = MakeWorkload(refs, 1);
  requests[0].timeout_ms = -1.0;
  const QueryResponse response = service.Submit(requests[0]).get();
  EXPECT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  EXPECT_TRUE(response.matches.empty());

  const ServiceStatsSnapshot snap = service.Stats();
  EXPECT_EQ(snap.deadline_exceeded, 1u);
  EXPECT_EQ(snap.total_queries, 0u);  // it never ran
}

TEST(QueryServiceTest, CallbackSubmissionDeliversOutOfOrder) {
  MemKvStore store;
  const auto refs = IngestFixture(&store);
  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog catalog(&store, copts);
  QueryService service(&catalog, {.num_threads = 4});

  const auto requests = MakeWorkload(refs, 24);
  std::mutex mu;
  std::condition_variable cv;
  size_t delivered = 0;
  std::vector<QueryResponse> responses(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    service.SubmitWithCallback(requests[i], [&, i](QueryResponse response) {
      std::lock_guard<std::mutex> lock(mu);
      responses[i] = std::move(response);
      delivered += 1;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return delivered == requests.size(); });

  Catalog serial_catalog(&store, copts);
  const auto expected = RunSerial(&serial_catalog, requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok()) << responses[i].status.ToString();
    EXPECT_EQ(responses[i].matches, expected[i]) << "request " << i;
  }
}

TEST(QueryServiceTest, UnknownSeriesReportsNotFound) {
  MemKvStore store;
  Catalog catalog(&store);
  QueryService service(&catalog);

  QueryRequest req;
  req.series = "missing";
  req.query.assign(100, 0.0);
  req.params.epsilon = 1.0;
  EXPECT_TRUE(service.Submit(std::move(req)).get().status.IsNotFound());
}

}  // namespace
}  // namespace kvmatch
