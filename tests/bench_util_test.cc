// Tests for bench_util: ε calibration (including the DTW-via-ED bracket),
// flag parsing, workload construction and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "baseline/ucr_suite.h"
#include "bench_util/calibration.h"
#include "bench_util/table_printer.h"
#include "bench_util/workload.h"

namespace kvmatch {
namespace {

TEST(CalibrationTest, HitsTargetForEd) {
  const Workload w = Workload::Make(30000, 401);
  Rng rng(402);
  const auto q = MakeQuery(w, 128, &rng);
  for (double fraction : {1e-3, 1e-2}) {
    QueryParams params{QueryType::kRsmEd, 0.0, 1.0, 0.0, 0};
    const double eps =
        CalibrateEpsilon(w.series, w.prefix, q, params, fraction);
    params.epsilon = eps;
    const UcrSuite ucr(w.series, w.prefix);
    const double count = static_cast<double>(ucr.Match(q, params).size());
    const double target = std::max(
        1.0, std::round(fraction *
                        static_cast<double>(w.series.size() - 128 + 1)));
    EXPECT_GE(count, target) << "fraction=" << fraction;
    // Binary search converges to (roughly) the smallest qualifying ε.
    params.epsilon = eps * 0.8;
    EXPECT_LT(static_cast<double>(ucr.Match(q, params).size()),
              count + 1.0);
  }
}

TEST(CalibrationTest, ViaEdMatchesDirectDtwCalibration) {
  const Workload w = Workload::Make(12000, 403);
  Rng rng(404);
  const auto q = MakeQuery(w, 128, &rng);
  QueryParams params{QueryType::kRsmDtw, 0.0, 1.0, 0.0, 6};
  const double direct =
      CalibrateEpsilon(w.series, w.prefix, q, params, 1e-3);
  const double via_ed =
      CalibrateEpsilonViaEd(w.series, w.prefix, q, params, 1e-3);
  // Both must reach the target; ε values agree within bisection slack.
  const UcrSuite ucr(w.series, w.prefix);
  params.epsilon = via_ed;
  const size_t count = ucr.Match(q, params).size();
  const double target = std::max(
      1.0,
      std::round(1e-3 * static_cast<double>(w.series.size() - 128 + 1)));
  EXPECT_GE(static_cast<double>(count), target);
  EXPECT_NEAR(via_ed, direct, direct * 0.25 + 1e-6);
}

TEST(CalibrationTest, HiHintSkipsBracketAndStaysCorrect) {
  const Workload w = Workload::Make(12000, 405);
  Rng rng(406);
  const auto q = MakeQuery(w, 128, &rng);
  QueryParams params{QueryType::kRsmEd, 0.0, 1.0, 0.0, 0};
  const double free_eps =
      CalibrateEpsilon(w.series, w.prefix, q, params, 1e-3);
  const double hinted = CalibrateEpsilon(w.series, w.prefix, q, params,
                                         1e-3, 24, free_eps * 4.0);
  EXPECT_NEAR(hinted, free_eps, free_eps * 0.3 + 1e-9);
}

TEST(BenchFlagsTest, ParsesAllFlags) {
  const char* argv[] = {"prog", "--n", "12345", "--runs", "7",
                        "--seed", "99", "--quick"};
  const BenchFlags flags =
      BenchFlags::Parse(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.n, 12345u);
  EXPECT_EQ(flags.runs, 7);
  EXPECT_EQ(flags.seed, 99u);
  EXPECT_TRUE(flags.quick);
}

TEST(BenchFlagsTest, DefaultsWhenUnset) {
  const char* argv[] = {"prog"};
  const BenchFlags flags =
      BenchFlags::Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.n, 2'000'000u);
  EXPECT_EQ(flags.runs, 3);
  EXPECT_FALSE(flags.quick);
}

TEST(WorkloadTest, KindsProduceDifferentSeries) {
  const Workload ucr = Workload::Make(5000, 11, "ucr");
  const Workload synth = Workload::Make(5000, 11, "synthetic");
  EXPECT_EQ(ucr.series.size(), 5000u);
  EXPECT_EQ(synth.series.size(), 5000u);
  EXPECT_NE(ucr.series.values(), synth.series.values());
}

TEST(WorkloadTest, MakeQueryStaysInBounds) {
  const Workload w = Workload::Make(2000, 12);
  Rng rng(13);
  for (int t = 0; t < 50; ++t) {
    const auto q = MakeQuery(w, 500, &rng);
    EXPECT_EQ(q.size(), 500u);
  }
}

TEST(TablePrinterTest, FormattersAreStable) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0), "2.0");
  EXPECT_EQ(TablePrinter::FmtInt(1234567), "1234567");
  EXPECT_EQ(TablePrinter::FmtSci(0.00012), "1.2e-04");
}

TEST(StopwatchTest, MeasuresForwardTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sw.Ms(), 0.0);
  EXPECT_GE(sw.Seconds(), 0.0);
}

}  // namespace
}  // namespace kvmatch
