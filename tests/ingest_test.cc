// Tests for the online-ingest write path: epoch-versioned catalog
// mutations (create/append/replace/drop) racing live queries.
//
// The load-bearing property: a query pins one epoch's snapshot at acquire
// time and its results are exactly brute force over that epoch's series —
// never a torn mix of generations — while appends, replaces and drops
// install new epochs underneath it. Run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "fault_kvstore.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"
#include "storage/minikv.h"
#include "ts/generator.h"
#include "ts/series_store.h"

namespace kvmatch {
namespace {

Session::Options SmallOptions() {
  Session::Options options;
  options.wu = 25;
  options.levels = 3;
  return options;
}

Catalog::Options SmallCatalogOptions() {
  Catalog::Options copts;
  copts.session = SmallOptions();
  return copts;
}

QueryParams EdParams(double epsilon) {
  QueryParams params;
  params.type = QueryType::kRsmEd;
  params.epsilon = epsilon;
  return params;
}

/// Do `got` and `expected` describe the same matches (exact offsets,
/// distances within float-summation tolerance)?
bool SameMatches(const std::vector<MatchResult>& got,
                 const std::vector<MatchResult>& expected) {
  if (got.size() != expected.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].offset != expected[i].offset) return false;
    if (std::abs(got[i].distance - expected[i].distance) > 1e-6) return false;
  }
  return true;
}

/// Number of live keys under `prefix`.
size_t CountKeys(KvStore* store, const std::string& prefix) {
  size_t n = 0;
  for (auto it = store->Scan(prefix, PrefixUpperBound(prefix)); it->Valid();
       it->Next()) {
    ++n;
  }
  return n;
}

TEST(IngestTest, AppendInstallsNewEpochAndMatchesBruteForce) {
  MemKvStore store;
  Catalog catalog(&store, SmallCatalogOptions());

  Rng rng(11);
  TimeSeries base = GenerateSynthetic(3000, &rng);
  TimeSeries full = base;
  ASSERT_TRUE(catalog.CreateSeries("s", base).ok());
  ASSERT_EQ(*catalog.SeriesEpoch("s"), 0u);

  const auto q = ExtractQuery(base, 137, 120, 0.1, &rng);
  const QueryParams params = EdParams(3.0);

  auto session0 = catalog.Acquire("s");
  ASSERT_TRUE(session0.ok());
  const auto expected0 = BruteForceMatch(base, q, params);
  auto got0 = (*session0)->Query(q, params);
  ASSERT_TRUE(got0.ok());
  EXPECT_TRUE(SameMatches(*got0, expected0));

  // Append: a new epoch appears; the query now also sees the extension.
  TimeSeries ext = GenerateSynthetic(1000, &rng);
  ASSERT_TRUE(catalog.AppendSeries("s", ext.values()).ok());
  ASSERT_EQ(*catalog.SeriesEpoch("s"), 1u);
  full.Extend(ext.values());

  auto session1 = catalog.Acquire("s");
  ASSERT_TRUE(session1.ok());
  EXPECT_EQ((*session1)->series().size(), full.size());
  const auto expected1 = BruteForceMatch(full, q, params);
  auto got1 = (*session1)->Query(q, params);
  ASSERT_TRUE(got1.ok());
  EXPECT_TRUE(SameMatches(*got1, expected1));
  // Append never loses matches: epoch 0's results are a prefix subset.
  EXPECT_GE(expected1.size(), expected0.size());

  // The pinned old-epoch session is untouched by the append.
  auto again0 = (*session0)->Query(q, params);
  ASSERT_TRUE(again0.ok());
  EXPECT_TRUE(SameMatches(*again0, expected0));

  // Releasing the last epoch-0 reader purges its keys; epoch 1 stays.
  EXPECT_GT(CountKeys(&store, "series/s/e0/"), 0u);
  session0 = Status::NotFound("released");  // drop our pin
  EXPECT_EQ(CountKeys(&store, "series/s/e0/"), 0u);
  EXPECT_GT(CountKeys(&store, "series/s/e1/"), 0u);
}

TEST(IngestTest, ReplaceSwapsContentWholesale) {
  MemKvStore store;
  Catalog catalog(&store, SmallCatalogOptions());
  Rng rng(12);
  TimeSeries a = GenerateSynthetic(2000, &rng);
  TimeSeries b = GenerateUcrLike(2500, &rng);
  ASSERT_TRUE(catalog.CreateSeries("s", a).ok());
  ASSERT_TRUE(catalog.ReplaceSeries("s", b).ok());
  ASSERT_EQ(*catalog.SeriesEpoch("s"), 1u);

  const auto q = ExtractQuery(b, 400, 100, 0.05, &rng);
  const QueryParams params = EdParams(2.5);
  auto session = catalog.Acquire("s");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->series().size(), b.size());
  auto got = (*session)->Query(q, params);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SameMatches(*got, BruteForceMatch(b, q, params)));

  EXPECT_TRUE(catalog.ReplaceSeries("nope", std::move(b)).IsNotFound());
}

TEST(IngestTest, DropReturnsNotFoundWhileInFlightReadersComplete) {
  MemKvStore store;
  Catalog catalog(&store, SmallCatalogOptions());
  QueryService service(&catalog, {.num_threads = 2});

  Rng rng(13);
  TimeSeries base = GenerateSynthetic(2000, &rng);
  ASSERT_TRUE(catalog.CreateSeries("s", base).ok());
  const auto q = ExtractQuery(base, 50, 100, 0.1, &rng);
  const QueryParams params = EdParams(3.0);
  const auto expected = BruteForceMatch(base, q, params);

  // Pin a snapshot, then drop the series.
  auto pinned = catalog.Acquire("s");
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(catalog.DropSeries("s").ok());
  EXPECT_TRUE(catalog.DropSeries("s").IsNotFound());  // idempotent check

  // New queries: NotFound, immediately.
  QueryRequest req;
  req.series = "s";
  req.query.assign(q.begin(), q.end());
  req.params = params;
  EXPECT_TRUE(service.Submit(req).get().status.IsNotFound());
  EXPECT_FALSE(catalog.Contains("s"));
  EXPECT_TRUE(catalog.Acquire("s").status().IsNotFound());

  // The pinned reader is unaffected — and its keys survive it.
  EXPECT_GT(CountKeys(&store, "series/s/"), 0u);
  auto got = (*pinned)->Query(q, params);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SameMatches(*got, expected));

  // Last reader out turns off the lights.
  pinned = Status::NotFound("released");
  EXPECT_EQ(CountKeys(&store, "series/s/"), 0u);
  EXPECT_EQ(CountKeys(&store, "catalog/"), 0u);

  // The name is immediately reusable, at a fresh epoch: the recreated
  // series must never collide with the dropped generation's keys.
  ASSERT_TRUE(catalog.CreateSeries("s", std::move(base)).ok());
  EXPECT_GE(*catalog.SeriesEpoch("s"), 1u);  // epoch 0 is never reused
}

TEST(IngestTest, CatalogReopensMutatedSeriesFromStore) {
  // Epoch state round-trips through the directory rows: a fresh catalog
  // over the same store serves the latest generation.
  MemKvStore store;
  Rng rng(14);
  TimeSeries base = GenerateSynthetic(1500, &rng);
  TimeSeries full = base;
  TimeSeries ext = GenerateSynthetic(700, &rng);
  full.Extend(ext.values());
  {
    Catalog catalog(&store, SmallCatalogOptions());
    ASSERT_TRUE(catalog.CreateSeries("s", std::move(base)).ok());
    ASSERT_TRUE(catalog.AppendSeries("s", ext.values()).ok());
  }
  Catalog reopened(&store, SmallCatalogOptions());
  ASSERT_EQ(*reopened.SeriesEpoch("s"), 1u);
  auto session = reopened.Acquire("s");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->series().size(), full.size());

  // ...and appends continue where the old process left off (the ingest
  // state reseeds from the reopened session).
  TimeSeries more = GenerateSynthetic(500, &rng);
  ASSERT_TRUE(reopened.AppendSeries("s", more.values()).ok());
  full.Extend(more.values());
  auto session2 = reopened.Acquire("s");
  ASSERT_TRUE(session2.ok());
  EXPECT_EQ((*session2)->series().size(), full.size());
}

TEST(IngestTest, IngestWorksOverMiniKvBackend) {
  // The LSM backend exercises tombstones + table turnover on the same
  // epoch lifecycle (tiny memtable so every commit spills tables).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "kvm_ingest_minikv")
          .string();
  std::filesystem::remove_all(dir);
  MiniKv::Options mopts;
  mopts.memtable_limit_bytes = 16 * 1024;
  auto kv = MiniKv::Open(dir, mopts);
  ASSERT_TRUE(kv.ok());

  Catalog catalog(kv->get(), SmallCatalogOptions());
  Rng rng(15);
  TimeSeries base = GenerateSynthetic(2000, &rng);
  TimeSeries full = base;
  ASSERT_TRUE(catalog.CreateSeries("s", base).ok());
  TimeSeries ext = GenerateSynthetic(800, &rng);
  ASSERT_TRUE(catalog.AppendSeries("s", ext.values()).ok());
  full.Extend(ext.values());

  const auto q = ExtractQuery(full, 2100, 100, 0.05, &rng);
  const QueryParams params = EdParams(3.0);
  auto session = catalog.Acquire("s");
  ASSERT_TRUE(session.ok());
  auto got = (*session)->Query(q, params);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SameMatches(*got, BruteForceMatch(full, q, params)));

  // Old-epoch keys are tombstoned out of scans once the reader count
  // drops (CreateSeries cached the epoch-0 session; replace our pin).
  session = Status::NotFound("released");
  ASSERT_TRUE(catalog.DropSeries("s").ok());
  EXPECT_EQ(CountKeys(kv->get(), "series/s/"), 0u);
  std::filesystem::remove_all(dir);
}

// ---- Delta-commit write amplification: appends are O(appended) ----

TEST(IngestTest, AppendWritesOnlyTheGrownTailChunks) {
  // Counts the actual KvStore chunk-row writes through the fault wrapper:
  // appending k points to a long series must write ~k/chunk rows into the
  // shared data namespace and must never rewrite a chunk row a previous
  // commit already wrote.
  MemKvStore base;
  FaultInjectingKvStore store(&base);
  Catalog::Options copts = SmallCatalogOptions();
  copts.session.series_chunk = 128;
  Catalog catalog(&store, copts);

  constexpr size_t kBase = 20000;
  constexpr size_t kAppend = 200;
  constexpr size_t kChunk = 128;
  Rng rng(31);
  TimeSeries big = GenerateSynthetic(kBase, &rng);
  ASSERT_TRUE(catalog.CreateSeries("s", big).ok());
  // The first epoch of a fresh catalog is 0, so its data generation is
  // "d0" — and appends keep extending it.
  const std::string data_ns = "series/s/d0/";
  EXPECT_EQ(store.puts_with_prefix(data_ns),
            (kBase + kChunk - 1) / kChunk);

  store.ResetLog();
  TimeSeries ext = GenerateSynthetic(kAppend, &rng);
  ASSERT_TRUE(catalog.AppendSeries("s", ext.values()).ok());

  // O(appended): the grown partial chunk plus the new tail chunks — not
  // the ~156 rows the series already has.
  const uint64_t append_chunk_puts = store.puts_with_prefix(data_ns);
  EXPECT_GT(append_chunk_puts, 0u);
  EXPECT_LE(append_chunk_puts, kAppend / kChunk + 2);

  // No write touched a chunk row before the grown tail, and the new
  // epoch's namespace holds no chunk rows at all (header + index only).
  const uint64_t tail_floor = (kBase / kChunk) * kChunk;
  const std::string tail_key = SeriesStore::ChunkKey(data_ns, tail_floor);
  for (const auto& key : store.put_log()) {
    if (key.size() >= data_ns.size() &&
        key.compare(0, data_ns.size(), data_ns) == 0) {
      EXPECT_GE(key, tail_key) << "append rewrote an old chunk row";
    }
  }
  EXPECT_EQ(store.puts_with_prefix("series/s/e1/data/c"), 0u);

  // The appended series still reads back exactly (delta commits must not
  // trade correctness for write savings).
  TimeSeries full = big;
  full.Extend(ext.values());
  auto session = catalog.Acquire("s");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->series().values(), full.values());

  // A replace starts a fresh data generation and leaves nothing shared.
  store.ResetLog();
  ASSERT_TRUE(
      catalog.ReplaceSeries("s", GenerateSynthetic(1000, &rng)).ok());
  EXPECT_EQ(store.puts_with_prefix(data_ns), 0u);
  EXPECT_EQ(store.puts_with_prefix("series/s/d2/"), (1000 + 127) / 128);
}

// ---- The acceptance scenario: mutations racing an 8-thread query load ----

TEST(IngestTest, ConcurrentQueriesAlwaysMatchSomePinnedEpoch) {
  MemKvStore store;
  Catalog catalog(&store, SmallCatalogOptions());
  QueryService::Options sopts;
  sopts.num_threads = 8;
  QueryService service(&catalog, sopts);
  catalog.SetStatsRegistry(service.stats_registry());

  // Script the epoch history up front so every generation's brute-force
  // answer is known: e0 = base, e1..e3 appends, e4 replace, e5..e6 appends.
  Rng rng(77);
  std::vector<TimeSeries> epochs;
  epochs.push_back(GenerateSynthetic(3000, &rng));
  for (int i = 0; i < 3; ++i) {
    TimeSeries next = epochs.back();
    next.Extend(GenerateSynthetic(400, &rng).values());
    epochs.push_back(std::move(next));
  }
  epochs.push_back(GenerateSynthetic(3500, &rng));  // the replace
  for (int i = 0; i < 2; ++i) {
    TimeSeries next = epochs.back();
    next.Extend(GenerateSynthetic(400, &rng).values());
    epochs.push_back(std::move(next));
  }

  const auto q = ExtractQuery(epochs[0], 211, 100, 0.1, &rng);
  const QueryParams params = EdParams(3.5);
  std::vector<std::vector<MatchResult>> expected;
  expected.reserve(epochs.size());
  for (const auto& series : epochs) {
    expected.push_back(BruteForceMatch(series, q, params));
  }

  ASSERT_TRUE(catalog.CreateSeries("s", epochs[0]).ok());

  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> completed{0};

  auto check_response = [&](const QueryResponse& response) {
    if (!response.status.ok()) {
      failures.fetch_add(1);
      return;
    }
    completed.fetch_add(1);
    for (const auto& exp : expected) {
      if (SameMatches(response.matches, exp)) return;
    }
    mismatches.fetch_add(1);
  };

  QueryRequest req;
  req.series = "s";
  req.query.assign(q.begin(), q.end());
  req.params = params;

  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        check_response(service.Submit(req).get());
      }
    });
  }

  // The writer walks the scripted history while the readers hammer away.
  for (size_t e = 1; e < epochs.size(); ++e) {
    Status st;
    if (e == 4) {
      st = catalog.ReplaceSeries("s", epochs[e]);
    } else {
      const size_t old_len = epochs[e - 1].size();
      std::span<const double> tail(epochs[e].data() + old_len,
                                   epochs[e].size() - old_len);
      st = catalog.AppendSeries("s", tail);
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << mismatches.load() << " of " << completed.load()
      << " responses matched no epoch (torn read)";
  EXPECT_GT(completed.load(), 0u);

  // Settled state: exactly the final epoch, by brute force.
  auto session = catalog.Acquire("s");
  ASSERT_TRUE(session.ok());
  auto got = (*session)->Query(q, params);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(SameMatches(*got, expected.back()));
  EXPECT_EQ(*catalog.SeriesEpoch("s"), epochs.size() - 1);

  const ServiceStatsSnapshot snap = service.Stats();
  EXPECT_EQ(snap.epochs_retired, epochs.size() - 1);
  EXPECT_GT(snap.points_appended, 0u);
  EXPECT_GT(snap.ingest_batches, 0u);
  ASSERT_EQ(snap.series_epochs.size(), 1u);
  EXPECT_EQ(snap.series_epochs[0].second, epochs.size() - 1);
}

// ---- Satellite: LRU eviction racing concurrent queries ----

TEST(IngestTest, EvictionNeverDestroysPinnedSnapshots) {
  MemKvStore store;
  Catalog::Options copts = SmallCatalogOptions();
  // A budget far below one session: every acquire evicts everything but
  // the entry it protects, so sessions constantly fall out of the cache
  // while queries still hold them.
  copts.memory_budget_bytes = 1;
  Catalog catalog(&store, copts);

  constexpr size_t kNumSeries = 4;
  Rng rng(21);
  std::vector<TimeSeries> refs;
  for (size_t i = 0; i < kNumSeries; ++i) {
    refs.push_back(GenerateSynthetic(1500, &rng));
    ASSERT_TRUE(
        catalog.CreateSeries("s" + std::to_string(i), refs.back()).ok());
  }
  const QueryParams params = EdParams(3.0);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      Rng trng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t i = static_cast<size_t>(
            trng.UniformInt(0, kNumSeries - 1));
        auto session = catalog.Acquire("s" + std::to_string(i));
        if (!session.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // The pinned snapshot must stay fully usable however hard the
        // budget churns the cache underneath.
        const auto q = ExtractQuery(refs[i], 30, 80, 0.05, &trng);
        if (!(*session)->Query(q, params).ok()) failures.fetch_add(1);
      }
    });
  }
  // Writer thread: appends force retirement churn on top of eviction.
  std::thread writer([&] {
    Rng wrng(999);
    for (int round = 0; round < 10; ++round) {
      const std::string name =
          "s" + std::to_string(round % kNumSeries);
      const TimeSeries ext = GenerateSynthetic(200, &wrng);
      if (!catalog.AppendSeries(name, ext.values()).ok()) {
        failures.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  // The budget was honored (modulo the always-kept MRU entry).
  EXPECT_LE(catalog.cached_sessions(), 1u);
}

}  // namespace
}  // namespace kvmatch
