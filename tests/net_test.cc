// Tests for the network front-end: protocol framing round-trips and
// rejection of damaged frames, and a loopback server driven by concurrent
// pipelined clients that must return exactly the serial in-process
// results. The damaged-frame tests speak raw bytes on purpose — they
// assert the server survives input no well-behaved client would send.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"
#include "ts/generator.h"

namespace kvmatch {
namespace net {
namespace {

// ---------------------------------------------------------------- protocol

Frame RoundTrip(const Frame& in) {
  std::string wire;
  EncodeFrame(in, &wire);
  FrameDecoder decoder;
  // Feed byte-by-byte: a complete frame must assemble from any chunking.
  Frame out;
  Status error;
  for (char c : wire) {
    EXPECT_EQ(decoder.Next(&out, &error), FrameDecoder::Event::kNeedMore);
    decoder.Feed(std::string_view(&c, 1));
  }
  EXPECT_EQ(decoder.Next(&out, &error), FrameDecoder::Event::kFrame)
      << error.ToString();
  return out;
}

TEST(ProtocolTest, FrameRoundTripsForEveryType) {
  for (FrameType type :
       {FrameType::kQueryRequest, FrameType::kQueryResponse,
        FrameType::kError, FrameType::kStatsRequest,
        FrameType::kStatsResponse, FrameType::kListRequest,
        FrameType::kListResponse, FrameType::kPing, FrameType::kPong,
        FrameType::kCreateRequest, FrameType::kAppendRequest,
        FrameType::kDropRequest, FrameType::kIngestResponse,
        FrameType::kCancel, FrameType::kMatchResponsePart}) {
    Frame in;
    in.type = type;
    in.request_id = 0xdeadbeefcafeull + static_cast<uint64_t>(type);
    in.body = "body-" + std::to_string(static_cast<int>(type));
    const Frame out = RoundTrip(in);
    EXPECT_EQ(out.type, in.type);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.body, in.body);
  }
}

TEST(ProtocolTest, QueryRequestRoundTripsLiteralAndReference) {
  const QueryType kTypes[] = {QueryType::kRsmEd, QueryType::kRsmDtw,
                              QueryType::kCnsmEd, QueryType::kCnsmDtw,
                              QueryType::kRsmL1};
  for (QueryType type : kTypes) {
    WireQueryRequest in;
    in.request.series = "sensor-7";
    in.request.params.type = type;
    in.request.params.epsilon = 2.25;
    in.request.params.alpha = 1.5;
    in.request.params.beta = 3.0;
    in.request.params.rho = 11;
    in.request.top_k = 5;
    in.request.topk_options.initial_epsilon = 0.75;
    in.request.topk_options.growth = 1.5;
    in.request.topk_options.max_rounds = 17;
    in.request.topk_options.exclusion_zone = 32;
    in.request.timeout_ms = 125.5;
    in.request.query = {1.0, -2.5, 3.75, 0.0, 1e-9};

    std::string body;
    EncodeQueryRequestBody(in, &body);
    WireQueryRequest out;
    ASSERT_TRUE(DecodeQueryRequestBody(body, &out).ok());
    EXPECT_EQ(out.request.series, in.request.series);
    EXPECT_EQ(out.request.params.type, type);
    EXPECT_EQ(out.request.params.epsilon, in.request.params.epsilon);
    EXPECT_EQ(out.request.params.alpha, in.request.params.alpha);
    EXPECT_EQ(out.request.params.beta, in.request.params.beta);
    EXPECT_EQ(out.request.params.rho, in.request.params.rho);
    EXPECT_EQ(out.request.top_k, in.request.top_k);
    EXPECT_EQ(out.request.topk_options.initial_epsilon,
              in.request.topk_options.initial_epsilon);
    EXPECT_EQ(out.request.topk_options.growth,
              in.request.topk_options.growth);
    EXPECT_EQ(out.request.topk_options.max_rounds,
              in.request.topk_options.max_rounds);
    EXPECT_EQ(out.request.topk_options.exclusion_zone,
              in.request.topk_options.exclusion_zone);
    EXPECT_EQ(out.request.timeout_ms, in.request.timeout_ms);
    EXPECT_EQ(out.request.query, in.request.query);
    EXPECT_FALSE(out.by_reference);

    in.by_reference = true;
    in.ref_offset = 12345;
    in.ref_length = 256;
    in.request.query.clear();
    body.clear();
    EncodeQueryRequestBody(in, &body);
    ASSERT_TRUE(DecodeQueryRequestBody(body, &out).ok());
    EXPECT_TRUE(out.by_reference);
    EXPECT_EQ(out.ref_offset, 12345u);
    EXPECT_EQ(out.ref_length, 256u);
  }
}

TEST(ProtocolTest, QueryResponseRoundTrips) {
  QueryResponse in;
  in.status = Status::OK();
  in.latency_ms = 12.75;
  in.matches = {{100, 1.5}, {2048, 2.25}, {999999, 0.0}};
  in.stats.probe.index_accesses = 7;
  in.stats.probe.rows_fetched = 21;
  in.stats.probe.cache_hits = 4;
  in.stats.candidate_positions = 900;
  in.stats.candidate_intervals = 33;
  in.stats.distance_calls = 12;
  in.stats.lb_pruned = 888;
  in.stats.constraint_pruned = 5;
  in.stats.phase1_ms = 1.25;
  in.stats.phase2_ms = 11.5;

  std::string body;
  EncodeQueryResponseBody(in, &body);
  QueryResponse out;
  ASSERT_TRUE(DecodeQueryResponseBody(body, &out).ok());
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.latency_ms, in.latency_ms);
  EXPECT_EQ(out.matches, in.matches);
  EXPECT_EQ(out.stats.probe.index_accesses, 7u);
  EXPECT_EQ(out.stats.probe.rows_fetched, 21u);
  EXPECT_EQ(out.stats.probe.cache_hits, 4u);
  EXPECT_EQ(out.stats.candidate_positions, 900u);
  EXPECT_EQ(out.stats.candidate_intervals, 33u);
  EXPECT_EQ(out.stats.distance_calls, 12u);
  EXPECT_EQ(out.stats.lb_pruned, 888u);
  EXPECT_EQ(out.stats.constraint_pruned, 5u);
  EXPECT_EQ(out.stats.phase1_ms, 1.25);
  EXPECT_EQ(out.stats.phase2_ms, 11.5);
}

TEST(ProtocolTest, ErrorBodyCarriesEveryStatusCode) {
  const Status statuses[] = {
      Status::NotFound("x"),          Status::InvalidArgument("y"),
      Status::IOError("z"),           Status::Corruption("c"),
      Status::NotSupported("n"),      Status::OutOfRange("o"),
      Status::Internal("i"),          Status::ResourceExhausted("shed"),
      Status::DeadlineExceeded("late"), Status::Cancelled("aborted")};
  for (const Status& in : statuses) {
    std::string body;
    EncodeErrorBody(in, &body);
    Status out;
    ASSERT_TRUE(DecodeErrorBody(body, &out).ok());
    EXPECT_EQ(out.code(), in.code());
    EXPECT_EQ(out.message(), in.message());
  }
}

TEST(ProtocolTest, ListResponseRoundTrips) {
  const std::vector<SeriesInfo> in = {{"a", 100}, {"bench3", 1u << 20}};
  std::string body;
  EncodeListResponseBody(in, &body);
  std::vector<SeriesInfo> out;
  ASSERT_TRUE(DecodeListResponseBody(body, &out).ok());
  EXPECT_EQ(out, in);
}

TEST(ProtocolTest, IngestBodiesRoundTrip) {
  WireIngestRequest in;
  in.series = "sensor-9";
  in.values = {0.5, -1.25, 3.0, 1e-12};
  std::string body;
  EncodeIngestRequestBody(in, &body);
  WireIngestRequest out;
  ASSERT_TRUE(DecodeIngestRequestBody(body, &out).ok());
  EXPECT_EQ(out, in);

  // Empty values (the DROP shape) round-trips too.
  in.values.clear();
  body.clear();
  EncodeIngestRequestBody(in, &body);
  ASSERT_TRUE(DecodeIngestRequestBody(body, &out).ok());
  EXPECT_EQ(out, in);

  IngestAck ack_in{42, 123456};
  body.clear();
  EncodeIngestResponseBody(ack_in, &body);
  IngestAck ack_out;
  ASSERT_TRUE(DecodeIngestResponseBody(body, &ack_out).ok());
  EXPECT_EQ(ack_out, ack_in);

  // A value count that disagrees with the body size is rejected before
  // any allocation.
  body.clear();
  EncodeIngestRequestBody(in, &body);
  body.back() = '\x7f';  // corrupt the count varint
  EXPECT_FALSE(DecodeIngestRequestBody(body, &out).ok());
  EXPECT_FALSE(DecodeIngestRequestBody("", &out).ok());
  EXPECT_FALSE(DecodeIngestResponseBody("", &ack_out).ok());
}

TEST(ProtocolTest, MatchPartBodyRoundTripsAndAppends) {
  const std::vector<MatchResult> first = {{10, 0.5}, {999, 1.25}};
  const std::vector<MatchResult> second = {{123456789, 2.0}};
  std::string body;
  EncodeMatchPartBody(first, &body);
  std::vector<MatchResult> out;
  ASSERT_TRUE(DecodeMatchPartBody(body, &out).ok());
  EXPECT_EQ(out, first);
  // Decoding appends: a second part extends the reassembly buffer.
  body.clear();
  EncodeMatchPartBody(second, &body);
  ASSERT_TRUE(DecodeMatchPartBody(body, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], second[0]);

  // An empty part is legal; a count the body cannot hold is rejected
  // before any allocation.
  body.clear();
  EncodeMatchPartBody({}, &body);
  std::vector<MatchResult> empty_out;
  ASSERT_TRUE(DecodeMatchPartBody(body, &empty_out).ok());
  EXPECT_TRUE(empty_out.empty());
  std::string bogus;
  PutVarint64(&bogus, 1u << 30);
  EXPECT_FALSE(DecodeMatchPartBody(bogus, &empty_out).ok());
  EXPECT_FALSE(DecodeMatchPartBody("\xff", &empty_out).ok());
}

TEST(ProtocolTest, OversizedDeclaredLengthIsFatal) {
  std::string wire;
  PutFixed32(&wire, static_cast<uint32_t>(kMaxPayloadBytes + 1));
  PutFixed32(&wire, 0);  // CRC never inspected: length check comes first
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Event::kFatal);
  EXPECT_TRUE(error.IsInvalidArgument()) << error.ToString();
  // The stream stays dead even if more valid bytes arrive.
  Frame good;
  good.type = FrameType::kPing;
  std::string more;
  EncodeFrame(good, &more);
  decoder.Feed(more);
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Event::kFatal);
}

TEST(ProtocolTest, CorruptCrcConsumesFrameAndStreamRecovers) {
  Frame first;
  first.type = FrameType::kPing;
  first.request_id = 1;
  Frame second;
  second.type = FrameType::kPong;
  second.request_id = 2;

  std::string wire;
  EncodeFrame(first, &wire);
  wire[kFrameHeaderBytes + 3] ^= 0x40;  // flip a payload bit in frame 1
  EncodeFrame(second, &wire);

  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Event::kBadFrame);
  EXPECT_TRUE(error.IsCorruption()) << error.ToString();
  // The damaged frame was consumed; the next one decodes normally.
  ASSERT_EQ(decoder.Next(&frame, &error), FrameDecoder::Event::kFrame);
  EXPECT_EQ(frame.type, FrameType::kPong);
  EXPECT_EQ(frame.request_id, 2u);
}

TEST(ProtocolTest, PayloadShorterThanPrologueIsBadFrame) {
  const std::string payload = "abc";  // valid CRC, but < type + request id
  std::string wire;
  PutFixed32(&wire, static_cast<uint32_t>(payload.size()));
  PutFixed32(&wire, crc32c::Mask(crc32c::Value(payload)));
  wire += payload;
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Next(&frame, &error), FrameDecoder::Event::kBadFrame);
  EXPECT_TRUE(error.IsCorruption());
}

TEST(ProtocolTest, MalformedBodiesAreRejected) {
  WireQueryRequest request_out;
  EXPECT_FALSE(DecodeQueryRequestBody("garbage", &request_out).ok());
  QueryResponse response_out;
  EXPECT_FALSE(DecodeQueryResponseBody("\x01\x02", &response_out).ok());
  // A match count promising more entries than the body can hold must be
  // rejected before any allocation happens.
  std::string body;
  EncodeErrorBody(Status::OK(), &body);  // code 0 + empty message
  PutDouble(&body, 0.0);                 // latency
  PutVarint64(&body, 1u << 30);          // absurd match count
  EXPECT_FALSE(DecodeQueryResponseBody(body, &response_out).ok());
}

TEST(ProtocolTest, QueryValueCountOverflowIsRejected) {
  // count * 8 wraps back onto the actual body size for count = 2^61 + 1
  // with 8 trailing bytes; the decoder must reject it instead of
  // attempting a multi-exabyte allocation.
  WireQueryRequest req;
  req.request.series = "s";
  std::string body;
  EncodeQueryRequestBody(req, &body);  // empty literal query: count byte 0
  body.pop_back();                     // strip the zero-count varint
  PutVarint64(&body, (1ull << 61) + 1);
  body.append(8, '\0');
  WireQueryRequest out;
  EXPECT_FALSE(DecodeQueryRequestBody(body, &out).ok());
}

// Seeded byte-level fuzzing of the incremental decoder: random flips,
// truncations, garbage insertions and splices of valid frames, fed in
// random-sized chunks, must never crash, hang, or surface a frame whose
// canonical encoding is not one of the originals (the CRC must catch
// every mutation that reaches a frame boundary). Runs under ASan in CI;
// ctest label: fuzzish.
TEST(ProtocolTest, DecoderSurvivesRandomMutationsWithoutAcceptingGarbage) {
  // A pool of valid frames of every shape and a few sizes.
  std::vector<std::string> pool;
  {
    Rng rng(20260701);
    for (int i = 0; i < 18; ++i) {
      Frame frame;
      frame.request_id = rng.Next();
      switch (i % 6) {
        case 0: {
          frame.type = FrameType::kQueryRequest;
          WireQueryRequest req;
          req.request.series = "series" + std::to_string(i);
          for (int k = 0; k < 8 * (i + 1); ++k) {
            req.request.query.push_back(static_cast<double>(rng.Next()) /
                                        1e9);
          }
          EncodeQueryRequestBody(req, &frame.body);
          break;
        }
        case 1: {
          frame.type = FrameType::kError;
          EncodeErrorBody(Status::NotFound("nope"), &frame.body);
          break;
        }
        case 2: {
          frame.type = FrameType::kAppendRequest;
          WireIngestRequest req;
          req.series = "s";
          for (int k = 0; k < 16 * (i + 1); ++k) {
            req.values.push_back(static_cast<double>(k));
          }
          EncodeIngestRequestBody(req, &frame.body);
          break;
        }
        case 3: {
          frame.type = FrameType::kMatchResponsePart;
          std::vector<MatchResult> matches;
          for (int k = 0; k < 12 * (i + 1); ++k) {
            matches.push_back({static_cast<size_t>(rng.Next() % 100000),
                               static_cast<double>(k) * 0.25});
          }
          EncodeMatchPartBody(matches, &frame.body);
          break;
        }
        case 4:
          frame.type = FrameType::kCancel;  // empty body
          break;
        default:
          frame.type = FrameType::kPing;
          break;
      }
      std::string wire;
      EncodeFrame(frame, &wire);
      pool.push_back(std::move(wire));
    }
  }

  Rng rng(987654321);
  auto random_byte = [&rng] {
    return static_cast<char>(rng.UniformInt(0, 255));
  };
  size_t frames_accepted = 0, frames_rejected = 0;

  for (int trial = 0; trial < 400; ++trial) {
    // A stream of 1-4 frames from the pool...
    std::string stream;
    const int64_t count = rng.UniformInt(1, 4);
    for (int64_t i = 0; i < count; ++i) {
      stream += pool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    }
    // ...damaged by 1-4 random mutations.
    const int64_t mutations = rng.UniformInt(1, 4);
    for (int64_t m = 0; m < mutations && !stream.empty(); ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(stream.size()) - 1));
      switch (rng.UniformInt(0, 3)) {
        case 0:  // flip one byte
          stream[pos] = static_cast<char>(stream[pos] ^
                                          (1 << rng.UniformInt(0, 7)));
          break;
        case 1:  // truncate
          stream.resize(pos);
          break;
        case 2: {  // insert garbage
          std::string junk;
          for (int64_t k = rng.UniformInt(1, 24); k > 0; --k) {
            junk.push_back(random_byte());
          }
          stream.insert(pos, junk);
          break;
        }
        default: {  // splice: overwrite with a slice of another frame
          const std::string& donor = pool[static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
          const size_t n = std::min<size_t>(
              donor.size(), static_cast<size_t>(rng.UniformInt(1, 32)));
          stream.replace(pos, std::min(n, stream.size() - pos),
                         donor.substr(0, n));
          break;
        }
      }
    }

    // Feed in random-sized chunks, draining after each feed. Cap the
    // event count: the decoder must always make progress (consume bytes
    // or report kNeedMore/kFatal), so a spin here is a hang bug.
    FrameDecoder decoder;
    size_t fed = 0;
    size_t events = 0;
    const size_t event_cap = 16 * (stream.size() + 16);
    bool fatal = false;
    while (fed < stream.size() && !fatal) {
      const size_t n = std::min<size_t>(
          stream.size() - fed, static_cast<size_t>(rng.UniformInt(1, 64)));
      decoder.Feed(std::string_view(stream).substr(fed, n));
      fed += n;
      for (;;) {
        ASSERT_LT(++events, event_cap) << "decoder spun without progress";
        Frame out;
        Status error;
        const FrameDecoder::Event event = decoder.Next(&out, &error);
        if (event == FrameDecoder::Event::kNeedMore) break;
        if (event == FrameDecoder::Event::kFatal) {
          fatal = true;
          break;
        }
        if (event == FrameDecoder::Event::kBadFrame) {
          ++frames_rejected;
          EXPECT_FALSE(error.ok());
          continue;
        }
        ASSERT_EQ(event, FrameDecoder::Event::kFrame);
        // Anything the decoder accepts must be byte-identical to a frame
        // we actually encoded — a corrupt frame slipping through means
        // the CRC or length checks have a hole.
        std::string reencoded;
        EncodeFrame(out, &reencoded);
        bool known = false;
        for (const auto& valid : pool) {
          if (valid == reencoded) {
            known = true;
            break;
          }
        }
        EXPECT_TRUE(known) << "decoder accepted a mutated frame (trial "
                           << trial << ")";
        ++frames_accepted;
      }
    }
  }
  // The fuzz must actually exercise both paths to mean anything.
  EXPECT_GT(frames_accepted, 0u);
  EXPECT_GT(frames_rejected, 0u);
}

// ----------------------------------------------------------------- server

constexpr size_t kNumSeries = 4;
constexpr size_t kSeriesLen = 3000;

Session::Options SmallOptions() {
  Session::Options options;
  options.wu = 25;
  options.levels = 3;
  return options;
}

std::string SeriesName(size_t i) { return "s" + std::to_string(i); }

std::vector<TimeSeries> IngestFixture(KvStore* store) {
  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog ingest_catalog(store, copts);
  std::vector<TimeSeries> references;
  for (size_t i = 0; i < kNumSeries; ++i) {
    Rng rng(2000 + i);
    TimeSeries x = GenerateSynthetic(kSeriesLen, &rng);
    references.push_back(x);
    EXPECT_TRUE(ingest_catalog.Ingest(SeriesName(i), std::move(x)).ok());
  }
  return references;
}

std::vector<QueryRequest> MakeWorkload(const std::vector<TimeSeries>& refs,
                                       size_t count) {
  const QueryType kTypes[] = {QueryType::kRsmEd, QueryType::kRsmDtw,
                              QueryType::kCnsmEd, QueryType::kCnsmDtw,
                              QueryType::kRsmL1};
  Rng rng(55);
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    const size_t series = i % refs.size();
    QueryRequest req;
    req.series = SeriesName(series);
    const size_t qlen = 100 + 25 * (i % 4);
    const size_t qoff = (211 * i) % (kSeriesLen - qlen);
    req.query = ExtractQuery(refs[series], qoff, qlen, 0.1, &rng);
    req.params.type = kTypes[i % 5];
    req.params.epsilon = 2.0 + static_cast<double>(i % 3);
    req.params.alpha = 1.5;
    req.params.beta = 3.0;
    req.params.rho = 5;
    if (i % 6 == 2) req.top_k = 4;
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<std::vector<MatchResult>> RunSerial(
    Catalog* catalog, const std::vector<QueryRequest>& requests) {
  std::vector<std::vector<MatchResult>> results;
  for (const auto& req : requests) {
    auto session = catalog->Acquire(req.series);
    EXPECT_TRUE(session.ok());
    auto matches = req.top_k > 0
                       ? (*session)->QueryTopK(req.query, req.params,
                                               req.top_k, req.topk_options)
                       : (*session)->Query(req.query, req.params);
    EXPECT_TRUE(matches.ok());
    results.push_back(std::move(matches).value());
  }
  return results;
}

struct ServerFixture {
  MemKvStore store;
  std::vector<TimeSeries> refs;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  explicit ServerFixture(size_t threads = 4, size_t max_conns = 64,
                         size_t max_queue = 1024,
                         size_t stream_chunk = 2'000'000,
                         double drain_ms = 30'000.0) {
    refs = IngestFixture(&store);
    Catalog::Options copts;
    copts.session = SmallOptions();
    catalog = std::make_unique<Catalog>(&store, copts);
    QueryService::Options sopts;
    sopts.num_threads = threads;
    sopts.max_queue = max_queue;
    service = std::make_unique<QueryService>(catalog.get(), sopts);
    catalog->SetStatsRegistry(service->stats_registry());
    Server::Options nopts;
    nopts.port = 0;  // ephemeral
    nopts.max_connections = max_conns;
    nopts.stream_chunk_matches = stream_chunk;
    nopts.drain_timeout_ms = drain_ms;
    server = std::make_unique<Server>(catalog.get(), service.get(), nopts);
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
};

TEST(NetServerTest, ConcurrentPipelinedClientsMatchSerialExecution) {
  ServerFixture fx(/*threads=*/4);
  const auto requests = MakeWorkload(fx.refs, 32);

  Catalog::Options copts;
  copts.session = SmallOptions();
  Catalog serial_catalog(&fx.store, copts);
  const auto expected = RunSerial(&serial_catalog, requests);

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", fx.server->port());
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      // Pipeline the whole workload, then collect in submission order
      // even though the server streams responses in completion order.
      std::vector<uint64_t> ids;
      for (const auto& req : requests) {
        auto id = (*client)->SendRequest(req);
        if (!id.ok()) {
          failures[c] = id.status().ToString();
          return;
        }
        ids.push_back(*id);
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        auto response = (*client)->WaitResponse(ids[i]);
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        if (!response->status.ok()) {
          failures[c] = response->status.ToString();
          return;
        }
        if (response->matches != expected[i]) {
          failures[c] = "client " + std::to_string(c) + " request " +
                        std::to_string(i) + ": wrong matches";
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& failure : failures) EXPECT_EQ(failure, "");

  const ServiceStatsSnapshot snap = fx.service->Stats();
  EXPECT_EQ(snap.total_queries, kClients * requests.size());
  EXPECT_EQ(snap.total_errors, 0u);
  EXPECT_EQ(snap.connections_accepted, static_cast<uint64_t>(kClients));
}

TEST(NetServerTest, ByReferenceQueryEqualsLiteralQuery) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // The same window sent literally (extracted client-side, no noise) and
  // by reference must produce identical matches.
  auto session = fx.catalog->Acquire("s1");
  ASSERT_TRUE(session.ok());
  WireQueryRequest by_ref;
  by_ref.request.series = "s1";
  by_ref.request.params.epsilon = 3.0;
  by_ref.by_reference = true;
  by_ref.ref_offset = 500;
  by_ref.ref_length = 128;
  auto ref_id = (*client)->SendRequest(by_ref);
  ASSERT_TRUE(ref_id.ok());

  QueryRequest literal;
  literal.series = "s1";
  literal.params.epsilon = 3.0;
  const auto span = (*session)->series().Subsequence(500, 128);
  literal.query.assign(span.begin(), span.end());
  auto lit_id = (*client)->SendRequest(literal);
  ASSERT_TRUE(lit_id.ok());

  auto ref_response = (*client)->WaitResponse(*ref_id);
  auto lit_response = (*client)->WaitResponse(*lit_id);
  ASSERT_TRUE(ref_response.ok());
  ASSERT_TRUE(lit_response.ok());
  ASSERT_TRUE(ref_response->status.ok()) << ref_response->status.ToString();
  EXPECT_FALSE(ref_response->matches.empty());  // the window matches itself
  EXPECT_EQ(ref_response->matches, lit_response->matches);

  // Out-of-range references come back as typed InvalidArgument.
  by_ref.ref_offset = kSeriesLen;
  by_ref.ref_length = 128;
  auto bad = (*client)->SendRequest(by_ref);
  ASSERT_TRUE(bad.ok());
  auto bad_response = (*client)->WaitResponse(*bad);
  ASSERT_TRUE(bad_response.ok());
  EXPECT_TRUE(bad_response->status.IsInvalidArgument())
      << bad_response->status.ToString();
}

TEST(NetServerTest, TypedErrorsTravelTheWire) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());

  QueryRequest unknown;
  unknown.series = "no-such-series";
  unknown.query.assign(100, 0.0);
  unknown.params.epsilon = 1.0;
  auto response = (*client)->Query(unknown);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsNotFound()) << response->status.ToString();
}

TEST(NetServerTest, WireDeadlineExpiresInQueueAsDeadlineExceeded) {
  ServerFixture fx(/*threads=*/1);
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());

  // Occupy the single worker, then pipeline a request whose budget is a
  // nanosecond: it must be shed at dequeue via the QueryService deadline
  // path and come back as a typed DeadlineExceeded, not execute.
  auto requests = MakeWorkload(fx.refs, 2);
  auto busy_id = (*client)->SendRequest(requests[0]);
  ASSERT_TRUE(busy_id.ok());
  requests[1].timeout_ms = 1e-6;
  auto doomed_id = (*client)->SendRequest(requests[1]);
  ASSERT_TRUE(doomed_id.ok());

  auto busy = (*client)->WaitResponse(*busy_id);
  ASSERT_TRUE(busy.ok());
  EXPECT_TRUE(busy->status.ok()) << busy->status.ToString();
  auto doomed = (*client)->WaitResponse(*doomed_id);
  ASSERT_TRUE(doomed.ok());
  EXPECT_TRUE(doomed->status.IsDeadlineExceeded())
      << doomed->status.ToString();
  EXPECT_EQ(fx.service->Stats().deadline_exceeded, 1u);
}

TEST(NetServerTest, ListStatsAndPing) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());

  auto series = (*client)->ListSeries();
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->size(), kNumSeries);
  for (size_t i = 0; i < kNumSeries; ++i) {
    EXPECT_EQ((*series)[i].length, kSeriesLen);
  }

  // Run one query so the dump has a series section, then fetch STATS.
  auto requests = MakeWorkload(fx.refs, 1);
  auto response = (*client)->Query(requests[0]);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());

  auto text = (*client)->StatsText();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("kvmatch_queries_total 1"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("kvmatch_connections_open 1"), std::string::npos);
  EXPECT_NE(text->find("kvmatch_series_queries_total{series=\"s0\"} 1"),
            std::string::npos);
  EXPECT_NE(text->find("kvmatch_connection_requests_total{conn=\"1\"} 1"),
            std::string::npos)
      << *text;
}

// A raw socket speaking deliberately damaged bytes; Client would never
// produce these.
class RawConnection {
 public:
  explicit RawConnection(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      data.remove_prefix(static_cast<size_t>(n));
    }
  }

  /// Blocks until one full frame arrives (or the peer closes).
  bool ReadFrame(Frame* out) {
    char buf[4096];
    for (;;) {
      Status error;
      switch (decoder_.Next(out, &error)) {
        case FrameDecoder::Event::kFrame: return true;
        case FrameDecoder::Event::kNeedMore: break;
        default: return false;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// One plain-HTTP exchange on the server's (frame) port: sends `request`
/// verbatim, reads until the server closes (it answers Connection: close).
std::string RawHttpExchange(int port, std::string_view request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string_view remaining = request;
  while (!remaining.empty()) {
    const ssize_t n =
        ::send(fd, remaining.data(), remaining.size(), MSG_NOSIGNAL);
    if (n <= 0) break;
    remaining.remove_prefix(static_cast<size_t>(n));
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(NetServerTest, HttpMetricsScrapeOnTheFramePort) {
  ServerFixture fx;
  // The fixture's ingest went through the instrumented store and the
  // registry is attached, so the scrape must carry live storage metrics.
  const std::string resp = RawHttpExchange(
      fx.server->port(),
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\nUser-Agent: "
      "Prometheus/2.0\r\nAccept: */*\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(resp.find("Connection: close"), std::string::npos);
  // Storage decorator histograms and counters.
  EXPECT_NE(resp.find("kvmatch_kvstore_ops_total{op=\"put\"}"),
            std::string::npos);
  EXPECT_NE(resp.find("kvmatch_kvstore_put_latency_ms_bucket"),
            std::string::npos);
  EXPECT_NE(resp.find("kvmatch_kvstore_bytes_written_total"),
            std::string::npos);
  // Catalog MVCC gauges.
  EXPECT_NE(resp.find("kvmatch_live_epochs"), std::string::npos);
  EXPECT_NE(resp.find("kvmatch_data_generations"), std::string::npos);
  EXPECT_NE(resp.find("kvmatch_pinned_snapshots"), std::string::npos);
  // The declared length matches the delivered body.
  const size_t cl_at = resp.find("Content-Length: ");
  ASSERT_NE(cl_at, std::string::npos);
  const size_t body_at = resp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const size_t declared = std::strtoull(
      resp.c_str() + cl_at + std::strlen("Content-Length: "), nullptr, 10);
  EXPECT_EQ(resp.size() - (body_at + 4), declared);
}

TEST(NetServerTest, HttpHealthzNotFoundAndMethodNotAllowed) {
  ServerFixture fx;
  const std::string health =
      RawHttpExchange(fx.server->port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

  const std::string missing =
      RawHttpExchange(fx.server->port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);

  const std::string post =
      RawHttpExchange(fx.server->port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos);

  // HEAD answers headers only, with the body's true length declared.
  const std::string head =
      RawHttpExchange(fx.server->port(), "HEAD /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(head.find("\r\n\r\nok"), std::string::npos);

  // Binary clients are untouched by HTTP traffic having come and gone.
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());

  // And the scrapes were counted.
  EXPECT_GE(fx.service->Stats().http_requests, 4u);
}

TEST(NetServerTest, RemoteIngestLifecycleOverTheWire) {
  ServerFixture fx;
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Create + chunked appends, no filesystem access to the store.
  Rng rng(321);
  const TimeSeries full = GenerateSynthetic(2400, &rng);
  const auto& values = full.values();
  auto created = (*client)->CreateSeries(
      "wire", std::span<const double>(values.data(), 1000));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->length, 1000u);
  for (size_t offset = 1000; offset < values.size(); offset += 700) {
    const size_t len = std::min<size_t>(700, values.size() - offset);
    auto appended = (*client)->AppendSeries(
        "wire", std::span<const double>(values.data() + offset, len));
    ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  }

  // The series is listed, queryable by reference, and identical to the
  // in-process view.
  auto series = (*client)->ListSeries();
  ASSERT_TRUE(series.ok());
  bool listed = false;
  for (const auto& s : *series) {
    if (s.name == "wire") {
      listed = true;
      EXPECT_EQ(s.length, values.size());
    }
  }
  EXPECT_TRUE(listed);

  WireQueryRequest by_ref;
  by_ref.request.series = "wire";
  by_ref.request.params.epsilon = 2.0;
  by_ref.by_reference = true;
  by_ref.ref_offset = 1500;  // crosses the create/append boundary
  by_ref.ref_length = 200;
  auto id = (*client)->SendRequest(by_ref);
  ASSERT_TRUE(id.ok());
  auto response = (*client)->WaitResponse(*id);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok()) << response->status.ToString();
  auto local = fx.catalog->Acquire("wire");
  ASSERT_TRUE(local.ok());
  auto expected = (*local)->Query(
      (*local)->series().Subsequence(1500, 200), by_ref.request.params);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(response->matches, *expected);

  // Ingest metrics flow through the STATS frame.
  auto stats = (*client)->StatsText();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("kvmatch_ingest_points_total"), std::string::npos);
  EXPECT_NE(stats->find("kvmatch_series_epoch{series=\"wire\"}"),
            std::string::npos);

  // Error shapes: duplicate create, append to unknown, drop unknown.
  auto dup = (*client)->CreateSeries(
      "wire", std::span<const double>(values.data(), 1000));
  EXPECT_TRUE(dup.status().IsInvalidArgument()) << dup.status().ToString();
  auto missing = (*client)->AppendSeries(
      "nope", std::span<const double>(values.data(), 100));
  EXPECT_TRUE(missing.status().IsNotFound());
  EXPECT_TRUE((*client)->DropSeries("nope").IsNotFound());

  // Drop: subsequent remote queries answer NotFound.
  ASSERT_TRUE((*client)->DropSeries("wire").ok());
  id = (*client)->SendRequest(by_ref);
  ASSERT_TRUE(id.ok());
  response = (*client)->WaitResponse(*id);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.IsNotFound())
      << response->status.ToString();
}

TEST(NetServerTest, RemoteIngestRunsWhileAnotherConnectionQueries) {
  ServerFixture fx;
  std::atomic<bool> done{false};
  std::string reader_failure;
  // Connection A: a steady by-reference query stream over s0.
  std::thread reader([&] {
    auto client = Client::Connect("127.0.0.1", fx.server->port());
    if (!client.ok()) {
      reader_failure = client.status().ToString();
      return;
    }
    WireQueryRequest req;
    req.request.series = "s0";
    req.request.params.epsilon = 3.0;
    req.by_reference = true;
    req.ref_offset = 100;
    req.ref_length = 128;
    while (!done.load(std::memory_order_relaxed)) {
      auto id = (*client)->SendRequest(req);
      if (!id.ok()) {
        reader_failure = id.status().ToString();
        return;
      }
      auto response = (*client)->WaitResponse(*id);
      if (!response.ok() || !response->status.ok()) {
        reader_failure = (response.ok() ? response->status
                                        : response.status())
                             .ToString();
        return;
      }
    }
  });
  // Connection B: creates and repeatedly appends to a separate series.
  auto writer = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(writer.ok());
  Rng rng(555);
  const TimeSeries base = GenerateSynthetic(1200, &rng);
  auto created = (*writer)->CreateSeries("live", base.values());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  uint64_t last_epoch = created->epoch;
  size_t expected_len = base.size();
  for (int i = 0; i < 5; ++i) {
    const TimeSeries ext = GenerateSynthetic(300, &rng);
    auto ack = (*writer)->AppendSeries("live", ext.values());
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    // Epoch numbers are catalog-global; each append advances them.
    EXPECT_GT(ack->epoch, last_epoch);
    last_epoch = ack->epoch;
    expected_len += ext.size();
    EXPECT_EQ(ack->length, expected_len);
  }
  done.store(true);
  reader.join();
  EXPECT_EQ(reader_failure, "");
}

TEST(NetServerTest, CorruptFrameYieldsErrorAndConnectionSurvives) {
  ServerFixture fx;
  RawConnection raw(fx.server->port());

  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 42;
  std::string corrupt;
  EncodeFrame(ping, &corrupt);
  corrupt[kFrameHeaderBytes + 2] ^= 0x10;  // damage the payload
  raw.Send(corrupt);

  Frame frame;
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.request_id, 0u);  // not attributable to a request
  Status carried;
  ASSERT_TRUE(DecodeErrorBody(frame.body, &carried).ok());
  EXPECT_TRUE(carried.IsCorruption()) << carried.ToString();

  // Same connection, next frame is healthy: it must still be served.
  std::string good;
  EncodeFrame(ping, &good);
  raw.Send(good);
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kPong);
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(fx.service->Stats().protocol_errors, 1u);
}

TEST(NetServerTest, MalformedQueryBodyYieldsErrorAndConnectionSurvives) {
  ServerFixture fx;
  RawConnection raw(fx.server->port());

  Frame bogus;
  bogus.type = FrameType::kQueryRequest;
  bogus.request_id = 7;
  bogus.body = "not a query";  // valid CRC, undecodable body
  std::string wire;
  EncodeFrame(bogus, &wire);
  raw.Send(wire);

  Frame frame;
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.request_id, 7u);  // attributable: CRC was valid
  Status carried;
  ASSERT_TRUE(DecodeErrorBody(frame.body, &carried).ok());
  EXPECT_FALSE(carried.ok());

  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 8;
  wire.clear();
  EncodeFrame(ping, &wire);
  raw.Send(wire);
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kPong);
}

TEST(NetServerTest, OversizedFrameYieldsErrorThenClose) {
  ServerFixture fx;
  RawConnection raw(fx.server->port());

  std::string wire;
  PutFixed32(&wire, static_cast<uint32_t>(kMaxPayloadBytes + 1));
  PutFixed32(&wire, 0);
  raw.Send(wire);

  Frame frame;
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  // The framing offset is untrustworthy, so the server closes this
  // connection — but keeps accepting and serving new ones.
  EXPECT_FALSE(raw.ReadFrame(&frame));
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST(NetServerTest, RefusesConnectionsOverTheLimit) {
  ServerFixture fx(/*threads=*/2, /*max_conns=*/1);
  auto first = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->Ping().ok());  // fully established and registered

  auto second = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(second.ok());  // TCP connects; refusal arrives as a frame
  const Status refused = (*second)->Ping();
  EXPECT_TRUE(refused.IsResourceExhausted()) << refused.ToString();
  EXPECT_EQ(fx.service->Stats().connections_rejected, 1u);

  // The first connection is unaffected.
  EXPECT_TRUE((*first)->Ping().ok());
}

/// Registers a series and returns a wire request that runs for many
/// seconds uncancelled: loose cNSM-DTW bounds over `n` points force the
/// full verify cascade on ~every position.
QueryRequest IngestHeavySeries(Catalog* catalog, size_t n) {
  Rng rng(4242);
  TimeSeries series = GenerateSynthetic(n, &rng);
  QueryRequest req;
  req.series = "heavy";
  req.query = ExtractQuery(series, n / 2, 512, 0.3, &rng);
  req.params.type = QueryType::kCnsmDtw;
  req.params.epsilon = 1e6;
  req.params.alpha = 1e6;
  req.params.beta = 1e6;
  req.params.rho = 32;
  EXPECT_TRUE(catalog->Ingest("heavy", std::move(series)).ok());
  return req;
}

TEST(NetServerTest, StreamedResponseReassemblesToSingleFrameResult) {
  // Tiny chunk: a ~2900-match response must stream as many parts. The
  // reassembled response has to be byte-identical to what the in-process
  // (single-frame) path returns.
  ServerFixture fx(/*threads=*/2, /*max_conns=*/64, /*max_queue=*/1024,
                   /*stream_chunk=*/100);
  QueryRequest req;
  req.series = "s0";
  req.query.assign(100, 0.0);
  req.params.type = QueryType::kRsmEd;
  req.params.epsilon = 1e9;  // everything matches: n - m + 1 offsets

  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  auto streamed = (*client)->Query(req);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_TRUE(streamed->status.ok()) << streamed->status.ToString();
  EXPECT_EQ(streamed->matches.size(), kSeriesLen - req.query.size() + 1);

  const QueryResponse direct = fx.service->Submit(req).get();
  ASSERT_TRUE(direct.status.ok());
  ASSERT_EQ(streamed->matches, direct.matches);

  // Byte-identical reassembly: after normalizing the run-dependent
  // latency figure, the full re-encoded response bodies must agree.
  QueryResponse a = *streamed;
  QueryResponse b = direct;
  a.latency_ms = b.latency_ms = 0.0;
  a.stats = b.stats = MatchStats();
  std::string wire_a, wire_b;
  EncodeQueryResponseBody(a, &wire_a);
  EncodeQueryResponseBody(b, &wire_b);
  EXPECT_EQ(wire_a, wire_b);

  // Offset order survived chunking.
  for (size_t i = 1; i < streamed->matches.size(); ++i) {
    ASSERT_LT(streamed->matches[i - 1].offset, streamed->matches[i].offset);
  }
}

TEST(NetServerTest, StreamedAndPipelinedResponsesInterleaveSafely) {
  // Two streamed queries and a ping pipelined on one connection: parts
  // for different ids may interleave on the wire, and each must
  // reassemble to its own complete result.
  ServerFixture fx(/*threads=*/2, /*max_conns=*/64, /*max_queue=*/1024,
                   /*stream_chunk=*/64);
  QueryRequest req;
  req.series = "s1";
  req.query.assign(150, 0.0);
  req.params.epsilon = 1e9;

  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  auto id1 = (*client)->SendRequest(req);
  auto id2 = (*client)->SendRequest(req);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE((*client)->Ping().ok());

  // Wait in reverse submission order to force parking of id1's stream.
  auto r2 = (*client)->WaitResponse(*id2);
  auto r1 = (*client)->WaitResponse(*id1);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r1->status.ok());
  ASSERT_TRUE(r2->status.ok());
  EXPECT_EQ(r1->matches.size(), kSeriesLen - req.query.size() + 1);
  EXPECT_EQ(r1->matches, r2->matches);
}

TEST(NetServerTest, RemoteCancelAbortsRunningQuery) {
  ServerFixture fx(/*threads=*/2);
  const QueryRequest heavy = IngestHeavySeries(fx.catalog.get(), 60'000);

  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  auto id = (*client)->SendRequest(heavy);
  ASSERT_TRUE(id.ok());
  // Give the worker time to dequeue, then abort mid-flight. Uncancelled
  // the query runs for minutes; the typed Cancelled answer must arrive
  // within a slice.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE((*client)->Cancel(*id).ok());
  auto response = (*client)->WaitResponse(*id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsCancelled())
      << response->status.ToString();
  EXPECT_EQ(fx.service->Stats().cancelled, 1u);

  // Cancelling an id that is not in flight is a harmless no-op, and the
  // connection keeps serving.
  ASSERT_TRUE((*client)->Cancel(987654).ok());
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST(NetServerTest, DuplicateRequestIdIsRejectedNotClobbered) {
  ServerFixture fx(/*threads=*/2);
  const QueryRequest heavy = IngestHeavySeries(fx.catalog.get(), 60'000);
  RawConnection raw(fx.server->port());

  // Two query frames with the SAME id while the first is running: the
  // second must bounce as a typed error (accepting it would clobber the
  // first query's cancel token), and the first must stay cancellable.
  WireQueryRequest wire_req;
  wire_req.request = heavy;
  Frame query;
  query.type = FrameType::kQueryRequest;
  query.request_id = 7;
  EncodeQueryRequestBody(wire_req, &query.body);
  std::string wire;
  EncodeFrame(query, &wire);
  raw.Send(wire);
  raw.Send(wire);  // duplicate id, first one still in flight

  Frame frame;
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.request_id, 7u);
  Status carried;
  ASSERT_TRUE(DecodeErrorBody(frame.body, &carried).ok());
  EXPECT_TRUE(carried.IsInvalidArgument()) << carried.ToString();

  // The original query's token survived the duplicate: cancel still works.
  Frame cancel;
  cancel.type = FrameType::kCancel;
  cancel.request_id = 7;
  wire.clear();
  EncodeFrame(cancel, &wire);
  raw.Send(wire);
  ASSERT_TRUE(raw.ReadFrame(&frame));
  EXPECT_EQ(frame.type, FrameType::kError);
  ASSERT_TRUE(DecodeErrorBody(frame.body, &carried).ok());
  EXPECT_TRUE(carried.IsCancelled()) << carried.ToString();
}

TEST(NetServerTest, StopCancelsStragglersAfterDrainTimeout) {
  // drain budget 100ms << query runtime: Stop() must cancel the running
  // query via its token and return promptly instead of draining forever
  // (the pre-executor server would hang here for minutes).
  auto fx = std::make_unique<ServerFixture>(
      /*threads=*/2, /*max_conns=*/64, /*max_queue=*/1024,
      /*stream_chunk=*/size_t{2'000'000}, /*drain_ms=*/100.0);
  const QueryRequest heavy = IngestHeavySeries(fx->catalog.get(), 60'000);

  auto client = Client::Connect("127.0.0.1", fx->server->port());
  ASSERT_TRUE(client.ok());
  auto id = (*client)->SendRequest(heavy);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*client)->Ping().ok());  // the query frame has been read
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto t0 = std::chrono::steady_clock::now();
  fx->server->Stop();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Generous bound: far below the query's runtime, so the return proves
  // the cancel fired (not that the query finished).
  EXPECT_LT(stop_seconds, 30.0);
  EXPECT_EQ(fx->service->Stats().cancelled, 1u);

  // The cancelled response was flushed to the client before the close.
  auto response = (*client)->WaitResponse(*id);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsCancelled())
      << response->status.ToString();
}

TEST(NetServerTest, GracefulStopDrainsPipelinedWork) {
  ServerFixture fx(/*threads=*/2);
  const auto requests = MakeWorkload(fx.refs, 8);
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  std::vector<uint64_t> ids;
  for (const auto& req : requests) {
    auto id = (*client)->SendRequest(req);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // The pong proves the server has read (and submitted) every query frame
  // ahead of it in the stream, so none can be lost to the shutdown below.
  ASSERT_TRUE((*client)->Ping().ok());
  // Stop concurrently with the in-flight pipeline: every accepted request
  // must still be answered before the connection closes.
  std::thread stopper([&] { fx.server->Stop(); });
  size_t answered = 0;
  for (uint64_t id : ids) {
    auto response = (*client)->WaitResponse(id);
    if (!response.ok()) break;  // connection closed after the drain
    ++answered;
  }
  stopper.join();
  EXPECT_EQ(answered, ids.size());
}

// ------------------------------------------------------------- tracing

TEST(ProtocolTest, QueryRequestTraceFlagRoundTrips) {
  WireQueryRequest in;
  in.request.series = "s";
  in.request.query = {1.0, 2.0, 3.0};
  for (bool flag : {false, true}) {
    in.request.collect_trace = flag;
    std::string body;
    EncodeQueryRequestBody(in, &body);
    WireQueryRequest out;
    ASSERT_TRUE(DecodeQueryRequestBody(body, &out).ok());
    EXPECT_EQ(out.request.collect_trace, flag);
  }
}

TEST(ProtocolTest, QueryResponseTraceRoundTrips) {
  QueryResponse in;
  in.latency_ms = 42.0;
  in.matches = {{7, 1.25}};
  in.trace = std::make_shared<QueryTrace>();
  const auto origin = in.trace->origin();
  in.trace->AddSpan(kSpanQueue, origin,
                    origin + std::chrono::milliseconds(2),
                    {{"queue_depth", 3}});
  in.trace->AddSpan(kSpanProbe, origin + std::chrono::milliseconds(2),
                    origin + std::chrono::milliseconds(9),
                    {{"windows", 4}, {"rows_fetched", 1234}});
  in.trace->AddSpan(kSpanVerify, origin + std::chrono::milliseconds(9),
                    origin + std::chrono::milliseconds(30),
                    {{"slice", 0}, {"candidates", 512}});

  std::string body;
  EncodeQueryResponseBody(in, &body);

  // The split encoding the server uses (prefix, then trace appended after
  // the serialize span is known) must be byte-identical to the one-shot.
  std::string split;
  EncodeQueryResponsePrefix(in, &split);
  AppendQueryResponseTrace(in.trace.get(), &split);
  EXPECT_EQ(split, body);

  QueryResponse out;
  ASSERT_TRUE(DecodeQueryResponseBody(body, &out).ok());
  ASSERT_NE(out.trace, nullptr);
  const auto in_spans = in.trace->spans();
  const auto out_spans = out.trace->spans();
  ASSERT_EQ(out_spans.size(), in_spans.size());
  for (size_t i = 0; i < in_spans.size(); ++i) {
    EXPECT_EQ(out_spans[i].name, in_spans[i].name);
    EXPECT_EQ(out_spans[i].start_ms, in_spans[i].start_ms);
    EXPECT_EQ(out_spans[i].dur_ms, in_spans[i].dur_ms);
    EXPECT_EQ(out_spans[i].worker, in_spans[i].worker);
    EXPECT_EQ(out_spans[i].args, in_spans[i].args);
  }

  // No trace → a one-byte marker, and the decode yields a null trace.
  QueryResponse plain;
  plain.latency_ms = 1.0;
  std::string plain_body;
  EncodeQueryResponseBody(plain, &plain_body);
  QueryResponse plain_out;
  ASSERT_TRUE(DecodeQueryResponseBody(plain_body, &plain_out).ok());
  EXPECT_EQ(plain_out.trace, nullptr);
}

TEST(ProtocolTest, TruncatedTraceBodyIsRejected) {
  QueryResponse in;
  in.trace = std::make_shared<QueryTrace>();
  const auto origin = in.trace->origin();
  in.trace->AddSpan(kSpanProbe, origin, origin + std::chrono::milliseconds(5),
                    {{"windows", 4}});
  std::string body;
  EncodeQueryResponseBody(in, &body);
  // Chop the trailing trace bytes off one at a time: every truncation
  // must be rejected, never mis-decoded.
  for (size_t cut = 1; cut <= 12; ++cut) {
    QueryResponse out;
    EXPECT_FALSE(DecodeQueryResponseBody(
                     std::string_view(body.data(), body.size() - cut), &out)
                     .ok());
  }
}

TEST(NetServerTest, WireTraceCarriesStageBreakdown) {
  ServerFixture fx(/*threads=*/2);
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());

  QueryRequest req = MakeWorkload(fx.refs, 1)[0];
  // Untraced by default: no trace rides the response.
  auto plain = (*client)->Query(req);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain->status.ok());
  EXPECT_EQ(plain->trace, nullptr);

  req.collect_trace = true;
  auto traced = (*client)->Query(req);
  ASSERT_TRUE(traced.ok());
  ASSERT_TRUE(traced->status.ok());
  ASSERT_NE(traced->trace, nullptr);

  bool saw_queue = false, saw_probe = false, saw_serialize = false;
  for (const auto& s : traced->trace->spans()) {
    if (s.name == kSpanQueue) saw_queue = true;
    if (s.name == kSpanProbe) saw_probe = true;
    if (s.name == kSpanSerialize) saw_serialize = true;
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_serialize);

  // The stage breakdown accounts for the latency without exceeding it
  // (small gaps — session acquire, callback dispatch — are real).
  const StageBreakdown b = ComputeStageBreakdown(*traced->trace);
  EXPECT_GT(b.TotalMs(), 0.0);
  EXPECT_LE(b.TotalMs(), traced->latency_ms + 0.05 * traced->latency_ms + 1.0);
}

// A loopback server whose slow-query threshold and log sink are test
// controlled (ServerFixture hard-codes the default options).
struct SlowLogFixture {
  MemKvStore store;
  std::vector<TimeSeries> refs;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  std::mutex mu;
  std::vector<std::string> lines;

  explicit SlowLogFixture(double slow_query_ms) {
    refs = IngestFixture(&store);
    Catalog::Options copts;
    copts.session = SmallOptions();
    catalog = std::make_unique<Catalog>(&store, copts);
    QueryService::Options sopts;
    sopts.num_threads = 2;
    service = std::make_unique<QueryService>(catalog.get(), sopts);
    Server::Options nopts;
    nopts.port = 0;
    nopts.slow_query_ms = slow_query_ms;
    nopts.slow_query_log = [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu);
      lines.push_back(line);
    };
    server = std::make_unique<Server>(catalog.get(), service.get(), nopts);
    EXPECT_TRUE(server->Start().ok());
  }

  std::vector<std::string> Lines() {
    std::lock_guard<std::mutex> lock(mu);
    return lines;
  }
};

TEST(NetServerTest, SlowQueryLogEmitsExactlyOneLinePerSlowQuery) {
  // Threshold ~0: every completed query is "slow".
  SlowLogFixture fx(/*slow_query_ms=*/0.0001);
  const auto requests = MakeWorkload(fx.refs, 6);
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  for (const auto& req : requests) {
    auto response = (*client)->Query(req);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
    // The server traces for its own log, but the client didn't ask for a
    // trace, so none is shipped back.
    EXPECT_EQ(response->trace, nullptr);
  }
  const auto lines = fx.Lines();
  ASSERT_EQ(lines.size(), requests.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].find("{\"slow_query\":true"), 0u) << lines[i];
    EXPECT_NE(lines[i].find("\"series\":\"" + requests[i].series + "\""),
              std::string::npos)
        << lines[i];
    EXPECT_NE(lines[i].find("\"name\":\"probe\""), std::string::npos);
    EXPECT_EQ(lines[i].find('\n'), std::string::npos);
  }
}

TEST(NetServerTest, FastQueriesNeverHitTheSlowLog) {
  // Threshold far above anything this tiny fixture can take.
  SlowLogFixture fx(/*slow_query_ms=*/1e9);
  const auto requests = MakeWorkload(fx.refs, 4);
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  for (const auto& req : requests) {
    auto response = (*client)->Query(req);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->status.ok());
  }
  EXPECT_TRUE(fx.Lines().empty());
}

// -------------------------------------------------- federation codecs

TEST(ProtocolTest, ShardInfoBodyRoundTrips) {
  ShardInfo in;
  in.shard_id = 3;
  in.num_shards = 8;
  in.map_fingerprint = 0x1122334455667788ull;
  in.series_count = 42;
  std::string body;
  EncodeShardInfoBody(in, &body);
  ShardInfo out;
  ASSERT_TRUE(DecodeShardInfoBody(body, &out).ok());
  EXPECT_EQ(out, in);
  // Any truncation is a decode error, never a half-read identity.
  for (size_t cut = 1; cut <= body.size(); ++cut) {
    EXPECT_FALSE(
        DecodeShardInfoBody(std::string_view(body.data(), body.size() - cut),
                            &out)
            .ok());
  }
}

TEST(ProtocolTest, FederatedResponseBodyRoundTrips) {
  FederatedResponse in;
  in.latency_ms = 12.5;
  in.shards_total = 3;
  in.shards_ok = 2;
  in.shard_errors = {{2u, Status::DeadlineExceeded("slow shard")}};
  in.groups = {{"alpha", {{1, 0.5}, {7, 1.25}}}, {"beta", {}}};
  in.stats.candidate_positions = 10;
  in.stats.distance_calls = 4;
  in.trace = std::make_shared<QueryTrace>();
  const auto origin = in.trace->origin();
  in.trace->AddSpan("shard0", origin, origin + std::chrono::milliseconds(4));
  in.trace->AddSpan("merge", origin + std::chrono::milliseconds(4),
                    origin + std::chrono::milliseconds(5));

  std::string body;
  EncodeFederatedResponseBody(in, &body);
  FederatedResponse out;
  ASSERT_TRUE(DecodeFederatedResponseBody(body, &out).ok());
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.latency_ms, in.latency_ms);
  EXPECT_EQ(out.shards_total, in.shards_total);
  EXPECT_EQ(out.shards_ok, in.shards_ok);
  EXPECT_TRUE(out.partial());
  ASSERT_EQ(out.shard_errors.size(), 1u);
  EXPECT_EQ(out.shard_errors[0].first, 2u);
  EXPECT_TRUE(out.shard_errors[0].second.IsDeadlineExceeded());
  EXPECT_EQ(out.groups, in.groups);
  EXPECT_EQ(out.stats.candidate_positions, in.stats.candidate_positions);
  EXPECT_EQ(out.stats.distance_calls, in.stats.distance_calls);
  ASSERT_NE(out.trace, nullptr);
  ASSERT_EQ(out.trace->spans().size(), 2u);
  EXPECT_EQ(out.trace->spans()[0].name, "shard0");
  EXPECT_EQ(out.trace->spans()[1].name, "merge");

  for (size_t cut = 1; cut <= 16; ++cut) {
    EXPECT_FALSE(DecodeFederatedResponseBody(
                     std::string_view(body.data(), body.size() - cut), &out)
                     .ok());
  }
}

// -------------------------------------------- client parked-state leaks

/// A fake server that plays scripted frames to one accepted client —
/// sequences the real server only produces under timings a test cannot
/// force deterministically.
class ScriptedServer {
 public:
  ScriptedServer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_,
                            reinterpret_cast<struct sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
  }
  ~ScriptedServer() {
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  int port() const { return port_; }

  void Accept() {
    conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
    EXPECT_GE(conn_fd_, 0);
  }

  std::vector<Frame> ReadFrames(size_t count) {
    std::vector<Frame> frames;
    char buf[4096];
    while (frames.size() < count) {
      Frame frame;
      Status error;
      switch (decoder_.Next(&frame, &error)) {
        case FrameDecoder::Event::kFrame:
          frames.push_back(std::move(frame));
          continue;
        case FrameDecoder::Event::kNeedMore:
          break;
        default:
          ADD_FAILURE() << "bad frame from client: " << error.ToString();
          return frames;
      }
      const ssize_t n = ::recv(conn_fd_, buf, sizeof(buf), 0);
      if (n <= 0) return frames;
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
    return frames;
  }

  void SendFrame(const Frame& frame) {
    std::string wire;
    EncodeFrame(frame, &wire);
    std::string_view data = wire;
    while (!data.empty()) {
      const ssize_t n =
          ::send(conn_fd_, data.data(), data.size(), MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      data.remove_prefix(static_cast<size_t>(n));
    }
  }

 private:
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  int port_ = 0;
  FrameDecoder decoder_;
};

TEST(NetClientTest, TerminalErrorFrameReleasesParkedStreamChunks) {
  ScriptedServer server;
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  server.Accept();

  QueryRequest req;
  req.series = "s";
  req.query = {1.0, 2.0, 3.0};
  auto id_a = (*client)->SendRequest(req);
  auto id_b = (*client)->SendRequest(req);
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());
  const auto sent = server.ReadFrames(2);
  ASSERT_EQ(sent.size(), 2u);
  ASSERT_EQ(sent[0].request_id, *id_a);
  ASSERT_EQ(sent[1].request_id, *id_b);

  // Stream two chunks for A, terminate A with an ERROR, then answer B —
  // all delivered while the client waits on B, so A's frames park.
  Frame part;
  part.type = FrameType::kMatchResponsePart;
  part.request_id = *id_a;
  EncodeMatchPartBody(std::vector<MatchResult>{{1, 1.0}, {2, 2.0}},
                      &part.body);
  server.SendFrame(part);
  part.body.clear();
  EncodeMatchPartBody(std::vector<MatchResult>{{3, 3.0}}, &part.body);
  server.SendFrame(part);
  Frame error;
  error.type = FrameType::kError;
  error.request_id = *id_a;
  EncodeErrorBody(Status::InvalidArgument("boom"), &error.body);
  server.SendFrame(error);
  Frame final_b;
  final_b.type = FrameType::kQueryResponse;
  final_b.request_id = *id_b;
  QueryResponse response_b;
  response_b.matches = {{9, 0.5}};
  EncodeQueryResponseBody(response_b, &final_b.body);
  server.SendFrame(final_b);

  auto b = (*client)->WaitResponse(*id_b);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->matches, response_b.matches);

  // THE LEAK REGRESSION: an error never carries matches, so A's parked
  // chunks must be dropped the moment its terminal frame arrives — not
  // held until a WaitResponse that may never come.
  EXPECT_EQ((*client)->parked_part_ids(), 0u);
  EXPECT_EQ((*client)->parked_frames(), 1u);  // A's terminal error itself

  auto a = (*client)->WaitResponse(*id_a);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a->status.IsInvalidArgument()) << a->status.ToString();
  EXPECT_TRUE(a->matches.empty());
  EXPECT_EQ((*client)->parked_frames(), 0u);
}

TEST(NetClientTest, ForgetDiscardsLateFramesAndRetiresTombstone) {
  ScriptedServer server;
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  server.Accept();

  QueryRequest req;
  req.series = "s";
  req.query = {1.0};
  auto id = (*client)->SendRequest(req);
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(server.ReadFrames(1).size(), 1u);

  (*client)->Forget(*id);
  EXPECT_EQ((*client)->forgotten_ids(), 1u);

  // The abandoned query's stream chunk and terminal frame arrive late.
  Frame part;
  part.type = FrameType::kMatchResponsePart;
  part.request_id = *id;
  EncodeMatchPartBody(std::vector<MatchResult>{{4, 4.0}}, &part.body);
  server.SendFrame(part);
  Frame final_frame;
  final_frame.type = FrameType::kQueryResponse;
  final_frame.request_id = *id;
  QueryResponse late;
  late.matches = {{4, 4.0}};
  EncodeQueryResponseBody(late, &final_frame.body);
  server.SendFrame(final_frame);

  // A ping walks the client through the late frames: both are discarded
  // (nothing parks) and the tombstone retires on the terminal frame, so
  // Forget cannot accumulate state either.
  std::thread ponger([&server] {
    const auto pings = server.ReadFrames(1);
    ASSERT_EQ(pings.size(), 1u);
    Frame pong;
    pong.type = FrameType::kPong;
    pong.request_id = pings[0].request_id;
    server.SendFrame(pong);
  });
  EXPECT_TRUE((*client)->Ping().ok());
  ponger.join();
  EXPECT_EQ((*client)->parked_part_ids(), 0u);
  EXPECT_EQ((*client)->parked_frames(), 0u);
  EXPECT_EQ((*client)->forgotten_ids(), 0u);
}

// ------------------------------------------------- idle-reaper quiescence

TEST(NetServerTest, IdleReaperSparesConnectionDrainingAResponse) {
  // A connection whose only activity is OUTBOUND — megabytes of response
  // draining into a tiny client window — must not be reaped as idle even
  // when the drain takes much longer than the idle timeout. The pre-fix
  // server clocked inbound bytes only and killed such connections
  // mid-write.
  MemKvStore store;
  Catalog::Options copts;
  copts.session = SmallOptions();
  {
    Catalog ingest(&store, copts);
    Rng rng(99);
    // ~400k matches ≈ 7 MB encoded: more than the kernel will buffer for
    // the server (tcp_wmem caps at 4 MB here), so the writer thread is
    // provably mid-WriteAll while the client stalls.
    ASSERT_TRUE(ingest.Ingest("wide", GenerateSynthetic(400'000, &rng)).ok());
  }
  Catalog catalog(&store, copts);
  QueryService service(&catalog,
                       QueryService::Options{.num_threads = 2,
                                             .max_queue = 64});
  Server::Options nopts;
  nopts.port = 0;
  nopts.idle_timeout_ms = 300.0;
  Server server(&catalog, &service, nopts);
  ASSERT_TRUE(server.Start().ok());

  // Raw client with a deliberately tiny receive window.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)),
            0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);

  WireQueryRequest wire;
  wire.request.series = "wide";
  wire.request.query.assign(100, 0.0);
  wire.request.params.epsilon = 1e9;  // everything matches
  Frame request;
  request.type = FrameType::kQueryRequest;
  request.request_id = 1;
  EncodeQueryRequestBody(wire, &request.body);
  std::string bytes;
  EncodeFrame(request, &bytes);
  std::string_view data = bytes;
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    data.remove_prefix(static_cast<size_t>(n));
  }

  // Stall without reading a byte for 3x the idle timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(900));

  // Pipeline a ping BEFORE draining: the reader thread handles it while
  // the writer is still blocked mid-response, so the pong queues behind
  // the big frame and the answer proves the whole stall + drain happened
  // on one surviving connection (no timing window between the server
  // finishing its write and our next request, which would make the
  // assertion a race on this process's decode speed).
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 2;
  bytes.clear();
  EncodeFrame(ping, &bytes);
  data = bytes;
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    data.remove_prefix(static_cast<size_t>(n));
  }

  // Drain. The connection must still be alive and deliver the complete
  // response AND the pong — in either order: the pong overtakes the
  // response when the query is still executing as the ping arrives.
  FrameDecoder decoder;
  char buf[64 * 1024];
  Frame frame;
  bool got_final = false, got_pong = false;
  std::vector<MatchResult> matches;
  while (!got_final || !got_pong) {
    Status error;
    switch (decoder.Next(&frame, &error)) {
      case FrameDecoder::Event::kFrame:
        if (frame.type == FrameType::kMatchResponsePart) {
          ASSERT_TRUE(DecodeMatchPartBody(frame.body, &matches).ok());
        } else if (frame.type == FrameType::kPong) {
          EXPECT_EQ(frame.request_id, 2u);
          got_pong = true;
        } else {
          ASSERT_EQ(frame.type, FrameType::kQueryResponse);
          QueryResponse response;
          ASSERT_TRUE(DecodeQueryResponseBody(frame.body, &response).ok());
          ASSERT_TRUE(response.status.ok()) << response.status.ToString();
          matches.insert(matches.end(), response.matches.begin(),
                         response.matches.end());
          got_final = true;
        }
        continue;
      case FrameDecoder::Event::kNeedMore:
        break;
      default:
        FAIL() << "stream corrupted: " << error.ToString();
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server closed the connection mid-drain";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  EXPECT_EQ(matches.size(), 400'000u - 100u + 1u);
  ::close(fd);
  server.Stop();

  // Genuinely idle connections ARE still reaped: reconnect, go silent,
  // and the server closes us.
  Server idle_server(&catalog, &service, nopts);
  ASSERT_TRUE(idle_server.Start().ok());
  RawConnection idle(idle_server.port());
  Frame unused;
  EXPECT_FALSE(idle.ReadFrame(&unused));  // blocks until the reaper closes
  idle_server.Stop();
}

// ------------------------------------------------------- reactor behavior

TEST(NetServerTest, HttpKeepAliveServesMultipleScrapes) {
  ServerFixture fx;
  // An explicit Connection: keep-alive holds the socket open across
  // requests; omitting it (HTTP/1.1 default notwithstanding) closes.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(fx.server->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);

  auto send_all = [&](std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      data.remove_prefix(static_cast<size_t>(n));
    }
  };
  // One full response: headers + Content-Length body, socket left open.
  auto read_response = [&]() -> std::string {
    std::string resp;
    char buf[4096];
    size_t body_at = std::string::npos, declared = 0;
    for (;;) {
      if (body_at == std::string::npos) {
        body_at = resp.find("\r\n\r\n");
        if (body_at != std::string::npos) {
          const size_t cl = resp.find("Content-Length: ");
          EXPECT_NE(cl, std::string::npos) << resp;
          declared = std::strtoull(
              resp.c_str() + cl + std::strlen("Content-Length: "), nullptr,
              10);
        }
      }
      if (body_at != std::string::npos &&
          resp.size() >= body_at + 4 + declared) {
        return resp;
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return resp;
      resp.append(buf, static_cast<size_t>(n));
    }
  };

  for (int i = 0; i < 3; ++i) {
    send_all(
        "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n"
        "\r\n");
    const std::string resp = read_response();
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
    EXPECT_NE(resp.find("Connection: keep-alive"), std::string::npos);
    EXPECT_NE(resp.find("\r\n\r\nok\n"), std::string::npos);
  }
  // A scrape too — keep-alive is not /healthz-specific.
  send_all(
      "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: Keep-Alive\r\n\r\n");
  const std::string scrape = read_response();
  EXPECT_NE(scrape.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(scrape.find("Connection: keep-alive"), std::string::npos);
  EXPECT_NE(scrape.find("kvmatch_net_open_connections"), std::string::npos);

  // Without the header the server answers and closes, as it always has.
  send_all("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string last = read_response();
  EXPECT_NE(last.find("Connection: close"), std::string::npos) << last;
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // clean EOF from the server
  ::close(fd);
  EXPECT_GE(fx.service->Stats().http_requests, 5u);
}

TEST(NetServerTest, TrickledBytesReassembleAcrossSyscalls) {
  // One byte per syscall: every frame-prologue and payload boundary lands
  // mid-read, so partial-read resumption is exercised at every offset.
  ServerFixture fx;
  RawConnection raw(fx.server->port());

  WireQueryRequest wire;
  wire.request.series = SeriesName(0);
  wire.request.query.assign(100, 0.0);
  wire.request.params.epsilon = 2.0;
  Frame request;
  request.type = FrameType::kQueryRequest;
  request.request_id = 7;
  EncodeQueryRequestBody(wire, &request.body);

  std::string bytes;
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 8;
  EncodeFrame(request, &bytes);
  EncodeFrame(ping, &bytes);

  for (size_t i = 0; i < bytes.size(); ++i) {
    raw.Send(std::string_view(bytes).substr(i, 1));
  }
  // Both answers, in either order: the pong overtakes the response when
  // the query is still on a worker thread as the ping assembles.
  bool got_response = false, got_pong = false;
  Frame out;
  while (!got_response || !got_pong) {
    ASSERT_TRUE(raw.ReadFrame(&out));
    if (out.type == FrameType::kPong) {
      EXPECT_EQ(out.request_id, 8u);
      got_pong = true;
    } else {
      ASSERT_EQ(out.type, FrameType::kQueryResponse);
      EXPECT_EQ(out.request_id, 7u);
      QueryResponse response;
      ASSERT_TRUE(DecodeQueryResponseBody(out.body, &response).ok());
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      got_response = true;
    }
  }
}

TEST(NetServerTest, SlowReaderBackpressurePausesAndResumesReads) {
  // A stalled reader behind a multi-MB streamed response must push the
  // outbox past the cap, pause further reads (counted), and resume once
  // the drain crosses the half-watermark — with every byte delivered.
  MemKvStore store;
  Catalog::Options copts;
  copts.session = SmallOptions();
  {
    Catalog ingest(&store, copts);
    Rng rng(77);
    // ~1.5M matches ≈ 16 MB encoded: far beyond the ~4 MB the kernel
    // will buffer (tcp_wmem caps sndbuf there), so the outbox provably
    // holds many megabytes while the client stalls.
    ASSERT_TRUE(
        ingest.Ingest("wide", GenerateSynthetic(1'500'000, &rng)).ok());
  }
  Catalog catalog(&store, copts);
  QueryService service(
      &catalog, QueryService::Options{.num_threads = 2, .max_queue = 64});
  catalog.SetStatsRegistry(service.stats_registry());
  Server::Options nopts;
  nopts.port = 0;
  nopts.stream_chunk_matches = 50'000;  // force chunked kMatchResponsePart
  nopts.max_outbox_bytes = 256 * 1024;
  Server server(&catalog, &service, nopts);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)),
            0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)),
      0);
  auto send_all = [&](std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      data.remove_prefix(static_cast<size_t>(n));
    }
  };

  WireQueryRequest wire;
  wire.request.series = "wide";
  wire.request.query.assign(100, 0.0);
  wire.request.params.epsilon = 1e9;  // everything matches
  Frame request;
  request.type = FrameType::kQueryRequest;
  request.request_id = 1;
  EncodeQueryRequestBody(wire, &request.body);
  std::string bytes;
  EncodeFrame(request, &bytes);
  send_all(bytes);

  // Stall unread until the streamed response has piled well past the cap
  // in the outbox — 8x, so the kernel socket buffer still absorbing the
  // early parts can't drain it back under the cap before the ping below
  // lands. Polled, not slept: sanitizer builds run the query an order of
  // magnitude slower.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (service.Stats().net_outbox_bytes < 8 * nopts.max_outbox_bytes) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "outbox never crossed the cap";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // More inbound bytes now force the reactor's backpressure decision: the
  // ping may be processed first or sit paused in the kernel buffer, but
  // the pause itself must be taken and counted.
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 2;
  bytes.clear();
  EncodeFrame(ping, &bytes);
  send_all(bytes);
  while (service.Stats().net_reads_paused < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "outbox over the cap never paused reads";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Drain everything: all streamed parts, the final frame, and the pong.
  FrameDecoder decoder;
  char buf[64 * 1024];
  Frame frame;
  bool got_final = false, got_pong = false;
  std::vector<MatchResult> matches;
  while (!got_final || !got_pong) {
    Status error;
    switch (decoder.Next(&frame, &error)) {
      case FrameDecoder::Event::kFrame:
        if (frame.type == FrameType::kMatchResponsePart) {
          ASSERT_TRUE(DecodeMatchPartBody(frame.body, &matches).ok());
        } else if (frame.type == FrameType::kPong) {
          EXPECT_EQ(frame.request_id, 2u);
          got_pong = true;
        } else {
          ASSERT_EQ(frame.type, FrameType::kQueryResponse);
          QueryResponse response;
          ASSERT_TRUE(DecodeQueryResponseBody(frame.body, &response).ok());
          ASSERT_TRUE(response.status.ok()) << response.status.ToString();
          matches.insert(matches.end(), response.matches.begin(),
                         response.matches.end());
          got_final = true;
        }
        continue;
      case FrameDecoder::Event::kNeedMore:
        break;
      default:
        FAIL() << "stream corrupted: " << error.ToString();
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server closed the connection mid-drain";
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  EXPECT_EQ(matches.size(), 1'500'000u - 100u + 1u);

  // Reads resumed after the drain: a fresh ping answers promptly.
  ping.request_id = 3;
  bytes.clear();
  EncodeFrame(ping, &bytes);
  send_all(bytes);
  bool got_second_pong = false;
  while (!got_second_pong) {
    Status error;
    switch (decoder.Next(&frame, &error)) {
      case FrameDecoder::Event::kFrame:
        EXPECT_EQ(frame.type, FrameType::kPong);
        EXPECT_EQ(frame.request_id, 3u);
        got_second_pong = true;
        continue;
      case FrameDecoder::Event::kNeedMore:
        break;
      default:
        FAIL() << "stream corrupted: " << error.ToString();
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  ::close(fd);
  server.Stop();
}

TEST(NetServerTest, ReactorSurvivesMutatedFrameStreams) {
  // The decoder-level fuzz (DecoderSurvivesRandomMutations...) proves the
  // parser; this drives the same seeded mutations through real sockets so
  // the reactor's error paths — kBadFrame error frames, kFatal
  // half-close, mid-parse disconnects — run end to end. The server must
  // outlive every storm and still answer a clean client.
  ServerFixture fx(/*threads=*/2, /*max_conns=*/64);

  std::vector<std::string> pool;
  {
    Rng rng(24680);
    for (int i = 0; i < 4; ++i) {
      Frame frame;
      frame.request_id = static_cast<uint64_t>(i + 1);
      switch (i % 3) {
        case 0:
          frame.type = FrameType::kPing;
          break;
        case 1: {
          frame.type = FrameType::kQueryRequest;
          WireQueryRequest wire;
          wire.request.series = SeriesName(0);
          wire.request.query.assign(64, 0.5);
          wire.request.params.epsilon = 2.0;
          EncodeQueryRequestBody(wire, &frame.body);
          break;
        }
        default:
          frame.type = FrameType::kCancel;
          break;
      }
      std::string wire_bytes;
      EncodeFrame(frame, &wire_bytes);
      pool.push_back(std::move(wire_bytes));
    }
  }

  Rng rng(13579);
  for (int trial = 0; trial < 32; ++trial) {
    std::string stream;
    const int64_t count = rng.UniformInt(1, 3);
    for (int64_t i = 0; i < count; ++i) {
      stream += pool[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    }
    const int64_t mutations = rng.UniformInt(1, 4);
    for (int64_t m = 0; m < mutations && !stream.empty(); ++m) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(stream.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          stream[pos] = static_cast<char>(stream[pos] ^
                                          (1 << rng.UniformInt(0, 7)));
          break;
        case 1:
          stream.resize(pos);
          break;
        default:
          for (int64_t k = rng.UniformInt(1, 16); k > 0; --k) {
            stream.insert(pos, 1,
                          static_cast<char>(rng.UniformInt(0, 255)));
          }
          break;
      }
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(fx.server->port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    std::string_view data = stream;
    while (!data.empty()) {
      const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) break;  // server closed on us mid-send — acceptable
      data.remove_prefix(static_cast<size_t>(n));
    }
    // Half-close: the server sees EOF, finishes whatever parsed cleanly,
    // and closes. Drain its side (bounded by a receive timeout: a
    // mutation that enlarged a declared length legitimately leaves the
    // decoder waiting for bytes that never come).
    ::shutdown(fd, SHUT_WR);
    struct timeval tv = {};
    tv.tv_usec = 200 * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[16 * 1024];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);
  }

  // The reactor took 32 storms; a well-behaved client is unaffected.
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
  QueryRequest req;
  req.series = SeriesName(0);
  req.query.assign(100, 0.0);
  req.params.epsilon = 2.0;
  auto response = (*client)->Query(req);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.ok()) << response->status.ToString();
}

TEST(NetServerTest, MetricsExposeReactorGauges) {
  ServerFixture fx;
  // Hold one frame connection open so the gauge counts it plus the
  // scrape's own connection.
  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  // A query's completion crosses from a worker thread into the loop via
  // the eventfd — that is the wakeup the counter must witness. (Pings
  // are answered inline on the loop thread and would prove nothing.)
  QueryRequest req;
  req.series = SeriesName(0);
  req.query.assign(100, 0.0);
  req.params.epsilon = 2.0;
  auto response = (*client)->Query(req);
  ASSERT_TRUE(response.ok());
  // Loop counters are exported on the reactor's 50 ms tick; let one pass.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  const std::string resp = RawHttpExchange(
      fx.server->port(), "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  for (const char* name :
       {"kvmatch_net_open_connections", "kvmatch_net_accept_refused_total",
        "kvmatch_net_outbox_bytes", "kvmatch_net_reads_paused_total",
        "kvmatch_net_loop_iterations_total",
        "kvmatch_net_epoll_wakeups_total"}) {
    EXPECT_NE(resp.find(name), std::string::npos) << name;
  }
  const ServiceStatsSnapshot snap = fx.service->Stats();
  EXPECT_GE(snap.connections_open, 1u);
  EXPECT_GE(snap.net_loop_iterations, 1u);
  // The ping completion crossed threads, so at least one eventfd kick.
  EXPECT_GE(snap.net_epoll_wakeups, 1u);
}

TEST(NetServerTest, IdleConnectionsDoNotStarveActiveClient) {
  // A small in-test C10k: park idle connections, then verify an active
  // client's queries flow normally past them. (bench_net_throughput
  // --idle-connections scales this shape to 10k.)
  constexpr size_t kIdle = 128;
  ServerFixture fx(/*threads=*/2, /*max_conns=*/kIdle + 8);
  std::vector<std::unique_ptr<RawConnection>> idle;
  for (size_t i = 0; i < kIdle; ++i) {
    idle.push_back(std::make_unique<RawConnection>(fx.server->port()));
  }

  auto client = Client::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 8; ++i) {
    QueryRequest req;
    req.series = SeriesName(static_cast<size_t>(i) % kNumSeries);
    req.query.assign(100, 0.0);
    req.params.epsilon = 2.0;
    auto response = (*client)->Query(req);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response->status.ok()) << response->status.ToString();
  }
  EXPECT_GE(fx.service->Stats().connections_open, kIdle + 1);
  idle.clear();
}

}  // namespace
}  // namespace net
}  // namespace kvmatch
