// Tests for SeriesStore (paper §VII-B data layout) and TopKMatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "match/top_k.h"
#include "storage/mem_kvstore.h"
#include "storage/minikv.h"
#include "ts/generator.h"
#include "ts/series_store.h"

namespace kvmatch {
namespace {

namespace fs = std::filesystem;

TEST(SeriesStoreTest, RoundTripWholeSeries) {
  Rng rng(301);
  const TimeSeries x = GenerateSynthetic(5000, &rng);
  MemKvStore store;
  ASSERT_TRUE(SeriesStore::Write(&store, x, "s/", 256).ok());
  auto opened = SeriesStore::Open(&store, "s/");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->size(), x.size());
  EXPECT_EQ(opened->chunk_size(), 256u);
  auto all = opened->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->values(), x.values());
}

TEST(SeriesStoreTest, RangedReadsMatchDirectAccess) {
  Rng rng(302);
  const TimeSeries x = GenerateSynthetic(4097, &rng);  // non-multiple length
  MemKvStore store;
  ASSERT_TRUE(SeriesStore::Write(&store, x, "", 1024).ok());
  auto s = SeriesStore::Open(&store, "");
  ASSERT_TRUE(s.ok());
  Rng prng(303);
  for (int t = 0; t < 100; ++t) {
    const size_t len = static_cast<size_t>(prng.UniformInt(1, 2000));
    const size_t off = static_cast<size_t>(
        prng.UniformInt(0, static_cast<int64_t>(x.size() - len)));
    auto range = s->ReadRange(off, len);
    ASSERT_TRUE(range.ok());
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ((*range)[i], x[off + i]) << "off=" << off << " len=" << len;
    }
  }
}

TEST(SeriesStoreTest, CrossChunkBoundaryReads) {
  Rng rng(304);
  const TimeSeries x = GenerateSynthetic(3000, &rng);
  MemKvStore store;
  ASSERT_TRUE(SeriesStore::Write(&store, x, "", 100).ok());
  auto s = SeriesStore::Open(&store, "");
  ASSERT_TRUE(s.ok());
  // Exactly straddling boundaries.
  for (size_t off : {99u, 100u, 101u, 950u}) {
    auto range = s->ReadRange(off, 150);
    ASSERT_TRUE(range.ok());
    for (size_t i = 0; i < 150; ++i) EXPECT_EQ((*range)[i], x[off + i]);
  }
}

TEST(SeriesStoreTest, OutOfRangeRejected) {
  const TimeSeries x(std::vector<double>(100, 1.0));
  MemKvStore store;
  ASSERT_TRUE(SeriesStore::Write(&store, x, "", 32).ok());
  auto s = SeriesStore::Open(&store, "");
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(s->ReadRange(50, 51).ok());
  EXPECT_TRUE(s->ReadRange(50, 50).ok());
  EXPECT_TRUE(s->ReadRange(100, 0).ok());
}

TEST(SeriesStoreTest, MissingChunkIsCorruption) {
  Rng rng(305);
  const TimeSeries x = GenerateSynthetic(1000, &rng);
  MemKvStore store;
  ASSERT_TRUE(SeriesStore::Write(&store, x, "", 100).ok());
  // Overwrite a middle chunk's key by deleting it (MemKvStore has no
  // delete: write under a namespace copy instead). Simulate by opening a
  // fresh store missing one chunk.
  MemKvStore partial;
  for (auto it = store.Scan("", ""); it->Valid(); it->Next()) {
    // Chunk keys: "c" + 8 bytes; drop the chunk at offset 300.
    if (it->key().size() == 9 && it->key()[0] == 'c') {
      uint64_t off = 0;
      for (int i = 1; i <= 8; ++i) {
        off = (off << 8) | static_cast<unsigned char>(it->key()[i]);
      }
      if (off == 300) continue;
    }
    ASSERT_TRUE(partial.Put(it->key(), it->value()).ok());
  }
  auto s = SeriesStore::Open(&partial, "");
  ASSERT_TRUE(s.ok());
  auto range = s->ReadRange(250, 200);  // needs the missing chunk
  ASSERT_FALSE(range.ok());
  EXPECT_TRUE(range.status().IsCorruption());
  // A read entirely before the hole still works.
  EXPECT_TRUE(s->ReadRange(0, 200).ok());
}

TEST(SeriesStoreTest, SharedStoreWithIndexNamespaces) {
  // Data and the whole index stack in ONE store — the paper's deployment.
  Rng rng(306);
  const TimeSeries x = GenerateSynthetic(8000, &rng);
  const std::string dir =
      (fs::temp_directory_path() / "kvm_shared_store").string();
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(SeriesStore::Write(kv->get(), x, "data/").ok());
  const KvIndex index = BuildKvIndex(x, {.window = 25});
  ASSERT_TRUE(index.Persist(kv->get(), "idx/").ok());

  // Cold start: everything from the store.
  auto s = SeriesStore::Open(kv->get(), "data/");
  ASSERT_TRUE(s.ok());
  auto loaded = s->ReadAll();
  ASSERT_TRUE(loaded.ok());
  auto idx = KvIndex::Open(kv->get(), "idx/");
  ASSERT_TRUE(idx.ok());
  PrefixStats ps(*loaded);
  const KvMatcher matcher(*loaded, ps, *idx);
  Rng qrng(307);
  const auto q = ExtractQuery(*loaded, 2000, 100, 0.2, &qrng);
  QueryParams params{QueryType::kCnsmEd, 3.0, 1.5, 3.0, 0};
  const auto expected = BruteForceMatch(x, q, params);
  auto got = matcher.Match(q, params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), expected.size());
  fs::remove_all(dir);
}

// ---- TopKMatch ----

struct TopKFixture {
  TimeSeries x;
  PrefixStats ps;
  KvIndex index;
  std::vector<double> q;

  TopKFixture() {
    Rng rng(310);
    x = GenerateSynthetic(6000, &rng);
    ps = PrefixStats(x);
    index = BuildKvIndex(x, {.window = 25});
    q = ExtractQuery(x, 2500, 150, 0.3, &rng);
  }
};

std::vector<MatchResult> BruteTopK(const TimeSeries& x,
                                   std::span<const double> q,
                                   QueryParams params, size_t k) {
  params.epsilon = 1e18;
  auto all = BruteForceMatch(x, q, params);
  std::sort(all.begin(), all.end(),
            [](const MatchResult& a, const MatchResult& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.offset < b.offset);
            });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(TopKTest, MatchesBruteForceTopK) {
  TopKFixture f;
  const KvMatcher matcher(f.x, f.ps, f.index);
  QueryParams params{QueryType::kRsmEd, 0.0, 1.0, 0.0, 0};
  for (size_t k : {1u, 5u, 20u}) {
    auto got = TopKMatch(
        [&](double eps) {
          QueryParams p = params;
          p.epsilon = eps;
          return matcher.Match(f.q, p);
        },
        k);
    ASSERT_TRUE(got.ok());
    const auto expected = BruteTopK(f.x, f.q, params, k);
    ASSERT_EQ(got->size(), expected.size()) << "k=" << k;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].offset, expected[i].offset) << "k=" << k;
    }
  }
}

TEST(TopKTest, ExclusionZoneSuppressesTrivialNeighbors) {
  TopKFixture f;
  const KvMatcher matcher(f.x, f.ps, f.index);
  QueryParams params{QueryType::kRsmEd, 0.0, 1.0, 0.0, 0};
  TopKOptions options;
  options.exclusion_zone = 150;  // one |Q| apart
  auto got = TopKMatch(
      [&](double eps) {
        QueryParams p = params;
        p.epsilon = eps;
        return matcher.Match(f.q, p);
      },
      5, options);
  ASSERT_TRUE(got.ok());
  for (size_t i = 0; i < got->size(); ++i) {
    for (size_t j = i + 1; j < got->size(); ++j) {
      const size_t delta = (*got)[i].offset > (*got)[j].offset
                               ? (*got)[i].offset - (*got)[j].offset
                               : (*got)[j].offset - (*got)[i].offset;
      EXPECT_GE(delta, 150u);
    }
  }
}

TEST(TopKTest, KZeroIsEmpty) {
  auto got = TopKMatch(
      [](double) {
        return Result<std::vector<MatchResult>>(std::vector<MatchResult>{});
      },
      0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(TopKTest, PropagatesMatcherErrors) {
  auto got = TopKMatch(
      [](double) {
        return Result<std::vector<MatchResult>>(
            Status::Internal("boom"));
      },
      3);
  EXPECT_FALSE(got.ok());
}

TEST(TopKTest, CnsmTopKRespectsConstraints) {
  TopKFixture f;
  const KvMatcher matcher(f.x, f.ps, f.index);
  QueryParams params{QueryType::kCnsmEd, 0.0, 1.3, 2.0, 0};
  auto got = TopKMatch(
      [&](double eps) {
        QueryParams p = params;
        p.epsilon = eps;
        return matcher.Match(f.q, p);
      },
      10);
  ASSERT_TRUE(got.ok());
  const MeanStd q_ms = ComputeMeanStd(f.q);
  for (const auto& r : *got) {
    const MeanStd ms = f.ps.WindowMeanStd(r.offset, f.q.size());
    EXPECT_LE(std::fabs(ms.mean - q_ms.mean), 2.0 + 1e-9);
    EXPECT_GE(ms.std, q_ms.std / 1.3 - 1e-9);
    EXPECT_LE(ms.std, q_ms.std * 1.3 + 1e-9);
  }
}

}  // namespace
}  // namespace kvmatch
