// Tests for the Lemma 1-4 filtering ranges: soundness (every true match's
// window means lie inside [LR_i, UR_i]) and structural properties.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "match/query_ranges.h"
#include "ts/generator.h"
#include "ts/stats_oracle.h"

namespace kvmatch {
namespace {

struct RangeCase {
  QueryType type;
  double alpha;
  double beta;
  size_t rho;
  const char* name;
};

class LemmaSoundness : public ::testing::TestWithParam<RangeCase> {};

// The core no-false-dismissal property behind the whole index: for every
// brute-force match S, each disjoint window mean µ^S_i must fall within the
// computed [LR_i, UR_i].
TEST_P(LemmaSoundness, TrueMatchWindowMeansInsideRange) {
  const RangeCase rc = GetParam();
  Rng rng(31);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);

  for (int trial = 0; trial < 6; ++trial) {
    const size_t m = 128;
    const size_t w = 32;
    const size_t off = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(x.size() - m)));
    const auto q = ExtractQuery(x, off, m, 0.3, &rng);

    QueryParams params;
    params.type = rc.type;
    params.alpha = rc.alpha;
    params.beta = rc.beta;
    params.rho = rc.rho;
    // Generous ε so several matches exist (L1 sums |diffs| over m points,
    // so its scale is ~√m times the ED scale).
    params.epsilon =
        IsL1(rc.type) ? 80.0 : (IsNormalized(rc.type) ? 4.0 : 8.0);

    const auto matches = BruteForceMatch(x, q, params);
    ASSERT_FALSE(matches.empty()) << rc.name;

    const auto windows = ComputeQueryWindows(q, w, params);
    ASSERT_EQ(windows.size(), m / w);
    for (const auto& match : matches) {
      for (const auto& qw : windows) {
        const double mu =
            ps.WindowMean(match.offset + qw.offset, qw.length);
        EXPECT_GE(mu, qw.lr - 1e-9)
            << rc.name << " offset=" << match.offset << " win=" << qw.offset;
        EXPECT_LE(mu, qw.ur + 1e-9)
            << rc.name << " offset=" << match.offset << " win=" << qw.offset;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, LemmaSoundness,
    ::testing::Values(
        RangeCase{QueryType::kRsmEd, 1.0, 0.0, 0, "rsm_ed"},
        RangeCase{QueryType::kRsmDtw, 1.0, 0.0, 5, "rsm_dtw"},
        RangeCase{QueryType::kCnsmEd, 1.5, 2.0, 0, "cnsm_ed"},
        RangeCase{QueryType::kCnsmEd, 2.0, 10.0, 0, "cnsm_ed_loose"},
        RangeCase{QueryType::kCnsmDtw, 1.5, 2.0, 5, "cnsm_dtw"},
        RangeCase{QueryType::kCnsmDtw, 1.1, 1.0, 3, "cnsm_dtw_tight"},
        RangeCase{QueryType::kRsmL1, 1.0, 0.0, 0, "rsm_l1"}),
    [](const auto& info) { return info.param.name; });

TEST(QueryRangesTest, RsmEdRangeIsSymmetricAroundWindowMean) {
  Rng rng(32);
  std::vector<double> q(100);
  for (auto& v : q) v = rng.Uniform(-5, 5);
  QueryParams params;
  params.type = QueryType::kRsmEd;
  params.epsilon = 2.0;
  const auto windows = ComputeQueryWindows(q, 25, params);
  ASSERT_EQ(windows.size(), 4u);
  for (const auto& qw : windows) {
    const double mu = Mean(std::span<const double>(q).subspan(qw.offset, 25));
    EXPECT_NEAR(qw.lr, mu - 2.0 / 5.0, 1e-12);
    EXPECT_NEAR(qw.ur, mu + 2.0 / 5.0, 1e-12);
  }
}

TEST(QueryRangesTest, DtwRangeContainsEdRange) {
  // The DTW envelope relaxes the window bounds: DTW ranges must contain
  // the ED ranges for the same ε.
  Rng rng(33);
  std::vector<double> q(200);
  for (auto& v : q) v = rng.Uniform(-5, 5);
  QueryParams ed{QueryType::kRsmEd, 3.0, 1.0, 0.0, 0};
  QueryParams dtw{QueryType::kRsmDtw, 3.0, 1.0, 0.0, 10};
  const auto we = ComputeQueryWindows(q, 50, ed);
  const auto wd = ComputeQueryWindows(q, 50, dtw);
  for (size_t i = 0; i < we.size(); ++i) {
    EXPECT_LE(wd[i].lr, we[i].lr + 1e-12);
    EXPECT_GE(wd[i].ur, we[i].ur - 1e-12);
  }
}

TEST(QueryRangesTest, RhoZeroDtwEqualsEdRanges) {
  Rng rng(34);
  std::vector<double> q(100);
  for (auto& v : q) v = rng.Uniform(-5, 5);
  QueryParams ed{QueryType::kRsmEd, 2.5, 1.0, 0.0, 0};
  QueryParams dtw{QueryType::kRsmDtw, 2.5, 1.0, 0.0, 0};
  const auto we = ComputeQueryWindows(q, 20, ed);
  const auto wd = ComputeQueryWindows(q, 20, dtw);
  for (size_t i = 0; i < we.size(); ++i) {
    EXPECT_NEAR(wd[i].lr, we[i].lr, 1e-12);
    EXPECT_NEAR(wd[i].ur, we[i].ur, 1e-12);
  }
}

TEST(QueryRangesTest, LooserConstraintsWidenCnsmRanges) {
  Rng rng(35);
  std::vector<double> q(100);
  for (auto& v : q) v = rng.Uniform(-5, 5);
  QueryParams tight{QueryType::kCnsmEd, 1.0, 1.1, 1.0, 0};
  QueryParams loose{QueryType::kCnsmEd, 1.0, 2.0, 10.0, 0};
  const auto wt = ComputeQueryWindows(q, 25, tight);
  const auto wl = ComputeQueryWindows(q, 25, loose);
  for (size_t i = 0; i < wt.size(); ++i) {
    EXPECT_LE(wl[i].lr, wt[i].lr);
    EXPECT_GE(wl[i].ur, wt[i].ur);
  }
}

TEST(QueryRangesTest, LargerEpsilonWidensRanges) {
  Rng rng(36);
  std::vector<double> q(150);
  for (auto& v : q) v = rng.Uniform(-5, 5);
  for (QueryType type : {QueryType::kRsmEd, QueryType::kRsmDtw,
                         QueryType::kCnsmEd, QueryType::kCnsmDtw}) {
    QueryParams small{type, 1.0, 1.5, 2.0, 4};
    QueryParams big{type, 5.0, 1.5, 2.0, 4};
    const auto ws = ComputeQueryWindows(q, 30, small);
    const auto wb = ComputeQueryWindows(q, 30, big);
    for (size_t i = 0; i < ws.size(); ++i) {
      EXPECT_LE(wb[i].lr, ws[i].lr + 1e-12);
      EXPECT_GE(wb[i].ur, ws[i].ur - 1e-12);
    }
  }
}

TEST(QueryRangesTest, SegmentedWindowsTileTheQuery) {
  Rng rng(37);
  std::vector<double> q(175);
  for (auto& v : q) v = rng.Uniform(-5, 5);
  QueryParams params{QueryType::kRsmEd, 1.0, 1.0, 0.0, 0};
  const std::vector<size_t> lengths = {50, 100, 25};
  const auto ws = ComputeQueryWindowsSegmented(q, lengths, params);
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[0].offset, 0u);
  EXPECT_EQ(ws[1].offset, 50u);
  EXPECT_EQ(ws[2].offset, 150u);
  EXPECT_EQ(ws[2].length, 25u);
}

TEST(QueryRangesTest, ContextMatchesBatchComputation) {
  Rng rng(38);
  std::vector<double> q(160);
  for (auto& v : q) v = rng.Uniform(-5, 5);
  for (QueryType type : {QueryType::kRsmEd, QueryType::kRsmDtw,
                         QueryType::kCnsmEd, QueryType::kCnsmDtw}) {
    QueryParams params{type, 2.0, 1.5, 3.0, 6};
    const QueryRangeContext ctx(q, params);
    const auto batch = ComputeQueryWindows(q, 40, params);
    for (const auto& qw : batch) {
      const auto single = ComputeWindowRange(ctx, qw.offset, qw.length);
      EXPECT_NEAR(single.lr, qw.lr, 1e-12);
      EXPECT_NEAR(single.ur, qw.ur, 1e-12);
    }
  }
}

}  // namespace
}  // namespace kvmatch
