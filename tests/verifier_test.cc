// Direct tests of the phase-2 Verifier: pruning accounting, boundary
// clamping, normalization handling and degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "match/verifier.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

IntervalList AllOffsets(const TimeSeries& x, size_t m) {
  IntervalList cs;
  cs.AppendInterval({0, static_cast<int64_t>(x.size() - m)});
  return cs;
}

TEST(VerifierTest, FullCandidateSetEqualsBruteForce) {
  Rng rng(111);
  const TimeSeries x = GenerateSynthetic(3000, &rng);
  PrefixStats ps(x);
  const Verifier verifier(x, ps);
  const auto q = ExtractQuery(x, 900, 128, 0.2, &rng);
  for (QueryType type : {QueryType::kRsmEd, QueryType::kRsmDtw,
                         QueryType::kCnsmEd, QueryType::kCnsmDtw}) {
    QueryParams params{type, 3.5, 1.5, 3.0, 6};
    const auto expected = BruteForceMatch(x, q, params);
    const auto got = verifier.Verify(q, params, AllOffsets(x, q.size()));
    ASSERT_EQ(got.size(), expected.size())
        << "type=" << static_cast<int>(type);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].offset, expected[i].offset);
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-6);
    }
  }
}

TEST(VerifierTest, CandidatesPastSeriesEndAreSkipped) {
  Rng rng(112);
  const TimeSeries x = GenerateSynthetic(500, &rng);
  PrefixStats ps(x);
  const Verifier verifier(x, ps);
  const auto q = ExtractQuery(x, 100, 100, 0.0, &rng);
  IntervalList cs;
  cs.AppendInterval({350, 499});  // offsets 401..499 cannot host |Q|=100
  QueryParams params{QueryType::kRsmEd, 1e6, 1.0, 0.0, 0};
  const auto got = verifier.Verify(q, params, cs);
  ASSERT_FALSE(got.empty());
  for (const auto& m : got) {
    EXPECT_LE(m.offset + q.size(), x.size());
  }
  EXPECT_EQ(got.size(), 400u - 350 + 1);
}

TEST(VerifierTest, EmptyCandidateSetYieldsNoResults) {
  Rng rng(113);
  const TimeSeries x = GenerateSynthetic(500, &rng);
  PrefixStats ps(x);
  const Verifier verifier(x, ps);
  const auto q = ExtractQuery(x, 0, 50, 0.0, &rng);
  QueryParams params{QueryType::kRsmEd, 1e6, 1.0, 0.0, 0};
  EXPECT_TRUE(verifier.Verify(q, params, IntervalList()).empty());
}

TEST(VerifierTest, StatsSeparateConstraintAndLowerBoundPruning) {
  Rng rng(114);
  const TimeSeries x = GenerateSynthetic(4000, &rng);
  PrefixStats ps(x);
  const Verifier verifier(x, ps);
  const auto q = ExtractQuery(x, 1000, 128, 0.1, &rng);
  // Tight constraints: most candidates die on α/β before any distance.
  QueryParams params{QueryType::kCnsmDtw, 2.0, 1.05, 0.2, 6};
  MatchStats stats;
  verifier.Verify(q, params, AllOffsets(x, q.size()), &stats);
  EXPECT_GT(stats.constraint_pruned, 0u);
  // Everything was either pruned or distance-checked.
  const uint64_t total = x.size() - q.size() + 1;
  EXPECT_EQ(stats.constraint_pruned + stats.lb_pruned + stats.distance_calls,
            total);
}

TEST(VerifierTest, RawTypesIgnoreConstraints) {
  Rng rng(115);
  const TimeSeries x = GenerateSynthetic(2000, &rng);
  PrefixStats ps(x);
  const Verifier verifier(x, ps);
  const auto q = ExtractQuery(x, 500, 100, 0.0, &rng);
  // Absurd constraints must not affect RSM results.
  QueryParams rsm{QueryType::kRsmEd, 5.0, 1.0, 0.0, 0};
  QueryParams rsm_weird = rsm;
  rsm_weird.alpha = 1.0;
  rsm_weird.beta = 0.0;
  const auto a = verifier.Verify(q, rsm, AllOffsets(x, q.size()));
  const auto b = verifier.Verify(q, rsm_weird, AllOffsets(x, q.size()));
  EXPECT_EQ(a.size(), b.size());
}

TEST(VerifierTest, ConstantCandidateAgainstConstantQuery) {
  // σ = 0 on both sides: normalized forms are all-zero, distance 0.
  TimeSeries x(std::vector<double>(300, 7.0));
  PrefixStats ps(x);
  const Verifier verifier(x, ps);
  const std::vector<double> q(50, 7.0);
  QueryParams params{QueryType::kCnsmEd, 0.1, 1.5, 1.0, 0};
  const auto got = verifier.Verify(q, params, AllOffsets(x, q.size()));
  EXPECT_EQ(got.size(), 300u - 50 + 1);
  for (const auto& m : got) EXPECT_NEAR(m.distance, 0.0, 1e-12);
}

TEST(VerifierTest, DistanceReportedIsNormalizedForCnsm) {
  Rng rng(116);
  const TimeSeries x = GenerateSynthetic(2000, &rng);
  PrefixStats ps(x);
  const Verifier verifier(x, ps);
  const size_t off = 700, m = 100;
  const auto base = ExtractQuery(x, off, m, 0.0, &rng);
  // Shifted copy: raw distance is large, normalized distance ~0.
  const auto q = ShiftScale(base, 5.0, 1.0);
  QueryParams params{QueryType::kCnsmEd, 0.5, 1.1, 6.0, 0};
  const auto got = verifier.Verify(q, params, AllOffsets(x, m));
  bool found = false;
  for (const auto& r : got) {
    if (r.offset == off) {
      found = true;
      EXPECT_NEAR(r.distance, 0.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace kvmatch
