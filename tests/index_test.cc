// Unit + property tests for index/: KV-index building, row merge,
// meta-table estimates, persistence over every KvStore implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "common/rng.h"
#include "index/index_builder.h"
#include "index/kv_index.h"
#include "storage/file_kvstore.h"
#include "storage/mem_kvstore.h"
#include "storage/minikv.h"
#include "ts/generator.h"
#include "ts/stats_oracle.h"

namespace kvmatch {
namespace {

namespace fs = std::filesystem;

TimeSeries MakeSeries(size_t n, uint64_t seed = 42) {
  Rng rng(seed);
  return GenerateSynthetic(n, &rng);
}

std::set<int64_t> ProbePositions(const KvIndex& index, double lr, double ur) {
  auto is = index.ProbeRange(lr, ur);
  EXPECT_TRUE(is.ok());
  std::set<int64_t> out;
  for (const auto& wi : is->intervals()) {
    for (int64_t p = wi.l; p <= wi.r; ++p) out.insert(p);
  }
  return out;
}

TEST(IndexBuilderTest, RowsArePairwiseDisjointAndSorted) {
  const TimeSeries x = MakeSeries(20000);
  const KvIndex index = BuildKvIndex(x, {.window = 50});
  ASSERT_GT(index.num_rows(), 0u);
  for (size_t i = 0; i < index.num_rows(); ++i) {
    const auto& row = index.rows()[i];
    EXPECT_LT(row.low, row.up);
    if (i > 0) EXPECT_LE(index.rows()[i - 1].up, row.low);
  }
}

TEST(IndexBuilderTest, EveryWindowAppearsExactlyOnce) {
  const TimeSeries x = MakeSeries(5000);
  const size_t w = 32;
  const KvIndex index = BuildKvIndex(x, {.window = w});
  std::set<int64_t> seen;
  int64_t total = 0;
  for (const auto& row : index.rows()) {
    for (const auto& wi : row.value.intervals()) {
      for (int64_t p = wi.l; p <= wi.r; ++p) {
        EXPECT_TRUE(seen.insert(p).second) << "duplicate position " << p;
      }
    }
    total += row.value.num_positions();
  }
  EXPECT_EQ(static_cast<size_t>(total), x.size() - w + 1);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), static_cast<int64_t>(x.size() - w));
}

TEST(IndexBuilderTest, WindowMeansFallInTheirRowRange) {
  const TimeSeries x = MakeSeries(8000);
  const size_t w = 25;
  const KvIndex index = BuildKvIndex(x, {.window = w, .width = 0.5});
  PrefixStats ps(x);
  for (const auto& row : index.rows()) {
    for (const auto& wi : row.value.intervals()) {
      for (int64_t p = wi.l; p <= wi.r; ++p) {
        const double mu = ps.WindowMean(static_cast<size_t>(p), w);
        EXPECT_GE(mu, row.low - 1e-9);
        EXPECT_LT(mu, row.up + 1e-9);
      }
    }
  }
}

TEST(IndexBuilderTest, MergeReducesRowsButKeepsWindows) {
  const TimeSeries x = MakeSeries(30000);
  const KvIndex strict =
      BuildKvIndex(x, {.window = 50, .width = 0.1, .merge_threshold = 0.0});
  const KvIndex merged =
      BuildKvIndex(x, {.window = 50, .width = 0.1, .merge_threshold = 0.9});
  EXPECT_LT(merged.num_rows(), strict.num_rows());
  // Same probe answers regardless of merge (merge only coarsens rows).
  PrefixStats ps(x);
  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    const double lr = rng.Uniform(-10, 9);
    const double ur = lr + rng.Uniform(0.1, 3.0);
    const auto a = ProbePositions(strict, lr, ur);
    const auto b = ProbePositions(merged, lr, ur);
    // Both are supersets of the truth; truth = windows with mean in range.
    for (size_t p = 0; p + 50 <= x.size(); ++p) {
      const double mu = ps.WindowMean(p, 50);
      if (mu >= lr && mu <= ur) {
        EXPECT_TRUE(a.count(static_cast<int64_t>(p)));
        EXPECT_TRUE(b.count(static_cast<int64_t>(p)));
      }
    }
    // Coarser rows can only add windows.
    for (int64_t p : a) EXPECT_TRUE(b.count(p));
  }
}

TEST(IndexBuilderTest, ProbeReturnsSupersetOfTrueWindows) {
  const TimeSeries x = MakeSeries(10000, 7);
  const size_t w = 40;
  const KvIndex index = BuildKvIndex(x, {.window = w});
  PrefixStats ps(x);
  Rng rng(8);
  for (int t = 0; t < 30; ++t) {
    const double lr = rng.Uniform(-8, 7);
    const double ur = lr + rng.Uniform(0.0, 2.0);
    const auto got = ProbePositions(index, lr, ur);
    for (size_t p = 0; p + w <= x.size(); ++p) {
      const double mu = ps.WindowMean(p, w);
      if (mu >= lr && mu <= ur) {
        EXPECT_TRUE(got.count(static_cast<int64_t>(p)))
            << "missing window " << p << " mean " << mu;
      }
    }
    // And the superset is bounded by row width: every returned window's
    // mean lies within the probed range padded by the widest (merged) row.
    double max_row_width = 0.0;
    for (const auto& m : index.meta()) {
      max_row_width = std::max(max_row_width, m.up - m.low);
    }
    for (int64_t p : got) {
      const double mu = ps.WindowMean(static_cast<size_t>(p), w);
      EXPECT_GE(mu, lr - max_row_width - 1e-9);
      EXPECT_LE(mu, ur + max_row_width + 1e-9);
    }
  }
}

TEST(IndexBuilderTest, EmptyProbeOutsideDataRange) {
  const TimeSeries x = MakeSeries(5000);
  const KvIndex index = BuildKvIndex(x, {.window = 50});
  EXPECT_TRUE(ProbePositions(index, 1e6, 2e6).empty());
  EXPECT_TRUE(ProbePositions(index, -2e6, -1e6).empty());
}

TEST(IndexBuilderTest, SeriesShorterThanWindowYieldsEmptyIndex) {
  const TimeSeries x = MakeSeries(30);
  const KvIndex index = BuildKvIndex(x, {.window = 50});
  EXPECT_EQ(index.num_rows(), 0u);
}

TEST(IndexBuilderTest, SegmentedBuildEqualsPlainBuild) {
  const TimeSeries x = MakeSeries(12000, 11);
  const IndexBuildOptions opts{.window = 50, .width = 0.5,
                               .merge_threshold = 0.8};
  const KvIndex plain = BuildKvIndex(x, opts);
  for (size_t segs : {2u, 3u, 7u, 64u}) {
    const KvIndex seg = BuildKvIndexSegmented(x, opts, segs);
    ASSERT_EQ(seg.num_rows(), plain.num_rows()) << "segments=" << segs;
    for (size_t i = 0; i < plain.num_rows(); ++i) {
      EXPECT_EQ(seg.rows()[i].low, plain.rows()[i].low);
      EXPECT_EQ(seg.rows()[i].up, plain.rows()[i].up);
      EXPECT_EQ(seg.rows()[i].value, plain.rows()[i].value);
    }
  }
}

TEST(IndexBuilderTest, BuildIndexSetDoublesWindows) {
  const TimeSeries x = MakeSeries(20000);
  const auto set = BuildIndexSet(x, 25, 5);
  ASSERT_EQ(set.size(), 5u);
  size_t w = 25;
  for (const auto& index : set) {
    EXPECT_EQ(index.window(), w);
    EXPECT_EQ(index.series_length(), x.size());
    w *= 2;
  }
}

TEST(IndexTest, MetaEstimatesMatchRowSums) {
  const TimeSeries x = MakeSeries(15000, 3);
  const KvIndex index = BuildKvIndex(x, {.window = 100});
  Rng rng(4);
  for (int t = 0; t < 20; ++t) {
    const double lr = rng.Uniform(-8, 7);
    const double ur = lr + rng.Uniform(0.0, 3.0);
    auto is = index.ProbeRange(lr, ur);
    ASSERT_TRUE(is.ok());
    // The estimate sums raw per-row nI; the actual union may merge
    // intervals that touch across rows, so estimate >= actual.
    EXPECT_GE(index.EstimateIntervals(lr, ur), is->num_intervals());
    EXPECT_GE(index.EstimatePositions(lr, ur),
              static_cast<uint64_t>(is->num_positions()));
  }
}

TEST(IndexTest, ProbeStatsCountAccesses) {
  const TimeSeries x = MakeSeries(10000);
  const KvIndex index = BuildKvIndex(x, {.window = 50});
  ProbeStats stats;
  auto is = index.ProbeRange(-1.0, 1.0, &stats);
  ASSERT_TRUE(is.ok());
  EXPECT_EQ(stats.index_accesses, 1u);
  EXPECT_GT(stats.rows_fetched, 0u);
}

class IndexPersistence : public ::testing::TestWithParam<int> {};

TEST_P(IndexPersistence, RoundTripThroughStore) {
  const TimeSeries x = MakeSeries(8000, 9);
  const KvIndex built = BuildKvIndex(x, {.window = 50});

  std::unique_ptr<KvStore> store;
  std::string cleanup;
  switch (GetParam()) {
    case 0:
      store = std::make_unique<MemKvStore>();
      break;
    case 1: {
      cleanup =
          (fs::temp_directory_path() / "kvm_index_persist_file").string();
      std::remove(cleanup.c_str());
      auto r = FileKvStore::Open(cleanup);
      ASSERT_TRUE(r.ok());
      store = std::move(r).value();
      break;
    }
    default: {
      cleanup =
          (fs::temp_directory_path() / "kvm_index_persist_mini").string();
      fs::remove_all(cleanup);
      auto r = MiniKv::Open(cleanup);
      ASSERT_TRUE(r.ok());
      store = std::move(r).value();
      break;
    }
  }

  ASSERT_TRUE(built.Persist(store.get(), "idx50/").ok());
  auto opened = KvIndex::Open(store.get(), "idx50/");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->window(), built.window());
  EXPECT_EQ(opened->series_length(), built.series_length());
  ASSERT_EQ(opened->meta().size(), built.meta().size());

  // Probes agree between the in-memory and store-backed forms.
  Rng rng(10);
  for (int t = 0; t < 15; ++t) {
    const double lr = rng.Uniform(-8, 7);
    const double ur = lr + rng.Uniform(0.0, 2.0);
    auto a = built.ProbeRange(lr, ur);
    auto b = opened->ProbeRange(lr, ur);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }

  store.reset();
  if (!cleanup.empty()) {
    std::error_code ec;
    fs::remove_all(cleanup, ec);
  }
}

INSTANTIATE_TEST_SUITE_P(Stores, IndexPersistence, ::testing::Values(0, 1, 2));

TEST(IndexTest, MultipleIndexesShareOneStore) {
  const TimeSeries x = MakeSeries(6000);
  auto store = std::make_unique<MemKvStore>();
  const auto set = BuildIndexSet(x, 25, 3);
  for (const auto& index : set) {
    const std::string ns = "w" + std::to_string(index.window()) + "/";
    ASSERT_TRUE(index.Persist(store.get(), ns).ok());
  }
  for (const auto& index : set) {
    const std::string ns = "w" + std::to_string(index.window()) + "/";
    auto opened = KvIndex::Open(store.get(), ns);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened->window(), index.window());
    auto a = index.ProbeRange(-1, 1);
    auto b = opened->ProbeRange(-1, 1);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
}

TEST(IndexTest, LargerWindowShrinksIndex) {
  // Table VIII phenomenon: larger w -> smoother means -> fewer intervals
  // -> smaller index. The trend is monotone end-to-end with mild slack at
  // individual steps.
  Rng rng(13);
  const TimeSeries x = GenerateUcrLike(100000, &rng);
  std::vector<uint64_t> sizes;
  for (size_t w : {25u, 50u, 100u, 200u, 400u}) {
    const KvIndex index = BuildKvIndex(x, {.window = w});
    sizes.push_back(index.EncodedSizeBytes());
  }
  EXPECT_LT(sizes.back(), sizes.front());
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LT(sizes[i], sizes[i - 1] * 1.2) << "step " << i;
  }
}

}  // namespace
}  // namespace kvmatch
