// Tests for the §VI-C optimizations and engineering extensions: the
// store-backed row cache, the multithreaded index build, and failure
// injection on persisted index rows.
#include <gtest/gtest.h>

#include <thread>

#include "baseline/brute_force.h"
#include "common/coding.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "storage/mem_kvstore.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

TEST(RowCacheTest, CachedProbesReturnIdenticalResults) {
  Rng rng(91);
  const TimeSeries x = GenerateSynthetic(12000, &rng);
  const KvIndex built = BuildKvIndex(x, {.window = 50});
  MemKvStore store;
  ASSERT_TRUE(built.Persist(&store, "").ok());
  auto cold = KvIndex::Open(&store, "");
  auto warm = KvIndex::Open(&store, "");
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  warm->EnableRowCache(256);

  Rng prng(92);
  for (int t = 0; t < 50; ++t) {
    const double lr = prng.Uniform(-8, 7);
    const double ur = lr + prng.Uniform(0.0, 2.0);
    auto a = cold->ProbeRange(lr, ur);
    auto b = warm->ProbeRange(lr, ur);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
}

TEST(RowCacheTest, RepeatedProbeHitsCache) {
  Rng rng(93);
  const TimeSeries x = GenerateSynthetic(10000, &rng);
  const KvIndex built = BuildKvIndex(x, {.window = 50});
  MemKvStore store;
  ASSERT_TRUE(built.Persist(&store, "").ok());
  auto index = KvIndex::Open(&store, "");
  ASSERT_TRUE(index.ok());
  index->EnableRowCache(1024);

  ProbeStats first, second;
  ASSERT_TRUE(index->ProbeRange(-1.0, 1.0, &first).ok());
  ASSERT_TRUE(index->ProbeRange(-1.0, 1.0, &second).ok());
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_GT(first.rows_fetched, 0u);
  EXPECT_EQ(second.rows_fetched, 0u);  // fully served from cache
  EXPECT_GT(second.cache_hits, 0u);
  EXPECT_EQ(second.cache_hits, first.rows_fetched);
}

TEST(RowCacheTest, PartialOverlapFetchesOnlyMissingRows) {
  Rng rng(94);
  const TimeSeries x = GenerateSynthetic(20000, &rng);
  const KvIndex built = BuildKvIndex(x, {.window = 50, .width = 0.25});
  MemKvStore store;
  ASSERT_TRUE(built.Persist(&store, "").ok());
  auto index = KvIndex::Open(&store, "");
  ASSERT_TRUE(index.ok());
  index->EnableRowCache(1024);

  ProbeStats narrow;
  ASSERT_TRUE(index->ProbeRange(-0.5, 0.5, &narrow).ok());
  ProbeStats wide;
  ASSERT_TRUE(index->ProbeRange(-1.5, 1.5, &wide).ok());
  // The wide probe reuses the narrow probe's rows.
  EXPECT_GT(wide.cache_hits, 0u);
  // And still returns the exact same answer as an uncached index.
  auto uncached = KvIndex::Open(&store, "");
  ASSERT_TRUE(uncached.ok());
  auto a = index->ProbeRange(-1.5, 1.5);
  auto b = uncached->ProbeRange(-1.5, 1.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(RowCacheTest, EvictionKeepsBoundAndCorrectness) {
  Rng rng(95);
  const TimeSeries x = GenerateSynthetic(20000, &rng);
  const KvIndex built = BuildKvIndex(x, {.window = 50, .width = 0.25});
  MemKvStore store;
  ASSERT_TRUE(built.Persist(&store, "").ok());
  auto index = KvIndex::Open(&store, "");
  ASSERT_TRUE(index.ok());
  index->EnableRowCache(2);  // tiny: constant eviction

  Rng prng(96);
  auto reference = KvIndex::Open(&store, "");
  ASSERT_TRUE(reference.ok());
  for (int t = 0; t < 60; ++t) {
    const double lr = prng.Uniform(-8, 7);
    const double ur = lr + prng.Uniform(0.0, 3.0);
    auto a = index->ProbeRange(lr, ur);
    auto b = reference->ProbeRange(lr, ur);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
}

TEST(RowCacheTest, MatcherEndToEndWithCache) {
  Rng rng(97);
  const TimeSeries x = GenerateSynthetic(8000, &rng);
  PrefixStats ps(x);
  const KvIndex built = BuildKvIndex(x, {.window = 25});
  MemKvStore store;
  ASSERT_TRUE(built.Persist(&store, "").ok());
  auto index = KvIndex::Open(&store, "");
  ASSERT_TRUE(index.ok());
  index->EnableRowCache(512);
  const KvMatcher matcher(x, ps, *index);
  const auto q = ExtractQuery(x, 3000, 150, 0.2, &rng);
  QueryParams params{QueryType::kCnsmEd, 3.0, 1.5, 3.0, 0};
  const auto expected = BruteForceMatch(x, q, params);
  // Run twice: cold then warm; both must be exact.
  for (int round = 0; round < 2; ++round) {
    auto got = matcher.Match(q, params);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), expected.size()) << "round " << round;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].offset, expected[i].offset);
    }
  }
}

class ParallelBuild : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelBuild, IdenticalToSequentialBuild) {
  const size_t threads = GetParam();
  Rng rng(98);
  const TimeSeries x = GenerateUcrLike(30000, &rng);
  const IndexBuildOptions opts{.window = 50};
  const KvIndex plain = BuildKvIndex(x, opts);
  const KvIndex parallel = BuildKvIndexParallel(x, opts, threads);
  ASSERT_EQ(parallel.num_rows(), plain.num_rows());
  for (size_t i = 0; i < plain.num_rows(); ++i) {
    EXPECT_EQ(parallel.rows()[i].low, plain.rows()[i].low);
    EXPECT_EQ(parallel.rows()[i].up, plain.rows()[i].up);
    EXPECT_EQ(parallel.rows()[i].value, plain.rows()[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelBuild,
                         ::testing::Values(1, 2, 3, 8));

TEST(ParallelBuildTest, MoreThreadsThanPositions) {
  Rng rng(99);
  const TimeSeries x = GenerateSynthetic(100, &rng);
  const KvIndex plain = BuildKvIndex(x, {.window = 50});
  const KvIndex parallel =
      BuildKvIndexParallel(x, {.window = 50}, 1000);
  EXPECT_EQ(parallel.num_rows(), plain.num_rows());
}

TEST(IncrementalBuilderTest, SnapshotEqualsBatchBuild) {
  Rng rng(201);
  const TimeSeries x = GenerateUcrLike(15000, &rng);
  const IndexBuildOptions opts{.window = 50};
  const KvIndex batch = BuildKvIndex(x, opts);

  IncrementalIndexBuilder builder(opts);
  builder.AppendChunk(x.values());
  const KvIndex streamed = builder.Snapshot();
  ASSERT_EQ(streamed.num_rows(), batch.num_rows());
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    EXPECT_EQ(streamed.rows()[i].low, batch.rows()[i].low);
    EXPECT_EQ(streamed.rows()[i].value, batch.rows()[i].value);
  }
  EXPECT_EQ(streamed.series_length(), x.size());
}

TEST(IncrementalBuilderTest, ChunkBoundariesDoNotMatter) {
  Rng rng(202);
  const TimeSeries x = GenerateSynthetic(5000, &rng);
  const IndexBuildOptions opts{.window = 32};

  IncrementalIndexBuilder one_shot(opts);
  one_shot.AppendChunk(x.values());

  IncrementalIndexBuilder chunked(opts);
  size_t pos = 0;
  Rng crng(203);
  while (pos < x.size()) {
    const size_t len = std::min<size_t>(
        x.size() - pos, static_cast<size_t>(crng.UniformInt(1, 700)));
    chunked.AppendChunk(
        std::span<const double>(x.values()).subspan(pos, len));
    pos += len;
  }
  const KvIndex a = one_shot.Snapshot();
  const KvIndex b = chunked.Snapshot();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.rows()[i].value, b.rows()[i].value);
  }
}

TEST(IncrementalBuilderTest, MidStreamSnapshotMatchesPrefixBuild) {
  Rng rng(204);
  const TimeSeries x = GenerateSynthetic(6000, &rng);
  const IndexBuildOptions opts{.window = 25};
  IncrementalIndexBuilder builder(opts);
  const size_t half = 3000;
  builder.AppendChunk(
      std::span<const double>(x.values()).subspan(0, half));
  const KvIndex snap = builder.Snapshot();
  const TimeSeries prefix_series(std::vector<double>(
      x.values().begin(), x.values().begin() + half));
  const KvIndex expected = BuildKvIndex(prefix_series, opts);
  ASSERT_EQ(snap.num_rows(), expected.num_rows());
  for (size_t i = 0; i < snap.num_rows(); ++i) {
    EXPECT_EQ(snap.rows()[i].value, expected.rows()[i].value);
  }
  // The builder keeps working after a snapshot.
  builder.AppendChunk(
      std::span<const double>(x.values()).subspan(half));
  const KvIndex full = builder.Snapshot();
  const KvIndex full_expected = BuildKvIndex(x, opts);
  EXPECT_EQ(full.num_rows(), full_expected.num_rows());
}

TEST(IncrementalBuilderTest, FewerPointsThanWindowGivesEmptyIndex) {
  IncrementalIndexBuilder builder({.window = 100});
  for (int i = 0; i < 50; ++i) builder.Append(1.0);
  EXPECT_EQ(builder.Snapshot().num_rows(), 0u);
}

TEST(FailureInjectionTest, CorruptRowValueSurfacesCorruption) {
  Rng rng(100);
  const TimeSeries x = GenerateSynthetic(8000, &rng);
  const KvIndex built = BuildKvIndex(x, {.window = 50});
  ASSERT_GT(built.num_rows(), 1u);
  MemKvStore store;
  ASSERT_TRUE(built.Persist(&store, "").ok());
  // Truncate one row's value so interval decoding fails.
  const std::string victim_key =
      "r" + EncodeOrderedDouble(built.rows()[0].low);
  std::string value;
  ASSERT_TRUE(store.Get(victim_key, &value).ok());
  ASSERT_TRUE(store.Put(victim_key, value.substr(0, 9)).ok());

  auto index = KvIndex::Open(&store, "");
  ASSERT_TRUE(index.ok());
  auto probe = index->ProbeRange(built.rows()[0].low,
                                 built.rows()[0].up - 1e-9);
  ASSERT_FALSE(probe.ok());
  EXPECT_TRUE(probe.status().IsCorruption());
}

TEST(FailureInjectionTest, MissingMetaIsNotFound) {
  MemKvStore store;
  auto index = KvIndex::Open(&store, "absent/");
  EXPECT_FALSE(index.ok());
  EXPECT_TRUE(index.status().IsNotFound());
}

TEST(FailureInjectionTest, TruncatedMetaIsCorruption) {
  Rng rng(101);
  const TimeSeries x = GenerateSynthetic(5000, &rng);
  const KvIndex built = BuildKvIndex(x, {.window = 50});
  MemKvStore store;
  ASSERT_TRUE(built.Persist(&store, "").ok());
  std::string meta;
  ASSERT_TRUE(store.Get("m", &meta).ok());
  ASSERT_TRUE(store.Put("m", meta.substr(0, meta.size() / 2)).ok());
  auto index = KvIndex::Open(&store, "");
  ASSERT_FALSE(index.ok());
  EXPECT_TRUE(index.status().IsCorruption());
}

}  // namespace
}  // namespace kvmatch
