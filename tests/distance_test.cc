// Unit + property tests for distance/: ED, DTW, envelopes, lower bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "distance/dtw.h"
#include "distance/ed.h"
#include "distance/envelope.h"
#include "distance/lower_bounds.h"
#include "ts/time_series.h"

namespace kvmatch {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> RandomSeries(size_t n, Rng* rng, double lo = -5,
                                 double hi = 5) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->Uniform(lo, hi);
  return v;
}

TEST(EdTest, KnownValue) {
  const std::vector<double> a = {0, 0, 0};
  const std::vector<double> b = {1, 2, 2};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 3.0);
}

TEST(EdTest, ZeroForIdentical) {
  Rng rng(1);
  const auto a = RandomSeries(100, &rng);
  EXPECT_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(EdTest, EarlyAbandonMatchesExactWhenUnderThreshold) {
  Rng rng(2);
  const auto a = RandomSeries(64, &rng);
  const auto b = RandomSeries(64, &rng);
  const double exact = EuclideanDistance(a, b);
  const double sq = SquaredEdEarlyAbandon(a, b, exact * exact + 1.0);
  EXPECT_NEAR(std::sqrt(sq), exact, 1e-9);
}

TEST(EdTest, EarlyAbandonReturnsInfWhenOverThreshold) {
  Rng rng(3);
  const auto a = RandomSeries(64, &rng);
  const auto b = RandomSeries(64, &rng);
  const double exact_sq = SquaredEdEarlyAbandon(a, b, kInf);
  EXPECT_EQ(SquaredEdEarlyAbandon(a, b, exact_sq * 0.5), kInf);
}

TEST(EdTest, SortedAbsOrderIsDecreasing) {
  const std::vector<double> q = {0.5, -3.0, 1.0, -0.1};
  const auto order = SortedAbsOrder(q);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);  // |-3.0|
  EXPECT_EQ(order[1], 2);  // |1.0|
  EXPECT_EQ(order[2], 0);
  EXPECT_EQ(order[3], 3);
}

TEST(EdTest, ReorderedNormalizedEdMatchesNaive) {
  Rng rng(4);
  const auto s = RandomSeries(128, &rng);
  auto q = RandomSeries(128, &rng);
  q = ZNormalize(q);
  const MeanStd ms = ComputeMeanStd(s);
  const auto s_hat = ZNormalize(s);
  const double naive = EuclideanDistance(s_hat, q);
  const auto order = SortedAbsOrder(q);
  const double sq =
      SquaredNormalizedEdOrdered(s, ms.mean, ms.std, q, order, kInf);
  EXPECT_NEAR(std::sqrt(sq), naive, 1e-9);
}

TEST(EdTest, L1KnownValueAndEarlyAbandon) {
  const std::vector<double> a = {0, 0, 0, 0};
  const std::vector<double> b = {1, -2, 3, -4};
  EXPECT_DOUBLE_EQ(L1DistanceEarlyAbandon(a, b), 10.0);
  EXPECT_EQ(L1DistanceEarlyAbandon(a, b, 9.0), kInf);
  EXPECT_DOUBLE_EQ(L1DistanceEarlyAbandon(a, b, 10.0), 10.0);
}

TEST(EdTest, L1DominatesEd) {
  // ||x||_1 >= ||x||_2 always.
  Rng rng(19);
  for (int t = 0; t < 30; ++t) {
    const auto a = RandomSeries(64, &rng);
    const auto b = RandomSeries(64, &rng);
    EXPECT_GE(L1DistanceEarlyAbandon(a, b),
              EuclideanDistance(a, b) - 1e-9);
  }
}

TEST(DtwTest, RhoZeroEqualsEd) {
  Rng rng(5);
  const auto a = RandomSeries(50, &rng);
  const auto b = RandomSeries(50, &rng);
  EXPECT_NEAR(DtwDistance(a, b, 0), EuclideanDistance(a, b), 1e-9);
}

TEST(DtwTest, NeverExceedsEd) {
  Rng rng(6);
  for (int t = 0; t < 20; ++t) {
    const auto a = RandomSeries(40, &rng);
    const auto b = RandomSeries(40, &rng);
    EXPECT_LE(DtwDistance(a, b, 5), EuclideanDistance(a, b) + 1e-9);
  }
}

TEST(DtwTest, WideBandEqualsFullDtw) {
  Rng rng(7);
  for (int t = 0; t < 10; ++t) {
    const auto a = RandomSeries(30, &rng);
    const auto b = RandomSeries(30, &rng);
    EXPECT_NEAR(DtwDistance(a, b, 29), DtwDistanceFull(a, b), 1e-9);
  }
}

TEST(DtwTest, BandMonotoneInRho) {
  Rng rng(8);
  const auto a = RandomSeries(60, &rng);
  const auto b = RandomSeries(60, &rng);
  double prev = kInf;
  for (size_t rho : {0u, 1u, 2u, 5u, 10u, 59u}) {
    const double d = DtwDistance(a, b, rho);
    EXPECT_LE(d, prev + 1e-9);
    prev = d;
  }
}

TEST(DtwTest, WarpingAlignsShiftedSpike) {
  // A spike shifted by 2 positions: ED is large, DTW with rho>=2 is small.
  std::vector<double> a(20, 0.0), b(20, 0.0);
  a[5] = 10.0;
  b[7] = 10.0;
  EXPECT_GT(EuclideanDistance(a, b), 10.0);
  EXPECT_NEAR(DtwDistance(a, b, 2), 0.0, 1e-9);
}

TEST(DtwTest, EarlyAbandonConsistentWithExact) {
  Rng rng(9);
  for (int t = 0; t < 50; ++t) {
    const auto a = RandomSeries(32, &rng);
    const auto b = RandomSeries(32, &rng);
    const double exact = DtwDistance(a, b, 3);
    // Threshold above: must return the exact value.
    EXPECT_NEAR(DtwDistance(a, b, 3, exact + 0.1), exact, 1e-9);
    // Threshold below: must return inf.
    EXPECT_EQ(DtwDistance(a, b, 3, exact * 0.9), kInf);
  }
}

TEST(DtwTest, EmptyInputIsZero) {
  const std::vector<double> empty;
  EXPECT_EQ(DtwDistance(empty, empty, 0), 0.0);
}

TEST(EnvelopeTest, MatchesNaiveMinMax) {
  Rng rng(10);
  const auto q = RandomSeries(200, &rng);
  for (size_t rho : {0u, 1u, 5u, 17u, 199u}) {
    const Envelope env = BuildEnvelope(q, rho);
    for (size_t i = 0; i < q.size(); ++i) {
      const size_t lo = i > rho ? i - rho : 0;
      const size_t hi = std::min(q.size() - 1, i + rho);
      double mn = kInf, mx = -kInf;
      for (size_t k = lo; k <= hi; ++k) {
        mn = std::min(mn, q[k]);
        mx = std::max(mx, q[k]);
      }
      ASSERT_EQ(env.lower[i], mn) << "rho=" << rho << " i=" << i;
      ASSERT_EQ(env.upper[i], mx) << "rho=" << rho << " i=" << i;
    }
  }
}

TEST(EnvelopeTest, RhoZeroIsIdentity) {
  Rng rng(11);
  const auto q = RandomSeries(50, &rng);
  const Envelope env = BuildEnvelope(q, 0);
  EXPECT_EQ(env.lower, q);
  EXPECT_EQ(env.upper, q);
}

TEST(EnvelopeTest, SandwichesQuery) {
  Rng rng(12);
  const auto q = RandomSeries(100, &rng);
  const Envelope env = BuildEnvelope(q, 7);
  for (size_t i = 0; i < q.size(); ++i) {
    EXPECT_LE(env.lower[i], q[i]);
    EXPECT_GE(env.upper[i], q[i]);
  }
}

// Property sweep: every lower bound must lower-bound banded DTW.
class LowerBoundProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(LowerBoundProperty, BoundsSandwichDtw) {
  const size_t rho = GetParam();
  Rng rng(100 + rho);
  for (int t = 0; t < 60; ++t) {
    const auto s = RandomSeries(96, &rng);
    const auto q = RandomSeries(96, &rng);
    const Envelope env = BuildEnvelope(q, rho);
    const double dtw = DtwDistance(s, q, rho);
    const double dtw_sq = dtw * dtw;

    EXPECT_LE(LbKimSquared(s, q), dtw_sq + 1e-9);

    std::vector<double> cb;
    const double keogh = LbKeoghSquared(s, env, kInf, &cb);
    EXPECT_LE(keogh, dtw_sq + 1e-9);

    // Cumulative array sums to the bound.
    const auto cum = SuffixCumulate(cb);
    EXPECT_NEAR(cum[0], keogh, 1e-9);
    EXPECT_EQ(cum.back(), 0.0);

    // LB_PAA over w=16 windows.
    const size_t w = 16, p = 96 / w;
    std::vector<double> s_means(p), l_means(p), u_means(p);
    for (size_t i = 0; i < p; ++i) {
      s_means[i] = Mean(std::span<const double>(s).subspan(i * w, w));
      l_means[i] = Mean(std::span<const double>(env.lower).subspan(i * w, w));
      u_means[i] = Mean(std::span<const double>(env.upper).subspan(i * w, w));
    }
    EXPECT_LE(LbPaaSquared(s_means, l_means, u_means, w), dtw_sq + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Rho, LowerBoundProperty,
                         ::testing::Values(0, 1, 3, 5, 10));

TEST(LowerBoundTest, NormalizedKeoghMatchesExplicitNormalization) {
  Rng rng(14);
  const auto s = RandomSeries(64, &rng);
  auto q = RandomSeries(64, &rng);
  q = ZNormalize(q);
  const Envelope env = BuildEnvelope(q, 4);
  const MeanStd ms = ComputeMeanStd(s);
  const auto s_hat = ZNormalize(s);
  const double direct = LbKeoghSquared(s_hat, env, kInf, nullptr);
  const double on_the_fly =
      LbKeoghNormalizedSquared(s, ms.mean, ms.std, env, kInf, nullptr);
  EXPECT_NEAR(direct, on_the_fly, 1e-9);
}

TEST(LowerBoundTest, KeoghZeroInsideEnvelope) {
  Rng rng(15);
  const auto q = RandomSeries(64, &rng);
  const Envelope env = BuildEnvelope(q, 3);
  // The query itself lies inside its own envelope.
  EXPECT_EQ(LbKeoghSquared(q, env, kInf, nullptr), 0.0);
}

TEST(LowerBoundTest, LbKimUsesEndpoints) {
  std::vector<double> s = {5.0, 0, 0, 0, 0, 0, 0, 3.0};
  std::vector<double> q(8, 0.0);
  EXPECT_GE(LbKimSquared(s, q), 25.0 + 9.0 - 1e-9);
}

}  // namespace
}  // namespace kvmatch
