// Unit + integration tests for per-request query tracing: span
// recording and ordering through the QueryService's two-phase pipeline
// (including overlapping verify slices under parallel verify — the TSan
// target), the stage breakdown, and the JSON exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "service/trace.h"
#include "storage/mem_kvstore.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

using Clock = QueryTrace::Clock;

// ---------------------------------------------------------- QueryTrace

TEST(QueryTraceTest, SpansAreRelativeToOriginAndSortedByStart) {
  const auto origin = Clock::now();
  QueryTrace trace(origin);
  const auto t1 = origin + std::chrono::milliseconds(10);
  const auto t2 = origin + std::chrono::milliseconds(25);
  const auto t3 = origin + std::chrono::milliseconds(5);
  trace.AddSpan(kSpanProbe, t1, t2, {{"windows", 7}});
  trace.AddSpan(kSpanQueue, origin, t3);

  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start, not insertion order.
  EXPECT_EQ(spans[0].name, kSpanQueue);
  EXPECT_NEAR(spans[0].start_ms, 0.0, 1e-9);
  EXPECT_NEAR(spans[0].dur_ms, 5.0, 1e-9);
  EXPECT_EQ(spans[1].name, kSpanProbe);
  EXPECT_NEAR(spans[1].start_ms, 10.0, 1e-9);
  EXPECT_NEAR(spans[1].dur_ms, 15.0, 1e-9);
  ASSERT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].first, "windows");
  EXPECT_EQ(spans[1].args[0].second, 7u);
}

TEST(QueryTraceTest, NegativeDurationsClampToZero) {
  QueryTrace trace;
  const auto now = Clock::now();
  trace.AddSpan(kSpanProbe, now, now - std::chrono::milliseconds(1));
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].dur_ms, 0.0);
}

TEST(QueryTraceTest, WorkerIdsAreDensePerThread) {
  QueryTrace trace;
  const auto now = Clock::now();
  trace.AddSpan(kSpanVerify, now, now);  // this thread -> worker 0
  std::thread([&trace, now] {
    trace.AddSpan(kSpanVerify, now, now);  // new thread -> worker 1
  }).join();
  trace.AddSpan(kSpanVerify, now, now);  // same thread -> still 0

  std::vector<uint64_t> workers;
  for (const auto& s : trace.spans()) workers.push_back(s.worker);
  std::sort(workers.begin(), workers.end());
  EXPECT_EQ(workers, (std::vector<uint64_t>{0, 0, 1}));
}

TEST(QueryTraceTest, ConcurrentAddSpanIsSafe) {
  QueryTrace trace;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto now = Clock::now();
        trace.AddSpan(kSpanVerify, now, now, {{"slice", 1}});
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto spans = trace.spans();
  EXPECT_EQ(spans.size(), static_cast<size_t>(kThreads) * kPerThread);
  uint64_t max_worker = 0;
  for (const auto& s : spans) max_worker = std::max(max_worker, s.worker);
  EXPECT_LT(max_worker, static_cast<uint64_t>(kThreads));
}

TEST(StageBreakdownTest, VerifyIsUnionOfOverlappingSlices) {
  const auto origin = Clock::now();
  QueryTrace trace(origin);
  const auto at = [&](double ms) {
    return origin + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(ms));
  };
  trace.AddSpan(kSpanQueue, at(0), at(2));
  trace.AddSpan(kSpanProbe, at(2), at(10));
  // Three overlapping slices on [10, 30]: the union, not the 44 ms sum.
  trace.AddSpan(kSpanVerify, at(10), at(24));
  trace.AddSpan(kSpanVerify, at(11), at(30));
  trace.AddSpan(kSpanVerify, at(12), at(23));
  trace.AddSpan(kSpanSerialize, at(30), at(31));

  const StageBreakdown b = ComputeStageBreakdown(trace);
  EXPECT_NEAR(b.queue_ms, 2.0, 1e-6);
  EXPECT_NEAR(b.probe_ms, 8.0, 1e-6);
  EXPECT_NEAR(b.verify_ms, 20.0, 1e-6);
  EXPECT_NEAR(b.serialize_ms, 1.0, 1e-6);
  EXPECT_NEAR(b.TotalMs(), 31.0, 1e-6);
}

// ------------------------------------------------------------ exporters

TEST(TraceJsonTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\n\t"), "x\\n\\t");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(TraceJsonTest, ChromeJsonHasCompleteEventsInMicroseconds) {
  const auto origin = Clock::now();
  QueryTrace trace(origin);
  trace.AddSpan(kSpanProbe, origin + std::chrono::milliseconds(1),
                origin + std::chrono::milliseconds(3), {{"windows", 42}});
  const std::string json = TraceToChromeJson(trace);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"probe\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);   // µs
  EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos);  // µs
  EXPECT_NE(json.find("\"windows\":42"), std::string::npos);
}

TEST(TraceJsonTest, AppendChromeTraceEventsSeparatesQueriesByPid) {
  QueryTrace a, b;
  const auto now = Clock::now();
  a.AddSpan(kSpanProbe, now, now);
  b.AddSpan(kSpanVerify, now, now);
  std::string out = "[";
  AppendChromeTraceEvents(a, 0, &out);
  AppendChromeTraceEvents(b, 1, &out);
  out += "]";
  EXPECT_NE(out.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(out.find("\"pid\":1"), std::string::npos);
  // Events must be comma-separated across the two appends.
  EXPECT_NE(out.find("},{"), std::string::npos);
}

TEST(TraceJsonTest, JsonLineCarriesSeriesStatusLatencyAndSpans) {
  const auto origin = Clock::now();
  QueryTrace trace(origin);
  trace.AddSpan(kSpanQueue, origin, origin + std::chrono::milliseconds(2));
  const std::string line =
      TraceToJsonLine("sensor\"7\"", "ok", 123.456, trace);
  EXPECT_EQ(line.find("{\"slow_query\":true"), 0u);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line, always
  EXPECT_NE(line.find("\"series\":\"sensor\\\"7\\\"\""),
            std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"latency_ms\":123.456"), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"queue\""), std::string::npos);
}

// -------------------------------------------- service integration

constexpr size_t kSeriesLen = 3000;
constexpr size_t kQueryLen = 100;

struct TracedServiceFixture {
  MemKvStore store;
  TimeSeries reference;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<QueryService> service;

  explicit TracedServiceFixture(size_t threads, bool parallel_verify,
                                size_t slice_positions) {
    Catalog::Options copts;
    copts.session.wu = 25;
    copts.session.levels = 3;
    {
      Catalog ingest_catalog(&store, copts);
      Rng rng(321);
      TimeSeries x = GenerateSynthetic(kSeriesLen, &rng);
      reference = x;
      EXPECT_TRUE(ingest_catalog.Ingest("traced", std::move(x)).ok());
    }
    catalog = std::make_unique<Catalog>(&store, copts);
    QueryService::Options sopts;
    sopts.num_threads = threads;
    sopts.parallel_verify = parallel_verify;
    sopts.verify_slice_positions = slice_positions;
    service = std::make_unique<QueryService>(catalog.get(), sopts);
  }

  // A query guaranteed to reach phase 2: extracted from the data with
  // light noise, so the true occurrence survives the (sound) phase-1
  // filter as a candidate.
  QueryRequest MakeRequest(bool loose) {
    Rng rng(77);
    QueryRequest req;
    req.series = "traced";
    req.query = ExtractQuery(reference, kSeriesLen / 3, kQueryLen, 0.05,
                             &rng);
    if (loose) {
      // cNSM-ED with wide bounds: phase 1 prunes little, so nearly every
      // position is verified and phase 2 splits into many slices.
      req.params.type = QueryType::kCnsmEd;
      req.params.epsilon =
          0.75 * std::sqrt(2.0 * static_cast<double>(kQueryLen));
      req.params.alpha = 4.0;
      req.params.beta = 16.0;
    } else {
      req.params.type = QueryType::kRsmEd;
      req.params.epsilon = 5.0;
    }
    return req;
  }
};

TEST(ServiceTraceTest, UntracedRequestsCarryNoTrace) {
  TracedServiceFixture fx(/*threads=*/2, /*parallel_verify=*/false,
                          /*slice_positions=*/0);
  QueryRequest req = fx.MakeRequest(/*loose=*/false);
  ASSERT_FALSE(req.collect_trace);  // the default
  const QueryResponse response = fx.service->Submit(req).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.trace, nullptr);
}

TEST(ServiceTraceTest, TracedQueryRecordsOrderedPipelineSpans) {
  TracedServiceFixture fx(/*threads=*/2, /*parallel_verify=*/false,
                          /*slice_positions=*/64);
  QueryRequest req = fx.MakeRequest(/*loose=*/false);
  req.collect_trace = true;
  const QueryResponse response = fx.service->Submit(req).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_NE(response.trace, nullptr);
  EXPECT_GT(response.stats.candidate_positions, 0u);

  const auto spans = response.trace->spans();
  const TraceSpan* queue = nullptr;
  const TraceSpan* probe = nullptr;
  std::vector<const TraceSpan*> verifies;
  for (const auto& s : spans) {
    if (s.name == kSpanQueue) queue = &s;
    if (s.name == kSpanProbe) probe = &s;
    if (s.name == kSpanVerify) verifies.push_back(&s);
  }
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(probe, nullptr);
  ASSERT_FALSE(verifies.empty());

  constexpr double kEps = 1e-6;
  // Pipeline order: queue wait ends before the probe starts; every
  // verify slice starts after the probe ends.
  EXPECT_GE(queue->start_ms, -kEps);
  EXPECT_LE(queue->start_ms + queue->dur_ms, probe->start_ms + kEps);
  uint64_t candidates = 0;
  for (const TraceSpan* v : verifies) {
    EXPECT_GE(v->start_ms, probe->start_ms + probe->dur_ms - kEps);
    EXPECT_GE(v->dur_ms, 0.0);
    for (const auto& [key, value] : v->args) {
      if (key == "candidates") candidates += value;
    }
  }
  // Verify slices partition the candidate set exactly.
  EXPECT_EQ(candidates, response.stats.candidate_positions);

  // Every span fits inside the measured request latency, and the stage
  // breakdown never exceeds it (the gaps — session acquire, executor
  // setup — are real time the spans legitimately don't cover).
  const double slack = 0.05 * response.latency_ms + 1.0;
  for (const auto& s : spans) {
    EXPECT_GE(s.start_ms, -kEps);
    EXPECT_LE(s.start_ms + s.dur_ms, response.latency_ms + slack);
  }
  const StageBreakdown b = ComputeStageBreakdown(*response.trace);
  EXPECT_GT(b.TotalMs(), 0.0);
  EXPECT_LE(b.TotalMs(), response.latency_ms + slack);
}

TEST(ServiceTraceTest, ProbeSpanCountsEveryWindow) {
  TracedServiceFixture fx(/*threads=*/1, /*parallel_verify=*/false,
                          /*slice_positions=*/0);
  QueryRequest req = fx.MakeRequest(/*loose=*/false);
  req.collect_trace = true;
  const QueryResponse response = fx.service->Submit(req).get();
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.trace, nullptr);
  for (const auto& s : response.trace->spans()) {
    if (s.name != kSpanProbe) continue;
    uint64_t windows = 0;
    for (const auto& [key, value] : s.args) {
      if (key == "windows") windows = value;
    }
    // The disjoint-window plan for |Q|=100, wu=25 probes ⌊100/25⌋ = 4
    // windows at most (fewer only if the probe aborted, which it didn't).
    EXPECT_GT(windows, 0u);
    EXPECT_LE(windows, kQueryLen / 25);
  }
}

// The TSan target: many traced queries in flight at once, each fanning
// verify slices across the pool, so multiple workers append spans to
// multiple traces concurrently.
TEST(ServiceTraceTest, ParallelVerifySlicesTraceConcurrently) {
  TracedServiceFixture fx(/*threads=*/4, /*parallel_verify=*/true,
                          /*slice_positions=*/128);
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 8; ++i) {
    QueryRequest req = fx.MakeRequest(/*loose=*/true);
    req.collect_trace = true;
    requests.push_back(std::move(req));
  }
  auto futures = fx.service->SubmitBatch(requests);
  size_t multi_slice = 0;
  for (auto& f : futures) {
    const QueryResponse response = f.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_NE(response.trace, nullptr);
    uint64_t candidates = 0;
    size_t verify_spans = 0;
    for (const auto& s : response.trace->spans()) {
      if (s.name != kSpanVerify) continue;
      ++verify_spans;
      for (const auto& [key, value] : s.args) {
        if (key == "candidates") candidates += value;
      }
    }
    EXPECT_EQ(candidates, response.stats.candidate_positions);
    if (verify_spans > 1) ++multi_slice;
    // The loose cNSM query keeps most of the series as candidates, so
    // phase 2 must have split: kSeriesLen/128 ≈ 20+ slices.
    EXPECT_GT(verify_spans, 1u);
  }
  EXPECT_EQ(multi_slice, futures.size());
}

TEST(ServiceTraceTest, AbortedQueryStillCarriesPartialTrace) {
  TracedServiceFixture fx(/*threads=*/1, /*parallel_verify=*/false,
                          /*slice_positions=*/16);
  QueryRequest req = fx.MakeRequest(/*loose=*/true);
  req.collect_trace = true;
  req.cancel = std::make_shared<CancelToken>();
  req.cancel->Cancel();  // cancelled before it ever runs
  const QueryResponse response = fx.service->Submit(req).get();
  EXPECT_FALSE(response.status.ok());
  // The trace exists (the request asked for one) even though execution
  // stopped at the first checkpoint; only the queue span is guaranteed.
  ASSERT_NE(response.trace, nullptr);
  const auto spans = response.trace->spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, kSpanQueue);
}

}  // namespace
}  // namespace kvmatch
