// End-to-end integration: build index set -> persist to a store ->
// reopen -> match through the store-backed path; plus cross-matcher
// agreement sweeps on realistic workloads and calibration sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "baseline/brute_force.h"
#include "baseline/ucr_suite.h"
#include "bench_util/calibration.h"
#include "bench_util/workload.h"
#include "common/rng.h"
#include "index/index_builder.h"
#include "match/kv_match.h"
#include "matchdp/kv_match_dp.h"
#include "storage/file_kvstore.h"
#include "storage/minikv.h"
#include "ts/io.h"

namespace kvmatch {
namespace {

namespace fs = std::filesystem;

TEST(IntegrationTest, FullPipelineOverFileStore) {
  // 1. Generate data, write it to the binary data file (as the paper's
  //    local-file deployment does).
  Rng rng(81);
  const TimeSeries x = GenerateUcrLike(20000, &rng);
  const std::string data_path =
      (fs::temp_directory_path() / "kvm_e2e_data.bin").string();
  ASSERT_TRUE(WriteBinary(x, data_path).ok());

  // 2. Build the KV-matchDP index set and persist all levels into one
  //    FileKvStore.
  const std::string index_path =
      (fs::temp_directory_path() / "kvm_e2e_index.kvm").string();
  std::remove(index_path.c_str());
  {
    auto store = FileKvStore::Open(index_path);
    ASSERT_TRUE(store.ok());
    const auto set = BuildIndexSet(x, 25, 3);
    for (const auto& index : set) {
      ASSERT_TRUE(
          index
              .Persist(store->get(), "w" + std::to_string(index.window()) + "/")
              .ok());
    }
  }

  // 3. Reopen everything cold: data from disk, indexes from the store.
  auto data = ReadBinary(data_path);
  ASSERT_TRUE(data.ok());
  PrefixStats ps(*data);
  auto store = FileKvStore::Open(index_path);
  ASSERT_TRUE(store.ok());
  std::vector<KvIndex> indexes;
  for (size_t w : {25u, 50u, 100u}) {
    auto idx = KvIndex::Open(store->get(), "w" + std::to_string(w) + "/");
    ASSERT_TRUE(idx.ok());
    indexes.push_back(std::move(idx).value());
  }
  std::vector<const KvIndex*> ptrs;
  for (const auto& index : indexes) ptrs.push_back(&index);

  // 4. Query through the store-backed path; compare with brute force.
  const KvMatchDp matcher(*data, ps, ptrs);
  Rng qrng(82);
  for (QueryType type : {QueryType::kRsmEd, QueryType::kCnsmEd,
                         QueryType::kCnsmDtw}) {
    const auto q = ExtractQuery(*data, 5000, 200, 0.2, &qrng);
    QueryParams params{type, 4.0, 1.5, 3.0, 5};
    const auto expected = BruteForceMatch(*data, q, params);
    MatchStats stats;
    auto got = matcher.Match(q, params, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), expected.size());
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].offset, expected[i].offset);
    }
    EXPECT_GT(stats.probe.bytes_fetched, 0u)
        << "store-backed probe should read bytes";
  }

  std::remove(data_path.c_str());
  std::remove(index_path.c_str());
}

TEST(IntegrationTest, MiniKvBackedIndexMatchesInMemory) {
  Rng rng(83);
  const TimeSeries x = GenerateSynthetic(15000, &rng);
  PrefixStats ps(x);
  const KvIndex mem_index = BuildKvIndex(x, {.window = 50});

  const std::string dir =
      (fs::temp_directory_path() / "kvm_e2e_minikv").string();
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(mem_index.Persist(kv->get(), "").ok());
  // Exercise the LSM path: compact and reopen.
  ASSERT_TRUE((*kv)->Compact().ok());
  auto stored_index = KvIndex::Open(kv->get(), "");
  ASSERT_TRUE(stored_index.ok());

  const KvMatcher mem_matcher(x, ps, mem_index);
  const KvMatcher kv_matcher(x, ps, *stored_index);
  Rng qrng(84);
  const auto q = ExtractQuery(x, 3000, 150, 0.2, &qrng);
  QueryParams params{QueryType::kCnsmEd, 3.0, 1.5, 3.0, 0};
  auto a = mem_matcher.Match(q, params);
  auto b = kv_matcher.Match(q, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].offset, (*b)[i].offset);
  }
  fs::remove_all(dir);
}

TEST(IntegrationTest, AllMatchersAgreeOnUcrLikeWorkload) {
  const Workload w = Workload::Make(10000, 85);
  const auto set = BuildIndexSet(w.series, 25, 3);
  std::vector<const KvIndex*> ptrs;
  for (const auto& index : set) ptrs.push_back(&index);
  const KvMatcher basic(w.series, w.prefix, set[1]);  // w = 50
  const KvMatchDp dp(w.series, w.prefix, ptrs);
  const UcrSuite ucr(w.series, w.prefix);

  Rng rng(86);
  for (int trial = 0; trial < 4; ++trial) {
    const auto q = MakeQuery(w, 200, &rng);
    QueryParams params{QueryType::kCnsmEd, 3.0, 1.5, 2.0, 0};
    const auto truth = BruteForceMatch(w.series, q, params);
    auto a = basic.Match(q, params);
    auto b = dp.Match(q, params);
    const auto c = ucr.Match(q, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->size(), truth.size());
    EXPECT_EQ(b->size(), truth.size());
    EXPECT_EQ(c.size(), truth.size());
  }
}

TEST(IntegrationTest, CalibrationHitsTargetCount) {
  const Workload w = Workload::Make(20000, 87);
  Rng rng(88);
  const auto q = MakeQuery(w, 128, &rng);
  QueryParams params{QueryType::kCnsmEd, 0.0, 1.5, 5.0, 0};
  const double target_sel = 1e-3;  // ~20 matches at this scale
  const double eps =
      CalibrateEpsilon(w.series, w.prefix, q, params, target_sel);
  params.epsilon = eps;
  const UcrSuite ucr(w.series, w.prefix);
  const size_t count = ucr.Match(q, params).size();
  const double offsets = static_cast<double>(w.series.size() - 128 + 1);
  const double target = std::max(1.0, std::round(target_sel * offsets));
  EXPECT_GE(static_cast<double>(count), target);
  EXPECT_LE(static_cast<double>(count), target * 3 + 5);
}

TEST(IntegrationTest, Example1Phenomenon) {
  // Reproduces the paper's motivating Example 1 qualitatively: activities
  // with the same normalized shape but different levels collide under NSM
  // (β = ∞) and separate under cNSM (small β). Blocks share one waveform
  // shifted/scaled per activity, so normalization erases the difference.
  Rng rng(89);
  std::vector<double> data;
  std::vector<std::pair<size_t, int>> blocks;  // (offset, activity)
  for (int rep = 0; rep < 10; ++rep) {
    for (int act = 0; act < 4; ++act) {
      blocks.emplace_back(data.size(), act);
      std::vector<double> block(400);
      const double level = 3.0 * act - 4.0;      // offset per activity
      const double amp = 0.5 + 0.25 * act;       // scaling per activity
      for (size_t i = 0; i < block.size(); ++i) {
        block[i] = level +
                   amp * std::sin(2.0 * M_PI * 0.02 *
                                  static_cast<double>(i)) +
                   rng.Gaussian(0.0, 0.02);
      }
      data.insert(data.end(), block.begin(), block.end());
    }
  }
  const TimeSeries x{std::move(data)};
  PrefixStats ps(x);
  const UcrSuite ucr(x, ps);

  // Query: one block of activity 1.
  const auto q = ExtractQuery(x, blocks[1].first + 20, 256, 0.0, &rng);

  // NSM-like: huge β, generous α — finds blocks of several activities.
  QueryParams loose{QueryType::kCnsmEd, 10.0, 100.0, 1000.0, 0};
  const auto all = ucr.Match(q, loose);
  // cNSM: tight mean constraint — only activity-1 blocks remain.
  QueryParams tight{QueryType::kCnsmEd, 10.0, 100.0, 0.5, 0};
  const auto constrained = ucr.Match(q, tight);

  ASSERT_FALSE(constrained.empty());
  EXPECT_GT(all.size(), constrained.size());
  // Every constrained match must lie in an activity-1 block.
  const double q_mean = Mean(std::span<const double>(q));
  for (const auto& match : constrained) {
    const double mean = ps.WindowMean(match.offset, 256);
    EXPECT_LE(std::fabs(mean - q_mean), 0.5 + 1e-9);
  }
}

}  // namespace
}  // namespace kvmatch
