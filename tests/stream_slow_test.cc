// Slow streaming test (ctest label: slow): large match sets pushed
// through the kMatchResponsePart path at several chunk sizes, over real
// sockets, must reassemble byte-identically to the in-process result.
// Kept out of the fast edit loop with `ctest -LE slow`; the default suite
// still runs it.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/client.h"
#include "net/server.h"
#include "service/catalog.h"
#include "service/query_service.h"
#include "storage/mem_kvstore.h"
#include "ts/generator.h"

namespace kvmatch {
namespace net {
namespace {

constexpr size_t kSeriesLen = 200'000;

TEST(StreamSlowTest, LargeMatchSetsReassembleAtEveryChunkSize) {
  MemKvStore store;
  Catalog::Options copts;
  copts.session.wu = 25;
  copts.session.levels = 3;
  Catalog catalog(&store, copts);
  {
    Rng rng(314159);
    ASSERT_TRUE(
        catalog.Ingest("big", GenerateSynthetic(kSeriesLen, &rng)).ok());
  }
  QueryService service(&catalog, {.num_threads = 2});
  catalog.SetStatsRegistry(service.stats_registry());

  // ε = ∞ over a short query: every one of ~200k offsets matches, so the
  // response is far past any sane single-frame comfort zone.
  QueryRequest req;
  req.series = "big";
  req.query.assign(25, 0.0);
  req.params.type = QueryType::kRsmEd;
  req.params.epsilon = 1e12;
  const QueryResponse direct = service.Submit(req).get();
  ASSERT_TRUE(direct.status.ok()) << direct.status.ToString();
  ASSERT_EQ(direct.matches.size(), kSeriesLen - req.query.size() + 1);

  // Chunk sizes from tiny-and-uneven to "one big part"; each server
  // instance streams the same query back and the client's reassembly
  // must be exact. (The pathological chunk=1 case runs on the smaller
  // series below — 200k single-match frames would dominate the suite.)
  for (const size_t chunk : {size_t{977}, size_t{65'536},
                             size_t{1'000'000}}) {
    Server::Options nopts;
    nopts.port = 0;
    nopts.stream_chunk_matches = chunk;
    Server server(&catalog, &service, nopts);
    ASSERT_TRUE(server.Start().ok());

    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    auto streamed = (*client)->Query(req);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    ASSERT_TRUE(streamed->status.ok()) << streamed->status.ToString();
    ASSERT_EQ(streamed->matches, direct.matches) << "chunk=" << chunk;

    // Byte-level identity of the reassembled result payload.
    QueryResponse a = *streamed;
    QueryResponse b = direct;
    a.latency_ms = b.latency_ms = 0.0;
    a.stats = b.stats = MatchStats();
    std::string wire_a, wire_b;
    EncodeQueryResponseBody(a, &wire_a);
    EncodeQueryResponseBody(b, &wire_b);
    ASSERT_EQ(wire_a, wire_b) << "chunk=" << chunk;
    server.Stop();
  }
}

TEST(StreamSlowTest, ChunkOfOneStillInterleavesAcrossPipelinedQueries) {
  // Worst-case chunking with two pipelined streamed queries: tens of
  // thousands of single-match parts for two ids interleave on one
  // connection and must still sort themselves out per id.
  MemKvStore store;
  Catalog::Options copts;
  copts.session.wu = 25;
  copts.session.levels = 3;
  Catalog catalog(&store, copts);
  {
    Rng rng(2718);
    ASSERT_TRUE(
        catalog.Ingest("big", GenerateSynthetic(20'000, &rng)).ok());
  }
  QueryService service(&catalog, {.num_threads = 2});
  Server::Options nopts;
  nopts.port = 0;
  nopts.stream_chunk_matches = 1;
  Server server(&catalog, &service, nopts);
  ASSERT_TRUE(server.Start().ok());

  QueryRequest req;
  req.series = "big";
  req.query.assign(25, 0.0);
  req.params.epsilon = 1e12;
  const QueryResponse direct = service.Submit(req).get();
  ASSERT_TRUE(direct.status.ok());

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto id1 = (*client)->SendRequest(req);
  auto id2 = (*client)->SendRequest(req);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  auto r2 = (*client)->WaitResponse(*id2);
  auto r1 = (*client)->WaitResponse(*id1);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->matches, direct.matches);
  EXPECT_EQ(r2->matches, direct.matches);
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace kvmatch
