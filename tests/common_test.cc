// Unit tests for common/: Status/Result, coding, CRC32C, Rng.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "common/status.h"

namespace kvmatch {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status st = Status::NotFound("missing key");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NotFound: missing key");
}

TEST(StatusTest, EachFactoryMapsToItsCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, 0xffffffff);
  ASSERT_EQ(buf.size(), 16u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 4), 1u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 8), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(buf.data() + 12), 0xffffffffu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x123456789abcdef0ull);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x123456789abcdef0ull);
}

TEST(CodingTest, Varint32RoundTripBoundaries) {
  const uint32_t cases[] = {0, 1, 127, 128, 16383, 16384, (1u << 21) - 1,
                            1u << 21, (1u << 28) - 1, 1u << 28, 0xffffffffu};
  std::string buf;
  for (uint32_t v : cases) PutVarint32(&buf, v);
  std::string_view in(buf);
  for (uint32_t v : cases) {
    uint32_t decoded;
    ASSERT_TRUE(GetVarint32(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint64RoundTripBoundaries) {
  const uint64_t cases[] = {0, 1, 127, 128, (1ull << 35) - 1, 1ull << 35,
                            (1ull << 63), 0xffffffffffffffffull};
  std::string buf;
  for (uint64_t v : cases) PutVarint64(&buf, v);
  std::string_view in(buf);
  for (uint64_t v : cases) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(CodingTest, VarintRejectsTruncation) {
  std::string buf;
  PutVarint32(&buf, 1u << 28);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    uint32_t v;
    EXPECT_FALSE(GetVarint32(&in, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view in(buf);
  std::string_view v;
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v, "");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &v));
  EXPECT_EQ(v.size(), 1000u);
}

TEST(CodingTest, DoubleRoundTrip) {
  const double cases[] = {0.0, -0.0, 1.5, -1.5, 1e300, -1e300,
                          std::numeric_limits<double>::infinity()};
  for (double v : cases) {
    std::string buf;
    PutDouble(&buf, v);
    EXPECT_EQ(DecodeDouble(buf.data()), v);
  }
}

TEST(CodingTest, OrderedDoublePreservesOrder) {
  std::vector<double> values = {-1e300, -42.5, -1.0, -1e-10, 0.0,
                                1e-10,  1.0,   42.5, 1e300};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(EncodeOrderedDouble(values[i]),
              EncodeOrderedDouble(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(CodingTest, OrderedDoubleRoundTrip) {
  const double cases[] = {-123.456, -1.0, 0.0, 0.5, 7.25, 9e99};
  for (double v : cases) {
    EXPECT_EQ(DecodeOrderedDouble(EncodeOrderedDouble(v)), v);
  }
}

TEST(CodingTest, OrderedDoubleRandomizedOrderProperty) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.Uniform(-1e6, 1e6);
    const double b = rng.Uniform(-1e6, 1e6);
    EXPECT_EQ(a < b, EncodeOrderedDouble(a) < EncodeOrderedDouble(b));
  }
}

TEST(Crc32cTest, KnownValueStability) {
  // Self-consistency: value depends only on content.
  const uint32_t c1 = crc32c::Value("hello world");
  const uint32_t c2 = crc32c::Value(std::string("hello world"));
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, crc32c::Value("hello worlc"));
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = crc32c::Value(data);
  const uint32_t split =
      crc32c::Extend(crc32c::Value(data.substr(0, 10)),
                     data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  const uint32_t crc = crc32c::Value("payload");
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
  EXPECT_NE(crc32c::Mask(crc), crc);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-5.0, 5.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

}  // namespace
}  // namespace kvmatch
