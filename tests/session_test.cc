// Tests for the Session facade: in-memory, ingest, reopen, query types,
// top-k, and the exploratory re-tuning loop.
#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "matchdp/session.h"
#include "storage/mem_kvstore.h"
#include "storage/minikv.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

namespace fs = std::filesystem;

Session::Options SmallOptions() {
  Session::Options options;
  options.wu = 25;
  options.levels = 3;
  return options;
}

TEST(SessionTest, FromSeriesAnswersAllQueryTypes) {
  Rng rng(501);
  TimeSeries x = GenerateSynthetic(6000, &rng);
  const TimeSeries reference = x;  // session takes ownership
  auto session = Session::FromSeries(std::move(x), SmallOptions());
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->num_indexes(), 3u);
  EXPECT_GT((*session)->IndexBytes(), 0u);

  const auto q = ExtractQuery(reference, 2000, 150, 0.2, &rng);
  for (QueryType type : {QueryType::kRsmEd, QueryType::kRsmDtw,
                         QueryType::kCnsmEd, QueryType::kCnsmDtw}) {
    QueryParams params{type, 3.5, 1.5, 3.0, 5};
    const auto expected = BruteForceMatch(reference, q, params);
    MatchStats stats;
    auto got = (*session)->Query(q, params, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), expected.size())
        << "type=" << static_cast<int>(type);
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].offset, expected[i].offset);
    }
  }
}

TEST(SessionTest, SeriesTooShortRejected) {
  TimeSeries tiny(std::vector<double>(10, 1.0));
  auto session = Session::FromSeries(std::move(tiny), SmallOptions());
  EXPECT_FALSE(session.ok());
}

TEST(SessionTest, IngestThenOpenRoundTrip) {
  Rng rng(502);
  TimeSeries x = GenerateUcrLike(8000, &rng);
  const TimeSeries reference = x;
  MemKvStore store;
  {
    auto ingested = Session::Ingest(&store, std::move(x), SmallOptions());
    ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  }
  auto session = Session::Open(&store, SmallOptions());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ((*session)->series().values(), reference.values());

  const auto q = ExtractQuery(reference, 3000, 200, 0.1, &rng);
  QueryParams params{QueryType::kCnsmEd, 3.0, 1.5, 2.0, 0};
  const auto expected = BruteForceMatch(reference, q, params);
  MatchStats stats;
  auto got = (*session)->Query(q, params, &stats);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), expected.size());
  // Store-backed probes actually read from the store.
  EXPECT_GT(stats.probe.bytes_fetched + stats.probe.cache_hits, 0u);
}

TEST(SessionTest, OpenOverMiniKvSurvivesCompaction) {
  Rng rng(503);
  TimeSeries x = GenerateSynthetic(6000, &rng);
  const TimeSeries reference = x;
  const std::string dir =
      (fs::temp_directory_path() / "kvm_session_minikv").string();
  fs::remove_all(dir);
  auto kv = MiniKv::Open(dir);
  ASSERT_TRUE(kv.ok());
  {
    auto ingested = Session::Ingest(kv->get(), std::move(x), SmallOptions());
    ASSERT_TRUE(ingested.ok());
  }
  ASSERT_TRUE((*kv)->Compact().ok());
  auto session = Session::Open(kv->get(), SmallOptions());
  ASSERT_TRUE(session.ok());
  const auto q = ExtractQuery(reference, 1000, 100, 0.2, &rng);
  QueryParams params{QueryType::kRsmEd, 4.0, 1.0, 0.0, 0};
  const auto expected = BruteForceMatch(reference, q, params);
  auto got = (*session)->Query(q, params);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), expected.size());
  fs::remove_all(dir);
}

TEST(SessionTest, OpenWithoutIngestFails) {
  MemKvStore empty;
  auto session = Session::Open(&empty, SmallOptions());
  EXPECT_FALSE(session.ok());
}

TEST(SessionTest, TopKMatchesThresholdSemantics) {
  Rng rng(504);
  TimeSeries x = GenerateSynthetic(6000, &rng);
  const TimeSeries reference = x;
  auto session = Session::FromSeries(std::move(x), SmallOptions());
  ASSERT_TRUE(session.ok());
  const auto q = ExtractQuery(reference, 2500, 150, 0.3, &rng);
  QueryParams params{QueryType::kRsmEd, 0.0, 1.0, 0.0, 0};
  auto top = (*session)->QueryTopK(q, params, 8);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 8u);
  // Distances are sorted and each result is a genuine ε-match at its own
  // distance.
  for (size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE((*top)[i].distance, (*top)[i - 1].distance);
  }
  params.epsilon = (*top)[7].distance + 1e-9;
  const auto all = BruteForceMatch(reference, q, params);
  EXPECT_GE(all.size(), 8u);
}

TEST(SessionTest, ExploratoryRetuningLoop) {
  // The paper's pitch: one index, interactive knob turning. Tighten β
  // progressively and observe a monotone shrinking result set.
  Rng rng(505);
  TimeSeries x = GenerateSynthetic(8000, &rng);
  const TimeSeries reference = x;
  auto session = Session::FromSeries(std::move(x), SmallOptions());
  ASSERT_TRUE(session.ok());
  const auto q = ExtractQuery(reference, 4000, 200, 0.3, &rng);
  size_t prev = SIZE_MAX;
  for (double beta : {10.0, 5.0, 2.0, 0.5}) {
    QueryParams params{QueryType::kCnsmEd, 4.0, 1.5, beta, 0};
    auto got = (*session)->Query(q, params);
    ASSERT_TRUE(got.ok());
    EXPECT_LE(got->size(), prev) << "beta=" << beta;
    prev = got->size();
  }
}

}  // namespace
}  // namespace kvmatch
