// Unit + property tests for index/interval: the window-interval algebra
// that Algorithm 1 is built on. Property tests compare against a naive
// position-set implementation.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "index/interval.h"

namespace kvmatch {
namespace {

std::set<int64_t> ToSet(const IntervalList& list) {
  std::set<int64_t> out;
  for (const auto& wi : list.intervals()) {
    for (int64_t p = wi.l; p <= wi.r; ++p) out.insert(p);
  }
  return out;
}

IntervalList FromSet(const std::set<int64_t>& s) {
  IntervalList out;
  for (int64_t p : s) out.AppendPosition(p);
  return out;
}

IntervalList RandomList(Rng* rng, int64_t universe, double density) {
  std::set<int64_t> s;
  for (int64_t p = 0; p < universe; ++p) {
    if (rng->NextDouble() < density) s.insert(p);
  }
  return FromSet(s);
}

TEST(IntervalTest, AppendPositionCoalescesAdjacent) {
  IntervalList list;
  list.AppendPosition(1);
  list.AppendPosition(2);
  list.AppendPosition(3);
  list.AppendPosition(7);
  ASSERT_EQ(list.num_intervals(), 2u);
  EXPECT_EQ(list[0], (WindowInterval{1, 3}));
  EXPECT_EQ(list[1], (WindowInterval{7, 7}));
  EXPECT_EQ(list.num_positions(), 4);
}

TEST(IntervalTest, AppendDuplicatePositionIsIdempotent) {
  IntervalList list;
  list.AppendPosition(5);
  list.AppendPosition(5);
  EXPECT_EQ(list.num_intervals(), 1u);
  EXPECT_EQ(list.num_positions(), 1);
}

TEST(IntervalTest, AppendIntervalMergesOverlap) {
  IntervalList list;
  list.AppendInterval({1, 5});
  list.AppendInterval({4, 8});  // overlaps
  ASSERT_EQ(list.num_intervals(), 1u);
  EXPECT_EQ(list[0], (WindowInterval{1, 8}));
  EXPECT_EQ(list.num_positions(), 8);
}

TEST(IntervalTest, ContainsBinarySearch) {
  IntervalList list;
  list.AppendInterval({2, 4});
  list.AppendInterval({10, 10});
  list.AppendInterval({20, 29});
  EXPECT_FALSE(list.Contains(1));
  EXPECT_TRUE(list.Contains(2));
  EXPECT_TRUE(list.Contains(4));
  EXPECT_FALSE(list.Contains(5));
  EXPECT_TRUE(list.Contains(10));
  EXPECT_FALSE(list.Contains(11));
  EXPECT_TRUE(list.Contains(25));
  EXPECT_FALSE(list.Contains(30));
}

TEST(IntervalTest, UnionAgainstNaiveSets) {
  Rng rng(21);
  for (int t = 0; t < 50; ++t) {
    const auto a = RandomList(&rng, 200, 0.2);
    const auto b = RandomList(&rng, 200, 0.2);
    const auto u = IntervalList::Union(a, b);
    std::set<int64_t> expected = ToSet(a);
    const auto sb = ToSet(b);
    expected.insert(sb.begin(), sb.end());
    EXPECT_EQ(ToSet(u), expected);
    EXPECT_EQ(u, FromSet(expected)) << "canonical form";
  }
}

TEST(IntervalTest, IntersectAgainstNaiveSets) {
  Rng rng(22);
  for (int t = 0; t < 50; ++t) {
    const auto a = RandomList(&rng, 200, 0.4);
    const auto b = RandomList(&rng, 200, 0.4);
    const auto x = IntervalList::Intersect(a, b);
    const auto sa = ToSet(a);
    const auto sb = ToSet(b);
    std::set<int64_t> expected;
    for (int64_t p : sa) {
      if (sb.count(p)) expected.insert(p);
    }
    EXPECT_EQ(ToSet(x), expected);
    EXPECT_EQ(x, FromSet(expected)) << "canonical form";
  }
}

TEST(IntervalTest, IntersectWithSelfIsIdentity) {
  Rng rng(23);
  const auto a = RandomList(&rng, 300, 0.3);
  EXPECT_EQ(IntervalList::Intersect(a, a), a);
}

TEST(IntervalTest, UnionWithEmptyIsIdentity) {
  Rng rng(24);
  const auto a = RandomList(&rng, 100, 0.3);
  const IntervalList empty;
  EXPECT_EQ(IntervalList::Union(a, empty), a);
  EXPECT_EQ(IntervalList::Union(empty, a), a);
  EXPECT_TRUE(IntervalList::Intersect(a, empty).empty());
}

TEST(IntervalTest, ShiftLeftAgainstNaive) {
  Rng rng(25);
  for (int64_t delta : {0, 1, 7, 50}) {
    const auto a = RandomList(&rng, 150, 0.25);
    const auto shifted = a.ShiftLeft(delta);
    std::set<int64_t> expected;
    for (int64_t p : ToSet(a)) {
      if (p - delta >= 0) expected.insert(p - delta);
    }
    EXPECT_EQ(ToSet(shifted), expected) << "delta=" << delta;
  }
}

TEST(IntervalTest, ShiftLeftClampsAtZero) {
  IntervalList a;
  a.AppendInterval({3, 10});
  const auto shifted = a.ShiftLeft(5);
  ASSERT_EQ(shifted.num_intervals(), 1u);
  EXPECT_EQ(shifted[0], (WindowInterval{0, 5}));
}

TEST(IntervalTest, ShiftLeftDropsFullyNegative) {
  IntervalList a;
  a.AppendInterval({1, 3});
  a.AppendInterval({100, 110});
  const auto shifted = a.ShiftLeft(50);
  ASSERT_EQ(shifted.num_intervals(), 1u);
  EXPECT_EQ(shifted[0], (WindowInterval{50, 60}));
}

TEST(IntervalTest, EncodeDecodeRoundTrip) {
  Rng rng(26);
  for (int t = 0; t < 30; ++t) {
    const auto a = RandomList(&rng, 500, 0.1);
    std::string buf;
    a.EncodeTo(&buf);
    std::string_view in(buf);
    IntervalList decoded;
    ASSERT_TRUE(IntervalList::DecodeFrom(&in, &decoded));
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded, a);
    EXPECT_EQ(decoded.num_positions(), a.num_positions());
  }
}

TEST(IntervalTest, DecodeRejectsTruncation) {
  IntervalList a;
  a.AppendInterval({100, 200});
  a.AppendInterval({300, 400});
  std::string buf;
  a.EncodeTo(&buf);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    IntervalList decoded;
    EXPECT_FALSE(IntervalList::DecodeFrom(&in, &decoded)) << "cut=" << cut;
  }
}

TEST(IntervalTest, DeltaEncodingIsCompact) {
  // 1000 consecutive positions encode as one interval: a handful of bytes.
  IntervalList a;
  a.AppendInterval({1000000, 1000999});
  std::string buf;
  a.EncodeTo(&buf);
  EXPECT_LT(buf.size(), 10u);
}

TEST(IntervalTest, CountsTrackAlgebra) {
  Rng rng(27);
  const auto a = RandomList(&rng, 400, 0.15);
  const auto b = RandomList(&rng, 400, 0.15);
  const auto u = IntervalList::Union(a, b);
  const auto x = IntervalList::Intersect(a, b);
  EXPECT_EQ(static_cast<size_t>(u.num_positions()), ToSet(u).size());
  EXPECT_EQ(static_cast<size_t>(x.num_positions()), ToSet(x).size());
  // Inclusion-exclusion on position counts.
  EXPECT_EQ(u.num_positions() + x.num_positions(),
            a.num_positions() + b.num_positions());
}

}  // namespace
}  // namespace kvmatch
