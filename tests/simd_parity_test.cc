// Scalar-vs-AVX2 parity for the dispatch-tier verify kernels, plus the
// per-candidate cancellation contract.
//
// The kernel layer promises *bitwise* cross-tier determinism (see
// distance/simd/kernels.h): both tiers implement the same canonical 8-lane
// algorithm with a fixed reduction tree, unfused arithmetic and block
// checkpoints. These tests hold it to that — EXPECT_EQ on raw bit
// patterns, not EXPECT_NEAR — across random lengths, unaligned bases,
// IEEE specials, and early-abandon thresholds at every checkpoint. On
// hardware without AVX2 (or under KVMATCH_FORCE_SCALAR) the cross-tier
// suites skip and the scalar-only suites still run.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/rng.h"
#include "distance/dtw.h"
#include "distance/ed.h"
#include "distance/envelope.h"
#include "distance/simd/kernels.h"
#include "match/verifier.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> RandomSeries(size_t n, Rng* rng, double lo = -5,
                                 double hi = 5) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->Uniform(lo, hi);
  return v;
}

/// Bitwise equality: distinguishes +0/-0 and compares NaN payloads, which
/// is exactly the cross-tier determinism the kernel layer promises.
::testing::AssertionResult BitEq(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  if (ba == bb) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << ba << ") != " << b << " (0x" << bb
         << ")";
}

const simd::Kernels& Scalar() { return simd::ScalarKernels(); }

/// Null when this machine cannot run the AVX2 tier.
const simd::Kernels* Avx2() { return simd::Avx2KernelsOrNull(); }

#define SKIP_WITHOUT_AVX2()                                         \
  do {                                                              \
    if (Avx2() == nullptr) {                                        \
      GTEST_SKIP() << "AVX2 tier unavailable on this machine";      \
    }                                                               \
  } while (0)

// Lengths that cover the unroll edge cases: below one lane group, exact
// multiples of 8, straddling the 64-element checkpoint, and a large prime.
const size_t kLengths[] = {1,  2,  7,  8,  9,   15,  16,  63,   64,
                           65, 96, 127, 128, 511, 512, 1023, 4097};

TEST(SimdParityTest, SquaredEdRandomLengths) {
  SKIP_WITHOUT_AVX2();
  Rng rng(11);
  for (size_t n : kLengths) {
    const auto a = RandomSeries(n, &rng);
    const auto b = RandomSeries(n, &rng);
    EXPECT_TRUE(BitEq(Scalar().squared_ed(a.data(), b.data(), n, kInf),
                      Avx2()->squared_ed(a.data(), b.data(), n, kInf)))
        << "n=" << n;
  }
}

TEST(SimdParityTest, SquaredEdUnalignedBases) {
  SKIP_WITHOUT_AVX2();
  Rng rng(12);
  const size_t n = 257;
  const auto a = RandomSeries(n + 8, &rng);
  const auto b = RandomSeries(n + 8, &rng);
  for (size_t off = 0; off < 8; ++off) {
    EXPECT_TRUE(
        BitEq(Scalar().squared_ed(a.data() + off, b.data() + off, n, kInf),
              Avx2()->squared_ed(a.data() + off, b.data() + off, n, kInf)))
        << "offset=" << off;
  }
}

TEST(SimdParityTest, SquaredEdAbandonAtEveryCheckpoint) {
  SKIP_WITHOUT_AVX2();
  Rng rng(13);
  const size_t n = 333;  // several checkpoints plus a ragged tail
  const auto a = RandomSeries(n, &rng);
  const auto b = RandomSeries(n, &rng);
  const double total = Scalar().squared_ed(a.data(), b.data(), n, kInf);
  // Thresholds swept across the whole accumulation range, including exact
  // partial sums (abandon-boundary hits) and their ulp neighbours.
  std::vector<double> thresholds = {0.0, total, std::nextafter(total, 0.0)};
  for (int i = 1; i <= 40; ++i) {
    const double t = total * (static_cast<double>(i) / 40.0);
    thresholds.push_back(t);
    thresholds.push_back(std::nextafter(t, 0.0));
    thresholds.push_back(std::nextafter(t, kInf));
  }
  for (double thr : thresholds) {
    const double ds = Scalar().squared_ed(a.data(), b.data(), n, thr);
    const double dv = Avx2()->squared_ed(a.data(), b.data(), n, thr);
    EXPECT_TRUE(BitEq(ds, dv)) << "threshold=" << thr;
  }
}

TEST(SimdParityTest, SquaredEdSpecialValues) {
  SKIP_WITHOUT_AVX2();
  Rng rng(14);
  for (size_t n : {16u, 67u, 250u}) {
    auto a = RandomSeries(n, &rng);
    auto b = RandomSeries(n, &rng);
    a[n / 3] = 0.0;
    b[n / 3] = -0.0;
    a[n / 2] = 4.9406564584124654e-324;   // smallest denormal
    b[n / 2] = -2.2250738585072014e-308;  // -DBL_MIN
    a[n - 1] = std::numeric_limits<double>::quiet_NaN();
    const double ds = Scalar().squared_ed(a.data(), b.data(), n, kInf);
    const double dv = Avx2()->squared_ed(a.data(), b.data(), n, kInf);
    EXPECT_TRUE(std::isnan(ds)) << "NaN must propagate, n=" << n;
    EXPECT_TRUE(BitEq(ds, dv)) << "n=" << n;
    // A NaN running sum never compares greater than a threshold, so both
    // tiers must also agree under a finite threshold.
    EXPECT_TRUE(BitEq(Scalar().squared_ed(a.data(), b.data(), n, 1.0),
                      Avx2()->squared_ed(a.data(), b.data(), n, 1.0)));
  }
}

TEST(SimdParityTest, ReorderedZnormEd) {
  SKIP_WITHOUT_AVX2();
  Rng rng(15);
  for (size_t n : kLengths) {
    const auto s = RandomSeries(n, &rng);
    const auto q = RandomSeries(n, &rng);
    const auto order = SortedAbsOrder(q);
    std::vector<double> q_ordered(n);
    for (size_t i = 0; i < n; ++i) {
      q_ordered[i] = q[static_cast<size_t>(order[i])];
    }
    const double mean = 0.25, inv_std = 1.75;
    const double total = Scalar().squared_ed_znorm_ordered(
        s.data(), order.data(), q_ordered.data(), n, mean, inv_std, kInf);
    for (double thr : {kInf, total, total * 0.5, total * 0.03125}) {
      EXPECT_TRUE(BitEq(
          Scalar().squared_ed_znorm_ordered(s.data(), order.data(),
                                            q_ordered.data(), n, mean,
                                            inv_std, thr),
          Avx2()->squared_ed_znorm_ordered(s.data(), order.data(),
                                           q_ordered.data(), n, mean,
                                           inv_std, thr)))
          << "n=" << n << " thr=" << thr;
    }
  }
}

TEST(SimdParityTest, L1) {
  SKIP_WITHOUT_AVX2();
  Rng rng(16);
  for (size_t n : kLengths) {
    auto a = RandomSeries(n, &rng);
    const auto b = RandomSeries(n, &rng);
    if (n > 4) a[n / 4] = -0.0;
    const double total = Scalar().l1(a.data(), b.data(), n, kInf);
    for (double thr : {kInf, total, total * 0.5}) {
      EXPECT_TRUE(BitEq(Scalar().l1(a.data(), b.data(), n, thr),
                        Avx2()->l1(a.data(), b.data(), n, thr)))
          << "n=" << n << " thr=" << thr;
    }
  }
}

TEST(SimdParityTest, LbKeoghWithAndWithoutCb) {
  SKIP_WITHOUT_AVX2();
  Rng rng(17);
  for (size_t n : kLengths) {
    const auto s = RandomSeries(n, &rng);
    const auto q = RandomSeries(n, &rng);
    const Envelope env = BuildEnvelope(q, n / 10);
    std::vector<double> cb_s(n, -1.0), cb_v(n, -1.0);
    const double ls = Scalar().lb_keogh(s.data(), env.lower.data(),
                                        env.upper.data(), n, kInf,
                                        cb_s.data());
    const double lv = Avx2()->lb_keogh(s.data(), env.lower.data(),
                                       env.upper.data(), n, kInf,
                                       cb_v.data());
    EXPECT_TRUE(BitEq(ls, lv)) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEq(cb_s[i], cb_v[i])) << "n=" << n << " i=" << i;
    }
    // Abandoning form (cb == nullptr) at a mid-range threshold.
    for (double thr : {kInf, ls, ls * 0.25}) {
      EXPECT_TRUE(BitEq(Scalar().lb_keogh(s.data(), env.lower.data(),
                                          env.upper.data(), n, thr, nullptr),
                        Avx2()->lb_keogh(s.data(), env.lower.data(),
                                         env.upper.data(), n, thr, nullptr)))
          << "n=" << n << " thr=" << thr;
    }
  }
}

TEST(SimdParityTest, Znormalize) {
  SKIP_WITHOUT_AVX2();
  Rng rng(18);
  for (size_t n : kLengths) {
    const auto s = RandomSeries(n, &rng);
    std::vector<double> out_s(n), out_v(n);
    Scalar().znormalize(s.data(), n, 1.5, 0.7, out_s.data());
    Avx2()->znormalize(s.data(), n, 1.5, 0.7, out_v.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(BitEq(out_s[i], out_v[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdParityTest, RollingMeanStdMatchesPrefixStatsBitwise) {
  SKIP_WITHOUT_AVX2();
  Rng rng(19);
  const size_t n = 3000, m = 128;
  const auto xs = RandomSeries(n, &rng);
  const PrefixStats ps{std::span<const double>(xs)};
  const size_t count = n - m + 1;
  std::vector<double> mean_s(count), std_s(count), mean_v(count),
      std_v(count);
  Scalar().rolling_mean_std(ps.prefix_sums().data(),
                            ps.prefix_squares().data(), count, m,
                            mean_s.data(), std_s.data());
  Avx2()->rolling_mean_std(ps.prefix_sums().data(),
                           ps.prefix_squares().data(), count, m,
                           mean_v.data(), std_v.data());
  for (size_t k = 0; k < count; ++k) {
    const MeanStd ref = ps.WindowMeanStd(k, m);
    ASSERT_TRUE(BitEq(mean_s[k], ref.mean)) << "k=" << k;
    ASSERT_TRUE(BitEq(std_s[k], ref.std)) << "k=" << k;
    ASSERT_TRUE(BitEq(mean_v[k], ref.mean)) << "k=" << k;
    ASSERT_TRUE(BitEq(std_v[k], ref.std)) << "k=" << k;
  }
}

// ---- Dispatch plumbing ----

TEST(SimdDispatchTest, ForceScalarEnvParsing) {
  EXPECT_FALSE(simd::ForceScalarValue(nullptr));
  EXPECT_FALSE(simd::ForceScalarValue(""));
  EXPECT_FALSE(simd::ForceScalarValue("0"));
  EXPECT_FALSE(simd::ForceScalarValue("false"));
  EXPECT_FALSE(simd::ForceScalarValue("off"));
  EXPECT_FALSE(simd::ForceScalarValue("no"));
  EXPECT_TRUE(simd::ForceScalarValue("1"));
  EXPECT_TRUE(simd::ForceScalarValue("true"));
  EXPECT_TRUE(simd::ForceScalarValue("yes"));
}

TEST(SimdDispatchTest, ForcedScalarRoundTrip) {
  EXPECT_EQ(simd::Dispatch(true).tier, simd::Tier::kScalar);
  if (Avx2() != nullptr) {
    EXPECT_EQ(simd::Dispatch(false).tier, simd::Tier::kAvx2);
  } else {
    EXPECT_EQ(simd::Dispatch(false).tier, simd::Tier::kScalar);
  }
  // The process-wide table honours the environment override (this is the
  // assertion the KVMATCH_FORCE_SCALAR=1 CI leg flips).
  if (simd::ForceScalarValue(std::getenv("KVMATCH_FORCE_SCALAR"))) {
    EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  } else {
    EXPECT_EQ(&simd::ActiveKernels(), &simd::Dispatch(false));
  }
}

TEST(SimdDispatchTest, TierNames) {
  EXPECT_STREQ(simd::TierName(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::TierName(simd::Tier::kAvx2), "avx2");
}

TEST(SimdDispatchTest, AlignedBufferAlignment) {
  simd::AlignedBuffer buf;
  for (size_t n : {1u, 17u, 1000u}) {
    double* p = buf.Resize(n);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
    p[0] = 1.0;
    p[n - 1] = 2.0;  // touch both ends under ASan
  }
}

// ---- Verifier-level parity: identical matches AND identical counters ----

struct VerifierFixture {
  TimeSeries series;
  PrefixStats prefix;
  std::vector<double> q;
  IntervalList cs;

  explicit VerifierFixture(size_t n = 20'000, size_t m = 128) {
    Rng rng(23);
    std::vector<double> xs(n);
    double v = 0.0;
    for (auto& x : xs) {
      v += rng.Uniform(-0.5, 0.5);
      x = v;
    }
    series = TimeSeries(std::move(xs));
    prefix = PrefixStats(series);
    const size_t at = n / 3;
    q.assign(series.values().begin() + at, series.values().begin() + at + m);
    for (auto& x : q) x += rng.Uniform(-0.05, 0.05);
    cs.AppendInterval({0, static_cast<int64_t>(n - m)});
  }
};

QueryParams ParamsFor(QueryType type, size_t m) {
  QueryParams p;
  p.type = type;
  p.rho = m / 16;
  switch (type) {
    case QueryType::kRsmEd:
      p.epsilon = 3.0;
      break;
    case QueryType::kRsmDtw:
      p.epsilon = 2.5;
      break;
    case QueryType::kCnsmEd:
      p.epsilon = 4.0;
      p.alpha = 1.5;
      p.beta = 2.0;
      break;
    case QueryType::kCnsmDtw:
      p.epsilon = 3.5;
      p.alpha = 1.5;
      p.beta = 2.0;
      break;
    case QueryType::kRsmL1:
      p.epsilon = 20.0;
      break;
  }
  return p;
}

TEST(SimdVerifierParityTest, AllQueryTypesIdenticalAcrossTiers) {
  SKIP_WITHOUT_AVX2();
  const VerifierFixture f;
  const Verifier verifier(f.series, f.prefix);
  for (QueryType type :
       {QueryType::kRsmEd, QueryType::kRsmDtw, QueryType::kCnsmEd,
        QueryType::kCnsmDtw, QueryType::kRsmL1}) {
    const QueryParams params = ParamsFor(type, f.q.size());
    for (size_t block : {1u, 7u, 512u}) {
      VerifyOptions scalar_opts, avx2_opts;
      scalar_opts.kernels = &Scalar();
      scalar_opts.block_candidates = block;
      avx2_opts.kernels = Avx2();
      avx2_opts.block_candidates = block;
      MatchStats stats_s, stats_v;
      const auto rs = verifier.Verify(f.q, params, f.cs, &stats_s,
                                      scalar_opts);
      const auto rv = verifier.Verify(f.q, params, f.cs, &stats_v, avx2_opts);
      ASSERT_EQ(rs.size(), rv.size())
          << "type=" << static_cast<int>(type) << " block=" << block;
      for (size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(rs[i].offset, rv[i].offset);
        EXPECT_TRUE(BitEq(rs[i].distance, rv[i].distance));
      }
      // Bit-identical accept/reject implies bit-identical prune counters.
      EXPECT_EQ(stats_s.distance_calls, stats_v.distance_calls);
      EXPECT_EQ(stats_s.lb_pruned, stats_v.lb_pruned);
      EXPECT_EQ(stats_s.constraint_pruned, stats_v.constraint_pruned);
      EXPECT_FALSE(rs.empty())
          << "fixture should produce at least the planted match";
    }
  }
}

TEST(SimdVerifierParityTest, BlockSizeInvariant) {
  // Blocking is a layout decision; the result must not depend on it.
  const VerifierFixture f;
  const Verifier verifier(f.series, f.prefix);
  const QueryParams params = ParamsFor(QueryType::kCnsmEd, f.q.size());
  VerifyOptions base;
  base.block_candidates = 512;
  MatchStats stats_base;
  const auto expect = verifier.Verify(f.q, params, f.cs, &stats_base, base);
  for (size_t block : {1u, 3u, 64u, 100'000u}) {
    VerifyOptions opts;
    opts.block_candidates = block;
    MatchStats stats;
    const auto got = verifier.Verify(f.q, params, f.cs, &stats, opts);
    ASSERT_EQ(got.size(), expect.size()) << "block=" << block;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].offset, expect[i].offset);
      EXPECT_TRUE(BitEq(got[i].distance, expect[i].distance));
    }
    EXPECT_EQ(stats.distance_calls, stats_base.distance_calls);
  }
}

// ---- Per-candidate cancellation ----

TEST(MidCandidateCancelTest, DtwDistanceObservesPreCancelledToken) {
  // A token cancelled before the DP starts aborts within the first
  // kDtwCancelRows rows — microseconds, even for a pathological band.
  Rng rng(29);
  const size_t m = 16'384;
  const auto a = RandomSeries(m, &rng);
  const auto b = RandomSeries(m, &rng);
  CancelToken token;
  token.Cancel();
  const auto t0 = std::chrono::steady_clock::now();
  const double d = DtwDistance(a, b, /*rho=*/4096, kInf, {}, &token);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(d, kInf);
  // ~134M band cells would take seconds; the bail-out is bounded by one
  // cancel-check stride (16 rows ≈ 131k cells).
  EXPECT_LT(ms, 500.0);
}

TEST(MidCandidateCancelTest, VerifierAbortsInsideExpensiveDtwCandidate) {
  // One slice whose candidates each run a pathologically expensive banded
  // DTW (lower bounds disabled, ε huge so nothing abandons). A cancel
  // landing mid-slice must surface within a bounded number of row
  // operations — NOT after the slice finishes — with the partial stats of
  // the candidates that did complete.
  Rng rng(31);
  const size_t m = 4096;
  const size_t n = m + 64;
  const auto xs = RandomSeries(n, &rng);
  const TimeSeries series{std::vector<double>(xs)};
  const PrefixStats prefix(series);
  const Verifier verifier(series, prefix);
  const std::vector<double> q = RandomSeries(m, &rng);

  QueryParams params;
  params.type = QueryType::kRsmDtw;
  params.rho = 1024;         // ~8.4M band cells per candidate
  params.epsilon = 1e9;      // nothing abandons: full DP every time
  VerifyOptions options;
  options.use_lb_kim = false;
  options.use_lb_keogh = false;

  IntervalList cs;
  cs.AppendInterval({0, static_cast<int64_t>(n - m)});  // 65 candidates

  CancelToken token;
  ExecContext ctx;
  ctx.cancel = &token;

  std::vector<MatchResult> results;
  MatchStats stats;
  Status st = Status::OK();
  std::thread worker([&] {
    st = verifier.VerifyCancellable(q, params, cs, ctx, &results, &stats,
                                    options);
  });
  // Land the cancel mid-verify: one candidate costs tens of ms, the whole
  // slice seconds. 30ms is deep inside the first few candidates.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto cancel_t0 = std::chrono::steady_clock::now();
  token.Cancel();
  worker.join();
  const double react_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - cancel_t0)
                              .count();

  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  // Bounded reaction: at most ~one kDtwCancelRows stride plus scheduling
  // noise — far less than even a single candidate's full DP.
  EXPECT_LT(react_ms, 1'000.0);
  // Partial stats intact: whatever completed before the cancel is
  // reported, and never more than the full candidate set.
  EXPECT_LE(stats.distance_calls, 65u);
  EXPECT_EQ(stats.lb_pruned, 0u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LT(results[i - 1].offset, results[i].offset);
  }
}

TEST(MidCandidateCancelTest, PreCancelledContextReportsNoWork) {
  const VerifierFixture f;
  const Verifier verifier(f.series, f.prefix);
  const QueryParams params = ParamsFor(QueryType::kRsmEd, f.q.size());
  CancelToken token;
  token.Cancel();
  ExecContext ctx;
  ctx.cancel = &token;
  std::vector<MatchResult> results;
  MatchStats stats;
  const Status st =
      verifier.VerifyCancellable(f.q, params, f.cs, ctx, &results, &stats);
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.distance_calls, 0u);
}

}  // namespace
}  // namespace kvmatch
