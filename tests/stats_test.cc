// Unit tests for the observability layer: the log-bucketed
// LatencyHistogram (bucket math, percentile accuracy against exact
// sorted samples, lock-free multi-threaded recording) and the
// StatsRegistry's Prometheus exposition (every line must parse as
// `name{labels} value`, the histogram must emit a well-formed
// cumulative `_bucket` series, and per-series ingest volume must be
// attributed to the right series).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "service/service_stats.h"

namespace kvmatch {
namespace {

// ------------------------------------------------------------ histogram

TEST(HistogramTest, BucketBoundsAreMonotonicAndConsistent) {
  double prev = 0.0;
  for (size_t i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const double upper = LatencyHistogram::BucketUpperBoundMs(i);
    EXPECT_GT(upper, prev) << "bucket " << i;
    // A value exactly at the bound belongs to this bucket; just above
    // belongs to a later one.
    EXPECT_EQ(LatencyHistogram::BucketIndex(upper), i);
    EXPECT_GT(LatencyHistogram::BucketIndex(upper * 1.0001), i);
    prev = upper;
  }
  EXPECT_TRUE(std::isinf(LatencyHistogram::BucketUpperBoundMs(
      LatencyHistogram::kNumBuckets - 1)));
}

TEST(HistogramTest, DegenerateValuesLandSomewhereSane) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(-5.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e18),
            LatencyHistogram::kNumBuckets - 1);

  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());  // dropped
  h.Record(1e18);
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 2u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[LatencyHistogram::kNumBuckets - 1], 1u);
}

TEST(HistogramTest, SnapshotTracksExactExtremaAndMean) {
  LatencyHistogram h;
  const double values[] = {3.0, 0.25, 12.5, 0.25, 7.75};
  double sum = 0.0;
  for (double v : values) {
    h.Record(v);
    sum += v;
  }
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 5u);
  EXPECT_DOUBLE_EQ(snap.min_ms, 0.25);
  EXPECT_DOUBLE_EQ(snap.max_ms, 12.5);
  // sum_ms goes through integer nanoseconds: exact to ~1e-6 ms.
  EXPECT_NEAR(snap.sum_ms, sum, 1e-5);
  EXPECT_NEAR(snap.MeanMs(), sum / 5.0, 1e-5);
}

TEST(HistogramTest, EmptyHistogramReportsZeroes) {
  LatencyHistogram h;
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_EQ(snap.MeanMs(), 0.0);
}

// The core accuracy claim: bucketed percentiles stay within one bucket
// width (~9%, we allow 10%) of the exact sorted-sample percentile, for a
// latency-shaped (log-uniform) distribution.
TEST(HistogramTest, PercentilesTrackExactSortedSamples) {
  Rng rng(42);
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    // Log-uniform over [0.05 ms, 5 s]: every decade equally likely, the
    // shape real latency tails take.
    const double v = 0.05 * std::pow(10.0, rng.Uniform(0.0, 5.0));
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const auto snap = h.TakeSnapshot();
  ASSERT_EQ(snap.total, samples.size());
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double exact =
        samples[static_cast<size_t>(q * (samples.size() - 1))];
    const double est = snap.Percentile(q);
    EXPECT_NEAR(est, exact, 0.10 * exact)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
  EXPECT_GE(snap.Percentile(0.0), snap.min_ms);
  EXPECT_LE(snap.Percentile(1.0), snap.max_ms);
}

TEST(HistogramTest, PercentileOfUniformSamplesInterpolates) {
  // All mass in one bucket: interpolation must not collapse to a bound.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(10.0);
  const auto snap = h.TakeSnapshot();
  EXPECT_NEAR(snap.Percentile(0.5), 10.0, 1.0);
  EXPECT_NEAR(snap.Percentile(0.99), 10.0, 1.0);
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(rng.Uniform(0.1, 100.0));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total,
            static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_sum = 0;
  for (uint64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.total);
  EXPECT_GE(snap.min_ms, 0.1);
  EXPECT_LE(snap.max_ms, 100.0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1.0 + i);
  h.Reset();
  const auto snap = h.TakeSnapshot();
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.sum_ms, 0.0);
  h.Record(7.0);
  EXPECT_EQ(h.TakeSnapshot().total, 1u);
  EXPECT_DOUBLE_EQ(h.TakeSnapshot().min_ms, 7.0);
}

// ------------------------------------------------------------- registry

MatchStats SomeMatchStats(uint64_t scale) {
  MatchStats s;
  s.probe.index_accesses = 2 * scale;
  s.probe.rows_fetched = 10 * scale;
  s.candidate_positions = 5 * scale;
  s.distance_calls = 3 * scale;
  s.lb_pruned = scale;
  s.phase1_ms = 0.5 * static_cast<double>(scale);
  return s;
}

TEST(StatsRegistryTest, AggregatesPerSeriesAndGlobal) {
  StatsRegistry reg;
  reg.RecordQuery("a", 10.0, SomeMatchStats(1), /*ok=*/true);
  reg.RecordQuery("a", 20.0, SomeMatchStats(2), /*ok=*/false);
  reg.RecordQuery("b", 30.0, SomeMatchStats(3), /*ok=*/true);

  const ServiceStatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.total_queries, 3u);
  EXPECT_EQ(snap.total_errors, 1u);
  ASSERT_EQ(snap.series.size(), 2u);
  EXPECT_EQ(snap.series[0].series, "a");
  EXPECT_EQ(snap.series[0].queries, 2u);
  EXPECT_EQ(snap.series[0].errors, 1u);
  EXPECT_EQ(snap.series[0].match.candidate_positions, 5u + 10u);
  EXPECT_NEAR(snap.series[0].match.phase1_ms, 1.5, 1e-5);
  EXPECT_EQ(snap.series[1].series, "b");
  EXPECT_EQ(snap.series[1].queries, 1u);
  EXPECT_EQ(snap.latency.count, 3u);
  EXPECT_DOUBLE_EQ(snap.latency.min_ms, 10.0);
  EXPECT_DOUBLE_EQ(snap.latency.max_ms, 30.0);
  EXPECT_EQ(snap.latency_hist.total, 3u);
}

TEST(StatsRegistryTest, RecordQueryIsThreadSafeAndLossless) {
  StatsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string series = "s" + std::to_string(t % 3);
      for (int i = 0; i < kPerThread; ++i) {
        reg.RecordQuery(series, 1.0 + i % 7, SomeMatchStats(1), true);
      }
    });
  }
  for (auto& th : threads) th.join();
  const ServiceStatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.total_queries,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.latency_hist.total, snap.total_queries);
  uint64_t per_series = 0;
  for (const auto& s : snap.series) per_series += s.queries;
  EXPECT_EQ(per_series, snap.total_queries);
}

// The RecordIngest fix: points must be attributed to the series that
// ingested them, not just the global counter.
TEST(StatsRegistryTest, IngestPointsAreAttributedPerSeries) {
  StatsRegistry reg;
  reg.RecordIngest("alpha", 1000, 2);
  reg.RecordIngest("beta", 500, 1);
  reg.RecordIngest("alpha", 250, 1);

  const ServiceStatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.points_appended, 1750u);
  EXPECT_EQ(snap.ingest_batches, 4u);
  ASSERT_EQ(snap.series_ingest_points.size(), 2u);
  EXPECT_EQ(snap.series_ingest_points[0].first, "alpha");
  EXPECT_EQ(snap.series_ingest_points[0].second, 1250u);
  EXPECT_EQ(snap.series_ingest_points[1].first, "beta");
  EXPECT_EQ(snap.series_ingest_points[1].second, 500u);

  const std::string text = StatsToText(snap);
  EXPECT_NE(text.find(
                "kvmatch_series_ingest_points_total{series=\"alpha\"} 1250"),
            std::string::npos);
  EXPECT_NE(text.find(
                "kvmatch_series_ingest_points_total{series=\"beta\"} 500"),
            std::string::npos);
}

TEST(StatsRegistryTest, ResetClearsCountersButKeepsLiveGauges) {
  StatsRegistry reg;
  reg.RecordQuery("a", 5.0, SomeMatchStats(1), true);
  reg.RecordIngest("a", 100, 1);
  reg.RecordQueryStarted();
  reg.RecordConnectionOpened();
  reg.RecordEpochInstalled("a", 3);
  reg.Reset();

  const ServiceStatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.total_queries, 0u);
  EXPECT_EQ(snap.points_appended, 0u);
  EXPECT_TRUE(snap.series_ingest_points.empty());
  EXPECT_EQ(snap.latency_hist.total, 0u);
  // Live gauges survive a rebase — they describe current state.
  EXPECT_EQ(snap.in_flight, 1u);
  EXPECT_EQ(snap.connections_open, 1u);
  ASSERT_EQ(snap.series_epochs.size(), 1u);
  EXPECT_EQ(snap.series_epochs[0].second, 3u);
  // Gauge decrements racing a Reset must not wrap.
  reg.RecordQueryFinished();
  reg.RecordQueryFinished();  // extra decrement: floor at 0, no wrap
  EXPECT_EQ(reg.Snapshot().in_flight, 0u);
}

// ------------------------------------------------------- text exposition

// Every exposition line must look like `name{labels} value` — one metric
// name, optional well-formed label set, one numeric value. A scraper
// should never have to special-case a line.
TEST(StatsToTextTest, EveryLineParsesAsPrometheusSample) {
  StatsRegistry reg;
  reg.RecordQuery("s0", 1.5, SomeMatchStats(1), true);
  reg.RecordQuery("s1", 250.0, SomeMatchStats(2), false);
  reg.RecordIngest("s0", 4096, 4);
  reg.RecordEpochInstalled("s0", 1);
  reg.RecordRejected();
  reg.RecordProtocolError();

  ServiceStatsSnapshot snap = reg.Snapshot();
  snap.queue_depth = 2;
  snap.workers_busy = 3;
  snap.workers_total = 4;
  const std::string text = StatsToText(snap);

  const std::regex line_re(
      R"re(^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*,?\})? -?[0-9].*$)re");
  std::istringstream in(text);
  std::string line;
  size_t lines = 0;
  std::map<std::string, double> metrics;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_TRUE(std::regex_match(line, line_re)) << "bad line: " << line;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos);
    metrics[line.substr(0, sp)] = std::stod(line.substr(sp + 1));
    ++lines;
  }
  EXPECT_GT(lines, 30u);

  // The counters the scrape dashboard keys on must all be present.
  EXPECT_EQ(metrics.at("kvmatch_queries_total"), 2.0);
  EXPECT_EQ(metrics.at("kvmatch_query_errors_total"), 1.0);
  EXPECT_EQ(metrics.at("kvmatch_rejected_total"), 1.0);
  EXPECT_EQ(metrics.at("kvmatch_protocol_errors_total"), 1.0);
  EXPECT_EQ(metrics.at("kvmatch_queue_depth"), 2.0);
  EXPECT_EQ(metrics.at("kvmatch_workers_busy"), 3.0);
  EXPECT_EQ(metrics.at("kvmatch_workers_total"), 4.0);
  EXPECT_EQ(metrics.at("kvmatch_ingest_points_total"), 4096.0);
  EXPECT_EQ(
      metrics.at("kvmatch_series_ingest_points_total{series=\"s0\"}"),
      4096.0);
  EXPECT_EQ(metrics.at("kvmatch_series_queries_total{series=\"s1\"}"), 1.0);
  EXPECT_TRUE(metrics.count("kvmatch_latency_ms{stat=\"p50\"}"));
  EXPECT_TRUE(metrics.count("kvmatch_latency_ms{stat=\"p95\"}"));
  EXPECT_TRUE(metrics.count(
      "kvmatch_series_latency_ms{series=\"s0\",stat=\"p99\"}"));
}

// The histogram exposition: cumulative, monotone, +Inf-terminated, and
// `_count` == the +Inf bucket == total observations.
TEST(StatsToTextTest, HistogramExpositionIsWellFormed) {
  StatsRegistry reg;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    reg.RecordQuery("s", rng.Uniform(0.5, 400.0), MatchStats{}, true);
  }
  const std::string text = reg.ToText();

  const std::regex bucket_re(
      R"re(kvmatch_query_latency_ms_bucket\{le="([^"]+)"\} ([0-9]+))re");
  std::istringstream in(text);
  std::string line;
  uint64_t prev_cum = 0;
  double prev_le = 0.0;
  size_t buckets = 0;
  bool saw_inf = false;
  uint64_t inf_count = 0;
  while (std::getline(in, line)) {
    std::smatch m;
    if (!std::regex_match(line, m, bucket_re)) continue;
    ++buckets;
    const uint64_t cum = std::stoull(m[2]);
    EXPECT_GE(cum, prev_cum) << "non-monotone at " << line;
    prev_cum = cum;
    if (m[1] == "+Inf") {
      saw_inf = true;
      inf_count = cum;
    } else {
      EXPECT_FALSE(saw_inf) << "+Inf bucket must be last";
      const double le = std::stod(m[1]);
      EXPECT_GT(le, prev_le);
      prev_le = le;
    }
  }
  EXPECT_GT(buckets, 10u);
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_count, 500u);
  EXPECT_NE(text.find("kvmatch_query_latency_ms_sum "), std::string::npos);
  EXPECT_NE(text.find("kvmatch_query_latency_ms_count 500"),
            std::string::npos);
}

// An empty registry still emits a parseable dump with the mandatory
// +Inf terminator (Prometheus requires it even for empty histograms).
TEST(StatsToTextTest, EmptyRegistryStillExposesHistogramTerminator) {
  StatsRegistry reg;
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("kvmatch_query_latency_ms_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("kvmatch_query_latency_ms_count 0"),
            std::string::npos);
}

}  // namespace
}  // namespace kvmatch
