// Crash-point replay: the catalog's epoch delta-commit must be atomic at
// the granularity of whole Create/Append/Replace/Drop operations, on every
// backend, no matter where a crash lands inside the commit sequence.
//
// The harness runs a scripted mutation history once to learn the exact
// write-op trace, then replays it once per crash offset with a
// FaultInjectingKvStore that drops every write past the offset, reopens
// the catalog over the survivor state (for disk backends: over a freshly
// reopened store, so staged-but-unflushed writes are genuinely lost), and
// asserts the recovered contents equal either the pre-commit or the
// post-commit brute-force state of the interrupted operation — never
// anything in between — and that recovery leaves no journal rows or
// orphaned key namespaces behind.
//
// Runs in the ASan+UBSan CI job; ctest label: crash.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/brute_force.h"
#include "common/rng.h"
#include "fault_kvstore.h"
#include "service/catalog.h"
#include "storage/file_kvstore.h"
#include "storage/mem_kvstore.h"
#include "storage/minikv.h"
#include "ts/generator.h"

namespace kvmatch {
namespace {

namespace fs = std::filesystem;

enum class Backend { kMem, kFile, kMini };

/// A backend that can be "reopened" the way a restarted process would:
/// disk-backed stores are destroyed and reloaded from their path (losing
/// staged-but-unflushed state); MemKvStore has no durability boundary, so
/// the same object carries over.
struct CrashStore {
  Backend kind = Backend::kMem;
  std::string path;
  std::unique_ptr<KvStore> store;

  CrashStore() = default;
  CrashStore(CrashStore&&) = default;
  CrashStore& operator=(CrashStore&&) = default;

  static CrashStore Make(Backend kind, const std::string& tag) {
    CrashStore out;
    out.kind = kind;
    switch (kind) {
      case Backend::kMem:
        out.store = std::make_unique<MemKvStore>();
        break;
      case Backend::kFile: {
        out.path = (fs::temp_directory_path() / ("kvm_crash_f_" + tag))
                       .string();
        std::error_code ec;
        fs::remove_all(out.path, ec);
        auto r = FileKvStore::Open(out.path);
        EXPECT_TRUE(r.ok());
        out.store = std::move(r).value();
        break;
      }
      case Backend::kMini: {
        out.path = (fs::temp_directory_path() / ("kvm_crash_m_" + tag))
                       .string();
        std::error_code ec;
        fs::remove_all(out.path, ec);
        MiniKv::Options mopts;
        mopts.memtable_limit_bytes = 2048;  // spills bisect commit batches
        auto r = MiniKv::Open(out.path, mopts);
        EXPECT_TRUE(r.ok());
        out.store = std::move(r).value();
        break;
      }
    }
    return out;
  }

  void Reopen() {
    switch (kind) {
      case Backend::kMem:
        return;  // no durability boundary to model
      case Backend::kFile: {
        store.reset();
        auto r = FileKvStore::Open(path);
        ASSERT_TRUE(r.ok());
        store = std::move(r).value();
        return;
      }
      case Backend::kMini: {
        store.reset();
        MiniKv::Options mopts;
        mopts.memtable_limit_bytes = 2048;
        auto r = MiniKv::Open(path, mopts);
        ASSERT_TRUE(r.ok());
        store = std::move(r).value();
        return;
      }
    }
  }

  ~CrashStore() {
    store.reset();
    if (!path.empty()) {
      std::error_code ec;
      fs::remove_all(path, ec);
    }
  }
};

Catalog::Options SmallCatalogOptions() {
  Catalog::Options copts;
  copts.session.wu = 25;
  copts.session.levels = 2;
  copts.session.series_chunk = 64;  // several chunks per series
  return copts;
}

// ---- The scripted mutation history and its brute-force oracle ----

struct ScriptOp {
  enum Kind { kCreate, kAppend, kReplace, kDrop };
  Kind kind;
  std::string name;
  size_t n = 0;       // points created/appended/replaced
  uint64_t seed = 0;  // deterministic values
};

std::vector<double> GenValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  return GenerateSynthetic(n, &rng).values();
}

std::vector<ScriptOp> Script() {
  return {
      {ScriptOp::kCreate, "a", 300, 1001},
      {ScriptOp::kAppend, "a", 150, 1002},
      {ScriptOp::kCreate, "b", 260, 1003},
      {ScriptOp::kAppend, "a", 90, 1004},
      {ScriptOp::kReplace, "a", 400, 1005},
      {ScriptOp::kAppend, "a", 120, 1006},
      {ScriptOp::kDrop, "b", 0, 0},
  };
}

using OracleState = std::map<std::string, std::vector<double>>;

/// states[i] = catalog contents after the first i script ops.
std::vector<OracleState> OracleStates(const std::vector<ScriptOp>& script) {
  std::vector<OracleState> states;
  states.emplace_back();
  for (const auto& op : script) {
    OracleState next = states.back();
    switch (op.kind) {
      case ScriptOp::kCreate:
      case ScriptOp::kReplace:
        next[op.name] = GenValues(op.n, op.seed);
        break;
      case ScriptOp::kAppend: {
        const std::vector<double> tail = GenValues(op.n, op.seed);
        auto& values = next[op.name];
        values.insert(values.end(), tail.begin(), tail.end());
        break;
      }
      case ScriptOp::kDrop:
        next.erase(op.name);
        break;
    }
    states.push_back(std::move(next));
  }
  return states;
}

Status ApplyOp(Catalog* catalog, const ScriptOp& op) {
  switch (op.kind) {
    case ScriptOp::kCreate:
      return catalog->CreateSeries(op.name,
                                   TimeSeries(GenValues(op.n, op.seed)));
    case ScriptOp::kAppend: {
      const std::vector<double> tail = GenValues(op.n, op.seed);
      return catalog->AppendSeries(op.name, tail);
    }
    case ScriptOp::kReplace:
      return catalog->ReplaceSeries(op.name,
                                    TimeSeries(GenValues(op.n, op.seed)));
    case ScriptOp::kDrop:
      return catalog->DropSeries(op.name);
  }
  return Status::Internal("unreachable");
}

/// Does the recovered catalog hold exactly `state` (same series, same
/// values, all Acquire-able)?
bool MatchesState(Catalog* catalog, const OracleState& state) {
  const auto names = catalog->ListSeries();
  if (names.size() != state.size()) return false;
  for (const auto& [name, values] : state) {
    auto session = catalog->Acquire(name);
    if (!session.ok()) return false;
    if ((*session)->series().values() != values) return false;
  }
  return true;
}

size_t CountKeys(KvStore* store, const std::string& prefix) {
  size_t n = 0;
  for (auto it = store->Scan(prefix, PrefixUpperBound(prefix)); it->Valid();
       it->Next()) {
    ++n;
  }
  return n;
}

/// Cumulative write-op count after each script op, learned from one clean
/// instrumented run. boundaries[i] = ops consumed by the first i+1 ops.
std::vector<uint64_t> LearnBoundaries(const std::vector<ScriptOp>& script,
                                      Backend kind) {
  CrashStore cs = CrashStore::Make(kind, "dry");
  FaultInjectingKvStore wrapper(cs.store.get());
  Catalog catalog(&wrapper, SmallCatalogOptions());
  std::vector<uint64_t> boundaries;
  for (const auto& op : script) {
    EXPECT_TRUE(ApplyOp(&catalog, op).ok());
    boundaries.push_back(wrapper.write_ops());
  }
  return boundaries;
}

class CrashPointReplay : public ::testing::TestWithParam<Backend> {};

TEST_P(CrashPointReplay, EveryCrashOffsetRecoversToPreOrPostState) {
  const Backend kind = GetParam();
  const std::vector<ScriptOp> script = Script();
  const std::vector<OracleState> states = OracleStates(script);
  const std::vector<uint64_t> boundaries = LearnBoundaries(script, kind);
  ASSERT_FALSE(boundaries.empty());
  const uint64_t total = boundaries.back();
  ASSERT_GT(total, script.size());  // the commit protocol is multi-write

  const QueryParams params = [] {
    QueryParams p;
    p.type = QueryType::kRsmEd;
    p.epsilon = 3.0;
    return p;
  }();

  for (uint64_t crash = 0; crash <= total; ++crash) {
    CrashStore cs = CrashStore::Make(kind, "c" + std::to_string(crash));
    FaultInjectingKvStore wrapper(cs.store.get());
    {
      Catalog doomed(&wrapper, SmallCatalogOptions());
      wrapper.CrashAfter(crash);
      for (const auto& op : script) (void)ApplyOp(&doomed, op);
    }
    cs.Reopen();
    Catalog recovered(cs.store.get(), SmallCatalogOptions());

    // The crash landed inside op j (1-based); recovery must surface the
    // state before or after that op, never a hybrid.
    size_t j = script.size();
    for (size_t i = 0; i < boundaries.size(); ++i) {
      if (crash < boundaries[i]) {
        j = i + 1;
        break;
      }
    }
    const OracleState& pre = states[j > 0 ? j - 1 : 0];
    const OracleState& post = states[j];
    const bool pre_ok = MatchesState(&recovered, pre);
    const bool post_ok = pre == post ? pre_ok : MatchesState(&recovered, post);
    EXPECT_TRUE(pre_ok || post_ok)
        << "backend " << static_cast<int>(kind) << " crash offset " << crash
        << " of " << total << " (inside op " << j
        << ") recovered to neither the pre- nor the post-commit state";
    if (!(pre_ok || post_ok)) continue;

    // Recovery never leaves an intent record behind.
    EXPECT_EQ(CountKeys(cs.store.get(), "journal/"), 0u)
        << "crash offset " << crash;

    // Spot-check that a recovered series is fully queryable and agrees
    // with brute force over the recovered values.
    const OracleState& matched = pre_ok ? pre : post;
    if (crash % 5 == 0 && !matched.empty()) {
      const auto& [name, values] = *matched.begin();
      Rng qrng(42 + crash);
      const TimeSeries series{std::vector<double>(values)};
      const auto q = ExtractQuery(series, values.size() / 3, 50, 0.1, &qrng);
      auto session = recovered.Acquire(name);
      ASSERT_TRUE(session.ok());
      auto got = (*session)->Query(q, params);
      ASSERT_TRUE(got.ok());
      const auto expected = BruteForceMatch(series, q, params);
      ASSERT_EQ(got->size(), expected.size()) << "crash offset " << crash;
      for (size_t i = 0; i < got->size(); ++i) {
        EXPECT_EQ((*got)[i].offset, expected[i].offset);
      }
    }

    // No orphaned namespaces: dropping every surviving series must leave
    // the store with no series or catalog rows at all.
    for (const auto& name : recovered.ListSeries()) {
      ASSERT_TRUE(recovered.DropSeries(name).ok());
    }
    EXPECT_EQ(CountKeys(cs.store.get(), "series/"), 0u)
        << "crash offset " << crash << " leaked keys";
    EXPECT_EQ(CountKeys(cs.store.get(), "catalog/"), 0u)
        << "crash offset " << crash;
  }
}

TEST_P(CrashPointReplay, EveryFailOffsetRecoversToPreOrPostState) {
  // Same property under *failing* (not crashing) writes: the in-process
  // rollback may itself fail mid-way; healing the store and reopening the
  // catalog must still land on a whole-operation boundary.
  const Backend kind = GetParam();
  const std::vector<ScriptOp> script = Script();
  const std::vector<OracleState> states = OracleStates(script);
  const std::vector<uint64_t> boundaries = LearnBoundaries(script, kind);
  const uint64_t total = boundaries.back();

  for (uint64_t fail = 0; fail <= total; fail += 3) {
    CrashStore cs = CrashStore::Make(kind, "f" + std::to_string(fail));
    FaultInjectingKvStore wrapper(cs.store.get());
    {
      Catalog doomed(&wrapper, SmallCatalogOptions());
      wrapper.FailAfter(fail);
      for (const auto& op : script) (void)ApplyOp(&doomed, op);
    }
    wrapper.Heal();
    cs.Reopen();
    Catalog recovered(cs.store.get(), SmallCatalogOptions());

    bool any = false;
    for (const auto& state : states) {
      if (MatchesState(&recovered, state)) {
        any = true;
        break;
      }
    }
    EXPECT_TRUE(any) << "backend " << static_cast<int>(kind)
                     << " fail offset " << fail
                     << " recovered to no whole-operation state";
    EXPECT_EQ(CountKeys(cs.store.get(), "journal/"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CrashPointReplay,
                         ::testing::Values(Backend::kMem, Backend::kFile,
                                           Backend::kMini));

// ---- In-process fault handling (no restart) ----

TEST(FaultKvStoreTest, FailedAppendRollsBackAndRetrySucceeds) {
  MemKvStore base;
  FaultInjectingKvStore store(&base);
  Catalog catalog(&store, SmallCatalogOptions());

  const std::vector<double> v0 = GenValues(400, 7);
  ASSERT_TRUE(catalog.CreateSeries("s", TimeSeries(std::vector<double>(v0)))
                  .ok());

  // Fail partway into the append's commit sequence.
  const std::vector<double> tail = GenValues(200, 8);
  store.FailAfter(3);
  ASSERT_FALSE(catalog.AppendSeries("s", tail).ok());
  store.Heal();

  // The catalog still serves the pre-append state...
  {
    auto session = catalog.Acquire("s");
    ASSERT_TRUE(session.ok());
    EXPECT_EQ((*session)->series().values(), v0);
  }
  // ...and a healed retry lands the append cleanly.
  ASSERT_TRUE(catalog.AppendSeries("s", tail).ok());
  std::vector<double> full = v0;
  full.insert(full.end(), tail.begin(), tail.end());
  auto session = catalog.Acquire("s");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->series().values(), full);
  EXPECT_EQ(CountKeys(&base, "journal/"), 0u);
}

TEST(FaultKvStoreTest, CleanShutdownReportsCleanRecovery) {
  MemKvStore store;
  {
    Catalog catalog(&store, SmallCatalogOptions());
    ASSERT_TRUE(
        catalog.CreateSeries("s", TimeSeries(GenValues(300, 9))).ok());
    ASSERT_TRUE(catalog.AppendSeries("s", GenValues(100, 10)).ok());
  }
  Catalog reopened(&store, SmallCatalogOptions());
  EXPECT_TRUE(reopened.recovery_report().clean());
  EXPECT_EQ(*reopened.SeriesLength("s"), 400u);
}

TEST(FaultKvStoreTest, CrashMidCommitIsCountedByRecoveryReport) {
  MemKvStore base;
  FaultInjectingKvStore store(&base);
  {
    Catalog doomed(&store, SmallCatalogOptions());
    ASSERT_TRUE(
        doomed.CreateSeries("s", TimeSeries(GenValues(300, 11))).ok());
    // Crash two writes into the next append: the journal and some chunk
    // rows land, the flip does not.
    store.CrashAfter(2);
    (void)doomed.AppendSeries("s", GenValues(100, 12));
  }
  Catalog recovered(&base, SmallCatalogOptions());
  EXPECT_EQ(recovered.recovery_report().epochs_rolled_back, 1u);
  EXPECT_EQ(*recovered.SeriesLength("s"), 300u);
}

}  // namespace
}  // namespace kvmatch
