// FaultInjectingKvStore: a KvStore decorator for crash and fault testing.
//
// Wraps any backend and counts every write-path call (Put, Delete,
// DeleteRange, Apply, Flush — one "write op" each; reads always pass
// through). Two armed failure modes:
//
//   FailAfter(n)  — the next n write ops reach the backend, every later
//                   one returns IOError without touching it. Exercises
//                   the in-process rollback paths.
//   CrashAfter(n) — the next n write ops reach the backend, every later
//                   one is silently dropped (returns OK). The backend is
//                   left holding exactly the prefix of writes a process
//                   that died at that point would have issued; reopening
//                   the catalog over it exercises crash recovery. For
//                   disk backends, destroy and reopen the backend too so
//                   staged-but-unflushed writes are genuinely lost.
//
// The wrapper also keeps a key log of every Put that reached the backend
// (batch ops included), so tests can measure write amplification — e.g.
// assert that appending to a long series never rewrites old chunk rows.
//
// Thread-safe (the catalog's purge callbacks may run on reader threads).
#ifndef KVMATCH_TESTS_FAULT_KVSTORE_H_
#define KVMATCH_TESTS_FAULT_KVSTORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/kvstore.h"

namespace kvmatch {

class FaultInjectingKvStore : public KvStore {
 public:
  explicit FaultInjectingKvStore(KvStore* base) : base_(base) {}

  /// Arms the fault: `ops` more write ops succeed, then every write
  /// returns IOError.
  void FailAfter(uint64_t ops) { Arm(Mode::kFail, ops); }

  /// Arms the crash: `ops` more write ops succeed, then every write is
  /// silently dropped.
  void CrashAfter(uint64_t ops) { Arm(Mode::kCrash, ops); }

  /// Disarms; writes pass through again.
  void Heal() { Arm(Mode::kNone, 0); }

  /// Write ops that reached the backend since construction / ResetLog.
  uint64_t write_ops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ops_done_;
  }

  /// Has the armed fault fired at least once?
  bool tripped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tripped_;
  }

  /// Puts that reached the backend whose key starts with `prefix`.
  uint64_t puts_with_prefix(std::string_view prefix) const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t n = 0;
    for (const auto& key : put_log_) {
      if (key.size() >= prefix.size() &&
          std::string_view(key).substr(0, prefix.size()) == prefix) {
        ++n;
      }
    }
    return n;
  }

  /// Keys of every Put that reached the backend, in order.
  std::vector<std::string> put_log() const {
    std::lock_guard<std::mutex> lock(mu_);
    return put_log_;
  }

  void ResetLog() {
    std::lock_guard<std::mutex> lock(mu_);
    put_log_.clear();
    ops_done_ = 0;
  }

  // ---- KvStore ----

  Status Put(std::string_view key, std::string_view value) override {
    switch (BeginWrite()) {
      case Verdict::kDrop: return Status::OK();
      case Verdict::kFail: return Injected();
      case Verdict::kPass: break;
    }
    LogPut(key);
    return base_->Put(key, value);
  }

  Status Delete(std::string_view key) override {
    switch (BeginWrite()) {
      case Verdict::kDrop: return Status::OK();
      case Verdict::kFail: return Injected();
      case Verdict::kPass: break;
    }
    return base_->Delete(key);
  }

  Status DeleteRange(std::string_view start_key,
                     std::string_view end_key) override {
    switch (BeginWrite()) {
      case Verdict::kDrop: return Status::OK();
      case Verdict::kFail: return Injected();
      case Verdict::kPass: break;
    }
    return base_->DeleteRange(start_key, end_key);
  }

  Status Apply(const WriteBatch& batch) override {
    switch (BeginWrite()) {
      case Verdict::kDrop: return Status::OK();
      case Verdict::kFail: return Injected();
      case Verdict::kPass: break;
    }
    for (const auto& op : batch.ops()) {
      if (op.kind == WriteBatch::Op::kPut) LogPut(op.key);
    }
    return base_->Apply(batch);
  }

  Status Flush() override {
    switch (BeginWrite()) {
      case Verdict::kDrop: return Status::OK();
      case Verdict::kFail: return Injected();
      case Verdict::kPass: break;
    }
    return base_->Flush();
  }

  Status Get(std::string_view key, std::string* value) const override {
    return base_->Get(key, value);
  }

  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key)
      const override {
    return base_->Scan(start_key, end_key);
  }

  size_t ApproximateCount() const override {
    return base_->ApproximateCount();
  }

 private:
  enum class Mode { kNone, kFail, kCrash };
  enum class Verdict { kPass, kFail, kDrop };

  static Status Injected() { return Status::IOError("injected fault"); }

  void Arm(Mode mode, uint64_t ops) {
    std::lock_guard<std::mutex> lock(mu_);
    mode_ = mode;
    budget_ = ops;
    tripped_ = false;
  }

  Verdict BeginWrite() {
    std::lock_guard<std::mutex> lock(mu_);
    if (mode_ != Mode::kNone && budget_ == 0) {
      tripped_ = true;
      return mode_ == Mode::kFail ? Verdict::kFail : Verdict::kDrop;
    }
    if (mode_ != Mode::kNone) --budget_;
    ++ops_done_;
    return Verdict::kPass;
  }

  void LogPut(std::string_view key) {
    std::lock_guard<std::mutex> lock(mu_);
    put_log_.emplace_back(key);
  }

  KvStore* base_;
  mutable std::mutex mu_;
  Mode mode_ = Mode::kNone;
  uint64_t budget_ = 0;
  uint64_t ops_done_ = 0;
  bool tripped_ = false;
  std::vector<std::string> put_log_;
};

}  // namespace kvmatch

#endif  // KVMATCH_TESTS_FAULT_KVSTORE_H_
