// KV-match (paper §V, Algorithm 1): two-phase subsequence matching over a
// single fixed-w KV-index.
//
// Phase 1 probes the index once per disjoint query window, shifts each
// window's interval list back to candidate start positions, and intersects
// them. Phase 2 verifies the surviving candidates against the exact
// distance (with constraint and lower-bound pruning for cNSM/DTW).
#ifndef KVMATCH_MATCH_KV_MATCH_H_
#define KVMATCH_MATCH_KV_MATCH_H_

#include <span>
#include <vector>

#include "index/kv_index.h"
#include "match/exec_context.h"
#include "match/query_ranges.h"
#include "match/query_types.h"
#include "match/verifier.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {

/// Query-processing options (§VI-C optimizations; also ablation knobs).
struct MatchOptions {
  /// Process query windows in increasing order of estimated RList size
  /// (meta-table estimate) instead of left to right.
  bool reorder_windows = false;
  /// Use at most this many query windows (0 = all). Correctness is kept —
  /// each CS_i is a superset of the truth — only pruning power is traded.
  size_t max_windows = 0;
  VerifyOptions verify;
};

/// A generic matching engine over an explicit segmentation: window i is
/// served by `segments[i].index` (all windows of a basic KV-match share one
/// index; KV-matchDP mixes indexes of different w).
struct QuerySegment {
  const KvIndex* index = nullptr;
  size_t offset = 0;  // start within Q
  size_t length = 0;  // must equal index->window()
};

/// Runs Algorithm 1 over the given segmentation (a thin wrapper over
/// QueryExecutor — see match/executor.h for the resumable form). Returns
/// matches ordered by offset. Fails with InvalidArgument on an
/// empty/invalid segmentation, and with Cancelled/DeadlineExceeded when
/// `ctx` aborts the run at a phase-1 probe or phase-2 slice boundary.
Result<std::vector<MatchResult>> MatchWithSegments(
    const TimeSeries& series, const PrefixStats& prefix,
    std::span<const double> q, const QueryParams& params,
    const std::vector<QuerySegment>& segments, MatchStats* stats = nullptr,
    const MatchOptions& options = {}, const ExecContext& ctx = {});

/// Computes only the final candidate set CS (phase 1), for experiments
/// that count candidates without verification (Table VII).
Result<IntervalList> ComputeCandidateSet(
    const TimeSeries& series, std::span<const double> q,
    const QueryParams& params, const std::vector<QuerySegment>& segments,
    MatchStats* stats = nullptr, const MatchOptions& options = {},
    const ExecContext& ctx = {});

/// The basic KV-match: one fixed-w index.
class KvMatcher {
 public:
  /// `series`, `prefix` and `index` must outlive the matcher.
  KvMatcher(const TimeSeries& series, const PrefixStats& prefix,
            const KvIndex& index)
      : series_(series), prefix_(prefix), index_(index) {}

  /// Processes any of the four query types. |Q| must be >= the index
  /// window length.
  Result<std::vector<MatchResult>> Match(std::span<const double> q,
                                         const QueryParams& params,
                                         MatchStats* stats = nullptr,
                                         const MatchOptions& options = {},
                                         const ExecContext& ctx = {}) const;

 private:
  const TimeSeries& series_;
  const PrefixStats& prefix_;
  const KvIndex& index_;
};

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_KV_MATCH_H_
