#include "match/verifier.h"

#include <cmath>
#include <limits>

#include "distance/dtw.h"
#include "distance/ed.h"
#include "distance/envelope.h"
#include "distance/lower_bounds.h"

namespace kvmatch {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Verifier::Verifier(const TimeSeries& series, const PrefixStats& prefix)
    : series_(series), prefix_(prefix) {}

std::vector<MatchResult> Verifier::Verify(std::span<const double> q,
                                          const QueryParams& params,
                                          const IntervalList& cs,
                                          MatchStats* stats,
                                          const VerifyOptions& options) const {
  std::vector<MatchResult> results;
  const size_t m = q.size();
  const size_t n = series_.size();
  if (m == 0 || n < m) return results;
  const double eps_sq = params.epsilon * params.epsilon;
  const bool normalized = IsNormalized(params.type);
  const bool dtw = IsDtw(params.type);

  // Query-side precomputation.
  std::vector<double> q_hat;           // normalized query (cNSM)
  std::vector<int> ed_order;           // reordered-ED visit order
  Envelope env;                        // envelope of q (raw or normalized)
  MeanStd q_ms = ComputeMeanStd(q);
  std::span<const double> q_cmp = q;   // series the distance is against
  if (normalized) {
    q_hat = ZNormalize(q);
    q_cmp = q_hat;
  }
  if (dtw) {
    env = BuildEnvelope(q_cmp, params.rho);
  } else if (options.use_reordered_ed) {
    ed_order = SortedAbsOrder(q_cmp);
  }

  std::vector<double> s_hat;               // normalized candidate buffer
  std::vector<double> cb;                  // LB_Keogh contributions
  for (const auto& wi : cs.intervals()) {
    for (int64_t j = wi.l; j <= wi.r; ++j) {
      const size_t off = static_cast<size_t>(j);
      if (off + m > n) break;  // cannot host a full |Q| subsequence
      const auto s = series_.Subsequence(off, m);

      double mean = 0.0, std = 0.0;
      if (normalized) {
        const MeanStd ms = prefix_.WindowMeanStd(off, m);
        mean = ms.mean;
        std = ms.std;
        // cNSM constraint push-down: α on σ-ratio, β on mean difference.
        const bool sigma_ok =
            std >= q_ms.std / params.alpha - 1e-12 &&
            std <= q_ms.std * params.alpha + 1e-12;
        const bool mu_ok = std::fabs(mean - q_ms.mean) <= params.beta + 1e-12;
        if (!sigma_ok || !mu_ok) {
          if (stats != nullptr) ++stats->constraint_pruned;
          continue;
        }
      }

      if (IsL1(params.type)) {
        // L1 path: distances are compared un-squared.
        const double d = L1DistanceEarlyAbandon(s, q_cmp, params.epsilon);
        if (stats != nullptr) ++stats->distance_calls;
        if (d > params.epsilon) continue;
        results.push_back({off, d});
        continue;
      }

      double dist_sq = kInf;
      if (!dtw) {
        // ED path.
        if (normalized) {
          if (options.use_reordered_ed) {
            dist_sq = SquaredNormalizedEdOrdered(s, mean, std, q_cmp,
                                                 ed_order, eps_sq);
          } else {
            s_hat.assign(s.begin(), s.end());
            const double inv = std > 1e-12 ? 1.0 / std : 0.0;
            for (auto& v : s_hat) v = (v - mean) * inv;
            dist_sq = SquaredEdEarlyAbandon(s_hat, q_cmp, eps_sq);
          }
        } else {
          dist_sq = SquaredEdEarlyAbandon(s, q_cmp, eps_sq);
        }
        if (stats != nullptr) ++stats->distance_calls;
        if (dist_sq > eps_sq) continue;
      } else {
        // DTW path: LB_Kim -> LB_Keogh (collecting cb) -> exact banded DTW.
        std::span<const double> s_cmp = s;
        if (normalized) {
          s_hat.assign(s.begin(), s.end());
          const double inv = std > 1e-12 ? 1.0 / std : 0.0;
          for (auto& v : s_hat) v = (v - mean) * inv;
          s_cmp = s_hat;
        }
        if (options.use_lb_kim &&
            LbKimSquared(s_cmp, q_cmp, eps_sq) > eps_sq) {
          if (stats != nullptr) ++stats->lb_pruned;
          continue;
        }
        std::span<const double> cum_lb;
        std::vector<double> cum;
        if (options.use_lb_keogh) {
          const double lb = LbKeoghSquared(s_cmp, env, eps_sq, &cb);
          if (lb > eps_sq) {
            if (stats != nullptr) ++stats->lb_pruned;
            continue;
          }
          cum = SuffixCumulate(cb);
          cum_lb = cum;
        }
        const double d =
            DtwDistance(s_cmp, q_cmp, params.rho, params.epsilon, cum_lb);
        if (stats != nullptr) ++stats->distance_calls;
        if (d > params.epsilon) continue;
        dist_sq = d * d;
      }
      results.push_back({off, std::sqrt(dist_sq)});
    }
  }
  return results;
}

}  // namespace kvmatch
