#include "match/verifier.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "distance/dtw.h"
#include "distance/ed.h"
#include "distance/envelope.h"
#include "distance/lower_bounds.h"

namespace kvmatch {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Verifier::Verifier(const TimeSeries& series, const PrefixStats& prefix)
    : series_(series), prefix_(prefix) {}

Status Verifier::VerifyCancellable(std::span<const double> q,
                                   const QueryParams& params,
                                   const IntervalList& cs,
                                   const ExecContext& ctx,
                                   std::vector<MatchResult>* results,
                                   MatchStats* stats,
                                   const VerifyOptions& options) const {
  const size_t m = q.size();
  const size_t n = series_.size();
  if (m == 0 || n < m) return Status::OK();
  const simd::Kernels& ker =
      options.kernels != nullptr ? *options.kernels : simd::ActiveKernels();
  const double eps_sq = params.epsilon * params.epsilon;
  const bool normalized = IsNormalized(params.type);
  const bool dtw = IsDtw(params.type);
  const bool l1 = IsL1(params.type);

  // Query-side precomputation.
  std::vector<double> q_hat;           // normalized query (cNSM)
  std::vector<int> ed_order;           // reordered-ED visit order
  std::vector<double> q_ordered;       // q_cmp permuted by ed_order
  Envelope env;                        // envelope of q (raw or normalized)
  MeanStd q_ms = ComputeMeanStd(q);
  std::span<const double> q_cmp = q;   // series the distance is against
  if (normalized) {
    q_hat = ZNormalize(q);
    q_cmp = q_hat;
  }
  if (dtw) {
    env = BuildEnvelope(q_cmp, params.rho);
  } else if (options.use_reordered_ed && !l1) {
    ed_order = SortedAbsOrder(q_cmp);
    q_ordered.resize(m);
    for (size_t i = 0; i < m; ++i) {
      q_ordered[i] = q_cmp[static_cast<size_t>(ed_order[i])];
    }
  }

  // Cache-blocked candidate layout: a run of up to `block_cap` contiguous
  // start offsets shares one 64-byte-aligned copy of the covering series
  // range (count + m - 1 values — consecutive windows overlap in all but
  // one point, so the gather is ~1/m of the naive per-candidate traffic),
  // and one batch rolling mean/std call over the prefix arrays.
  const size_t block_cap = std::max<size_t>(1, options.block_candidates);
  simd::AlignedBuffer block;   // gathered series values
  simd::AlignedBuffer s_hat;   // normalized candidate scratch
  std::vector<double> means, stds;
  std::vector<double> cb;      // LB_Keogh contributions
  const std::vector<double>& xs = series_.values();
  const std::span<const double> psum = prefix_.prefix_sums();
  const std::span<const double> psq = prefix_.prefix_squares();

  size_t deadline_tick = 0;
  for (const auto& wi : cs.intervals()) {
    int64_t l = std::max<int64_t>(wi.l, 0);
    const int64_t r_cap =
        std::min<int64_t>(wi.r, static_cast<int64_t>(n - m));
    while (l <= r_cap) {
      KVMATCH_RETURN_NOT_OK(ctx.Check());  // block boundary: full check
      const size_t count =
          std::min<size_t>(block_cap, static_cast<size_t>(r_cap - l + 1));
      const size_t span_len = count + m - 1;
      double* blk = block.Resize(span_len);
      std::memcpy(blk, xs.data() + l, span_len * sizeof(double));
      if (normalized) {
        means.resize(count);
        stds.resize(count);
        ker.rolling_mean_std(psum.data() + l, psq.data() + l, count, m,
                             means.data(), stds.data());
      }

      for (size_t k = 0; k < count; ++k) {
        // Per-candidate abort granularity: the token is a relaxed load, so
        // it is polled every candidate; the deadline costs a clock read
        // and is amortized over kDeadlineStride candidates.
        if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
          return Status::Cancelled("query cancelled");
        }
        if (ctx.has_deadline() && ++deadline_tick % kDeadlineStride == 0) {
          KVMATCH_RETURN_NOT_OK(ctx.Check());
        }
        const size_t off = static_cast<size_t>(l) + k;
        const double* s = blk + k;

        double mean = 0.0, std = 0.0;
        if (normalized) {
          mean = means[k];
          std = stds[k];
          // cNSM constraint push-down: α on σ-ratio, β on mean difference.
          const bool sigma_ok =
              std >= q_ms.std / params.alpha - 1e-12 &&
              std <= q_ms.std * params.alpha + 1e-12;
          const bool mu_ok =
              std::fabs(mean - q_ms.mean) <= params.beta + 1e-12;
          if (!sigma_ok || !mu_ok) {
            if (stats != nullptr) ++stats->constraint_pruned;
            continue;
          }
        }

        if (l1) {
          // L1 path: distances are compared un-squared.
          const double d = ker.l1(s, q_cmp.data(), m, params.epsilon);
          if (stats != nullptr) ++stats->distance_calls;
          if (d > params.epsilon) continue;
          results->push_back({off, d});
          continue;
        }

        double dist_sq = kInf;
        if (!dtw) {
          // ED path.
          if (normalized) {
            const double inv = std > 1e-12 ? 1.0 / std : 0.0;
            if (options.use_reordered_ed) {
              dist_sq = ker.squared_ed_znorm_ordered(
                  s, ed_order.data(), q_ordered.data(), m, mean, inv, eps_sq);
            } else {
              double* sh = s_hat.Resize(m);
              ker.znormalize(s, m, mean, inv, sh);
              dist_sq = ker.squared_ed(sh, q_cmp.data(), m, eps_sq);
            }
          } else {
            dist_sq = ker.squared_ed(s, q_cmp.data(), m, eps_sq);
          }
          if (stats != nullptr) ++stats->distance_calls;
          if (dist_sq > eps_sq) continue;
        } else {
          // DTW path: LB_Kim -> LB_Keogh (collecting cb) -> exact banded
          // DTW (which itself polls the cancel token between rows).
          const double* s_cmp = s;
          if (normalized) {
            const double inv = std > 1e-12 ? 1.0 / std : 0.0;
            double* sh = s_hat.Resize(m);
            ker.znormalize(s, m, mean, inv, sh);
            s_cmp = sh;
          }
          const std::span<const double> s_span(s_cmp, m);
          if (options.use_lb_kim &&
              LbKimSquared(s_span, q_cmp, eps_sq) > eps_sq) {
            if (stats != nullptr) ++stats->lb_pruned;
            continue;
          }
          std::span<const double> cum_lb;
          std::vector<double> cum;
          if (options.use_lb_keogh) {
            cb.resize(m);
            const double lb = ker.lb_keogh(s_cmp, env.lower.data(),
                                           env.upper.data(), m, eps_sq,
                                           cb.data());
            if (lb > eps_sq) {
              if (stats != nullptr) ++stats->lb_pruned;
              continue;
            }
            cum = SuffixCumulate(cb);
            cum_lb = cum;
          }
          const double d = DtwDistance(s_span, q_cmp, params.rho,
                                       params.epsilon, cum_lb, ctx.cancel);
          if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
            // The DP may have bailed mid-band; its value is not a verdict.
            return Status::Cancelled("query cancelled");
          }
          if (stats != nullptr) ++stats->distance_calls;
          if (d > params.epsilon) continue;
          dist_sq = d * d;
        }
        results->push_back({off, std::sqrt(dist_sq)});
      }
      l += static_cast<int64_t>(count);
    }
  }
  return Status::OK();
}

std::vector<MatchResult> Verifier::Verify(std::span<const double> q,
                                          const QueryParams& params,
                                          const IntervalList& cs,
                                          MatchStats* stats,
                                          const VerifyOptions& options) const {
  std::vector<MatchResult> results;
  // A default ExecContext never aborts, so the status is always OK.
  const Status st =
      VerifyCancellable(q, params, cs, ExecContext{}, &results, stats, options);
  (void)st;
  return results;
}

}  // namespace kvmatch
