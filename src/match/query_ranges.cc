#include "match/query_ranges.h"

#include <algorithm>
#include <cmath>

#include "distance/envelope.h"
#include "ts/time_series.h"

namespace kvmatch {

namespace {

/// cNSM range construction shared by Lemmas 2 and 4: given the inner
/// bounds A (lower, built from µ^Q_i or µ^L_i) and B (upper, from µ^Q_i or
/// µ^U_i), minimize a·A + b + µ_Q and maximize a·B + b + µ_Q over
/// a ∈ {1/α, α}, b ∈ {-β, β}.
void CnsmRange(double a_lo, double b_hi, double alpha, double beta,
               double mu_q, double* lr, double* ur) {
  const double vmin = std::min(alpha * a_lo, a_lo / alpha);
  const double vmax = std::max(alpha * b_hi, b_hi / alpha);
  *lr = vmin + mu_q - beta;
  *ur = vmax + mu_q + beta;
}

std::vector<double> PrefixSum(std::span<const double> v) {
  std::vector<double> out(v.size() + 1, 0.0);
  for (size_t i = 0; i < v.size(); ++i) out[i + 1] = out[i] + v[i];
  return out;
}

double RangeMean(const std::vector<double>& prefix, size_t offset,
                 size_t len) {
  return (prefix[offset + len] - prefix[offset]) / static_cast<double>(len);
}

}  // namespace

QueryRangeContext::QueryRangeContext(std::span<const double> query,
                                     const QueryParams& p)
    : q(query), params(p) {
  const MeanStd ms = ComputeMeanStd(q);
  mu_q = ms.mean;
  sigma_q = ms.std;
  if (IsDtw(params.type)) {
    const Envelope env = BuildEnvelope(q, params.rho);
    env_lower_sum = PrefixSum(env.lower);
    env_upper_sum = PrefixSum(env.upper);
  } else {
    q_sum = PrefixSum(q);
  }
}

QueryWindow ComputeWindowRange(const QueryRangeContext& ctx, size_t offset,
                               size_t len) {
  QueryWindow qw;
  qw.offset = offset;
  qw.length = len;
  const double sqrt_w = std::sqrt(static_cast<double>(len));
  const double eps = ctx.params.epsilon;
  switch (ctx.params.type) {
    case QueryType::kRsmEd: {
      const double mu_i = RangeMean(ctx.q_sum, offset, len);
      qw.lr = mu_i - eps / sqrt_w;
      qw.ur = mu_i + eps / sqrt_w;
      break;
    }
    case QueryType::kRsmDtw: {
      const double mu_l = RangeMean(ctx.env_lower_sum, offset, len);
      const double mu_u = RangeMean(ctx.env_upper_sum, offset, len);
      qw.lr = mu_l - eps / sqrt_w;
      qw.ur = mu_u + eps / sqrt_w;
      break;
    }
    case QueryType::kCnsmEd: {
      const double mu_i = RangeMean(ctx.q_sum, offset, len);
      const double a_lo = mu_i - ctx.mu_q - eps * ctx.sigma_q / sqrt_w;
      const double b_hi = mu_i - ctx.mu_q + eps * ctx.sigma_q / sqrt_w;
      CnsmRange(a_lo, b_hi, ctx.params.alpha, ctx.params.beta, ctx.mu_q,
                &qw.lr, &qw.ur);
      break;
    }
    case QueryType::kCnsmDtw: {
      const double mu_l = RangeMean(ctx.env_lower_sum, offset, len);
      const double mu_u = RangeMean(ctx.env_upper_sum, offset, len);
      const double a_lo = mu_l - ctx.mu_q - eps * ctx.sigma_q / sqrt_w;
      const double b_hi = mu_u - ctx.mu_q + eps * ctx.sigma_q / sqrt_w;
      CnsmRange(a_lo, b_hi, ctx.params.alpha, ctx.params.beta, ctx.mu_q,
                &qw.lr, &qw.ur);
      break;
    }
    case QueryType::kRsmL1: {
      // Σ_window |s_j - q_j| >= w·|µ^S_i - µ^Q_i| (triangle inequality),
      // so qualifying windows satisfy |µ^S_i - µ^Q_i| <= ε / w.
      const double mu_i = RangeMean(ctx.q_sum, offset, len);
      qw.lr = mu_i - eps / static_cast<double>(len);
      qw.ur = mu_i + eps / static_cast<double>(len);
      break;
    }
  }
  return qw;
}

std::vector<QueryWindow> ComputeQueryWindowsSegmented(
    std::span<const double> q, const std::vector<size_t>& lengths,
    const QueryParams& params) {
  const QueryRangeContext ctx(q, params);
  std::vector<QueryWindow> out;
  out.reserve(lengths.size());
  size_t offset = 0;
  for (size_t len : lengths) {
    out.push_back(ComputeWindowRange(ctx, offset, len));
    offset += len;
  }
  return out;
}

std::vector<QueryWindow> ComputeQueryWindows(std::span<const double> q,
                                             size_t w,
                                             const QueryParams& params) {
  const size_t p = w == 0 ? 0 : q.size() / w;
  std::vector<size_t> lengths(p, w);
  return ComputeQueryWindowsSegmented(q, lengths, params);
}

}  // namespace kvmatch
