// QueryExecutor: the resumable form of Algorithm 1.
//
// The monolithic Match() call is decomposed into explicit steps so an
// orchestrator (the QueryService, a test, a future coroutine front-end)
// can interleave checkpoints, cancel mid-query, and parallelize:
//
//   phase 1  →  one StepProbe() per query window (probe + shift +
//               intersect), abortable between windows;
//   phase 2  →  SliceCandidates() partitions the candidate set CS into
//               bounded-size offset ranges, and each VerifySlice(i) is an
//               independent, thread-safe task — slices of one query can
//               run on many workers and their results concatenate in
//               offset order.
//
// The single-shot wrappers (MatchWithSegments, KvMatcher, KvMatchDp,
// Session::Query) are thin layers over Run(), so every caller shares one
// implementation and the executor is the only place phase logic lives.
#ifndef KVMATCH_MATCH_EXECUTOR_H_
#define KVMATCH_MATCH_EXECUTOR_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "match/exec_context.h"
#include "match/kv_match.h"

namespace kvmatch {

class QueryExecutor {
 public:
  /// Validates the segmentation and precomputes the per-window mean
  /// ranges and probe order. `series`, `prefix` and the segment indexes
  /// must outlive the executor; `q` is copied (verify slices may run on
  /// other threads after the caller's buffer is gone).
  static Result<std::unique_ptr<QueryExecutor>> Create(
      const TimeSeries& series, const PrefixStats& prefix,
      std::span<const double> q, const QueryParams& params,
      std::vector<QuerySegment> segments, const MatchOptions& options = {});

  // ---- Phase 1: per-window probe steps ----

  /// Windows scheduled for probing (after MatchOptions::max_windows).
  size_t probes_total() const { return probe_limit_; }
  size_t probes_done() const { return probes_done_; }
  bool phase1_done() const { return phase1_done_; }

  /// Probes the next window, shifts its interval list and intersects it
  /// into the candidate set. Finishing the last window — or emptying the
  /// candidate set early — completes phase 1.
  Status StepProbe();

  /// Runs the remaining probe steps, checking `ctx` before each one.
  Status RunPhase1(const ExecContext& ctx = {});

  /// The final candidate set CS. Valid once phase1_done().
  const IntervalList& candidates() const { return cs_; }

  // ---- Phase 2: verify slices ----

  /// Partitions CS into slices of at most `max_positions` candidate
  /// positions each (0 → one slice), splitting long intervals as needed.
  /// Requires phase1_done(). Returns the slice count.
  size_t SliceCandidates(size_t max_positions);
  size_t num_slices() const { return slices_.size(); }
  const IntervalList& slice(size_t i) const { return slices_[i]; }

  /// Verifies slice `i`: results ordered by offset, counters (and the
  /// slice's verify wall time as phase2_ms) added to `*stats`. `ctx` is
  /// threaded down to per-candidate granularity: the verifier polls the
  /// cancel token on every candidate (and between DTW rows for expensive
  /// candidates) and the deadline every few dozen candidates. On abort,
  /// `*stats` holds the partial counters for the work actually done.
  /// Thread-safe: distinct slices may be verified concurrently.
  Result<std::vector<MatchResult>> VerifySlice(size_t i,
                                               const ExecContext& ctx = {},
                                               MatchStats* stats = nullptr)
      const;
  size_t slices_verified() const { return slices_verified_; }

  /// Streaming consumer for Run(): called with each verified slice's
  /// matches (offset order, non-empty) as the slice completes.
  using MatchSink = std::function<void(std::span<const MatchResult>)>;

  /// Single-shot: remaining phase-1 steps, slicing (at
  /// MatchOptions-independent `verify_slice_positions`), then every slice
  /// in order on the calling thread, checking `ctx` at each boundary.
  /// On abort, stats() holds the partial counters accumulated so far.
  /// When `sink` is non-null each slice's matches are handed to it as the
  /// slice finishes and the returned vector is empty — results flow to the
  /// wire while later slices are still verifying.
  Result<std::vector<MatchResult>> Run(const ExecContext& ctx = {},
                                       MatchStats* stats = nullptr,
                                       const MatchSink* sink = nullptr);

  /// Stats accumulated so far: phase-1 probe counters always; verify
  /// counters only for slices executed through Run() (VerifySlice is
  /// const and reports through its own out-param).
  const MatchStats& stats() const { return stats_; }

  /// Slice granularity Run() uses (also the QueryService default): small
  /// enough that a cancel/deadline lands promptly even when every
  /// candidate runs a full banded DTW, large enough that the per-slice
  /// query-side precomputation stays noise.
  static constexpr size_t kDefaultSlicePositions = 2048;

 private:
  QueryExecutor(const TimeSeries& series, const PrefixStats& prefix,
                std::span<const double> q, const QueryParams& params,
                std::vector<QuerySegment> segments,
                const MatchOptions& options);

  void FinishPhase1();

  const TimeSeries& series_;
  const PrefixStats& prefix_;
  std::vector<double> q_;
  QueryParams params_;
  MatchOptions options_;
  std::vector<QuerySegment> segments_;
  std::vector<QueryWindow> windows_;
  std::vector<size_t> probe_order_;
  size_t probe_limit_ = 0;

  size_t probes_done_ = 0;
  bool phase1_done_ = false;
  bool cs_empty_ = false;  // intersection emptied before the last window
  IntervalList cs_;

  std::vector<IntervalList> slices_;
  size_t slices_verified_ = 0;  // via Run() only

  Verifier verifier_;
  MatchStats stats_;
};

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_EXECUTOR_H_
