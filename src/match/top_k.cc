#include "match/top_k.h"

#include <algorithm>
#include <cstdlib>

namespace kvmatch {

namespace {

/// Greedy non-overlap filter: results are distance-sorted; keep a result
/// only if no kept result lies within `zone` offsets.
std::vector<MatchResult> ApplyExclusion(std::vector<MatchResult> sorted,
                                        size_t zone) {
  if (zone == 0) return sorted;
  std::vector<MatchResult> kept;
  for (const auto& r : sorted) {
    bool blocked = false;
    for (const auto& other : kept) {
      const size_t delta = r.offset > other.offset ? r.offset - other.offset
                                                   : other.offset - r.offset;
      if (delta < zone) {
        blocked = true;
        break;
      }
    }
    if (!blocked) kept.push_back(r);
  }
  return kept;
}

}  // namespace

Result<std::vector<MatchResult>> TopKMatch(
    const std::function<Result<std::vector<MatchResult>>(double epsilon)>&
        match_fn,
    size_t k, const TopKOptions& options) {
  if (k == 0) return std::vector<MatchResult>{};
  double epsilon = options.initial_epsilon;
  std::vector<MatchResult> last;
  for (int round = 0; round < options.max_rounds; ++round) {
    auto results = match_fn(epsilon);
    if (!results.ok()) return results.status();
    std::vector<MatchResult> sorted = std::move(results).value();
    std::sort(sorted.begin(), sorted.end(),
              [](const MatchResult& a, const MatchResult& b) {
                return a.distance < b.distance ||
                       (a.distance == b.distance && a.offset < b.offset);
              });
    sorted = ApplyExclusion(std::move(sorted), options.exclusion_zone);
    if (sorted.size() >= k) {
      sorted.resize(k);
      return sorted;
    }
    last = std::move(sorted);
    epsilon *= options.growth;
  }
  // Budget exhausted: return the best we saw (may be fewer than k).
  return last;
}

}  // namespace kvmatch
