#include "match/top_k.h"

#include <algorithm>
#include <cstdlib>
#include <queue>

namespace kvmatch {

bool MatchOrderLess(const MatchResult& a, const MatchResult& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.offset < b.offset;
}

bool SeriesMatchLess(const SeriesMatch& a, const SeriesMatch& b) {
  if (a.match.distance != b.match.distance) {
    return a.match.distance < b.match.distance;
  }
  if (a.series != b.series) return a.series < b.series;
  return a.match.offset < b.match.offset;
}

std::vector<SeriesMatch> MergeTopK(
    std::vector<std::vector<SeriesMatch>> sources, size_t k) {
  if (k == 0) return {};
  // Bounded max-heap: the root is the worst of the best-k-so-far, so each
  // candidate costs O(log k) and memory stays O(k) no matter how many
  // shards contribute.
  const auto worse = [](const SeriesMatch& a, const SeriesMatch& b) {
    return SeriesMatchLess(a, b);  // max-heap under the total order
  };
  std::priority_queue<SeriesMatch, std::vector<SeriesMatch>,
                      decltype(worse)>
      heap(worse);
  for (auto& source : sources) {
    for (auto& sm : source) {
      if (heap.size() < k) {
        heap.push(std::move(sm));
      } else if (SeriesMatchLess(sm, heap.top())) {
        heap.pop();
        heap.push(std::move(sm));
      }
    }
  }
  std::vector<SeriesMatch> merged(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    merged[i] = heap.top();
    heap.pop();
  }
  return merged;
}

namespace {

/// Greedy non-overlap filter: results are distance-sorted; keep a result
/// only if no kept result lies within `zone` offsets.
std::vector<MatchResult> ApplyExclusion(std::vector<MatchResult> sorted,
                                        size_t zone) {
  if (zone == 0) return sorted;
  std::vector<MatchResult> kept;
  for (const auto& r : sorted) {
    bool blocked = false;
    for (const auto& other : kept) {
      const size_t delta = r.offset > other.offset ? r.offset - other.offset
                                                   : other.offset - r.offset;
      if (delta < zone) {
        blocked = true;
        break;
      }
    }
    if (!blocked) kept.push_back(r);
  }
  return kept;
}

}  // namespace

Result<std::vector<MatchResult>> TopKMatch(
    const std::function<Result<std::vector<MatchResult>>(double epsilon)>&
        match_fn,
    size_t k, const TopKOptions& options) {
  if (k == 0) return std::vector<MatchResult>{};
  double epsilon = options.initial_epsilon;
  std::vector<MatchResult> last;
  for (int round = 0; round < options.max_rounds; ++round) {
    auto results = match_fn(epsilon);
    if (!results.ok()) return results.status();
    std::vector<MatchResult> sorted = std::move(results).value();
    std::sort(sorted.begin(), sorted.end(), MatchOrderLess);
    sorted = ApplyExclusion(std::move(sorted), options.exclusion_zone);
    if (sorted.size() >= k) {
      sorted.resize(k);
      return sorted;
    }
    last = std::move(sorted);
    epsilon *= options.growth;
  }
  // Budget exhausted: return the best we saw (may be fewer than k).
  return last;
}

}  // namespace kvmatch
