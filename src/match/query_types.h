// Query specification shared by KV-match, KV-matchDP and the baselines.
#ifndef KVMATCH_MATCH_QUERY_TYPES_H_
#define KVMATCH_MATCH_QUERY_TYPES_H_

#include <cstddef>
#include <cstdint>

#include "index/kv_index.h"

namespace kvmatch {

/// The four query types served by a single KV-index (paper §II, §III),
/// plus RSM under the L1 norm — the paper's "more distance measures"
/// future work (§X). L1 admits the same mean-range filtering: by the
/// triangle inequality Σ_window |s_j - q_j| >= w·|µ^S_i - µ^Q_i|, so
/// L1(S, Q) <= ε implies µ^S_i ∈ [µ^Q_i - ε/w, µ^Q_i + ε/w].
enum class QueryType {
  kRsmEd,    // raw ε-match, Euclidean
  kRsmDtw,   // raw ε-match, banded DTW
  kCnsmEd,   // (ε, α, β)-match on normalized series, Euclidean
  kCnsmDtw,  // (ε, α, β)-match on normalized series, banded DTW
  kRsmL1,    // raw ε-match, Manhattan (L1)
};

inline bool IsNormalized(QueryType t) {
  return t == QueryType::kCnsmEd || t == QueryType::kCnsmDtw;
}
inline bool IsDtw(QueryType t) {
  return t == QueryType::kRsmDtw || t == QueryType::kCnsmDtw;
}
inline bool IsL1(QueryType t) { return t == QueryType::kRsmL1; }

/// Full query parameterization.
struct QueryParams {
  QueryType type = QueryType::kRsmEd;
  double epsilon = 0.0;  // distance threshold ε (raw or normalized space)
  double alpha = 1.0;    // cNSM amplitude-scaling knob, α >= 1
  double beta = 0.0;     // cNSM offset-shifting knob, β >= 0
  size_t rho = 0;        // Sakoe-Chiba band width for DTW
};

/// One match: the subsequence X(offset, |Q|) and its distance to Q
/// (normalized distance for cNSM types).
struct MatchResult {
  size_t offset = 0;
  double distance = 0.0;

  bool operator==(const MatchResult&) const = default;
};

/// End-to-end statistics for one query, feeding the paper's evaluation
/// metrics (#candidates, #index accesses, runtime split).
struct MatchStats {
  ProbeStats probe;
  uint64_t candidate_positions = 0;  // n_P(CS): subsequences verified
  uint64_t candidate_intervals = 0;  // n_I(CS): data fetches in phase 2
  uint64_t distance_calls = 0;       // full distance computations
  uint64_t lb_pruned = 0;            // candidates killed by lower bounds
  uint64_t constraint_pruned = 0;    // cNSM candidates killed by α/β checks
  double phase1_ms = 0.0;
  double phase2_ms = 0.0;

  void Add(const MatchStats& o) {
    probe.Add(o.probe);
    candidate_positions += o.candidate_positions;
    candidate_intervals += o.candidate_intervals;
    distance_calls += o.distance_calls;
    lb_pruned += o.lb_pruned;
    constraint_pruned += o.constraint_pruned;
    phase1_ms += o.phase1_ms;
    phase2_ms += o.phase2_ms;
  }
};

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_QUERY_TYPES_H_
