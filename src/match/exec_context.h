// Cooperative execution context threaded through the two-phase match
// pipeline: a cancellation token plus an absolute deadline, checked at
// every phase-1 window probe and every phase-2 verify slice. A query that
// observes either condition stops at the next checkpoint and returns
// Cancelled / DeadlineExceeded with whatever stats it accumulated, instead
// of running a 100M-point scan to completion.
#ifndef KVMATCH_MATCH_EXEC_CONTEXT_H_
#define KVMATCH_MATCH_EXEC_CONTEXT_H_

#include <chrono>

#include "common/cancel.h"
#include "common/status.h"

namespace kvmatch {

class QueryTrace;  // service/trace.h — optional per-request span sink

/// Per-execution context. Both members are optional: a default ExecContext
/// never aborts, so wrapper APIs that predate the executor keep their
/// run-to-completion semantics.
struct ExecContext {
  /// Borrowed; must outlive the execution. Null disables cancellation.
  const CancelToken* cancel = nullptr;
  /// Absolute deadline; time_point::max() disables it.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Borrowed span sink; null (the default) disables tracing, reducing
  /// every hook in the executor to a single pointer test.
  QueryTrace* trace = nullptr;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }

  /// The checkpoint test: OK to continue, or the abort reason. Cancellation
  /// wins over an expired deadline when both hold (the explicit request is
  /// the stronger signal).
  Status Check() const {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline() && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("query deadline expired mid-flight");
    }
    return Status::OK();
  }
};

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_EXEC_CONTEXT_H_
