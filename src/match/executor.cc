#include "match/executor.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "service/trace.h"

namespace kvmatch {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Status ValidateSegments(std::span<const double> q,
                        const std::vector<QuerySegment>& segments) {
  if (segments.empty()) {
    return Status::InvalidArgument("empty query segmentation");
  }
  size_t expect = 0;
  for (const auto& seg : segments) {
    if (seg.index == nullptr) {
      return Status::InvalidArgument("segment has no index");
    }
    if (seg.length != seg.index->window()) {
      return Status::InvalidArgument("segment length != index window");
    }
    if (seg.offset != expect) {
      return Status::InvalidArgument("segments must tile a prefix of Q");
    }
    expect += seg.length;
  }
  if (expect > q.size()) {
    return Status::InvalidArgument("segmentation longer than Q");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<QueryExecutor>> QueryExecutor::Create(
    const TimeSeries& series, const PrefixStats& prefix,
    std::span<const double> q, const QueryParams& params,
    std::vector<QuerySegment> segments, const MatchOptions& options) {
  KVMATCH_RETURN_NOT_OK(ValidateSegments(q, segments));
  return std::unique_ptr<QueryExecutor>(new QueryExecutor(
      series, prefix, q, params, std::move(segments), options));
}

QueryExecutor::QueryExecutor(const TimeSeries& series,
                             const PrefixStats& prefix,
                             std::span<const double> q,
                             const QueryParams& params,
                             std::vector<QuerySegment> segments,
                             const MatchOptions& options)
    : series_(series),
      prefix_(prefix),
      q_(q.begin(), q.end()),
      params_(params),
      options_(options),
      segments_(std::move(segments)),
      verifier_(series, prefix) {
  // The window-range computation and the reorder estimate scan are
  // phase-1 work: time them so phase1_ms matches the pre-executor
  // accounting.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<size_t> lengths;
  lengths.reserve(segments_.size());
  for (const auto& seg : segments_) lengths.push_back(seg.length);
  windows_ = ComputeQueryWindowsSegmented(q_, lengths, params_);

  // Probe order (§VI-C: smaller estimated RList first).
  probe_order_.resize(segments_.size());
  std::iota(probe_order_.begin(), probe_order_.end(), 0);
  if (options_.reorder_windows) {
    std::vector<uint64_t> est(segments_.size());
    for (size_t i = 0; i < segments_.size(); ++i) {
      est[i] = segments_[i].index->EstimateIntervals(windows_[i].lr,
                                                     windows_[i].ur);
    }
    std::stable_sort(probe_order_.begin(), probe_order_.end(),
                     [&](size_t a, size_t b) { return est[a] < est[b]; });
  }
  probe_limit_ = options_.max_windows == 0
                     ? probe_order_.size()
                     : std::min(probe_order_.size(), options_.max_windows);
  stats_.phase1_ms += MsSince(t0);
  if (probe_limit_ == 0) FinishPhase1();
}

Status QueryExecutor::StepProbe() {
  if (phase1_done_) {
    return Status::InvalidArgument("phase 1 already complete");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const size_t i = probe_order_[probes_done_];
  auto is = segments_[i].index->ProbeRange(windows_[i].lr, windows_[i].ur,
                                           &stats_.probe);
  if (!is.ok()) {
    stats_.phase1_ms += MsSince(t0);
    return is.status();
  }
  const IntervalList cs_i =
      is.value().ShiftLeft(static_cast<int64_t>(windows_[i].offset));
  if (probes_done_ == 0) {
    cs_ = cs_i;
  } else {
    cs_ = IntervalList::Intersect(cs_, cs_i);
  }
  probes_done_ += 1;
  if (cs_.empty()) cs_empty_ = true;
  stats_.phase1_ms += MsSince(t0);
  if (cs_empty_ || probes_done_ == probe_limit_) FinishPhase1();
  return Status::OK();
}

void QueryExecutor::FinishPhase1() {
  // A candidate must host a full |Q| subsequence.
  const size_t m = q_.size();
  if (probe_limit_ == 0 || cs_empty_ || series_.size() < m) {
    cs_ = IntervalList();
  } else {
    IntervalList full_range;
    full_range.AppendInterval({0, static_cast<int64_t>(series_.size() - m)});
    cs_ = IntervalList::Intersect(cs_, full_range);
  }
  stats_.candidate_intervals = cs_.num_intervals();
  stats_.candidate_positions = static_cast<uint64_t>(cs_.num_positions());
  phase1_done_ = true;
}

Status QueryExecutor::RunPhase1(const ExecContext& ctx) {
  // Already complete (e.g. Run() after an explicit RunPhase1): no work,
  // and no empty duplicate probe span on the trace.
  if (phase1_done_) return Status::OK();
  const auto t0 = std::chrono::steady_clock::now();
  const size_t probes0 = probes_done_;
  const uint64_t rows0 = stats_.probe.rows_fetched;
  Status st = Status::OK();
  while (!phase1_done_) {
    st = ctx.Check();
    if (!st.ok()) break;
    st = StepProbe();
    if (!st.ok()) break;
  }
  if (ctx.trace != nullptr) {
    // Span recorded even on abort, covering the windows actually stepped.
    ctx.trace->AddSpan(
        kSpanProbe, t0, std::chrono::steady_clock::now(),
        {{"windows", probes_done_ - probes0},
         {"rows_fetched", stats_.probe.rows_fetched - rows0}});
  }
  return st;
}

size_t QueryExecutor::SliceCandidates(size_t max_positions) {
  slices_.clear();
  slices_verified_ = 0;
  if (cs_.empty()) return 0;
  if (max_positions == 0) {
    slices_.push_back(cs_);
    return 1;
  }
  IntervalList current;
  int64_t current_positions = 0;
  for (const auto& wi : cs_.intervals()) {
    int64_t l = wi.l;
    while (l <= wi.r) {
      const int64_t room =
          static_cast<int64_t>(max_positions) - current_positions;
      if (room <= 0) {
        slices_.push_back(std::move(current));
        current = IntervalList();
        current_positions = 0;
        continue;
      }
      const int64_t r = std::min(wi.r, l + room - 1);
      current.AppendInterval({l, r});
      current_positions += r - l + 1;
      l = r + 1;
    }
  }
  if (!current.empty()) slices_.push_back(std::move(current));
  return slices_.size();
}

Result<std::vector<MatchResult>> QueryExecutor::VerifySlice(
    size_t i, const ExecContext& ctx, MatchStats* stats) const {
  KVMATCH_RETURN_NOT_OK(ctx.Check());
  if (i >= slices_.size()) {
    return Status::InvalidArgument("verify slice out of range");
  }
  const auto t0 = std::chrono::steady_clock::now();
  MatchStats local;
  std::vector<MatchResult> results;
  const Status st = verifier_.VerifyCancellable(q_, params_, slices_[i], ctx,
                                                &results, &local,
                                                options_.verify);
  local.phase2_ms = MsSince(t0);
  if (!st.ok()) {
    // Partial counters (and the time burned) still reach the caller so an
    // aborted query reports what it actually did.
    if (stats != nullptr) stats->Add(local);
    return st;
  }
  if (ctx.trace != nullptr) {
    // One span per slice; the recording thread becomes the span's worker
    // id, so parallel verify shows up as overlapping lanes in the trace.
    ctx.trace->AddSpan(
        kSpanVerify, t0, std::chrono::steady_clock::now(),
        {{"slice", i},
         {"candidates", static_cast<uint64_t>(slices_[i].num_positions())},
         {"distance_calls", local.distance_calls},
         {"lb_pruned", local.lb_pruned},
         {"constraint_pruned", local.constraint_pruned}});
  }
  if (stats != nullptr) stats->Add(local);
  return results;
}

Result<std::vector<MatchResult>> QueryExecutor::Run(const ExecContext& ctx,
                                                    MatchStats* stats,
                                                    const MatchSink* sink) {
  auto report = [&] {
    if (stats != nullptr) stats->Add(stats_);
  };
  if (Status st = RunPhase1(ctx); !st.ok()) {
    report();
    return st;
  }
  if (slices_.empty()) SliceCandidates(kDefaultSlicePositions);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<MatchResult> results;
  for (size_t i = 0; i < slices_.size(); ++i) {
    MatchStats slice_stats;
    auto part = VerifySlice(i, ctx, &slice_stats);
    // The slice's wall time is folded into the phase-wide figure below.
    slice_stats.phase2_ms = 0.0;
    stats_.Add(slice_stats);
    if (!part.ok()) {
      stats_.phase2_ms += MsSince(t0);
      report();
      return part.status();
    }
    slices_verified_ += 1;
    if (sink != nullptr && *sink) {
      if (!part->empty()) (*sink)(*part);
    } else {
      results.insert(results.end(), part->begin(), part->end());
    }
  }
  stats_.phase2_ms += MsSince(t0);
  report();
  return results;
}

}  // namespace kvmatch
