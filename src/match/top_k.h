// Top-K subsequence search on top of ε-match (engineering extension; the
// paper's engine answers threshold queries, while exploratory users often
// want "the k best matches" — UCR Suite's native mode).
//
// Strategy: run ε-match with geometrically growing ε until at least k
// results arrive, then keep the k smallest distances. Correct because an
// ε-match with ε >= d_k returns every subsequence within d_k, so the k
// smallest of the final round are the global top-k.
#ifndef KVMATCH_MATCH_TOP_K_H_
#define KVMATCH_MATCH_TOP_K_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "match/query_types.h"

namespace kvmatch {

/// Canonical result order for a single series: (distance, offset),
/// strictly increasing. Every top-k producer sorts with this comparator,
/// so equal-distance results always come back in the same order — the
/// contract that lets a federated answer be byte-identical to the
/// single-node one.
bool MatchOrderLess(const MatchResult& a, const MatchResult& b);

/// A match tagged with the series it came from — the unit of cross-series
/// (federated) merging, where MatchResult alone is ambiguous.
struct SeriesMatch {
  std::string series;
  MatchResult match;

  bool operator==(const SeriesMatch&) const = default;
};

/// The (distance, series, offset) total order over tagged matches. Two
/// distinct tagged matches never compare equal (a series cannot produce
/// the same offset twice), so any sort under this order is deterministic
/// regardless of the producer's internal heap/slice scheduling.
bool SeriesMatchLess(const SeriesMatch& a, const SeriesMatch& b);

/// Merges per-source top-k result lists (each list internally arbitrary)
/// into the global k smallest under SeriesMatchLess, using a bounded
/// max-heap of size k — the coordinator's cross-shard top-k merge.
std::vector<SeriesMatch> MergeTopK(
    std::vector<std::vector<SeriesMatch>> sources, size_t k);

struct TopKOptions {
  double initial_epsilon = 0.5;
  double growth = 2.0;       // ε multiplier per round
  int max_rounds = 40;       // gives up past initial · growth^max_rounds
  /// Exclude trivial matches: keep at most one result per window of this
  /// many offsets (0 disables). UCR-style non-overlap handling.
  size_t exclusion_zone = 0;
};

/// `match_fn` runs one ε-match (e.g. wraps KvMatcher::Match or
/// KvMatchDp::Match with everything but ε bound). Returns the k best
/// matches sorted by distance; fewer if the series has fewer eligible
/// offsets or max_rounds is exhausted.
Result<std::vector<MatchResult>> TopKMatch(
    const std::function<Result<std::vector<MatchResult>>(double epsilon)>&
        match_fn,
    size_t k, const TopKOptions& options = {});

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_TOP_K_H_
