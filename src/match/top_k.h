// Top-K subsequence search on top of ε-match (engineering extension; the
// paper's engine answers threshold queries, while exploratory users often
// want "the k best matches" — UCR Suite's native mode).
//
// Strategy: run ε-match with geometrically growing ε until at least k
// results arrive, then keep the k smallest distances. Correct because an
// ε-match with ε >= d_k returns every subsequence within d_k, so the k
// smallest of the final round are the global top-k.
#ifndef KVMATCH_MATCH_TOP_K_H_
#define KVMATCH_MATCH_TOP_K_H_

#include <functional>
#include <span>
#include <vector>

#include "match/query_types.h"

namespace kvmatch {

struct TopKOptions {
  double initial_epsilon = 0.5;
  double growth = 2.0;       // ε multiplier per round
  int max_rounds = 40;       // gives up past initial · growth^max_rounds
  /// Exclude trivial matches: keep at most one result per window of this
  /// many offsets (0 disables). UCR-style non-overlap handling.
  size_t exclusion_zone = 0;
};

/// `match_fn` runs one ε-match (e.g. wraps KvMatcher::Match or
/// KvMatchDp::Match with everything but ε bound). Returns the k best
/// matches sorted by distance; fewer if the series has fewer eligible
/// offsets or max_rounds is exhausted.
Result<std::vector<MatchResult>> TopKMatch(
    const std::function<Result<std::vector<MatchResult>>(double epsilon)>&
        match_fn,
    size_t k, const TopKOptions& options = {});

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_TOP_K_H_
