// Per-window mean-value ranges [LR_i, UR_i] for the four query types
// (paper Lemmas 1-4). Any subsequence in ε-match / (ε,α,β)-match with Q has
// every disjoint-window mean inside the corresponding range, so windows
// outside the range are safely filtered.
#ifndef KVMATCH_MATCH_QUERY_RANGES_H_
#define KVMATCH_MATCH_QUERY_RANGES_H_

#include <span>
#include <vector>

#include "match/query_types.h"

namespace kvmatch {

/// One disjoint query window and its admissible data-window mean range.
struct QueryWindow {
  size_t offset = 0;  // start within Q
  size_t length = 0;  // w for this window
  double lr = 0.0;    // lower bound of admissible µ_S_i
  double ur = 0.0;    // upper bound
};

/// Query-global precomputation reused across per-window range requests
/// (the DP segmenter evaluates O(m'·L) candidate windows).
struct QueryRangeContext {
  explicit QueryRangeContext(std::span<const double> q,
                             const QueryParams& params);

  std::span<const double> q;
  QueryParams params;
  double mu_q = 0.0;
  double sigma_q = 0.0;
  // Envelope prefix sums (DTW types): env_lower_sum[i] = sum of L[0..i).
  std::vector<double> env_lower_sum;
  std::vector<double> env_upper_sum;
  // Plain prefix sum of q (ED types).
  std::vector<double> q_sum;
};

/// Computes [LR, UR] for the single window Q(offset, len) under the
/// context's query type (Lemmas 1-4; each proof involves only one window).
QueryWindow ComputeWindowRange(const QueryRangeContext& ctx, size_t offset,
                               size_t len);

/// Splits Q into p = ⌊|Q|/w⌋ disjoint length-w windows and computes their
/// ranges for the given query type (the trailing remainder is ignored, as
/// the lemmas are necessary conditions; paper §V-A).
std::vector<QueryWindow> ComputeQueryWindows(std::span<const double> q,
                                             size_t w,
                                             const QueryParams& params);

/// Variable-length variant used by KV-matchDP: `lengths[i]` is the length
/// of the i-th disjoint window (must sum to <= |Q|). The lemma proofs only
/// ever involve one window, so they carry over unchanged (paper §VI-A).
std::vector<QueryWindow> ComputeQueryWindowsSegmented(
    std::span<const double> q, const std::vector<size_t>& lengths,
    const QueryParams& params);

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_QUERY_RANGES_H_
