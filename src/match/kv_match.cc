#include "match/kv_match.h"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace kvmatch {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Status ValidateSegments(std::span<const double> q,
                        const std::vector<QuerySegment>& segments) {
  if (segments.empty()) {
    return Status::InvalidArgument("empty query segmentation");
  }
  size_t expect = 0;
  for (const auto& seg : segments) {
    if (seg.index == nullptr) {
      return Status::InvalidArgument("segment has no index");
    }
    if (seg.length != seg.index->window()) {
      return Status::InvalidArgument("segment length != index window");
    }
    if (seg.offset != expect) {
      return Status::InvalidArgument("segments must tile a prefix of Q");
    }
    expect += seg.length;
  }
  if (expect > q.size()) {
    return Status::InvalidArgument("segmentation longer than Q");
  }
  return Status::OK();
}

}  // namespace

Result<IntervalList> ComputeCandidateSet(
    const TimeSeries& series, std::span<const double> q,
    const QueryParams& params, const std::vector<QuerySegment>& segments,
    MatchStats* stats, const MatchOptions& options) {
  KVMATCH_RETURN_NOT_OK(ValidateSegments(q, segments));
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<size_t> lengths;
  lengths.reserve(segments.size());
  for (const auto& seg : segments) lengths.push_back(seg.length);
  const std::vector<QueryWindow> windows =
      ComputeQueryWindowsSegmented(q, lengths, params);

  // Choose processing order (§VI-C: smaller estimated RList first).
  std::vector<size_t> order(segments.size());
  std::iota(order.begin(), order.end(), 0);
  if (options.reorder_windows) {
    std::vector<uint64_t> est(segments.size());
    for (size_t i = 0; i < segments.size(); ++i) {
      est[i] = segments[i].index->EstimateIntervals(windows[i].lr,
                                                    windows[i].ur);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return est[a] < est[b]; });
  }
  size_t limit = options.max_windows == 0
                     ? order.size()
                     : std::min(order.size(), options.max_windows);

  IntervalList cs;
  bool first = true;
  for (size_t k = 0; k < limit; ++k) {
    const size_t i = order[k];
    auto is = segments[i].index->ProbeRange(
        windows[i].lr, windows[i].ur,
        stats == nullptr ? nullptr : &stats->probe);
    if (!is.ok()) return is.status();
    const IntervalList cs_i =
        is.value().ShiftLeft(static_cast<int64_t>(windows[i].offset));
    if (first) {
      cs = cs_i;
      first = false;
    } else {
      cs = IntervalList::Intersect(cs, cs_i);
    }
    if (cs.empty()) break;
  }

  // A candidate must host a full |Q| subsequence.
  const size_t m = q.size();
  if (series.size() < m) {
    cs = IntervalList();
  } else {
    IntervalList full_range;
    full_range.AppendInterval({0, static_cast<int64_t>(series.size() - m)});
    cs = IntervalList::Intersect(cs, full_range);
  }

  if (stats != nullptr) {
    stats->candidate_intervals = cs.num_intervals();
    stats->candidate_positions = static_cast<uint64_t>(cs.num_positions());
    stats->phase1_ms = MsSince(t0);
  }
  return cs;
}

Result<std::vector<MatchResult>> MatchWithSegments(
    const TimeSeries& series, const PrefixStats& prefix,
    std::span<const double> q, const QueryParams& params,
    const std::vector<QuerySegment>& segments, MatchStats* stats,
    const MatchOptions& options) {
  auto cs = ComputeCandidateSet(series, q, params, segments, stats, options);
  if (!cs.ok()) return cs.status();

  const auto t1 = std::chrono::steady_clock::now();
  Verifier verifier(series, prefix);
  std::vector<MatchResult> results =
      verifier.Verify(q, params, cs.value(), stats, options.verify);
  if (stats != nullptr) {
    stats->phase2_ms = MsSince(t1);
  }
  return results;
}

Result<std::vector<MatchResult>> KvMatcher::Match(
    std::span<const double> q, const QueryParams& params, MatchStats* stats,
    const MatchOptions& options) const {
  const size_t w = index_.window();
  if (w == 0 || q.size() < w) {
    return Status::InvalidArgument("query shorter than index window");
  }
  const size_t p = q.size() / w;
  std::vector<QuerySegment> segments(p);
  for (size_t i = 0; i < p; ++i) {
    segments[i] = {&index_, i * w, w};
  }
  return MatchWithSegments(series_, prefix_, q, params, segments, stats,
                           options);
}

}  // namespace kvmatch
