#include "match/kv_match.h"

#include "match/executor.h"

namespace kvmatch {

// The two-phase pipeline lives in QueryExecutor; these single-shot entry
// points exist so baselines, benches and tests keep their original
// shapes (and so a default ExecContext preserves the old
// run-to-completion semantics exactly).

Result<IntervalList> ComputeCandidateSet(
    const TimeSeries& series, std::span<const double> q,
    const QueryParams& params, const std::vector<QuerySegment>& segments,
    MatchStats* stats, const MatchOptions& options, const ExecContext& ctx) {
  // Phase 1 never touches the prefix oracle; an empty one outliving the
  // executor keeps the reference valid without building O(n) sums.
  const PrefixStats no_prefix;
  auto executor = QueryExecutor::Create(series, no_prefix, q, params,
                                        segments, options);
  if (!executor.ok()) return executor.status();
  Status st = (*executor)->RunPhase1(ctx);
  if (stats != nullptr) stats->Add((*executor)->stats());
  KVMATCH_RETURN_NOT_OK(st);
  return (*executor)->candidates();
}

Result<std::vector<MatchResult>> MatchWithSegments(
    const TimeSeries& series, const PrefixStats& prefix,
    std::span<const double> q, const QueryParams& params,
    const std::vector<QuerySegment>& segments, MatchStats* stats,
    const MatchOptions& options, const ExecContext& ctx) {
  auto executor =
      QueryExecutor::Create(series, prefix, q, params, segments, options);
  if (!executor.ok()) return executor.status();
  return (*executor)->Run(ctx, stats);
}

Result<std::vector<MatchResult>> KvMatcher::Match(
    std::span<const double> q, const QueryParams& params, MatchStats* stats,
    const MatchOptions& options, const ExecContext& ctx) const {
  const size_t w = index_.window();
  if (w == 0 || q.size() < w) {
    return Status::InvalidArgument("query shorter than index window");
  }
  const size_t p = q.size() / w;
  std::vector<QuerySegment> segments(p);
  for (size_t i = 0; i < p; ++i) {
    segments[i] = {&index_, i * w, w};
  }
  return MatchWithSegments(series_, prefix_, q, params, segments, stats,
                           options, ctx);
}

}  // namespace kvmatch
