// Phase-2 verification (paper §V-C, last paragraph): fetch candidate
// subsequences, apply the cNSM constraints and UCR-style lower bounds, and
// compute exact distances for the survivors.
#ifndef KVMATCH_MATCH_VERIFIER_H_
#define KVMATCH_MATCH_VERIFIER_H_

#include <span>
#include <vector>

#include "index/interval.h"
#include "match/query_types.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {

/// Tunable verification options (lower-bound cascade toggles used by the
/// ablation benchmarks).
struct VerifyOptions {
  bool use_lb_kim = true;    // DTW only
  bool use_lb_keogh = true;  // DTW only
  bool use_reordered_ed = true;
};

/// Verifies every candidate start offset in `cs` (interpreted as candidate
/// subsequence start positions, already shifted by the matcher) against Q.
/// Results are ordered by offset. `stats` may be null.
class Verifier {
 public:
  /// `prefix` must be built over `series`; it supplies O(1) µ_S / σ_S.
  Verifier(const TimeSeries& series, const PrefixStats& prefix);

  std::vector<MatchResult> Verify(std::span<const double> q,
                                  const QueryParams& params,
                                  const IntervalList& cs,
                                  MatchStats* stats = nullptr,
                                  const VerifyOptions& options = {}) const;

 private:
  const TimeSeries& series_;
  const PrefixStats& prefix_;
};

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_VERIFIER_H_
