// Phase-2 verification (paper §V-C, last paragraph): fetch candidate
// subsequences, apply the cNSM constraints and UCR-style lower bounds, and
// compute exact distances for the survivors.
//
// The hot path is cache-blocked and SIMD-dispatched: runs of contiguous
// candidate offsets are gathered into a 64-byte-aligned scratch block, the
// per-window mean/std come from one batch rolling-stats kernel over the
// prefix arrays, and the lower-bound cascade then runs candidate-at-a-time
// over the block with early abandoning intact. Distance loops go through
// the runtime-dispatched kernel table in distance/simd/ (AVX2 when the CPU
// has it, scalar otherwise or under KVMATCH_FORCE_SCALAR).
#ifndef KVMATCH_MATCH_VERIFIER_H_
#define KVMATCH_MATCH_VERIFIER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "distance/simd/kernels.h"
#include "index/interval.h"
#include "match/exec_context.h"
#include "match/query_types.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {

/// Tunable verification options (lower-bound cascade toggles used by the
/// ablation benchmarks).
struct VerifyOptions {
  bool use_lb_kim = true;    // DTW only
  bool use_lb_keogh = true;  // DTW only
  bool use_reordered_ed = true;

  /// Kernel-table override for tests and ablations; null (the default)
  /// uses the process-wide dispatched table.
  const simd::Kernels* kernels = nullptr;

  /// Candidates gathered per aligned block. The default keeps a block of
  /// typical query lengths within L2 while amortizing the batch mean/std
  /// kernel; 0 is clamped to 1.
  size_t block_candidates = 512;
};

/// Verifies every candidate start offset in `cs` (interpreted as candidate
/// subsequence start positions, already shifted by the matcher) against Q.
/// Results are ordered by offset. `stats` may be null.
class Verifier {
 public:
  /// `prefix` must be built over `series`; it supplies O(1) µ_S / σ_S.
  Verifier(const TimeSeries& series, const PrefixStats& prefix);

  /// Cancellable form: appends matches to `*results` in offset order and
  /// checks `ctx` per candidate — the cancel token (relaxed atomic) on
  /// every candidate and additionally between DTW rows, the deadline
  /// (a clock read) every kDeadlineStride candidates. On Cancelled /
  /// DeadlineExceeded, `*results` and `*stats` hold the work completed so
  /// far.
  Status VerifyCancellable(std::span<const double> q,
                           const QueryParams& params, const IntervalList& cs,
                           const ExecContext& ctx,
                           std::vector<MatchResult>* results,
                           MatchStats* stats = nullptr,
                           const VerifyOptions& options = {}) const;

  /// Run-to-completion wrapper around VerifyCancellable (default
  /// ExecContext never aborts).
  std::vector<MatchResult> Verify(std::span<const double> q,
                                  const QueryParams& params,
                                  const IntervalList& cs,
                                  MatchStats* stats = nullptr,
                                  const VerifyOptions& options = {}) const;

  /// Deadline poll stride, in candidates (the cancel token is polled every
  /// candidate; steady_clock reads are ~20-30ns, so they are amortized).
  static constexpr size_t kDeadlineStride = 64;

 private:
  const TimeSeries& series_;
  const PrefixStats& prefix_;
};

}  // namespace kvmatch

#endif  // KVMATCH_MATCH_VERIFIER_H_
