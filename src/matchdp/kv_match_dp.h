// KV-matchDP (paper §VI): matching with multiple variable-window indexes.
//
// The query is segmented by the DP of segmenter.h, each window is probed
// against the index of its own length, and the rest of the pipeline is the
// shared Algorithm 1 machinery (shift, intersect, verify).
#ifndef KVMATCH_MATCHDP_KV_MATCH_DP_H_
#define KVMATCH_MATCHDP_KV_MATCH_DP_H_

#include <memory>
#include <span>
#include <vector>

#include "match/executor.h"
#include "match/kv_match.h"
#include "matchdp/segmenter.h"

namespace kvmatch {

class KvMatchDp {
 public:
  /// `indexes[k]` must have window wu·2^k over `series`; all referenced
  /// objects must outlive the matcher.
  KvMatchDp(const TimeSeries& series, const PrefixStats& prefix,
            std::vector<const KvIndex*> indexes)
      : series_(series), prefix_(prefix), indexes_(std::move(indexes)) {}

  /// Processes any of the four query types; |Q| must be >= wu.
  Result<std::vector<MatchResult>> Match(std::span<const double> q,
                                         const QueryParams& params,
                                         MatchStats* stats = nullptr,
                                         const MatchOptions& options = {},
                                         const ExecContext& ctx = {}) const;

  /// The resumable form: segments Q and returns an executor positioned
  /// before the first probe step, for orchestrators that need stepwise
  /// control (mid-query cancellation, parallel verify slices). The
  /// matcher must outlive the executor.
  Result<std::unique_ptr<QueryExecutor>> MakeExecutor(
      std::span<const double> q, const QueryParams& params,
      const MatchOptions& options = {}) const;

  /// The segmentation that Match would use (exposed for Fig. 10 analysis).
  Result<Segmentation> Segment(std::span<const double> q,
                               const QueryParams& params) const {
    return SegmentQuery(q, params, indexes_);
  }

  const std::vector<const KvIndex*>& indexes() const { return indexes_; }

 private:
  const TimeSeries& series_;
  const PrefixStats& prefix_;
  std::vector<const KvIndex*> indexes_;
};

}  // namespace kvmatch

#endif  // KVMATCH_MATCHDP_KV_MATCH_DP_H_
