#include "matchdp/kv_match_dp.h"

namespace kvmatch {

Result<std::unique_ptr<QueryExecutor>> KvMatchDp::MakeExecutor(
    std::span<const double> q, const QueryParams& params,
    const MatchOptions& options) const {
  auto sg = SegmentQuery(q, params, indexes_);
  if (!sg.ok()) return sg.status();

  std::vector<QuerySegment> segments;
  segments.reserve(sg->lengths.size());
  size_t offset = 0;
  for (size_t len : sg->lengths) {
    const KvIndex* index = nullptr;
    for (const auto* idx : indexes_) {
      if (idx->window() == len) index = idx;
    }
    if (index == nullptr) return Status::Internal("no index for segment");
    segments.push_back({index, offset, len});
    offset += len;
  }
  return QueryExecutor::Create(series_, prefix_, q, params,
                               std::move(segments), options);
}

Result<std::vector<MatchResult>> KvMatchDp::Match(
    std::span<const double> q, const QueryParams& params, MatchStats* stats,
    const MatchOptions& options, const ExecContext& ctx) const {
  auto executor = MakeExecutor(q, params, options);
  if (!executor.ok()) return executor.status();
  return (*executor)->Run(ctx, stats);
}

}  // namespace kvmatch
