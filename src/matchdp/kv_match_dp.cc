#include "matchdp/kv_match_dp.h"

namespace kvmatch {

Result<std::vector<MatchResult>> KvMatchDp::Match(
    std::span<const double> q, const QueryParams& params, MatchStats* stats,
    const MatchOptions& options) const {
  auto sg = SegmentQuery(q, params, indexes_);
  if (!sg.ok()) return sg.status();

  std::vector<QuerySegment> segments;
  segments.reserve(sg->lengths.size());
  size_t offset = 0;
  for (size_t len : sg->lengths) {
    const KvIndex* index = nullptr;
    for (const auto* idx : indexes_) {
      if (idx->window() == len) index = idx;
    }
    if (index == nullptr) return Status::Internal("no index for segment");
    segments.push_back({index, offset, len});
    offset += len;
  }
  return MatchWithSegments(series_, prefix_, q, params, segments, stats,
                           options);
}

}  // namespace kvmatch
