#include "matchdp/session.h"

namespace kvmatch {

namespace {
std::string IndexNs(const std::string& ns, size_t w) {
  return ns + "idx/w" + std::to_string(w) + "/";
}
std::string DataNs(const std::string& ns) { return ns + "data/"; }
}  // namespace

Status Session::FinishInit(Options options) {
  (void)options;
  prefix_ = PrefixStats(series_);
  index_ptrs_.clear();
  for (const auto& index : indexes_) index_ptrs_.push_back(&index);
  matcher_ = std::make_unique<KvMatchDp>(series_, prefix_, index_ptrs_);
  return Status::OK();
}

Result<std::unique_ptr<Session>> Session::FromSeries(TimeSeries series,
                                                     Options options) {
  if (series.size() < options.wu) {
    return Status::InvalidArgument("series shorter than smallest window");
  }
  auto session = std::unique_ptr<Session>(new Session());
  session->series_ = std::move(series);
  session->indexes_ = BuildIndexSet(session->series_, options.wu,
                                    options.levels, options.width);
  KVMATCH_RETURN_NOT_OK(session->FinishInit(options));
  return session;
}

Result<std::unique_ptr<Session>> Session::Ingest(KvStore* store,
                                                 const std::string& ns,
                                                 TimeSeries series,
                                                 Options options) {
  auto session = FromSeries(std::move(series), options);
  if (!session.ok()) return session.status();
  KVMATCH_RETURN_NOT_OK(SeriesStore::Write(store, (*session)->series_,
                                           DataNs(ns), options.series_chunk));
  for (const auto& index : (*session)->indexes_) {
    KVMATCH_RETURN_NOT_OK(index.Persist(store, IndexNs(ns, index.window())));
  }
  return session;
}

Result<std::unique_ptr<Session>> Session::Open(const KvStore* store,
                                               const std::string& ns,
                                               Options options) {
  auto series_store = SeriesStore::Open(store, DataNs(ns));
  if (!series_store.ok()) return series_store.status();
  auto series = series_store->ReadAll();
  if (!series.ok()) return series.status();

  auto session = std::unique_ptr<Session>(new Session());
  session->series_ = std::move(series).value();
  size_t w = options.wu;
  for (size_t level = 0; level < options.levels; ++level, w *= 2) {
    auto index = KvIndex::Open(store, IndexNs(ns, w));
    if (!index.ok()) return index.status();
    if (options.row_cache_rows > 0) {
      index->EnableRowCache(options.row_cache_rows);
    }
    session->indexes_.push_back(std::move(index).value());
  }
  KVMATCH_RETURN_NOT_OK(session->FinishInit(options));
  return session;
}

Result<std::vector<MatchResult>> Session::Query(std::span<const double> q,
                                                const QueryParams& params,
                                                MatchStats* stats,
                                                const ExecContext& ctx) const {
  return matcher_->Match(q, params, stats, MatchOptions(), ctx);
}

Result<std::vector<MatchResult>> Session::QueryTopK(
    std::span<const double> q, QueryParams params, size_t k,
    const TopKOptions& options, const ExecContext& ctx) const {
  return TopKMatch(
      [&](double epsilon) {
        params.epsilon = epsilon;
        return matcher_->Match(q, params, nullptr, MatchOptions(), ctx);
      },
      k, options);
}

Result<std::unique_ptr<QueryExecutor>> Session::MakeExecutor(
    std::span<const double> q, const QueryParams& params,
    const MatchOptions& options) const {
  return matcher_->MakeExecutor(q, params, options);
}

uint64_t Session::IndexBytes() const {
  uint64_t bytes = 0;
  for (const auto& index : indexes_) bytes += index.EncodedSizeBytes();
  return bytes;
}

uint64_t Session::MemoryBytes() const {
  // Series values + the two prefix-sum arrays (n + 1 doubles each).
  uint64_t bytes = 8 * static_cast<uint64_t>(series_.size());
  bytes += 16 * static_cast<uint64_t>(series_.size() + 1);
  bytes += IndexBytes();
  // For store-backed indexes IndexBytes is meta-only; the warmed row
  // caches are the dominant resident state, so count them too.
  for (const auto& index : indexes_) bytes += index.RowCacheBytes();
  return bytes;
}

}  // namespace kvmatch
