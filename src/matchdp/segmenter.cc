#include "matchdp/segmenter.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "match/query_ranges.h"

namespace kvmatch {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Status ValidateIndexes(const std::vector<const KvIndex*>& indexes,
                       size_t* wu) {
  if (indexes.empty()) return Status::InvalidArgument("no indexes");
  *wu = indexes[0]->window();
  if (*wu == 0) return Status::InvalidArgument("zero window");
  size_t expect = *wu;
  for (const auto* idx : indexes) {
    if (idx == nullptr) return Status::InvalidArgument("null index");
    if (idx->window() != expect) {
      return Status::InvalidArgument(
          "index windows must be wu, 2wu, 4wu, ... in order");
    }
    expect *= 2;
  }
  return Status::OK();
}

/// log of n_I(IS) for window Q(offset, len) served by `index`; -inf when
/// the estimate is zero (an empty IS forces an empty CS — the best case).
double LogCost(const QueryRangeContext& ctx, const KvIndex& index,
               size_t offset, size_t len) {
  const QueryWindow qw = ComputeWindowRange(ctx, offset, len);
  const uint64_t c = index.EstimateIntervals(qw.lr, qw.ur);
  return c == 0 ? -kInf : std::log(static_cast<double>(c));
}

}  // namespace

Result<Segmentation> SegmentQuery(
    std::span<const double> q, const QueryParams& params,
    const std::vector<const KvIndex*>& indexes) {
  size_t wu = 0;
  KVMATCH_RETURN_NOT_OK(ValidateIndexes(indexes, &wu));
  const size_t big_l = indexes.size();
  const size_t m_prime = q.size() / wu;
  if (m_prime == 0) {
    return Status::InvalidArgument("query shorter than wu");
  }
  const double n = static_cast<double>(indexes[0]->series_length());

  const QueryRangeContext ctx(q, params);

  // Pre-compute log C_{i-ϕ+1, ϕ}: cost of the window of ϕ wu-units ending
  // at unit boundary i (1-based, as in Eq. 9).
  // cost[i][k] with ϕ = 2^k covering q[(i-ϕ)*wu, i*wu).
  std::vector<std::vector<double>> cost(
      m_prime + 1, std::vector<double>(big_l, kInf));
  for (size_t i = 1; i <= m_prime; ++i) {
    size_t phi = 1;
    for (size_t k = 0; k < big_l && phi <= i; ++k, phi *= 2) {
      cost[i][k] = LogCost(ctx, *indexes[k], (i - phi) * wu, phi * wu);
    }
  }

  // DP over (boundary i, number of windows j), log-space:
  //   lv[i][j] = min over ϕ ((j-1)·lv[i-ϕ][j-1] + log C) / j
  // Minimizing the log of the geometric mean is monotone-equivalent to
  // Eq. 9. Note -inf propagates correctly (empty IS wins outright).
  std::vector<std::vector<double>> lv(
      m_prime + 1, std::vector<double>(m_prime + 1, kInf));
  std::vector<std::vector<int>> parent(
      m_prime + 1, std::vector<int>(m_prime + 1, -1));
  lv[0][0] = 0.0;
  for (size_t i = 1; i <= m_prime; ++i) {
    for (size_t j = 1; j <= i; ++j) {
      size_t phi = 1;
      for (size_t k = 0; k < big_l && phi <= i; ++k, phi *= 2) {
        const double prev = lv[i - phi][j - 1];
        if (prev == kInf || cost[i][k] == kInf) continue;
        double v;
        if (prev == -kInf || cost[i][k] == -kInf) {
          v = -kInf;
        } else {
          v = (static_cast<double>(j - 1) * prev + cost[i][k]) /
              static_cast<double>(j);
        }
        if (v < lv[i][j]) {
          lv[i][j] = v;
          parent[i][j] = static_cast<int>(phi);
        }
      }
    }
  }

  // Best window count at the full prefix.
  size_t best_j = 0;
  double best = kInf;
  for (size_t j = 1; j <= m_prime; ++j) {
    if (lv[m_prime][j] < best) {
      best = lv[m_prime][j];
      best_j = j;
    }
  }
  if (best_j == 0) {
    return Status::Internal("segmentation DP found no solution");
  }

  Segmentation sg;
  size_t i = m_prime, j = best_j;
  while (i > 0) {
    const int phi = parent[i][j];
    sg.lengths.push_back(static_cast<size_t>(phi) * wu);
    i -= static_cast<size_t>(phi);
    --j;
  }
  std::reverse(sg.lengths.begin(), sg.lengths.end());
  // F = exp(lv) / n  (geometric mean of n_I over n).
  sg.objective = best == -kInf ? 0.0 : std::exp(best) / n;
  return sg;
}

Result<double> EvaluateSegmentation(
    std::span<const double> q, const QueryParams& params,
    const std::vector<const KvIndex*>& indexes,
    const std::vector<size_t>& lengths) {
  size_t wu = 0;
  KVMATCH_RETURN_NOT_OK(ValidateIndexes(indexes, &wu));
  const QueryRangeContext ctx(q, params);
  const double n = static_cast<double>(indexes[0]->series_length());
  double log_sum = 0.0;
  size_t offset = 0;
  for (size_t len : lengths) {
    if (offset + len > q.size()) {
      return Status::InvalidArgument("segmentation longer than Q");
    }
    // Locate the index serving this length.
    const KvIndex* index = nullptr;
    for (const auto* idx : indexes) {
      if (idx->window() == len) index = idx;
    }
    if (index == nullptr) {
      return Status::InvalidArgument("segment length not in Σ");
    }
    const double lc = LogCost(ctx, *index, offset, len);
    if (lc == -kInf) return 0.0;
    log_sum += lc;
    offset += len;
  }
  if (lengths.empty()) return Status::InvalidArgument("empty segmentation");
  return std::exp(log_sum / static_cast<double>(lengths.size())) / n;
}

}  // namespace kvmatch
