// Dynamic query segmentation for KV-matchDP (paper §VI, Algorithm 2).
//
// Given indexes with window lengths Σ = {wu·2^(k-1) | 1 <= k <= L}, split
// the query into disjoint windows (each with length ∈ Σ) minimizing the
// objective F(SG) = (∏ n_I(IS_i) / n)^(1/p) — the geometric mean of the
// per-window interval counts (Eq. 8). n_I(IS_i) is estimated from the meta
// tables alone, so segmentation costs no row I/O.
#ifndef KVMATCH_MATCHDP_SEGMENTER_H_
#define KVMATCH_MATCHDP_SEGMENTER_H_

#include <span>
#include <vector>

#include "index/kv_index.h"
#include "match/query_types.h"

namespace kvmatch {

struct Segmentation {
  /// Window lengths, left to right; each ∈ Σ; sums to <= |Q|.
  std::vector<size_t> lengths;
  /// Objective value F(SG) achieved (Eq. 8, including the 1/n factor).
  double objective = 0.0;
};

/// Runs the two-dimensional DP of Algorithm 2. `indexes[k]` must have
/// window length wu·2^k (k = 0..L-1) and all must cover the same series.
/// Requires |Q| >= wu. The DP works in log space for numeric stability.
Result<Segmentation> SegmentQuery(
    std::span<const double> q, const QueryParams& params,
    const std::vector<const KvIndex*>& indexes);

/// Evaluates the objective F (Eq. 8) of an arbitrary segmentation —
/// exposed for tests and the segmentation-quality ablation.
Result<double> EvaluateSegmentation(
    std::span<const double> q, const QueryParams& params,
    const std::vector<const KvIndex*>& indexes,
    const std::vector<size_t>& lengths);

}  // namespace kvmatch

#endif  // KVMATCH_MATCHDP_SEGMENTER_H_
