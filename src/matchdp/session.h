// Session: the one-stop public entry point for the exploratory workflow
// the paper motivates (§I, §III "Analysis") — load or ingest a series
// once, then interactively issue any of the four query types, top-k
// variants, and re-tuned (ε, α, β, ρ) knobs against the same index stack.
//
// Owns everything: the series, its prefix-stat oracle, the KV-index stack
// and (optionally) the backing KvStore. Cheap to query repeatedly.
//
// Once constructed, queries are const and touch only immutable state plus
// the internally synchronized index row caches, so a session can serve any
// number of threads concurrently (the QueryService relies on this).
#ifndef KVMATCH_MATCHDP_SESSION_H_
#define KVMATCH_MATCHDP_SESSION_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "match/top_k.h"
#include "matchdp/kv_match_dp.h"
#include "storage/kvstore.h"
#include "ts/series_store.h"

namespace kvmatch {

class Session {
 public:
  struct Options {
    size_t wu = 25;          // smallest index window
    size_t levels = 5;       // Σ = {wu · 2^k}
    double width = 0.5;      // index row width d
    size_t row_cache_rows = 1024;  // per store-backed index; 0 disables
    size_t series_chunk = 1024;    // SeriesStore chunk size
  };

  /// Builds a session from an in-memory series: constructs the index
  /// stack in memory. The fastest way to get going.
  static Result<std::unique_ptr<Session>> FromSeries(TimeSeries series,
                                                     Options options);
  static Result<std::unique_ptr<Session>> FromSeries(TimeSeries series) {
    return FromSeries(std::move(series), Options());
  }

  /// Ingests a series into `store` (chunked data + persisted index stack
  /// under ns + "data/" and ns + "idx/w<w>/") and returns a session over
  /// it. The namespace prefix lets many series share one store (the
  /// Catalog uses "series/<name>/"). The store must outlive the session.
  static Result<std::unique_ptr<Session>> Ingest(KvStore* store,
                                                 const std::string& ns,
                                                 TimeSeries series,
                                                 Options options);
  static Result<std::unique_ptr<Session>> Ingest(KvStore* store,
                                                 TimeSeries series,
                                                 Options options) {
    return Ingest(store, "", std::move(series), options);
  }
  static Result<std::unique_ptr<Session>> Ingest(KvStore* store,
                                                 TimeSeries series) {
    return Ingest(store, "", std::move(series), Options());
  }

  /// Reopens a session previously written by Ingest under the same
  /// namespace: data and indexes are read back from the store (indexes
  /// stay store-backed with the row cache enabled).
  static Result<std::unique_ptr<Session>> Open(const KvStore* store,
                                               const std::string& ns,
                                               Options options);
  static Result<std::unique_ptr<Session>> Open(const KvStore* store,
                                               Options options) {
    return Open(store, "", options);
  }
  static Result<std::unique_ptr<Session>> Open(const KvStore* store) {
    return Open(store, "", Options());
  }

  /// ε-match with any of the four query types. |Q| must be >= wu. `ctx`
  /// makes the run abortable (Cancelled / DeadlineExceeded) at phase-1
  /// probe and phase-2 slice boundaries.
  Result<std::vector<MatchResult>> Query(std::span<const double> q,
                                         const QueryParams& params,
                                         MatchStats* stats = nullptr,
                                         const ExecContext& ctx = {}) const;

  /// Top-k best matches under the given query type (ε in `params` is
  /// ignored; the search expands ε internally). `ctx` is checked inside
  /// every ε-round's probe/verify steps.
  Result<std::vector<MatchResult>> QueryTopK(
      std::span<const double> q, QueryParams params, size_t k,
      const TopKOptions& options = {}, const ExecContext& ctx = {}) const;

  /// The resumable executor for one query (DP segmentation included) —
  /// what the QueryService uses to cancel mid-flight and fan verify
  /// slices across workers. The session must outlive the executor.
  Result<std::unique_ptr<QueryExecutor>> MakeExecutor(
      std::span<const double> q, const QueryParams& params,
      const MatchOptions& options = {}) const;

  const TimeSeries& series() const { return series_; }
  size_t num_indexes() const { return indexes_.size(); }
  /// Total encoded bytes across the index stack (in-memory form only).
  uint64_t IndexBytes() const;
  /// Approximate resident bytes of this session: series values, prefix
  /// sums, and the index stack (meta only for store-backed indexes).
  /// Drives the Catalog's eviction budget.
  uint64_t MemoryBytes() const;

 private:
  Session() = default;

  Status FinishInit(Options options);  // builds prefix stats + matcher

  TimeSeries series_;
  PrefixStats prefix_;
  std::vector<KvIndex> indexes_;
  std::vector<const KvIndex*> index_ptrs_;
  std::unique_ptr<KvMatchDp> matcher_;
};

}  // namespace kvmatch

#endif  // KVMATCH_MATCHDP_SESSION_H_
