// KvStore: the storage abstraction KV-index is built on (paper §IV-A, §VII).
//
// The paper's only requirement on the backing store is a sorted "scan"
// operation with start/end keys (Table II lists local files, HDFS, HBase,
// LevelDB, Cassandra). We mirror that: any KvStore provides Put/Get plus an
// ordered iterator over a key range, and the index/matching layers are
// agnostic to which implementation they run on.
#ifndef KVMATCH_STORAGE_KVSTORE_H_
#define KVMATCH_STORAGE_KVSTORE_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace kvmatch {

/// Ordered iterator over a key range. Usage:
///   for (auto it = store.Scan(a, b); it->Valid(); it->Next()) ...
class ScanIterator {
 public:
  virtual ~ScanIterator() = default;

  virtual bool Valid() const = 0;
  virtual void Next() = 0;
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
  /// Non-OK if the underlying read failed (e.g. checksum mismatch).
  virtual Status status() const = 0;
};

/// Abstract sorted key-value store.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Get(std::string_view key, std::string* value) const = 0;

  /// Ordered scan of keys in [start_key, end_key). An empty end_key means
  /// "until the end of the store".
  virtual std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                             std::string_view end_key)
      const = 0;

  /// Number of entries, when cheaply known.
  virtual size_t ApproximateCount() const = 0;

  /// Flushes buffered writes to durable storage (no-op where meaningless).
  virtual Status Flush() { return Status::OK(); }
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_KVSTORE_H_
