// KvStore: the storage abstraction KV-index is built on (paper §IV-A, §VII).
//
// The paper's only requirement on the backing store is a sorted "scan"
// operation with start/end keys (Table II lists local files, HDFS, HBase,
// LevelDB, Cassandra). We mirror that: any KvStore provides Put/Get plus an
// ordered iterator over a key range, and the index/matching layers are
// agnostic to which implementation they run on.
//
// Write-path contract (the online-ingest extension beyond the paper):
// Delete/DeleteRange remove keys without leaving tombstoned data visible to
// scans, and Apply(WriteBatch) installs a group of writes atomically with
// respect to scans — a Scan never observes a strict prefix of a batch.
// Scan visibility may be deferred: a store whose writes stage until Flush
// (FileKvStore) exposes the batch to scans only at the next Flush, still
// all-at-once. After a Flush, every backend agrees: Get and Scan reflect
// exactly the surviving writes, with nothing deleted reappearing.
//
// Thread-safety contract: every implementation supports any number of
// concurrent readers (Get/Scan/ApproximateCount), including readers that
// overlap writes. Writers (Put/Delete/DeleteRange/Apply/Flush) require
// external serialization against each other — the Catalog's ingest path
// provides it — but never against readers. ScanIterators remain valid for
// their whole lifetime even if the store is mutated after they were
// created (snapshot semantics).
#ifndef KVMATCH_STORAGE_KVSTORE_H_
#define KVMATCH_STORAGE_KVSTORE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace kvmatch {

/// Ordered iterator over a key range. Usage:
///   for (auto it = store.Scan(a, b); it->Valid(); it->Next()) ...
class ScanIterator {
 public:
  virtual ~ScanIterator() = default;

  virtual bool Valid() const = 0;
  virtual void Next() = 0;
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
  /// Non-OK if the underlying read failed (e.g. checksum mismatch).
  virtual Status status() const = 0;
};

/// Iterator over an owned, already-sorted vector of (key, value) pairs —
/// the snapshot a synchronized store copies out under its lock so the
/// iterator stays valid (and consistent) however the store is mutated
/// afterwards. Shared by MemKvStore scans and MiniKv's memtable source.
class VectorScanIterator : public ScanIterator {
 public:
  explicit VectorScanIterator(
      std::vector<std::pair<std::string, std::string>> entries)
      : entries_(std::move(entries)) {}

  bool Valid() const override { return pos_ < entries_.size(); }
  void Next() override { ++pos_; }
  std::string_view key() const override { return entries_[pos_].first; }
  std::string_view value() const override { return entries_[pos_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_ = 0;
};

/// An ordered group of writes applied atomically by KvStore::Apply: a
/// concurrent Scan sees either none of the batch or all of it. Ops replay
/// in insertion order, so a Put after a Delete of the same key wins.
class WriteBatch {
 public:
  struct Op {
    enum Kind { kPut, kDelete, kDeleteRange };
    Kind kind;
    std::string key;    // start key for kDeleteRange
    std::string value;  // end key for kDeleteRange
  };

  void Put(std::string_view key, std::string_view value) {
    ops_.push_back({Op::kPut, std::string(key), std::string(value)});
  }
  void Delete(std::string_view key) {
    ops_.push_back({Op::kDelete, std::string(key), ""});
  }
  /// Deletes [start_key, end_key); empty end_key means "to the end".
  void DeleteRange(std::string_view start_key, std::string_view end_key) {
    ops_.push_back({Op::kDeleteRange, std::string(start_key),
                    std::string(end_key)});
  }

  const std::vector<Op>& ops() const { return ops_; }
  size_t num_ops() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void Clear() { ops_.clear(); }

  /// Approximate encoded bytes of the batch (for chunking heuristics).
  uint64_t ApproximateBytes() const;

 private:
  std::vector<Op> ops_;
};

/// Smallest key strictly greater than every key with prefix `prefix`, in
/// the format Scan/DeleteRange expect as an end key. Empty result means
/// "to the end of the store" (prefix was empty or all-0xff).
std::string PrefixUpperBound(std::string_view prefix);

/// Abstract sorted key-value store.
class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Inserts or overwrites: after Put returns, Get(key) yields `value`
  /// regardless of any previous Put/Delete of the same key. (FileKvStore
  /// defers scan visibility to Flush; Get sees staged writes immediately.)
  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Get(std::string_view key, std::string* value) const = 0;

  /// Removes `key`. Deleting an absent key is OK (idempotent). Deleted
  /// keys never reappear in Get results, nor in Scan results once any
  /// deferred staging has been Flushed (see the class comment).
  virtual Status Delete(std::string_view key) = 0;

  /// Deletes every key in [start_key, end_key); empty end_key means "to
  /// the end". The default implementation scans the range and deletes the
  /// keys one by one; backends may override with something cheaper.
  virtual Status DeleteRange(std::string_view start_key,
                             std::string_view end_key);

  /// Applies `batch` atomically with respect to Scan (see WriteBatch).
  virtual Status Apply(const WriteBatch& batch);

  /// Ordered scan of keys in [start_key, end_key). An empty end_key means
  /// "until the end of the store".
  virtual std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                             std::string_view end_key)
      const = 0;

  /// Number of entries, when cheaply known.
  virtual size_t ApproximateCount() const = 0;

  /// Flushes buffered writes to durable storage (no-op where meaningless).
  virtual Status Flush() { return Status::OK(); }

  /// Appends backend-specific gauges as (name, value) pairs — entry
  /// counts, file bytes, LSM table counts, compaction totals. Names must
  /// be Prometheus-metric-safe ([a-z0-9_]); the stats exposition prefixes
  /// them with "kvmatch_storage_". Default: no gauges.
  virtual void FillGauges(
      std::vector<std::pair<std::string, uint64_t>>* gauges) const {
    (void)gauges;
  }

 protected:
  /// Shared default-Apply body: replays ops through the virtual write
  /// methods. Backends wrap it in their write lock for atomicity.
  Status ReplayBatch(const WriteBatch& batch);
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_KVSTORE_H_
