#include "storage/kvstore.h"

namespace kvmatch {

uint64_t WriteBatch::ApproximateBytes() const {
  uint64_t bytes = 0;
  for (const auto& op : ops_) bytes += 16 + op.key.size() + op.value.size();
  return bytes;
}

std::string PrefixUpperBound(std::string_view prefix) {
  std::string end(prefix);
  while (!end.empty()) {
    if (static_cast<unsigned char>(end.back()) != 0xff) {
      end.back() = static_cast<char>(end.back() + 1);
      return end;
    }
    end.pop_back();  // 0xff has no successor at this byte; carry
  }
  return end;  // empty: scan to the end of the store
}

Status KvStore::DeleteRange(std::string_view start_key,
                            std::string_view end_key) {
  // Collect first, delete second: a backend's iterator may not tolerate
  // mutation of the range it is walking.
  std::vector<std::string> doomed;
  for (auto it = Scan(start_key, end_key); it->Valid(); it->Next()) {
    KVMATCH_RETURN_NOT_OK(it->status());
    doomed.emplace_back(it->key());
  }
  for (const auto& key : doomed) {
    KVMATCH_RETURN_NOT_OK(Delete(key));
  }
  return Status::OK();
}

Status KvStore::ReplayBatch(const WriteBatch& batch) {
  for (const auto& op : batch.ops()) {
    switch (op.kind) {
      case WriteBatch::Op::kPut:
        KVMATCH_RETURN_NOT_OK(Put(op.key, op.value));
        break;
      case WriteBatch::Op::kDelete:
        KVMATCH_RETURN_NOT_OK(Delete(op.key));
        break;
      case WriteBatch::Op::kDeleteRange:
        KVMATCH_RETURN_NOT_OK(DeleteRange(op.key, op.value));
        break;
    }
  }
  return Status::OK();
}

Status KvStore::Apply(const WriteBatch& batch) { return ReplayBatch(batch); }

}  // namespace kvmatch
