#include "storage/kvstore.h"

// Interface-only translation unit: anchors the vtables of KvStore and
// ScanIterator so every user does not emit them.

namespace kvmatch {}  // namespace kvmatch
