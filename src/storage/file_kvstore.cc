#include "storage/file_kvstore.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace kvmatch {

namespace {
constexpr uint64_t kFooterMagic = 0x4b564d4649445831ull;  // "KVMFIDX1"
constexpr size_t kFooterSize = 8 /*meta offset*/ + 8 /*meta len*/ +
                               4 /*crc*/ + 8 /*magic*/;
}  // namespace

// Iterates meta_ entries in [start, end), reading values lazily from file.
class FileScanIterator : public ScanIterator {
 public:
  FileScanIterator(const FileKvStore* store, size_t begin, size_t end)
      : store_(store), idx_(begin), end_(end) {
    ReadCurrent();
  }

  bool Valid() const override { return idx_ < end_ && status_.ok(); }
  void Next() override {
    ++idx_;
    ReadCurrent();
  }
  std::string_view key() const override {
    return store_->meta_[idx_].key;
  }
  std::string_view value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  void ReadCurrent() {
    if (idx_ >= end_) return;
    const auto& me = store_->meta_[idx_];
    value_.resize(me.value_len);
    status_ = store_->ReadAt(me.offset, me.value_len, value_.data());
  }

  const FileKvStore* store_;
  size_t idx_;
  size_t end_;
  std::string value_;
  Status status_;
};

Result<std::unique_ptr<FileKvStore>> FileKvStore::Open(
    const std::string& path) {
  auto store = std::unique_ptr<FileKvStore>(new FileKvStore(path));
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    store->fd_ = fd;
    Status st = store->LoadMeta();
    if (!st.ok()) return st;
  }
  return store;
}

FileKvStore::~FileKvStore() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileKvStore::ReadAt(uint64_t offset, size_t len, char* buf) const {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, buf + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) return Status::IOError(path_ + ": pread failed");
    if (n == 0) return Status::IOError(path_ + ": short value read");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileKvStore::LoadMeta() {
  struct stat st_buf;
  if (::fstat(fd_, &st_buf) != 0) {
    return Status::IOError(path_ + ": fstat failed");
  }
  const uint64_t size = static_cast<uint64_t>(st_buf.st_size);
  if (size < kFooterSize) {
    return Status::Corruption(path_ + ": too small for footer");
  }
  char footer[kFooterSize];
  if (Status st = ReadAt(size - kFooterSize, kFooterSize, footer); !st.ok()) {
    return st;
  }
  const uint64_t magic = DecodeFixed64(footer + 20);
  if (magic != kFooterMagic) {
    return Status::Corruption(path_ + ": bad magic");
  }
  const uint64_t meta_off = DecodeFixed64(footer);
  const uint64_t meta_len = DecodeFixed64(footer + 8);
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(footer + 16));

  std::string meta(meta_len, '\0');
  if (meta_len > 0) {
    if (Status st = ReadAt(meta_off, meta_len, meta.data()); !st.ok()) {
      return st;
    }
  }
  if (crc32c::Value(meta.data(), meta.size()) != expected_crc) {
    return Status::Corruption(path_ + ": meta checksum mismatch");
  }

  meta_.clear();
  std::string_view in(meta);
  uint64_t count;
  if (!GetVarint64(&in, &count)) return Status::Corruption("meta count");
  meta_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view key;
    uint64_t offset;
    uint32_t vlen;
    if (!GetLengthPrefixed(&in, &key) || !GetVarint64(&in, &offset) ||
        !GetVarint32(&in, &vlen)) {
      return Status::Corruption("meta entry truncated");
    }
    meta_.push_back({std::string(key), offset, vlen});
  }
  return Status::OK();
}

Status FileKvStore::Put(std::string_view key, std::string_view value) {
  pending_[std::string(key)] = std::string(value);
  return Status::OK();
}

Status FileKvStore::Get(std::string_view key, std::string* value) const {
  auto pit = pending_.find(std::string(key));
  if (pit != pending_.end()) {
    *value = pit->second;
    return Status::OK();
  }
  auto it = std::lower_bound(
      meta_.begin(), meta_.end(), key,
      [](const MetaEntry& e, std::string_view k) { return e.key < k; });
  if (it == meta_.end() || it->key != key) return Status::NotFound();
  value->resize(it->value_len);
  return ReadAt(it->offset, it->value_len, value->data());
}

std::unique_ptr<ScanIterator> FileKvStore::Scan(std::string_view start_key,
                                                std::string_view end_key)
    const {
  auto lower = std::lower_bound(
      meta_.begin(), meta_.end(), start_key,
      [](const MetaEntry& e, std::string_view k) { return e.key < k; });
  auto upper = end_key.empty()
                   ? meta_.end()
                   : std::lower_bound(meta_.begin(), meta_.end(), end_key,
                                      [](const MetaEntry& e,
                                         std::string_view k) {
                                        return e.key < k;
                                      });
  return std::make_unique<FileScanIterator>(
      this, static_cast<size_t>(lower - meta_.begin()),
      static_cast<size_t>(upper - meta_.begin()));
}

size_t FileKvStore::ApproximateCount() const {
  return meta_.size() + pending_.size();
}

Status FileKvStore::Flush() {
  if (pending_.empty()) return Status::OK();
  // Merge existing on-disk entries with pending writes (pending wins).
  std::map<std::string, std::string> all;
  for (const auto& me : meta_) {
    std::string v;
    KVMATCH_RETURN_NOT_OK(Get(me.key, &v));
    all[me.key] = std::move(v);
  }
  for (auto& [k, v] : pending_) all[k] = std::move(v);
  pending_.clear();

  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::FILE* out = std::fopen(path_.c_str(), "wb");
  if (out == nullptr) return Status::IOError("cannot create " + path_);

  meta_.clear();
  meta_.reserve(all.size());
  uint64_t offset = 0;
  for (const auto& [k, v] : all) {
    std::string entry;
    PutLengthPrefixed(&entry, k);
    const uint64_t value_off = offset + entry.size() +
                               [&] {
                                 std::string tmp;
                                 PutVarint32(&tmp,
                                             static_cast<uint32_t>(v.size()));
                                 return tmp.size();
                               }();
    PutVarint32(&entry, static_cast<uint32_t>(v.size()));
    entry.append(v);
    if (std::fwrite(entry.data(), 1, entry.size(), out) != entry.size()) {
      std::fclose(out);
      return Status::IOError("entry write failed");
    }
    meta_.push_back({k, value_off, static_cast<uint32_t>(v.size())});
    offset += entry.size();
  }

  std::string meta;
  PutVarint64(&meta, meta_.size());
  for (const auto& me : meta_) {
    PutLengthPrefixed(&meta, me.key);
    PutVarint64(&meta, me.offset);
    PutVarint32(&meta, me.value_len);
  }
  const uint64_t meta_off = offset;
  if (std::fwrite(meta.data(), 1, meta.size(), out) != meta.size()) {
    std::fclose(out);
    return Status::IOError("meta write failed");
  }
  std::string footer;
  PutFixed64(&footer, meta_off);
  PutFixed64(&footer, meta.size());
  PutFixed32(&footer, crc32c::Mask(crc32c::Value(meta.data(), meta.size())));
  PutFixed64(&footer, kFooterMagic);
  if (std::fwrite(footer.data(), 1, footer.size(), out) != footer.size()) {
    std::fclose(out);
    return Status::IOError("footer write failed");
  }
  if (std::fclose(out) != 0) return Status::IOError("close failed");

  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) return Status::IOError("reopen failed");
  return Status::OK();
}

uint64_t FileKvStore::FileBytes() const {
  if (fd_ < 0) return 0;
  struct stat st_buf;
  if (::fstat(fd_, &st_buf) != 0) return 0;
  return static_cast<uint64_t>(st_buf.st_size);
}

}  // namespace kvmatch
