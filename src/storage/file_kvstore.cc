#include "storage/file_kvstore.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace kvmatch {

namespace {
constexpr uint64_t kFooterMagic = 0x4b564d4649445831ull;  // "KVMFIDX1"
constexpr size_t kFooterSize = 8 /*meta offset*/ + 8 /*meta len*/ +
                               4 /*crc*/ + 8 /*magic*/;
}  // namespace

FileKvStore::FileState::~FileState() {
  if (fd >= 0) ::close(fd);
}

Status FileKvStore::FileState::ReadAt(uint64_t offset, size_t len,
                                      char* buf) const {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) return Status::IOError(path + ": pread failed");
    if (n == 0) return Status::IOError(path + ": short value read");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Iterates a pinned generation's meta entries in [start, end), reading
// values lazily; the shared_ptr keeps the fd alive across Flushes.
class FileScanIterator : public ScanIterator {
 public:
  FileScanIterator(std::shared_ptr<const FileKvStore::FileState> state,
                   size_t begin, size_t end)
      : state_(std::move(state)), idx_(begin), end_(end) {
    ReadCurrent();
  }

  bool Valid() const override { return idx_ < end_ && status_.ok(); }
  void Next() override {
    ++idx_;
    ReadCurrent();
  }
  std::string_view key() const override { return state_->meta[idx_].key; }
  std::string_view value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  void ReadCurrent() {
    if (idx_ >= end_) return;
    const auto& me = state_->meta[idx_];
    value_.resize(me.value_len);
    status_ = state_->ReadAt(me.offset, me.value_len, value_.data());
  }

  std::shared_ptr<const FileKvStore::FileState> state_;
  size_t idx_;
  size_t end_;
  std::string value_;
  Status status_;
};

Result<std::unique_ptr<FileKvStore>> FileKvStore::Open(
    const std::string& path) {
  auto store = std::unique_ptr<FileKvStore>(new FileKvStore(path));
  auto state = std::make_shared<FileState>();
  state->path = path;
  state->fd = ::open(path.c_str(), O_RDONLY);
  if (state->fd >= 0) {
    Status st = LoadMeta(state.get());
    if (!st.ok()) return st;
  }
  store->state_ = std::move(state);
  return store;
}

Status FileKvStore::LoadMeta(FileState* state) {
  struct stat st_buf;
  if (::fstat(state->fd, &st_buf) != 0) {
    return Status::IOError(state->path + ": fstat failed");
  }
  const uint64_t size = static_cast<uint64_t>(st_buf.st_size);
  state->file_bytes = size;
  if (size < kFooterSize) {
    return Status::Corruption(state->path + ": too small for footer");
  }
  char footer[kFooterSize];
  if (Status st = state->ReadAt(size - kFooterSize, kFooterSize, footer);
      !st.ok()) {
    return st;
  }
  const uint64_t magic = DecodeFixed64(footer + 20);
  if (magic != kFooterMagic) {
    return Status::Corruption(state->path + ": bad magic");
  }
  const uint64_t meta_off = DecodeFixed64(footer);
  const uint64_t meta_len = DecodeFixed64(footer + 8);
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(footer + 16));

  std::string meta(meta_len, '\0');
  if (meta_len > 0) {
    if (Status st = state->ReadAt(meta_off, meta_len, meta.data());
        !st.ok()) {
      return st;
    }
  }
  if (crc32c::Value(meta.data(), meta.size()) != expected_crc) {
    return Status::Corruption(state->path + ": meta checksum mismatch");
  }

  state->meta.clear();
  std::string_view in(meta);
  uint64_t count;
  if (!GetVarint64(&in, &count)) return Status::Corruption("meta count");
  state->meta.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view key;
    uint64_t offset;
    uint32_t vlen;
    if (!GetLengthPrefixed(&in, &key) || !GetVarint64(&in, &offset) ||
        !GetVarint32(&in, &vlen)) {
      return Status::Corruption("meta entry truncated");
    }
    state->meta.push_back({std::string(key), offset, vlen});
  }
  return Status::OK();
}

std::shared_ptr<const FileKvStore::FileState> FileKvStore::CurrentState()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

Status FileKvStore::Put(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_[std::string(key)] = std::string(value);
  return Status::OK();
}

Status FileKvStore::Delete(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_[std::string(key)] = std::nullopt;
  return Status::OK();
}

void FileKvStore::StageRangeTombstonesLocked(const FileState& state,
                                             std::string_view start_key,
                                             std::string_view end_key) {
  auto lower = std::lower_bound(
      state.meta.begin(), state.meta.end(), start_key,
      [](const MetaEntry& e, std::string_view k) { return e.key < k; });
  auto upper = end_key.empty()
                   ? state.meta.end()
                   : std::lower_bound(state.meta.begin(), state.meta.end(),
                                      end_key,
                                      [](const MetaEntry& e,
                                         std::string_view k) {
                                        return e.key < k;
                                      });
  for (auto it = lower; it != upper; ++it) pending_[it->key] = std::nullopt;
  // Staged-but-unflushed keys in the range die too (they are visible to
  // Get and would otherwise resurface at Flush).
  auto pit = pending_.lower_bound(std::string(start_key));
  auto pend = end_key.empty() ? pending_.end()
                              : pending_.lower_bound(std::string(end_key));
  for (; pit != pend; ++pit) pit->second = std::nullopt;
}

Status FileKvStore::DeleteRange(std::string_view start_key,
                                std::string_view end_key) {
  std::lock_guard<std::mutex> lock(mu_);
  StageRangeTombstonesLocked(*state_, start_key, end_key);
  return Status::OK();
}

Status FileKvStore::Apply(const WriteBatch& batch) {
  // Stage the whole batch under one lock; visibility to scans happens
  // atomically at Flush via the state swap.
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& op : batch.ops()) {
    switch (op.kind) {
      case WriteBatch::Op::kPut:
        pending_[op.key] = op.value;
        break;
      case WriteBatch::Op::kDelete:
        pending_[op.key] = std::nullopt;
        break;
      case WriteBatch::Op::kDeleteRange:
        StageRangeTombstonesLocked(*state_, op.key, op.value);
        break;
    }
  }
  return Status::OK();
}

Status FileKvStore::Get(std::string_view key, std::string* value) const {
  std::shared_ptr<const FileState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto pit = pending_.find(std::string(key));
    if (pit != pending_.end()) {
      if (!pit->second.has_value()) return Status::NotFound();
      *value = *pit->second;
      return Status::OK();
    }
    state = state_;
  }
  auto it = std::lower_bound(
      state->meta.begin(), state->meta.end(), key,
      [](const MetaEntry& e, std::string_view k) { return e.key < k; });
  if (it == state->meta.end() || it->key != key) return Status::NotFound();
  value->resize(it->value_len);
  return state->ReadAt(it->offset, it->value_len, value->data());
}

std::unique_ptr<ScanIterator> FileKvStore::Scan(std::string_view start_key,
                                                std::string_view end_key)
    const {
  std::shared_ptr<const FileState> state = CurrentState();
  auto lower = std::lower_bound(
      state->meta.begin(), state->meta.end(), start_key,
      [](const MetaEntry& e, std::string_view k) { return e.key < k; });
  auto upper = end_key.empty()
                   ? state->meta.end()
                   : std::lower_bound(state->meta.begin(), state->meta.end(),
                                      end_key,
                                      [](const MetaEntry& e,
                                         std::string_view k) {
                                        return e.key < k;
                                      });
  const size_t begin_idx = static_cast<size_t>(lower - state->meta.begin());
  const size_t end_idx = static_cast<size_t>(upper - state->meta.begin());
  return std::make_unique<FileScanIterator>(std::move(state), begin_idx,
                                            end_idx);
}

size_t FileKvStore::ApproximateCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_->meta.size() + pending_.size();
}

Status FileKvStore::Flush() {
  // Writers are externally serialized, so pending_ cannot change while we
  // merge; readers keep using the old generation until the swap below.
  std::shared_ptr<const FileState> old_state;
  std::map<std::string, std::optional<std::string>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return Status::OK();
    old_state = state_;
    pending = pending_;
  }

  // Merge the old generation with staged writes (staging wins; tombstones
  // drop the key entirely — nothing tombstoned leaks into the new file).
  std::map<std::string, std::string> all;
  for (const auto& me : old_state->meta) {
    if (pending.count(me.key) > 0) continue;  // overwritten or deleted
    std::string v(me.value_len, '\0');
    KVMATCH_RETURN_NOT_OK(old_state->ReadAt(me.offset, me.value_len,
                                            v.data()));
    all[me.key] = std::move(v);
  }
  for (auto& [k, v] : pending) {
    if (v.has_value()) all[k] = std::move(*v);
  }

  // Write the new generation beside the store and rename it into place, so
  // pinned readers of the old file keep a valid fd.
  const std::string tmp_path = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
  if (out == nullptr) return Status::IOError("cannot create " + tmp_path);

  auto new_state = std::make_shared<FileState>();
  new_state->path = path_;
  new_state->meta.reserve(all.size());
  uint64_t offset = 0;
  for (const auto& [k, v] : all) {
    std::string entry;
    PutLengthPrefixed(&entry, k);
    const uint64_t value_off = offset + entry.size() +
                               [&] {
                                 std::string tmp;
                                 PutVarint32(&tmp,
                                             static_cast<uint32_t>(v.size()));
                                 return tmp.size();
                               }();
    PutVarint32(&entry, static_cast<uint32_t>(v.size()));
    entry.append(v);
    if (std::fwrite(entry.data(), 1, entry.size(), out) != entry.size()) {
      std::fclose(out);
      return Status::IOError("entry write failed");
    }
    new_state->meta.push_back({k, value_off, static_cast<uint32_t>(v.size())});
    offset += entry.size();
  }

  std::string meta;
  PutVarint64(&meta, new_state->meta.size());
  for (const auto& me : new_state->meta) {
    PutLengthPrefixed(&meta, me.key);
    PutVarint64(&meta, me.offset);
    PutVarint32(&meta, me.value_len);
  }
  const uint64_t meta_off = offset;
  if (std::fwrite(meta.data(), 1, meta.size(), out) != meta.size()) {
    std::fclose(out);
    return Status::IOError("meta write failed");
  }
  std::string footer;
  PutFixed64(&footer, meta_off);
  PutFixed64(&footer, meta.size());
  PutFixed32(&footer, crc32c::Mask(crc32c::Value(meta.data(), meta.size())));
  PutFixed64(&footer, kFooterMagic);
  if (std::fwrite(footer.data(), 1, footer.size(), out) != footer.size()) {
    std::fclose(out);
    return Status::IOError("footer write failed");
  }
  if (std::fclose(out) != 0) return Status::IOError("close failed");
  new_state->file_bytes = meta_off + meta.size() + footer.size();

  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename " + tmp_path + " over " + path_ +
                           " failed");
  }
  new_state->fd = ::open(path_.c_str(), O_RDONLY);
  if (new_state->fd < 0) return Status::IOError("reopen failed");

  std::lock_guard<std::mutex> lock(mu_);
  state_ = std::move(new_state);
  pending_.clear();
  return Status::OK();
}

uint64_t FileKvStore::FileBytes() const { return CurrentState()->file_bytes; }

}  // namespace kvmatch
