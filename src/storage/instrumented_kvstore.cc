#include "storage/instrumented_kvstore.h"

#include <chrono>

namespace kvmatch {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Counts the rows a scan actually yields (and their bytes) into the
/// shared sink. A row is counted once, when the iterator first rests on
/// it — at construction for the first row, in Next() afterwards — so an
/// abandoned scan charges only what it touched.
class CountingScanIterator : public ScanIterator {
 public:
  CountingScanIterator(std::unique_ptr<ScanIterator> base,
                       std::shared_ptr<KvStoreStats> stats)
      : base_(std::move(base)), stats_(std::move(stats)) {
    CountCurrent();
  }

  bool Valid() const override { return base_->Valid(); }
  void Next() override {
    base_->Next();
    CountCurrent();
  }
  std::string_view key() const override { return base_->key(); }
  std::string_view value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  void CountCurrent() {
    if (!base_->Valid()) return;
    stats_->AddScanRows(1);
    stats_->AddBytesRead(base_->key().size() + base_->value().size());
  }

  std::unique_ptr<ScanIterator> base_;
  std::shared_ptr<KvStoreStats> stats_;
};

}  // namespace

const char* KvStoreStats::OpName(int op) {
  switch (op) {
    case kGet:
      return "get";
    case kPut:
      return "put";
    case kDelete:
      return "delete";
    case kDeleteRange:
      return "delete_range";
    case kApply:
      return "apply";
    case kScan:
      return "scan";
    case kFlush:
      return "flush";
    default:
      return "unknown";
  }
}

KvStoreStats::Snapshot KvStoreStats::TakeSnapshot() const {
  Snapshot snap;
  for (int op = 0; op < kNumOps; ++op) {
    snap.ops[op].count = ops_[op].count.load(std::memory_order_relaxed);
    snap.ops[op].errors = ops_[op].errors.load(std::memory_order_relaxed);
    snap.ops[op].latency = ops_[op].latency.TakeSnapshot();
  }
  snap.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  snap.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  snap.scan_rows = scan_rows_.load(std::memory_order_relaxed);
  snap.batch_ops = batch_ops_.TakeSnapshot();
  return snap;
}

void KvStoreStats::Reset() {
  for (auto& cell : ops_) {
    cell.count.store(0, std::memory_order_relaxed);
    cell.errors.store(0, std::memory_order_relaxed);
    cell.latency.Reset();
  }
  bytes_read_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  scan_rows_.store(0, std::memory_order_relaxed);
  batch_ops_.Reset();
}

Status InstrumentedKvStore::Put(std::string_view key,
                                std::string_view value) {
  const auto t0 = Clock::now();
  Status st = base_->Put(key, value);
  stats_->RecordOp(KvStoreStats::kPut, MsSince(t0), st.ok());
  if (st.ok()) stats_->AddBytesWritten(key.size() + value.size());
  return st;
}

Status InstrumentedKvStore::Get(std::string_view key,
                                std::string* value) const {
  const auto t0 = Clock::now();
  Status st = base_->Get(key, value);
  // A miss is an answer, not a failure: only real faults count as errors.
  stats_->RecordOp(KvStoreStats::kGet, MsSince(t0),
                   st.ok() || st.IsNotFound());
  if (st.ok()) stats_->AddBytesRead(key.size() + value->size());
  return st;
}

Status InstrumentedKvStore::Delete(std::string_view key) {
  const auto t0 = Clock::now();
  Status st = base_->Delete(key);
  stats_->RecordOp(KvStoreStats::kDelete, MsSince(t0), st.ok());
  return st;
}

Status InstrumentedKvStore::DeleteRange(std::string_view start_key,
                                        std::string_view end_key) {
  const auto t0 = Clock::now();
  Status st = base_->DeleteRange(start_key, end_key);
  stats_->RecordOp(KvStoreStats::kDeleteRange, MsSince(t0), st.ok());
  return st;
}

Status InstrumentedKvStore::Apply(const WriteBatch& batch) {
  const auto t0 = Clock::now();
  Status st = base_->Apply(batch);
  stats_->RecordOp(KvStoreStats::kApply, MsSince(t0), st.ok());
  stats_->RecordBatchOps(batch.num_ops());
  if (st.ok()) stats_->AddBytesWritten(batch.ApproximateBytes());
  return st;
}

std::unique_ptr<ScanIterator> InstrumentedKvStore::Scan(
    std::string_view start_key, std::string_view end_key) const {
  const auto t0 = Clock::now();
  auto it = base_->Scan(start_key, end_key);
  // The scan op's latency is the snapshot/setup cost; rows stream through
  // the counting wrapper as the consumer advances.
  stats_->RecordOp(KvStoreStats::kScan, MsSince(t0),
                   it != nullptr && it->status().ok());
  return std::make_unique<CountingScanIterator>(std::move(it), stats_);
}

size_t InstrumentedKvStore::ApproximateCount() const {
  return base_->ApproximateCount();
}

Status InstrumentedKvStore::Flush() {
  const auto t0 = Clock::now();
  Status st = base_->Flush();
  stats_->RecordOp(KvStoreStats::kFlush, MsSince(t0), st.ok());
  return st;
}

}  // namespace kvmatch
