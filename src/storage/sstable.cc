#include "storage/sstable.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <optional>

#include "common/coding.h"
#include "common/crc32c.h"

namespace kvmatch {

namespace {
constexpr uint64_t kTableMagic = 0x4b564d5353543131ull;  // "KVMSST11"
constexpr size_t kFooterSize = 8 + 8 + 8 + 8;  // index handle + count + magic
}  // namespace

void BlockHandle::EncodeTo(std::string* dst) const {
  PutFixed64(dst, offset);
  PutFixed64(dst, size);
}

bool BlockHandle::DecodeFrom(std::string_view* input, BlockHandle* handle) {
  if (input->size() < 16) return false;
  handle->offset = DecodeFixed64(input->data());
  handle->size = DecodeFixed64(input->data() + 8);
  input->remove_prefix(16);
  return true;
}

SstableBuilder::SstableBuilder(std::string path, size_t target_block_size)
    : path_(std::move(path)), target_block_size_(target_block_size) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) io_status_ = Status::IOError("cannot create " + path_);
}

Status SstableBuilder::Add(std::string_view key, std::string_view value) {
  KVMATCH_RETURN_NOT_OK(io_status_);
  if (!last_key_.empty() && key <= std::string_view(last_key_)) {
    return Status::InvalidArgument("keys must be strictly increasing");
  }
  data_block_.Add(key, value);
  last_key_.assign(key.data(), key.size());
  ++num_entries_;
  if (data_block_.CurrentSizeEstimate() >= target_block_size_) {
    KVMATCH_RETURN_NOT_OK(FlushDataBlock());
  }
  return Status::OK();
}

Status SstableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  BlockHandle handle;
  KVMATCH_RETURN_NOT_OK(WriteBlock(data_block_.Finish(), &handle));
  pending_index_.emplace_back(last_key_, handle);
  data_block_.Reset();
  return Status::OK();
}

Status SstableBuilder::WriteBlock(const std::string& contents,
                                  BlockHandle* handle) {
  handle->offset = offset_;
  handle->size = contents.size();
  if (std::fwrite(contents.data(), 1, contents.size(), file_) !=
      contents.size()) {
    return Status::IOError("block write failed");
  }
  std::string trailer;
  PutFixed32(&trailer,
             crc32c::Mask(crc32c::Value(contents.data(), contents.size())));
  if (std::fwrite(trailer.data(), 1, trailer.size(), file_) !=
      trailer.size()) {
    return Status::IOError("crc write failed");
  }
  offset_ += contents.size() + trailer.size();
  return Status::OK();
}

Status SstableBuilder::Finish() {
  KVMATCH_RETURN_NOT_OK(io_status_);
  KVMATCH_RETURN_NOT_OK(FlushDataBlock());
  for (const auto& [key, handle] : pending_index_) {
    std::string encoded;
    handle.EncodeTo(&encoded);
    index_block_.Add(key, encoded);
  }
  BlockHandle index_handle;
  KVMATCH_RETURN_NOT_OK(WriteBlock(index_block_.Finish(), &index_handle));
  std::string footer;
  index_handle.EncodeTo(&footer);
  PutFixed64(&footer, num_entries_);
  PutFixed64(&footer, kTableMagic);
  if (std::fwrite(footer.data(), 1, footer.size(), file_) != footer.size()) {
    return Status::IOError("footer write failed");
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IOError("close failed");
  }
  file_ = nullptr;
  return Status::OK();
}

Result<std::unique_ptr<SstableReader>> SstableReader::Open(
    const std::string& path) {
  auto reader = std::unique_ptr<SstableReader>(new SstableReader());
  reader->path_ = path;
  reader->fd_ = ::open(path.c_str(), O_RDONLY);
  if (reader->fd_ < 0) return Status::IOError("cannot open " + path);
  struct stat st_buf;
  if (::fstat(reader->fd_, &st_buf) != 0) {
    return Status::IOError(path + ": fstat failed");
  }
  reader->file_bytes_ = static_cast<uint64_t>(st_buf.st_size);
  if (reader->file_bytes_ < kFooterSize) {
    return Status::Corruption(path + ": too small");
  }
  char footer[kFooterSize];
  KVMATCH_RETURN_NOT_OK(reader->ReadAt(reader->file_bytes_ - kFooterSize,
                                       kFooterSize, footer));
  if (DecodeFixed64(footer + 24) != kTableMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  std::string_view fv(footer, 16);
  BlockHandle index_handle;
  BlockHandle::DecodeFrom(&fv, &index_handle);
  reader->num_entries_ = DecodeFixed64(footer + 16);

  auto index_block = reader->ReadBlock(index_handle);
  if (!index_block.ok()) return index_block.status();
  auto it = index_block->NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    std::string_view v = it.value();
    BlockHandle h;
    if (!BlockHandle::DecodeFrom(&v, &h)) {
      return Status::Corruption("bad index entry");
    }
    reader->index_.emplace_back(std::string(it.key()), h);
  }
  return reader;
}

SstableReader::~SstableReader() {
  if (fd_ >= 0) ::close(fd_);
}

Status SstableReader::ReadAt(uint64_t offset, size_t len, char* buf) const {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, buf + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) return Status::IOError(path_ + ": pread failed");
    if (n == 0) return Status::IOError(path_ + ": short block read");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<BlockReader> SstableReader::ReadBlock(const BlockHandle& handle) const {
  std::string contents(handle.size, '\0');
  if (handle.size > 0) {
    KVMATCH_RETURN_NOT_OK(ReadAt(handle.offset, handle.size,
                                 contents.data()));
  }
  char crc_buf[4];
  KVMATCH_RETURN_NOT_OK(ReadAt(handle.offset + handle.size, 4, crc_buf));
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(crc_buf));
  if (crc32c::Value(contents.data(), contents.size()) != expected) {
    return Status::Corruption(path_ + ": block checksum mismatch");
  }
  return BlockReader::Parse(std::move(contents));
}

Status SstableReader::Get(std::string_view key, std::string* value) const {
  // Find the first block whose last key is >= key.
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const auto& e, std::string_view k) { return e.first < k; });
  if (it == index_.end()) return Status::NotFound();
  auto block = ReadBlock(it->second);
  if (!block.ok()) return block.status();
  auto bit = block->NewIterator();
  bit.Seek(key);
  if (bit.Valid() && bit.key() == key) {
    value->assign(bit.value().data(), bit.value().size());
    return Status::OK();
  }
  return Status::NotFound();
}

// Streams entries across data blocks within [start, end).
class SstableScanIterator : public ScanIterator {
 public:
  SstableScanIterator(const SstableReader* reader, std::string_view start,
                      std::string_view end)
      : reader_(reader), end_key_(end) {
    block_idx_ = static_cast<size_t>(
        std::lower_bound(reader_->index_.begin(), reader_->index_.end(),
                         start,
                         [](const auto& e, std::string_view k) {
                           return e.first < k;
                         }) -
        reader_->index_.begin());
    if (!LoadBlock()) return;
    block_it_->Seek(start);
    SkipToValid(start);
  }

  bool Valid() const override {
    return block_it_.has_value() && block_it_->Valid() && status_.ok() &&
           (end_key_.empty() || block_it_->key() < std::string_view(end_key_));
  }
  void Next() override {
    block_it_->Next();
    SkipToValid({});
  }
  std::string_view key() const override { return block_it_->key(); }
  std::string_view value() const override { return block_it_->value(); }
  Status status() const override { return status_; }

 private:
  bool LoadBlock() {
    block_it_.reset();
    block_.reset();
    if (block_idx_ >= reader_->index_.size()) return false;
    auto block = reader_->ReadBlock(reader_->index_[block_idx_].second);
    if (!block.ok()) {
      status_ = block.status();
      return false;
    }
    block_ = std::make_unique<BlockReader>(std::move(block).value());
    block_it_.emplace(block_->NewIterator());
    return true;
  }

  // Advances across block boundaries until a valid entry or exhaustion.
  void SkipToValid(std::string_view seek_target) {
    while (block_it_.has_value() && !block_it_->Valid() && status_.ok()) {
      if (!block_it_->status().ok()) {
        status_ = block_it_->status();
        return;
      }
      ++block_idx_;
      if (!LoadBlock()) return;
      if (seek_target.empty()) {
        block_it_->SeekToFirst();
      } else {
        block_it_->Seek(seek_target);
      }
    }
  }

  const SstableReader* reader_;
  std::string end_key_;
  size_t block_idx_ = 0;
  std::unique_ptr<BlockReader> block_;
  std::optional<BlockReader::Iterator> block_it_;
  Status status_;
};

std::unique_ptr<ScanIterator> SstableReader::Scan(std::string_view start_key,
                                                  std::string_view end_key)
    const {
  return std::make_unique<SstableScanIterator>(this, start_key, end_key);
}

}  // namespace kvmatch
