// SSTable data block format (LevelDB/RocksDB style):
//
//   entry*: <varint shared><varint non_shared><varint value_len>
//           <non_shared key bytes><value bytes>
//   trailer: <fixed32 restart[0..k-1]><fixed32 k>
//
// Keys use shared-prefix compression; restart points every
// `restart_interval` entries allow binary search within a block.
#ifndef KVMATCH_STORAGE_BLOCK_H_
#define KVMATCH_STORAGE_BLOCK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kvmatch {

/// Builds one data block. Keys must be added in sorted order.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16)
      : restart_interval_(restart_interval) {
    restarts_.push_back(0);
  }

  void Add(std::string_view key, std::string_view value);

  /// Appends the restart trailer and returns the finished block contents.
  std::string Finish();

  size_t CurrentSizeEstimate() const {
    return buffer_.size() + restarts_.size() * 4 + 4;
  }
  bool empty() const { return buffer_.empty(); }
  const std::string& last_key() const { return last_key_; }

  void Reset();

 private:
  int restart_interval_;
  int counter_ = 0;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  std::string last_key_;
};

/// Parsed, immutable view of a finished block.
class BlockReader {
 public:
  /// Validates the trailer; the block contents are copied in.
  static Result<BlockReader> Parse(std::string contents);

  /// Iterator positioned entry-by-entry; Seek uses restart-point binary
  /// search then linear scan.
  class Iterator {
   public:
    explicit Iterator(const BlockReader* block) : block_(block) {}

    void SeekToFirst();
    /// Positions at the first entry with key >= target.
    void Seek(std::string_view target);
    void Next();
    bool Valid() const { return valid_; }
    std::string_view key() const { return key_; }
    std::string_view value() const { return value_; }
    Status status() const { return status_; }

   private:
    void SeekToRestart(uint32_t index);
    bool ParseCurrent();

    const BlockReader* block_;
    uint32_t offset_ = 0;       // offset of current entry
    uint32_t next_offset_ = 0;  // offset after current entry
    std::string key_;
    std::string_view value_;
    bool valid_ = false;
    Status status_;
  };

  Iterator NewIterator() const { return Iterator(this); }

 private:
  BlockReader() = default;

  std::string data_;
  uint32_t restarts_offset_ = 0;
  uint32_t num_restarts_ = 0;

  friend class Iterator;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_BLOCK_H_
