#include "storage/mem_kvstore.h"

#include <mutex>
#include <utility>
#include <vector>

namespace kvmatch {

Status MemKvStore::Put(std::string_view key, std::string_view value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_[std::string(key)] = std::string(value);
  return Status::OK();
}

Status MemKvStore::Get(std::string_view key, std::string* value) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return Status::NotFound();
  *value = it->second;
  return Status::OK();
}

Status MemKvStore::Delete(std::string_view key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  map_.erase(std::string(key));
  return Status::OK();
}

void MemKvStore::DeleteRangeLocked(std::string_view start_key,
                                   std::string_view end_key) {
  auto begin = map_.lower_bound(std::string(start_key));
  auto end = end_key.empty() ? map_.end()
                             : map_.lower_bound(std::string(end_key));
  map_.erase(begin, end);
}

Status MemKvStore::DeleteRange(std::string_view start_key,
                               std::string_view end_key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  DeleteRangeLocked(start_key, end_key);
  return Status::OK();
}

Status MemKvStore::Apply(const WriteBatch& batch) {
  // One exclusive lock across the whole batch: scans (which also lock)
  // serialize against it, so they observe all of the batch or none of it.
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& op : batch.ops()) {
    switch (op.kind) {
      case WriteBatch::Op::kPut:
        map_[op.key] = op.value;
        break;
      case WriteBatch::Op::kDelete:
        map_.erase(op.key);
        break;
      case WriteBatch::Op::kDeleteRange:
        DeleteRangeLocked(op.key, op.value);
        break;
    }
  }
  return Status::OK();
}

std::unique_ptr<ScanIterator> MemKvStore::Scan(std::string_view start_key,
                                               std::string_view end_key)
    const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto begin = map_.lower_bound(std::string(start_key));
  auto end = end_key.empty() ? map_.end()
                             : map_.lower_bound(std::string(end_key));
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(static_cast<size_t>(std::distance(begin, end)));
  for (auto it = begin; it != end; ++it) entries.emplace_back(*it);
  return std::make_unique<VectorScanIterator>(std::move(entries));
}

size_t MemKvStore::ApproximateCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.size();
}

}  // namespace kvmatch
