#include "storage/mem_kvstore.h"

namespace kvmatch {

namespace {

class MemScanIterator : public ScanIterator {
 public:
  MemScanIterator(std::map<std::string, std::string>::const_iterator begin,
                  std::map<std::string, std::string>::const_iterator end)
      : it_(begin), end_(end) {}

  bool Valid() const override { return it_ != end_; }
  void Next() override { ++it_; }
  std::string_view key() const override { return it_->first; }
  std::string_view value() const override { return it_->second; }
  Status status() const override { return Status::OK(); }

 private:
  std::map<std::string, std::string>::const_iterator it_;
  std::map<std::string, std::string>::const_iterator end_;
};

}  // namespace

Status MemKvStore::Put(std::string_view key, std::string_view value) {
  map_[std::string(key)] = std::string(value);
  return Status::OK();
}

Status MemKvStore::Get(std::string_view key, std::string* value) const {
  auto it = map_.find(std::string(key));
  if (it == map_.end()) return Status::NotFound();
  *value = it->second;
  return Status::OK();
}

std::unique_ptr<ScanIterator> MemKvStore::Scan(std::string_view start_key,
                                               std::string_view end_key)
    const {
  auto begin = map_.lower_bound(std::string(start_key));
  auto end = end_key.empty() ? map_.end()
                             : map_.lower_bound(std::string(end_key));
  return std::make_unique<MemScanIterator>(begin, end);
}

}  // namespace kvmatch
