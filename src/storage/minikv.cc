#include "storage/minikv.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace kvmatch {

namespace fs = std::filesystem;

Result<std::unique_ptr<MiniKv>> MiniKv::Open(const std::string& dir,
                                             Options options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create dir " + dir);
  auto kv = std::unique_ptr<MiniKv>(new MiniKv(dir, options));

  std::vector<uint64_t> seqs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 10 && name.ends_with(".sst")) {
      seqs.push_back(std::stoull(name.substr(0, 6)));
    }
  }
  std::sort(seqs.begin(), seqs.end());
  for (uint64_t seq : seqs) {
    auto reader = SstableReader::Open(kv->TablePath(seq));
    if (!reader.ok()) return reader.status();
    kv->tables_.push_back(std::move(reader).value());
    kv->table_paths_.push_back(kv->TablePath(seq));
    kv->next_seq_ = seq + 1;
  }
  return kv;
}

std::string MiniKv::TablePath(uint64_t seq) const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + buf;
}

Status MiniKv::Put(std::string_view key, std::string_view value) {
  auto [it, inserted] = memtable_.insert_or_assign(std::string(key),
                                                   std::string(value));
  (void)it;
  memtable_bytes_ += key.size() + value.size();
  if (memtable_bytes_ >= options_.memtable_limit_bytes) {
    return Flush();
  }
  return Status::OK();
}

Status MiniKv::Get(std::string_view key, std::string* value) const {
  auto mit = memtable_.find(std::string(key));
  if (mit != memtable_.end()) {
    *value = mit->second;
    return Status::OK();
  }
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    Status st = (*it)->Get(key, value);
    if (st.ok()) return st;
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound();
}

Status MiniKv::Flush() {
  if (memtable_.empty()) return Status::OK();
  const uint64_t seq = next_seq_++;
  SstableBuilder builder(TablePath(seq), options_.sstable_block_size);
  for (const auto& [k, v] : memtable_) {
    KVMATCH_RETURN_NOT_OK(builder.Add(k, v));
  }
  KVMATCH_RETURN_NOT_OK(builder.Finish());
  auto reader = SstableReader::Open(TablePath(seq));
  if (!reader.ok()) return reader.status();
  tables_.push_back(std::move(reader).value());
  table_paths_.push_back(TablePath(seq));
  memtable_.clear();
  memtable_bytes_ = 0;
  return Status::OK();
}

namespace {

// K-way merge over memtable + SSTables; on duplicate keys the newest source
// wins (memtable > later tables > earlier tables).
class MergingIterator : public ScanIterator {
 public:
  // sources are ordered oldest..newest; the memtable slice (if any) is
  // appended last and therefore has the highest priority.
  struct Source {
    std::unique_ptr<ScanIterator> iter;  // nullptr for the memtable source
    std::map<std::string, std::string>::const_iterator mit, mend;
    bool is_mem = false;
    int priority = 0;  // higher wins on equal keys
  };

  MergingIterator(std::vector<Source> sources, std::string end_key)
      : sources_(std::move(sources)), end_key_(std::move(end_key)) {
    FindNext();
  }

  bool Valid() const override { return current_ >= 0 && status_.ok(); }
  void Next() override {
    AdvanceAllAt(CurrentKeyCopy());
    FindNext();
  }
  std::string_view key() const override { return KeyOf(sources_[current_]); }
  std::string_view value() const override {
    const auto& s = sources_[static_cast<size_t>(current_)];
    return s.is_mem ? std::string_view(s.mit->second) : s.iter->value();
  }
  Status status() const override { return status_; }

 private:
  static std::string_view KeyOf(const Source& s) {
    return s.is_mem ? std::string_view(s.mit->first) : s.iter->key();
  }

  bool SourceValid(const Source& s) const {
    if (s.is_mem) {
      return s.mit != s.mend &&
             (end_key_.empty() || s.mit->first < end_key_);
    }
    return s.iter->Valid() &&
           (end_key_.empty() || s.iter->key() < std::string_view(end_key_));
  }

  std::string CurrentKeyCopy() const {
    return std::string(KeyOf(sources_[static_cast<size_t>(current_)]));
  }

  // Pops every source positioned at `key` (shadowed duplicates advance too).
  void AdvanceAllAt(const std::string& key) {
    for (auto& s : sources_) {
      if (!SourceValid(s)) continue;
      if (KeyOf(s) == key) {
        if (s.is_mem) {
          ++s.mit;
        } else {
          s.iter->Next();
        }
      }
    }
  }

  void FindNext() {
    current_ = -1;
    std::string_view best;
    int best_priority = -1;
    for (size_t i = 0; i < sources_.size(); ++i) {
      auto& s = sources_[i];
      if (!s.is_mem && !s.iter->status().ok()) {
        status_ = s.iter->status();
        return;
      }
      if (!SourceValid(s)) continue;
      const std::string_view k = KeyOf(s);
      if (current_ < 0 || k < best ||
          (k == best && s.priority > best_priority)) {
        current_ = static_cast<int>(i);
        best = k;
        best_priority = s.priority;
      }
    }
  }

  std::vector<Source> sources_;
  std::string end_key_;
  int current_ = -1;
  Status status_;
};

}  // namespace

std::unique_ptr<ScanIterator> MiniKv::Scan(std::string_view start_key,
                                           std::string_view end_key) const {
  std::vector<MergingIterator::Source> sources;
  int priority = 0;
  for (const auto& table : tables_) {
    MergingIterator::Source s;
    s.iter = table->Scan(start_key, end_key);
    s.priority = priority++;
    sources.push_back(std::move(s));
  }
  MergingIterator::Source mem;
  mem.is_mem = true;
  mem.mit = memtable_.lower_bound(std::string(start_key));
  mem.mend = end_key.empty() ? memtable_.end()
                             : memtable_.lower_bound(std::string(end_key));
  mem.priority = priority;
  sources.push_back(std::move(mem));
  return std::make_unique<MergingIterator>(std::move(sources),
                                           std::string(end_key));
}

size_t MiniKv::ApproximateCount() const {
  size_t n = memtable_.size();
  for (const auto& t : tables_) n += t->num_entries();
  return n;  // upper bound: shadowed duplicates counted per table
}

Status MiniKv::Compact() {
  KVMATCH_RETURN_NOT_OK(Flush());
  if (tables_.size() <= 1) return Status::OK();
  const uint64_t seq = next_seq_++;
  {
    SstableBuilder builder(TablePath(seq), options_.sstable_block_size);
    auto it = Scan("", "");
    for (; it->Valid(); it->Next()) {
      KVMATCH_RETURN_NOT_OK(builder.Add(it->key(), it->value()));
    }
    KVMATCH_RETURN_NOT_OK(it->status());
    KVMATCH_RETURN_NOT_OK(builder.Finish());
  }
  // Drop the old tables and their files.
  std::vector<std::string> old_paths = std::move(table_paths_);
  tables_.clear();
  table_paths_.clear();
  for (const auto& p : old_paths) std::remove(p.c_str());
  auto reader = SstableReader::Open(TablePath(seq));
  if (!reader.ok()) return reader.status();
  tables_.push_back(std::move(reader).value());
  table_paths_.push_back(TablePath(seq));
  return Status::OK();
}

uint64_t MiniKv::TotalFileBytes() const {
  uint64_t n = 0;
  for (const auto& t : tables_) n += t->file_bytes();
  return n;
}

}  // namespace kvmatch
