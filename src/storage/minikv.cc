#include "storage/minikv.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <utility>

#include "common/event_log.h"

namespace kvmatch {

namespace fs = std::filesystem;

namespace {

// Every stored value (memtable and SSTable alike) carries a one-byte tag;
// the newest version of a key decides whether the key is live or deleted.
constexpr char kTombstoneTag = '\x00';
constexpr char kLiveTag = '\x01';

std::string TagLive(std::string_view value) {
  std::string tagged;
  tagged.reserve(value.size() + 1);
  tagged.push_back(kLiveTag);
  tagged.append(value);
  return tagged;
}

std::string Tombstone() { return std::string(1, kTombstoneTag); }

bool IsTombstone(std::string_view tagged) {
  return tagged.empty() || tagged[0] == kTombstoneTag;
}

std::string_view Untag(std::string_view tagged) {
  tagged.remove_prefix(1);
  return tagged;
}

// K-way merge over tagged sources; on duplicate keys the highest-priority
// (newest) source wins. Tombstoned keys are skipped and tags stripped, so
// consumers see only live, untagged entries.
class MergingIterator : public ScanIterator {
 public:
  struct Source {
    std::unique_ptr<ScanIterator> iter;
    int priority = 0;  // higher wins on equal keys
  };

  MergingIterator(std::vector<Source> sources,
                  std::vector<std::shared_ptr<SstableReader>> pinned_tables)
      : sources_(std::move(sources)),
        pinned_tables_(std::move(pinned_tables)) {
    FindNextLive();
  }

  bool Valid() const override { return current_ >= 0 && status_.ok(); }
  void Next() override {
    AdvanceAllAt(CurrentKeyCopy());
    FindNextLive();
  }
  std::string_view key() const override {
    return sources_[static_cast<size_t>(current_)].iter->key();
  }
  std::string_view value() const override {
    return Untag(sources_[static_cast<size_t>(current_)].iter->value());
  }
  Status status() const override { return status_; }

 private:
  std::string CurrentKeyCopy() const {
    return std::string(sources_[static_cast<size_t>(current_)].iter->key());
  }

  // Pops every source positioned at `key` (shadowed duplicates advance too).
  void AdvanceAllAt(const std::string& key) {
    for (auto& s : sources_) {
      if (s.iter->Valid() && s.iter->key() == key) s.iter->Next();
    }
  }

  void FindNext() {
    current_ = -1;
    std::string_view best;
    int best_priority = -1;
    for (size_t i = 0; i < sources_.size(); ++i) {
      auto& s = sources_[i];
      if (!s.iter->status().ok()) {
        status_ = s.iter->status();
        return;
      }
      if (!s.iter->Valid()) continue;
      const std::string_view k = s.iter->key();
      if (current_ < 0 || k < best ||
          (k == best && s.priority > best_priority)) {
        current_ = static_cast<int>(i);
        best = k;
        best_priority = s.priority;
      }
    }
  }

  /// FindNext, then keep consuming keys whose newest version is a
  /// tombstone until a live key (or exhaustion).
  void FindNextLive() {
    FindNext();
    while (current_ >= 0 && status_.ok() &&
           IsTombstone(sources_[static_cast<size_t>(current_)]
                           .iter->value())) {
      AdvanceAllAt(CurrentKeyCopy());
      FindNext();
    }
  }

  std::vector<Source> sources_;
  // Keeps the snapshotted tables' readers (and their fds) alive even if
  // the store flushes or compacts them away mid-scan.
  std::vector<std::shared_ptr<SstableReader>> pinned_tables_;
  int current_ = -1;
  Status status_;
};

}  // namespace

namespace {
// Store-format generation. v2 introduced the per-value tombstone tag; a
// v1 store's untagged values would be silently mis-decoded (first byte
// stripped, 0x00-leading values read as tombstones), so refuse to open
// table files written before the marker existed.
constexpr const char* kFormatMarkerName = "FORMAT";
constexpr const char* kFormatVersion = "2\n";
}  // namespace

Result<std::unique_ptr<MiniKv>> MiniKv::Open(const std::string& dir,
                                             Options options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create dir " + dir);
  auto kv = std::unique_ptr<MiniKv>(new MiniKv(dir, options));

  std::vector<uint64_t> seqs;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 10 && name.ends_with(".sst")) {
      seqs.push_back(std::stoull(name.substr(0, 6)));
    }
  }
  std::sort(seqs.begin(), seqs.end());

  const std::string marker_path = dir + "/" + kFormatMarkerName;
  if (!fs::exists(marker_path)) {
    if (!seqs.empty()) {
      return Status::Corruption(
          dir + ": SSTables predate the tombstone-tagged value format "
                "(no " + std::string(kFormatMarkerName) + " marker)");
    }
    std::FILE* marker = std::fopen(marker_path.c_str(), "wb");
    if (marker == nullptr) {
      return Status::IOError("cannot create " + marker_path);
    }
    std::fputs(kFormatVersion, marker);
    std::fclose(marker);
  }
  for (uint64_t seq : seqs) {
    auto reader = SstableReader::Open(kv->TablePath(seq));
    if (!reader.ok()) return reader.status();
    kv->tables_.push_back(std::move(reader).value());
    kv->table_paths_.push_back(kv->TablePath(seq));
    kv->next_seq_ = seq + 1;
  }
  return kv;
}

std::string MiniKv::TablePath(uint64_t seq) const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + buf;
}

Status MiniKv::PutTaggedLocked(std::string_view key, std::string tagged) {
  const size_t bytes = key.size() + tagged.size();
  if (IsTombstone(tagged)) ++lsm_stats_.tombstones_written;
  memtable_.insert_or_assign(std::string(key), std::move(tagged));
  memtable_bytes_ += bytes;
  if (memtable_bytes_ >= options_.memtable_limit_bytes) {
    return FlushLocked();
  }
  return Status::OK();
}

Status MiniKv::Put(std::string_view key, std::string_view value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return PutTaggedLocked(key, TagLive(value));
}

Status MiniKv::Delete(std::string_view key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return PutTaggedLocked(key, Tombstone());
}

Status MiniKv::DeleteRangeLocked(std::string_view start_key,
                                 std::string_view end_key) {
  // Tombstone every currently-live key in the range. Collect first: the
  // scan snapshots the memtable, but writing while walking the merged
  // view would still shadow-copy confusingly.
  std::vector<std::string> doomed;
  {
    auto it = ScanLocked(start_key, end_key);
    for (; it->Valid(); it->Next()) {
      KVMATCH_RETURN_NOT_OK(it->status());
      doomed.emplace_back(it->key());
    }
  }
  for (const auto& key : doomed) {
    KVMATCH_RETURN_NOT_OK(PutTaggedLocked(key, Tombstone()));
  }
  return Status::OK();
}

Status MiniKv::DeleteRange(std::string_view start_key,
                           std::string_view end_key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return DeleteRangeLocked(start_key, end_key);
}

Status MiniKv::Apply(const WriteBatch& batch) {
  // One exclusive lock across the whole batch: snapshot scans serialize
  // against it, so they observe all of the batch or none of it.
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& op : batch.ops()) {
    switch (op.kind) {
      case WriteBatch::Op::kPut:
        KVMATCH_RETURN_NOT_OK(PutTaggedLocked(op.key, TagLive(op.value)));
        break;
      case WriteBatch::Op::kDelete:
        KVMATCH_RETURN_NOT_OK(PutTaggedLocked(op.key, Tombstone()));
        break;
      case WriteBatch::Op::kDeleteRange:
        KVMATCH_RETURN_NOT_OK(DeleteRangeLocked(op.key, op.value));
        break;
    }
  }
  return Status::OK();
}

Status MiniKv::Get(std::string_view key, std::string* value) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto mit = memtable_.find(std::string(key));
  if (mit != memtable_.end()) {
    if (IsTombstone(mit->second)) return Status::NotFound();
    value->assign(Untag(mit->second));
    return Status::OK();
  }
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    std::string tagged;
    Status st = (*it)->Get(key, &tagged);
    if (st.ok()) {
      if (IsTombstone(tagged)) return Status::NotFound();
      value->assign(Untag(tagged));
      return st;
    }
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound();
}

Status MiniKv::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  const uint64_t seq = next_seq_++;
  SstableBuilder builder(TablePath(seq), options_.sstable_block_size);
  for (const auto& [k, v] : memtable_) {
    KVMATCH_RETURN_NOT_OK(builder.Add(k, v));
  }
  KVMATCH_RETURN_NOT_OK(builder.Finish());
  auto reader = SstableReader::Open(TablePath(seq));
  if (!reader.ok()) return reader.status();
  tables_.push_back(std::move(reader).value());
  table_paths_.push_back(TablePath(seq));
  memtable_.clear();
  memtable_bytes_ = 0;
  ++lsm_stats_.flushes;
  return Status::OK();
}

Status MiniKv::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return FlushLocked();
}

std::unique_ptr<ScanIterator> MiniKv::ScanLocked(std::string_view start_key,
                                                 std::string_view end_key)
    const {
  std::vector<MergingIterator::Source> sources;
  int priority = 0;
  for (const auto& table : tables_) {
    MergingIterator::Source s;
    s.iter = table->Scan(start_key, end_key);
    s.priority = priority++;
    sources.push_back(std::move(s));
  }
  // Snapshot-copy the memtable range; it has the highest priority.
  std::vector<std::pair<std::string, std::string>> mem_entries;
  auto mit = memtable_.lower_bound(std::string(start_key));
  auto mend = end_key.empty() ? memtable_.end()
                              : memtable_.lower_bound(std::string(end_key));
  for (; mit != mend; ++mit) mem_entries.emplace_back(*mit);
  MergingIterator::Source mem;
  mem.iter = std::make_unique<VectorScanIterator>(std::move(mem_entries));
  mem.priority = priority;
  sources.push_back(std::move(mem));
  return std::make_unique<MergingIterator>(std::move(sources), tables_);
}

std::unique_ptr<ScanIterator> MiniKv::Scan(std::string_view start_key,
                                           std::string_view end_key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ScanLocked(start_key, end_key);
}

size_t MiniKv::ApproximateCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = memtable_.size();
  for (const auto& t : tables_) n += t->num_entries();
  return n;  // upper bound: shadowed duplicates and tombstones counted
}

Status MiniKv::Compact() {
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::shared_mutex> lock(mu_);
  KVMATCH_RETURN_NOT_OK(FlushLocked());
  if (tables_.size() <= 1) return Status::OK();
  const uint64_t seq = next_seq_++;
  const size_t tables_in = tables_.size();
  uint64_t entries_in = 0;
  for (const auto& t : tables_) entries_in += t->num_entries();
  uint64_t live_entries = 0;
  {
    SstableBuilder builder(TablePath(seq), options_.sstable_block_size);
    // ScanLocked yields the live, untagged view: shadowed versions and
    // tombstones drop out of the compacted table entirely.
    auto it = ScanLocked("", "");
    for (; it->Valid(); it->Next()) {
      KVMATCH_RETURN_NOT_OK(builder.Add(it->key(), TagLive(it->value())));
    }
    KVMATCH_RETURN_NOT_OK(it->status());
    live_entries = builder.num_entries();
    KVMATCH_RETURN_NOT_OK(builder.Finish());
  }
  // Drop the old tables and their files; pinned snapshot scans keep the
  // unlinked files readable through their open fds.
  std::vector<std::string> old_paths = std::move(table_paths_);
  tables_.clear();
  table_paths_.clear();
  for (const auto& p : old_paths) std::remove(p.c_str());
  // Counters + event under the exclusive lock: emission is rare, and the
  // event log never calls back into the store.
  const auto finish = [&] {
    ++lsm_stats_.compactions;
    lsm_stats_.compaction_dropped +=
        entries_in > live_entries ? entries_in - live_entries : 0;
    if (event_log_ != nullptr) {
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      event_log_->Emit(Event{kEventCompaction}
                           .Num("tables_in", tables_in)
                           .Num("entries_in", entries_in)
                           .Num("entries_live", live_entries)
                           .Num("dropped", entries_in > live_entries
                                               ? entries_in - live_entries
                                               : 0)
                           .FNum("duration_ms", ms));
    }
  };
  if (live_entries == 0) {
    // Everything was deleted: no need to keep an empty table around.
    std::remove(TablePath(seq).c_str());
    finish();
    return Status::OK();
  }
  auto reader = SstableReader::Open(TablePath(seq));
  if (!reader.ok()) return reader.status();
  tables_.push_back(std::move(reader).value());
  table_paths_.push_back(TablePath(seq));
  finish();
  return Status::OK();
}

size_t MiniKv::NumTables() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_.size();
}

uint64_t MiniKv::TotalFileBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& t : tables_) n += t->file_bytes();
  return n;
}

MiniKv::LsmStats MiniKv::Stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return lsm_stats_;
}

void MiniKv::FillGauges(
    std::vector<std::pair<std::string, uint64_t>>* gauges) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t file_bytes = 0;
  for (const auto& t : tables_) file_bytes += t->file_bytes();
  gauges->emplace_back("tables", tables_.size());
  gauges->emplace_back("file_bytes", file_bytes);
  gauges->emplace_back("memtable_bytes", memtable_bytes_);
  gauges->emplace_back("tombstones_written_total",
                       lsm_stats_.tombstones_written);
  gauges->emplace_back("flushes_total", lsm_stats_.flushes);
  gauges->emplace_back("compactions_total", lsm_stats_.compactions);
  gauges->emplace_back("compaction_dropped_total",
                       lsm_stats_.compaction_dropped);
}

void MiniKv::SetEventLog(EventLog* log) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  event_log_ = log;
}

}  // namespace kvmatch
