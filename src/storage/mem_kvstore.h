// In-memory KvStore backed by a sorted map. Reference implementation used
// in tests and as the build-side staging area for FileKvStore.
//
// Fully synchronized: reads take a shared lock, writes an exclusive one,
// and Scan copies the requested range under the shared lock so iterators
// are true snapshots — online ingest can rewrite a series' keys while
// queries keep scanning the state they started from.
#ifndef KVMATCH_STORAGE_MEM_KVSTORE_H_
#define KVMATCH_STORAGE_MEM_KVSTORE_H_

#include <map>
#include <shared_mutex>
#include <string>

#include "storage/kvstore.h"

namespace kvmatch {

class MemKvStore : public KvStore {
 public:
  MemKvStore() = default;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  Status DeleteRange(std::string_view start_key,
                     std::string_view end_key) override;
  Status Apply(const WriteBatch& batch) override;
  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key) const override;
  size_t ApproximateCount() const override;
  void FillGauges(
      std::vector<std::pair<std::string, uint64_t>>* gauges) const override {
    gauges->emplace_back("entries", ApproximateCount());
  }

 private:
  /// Caller must hold mu_ exclusively.
  void DeleteRangeLocked(std::string_view start_key,
                         std::string_view end_key);

  mutable std::shared_mutex mu_;
  std::map<std::string, std::string> map_;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_MEM_KVSTORE_H_
