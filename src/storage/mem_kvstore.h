// In-memory KvStore backed by a sorted map. Reference implementation used
// in tests and as the build-side staging area for FileKvStore.
#ifndef KVMATCH_STORAGE_MEM_KVSTORE_H_
#define KVMATCH_STORAGE_MEM_KVSTORE_H_

#include <map>
#include <string>

#include "storage/kvstore.h"

namespace kvmatch {

class MemKvStore : public KvStore {
 public:
  MemKvStore() = default;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key) const override;
  size_t ApproximateCount() const override { return map_.size(); }

  const std::map<std::string, std::string>& entries() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_MEM_KVSTORE_H_
