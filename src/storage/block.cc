#include "storage/block.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace kvmatch {

void BlockBuilder::Add(std::string_view key, std::string_view value) {
  assert(last_key_.empty() || key >= std::string_view(last_key_));
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    const size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;
  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());
  last_key_.assign(key.data(), key.size());
  ++counter_;
}

std::string BlockBuilder::Finish() {
  for (uint32_t r : restarts_) PutFixed32(&buffer_, r);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  return std::move(buffer_);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.assign(1, 0);
  counter_ = 0;
  last_key_.clear();
}

Result<BlockReader> BlockReader::Parse(std::string contents) {
  if (contents.size() < 4) return Status::Corruption("block too small");
  BlockReader block;
  block.data_ = std::move(contents);
  const uint32_t n =
      DecodeFixed32(block.data_.data() + block.data_.size() - 4);
  const uint64_t trailer = 4ull + 4ull * n;
  if (trailer > block.data_.size()) {
    return Status::Corruption("restart array overflows block");
  }
  block.num_restarts_ = n;
  block.restarts_offset_ =
      static_cast<uint32_t>(block.data_.size() - trailer);
  return block;
}

void BlockReader::Iterator::SeekToRestart(uint32_t index) {
  const uint32_t off =
      DecodeFixed32(block_->data_.data() + block_->restarts_offset_ +
                    4 * index);
  offset_ = off;
  next_offset_ = off;
  key_.clear();
  valid_ = ParseCurrent();
}

bool BlockReader::Iterator::ParseCurrent() {
  offset_ = next_offset_;
  if (offset_ >= block_->restarts_offset_) return false;
  const char* p = block_->data_.data() + offset_;
  const char* limit = block_->data_.data() + block_->restarts_offset_;
  uint32_t shared, non_shared, value_len;
  p = GetVarint32Ptr(p, limit, &shared);
  if (p == nullptr) { status_ = Status::Corruption("bad entry"); return false; }
  p = GetVarint32Ptr(p, limit, &non_shared);
  if (p == nullptr) { status_ = Status::Corruption("bad entry"); return false; }
  p = GetVarint32Ptr(p, limit, &value_len);
  if (p == nullptr) { status_ = Status::Corruption("bad entry"); return false; }
  if (p + non_shared + value_len > limit || shared > key_.size()) {
    status_ = Status::Corruption("entry overflows block");
    return false;
  }
  key_.resize(shared);
  key_.append(p, non_shared);
  value_ = std::string_view(p + non_shared, value_len);
  next_offset_ = static_cast<uint32_t>((p + non_shared + value_len) -
                                       block_->data_.data());
  return true;
}

void BlockReader::Iterator::SeekToFirst() {
  if (block_->num_restarts_ == 0) {
    valid_ = false;
    return;
  }
  SeekToRestart(0);
}

void BlockReader::Iterator::Seek(std::string_view target) {
  if (block_->num_restarts_ == 0) {
    valid_ = false;
    return;
  }
  // Binary search over restart points: find the last restart whose key is
  // < target, then scan forward.
  uint32_t lo = 0, hi = block_->num_restarts_ - 1;
  while (lo < hi) {
    const uint32_t mid = (lo + hi + 1) / 2;
    SeekToRestart(mid);
    if (valid_ && std::string_view(key_) < target) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  SeekToRestart(lo);
  while (valid_ && std::string_view(key_) < target) Next();
}

void BlockReader::Iterator::Next() {
  valid_ = ParseCurrent();
}

}  // namespace kvmatch
