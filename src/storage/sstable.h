// SSTable: a sorted, immutable, block-structured table file.
//
//   [data block + crc32c]* [index block + crc32c] [footer]
//
// The index block maps each data block's last key to its BlockHandle
// (offset, size). The footer stores the index handle and a magic number.
// Every block is CRC-protected; corruption is detected at read time.
#ifndef KVMATCH_STORAGE_SSTABLE_H_
#define KVMATCH_STORAGE_SSTABLE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/block.h"
#include "storage/kvstore.h"

namespace kvmatch {

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(std::string_view* input, BlockHandle* handle);
};

/// Writes an SSTable; keys must arrive in strictly increasing order.
class SstableBuilder {
 public:
  /// `target_block_size` is the uncompressed payload threshold at which a
  /// data block is cut.
  explicit SstableBuilder(std::string path, size_t target_block_size = 4096);

  Status Add(std::string_view key, std::string_view value);
  /// Writes the index block and footer. The builder is unusable afterwards.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }

 private:
  Status FlushDataBlock();
  Status WriteBlock(const std::string& contents, BlockHandle* handle);

  std::string path_;
  size_t target_block_size_;
  std::FILE* file_ = nullptr;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  BlockBuilder data_block_;
  BlockBuilder index_block_{1};
  std::string last_key_;
  std::vector<std::pair<std::string, BlockHandle>> pending_index_;
  Status io_status_;
};

/// Reads an SSTable. Safe for any number of concurrent Get/Scan calls:
/// blocks are fetched with positional pread, so no file-position state is
/// shared between readers.
class SstableReader {
 public:
  static Result<std::unique_ptr<SstableReader>> Open(const std::string& path);
  ~SstableReader();

  Status Get(std::string_view key, std::string* value) const;

  /// Ordered iterator over [start_key, end_key) within this table.
  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key) const;

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  SstableReader() = default;

  Result<BlockReader> ReadBlock(const BlockHandle& handle) const;
  Status ReadAt(uint64_t offset, size_t len, char* buf) const;

  std::string path_;
  int fd_ = -1;
  uint64_t file_bytes_ = 0;
  uint64_t num_entries_ = 0;
  // Decoded index: (last_key, handle) per data block, in key order.
  std::vector<std::pair<std::string, BlockHandle>> index_;

  friend class SstableScanIterator;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_SSTABLE_H_
