// InstrumentedKvStore: a transparent decorator that makes any KvStore
// backend observable — per-operation counters and latency histograms
// (get/put/delete/delete-range/batch-apply/scan/flush), bytes read and
// written, scan rows yielded, and batch-size distribution — without the
// backend knowing it is being watched.
//
// The decorator forwards every call to the wrapped store and records
// around it, so it composes with all three backends (MemKvStore,
// FileKvStore, MiniKv) and with the fault-injection harness: wrap the
// injector to count the ops the test actually performed, or let the
// injector wrap this to fault below the measurement point.
//
// The KvStoreStats sink is shared (shared_ptr) so the StatsRegistry can
// keep snapshotting long after the catalog that owned the wrapper is
// gone, and so purge-on-release threads that outlive the Catalog can keep
// writing through the wrapper safely (the NsHandle keepalive holds the
// wrapper itself).
//
// Thread-safety matches the wrapped store's contract: all recording is
// lock-free (relaxed atomics + striped histograms), so the decorator adds
// no serialization of its own.
#ifndef KVMATCH_STORAGE_INSTRUMENTED_KVSTORE_H_
#define KVMATCH_STORAGE_INSTRUMENTED_KVSTORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "storage/kvstore.h"

namespace kvmatch {

/// Lock-free sink for one store's operation metrics. Get misses
/// (NotFound) are not errors — they are an answer; every other non-OK
/// status counts as an error for its op.
class KvStoreStats {
 public:
  enum Op : int {
    kGet = 0,
    kPut,
    kDelete,
    kDeleteRange,
    kApply,
    kScan,
    kFlush,
    kNumOps,
  };

  /// Stable lower-case label for the Prometheus `op` label.
  static const char* OpName(int op);

  struct Snapshot {
    struct PerOp {
      uint64_t count = 0;
      uint64_t errors = 0;
      LatencyHistogram::Snapshot latency;
    };
    PerOp ops[kNumOps];
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t scan_rows = 0;
    /// Distribution of WriteBatch::num_ops() per Apply (unit: ops, not
    /// ms; the histogram's log buckets work for any positive quantity).
    LatencyHistogram::Snapshot batch_ops;

    uint64_t TotalOps() const {
      uint64_t n = 0;
      for (const auto& op : ops) n += op.count;
      return n;
    }
  };

  void RecordOp(Op op, double latency_ms, bool ok) {
    PerOpCell& cell = ops_[op];
    cell.count.fetch_add(1, std::memory_order_relaxed);
    if (!ok) cell.errors.fetch_add(1, std::memory_order_relaxed);
    cell.latency.Record(latency_ms);
  }
  void AddBytesRead(uint64_t n) {
    if (n) bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBytesWritten(uint64_t n) {
    if (n) bytes_written_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddScanRows(uint64_t n) {
    if (n) scan_rows_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordBatchOps(uint64_t num_ops) {
    batch_ops_.Record(static_cast<double>(num_ops));
  }

  Snapshot TakeSnapshot() const;
  void Reset();

 private:
  struct PerOpCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    LatencyHistogram latency;
  };

  PerOpCell ops_[kNumOps];
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> scan_rows_{0};
  LatencyHistogram batch_ops_;
};

class InstrumentedKvStore : public KvStore {
 public:
  /// Wraps `base` (not owned; must outlive this wrapper) with a fresh
  /// stats sink.
  explicit InstrumentedKvStore(KvStore* base)
      : InstrumentedKvStore(base, std::make_shared<KvStoreStats>()) {}

  /// Wraps `base` feeding an existing sink (several stores can share one).
  InstrumentedKvStore(KvStore* base, std::shared_ptr<KvStoreStats> stats)
      : base_(base), stats_(std::move(stats)) {}

  KvStore* base() const { return base_; }
  const std::shared_ptr<KvStoreStats>& stats() const { return stats_; }

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  Status DeleteRange(std::string_view start_key,
                     std::string_view end_key) override;
  Status Apply(const WriteBatch& batch) override;
  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key) const override;
  size_t ApproximateCount() const override;
  Status Flush() override;
  void FillGauges(
      std::vector<std::pair<std::string, uint64_t>>* gauges) const override {
    base_->FillGauges(gauges);
  }

 private:
  KvStore* base_;
  std::shared_ptr<KvStoreStats> stats_;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_INSTRUMENTED_KVSTORE_H_
