// MiniKv: a small LSM-flavoured embedded store — MemTable + immutable
// SSTables with a merging scan. It stands in for the paper's HBase backend:
// same Put/Scan contract, durable, sorted, block-structured.
//
// Writes land in an in-memory sorted memtable; Flush() (or exceeding
// `memtable_limit_bytes`) turns the memtable into a new SSTable under the
// store directory. Reads consult the memtable first, then SSTables newest
// to oldest. Scans merge all sources with newest-wins semantics.
#ifndef KVMATCH_STORAGE_MINIKV_H_
#define KVMATCH_STORAGE_MINIKV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/kvstore.h"
#include "storage/sstable.h"

namespace kvmatch {

class MiniKv : public KvStore {
 public:
  struct Options {
    size_t memtable_limit_bytes = 8 << 20;
    size_t sstable_block_size = 4096;
  };

  /// Opens (creating the directory if needed) a MiniKv at `dir`. Existing
  /// SSTables (NNNNNN.sst, ordered by sequence number) are picked up.
  static Result<std::unique_ptr<MiniKv>> Open(const std::string& dir,
                                              Options options);
  static Result<std::unique_ptr<MiniKv>> Open(const std::string& dir) {
    return Open(dir, Options());
  }

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key) const override;
  size_t ApproximateCount() const override;
  Status Flush() override;

  /// Merges all SSTables + memtable into a single new SSTable (a full
  /// compaction), dropping shadowed versions.
  Status Compact();

  size_t NumTables() const { return tables_.size(); }
  uint64_t TotalFileBytes() const;

 private:
  MiniKv(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  std::string TablePath(uint64_t seq) const;

  std::string dir_;
  Options options_;
  std::map<std::string, std::string> memtable_;
  size_t memtable_bytes_ = 0;
  uint64_t next_seq_ = 1;
  // Newest last; lookups walk backwards. table_paths_ parallels tables_.
  std::vector<std::unique_ptr<SstableReader>> tables_;
  std::vector<std::string> table_paths_;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_MINIKV_H_
