// MiniKv: a small LSM-flavoured embedded store — MemTable + immutable
// SSTables with a merging scan. It stands in for the paper's HBase backend:
// same Put/Scan contract, durable, sorted, block-structured.
//
// Writes land in an in-memory sorted memtable; Flush() (or exceeding
// `memtable_limit_bytes`) turns the memtable into a new SSTable under the
// store directory. Reads consult the memtable first, then SSTables newest
// to oldest. Scans merge all sources with newest-wins semantics.
//
// Deletes are tombstones: each stored value carries a one-byte tag (live
// or tombstone), the newest version of a key decides, and readers never
// surface tombstoned keys. Compact() drops tombstones entirely (it merges
// every table, so nothing older can resurface).
//
// Thread-safety: reads (Get/Scan/counts) take a shared lock and snapshot
// the memtable range plus the current table set, so they stay correct
// while writes, flushes and compactions proceed. Writers take the
// exclusive lock and must be externally serialized against each other.
#ifndef KVMATCH_STORAGE_MINIKV_H_
#define KVMATCH_STORAGE_MINIKV_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/kvstore.h"
#include "storage/sstable.h"

namespace kvmatch {

class EventLog;

class MiniKv : public KvStore {
 public:
  struct Options {
    size_t memtable_limit_bytes = 8 << 20;
    size_t sstable_block_size = 4096;
  };

  /// Opens (creating the directory if needed) a MiniKv at `dir`. Existing
  /// SSTables (NNNNNN.sst, ordered by sequence number) are picked up.
  static Result<std::unique_ptr<MiniKv>> Open(const std::string& dir,
                                              Options options);
  static Result<std::unique_ptr<MiniKv>> Open(const std::string& dir) {
    return Open(dir, Options());
  }

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  Status DeleteRange(std::string_view start_key,
                     std::string_view end_key) override;
  Status Apply(const WriteBatch& batch) override;
  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key) const override;
  size_t ApproximateCount() const override;
  Status Flush() override;

  /// Merges all SSTables + memtable into a single new SSTable (a full
  /// compaction), dropping shadowed versions and tombstones.
  Status Compact();

  size_t NumTables() const;
  uint64_t TotalFileBytes() const;

  /// LSM lifecycle counters since open (monotonic).
  struct LsmStats {
    uint64_t tombstones_written = 0;  // point + range tombstone writes
    uint64_t flushes = 0;             // memtable → SSTable conversions
    uint64_t compactions = 0;
    uint64_t compaction_dropped = 0;  // shadowed/tombstoned entries merged away
  };
  LsmStats Stats() const;

  void FillGauges(
      std::vector<std::pair<std::string, uint64_t>>* gauges) const override;

  /// Optional sink for "compaction" events (tables merged, entries
  /// dropped, duration). Not owned; must outlive the store's write use.
  void SetEventLog(EventLog* log);

 private:
  MiniKv(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  std::string TablePath(uint64_t seq) const;

  // The following *Locked helpers assume the caller holds mu_ exclusively.
  Status PutTaggedLocked(std::string_view key, std::string tagged);
  Status DeleteRangeLocked(std::string_view start_key,
                           std::string_view end_key);
  Status FlushLocked();

  /// Builds the newest-wins merged iterator (live view: tombstones skipped,
  /// tags stripped) over a memtable-range copy and the current tables.
  /// Caller must hold mu_ (shared suffices).
  std::unique_ptr<ScanIterator> ScanLocked(std::string_view start_key,
                                           std::string_view end_key) const;

  std::string dir_;
  Options options_;

  mutable std::shared_mutex mu_;
  // Values are tagged (see kLiveTag/kTombstoneTag in minikv.cc).
  std::map<std::string, std::string> memtable_;
  size_t memtable_bytes_ = 0;
  uint64_t next_seq_ = 1;
  // Newest last; lookups walk backwards. table_paths_ parallels tables_.
  // shared_ptr: snapshot scans keep replaced/compacted tables alive.
  std::vector<std::shared_ptr<SstableReader>> tables_;
  std::vector<std::string> table_paths_;
  // Written under the exclusive lock, read under the shared one.
  LsmStats lsm_stats_;
  EventLog* event_log_ = nullptr;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_MINIKV_H_
