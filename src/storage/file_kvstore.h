// FileKvStore: the paper's "local file version" of the index store (§VII-A).
//
// Layout:
//   [entry 0][entry 1]...[entry N-1][meta block][footer]
// where each entry is <varint key_len><key><varint val_len><value>, the
// meta block is a serialized array of <key, offset, value_len> triples, and
// the footer records the meta block's position plus a magic number. The
// meta block plays the paper's "meta table" role: it is loaded into memory
// up front, and each Scan becomes one binary search + one sequential read.
//
// Writes (Put/Delete/DeleteRange) are staged in memory; Flush merges them
// with the current file into a fresh file written beside the store and
// atomically renamed over it. Readers pin the generation they started on
// (an immutable FileState holding the fd and meta table), so Get and Scan
// stay correct while a Flush replaces the file under them — the MVCC
// ingredient online ingest needs. Gets see staged writes immediately;
// Scans only see flushed state (write-once / read-many per generation).
//
// Thread-safety: any number of concurrent readers, including across a
// Flush. Writers require external serialization against each other.
#ifndef KVMATCH_STORAGE_FILE_KVSTORE_H_
#define KVMATCH_STORAGE_FILE_KVSTORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/kvstore.h"

namespace kvmatch {

class FileKvStore : public KvStore {
 public:
  /// Opens (or prepares to create) the store at `path`. If the file exists
  /// its meta block is loaded; otherwise the store starts empty and
  /// becomes durable at Flush().
  static Result<std::unique_ptr<FileKvStore>> Open(const std::string& path);

  ~FileKvStore() override = default;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  Status DeleteRange(std::string_view start_key,
                     std::string_view end_key) override;
  Status Apply(const WriteBatch& batch) override;
  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key) const override;
  size_t ApproximateCount() const override;
  Status Flush() override;
  void FillGauges(
      std::vector<std::pair<std::string, uint64_t>>* gauges) const override {
    gauges->emplace_back("entries", ApproximateCount());
    gauges->emplace_back("file_bytes", FileBytes());
  }

  /// Total bytes of the on-disk file (0 before first Flush).
  uint64_t FileBytes() const;

 private:
  struct MetaEntry {
    std::string key;
    uint64_t offset;    // byte offset of the value within the file
    uint32_t value_len;
  };

  /// One immutable on-disk generation. Readers hold it by shared_ptr; the
  /// fd closes when the last reader of a replaced generation lets go.
  struct FileState {
    ~FileState();
    /// Positional read of `len` bytes at `offset` (thread-safe; no shared
    /// file position).
    Status ReadAt(uint64_t offset, size_t len, char* buf) const;

    std::string path;
    int fd = -1;
    std::vector<MetaEntry> meta;  // sorted by key
    uint64_t file_bytes = 0;
  };

  explicit FileKvStore(std::string path) : path_(std::move(path)) {}

  static Status LoadMeta(FileState* state);
  std::shared_ptr<const FileState> CurrentState() const;
  /// Stages tombstones for every key in [start_key, end_key) visible in
  /// `state` or pending_. Caller must hold mu_.
  void StageRangeTombstonesLocked(const FileState& state,
                                  std::string_view start_key,
                                  std::string_view end_key);

  std::string path_;
  mutable std::mutex mu_;  // guards state_ (pointer swap) and pending_
  std::shared_ptr<const FileState> state_;
  // Staged writes: a value (Put) or a tombstone (Delete/DeleteRange).
  std::map<std::string, std::optional<std::string>> pending_;

  friend class FileScanIterator;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_FILE_KVSTORE_H_
