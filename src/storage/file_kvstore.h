// FileKvStore: the paper's "local file version" of the index store (§VII-A).
//
// Layout:
//   [entry 0][entry 1]...[entry N-1][meta block][footer]
// where each entry is <varint key_len><key><varint val_len><value>, the
// meta block is a serialized array of <key, offset, value_len> triples, and
// the footer records the meta block's position plus a magic number. The
// meta block plays the paper's "meta table" role: it is loaded into memory
// up front, and each Scan becomes one binary search + one sequential read.
//
// Writes are staged in memory and sorted at Flush; the store is
// write-once / read-many, matching index building.
//
// Thread-safety: reads (Get/Scan/FileBytes) are safe from any number of
// threads concurrently — values are fetched with positional pread, so no
// file-position state is shared. Writes (Put/Flush) require external
// synchronization and must not overlap with reads.
#ifndef KVMATCH_STORAGE_FILE_KVSTORE_H_
#define KVMATCH_STORAGE_FILE_KVSTORE_H_

#include <map>
#include <string>
#include <vector>

#include "storage/kvstore.h"

namespace kvmatch {

class FileKvStore : public KvStore {
 public:
  /// Opens (or prepares to create) the store at `path`. If the file exists
  /// its meta block is loaded; otherwise the store starts empty and
  /// becomes durable at Flush().
  static Result<std::unique_ptr<FileKvStore>> Open(const std::string& path);

  ~FileKvStore() override;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  std::unique_ptr<ScanIterator> Scan(std::string_view start_key,
                                     std::string_view end_key) const override;
  size_t ApproximateCount() const override;
  Status Flush() override;

  /// Total bytes of the on-disk file (0 before first Flush).
  uint64_t FileBytes() const;

 private:
  explicit FileKvStore(std::string path) : path_(std::move(path)) {}

  Status LoadMeta();
  /// Positional read of `len` bytes at `offset` (thread-safe; no shared
  /// file position).
  Status ReadAt(uint64_t offset, size_t len, char* buf) const;

  struct MetaEntry {
    std::string key;
    uint64_t offset;    // byte offset of the value within the file
    uint32_t value_len;
  };

  std::string path_;
  std::map<std::string, std::string> pending_;  // staged writes
  std::vector<MetaEntry> meta_;                 // sorted by key
  int fd_ = -1;                                 // open read descriptor

  friend class FileScanIterator;
};

}  // namespace kvmatch

#endif  // KVMATCH_STORAGE_FILE_KVSTORE_H_
