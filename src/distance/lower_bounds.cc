#include "distance/lower_bounds.h"

#include <algorithm>
#include <cmath>

namespace kvmatch {

namespace {
inline double Sq(double x) { return x * x; }
}  // namespace

double LbKimSquared(std::span<const double> s, std::span<const double> q,
                    double threshold_sq) {
  const size_t m = q.size();
  if (m == 0) return 0.0;
  // First and last points are fixed by any warping path.
  double lb = Sq(s[0] - q[0]) + Sq(s[m - 1] - q[m - 1]);
  if (lb > threshold_sq || m < 4) return lb;
  // Second point: best alignment among the three feasible pairings.
  double d = std::min({Sq(s[1] - q[0]), Sq(s[0] - q[1]), Sq(s[1] - q[1])});
  lb += d;
  if (lb > threshold_sq) return lb;
  // Penultimate point, symmetric.
  d = std::min({Sq(s[m - 2] - q[m - 1]), Sq(s[m - 1] - q[m - 2]),
                Sq(s[m - 2] - q[m - 2])});
  lb += d;
  return lb;
}

double LbKeoghSquared(std::span<const double> s, const Envelope& env,
                      double threshold_sq, std::vector<double>* cb) {
  const size_t m = s.size();
  if (cb != nullptr) cb->assign(m, 0.0);
  double lb = 0.0;
  for (size_t i = 0; i < m; ++i) {
    double d = 0.0;
    if (s[i] > env.upper[i]) {
      d = Sq(s[i] - env.upper[i]);
    } else if (s[i] < env.lower[i]) {
      d = Sq(s[i] - env.lower[i]);
    }
    lb += d;
    if (cb != nullptr) (*cb)[i] = d;
    if (lb > threshold_sq && cb == nullptr) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return lb;
}

double LbKeoghNormalizedSquared(std::span<const double> s, double mean,
                                double std, const Envelope& env,
                                double threshold_sq, std::vector<double>* cb) {
  const size_t m = s.size();
  if (cb != nullptr) cb->assign(m, 0.0);
  const double inv = std > 1e-12 ? 1.0 / std : 0.0;
  double lb = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double x = (s[i] - mean) * inv;
    double d = 0.0;
    if (x > env.upper[i]) {
      d = Sq(x - env.upper[i]);
    } else if (x < env.lower[i]) {
      d = Sq(x - env.lower[i]);
    }
    lb += d;
    if (cb != nullptr) (*cb)[i] = d;
    if (lb > threshold_sq && cb == nullptr) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return lb;
}

std::vector<double> SuffixCumulate(const std::vector<double>& cb) {
  std::vector<double> out(cb.size() + 1, 0.0);
  for (size_t i = cb.size(); i > 0; --i) {
    out[i - 1] = out[i] + cb[i - 1];
  }
  return out;
}

double LbPaaSquared(std::span<const double> s_means,
                    std::span<const double> l_means,
                    std::span<const double> u_means, size_t w) {
  double lb = 0.0;
  const double dw = static_cast<double>(w);
  for (size_t i = 0; i < s_means.size(); ++i) {
    if (s_means[i] > u_means[i]) {
      lb += dw * Sq(s_means[i] - u_means[i]);
    } else if (s_means[i] < l_means[i]) {
      lb += dw * Sq(s_means[i] - l_means[i]);
    }
  }
  return lb;
}

}  // namespace kvmatch
