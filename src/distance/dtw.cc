#include "distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace kvmatch {

double DtwDistance(std::span<const double> a, std::span<const double> b,
                   size_t rho, double threshold,
                   std::span<const double> cum_lb, const CancelToken* cancel) {
  const size_t m = a.size();
  if (m == 0) return 0.0;
  const double inf = std::numeric_limits<double>::infinity();
  const double thr_sq = threshold < inf ? threshold * threshold : inf;

  // Row-by-row DP over the band; prev/curr hold squared costs.
  std::vector<double> prev(m, inf), curr(m, inf);
  for (size_t i = 0; i < m; ++i) {
    if (cancel != nullptr && i % kDtwCancelRows == 0 && cancel->cancelled()) {
      return inf;
    }
    const size_t j_lo = i > rho ? i - rho : 0;
    const size_t j_hi = std::min(m - 1, i + rho);
    double row_min = inf;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double d = a[i] - b[j];
      const double cost = d * d;
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = inf;
        if (i > 0) best = std::min(best, prev[j]);                    // a-suffix
        if (j > 0) best = std::min(best, curr[j - 1]);                // b-suffix
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);       // both
      }
      curr[j] = best + cost;
      row_min = std::min(row_min, curr[j]);
    }
    // Early abandoning: the final cost can only grow along any path; add
    // the cumulative lower bound of the remaining tail when available.
    if (thr_sq < inf) {
      double tail = 0.0;
      if (!cum_lb.empty()) {
        const size_t next = std::min(m, i + rho + 1);
        if (next < cum_lb.size()) tail = cum_lb[next];
      }
      if (row_min + tail > thr_sq) return inf;
    }
    std::swap(prev, curr);
    std::fill(curr.begin(), curr.end(), inf);
  }
  // Uniform early-abandon contract: any result above the threshold is
  // reported as +inf, whether detected mid-band or at the end.
  if (prev[m - 1] > thr_sq) return inf;
  return std::sqrt(prev[m - 1]);
}

double DtwDistanceFull(std::span<const double> a, std::span<const double> b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 0.0;
  if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m + 1, inf), curr(m + 1, inf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = inf;
    for (size_t j = 1; j <= m; ++j) {
      const double d = a[i - 1] - b[j - 1];
      curr[j] = d * d +
                std::min({prev[j], curr[j - 1], prev[j - 1]});
    }
    std::swap(prev, curr);
  }
  return std::sqrt(prev[m]);
}

}  // namespace kvmatch
