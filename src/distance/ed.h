// Euclidean distance with early abandoning (paper §II; UCR Suite §VIII).
#ifndef KVMATCH_DISTANCE_ED_H_
#define KVMATCH_DISTANCE_ED_H_

#include <limits>
#include <span>
#include <vector>

namespace kvmatch {

/// Plain Euclidean distance between equal-length sequences.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// Squared ED with early abandoning: returns +inf as soon as the running
/// squared sum exceeds `threshold_sq`.
double SquaredEdEarlyAbandon(
    std::span<const double> a, std::span<const double> b,
    double threshold_sq = std::numeric_limits<double>::infinity());

/// Squared ED between the z-normalization of `s` (given its mean/std) and a
/// pre-normalized query, visiting points in `order` (largest |q̂| first) and
/// abandoning once `threshold_sq` is exceeded. This is the UCR Suite
/// "reordered early abandoning" kernel.
double SquaredNormalizedEdOrdered(std::span<const double> s, double mean,
                                  double std,
                                  std::span<const double> normalized_q,
                                  std::span<const int> order,
                                  double threshold_sq);

/// Index order of a query sorted by decreasing |q̂_i| — the UCR Suite
/// heuristic that abandons fastest.
std::vector<int> SortedAbsOrder(std::span<const double> normalized_q);

/// Manhattan (L1) distance with early abandoning: returns +inf as soon as
/// the running sum exceeds `threshold`. Supports the RSM-L1 query type.
double L1DistanceEarlyAbandon(
    std::span<const double> a, std::span<const double> b,
    double threshold = std::numeric_limits<double>::infinity());

}  // namespace kvmatch

#endif  // KVMATCH_DISTANCE_ED_H_
