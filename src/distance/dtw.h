// Dynamic Time Warping with a Sakoe-Chiba band (paper §II).
#ifndef KVMATCH_DISTANCE_DTW_H_
#define KVMATCH_DISTANCE_DTW_H_

#include <limits>
#include <span>

namespace kvmatch {

/// DTW distance between equal-length sequences restricted to the
/// Sakoe-Chiba band |i - j| <= rho. With rho = 0 this equals ED.
///
/// `threshold` (on the *distance*, not its square) enables early abandoning:
/// if every cell in some anti-diagonal row of the band exceeds threshold²,
/// +inf is returned. `cum_lb` optionally supplies the UCR Suite cumulative
/// lower-bound tail array (cb[i] = lower bound contribution of points >= i):
/// adding cb[i+band] tightens abandoning further.
double DtwDistance(std::span<const double> a, std::span<const double> b,
                   size_t rho,
                   double threshold = std::numeric_limits<double>::infinity(),
                   std::span<const double> cum_lb = {});

/// Unconstrained (full-matrix) DTW — reference implementation for tests.
double DtwDistanceFull(std::span<const double> a, std::span<const double> b);

}  // namespace kvmatch

#endif  // KVMATCH_DISTANCE_DTW_H_
