// Dynamic Time Warping with a Sakoe-Chiba band (paper §II).
#ifndef KVMATCH_DISTANCE_DTW_H_
#define KVMATCH_DISTANCE_DTW_H_

#include <limits>
#include <span>

#include "common/cancel.h"

namespace kvmatch {

/// DTW distance between equal-length sequences restricted to the
/// Sakoe-Chiba band |i - j| <= rho. With rho = 0 this equals ED.
///
/// `threshold` (on the *distance*, not its square) enables early abandoning:
/// if every cell in some anti-diagonal row of the band exceeds threshold²,
/// +inf is returned. `cum_lb` optionally supplies the UCR Suite cumulative
/// lower-bound tail array (cb[i] = lower bound contribution of points >= i):
/// adding cb[i+band] tightens abandoning further.
///
/// `cancel` (borrowed, may be null) is polled every kDtwCancelRows DP rows:
/// one pathologically long candidate (m ~ 10⁴, wide band → 10⁸ cells) no
/// longer pins a cancelled query until the candidate finishes. On
/// cancellation +inf is returned; the caller is expected to re-check its
/// token and discard the value rather than treat it as "no match".
inline constexpr size_t kDtwCancelRows = 16;
double DtwDistance(std::span<const double> a, std::span<const double> b,
                   size_t rho,
                   double threshold = std::numeric_limits<double>::infinity(),
                   std::span<const double> cum_lb = {},
                   const CancelToken* cancel = nullptr);

/// Unconstrained (full-matrix) DTW — reference implementation for tests.
double DtwDistanceFull(std::span<const double> a, std::span<const double> b);

}  // namespace kvmatch

#endif  // KVMATCH_DISTANCE_DTW_H_
