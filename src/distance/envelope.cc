#include "distance/envelope.h"

#include <deque>

namespace kvmatch {

Envelope BuildEnvelope(std::span<const double> q, size_t rho) {
  const size_t m = q.size();
  Envelope env;
  env.lower.resize(m);
  env.upper.resize(m);
  if (m == 0) return env;

  // Window for position i is [i-rho, i+rho] clamped to [0, m).
  std::deque<size_t> max_dq, min_dq;
  size_t right = 0;  // next index to push
  for (size_t i = 0; i < m; ++i) {
    const size_t win_hi = std::min(m - 1, i + rho);
    while (right <= win_hi) {
      while (!max_dq.empty() && q[max_dq.back()] <= q[right]) max_dq.pop_back();
      max_dq.push_back(right);
      while (!min_dq.empty() && q[min_dq.back()] >= q[right]) min_dq.pop_back();
      min_dq.push_back(right);
      ++right;
    }
    const size_t win_lo = i > rho ? i - rho : 0;
    while (max_dq.front() < win_lo) max_dq.pop_front();
    while (min_dq.front() < win_lo) min_dq.pop_front();
    env.upper[i] = q[max_dq.front()];
    env.lower[i] = q[min_dq.front()];
  }
  return env;
}

}  // namespace kvmatch
