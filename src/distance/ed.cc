#include "distance/ed.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace kvmatch {

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double SquaredEdEarlyAbandon(std::span<const double> a,
                             std::span<const double> b, double threshold_sq) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
    if (sum > threshold_sq) return std::numeric_limits<double>::infinity();
  }
  return sum;
}

double SquaredNormalizedEdOrdered(std::span<const double> s, double mean,
                                  double std,
                                  std::span<const double> normalized_q,
                                  std::span<const int> order,
                                  double threshold_sq) {
  const double inv = std > 1e-12 ? 1.0 / std : 0.0;
  double sum = 0.0;
  for (int idx : order) {
    const double x = (s[static_cast<size_t>(idx)] - mean) * inv;
    const double d = x - normalized_q[static_cast<size_t>(idx)];
    sum += d * d;
    if (sum > threshold_sq) return std::numeric_limits<double>::infinity();
  }
  return sum;
}

double L1DistanceEarlyAbandon(std::span<const double> a,
                              std::span<const double> b, double threshold) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::fabs(a[i] - b[i]);
    if (sum > threshold) return std::numeric_limits<double>::infinity();
  }
  return sum;
}

std::vector<int> SortedAbsOrder(std::span<const double> normalized_q) {
  std::vector<int> order(normalized_q.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::fabs(normalized_q[static_cast<size_t>(a)]) >
           std::fabs(normalized_q[static_cast<size_t>(b)]);
  });
  return order;
}

}  // namespace kvmatch
