// One-time runtime tier selection for the verify kernels.
#include "distance/simd/kernels.h"

#include <cstdlib>
#include <cstring>

namespace kvmatch::simd {

#if !defined(KVMATCH_HAVE_AVX2_TU)
// Non-x86 build (or a compiler without -mavx2): the AVX2 TU is not
// compiled, so the probe trivially reports "unavailable" and every caller
// lands on the scalar tier.
const Kernels* Avx2KernelsOrNull() { return nullptr; }
#endif

bool ForceScalarValue(const char* value) {
  if (value == nullptr) return false;
  if (value[0] == '\0') return false;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "false") != 0 &&
         std::strcmp(value, "off") != 0 && std::strcmp(value, "no") != 0;
}

const Kernels& Dispatch(bool force_scalar) {
  if (!force_scalar) {
    if (const Kernels* avx2 = Avx2KernelsOrNull(); avx2 != nullptr) {
      return *avx2;
    }
  }
  return ScalarKernels();
}

const Kernels& ActiveKernels() {
  // Dispatched once per process; KVMATCH_FORCE_SCALAR pins the scalar tier
  // for parity CI legs and for ruling SIMD in/out when debugging.
  static const Kernels& active =
      Dispatch(ForceScalarValue(std::getenv("KVMATCH_FORCE_SCALAR")));
  return active;
}

}  // namespace kvmatch::simd
