// AVX2 tier: 8-wide unrolled (two 4-double ymm accumulators) versions of
// the verify kernels.
//
// Built with -mavx2 -ffp-contract=off on x86-64 only (see CMakeLists.txt);
// dispatch.cc provides the null stub when this TU is absent. The lane
// layout, reduction tree and checkpoint schedule mirror kernels_scalar.cc
// exactly — see the determinism contract in kernels.h. In particular:
// no FMA intrinsics (unfused mul+add matches the scalar tier bitwise),
// and _mm256_max_pd(x, +0.0) pairs with the scalar `x > 0 ? x : 0` clamp
// (both map NaN and -0.0 to +0.0).
#include "distance/simd/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace kvmatch::simd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ((a0+a4) + (a2+a6)) + ((a1+a5) + (a3+a7)), with accA = lanes 0..3 and
// accB = lanes 4..7.
inline double Reduce(__m256d acc_a, __m256d acc_b) {
  const __m256d v = _mm256_add_pd(acc_a, acc_b);
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

double SquaredEdAvx2(const double* a, const double* b, size_t n,
                     double threshold_sq) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  double sum = 0.0;
  size_t i = 0;
  const size_t vec_end = n - n % 8;
  while (i < vec_end) {
    const size_t stop = std::min(vec_end, i + kAbandonBlock);
    for (; i < stop; i += 8) {
      const __m256d d0 =
          _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
      const __m256d d1 =
          _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
      acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(d0, d0));
      acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(d1, d1));
    }
    sum = Reduce(acc_a, acc_b);
    if (sum > threshold_sq) return kInf;
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
    if (sum > threshold_sq) return kInf;
  }
  return sum;
}

double SquaredEdZnormOrderedAvx2(const double* s, const int* order,
                                 const double* q_ordered, size_t n,
                                 double mean, double inv_std,
                                 double threshold_sq) {
  const __m256d vmean = _mm256_set1_pd(mean);
  const __m256d vinv = _mm256_set1_pd(inv_std);
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  double sum = 0.0;
  size_t i = 0;
  const size_t vec_end = n - n % 8;
  while (i < vec_end) {
    const size_t stop = std::min(vec_end, i + kOrderedAbandonBlock);
    for (; i < stop; i += 8) {
      const __m128i idx0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(order + i));
      const __m128i idx1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(order + i + 4));
      const __m256d s0 = _mm256_i32gather_pd(s, idx0, 8);
      const __m256d s1 = _mm256_i32gather_pd(s, idx1, 8);
      const __m256d x0 = _mm256_mul_pd(_mm256_sub_pd(s0, vmean), vinv);
      const __m256d x1 = _mm256_mul_pd(_mm256_sub_pd(s1, vmean), vinv);
      const __m256d d0 = _mm256_sub_pd(x0, _mm256_loadu_pd(q_ordered + i));
      const __m256d d1 = _mm256_sub_pd(x1, _mm256_loadu_pd(q_ordered + i + 4));
      acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(d0, d0));
      acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(d1, d1));
    }
    sum = Reduce(acc_a, acc_b);
    if (sum > threshold_sq) return kInf;
  }
  for (; i < n; ++i) {
    const double x = (s[order[i]] - mean) * inv_std;
    const double d = x - q_ordered[i];
    sum += d * d;
    if (sum > threshold_sq) return kInf;
  }
  return sum;
}

double L1Avx2(const double* a, const double* b, size_t n, double threshold) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  double sum = 0.0;
  size_t i = 0;
  const size_t vec_end = n - n % 8;
  while (i < vec_end) {
    const size_t stop = std::min(vec_end, i + kAbandonBlock);
    for (; i < stop; i += 8) {
      const __m256d d0 =
          _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
      const __m256d d1 =
          _mm256_sub_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4));
      acc_a = _mm256_add_pd(acc_a, _mm256_andnot_pd(sign_mask, d0));
      acc_b = _mm256_add_pd(acc_b, _mm256_andnot_pd(sign_mask, d1));
    }
    sum = Reduce(acc_a, acc_b);
    if (sum > threshold) return kInf;
  }
  for (; i < n; ++i) {
    sum += std::fabs(a[i] - b[i]);
    if (sum > threshold) return kInf;
  }
  return sum;
}

double LbKeoghAvx2(const double* s, const double* lower, const double* upper,
                   size_t n, double threshold_sq, double* cb) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  double sum = 0.0;
  size_t i = 0;
  const size_t vec_end = n - n % 8;
  while (i < vec_end) {
    const size_t stop = std::min(vec_end, i + kAbandonBlock);
    for (; i < stop; i += 8) {
      const __m256d s0 = _mm256_loadu_pd(s + i);
      const __m256d s1 = _mm256_loadu_pd(s + i + 4);
      const __m256d over0 =
          _mm256_max_pd(_mm256_sub_pd(s0, _mm256_loadu_pd(upper + i)), zero);
      const __m256d over1 = _mm256_max_pd(
          _mm256_sub_pd(s1, _mm256_loadu_pd(upper + i + 4)), zero);
      const __m256d under0 =
          _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(lower + i), s0), zero);
      const __m256d under1 = _mm256_max_pd(
          _mm256_sub_pd(_mm256_loadu_pd(lower + i + 4), s1), zero);
      const __m256d t0 = _mm256_add_pd(over0, under0);
      const __m256d t1 = _mm256_add_pd(over1, under1);
      const __m256d d0 = _mm256_mul_pd(t0, t0);
      const __m256d d1 = _mm256_mul_pd(t1, t1);
      acc_a = _mm256_add_pd(acc_a, d0);
      acc_b = _mm256_add_pd(acc_b, d1);
      if (cb != nullptr) {
        _mm256_storeu_pd(cb + i, d0);
        _mm256_storeu_pd(cb + i + 4, d1);
      }
    }
    sum = Reduce(acc_a, acc_b);
    if (cb == nullptr && sum > threshold_sq) return kInf;
  }
  for (; i < n; ++i) {
    const double du = s[i] - upper[i];
    const double dl = lower[i] - s[i];
    const double over = du > 0.0 ? du : 0.0;
    const double under = dl > 0.0 ? dl : 0.0;
    const double t = over + under;
    const double d = t * t;
    sum += d;
    if (cb != nullptr) {
      cb[i] = d;
    } else if (sum > threshold_sq) {
      return kInf;
    }
  }
  return sum;
}

void ZNormalizeAvx2(const double* s, size_t n, double mean, double inv_std,
                    double* out) {
  const __m256d vmean = _mm256_set1_pd(mean);
  const __m256d vinv = _mm256_set1_pd(inv_std);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(s + i), vmean), vinv));
  }
  for (; i < n; ++i) out[i] = (s[i] - mean) * inv_std;
}

void RollingMeanStdAvx2(const double* prefix_sum, const double* prefix_sq,
                        size_t count, size_t m, double* means, double* stds) {
  const double dm = static_cast<double>(m);
  const __m256d vdm = _mm256_set1_pd(dm);
  const __m256d zero = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d mean = _mm256_div_pd(
        _mm256_sub_pd(_mm256_loadu_pd(prefix_sum + k + m),
                      _mm256_loadu_pd(prefix_sum + k)),
        vdm);
    const __m256d mean_sq = _mm256_div_pd(
        _mm256_sub_pd(_mm256_loadu_pd(prefix_sq + k + m),
                      _mm256_loadu_pd(prefix_sq + k)),
        vdm);
    const __m256d var =
        _mm256_max_pd(_mm256_sub_pd(mean_sq, _mm256_mul_pd(mean, mean)), zero);
    _mm256_storeu_pd(means + k, mean);
    _mm256_storeu_pd(stds + k, _mm256_sqrt_pd(var));
  }
  for (; k < count; ++k) {
    const double mean = (prefix_sum[k + m] - prefix_sum[k]) / dm;
    const double mean_sq = (prefix_sq[k + m] - prefix_sq[k]) / dm;
    const double var = mean_sq - mean * mean;
    means[k] = mean;
    stds[k] = std::sqrt(var > 0.0 ? var : 0.0);
  }
}

}  // namespace

const Kernels* Avx2KernelsOrNull() {
  static const Kernels* const selected = []() -> const Kernels* {
    if (!__builtin_cpu_supports("avx2")) return nullptr;
    static const Kernels table = {
        Tier::kAvx2,  SquaredEdAvx2, SquaredEdZnormOrderedAvx2,
        L1Avx2,       LbKeoghAvx2,   ZNormalizeAvx2,
        RollingMeanStdAvx2,
    };
    return &table;
  }();
  return selected;
}

}  // namespace kvmatch::simd

#else  // !defined(__AVX2__)

// The build system only compiles this TU with -mavx2; a stray build without
// it must not silently define a scalar "AVX2" tier.
#error "kernels_avx2.cc requires -mavx2 (gate this TU out in CMake instead)"

#endif
