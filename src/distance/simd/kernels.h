// Runtime-dispatched SIMD kernels for the phase-2 verify hot path.
//
// Every distance-like loop the verifier runs per candidate — squared ED
// with early abandoning, the UCR reordered z-normalized ED, L1, the
// LB_Keogh envelope clamp-and-accumulate, z-normalization and batch
// rolling mean/std — is exposed here as a function-pointer table with two
// implementations: a portable scalar tier and an AVX2 tier (compiled only
// on x86-64, selected only when the CPU reports AVX2 at runtime).
//
// Determinism contract — the reason parity tests can demand *bitwise*
// equality between tiers: both tiers implement the SAME canonical
// algorithm, not merely the same math.
//
//   * Accumulation runs in 8 independent lanes (two 4-wide vectors on
//     AVX2, an 8-element array in the scalar tier); element i feeds lane
//     i % 8. No fused multiply-add anywhere (both TUs are built with
//     -ffp-contract=off), so each lane performs the identical unfused
//     mul-then-add sequence.
//   * Lane reduction order is fixed: with lanes a0..a7,
//       sum = ((a0+a4) + (a2+a6)) + ((a1+a5) + (a3+a7)).
//   * Early-abandon checks happen at block checkpoints (every
//     kAbandonBlock elements, after a full lane reduction), never
//     per-element inside the vectorized body. The trailing n % 8 elements
//     run sequentially with per-element checks in both tiers.
//
// Under this contract the two tiers return bit-identical doubles for
// identical inputs, so accept/reject decisions (d² ≤ ε² etc.) can never
// diverge across dispatch tiers.
#ifndef KVMATCH_DISTANCE_SIMD_KERNELS_H_
#define KVMATCH_DISTANCE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace kvmatch::simd {

/// Early-abandon checkpoint interval (elements) for the ED/L1/Keogh
/// kernels. Must be a multiple of the 8-lane unroll.
inline constexpr size_t kAbandonBlock = 64;

/// Checkpoint interval for the gather-heavy reordered-ED kernel: reordered
/// visitation abandons much earlier on average, so check more often.
inline constexpr size_t kOrderedAbandonBlock = 32;

enum class Tier {
  kScalar,
  kAvx2,
};

const char* TierName(Tier tier);

/// The kernel table. All pointers are non-null in any table returned by
/// this header's accessors.
struct Kernels {
  Tier tier = Tier::kScalar;

  /// Squared ED between a[0..n) and b[0..n), early-abandoning (returns
  /// +inf) once the running sum exceeds `threshold_sq` at a checkpoint.
  double (*squared_ed)(const double* a, const double* b, size_t n,
                       double threshold_sq);

  /// UCR reordered early-abandon ED. Visits candidate points through
  /// `order` (s[order[i]]), normalizes on the fly with (mean, inv_std),
  /// and compares against `q_ordered` — the normalized query already
  /// permuted by the same order, so only the candidate side gathers.
  double (*squared_ed_znorm_ordered)(const double* s, const int* order,
                                     const double* q_ordered, size_t n,
                                     double mean, double inv_std,
                                     double threshold_sq);

  /// L1 distance with early abandoning at `threshold` (unsquared).
  double (*l1)(const double* a, const double* b, size_t n, double threshold);

  /// LB_Keogh clamp-and-accumulate of s against [lower, upper]. When `cb`
  /// is non-null it receives the per-position squared contributions and no
  /// early abandoning happens (the DTW tail-tightening path needs every
  /// entry); when null, abandons (+inf) at checkpoints past threshold_sq.
  double (*lb_keogh)(const double* s, const double* lower, const double* upper,
                     size_t n, double threshold_sq, double* cb);

  /// out[i] = (s[i] - mean) * inv_std.
  void (*znormalize)(const double* s, size_t n, double mean, double inv_std,
                     double* out);

  /// Batch rolling mean/std for `count` consecutive windows of length `m`:
  /// window k covers prefix entries [k, k+m], i.e. the caller passes the
  /// prefix-sum/prefix-square arrays already offset to the first window.
  /// Uses the same divide-then-sqrt(max(0, E[x²]-E[x]²)) formula as
  /// PrefixStats::WindowMeanStd, elementwise, so results match it bitwise.
  void (*rolling_mean_std)(const double* prefix_sum, const double* prefix_sq,
                           size_t count, size_t m, double* means,
                           double* stds);
};

/// The portable reference tier (always available).
const Kernels& ScalarKernels();

/// The AVX2 tier, or null when the binary lacks the TU (non-x86 build) or
/// the CPU lacks AVX2. Defined in kernels_avx2.cc when compiled in,
/// otherwise by a stub in dispatch.cc.
const Kernels* Avx2KernelsOrNull();

/// True for any set, non-falsy value ("", "0", "false", "off", "no" are
/// falsy). Exposed so tests can exercise the env parsing directly.
bool ForceScalarValue(const char* value);

/// Pure selection: the best available tier, or scalar when forced.
const Kernels& Dispatch(bool force_scalar);

/// Process-wide active table: dispatched once, honoring the
/// KVMATCH_FORCE_SCALAR environment variable.
const Kernels& ActiveKernels();
inline Tier ActiveTier() { return ActiveKernels().tier; }

/// 64-byte-aligned growable double buffer for cache-blocked candidate
/// gathering (cacheline- and AVX-512-friendly; AVX2 loads are unaligned-
/// tolerant but aligned bases keep them on one line).
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { std::free(data_); }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        capacity_(std::exchange(o.capacity_, 0)) {}

  /// Grows (never shrinks) to hold at least n doubles; contents are not
  /// preserved. Returns the 64-byte-aligned base.
  double* Resize(size_t n) {
    if (n > capacity_) {
      std::free(data_);
      // aligned_alloc requires size to be a multiple of the alignment.
      size_t bytes = n * sizeof(double);
      bytes = (bytes + 63) & ~size_t{63};
      data_ = static_cast<double*>(std::aligned_alloc(64, bytes));
      if (data_ == nullptr) throw std::bad_alloc();
      capacity_ = n;
    }
    return data_;
  }

  double* data() { return data_; }

 private:
  double* data_ = nullptr;
  size_t capacity_ = 0;
};

}  // namespace kvmatch::simd

#endif  // KVMATCH_DISTANCE_SIMD_KERNELS_H_
