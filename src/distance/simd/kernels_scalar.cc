// Scalar reference tier.
//
// Implements the canonical 8-lane algorithm described in kernels.h so the
// AVX2 tier can match it bitwise. The explicit lane arrays and the fixed
// reduction tree are load-bearing: do not "simplify" them into a single
// running sum, and keep this TU compiled with -ffp-contract=off and
// auto-vectorization off (see CMakeLists.txt) so it stays an honest scalar
// baseline with unfused arithmetic.
#include "distance/simd/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kvmatch::simd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ((a0+a4) + (a2+a6)) + ((a1+a5) + (a3+a7)) — mirrors the AVX2 sequence
//: accA+accB lane-wise, then 128-bit half add, then final pair add.
inline double Reduce8(const double* acc) {
  const double v0 = acc[0] + acc[4];
  const double v1 = acc[1] + acc[5];
  const double v2 = acc[2] + acc[6];
  const double v3 = acc[3] + acc[7];
  return (v0 + v2) + (v1 + v3);
}

double SquaredEdScalar(const double* a, const double* b, size_t n,
                       double threshold_sq) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  double sum = 0.0;
  size_t i = 0;
  const size_t vec_end = n - n % 8;
  while (i < vec_end) {
    const size_t stop = std::min(vec_end, i + kAbandonBlock);
    for (; i < stop; i += 8) {
      for (size_t j = 0; j < 8; ++j) {
        const double d = a[i + j] - b[i + j];
        acc[j] += d * d;
      }
    }
    sum = Reduce8(acc);
    if (sum > threshold_sq) return kInf;
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
    if (sum > threshold_sq) return kInf;
  }
  return sum;
}

double SquaredEdZnormOrderedScalar(const double* s, const int* order,
                                   const double* q_ordered, size_t n,
                                   double mean, double inv_std,
                                   double threshold_sq) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  double sum = 0.0;
  size_t i = 0;
  const size_t vec_end = n - n % 8;
  while (i < vec_end) {
    const size_t stop = std::min(vec_end, i + kOrderedAbandonBlock);
    for (; i < stop; i += 8) {
      for (size_t j = 0; j < 8; ++j) {
        const double x = (s[order[i + j]] - mean) * inv_std;
        const double d = x - q_ordered[i + j];
        acc[j] += d * d;
      }
    }
    sum = Reduce8(acc);
    if (sum > threshold_sq) return kInf;
  }
  for (; i < n; ++i) {
    const double x = (s[order[i]] - mean) * inv_std;
    const double d = x - q_ordered[i];
    sum += d * d;
    if (sum > threshold_sq) return kInf;
  }
  return sum;
}

double L1Scalar(const double* a, const double* b, size_t n, double threshold) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  double sum = 0.0;
  size_t i = 0;
  const size_t vec_end = n - n % 8;
  while (i < vec_end) {
    const size_t stop = std::min(vec_end, i + kAbandonBlock);
    for (; i < stop; i += 8) {
      for (size_t j = 0; j < 8; ++j) {
        acc[j] += std::fabs(a[i + j] - b[i + j]);
      }
    }
    sum = Reduce8(acc);
    if (sum > threshold) return kInf;
  }
  for (; i < n; ++i) {
    sum += std::fabs(a[i] - b[i]);
    if (sum > threshold) return kInf;
  }
  return sum;
}

// Clamp semantics chosen to be expressible as maxpd(x, +0.0): NaN and -0.0
// inputs both clamp to +0.0 in either tier.
double LbKeoghScalar(const double* s, const double* lower, const double* upper,
                     size_t n, double threshold_sq, double* cb) {
  double acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  double sum = 0.0;
  size_t i = 0;
  const size_t vec_end = n - n % 8;
  while (i < vec_end) {
    const size_t stop = std::min(vec_end, i + kAbandonBlock);
    for (; i < stop; i += 8) {
      for (size_t j = 0; j < 8; ++j) {
        const double du = s[i + j] - upper[i + j];
        const double dl = lower[i + j] - s[i + j];
        const double over = du > 0.0 ? du : 0.0;
        const double under = dl > 0.0 ? dl : 0.0;
        const double t = over + under;
        const double d = t * t;
        acc[j] += d;
        if (cb != nullptr) cb[i + j] = d;
      }
    }
    sum = Reduce8(acc);
    if (cb == nullptr && sum > threshold_sq) return kInf;
  }
  for (; i < n; ++i) {
    const double du = s[i] - upper[i];
    const double dl = lower[i] - s[i];
    const double over = du > 0.0 ? du : 0.0;
    const double under = dl > 0.0 ? dl : 0.0;
    const double t = over + under;
    const double d = t * t;
    sum += d;
    if (cb != nullptr) {
      cb[i] = d;
    } else if (sum > threshold_sq) {
      return kInf;
    }
  }
  return sum;
}

void ZNormalizeScalar(const double* s, size_t n, double mean, double inv_std,
                      double* out) {
  for (size_t i = 0; i < n; ++i) out[i] = (s[i] - mean) * inv_std;
}

void RollingMeanStdScalar(const double* prefix_sum, const double* prefix_sq,
                          size_t count, size_t m, double* means,
                          double* stds) {
  const double dm = static_cast<double>(m);
  for (size_t k = 0; k < count; ++k) {
    const double mean = (prefix_sum[k + m] - prefix_sum[k]) / dm;
    const double mean_sq = (prefix_sq[k + m] - prefix_sq[k]) / dm;
    const double var = mean_sq - mean * mean;
    means[k] = mean;
    stds[k] = std::sqrt(var > 0.0 ? var : 0.0);
  }
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const Kernels& ScalarKernels() {
  static const Kernels table = {
      Tier::kScalar,           SquaredEdScalar, SquaredEdZnormOrderedScalar,
      L1Scalar,                LbKeoghScalar,   ZNormalizeScalar,
      RollingMeanStdScalar,
  };
  return table;
}

}  // namespace kvmatch::simd
