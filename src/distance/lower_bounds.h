// DTW lower bounds (LB_Kim, LB_Keogh, LB_PAA) used by the verifier and the
// UCR Suite / FAST baselines.
//
// All bounds return *squared* values so callers compare against ε² without
// square roots in the hot path. Every bound B satisfies B ≤ DTW²_ρ.
#ifndef KVMATCH_DISTANCE_LOWER_BOUNDS_H_
#define KVMATCH_DISTANCE_LOWER_BOUNDS_H_

#include <limits>
#include <span>
#include <vector>

#include "distance/envelope.h"

namespace kvmatch {

/// Simplified LB_Kim (UCR Suite's LB_KimFL): distances of the first and
/// last points (plus second/penultimate refinements).
double LbKimSquared(std::span<const double> s, std::span<const double> q,
                    double threshold_sq
                    = std::numeric_limits<double>::infinity());

/// LB_Keogh of candidate `s` against the query envelope, with early
/// abandoning at `threshold_sq`. If `cb` is non-null it receives the
/// per-position contributions (cb[i]), which DtwDistance uses for tighter
/// abandoning after suffix-accumulation.
double LbKeoghSquared(std::span<const double> s, const Envelope& env,
                      double threshold_sq
                      = std::numeric_limits<double>::infinity(),
                      std::vector<double>* cb = nullptr);

/// LB_Keogh of a *normalized-on-the-fly* candidate: s is raw, and each point
/// is normalized with (mean, std) before comparison against a normalized
/// query's envelope.
double LbKeoghNormalizedSquared(std::span<const double> s, double mean,
                                double std, const Envelope& env,
                                double threshold_sq
                                = std::numeric_limits<double>::infinity(),
                                std::vector<double>* cb = nullptr);

/// Converts per-position contributions cb into the suffix-cumulative array
/// used by DtwDistance: out[i] = sum_{k >= i} cb[k], out[m] = 0.
std::vector<double> SuffixCumulate(const std::vector<double>& cb);

/// LB_PAA (paper Eq. 3): piecewise-aggregate bound over p disjoint windows
/// of width w, using candidate window means vs envelope window means.
/// `s_means[i]`, `l_means[i]`, `u_means[i]` are the means of the i-th
/// disjoint window of S, L and U. Returns the squared bound
/// Σ w·contribution ≤ DTW²_ρ(S, Q).
double LbPaaSquared(std::span<const double> s_means,
                    std::span<const double> l_means,
                    std::span<const double> u_means, size_t w);

}  // namespace kvmatch

#endif  // KVMATCH_DISTANCE_LOWER_BOUNDS_H_
