// Query envelopes for banded DTW (paper §III-C).
//
// L_i = min_{|r|<=rho} q_{i+r},  U_i = max_{|r|<=rho} q_{i+r}.
// Computed in O(m) with Lemire's streaming min/max (monotonic deques).
#ifndef KVMATCH_DISTANCE_ENVELOPE_H_
#define KVMATCH_DISTANCE_ENVELOPE_H_

#include <span>
#include <vector>

namespace kvmatch {

struct Envelope {
  std::vector<double> lower;
  std::vector<double> upper;
};

/// Builds the Sakoe-Chiba envelope of `q` with band width `rho`.
Envelope BuildEnvelope(std::span<const double> q, size_t rho);

}  // namespace kvmatch

#endif  // KVMATCH_DISTANCE_ENVELOPE_H_
