#include "common/event_log.h"

#include <chrono>
#include <cstdio>

namespace kvmatch {

// Single definition of the escaper shared by the trace exporters
// (service/trace.h declares it too): the event log sits below the service
// layer, so the definition lives here.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

uint64_t WallClockMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string RenderLine(const Event& event, uint64_t seq, uint64_t ts_ms) {
  std::string out;
  out.reserve(128);
  out += "{\"seq\":" + std::to_string(seq);
  out += ",\"ts_ms\":" + std::to_string(ts_ms);
  out += ",\"event\":\"" + JsonEscape(event.type) + "\"";
  if (!event.series.empty()) {
    out += ",\"series\":\"" + JsonEscape(event.series) + "\"";
  }
  for (const auto& [name, value] : event.num) {
    out += ",\"" + name + "\":" + std::to_string(value);
  }
  for (const auto& [name, value] : event.fnum) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += ",\"" + name + "\":" + buf;
  }
  for (const auto& [name, value] : event.str) {
    out += ",\"" + name + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

EventLog::EventLog(size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

void EventLog::SetSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void EventLog::Emit(const Event& event) {
  const uint64_t ts_ms = WallClockMs();
  std::lock_guard<std::mutex> lock(mu_);
  std::string line = RenderLine(event, next_seq_++, ts_ms);
  ++total_;
  ++counts_[event.type];
  if (sink_) sink_(line);
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(std::move(line));
  } else {
    ring_[ring_next_] = std::move(line);
    ring_next_ = (ring_next_ + 1) % ring_capacity_;
  }
}

std::vector<std::string> EventLog::RingLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    out = ring_;  // never wrapped: insertion order is oldest-first
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % ring_capacity_]);
    }
  }
  return out;
}

std::string EventLog::DumpJsonLines() const {
  std::string out;
  for (const auto& line : RingLines()) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, uint64_t>> EventLog::CountsByType() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::pair<std::string, uint64_t>>(counts_.begin(),
                                                       counts_.end());
}

uint64_t EventLog::TotalEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void EventLog::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = 0;
  counts_.clear();
}

}  // namespace kvmatch
