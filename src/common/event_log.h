// EventLog: a structured journal for the storage/ingest side of the
// engine — the discrete, rare-but-important happenings that counters and
// histograms flatten away: epoch commits, crash-recovery roll-backs and
// roll-forwards, orphan sweeps, LRU evictions, MiniKv compactions, slow
// commits.
//
// Every event renders as one self-contained JSON line (JSONL), so the log
// is greppable and machine-parseable without a reader library. Two sinks:
//
//   * an optional streaming sink (SetSink) that receives each line as it
//     is emitted — the CLI points it at a file for `serve --event-log`;
//   * a fixed-size in-memory ring (the "flight recorder") that always
//     keeps the most recent `ring_capacity` lines, dumpable after the
//     fact — on Server::Stop, from tests, or when diagnosing an incident
//     whose beginning predates anyone watching.
//
// Counters by event type feed the Prometheus exposition
// (kvmatch_events_total{type="..."}); ResetCounters() rebases them for
// `stats --watch` deltas without erasing the flight recorder.
//
// Thread-safe: events come from ingest commits, purge-on-release threads
// and compactions concurrently. Emission takes a plain mutex — events are
// orders of magnitude rarer than the lock-free hot-path counters, so
// contention is irrelevant.
#ifndef KVMATCH_COMMON_EVENT_LOG_H_
#define KVMATCH_COMMON_EVENT_LOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace kvmatch {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
/// Defined here; also declared in service/trace.h for the trace exporters.
std::string JsonEscape(const std::string& s);

/// One discrete storage/ingest happening. `type` keys the counters and
/// the rendered "event" field; `series` (optional) names the affected
/// series; numeric and string fields are appended verbatim as JSON
/// members, in insertion order. Field names must be JSON-identifier-safe
/// ([A-Za-z0-9_]); values are escaped.
struct Event {
  std::string type;
  std::string series;
  std::vector<std::pair<std::string, uint64_t>> num;
  std::vector<std::pair<std::string, double>> fnum;
  std::vector<std::pair<std::string, std::string>> str;

  Event& Num(std::string name, uint64_t value) {
    num.emplace_back(std::move(name), value);
    return *this;
  }
  Event& FNum(std::string name, double value) {
    fnum.emplace_back(std::move(name), value);
    return *this;
  }
  Event& Str(std::string name, std::string value) {
    str.emplace_back(std::move(name), std::move(value));
    return *this;
  }
};

// Canonical event types. Everything downstream (tests, the README schema
// table, dashboards) keys off these strings.
inline constexpr const char kEventEpochCommit[] = "epoch_commit";
inline constexpr const char kEventSlowCommit[] = "slow_commit";
inline constexpr const char kEventRecoveryRollback[] = "recovery_rollback";
inline constexpr const char kEventRecoveryRollforward[] =
    "recovery_rollforward";
inline constexpr const char kEventOrphanSweep[] = "orphan_sweep";
inline constexpr const char kEventEviction[] = "eviction";
inline constexpr const char kEventCompaction[] = "compaction";
inline constexpr const char kEventSeriesDrop[] = "series_drop";

class EventLog {
 public:
  static constexpr size_t kDefaultRingCapacity = 1024;

  explicit EventLog(size_t ring_capacity = kDefaultRingCapacity);

  /// Streaming sink, called under the log's mutex with each rendered line
  /// (no trailing newline) as it is emitted. Must not call back into this
  /// EventLog. Pass nullptr to detach.
  void SetSink(std::function<void(const std::string&)> sink);

  /// Renders `event` to a JSON line, appends it to the ring (evicting the
  /// oldest line when full), bumps the per-type counter and forwards to
  /// the sink.
  void Emit(const Event& event);

  /// The flight recorder's current contents, oldest first.
  std::vector<std::string> RingLines() const;

  /// RingLines() joined with '\n' (trailing newline included; empty
  /// string when no events were recorded).
  std::string DumpJsonLines() const;

  /// Per-type emission counts since construction or the last
  /// ResetCounters(), sorted by type.
  std::vector<std::pair<std::string, uint64_t>> CountsByType() const;

  /// Total events since construction or the last ResetCounters().
  uint64_t TotalEvents() const;

  /// Rebases the counters (stats --watch deltas). The flight-recorder
  /// ring and its sequence numbers are preserved: a stats rebase must not
  /// erase the incident history.
  void ResetCounters();

  size_t ring_capacity() const { return ring_capacity_; }

 private:
  const size_t ring_capacity_;

  mutable std::mutex mu_;
  std::function<void(const std::string&)> sink_;
  std::vector<std::string> ring_;  // wraps at ring_capacity_
  size_t ring_next_ = 0;           // insertion slot once the ring is full
  uint64_t next_seq_ = 0;          // monotonic, survives ResetCounters
  uint64_t total_ = 0;
  std::map<std::string, uint64_t> counts_;
};

}  // namespace kvmatch

#endif  // KVMATCH_COMMON_EVENT_LOG_H_
