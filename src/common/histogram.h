// Fixed-size log-bucketed latency histogram with a lock-free record path.
//
// Record() classifies a millisecond value into one of kNumBuckets
// geometric buckets (8 per octave: ~9% relative width) and bumps a
// relaxed atomic counter — no mutex, no allocation, so it can sit
// directly on the QueryService's per-request hot path. Counters are
// striped across several cache-line-separated banks to keep concurrent
// recorders from bouncing the same line; a snapshot merges the stripes.
//
// Percentiles (p50/p95/p99) are derived from the bucket counts by rank
// walk with linear interpolation inside the landing bucket, so the
// estimate is always within one bucket width (~9%) of the exact
// sorted-sample percentile. The snapshot also carries everything a
// Prometheus histogram exposition needs (`_bucket` cumulative counts per
// `le` bound, `_sum`, `_count`).
#ifndef KVMATCH_COMMON_HISTOGRAM_H_
#define KVMATCH_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace kvmatch {

class LatencyHistogram {
 public:
  /// Bucket 0 is (-inf, kFirstUpperMs]; bucket i's upper bound grows by
  /// 2^(1/kBucketsPerOctave) per step; the last bucket is the +Inf
  /// catch-all. 200 buckets at 8/octave span 0.01 ms .. ~5 min.
  static constexpr size_t kNumBuckets = 200;
  static constexpr size_t kBucketsPerOctave = 8;
  static constexpr double kFirstUpperMs = 0.01;

  /// Upper bound of bucket `i` in ms (+infinity for the last bucket).
  static double BucketUpperBoundMs(size_t i);
  /// The bucket a value lands in (NaN and negatives land in bucket 0).
  static size_t BucketIndex(double ms);

  /// Merged, point-in-time view of the histogram.
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> counts{};  // per bucket, NOT cumulative
    uint64_t total = 0;
    double sum_ms = 0.0;
    double min_ms = 0.0;  // exact (tracked separately from the buckets)
    double max_ms = 0.0;  // exact

    /// Rank-walk percentile estimate, q in [0, 1]; 0 when empty. Always
    /// inside the bucket holding the exact percentile, clamped to
    /// [min_ms, max_ms].
    double Percentile(double q) const;
    double MeanMs() const {
      return total == 0 ? 0.0 : sum_ms / static_cast<double>(total);
    }
  };

  LatencyHistogram();

  /// Lock-free; safe from any number of threads concurrently.
  void Record(double ms) noexcept;

  Snapshot TakeSnapshot() const;

  /// Zeroes every counter. Not atomic with respect to concurrent
  /// Record() calls — a racing sample may survive or vanish, which is
  /// acceptable for a stats rebase.
  void Reset();

 private:
  static constexpr size_t kStripes = 8;

  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kNumBuckets> counts{};
    std::atomic<uint64_t> sum_ns{0};  // integer ns: atomic add, no CAS loop
  };

  static size_t StripeIndex() noexcept;

  std::array<Stripe, kStripes> stripes_;
  // Exact extrema via CAS on the doubles' bit patterns (bucket bounds
  // alone would quantize min/max by ~9%).
  std::atomic<uint64_t> min_bits_;
  std::atomic<uint64_t> max_bits_;
};

}  // namespace kvmatch

#endif  // KVMATCH_COMMON_HISTOGRAM_H_
