// Binary coding utilities: fixed-width little-endian integers, varints and
// an order-preserving encoding of doubles for use as sorted KV-store keys.
#ifndef KVMATCH_COMMON_CODING_H_
#define KVMATCH_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace kvmatch {

// ---- Fixed-width little-endian ----

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

// ---- Varints (LEB128) ----

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Decodes a varint32 from [p, limit). Returns pointer past the varint, or
/// nullptr on malformed/truncated input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Convenience: consume a varint from the front of a string_view.
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);

/// Length-prefixed string slices.
void PutLengthPrefixed(std::string* dst, std::string_view value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

// ---- Doubles ----

void PutDouble(std::string* dst, double value);
double DecodeDouble(const char* ptr);

/// Encodes a double into 8 bytes whose lexicographic (big-endian, unsigned)
/// order equals the numeric order of the doubles, including negatives.
/// Used to key KV-index rows by mean value in any sorted KV store.
std::string EncodeOrderedDouble(double value);

/// Inverse of EncodeOrderedDouble. `key` must be exactly 8 bytes.
double DecodeOrderedDouble(std::string_view key);

}  // namespace kvmatch

#endif  // KVMATCH_COMMON_CODING_H_
