// Status / Result types used across the library.
//
// Follows the RocksDB/Arrow convention: operations that can fail return a
// Status (or a Result<T> carrying a value), never throw across module
// boundaries. Statuses are cheap to copy for the OK case.
#ifndef KVMATCH_COMMON_STATUS_H_
#define KVMATCH_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace kvmatch {

/// Error codes for library operations.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kIOError,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
};

/// Lightweight error-carrying return type.
///
/// The OK status stores no message and is trivially cheap. Error statuses
/// carry a human-readable message describing the failure context.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg = "") {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// A value-or-error return type, analogous to arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}           // NOLINT
  Result(Status status) : storage_(std::move(status)) {     // NOLINT
    assert(!std::get<Status>(storage_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

/// Propagates a non-OK status to the caller.
#define KVMATCH_RETURN_NOT_OK(expr)           \
  do {                                        \
    ::kvmatch::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace kvmatch

#endif  // KVMATCH_COMMON_STATUS_H_
