// One-shot cooperative cancellation flag.
//
// Lives in common/ (rather than match/) so leaf layers — notably the
// distance kernels, which poll it between DTW rows — can depend on it
// without pulling in the executor headers.
#ifndef KVMATCH_COMMON_CANCEL_H_
#define KVMATCH_COMMON_CANCEL_H_

#include <atomic>

namespace kvmatch {

/// One-shot cancellation flag shared between a submitter (or the service's
/// Cancel entry point) and the worker executing the query. Cancel() may be
/// called from any thread, any number of times, before/during/after the
/// query runs. Polling is a relaxed atomic load — cheap enough to sit in
/// per-candidate (and per-DTW-row) hot loops.
class CancelToken {
 public:
  void Cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace kvmatch

#endif  // KVMATCH_COMMON_CANCEL_H_
