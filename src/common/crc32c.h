// CRC-32C (Castagnoli) checksum, used to protect SSTable blocks on disk.
#ifndef KVMATCH_COMMON_CRC32C_H_
#define KVMATCH_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace kvmatch {
namespace crc32c {

/// Extends `init_crc` with `data`. Pass 0 for a fresh checksum.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

/// Masks a CRC so that storing a CRC of data that itself contains CRCs does
/// not degenerate (same scheme as LevelDB/RocksDB).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace kvmatch

#endif  // KVMATCH_COMMON_CRC32C_H_
