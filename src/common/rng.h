// Deterministic pseudo-random number generation for workload synthesis.
//
// All generators in the library take an explicit Rng so that datasets,
// queries and tests are reproducible from a seed.
#ifndef KVMATCH_COMMON_RNG_H_
#define KVMATCH_COMMON_RNG_H_

#include <cstdint>

namespace kvmatch {

/// xoshiro256** PRNG with splitmix64 seeding. Deterministic across
/// platforms, unlike std::mt19937 + std::normal_distribution.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

 private:
  uint64_t s_[4];
};

}  // namespace kvmatch

#endif  // KVMATCH_COMMON_RNG_H_
