#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace kvmatch {

double LatencyHistogram::BucketUpperBoundMs(size_t i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kFirstUpperMs *
         std::pow(2.0, static_cast<double>(i) /
                           static_cast<double>(kBucketsPerOctave));
}

size_t LatencyHistogram::BucketIndex(double ms) {
  if (!(ms > kFirstUpperMs)) return 0;  // also catches NaN and negatives
  // Smallest i with upper(i) >= ms, i.e. ceil(log2(ms / first) * per_octave).
  const double octaves = std::log2(ms / kFirstUpperMs);
  double idx = std::ceil(octaves * static_cast<double>(kBucketsPerOctave));
  // log2/ceil rounding can land one bucket off in either direction when
  // ms sits exactly on a boundary; nudge so that bucket i holds exactly
  // the values in (upper(i-1), upper(i)] — the Prometheus `le` contract.
  size_t i = idx < 0 ? 0 : static_cast<size_t>(idx);
  if (i < kNumBuckets - 1 && BucketUpperBoundMs(i) < ms) ++i;
  if (i > 0 && BucketUpperBoundMs(i - 1) >= ms) --i;
  return std::min(i, kNumBuckets - 1);
}

LatencyHistogram::LatencyHistogram()
    : min_bits_(std::bit_cast<uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<uint64_t>(
          -std::numeric_limits<double>::infinity())) {}

size_t LatencyHistogram::StripeIndex() noexcept {
  static std::atomic<size_t> next{0};
  thread_local size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

void LatencyHistogram::Record(double ms) noexcept {
  if (std::isnan(ms)) return;
  if (ms < 0.0) ms = 0.0;
  Stripe& s = stripes_[StripeIndex()];
  s.counts[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
  s.sum_ns.fetch_add(static_cast<uint64_t>(ms * 1e6),
                     std::memory_order_relaxed);

  uint64_t cur = min_bits_.load(std::memory_order_relaxed);
  while (ms < std::bit_cast<double>(cur) &&
         !min_bits_.compare_exchange_weak(cur, std::bit_cast<uint64_t>(ms),
                                          std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (ms > std::bit_cast<double>(cur) &&
         !max_bits_.compare_exchange_weak(cur, std::bit_cast<uint64_t>(ms),
                                          std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  uint64_t sum_ns = 0;
  for (const Stripe& s : stripes_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      uint64_t c = s.counts[i].load(std::memory_order_relaxed);
      snap.counts[i] += c;
      snap.total += c;
    }
    sum_ns += s.sum_ns.load(std::memory_order_relaxed);
  }
  snap.sum_ms = static_cast<double>(sum_ns) / 1e6;
  if (snap.total > 0) {
    snap.min_ms =
        std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
    snap.max_ms =
        std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
    if (!std::isfinite(snap.min_ms)) snap.min_ms = 0.0;
    if (!std::isfinite(snap.max_ms)) snap.max_ms = 0.0;
  }
  return snap;
}

double LatencyHistogram::Snapshot::Percentile(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the percentile sample among `total` sorted values (1-based).
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t prev = cum;
    cum += counts[i];
    if (static_cast<double>(cum) + 1e-9 < rank) continue;
    // Interpolate linearly between the bucket's bounds by the rank's
    // position among this bucket's samples.
    double lo = i == 0 ? 0.0 : BucketUpperBoundMs(i - 1);
    double hi = BucketUpperBoundMs(i);
    if (!std::isfinite(hi)) hi = max_ms;  // +Inf bucket: cap at observed max
    if (hi < lo) hi = lo;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    return std::clamp(v, min_ms, max_ms);
  }
  return max_ms;
}

void LatencyHistogram::Reset() {
  for (Stripe& s : stripes_) {
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
    s.sum_ns.store(0, std::memory_order_relaxed);
  }
  min_bits_.store(
      std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
  max_bits_.store(
      std::bit_cast<uint64_t>(-std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
}

}  // namespace kvmatch
