#include "common/coding.h"

#include <bit>

namespace kvmatch {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* ptr) {
  uint32_t v;
  std::memcpy(&v, ptr, 4);
  return v;
}

uint64_t DecodeFixed64(const char* ptr) {
  uint64_t v;
  std::memcpy(&v, ptr, 8);
  return v;
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p++);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint32Ptr(p, limit, value);
  if (q == nullptr) return false;
  input->remove_prefix(static_cast<size_t>(q - p));
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint64Ptr(p, limit, value);
  if (q == nullptr) return false;
  input->remove_prefix(static_cast<size_t>(q - p));
  return true;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

void PutDouble(std::string* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, 8);
  PutFixed64(dst, bits);
}

double DecodeDouble(const char* ptr) {
  uint64_t bits = DecodeFixed64(ptr);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string EncodeOrderedDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, 8);
  // IEEE-754 trick: positive numbers get the sign bit set (to sort above
  // negatives); negative numbers are bit-flipped so larger magnitude sorts
  // lower.
  if (bits & (1ull << 63)) {
    bits = ~bits;
  } else {
    bits |= (1ull << 63);
  }
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[7 - i] = static_cast<char>((bits >> (i * 8)) & 0xff);
  }
  return out;
}

double DecodeOrderedDouble(std::string_view key) {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits = (bits << 8) | static_cast<unsigned char>(key[i]);
  }
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

}  // namespace kvmatch
