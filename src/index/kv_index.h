// KV-index (paper §IV): ordered rows keyed by mean-value range.
//
// Row i is ⟨K_i = [low_i, up_i), V_i = IntervalList⟩: the set of length-w
// sliding windows of X whose mean falls in K_i, organized as sorted window
// intervals. A meta table ⟨K_i, n_I(V_i), n_P(V_i)⟩ is kept in memory so
// probes can locate the row range for a mean-value query with binary search
// and issue exactly one sequential KvStore scan.
#ifndef KVMATCH_INDEX_KV_INDEX_H_
#define KVMATCH_INDEX_KV_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/interval.h"
#include "storage/kvstore.h"

namespace kvmatch {

/// One key-value row of the index.
struct IndexRow {
  double low = 0.0;   // inclusive
  double up = 0.0;    // exclusive
  IntervalList value;
};

/// Meta-table entry: everything needed to plan a probe without touching
/// row data (paper §IV-A: ⟨K_i, pos_i, n_I, n_P⟩; byte positions are
/// delegated to the KvStore, so we keep the key range and counts).
struct RowMeta {
  double low = 0.0;
  double up = 0.0;
  uint64_t num_intervals = 0;
  uint64_t num_positions = 0;
};

/// Probe statistics, reported per query for the paper's "#index accesses"
/// metric (Tables III/IV).
struct ProbeStats {
  uint64_t index_accesses = 0;   // scan operations issued
  uint64_t rows_fetched = 0;     // rows decoded
  uint64_t intervals_fetched = 0;
  uint64_t bytes_fetched = 0;
  uint64_t cache_hits = 0;       // rows served from the row cache

  void Add(const ProbeStats& o) {
    index_accesses += o.index_accesses;
    rows_fetched += o.rows_fetched;
    intervals_fetched += o.intervals_fetched;
    bytes_fetched += o.bytes_fetched;
    cache_hits += o.cache_hits;
  }
};

/// A complete KV-index over one window length w.
///
/// The index may live fully in memory (after Build) or be backed by a
/// KvStore (after Persist + Open). Both forms serve ProbeRange.
class KvIndex {
 public:
  KvIndex() = default;
  KvIndex(size_t window, size_t series_length, std::vector<IndexRow> rows);

  size_t window() const { return window_; }
  size_t series_length() const { return series_length_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<IndexRow>& rows() const { return rows_; }
  const std::vector<RowMeta>& meta() const { return meta_; }

  /// Fetches every row whose key range intersects [lr, ur] and unions
  /// their interval lists into IS (one logical sequential scan). Boundary
  /// rows may contribute windows outside [lr, ur]; per §V-B this only adds
  /// negative candidates, never loses positives.
  ///
  /// In-memory form: served from rows_. Store-backed form: one KvStore
  /// Scan. `stats` may be null.
  Result<IntervalList> ProbeRange(double lr, double ur,
                                  ProbeStats* stats = nullptr) const;

  /// Estimates n_I(IS) for [lr, ur] from the meta table alone (used by the
  /// KV-matchDP objective, Eq. 8/9). Never touches row data.
  uint64_t EstimateIntervals(double lr, double ur) const;
  uint64_t EstimatePositions(double lr, double ur) const;

  /// Writes all rows + meta into `store` under `ns` ("namespace") so many
  /// indexes can share a store. Keys: ns + "r" + ordered-double(low);
  /// meta under ns + "m".
  Status Persist(KvStore* store, const std::string& ns = "") const;

  /// Stages the same rows + meta into `batch` instead of writing them
  /// directly — the ingest pipeline's way to commit an index atomically
  /// alongside the data chunks it covers.
  void Persist(WriteBatch* batch, const std::string& ns = "") const;

  /// Opens a store-backed index persisted by Persist. Row data stays in
  /// the store; only meta is loaded.
  static Result<KvIndex> Open(const KvStore* store, const std::string& ns = "");

  /// Approximate in-memory/encoded size in bytes (rows + meta).
  uint64_t EncodedSizeBytes() const;

  /// Enables the query-time row cache for store-backed indexes (paper
  /// §VI-C, first optimization): decoded rows are kept and reused across
  /// probes, so overlapping RLists only fetch the missing tail. Caches at
  /// most `max_rows` rows (FIFO eviction); 0 disables. No effect on
  /// in-memory indexes.
  ///
  /// The cache itself is internally synchronized, so once enabled,
  /// concurrent ProbeRange calls from many threads are safe (provided the
  /// backing KvStore supports concurrent reads). Enabling/disabling is a
  /// setup-time operation and must not race with in-flight probes.
  void EnableRowCache(size_t max_rows) const;

  /// Approximate resident bytes currently held by the row cache (0 when
  /// disabled). Grows as probes warm the cache; feeds Session memory
  /// accounting.
  uint64_t RowCacheBytes() const;

 private:
  void RebuildMeta();

  /// Index of the first meta row with up > v (the row that could contain
  /// v), i.e. lower bound over row upper ends.
  size_t RowLowerBound(double v) const;

  size_t window_ = 0;
  size_t series_length_ = 0;
  std::vector<IndexRow> rows_;    // empty in store-backed form
  std::vector<RowMeta> meta_;

  // Store-backed form:
  const KvStore* store_ = nullptr;
  std::string ns_;

  // Row cache (mutable: caching is logically const). Keyed by the row's
  // meta index; insertion order doubles as the FIFO eviction queue.
  struct RowCache;
  mutable std::shared_ptr<RowCache> cache_;
};

}  // namespace kvmatch

#endif  // KVMATCH_INDEX_KV_INDEX_H_
