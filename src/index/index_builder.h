// KV-index building (paper §IV-B).
//
// Two steps: (1) stream the series once, computing each sliding-window mean
// in O(1) and appending the window position to the fixed-width row
// [k·d, (k+1)·d); (2) greedily merge adjacent rows whose interval lists are
// largely contiguous:  n_I(V_i ∪ V_{i+1}) / (n_I(V_i) + n_I(V_{i+1})) < γ.
// Total cost O(n).
//
// BuildSegmented builds per-segment then merges, demonstrating the paper's
// out-of-core / MapReduce-friendly variant.
#ifndef KVMATCH_INDEX_INDEX_BUILDER_H_
#define KVMATCH_INDEX_INDEX_BUILDER_H_

#include <map>
#include <span>
#include <vector>

#include "index/kv_index.h"
#include "ts/time_series.h"

namespace kvmatch {

struct IndexBuildOptions {
  size_t window = 50;     // w
  double width = 0.5;     // d: initial fixed range width
  double merge_threshold = 0.8;  // γ
  /// Cap on a merged row's key-range width, as a multiple of `width`.
  /// The paper's greedy γ-merge can cascade on smooth data (adjacent rows
  /// keep interleaving) until a single row covers the whole mean range and
  /// the index loses all pruning power; bounding the merged width keeps
  /// scans selective. 0 disables the cap.
  double max_row_width_factor = 2.0;
};

/// Builds a KV-index over `series` in one in-memory pass.
KvIndex BuildKvIndex(const TimeSeries& series, const IndexBuildOptions& opts);

/// Streaming index construction: feed points (or chunks) as they arrive,
/// snapshot a queryable KvIndex at any moment. The γ merge runs at
/// Snapshot time; intermediate state is the fixed-width row map plus a
/// w-point tail, so memory is O(index) not O(data). Production-style
/// extension beyond the paper's static build.
class IncrementalIndexBuilder {
 public:
  explicit IncrementalIndexBuilder(IndexBuildOptions opts);

  /// Appends one value to the logical series.
  void Append(double value);
  /// Appends a chunk.
  void AppendChunk(std::span<const double> values);

  /// Number of points consumed so far.
  size_t size() const { return count_; }

  /// Builds the index for everything appended so far. The builder remains
  /// usable (more appends allowed after a snapshot).
  KvIndex Snapshot() const;

  /// Approximate resident bytes of the builder state (fixed-width rows +
  /// the w-point tail) — feeds ingest-state memory accounting.
  uint64_t ApproxMemoryBytes() const;

 private:
  IndexBuildOptions opts_;
  size_t count_ = 0;
  double window_sum_ = 0.0;
  std::vector<double> tail_;          // last w points, circular
  size_t tail_pos_ = 0;
  std::map<int64_t, IntervalList> buckets_;
};

/// Builds the same index by splitting the series into `num_segments`
/// chunks, building fixed-width rows per chunk, merging chunk rows, then
/// applying the γ merge — the paper's large-scale path. Result is
/// identical to BuildKvIndex.
KvIndex BuildKvIndexSegmented(const TimeSeries& series,
                              const IndexBuildOptions& opts,
                              size_t num_segments);

/// Multithreaded variant of BuildKvIndexSegmented: per-segment fixed-width
/// rows are built in `num_threads` worker threads and merged afterwards —
/// the shared-memory analogue of the paper's MapReduce build (§IV-B).
/// Result is identical to BuildKvIndex.
KvIndex BuildKvIndexParallel(const TimeSeries& series,
                             const IndexBuildOptions& opts,
                             size_t num_threads);

/// Builds the KV-matchDP index set: windows Σ = {wu · 2^(i-1) | 1 <= i <= L}
/// (paper §VI), sharing a single pass over the series per window length.
std::vector<KvIndex> BuildIndexSet(const TimeSeries& series, size_t wu,
                                   size_t num_levels,
                                   double width = 0.5,
                                   double merge_threshold = 0.8);

}  // namespace kvmatch

#endif  // KVMATCH_INDEX_INDEX_BUILDER_H_
