#include "index/kv_index.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/coding.h"

namespace kvmatch {

namespace {

std::string RowKey(const std::string& ns, double low) {
  return ns + "r" + EncodeOrderedDouble(low);
}

std::string MetaKey(const std::string& ns) { return ns + "m"; }

std::string EncodeRowValue(const IndexRow& row) {
  std::string out;
  PutDouble(&out, row.up);
  row.value.EncodeTo(&out);
  return out;
}

bool DecodeRowValue(std::string_view in, double* up, IntervalList* value) {
  if (in.size() < 8) return false;
  *up = DecodeDouble(in.data());
  in.remove_prefix(8);
  return IntervalList::DecodeFrom(&in, value);
}

}  // namespace

// FIFO cache of decoded rows, keyed by meta-row index. Shared by every
// thread probing the same store-backed index, so all access goes through
// one mutex; rows are held by shared_ptr so a reader can keep using a row
// after another thread evicts it.
struct KvIndex::RowCache {
  size_t max_rows = 0;

  std::shared_ptr<const IntervalList> Get(size_t idx) const {
    std::lock_guard<std::mutex> lock(mu);
    auto it = rows.find(idx);
    if (it == rows.end()) return nullptr;
    return it->second;
  }

  void Put(size_t idx, IntervalList value) {
    if (max_rows == 0) return;
    std::lock_guard<std::mutex> lock(mu);
    if (rows.count(idx) > 0) return;
    while (rows.size() >= max_rows && !order.empty()) {
      auto victim = rows.find(order.front());
      if (victim != rows.end()) {
        bytes -= ApproxRowBytes(*victim->second);
        rows.erase(victim);
      }
      order.pop_front();
    }
    bytes += ApproxRowBytes(value);
    rows.emplace(idx,
                 std::make_shared<const IntervalList>(std::move(value)));
    order.push_back(idx);
  }

  /// Approximate resident bytes of the cached rows.
  uint64_t ApproxBytes() const {
    std::lock_guard<std::mutex> lock(mu);
    return bytes;
  }

 private:
  static uint64_t ApproxRowBytes(const IntervalList& row) {
    return 16 * static_cast<uint64_t>(row.num_intervals()) + 64;
  }

  mutable std::mutex mu;
  std::unordered_map<size_t, std::shared_ptr<const IntervalList>> rows;
  std::deque<size_t> order;  // insertion order for eviction
  uint64_t bytes = 0;
};

uint64_t KvIndex::RowCacheBytes() const {
  return cache_ != nullptr ? cache_->ApproxBytes() : 0;
}

void KvIndex::EnableRowCache(size_t max_rows) const {
  if (max_rows == 0) {
    cache_.reset();
    return;
  }
  cache_ = std::make_shared<RowCache>();
  cache_->max_rows = max_rows;
}

KvIndex::KvIndex(size_t window, size_t series_length,
                 std::vector<IndexRow> rows)
    : window_(window), series_length_(series_length), rows_(std::move(rows)) {
  RebuildMeta();
}

void KvIndex::RebuildMeta() {
  meta_.clear();
  meta_.reserve(rows_.size());
  for (const auto& row : rows_) {
    meta_.push_back({row.low, row.up,
                     static_cast<uint64_t>(row.value.num_intervals()),
                     static_cast<uint64_t>(row.value.num_positions())});
  }
}

size_t KvIndex::RowLowerBound(double v) const {
  // First row with up > v; rows are sorted and disjoint.
  auto it = std::upper_bound(
      meta_.begin(), meta_.end(), v,
      [](double x, const RowMeta& m) { return x < m.up; });
  return static_cast<size_t>(it - meta_.begin());
}

Result<IntervalList> KvIndex::ProbeRange(double lr, double ur,
                                         ProbeStats* stats) const {
  IntervalList is;
  if (meta_.empty() || ur < lr) return is;
  const size_t first = RowLowerBound(lr);
  if (first >= meta_.size() || meta_[first].low > ur) {
    if (stats != nullptr) stats->index_accesses += 1;
    return is;
  }

  if (stats != nullptr) stats->index_accesses += 1;

  if (store_ == nullptr) {
    // In-memory form.
    for (size_t i = first; i < rows_.size() && rows_[i].low <= ur; ++i) {
      is = IntervalList::Union(is, rows_[i].value);
      if (stats != nullptr) {
        stats->rows_fetched += 1;
        stats->intervals_fetched += rows_[i].value.num_intervals();
      }
    }
    return is;
  }

  // Store-backed: sequential scans over the key range, with cached rows
  // (if the row cache is enabled) served from memory so only the missing
  // runs touch the store (§VI-C optimization 1).
  size_t last = first;
  while (last + 1 < meta_.size() && meta_[last + 1].low <= ur) ++last;

  // Fetches rows [run_first, run_last] with one scan, unioning into `is`
  // and inserting into the cache.
  auto fetch_run = [&](size_t run_first, size_t run_last) -> Status {
    const std::string start_key = RowKey(ns_, meta_[run_first].low);
    // End: key strictly greater than the last row's key.
    std::string end_key = RowKey(ns_, meta_[run_last].low);
    end_key.push_back('\x01');
    size_t idx = run_first;
    for (auto it = store_->Scan(start_key, end_key); it->Valid();
         it->Next(), ++idx) {
      double up;
      IntervalList row_value;
      if (!DecodeRowValue(it->value(), &up, &row_value)) {
        return Status::Corruption("bad index row");
      }
      if (stats != nullptr) {
        stats->rows_fetched += 1;
        stats->intervals_fetched += row_value.num_intervals();
        stats->bytes_fetched += it->value().size();
      }
      is = IntervalList::Union(is, row_value);
      if (cache_ != nullptr) cache_->Put(idx, std::move(row_value));
    }
    return Status::OK();
  };

  if (cache_ == nullptr) {
    KVMATCH_RETURN_NOT_OK(fetch_run(first, last));
    return is;
  }

  size_t i = first;
  while (i <= last) {
    if (auto cached = cache_->Get(i)) {
      is = IntervalList::Union(is, *cached);
      if (stats != nullptr) stats->cache_hits += 1;
      ++i;
      continue;
    }
    // Extend the missing run as far as it goes.
    size_t run_last = i;
    while (run_last + 1 <= last && cache_->Get(run_last + 1) == nullptr) {
      ++run_last;
    }
    if (stats != nullptr && i != first) stats->index_accesses += 1;
    KVMATCH_RETURN_NOT_OK(fetch_run(i, run_last));
    i = run_last + 1;
  }
  return is;
}

uint64_t KvIndex::EstimateIntervals(double lr, double ur) const {
  uint64_t n = 0;
  for (size_t i = RowLowerBound(lr); i < meta_.size() && meta_[i].low <= ur;
       ++i) {
    n += meta_[i].num_intervals;
  }
  return n;
}

uint64_t KvIndex::EstimatePositions(double lr, double ur) const {
  uint64_t n = 0;
  for (size_t i = RowLowerBound(lr); i < meta_.size() && meta_[i].low <= ur;
       ++i) {
    n += meta_[i].num_positions;
  }
  return n;
}

namespace {

std::string EncodeIndexMeta(size_t window, size_t series_length,
                            const std::vector<RowMeta>& meta_rows) {
  std::string meta;
  PutVarint64(&meta, window);
  PutVarint64(&meta, series_length);
  PutVarint64(&meta, meta_rows.size());
  for (const auto& m : meta_rows) {
    PutDouble(&meta, m.low);
    PutDouble(&meta, m.up);
    PutVarint64(&meta, m.num_intervals);
    PutVarint64(&meta, m.num_positions);
  }
  return meta;
}

}  // namespace

Status KvIndex::Persist(KvStore* store, const std::string& ns) const {
  for (const auto& row : rows_) {
    KVMATCH_RETURN_NOT_OK(store->Put(RowKey(ns, row.low),
                                     EncodeRowValue(row)));
  }
  KVMATCH_RETURN_NOT_OK(
      store->Put(MetaKey(ns), EncodeIndexMeta(window_, series_length_,
                                              meta_)));
  return store->Flush();
}

void KvIndex::Persist(WriteBatch* batch, const std::string& ns) const {
  for (const auto& row : rows_) {
    batch->Put(RowKey(ns, row.low), EncodeRowValue(row));
  }
  batch->Put(MetaKey(ns), EncodeIndexMeta(window_, series_length_, meta_));
}

Result<KvIndex> KvIndex::Open(const KvStore* store, const std::string& ns) {
  std::string meta;
  KVMATCH_RETURN_NOT_OK(store->Get(MetaKey(ns), &meta));
  KvIndex index;
  std::string_view in(meta);
  uint64_t w, n, count;
  if (!GetVarint64(&in, &w) || !GetVarint64(&in, &n) ||
      !GetVarint64(&in, &count)) {
    return Status::Corruption("bad index meta header");
  }
  index.window_ = w;
  index.series_length_ = n;
  index.meta_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (in.size() < 16) return Status::Corruption("meta entry truncated");
    RowMeta m;
    m.low = DecodeDouble(in.data());
    m.up = DecodeDouble(in.data() + 8);
    in.remove_prefix(16);
    if (!GetVarint64(&in, &m.num_intervals) ||
        !GetVarint64(&in, &m.num_positions)) {
      return Status::Corruption("meta entry truncated");
    }
    index.meta_.push_back(m);
  }
  index.store_ = store;
  index.ns_ = ns;
  return index;
}

uint64_t KvIndex::EncodedSizeBytes() const {
  uint64_t bytes = 0;
  for (const auto& row : rows_) {
    bytes += 9 + EncodeRowValue(row).size();  // key (1+8) + value
  }
  bytes += 24 * meta_.size();  // meta entry upper bound
  return bytes;
}

}  // namespace kvmatch
