#include "index/interval.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace kvmatch {

IntervalList::IntervalList(std::vector<WindowInterval> intervals) {
  for (const auto& wi : intervals) AppendInterval(wi);
}

void IntervalList::AppendPosition(int64_t pos) {
  AppendInterval({pos, pos});
}

void IntervalList::AppendInterval(WindowInterval wi) {
  assert(wi.l <= wi.r);
  if (!intervals_.empty() && wi.l <= intervals_.back().r + 1) {
    assert(wi.r >= intervals_.back().l);
    // Coalesce with the back, counting only genuinely new positions.
    const int64_t new_lo = std::max(wi.l, intervals_.back().r + 1);
    if (wi.r > intervals_.back().r) {
      num_positions_ += wi.r - new_lo + 1;
      intervals_.back().r = wi.r;
    }
    return;
  }
  intervals_.push_back(wi);
  num_positions_ += wi.size();
}

bool IntervalList::Contains(int64_t pos) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), pos,
      [](int64_t p, const WindowInterval& wi) { return p < wi.l; });
  if (it == intervals_.begin()) return false;
  --it;
  return pos <= it->r;
}

IntervalList IntervalList::Union(const IntervalList& a,
                                 const IntervalList& b) {
  IntervalList out;
  size_t i = 0, j = 0;
  while (i < a.intervals_.size() || j < b.intervals_.size()) {
    const bool take_a =
        j >= b.intervals_.size() ||
        (i < a.intervals_.size() && a.intervals_[i].l <= b.intervals_[j].l);
    out.AppendInterval(take_a ? a.intervals_[i++] : b.intervals_[j++]);
  }
  return out;
}

IntervalList IntervalList::Intersect(const IntervalList& a,
                                     const IntervalList& b) {
  IntervalList out;
  size_t i = 0, j = 0;
  while (i < a.intervals_.size() && j < b.intervals_.size()) {
    const auto& x = a.intervals_[i];
    const auto& y = b.intervals_[j];
    const int64_t lo = std::max(x.l, y.l);
    const int64_t hi = std::min(x.r, y.r);
    if (lo <= hi) out.AppendInterval({lo, hi});
    if (x.r < y.r) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

IntervalList IntervalList::ShiftLeft(int64_t delta) const {
  IntervalList out;
  for (const auto& wi : intervals_) {
    const int64_t l = wi.l - delta;
    const int64_t r = wi.r - delta;
    if (r < 0) continue;
    out.AppendInterval({std::max<int64_t>(l, 0), r});
  }
  return out;
}

void IntervalList::EncodeTo(std::string* dst) const {
  PutVarint64(dst, intervals_.size());
  int64_t prev_end = 0;  // previous r + 1; first gap is from 0
  for (const auto& wi : intervals_) {
    PutVarint64(dst, static_cast<uint64_t>(wi.l - prev_end));
    PutVarint64(dst, static_cast<uint64_t>(wi.r - wi.l));
    prev_end = wi.r + 1;
  }
}

bool IntervalList::DecodeFrom(std::string_view* input, IntervalList* out) {
  *out = IntervalList();
  uint64_t count;
  if (!GetVarint64(input, &count)) return false;
  int64_t prev_end = 0;
  for (uint64_t k = 0; k < count; ++k) {
    uint64_t gap, len_minus_1;
    if (!GetVarint64(input, &gap) || !GetVarint64(input, &len_minus_1)) {
      return false;
    }
    const int64_t l = prev_end + static_cast<int64_t>(gap);
    const int64_t r = l + static_cast<int64_t>(len_minus_1);
    out->AppendInterval({l, r});
    prev_end = r + 1;
  }
  return true;
}

}  // namespace kvmatch
