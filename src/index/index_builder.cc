#include "index/index_builder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <thread>

namespace kvmatch {

namespace {

/// Fixed-width bucket id for a mean value: k such that v ∈ [k·d, (k+1)·d).
int64_t BucketOf(double v, double d) {
  return static_cast<int64_t>(std::floor(v / d));
}

/// Step 1: fixed-width rows over series positions [begin, end) (window
/// starts), using a running sum for O(1) mean updates.
std::map<int64_t, IntervalList> BuildFixedWidthRows(
    const TimeSeries& series, size_t w, double d, size_t begin, size_t end) {
  std::map<int64_t, IntervalList> buckets;
  if (end <= begin) return buckets;
  double sum = 0.0;
  for (size_t k = begin; k < begin + w; ++k) sum += series[k];
  const double inv_w = 1.0 / static_cast<double>(w);
  for (size_t i = begin; i < end; ++i) {
    const double mean = sum * inv_w;
    buckets[BucketOf(mean, d)].AppendPosition(static_cast<int64_t>(i));
    if (i + 1 < end) {
      sum += series[i + w] - series[i];
    }
  }
  return buckets;
}

/// Step 2: greedy merge of adjacent rows (paper §IV-B). Rows arrive sorted
/// by key range; the merge walks once left to right.
std::vector<IndexRow> MergeRows(const std::map<int64_t, IntervalList>& buckets,
                                double d, double gamma,
                                double max_row_width) {
  std::vector<IndexRow> rows;
  for (const auto& [bucket, value] : buckets) {
    IndexRow row;
    row.low = static_cast<double>(bucket) * d;
    row.up = static_cast<double>(bucket + 1) * d;
    row.value = value;
    if (!rows.empty()) {
      IndexRow& prev = rows.back();
      // Merge is only meaningful for rows with adjacent key ranges; a gap
      // between bucket ids means a mean-value range with no windows at all,
      // which we keep separate to avoid widening scans.
      const bool adjacent = prev.up == row.low;
      const bool within_cap =
          max_row_width <= 0.0 || (row.up - prev.low) <= max_row_width + 1e-12;
      if (adjacent && within_cap) {
        IntervalList merged = IntervalList::Union(prev.value, row.value);
        const double ratio =
            static_cast<double>(merged.num_intervals()) /
            static_cast<double>(prev.value.num_intervals() +
                                row.value.num_intervals());
        if (ratio < gamma) {
          prev.up = row.up;
          prev.value = std::move(merged);
          continue;
        }
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

KvIndex BuildKvIndex(const TimeSeries& series, const IndexBuildOptions& opts) {
  const size_t n = series.size();
  const size_t w = opts.window;
  if (n < w || w == 0) return KvIndex(w, n, {});
  auto buckets = BuildFixedWidthRows(series, w, opts.width, 0, n - w + 1);
  return KvIndex(w, n,
                 MergeRows(buckets, opts.width, opts.merge_threshold,
                           opts.width * opts.max_row_width_factor));
}

KvIndex BuildKvIndexSegmented(const TimeSeries& series,
                              const IndexBuildOptions& opts,
                              size_t num_segments) {
  const size_t n = series.size();
  const size_t w = opts.window;
  if (n < w || w == 0) return KvIndex(w, n, {});
  const size_t total = n - w + 1;
  num_segments = std::max<size_t>(1, std::min(num_segments, total));
  const size_t chunk = (total + num_segments - 1) / num_segments;

  // Build per-segment fixed-width rows, then union them bucket-by-bucket.
  // Segments cover disjoint, increasing position ranges, so per-bucket
  // interval lists concatenate in order.
  std::map<int64_t, IntervalList> all;
  for (size_t s = 0; s < num_segments; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    auto part = BuildFixedWidthRows(series, w, opts.width, begin, end);
    for (auto& [bucket, value] : part) {
      auto it = all.find(bucket);
      if (it == all.end()) {
        all.emplace(bucket, std::move(value));
      } else {
        it->second = IntervalList::Union(it->second, value);
      }
    }
  }
  return KvIndex(w, n,
                 MergeRows(all, opts.width, opts.merge_threshold,
                           opts.width * opts.max_row_width_factor));
}

IncrementalIndexBuilder::IncrementalIndexBuilder(IndexBuildOptions opts)
    : opts_(opts) {
  tail_.resize(std::max<size_t>(1, opts_.window), 0.0);
}

void IncrementalIndexBuilder::Append(double value) {
  const size_t w = opts_.window;
  window_sum_ += value;
  if (count_ >= w) {
    // Evict the point leaving the window.
    window_sum_ -= tail_[tail_pos_];
  }
  tail_[tail_pos_] = value;
  tail_pos_ = (tail_pos_ + 1) % w;
  ++count_;
  if (count_ >= w) {
    const double mean = window_sum_ / static_cast<double>(w);
    const int64_t position = static_cast<int64_t>(count_ - w);
    buckets_[BucketOf(mean, opts_.width)].AppendPosition(position);
  }
}

void IncrementalIndexBuilder::AppendChunk(std::span<const double> values) {
  for (double v : values) Append(v);
}

uint64_t IncrementalIndexBuilder::ApproxMemoryBytes() const {
  uint64_t bytes = 8 * static_cast<uint64_t>(tail_.size());
  for (const auto& [bucket, value] : buckets_) {
    bytes += 48 + 16 * static_cast<uint64_t>(value.num_intervals());
  }
  return bytes;
}

KvIndex IncrementalIndexBuilder::Snapshot() const {
  return KvIndex(opts_.window, count_,
                 MergeRows(buckets_, opts_.width, opts_.merge_threshold,
                           opts_.width * opts_.max_row_width_factor));
}

KvIndex BuildKvIndexParallel(const TimeSeries& series,
                             const IndexBuildOptions& opts,
                             size_t num_threads) {
  const size_t n = series.size();
  const size_t w = opts.window;
  if (n < w || w == 0) return KvIndex(w, n, {});
  const size_t total = n - w + 1;
  num_threads = std::max<size_t>(1, std::min(num_threads, total));
  const size_t chunk = (total + num_threads - 1) / num_threads;

  // Map: per-segment fixed-width rows, one worker each.
  std::vector<std::map<int64_t, IntervalList>> parts(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&series, &opts, &parts, t, begin, end] {
      parts[t] = BuildFixedWidthRows(series, opts.window, opts.width, begin,
                                     end);
    });
  }
  for (auto& worker : workers) worker.join();

  // Reduce: segments cover increasing position ranges, so bucket lists
  // concatenate in order when merged segment-by-segment.
  std::map<int64_t, IntervalList> all;
  for (auto& part : parts) {
    for (auto& [bucket, value] : part) {
      auto it = all.find(bucket);
      if (it == all.end()) {
        all.emplace(bucket, std::move(value));
      } else {
        it->second = IntervalList::Union(it->second, value);
      }
    }
  }
  return KvIndex(w, n,
                 MergeRows(all, opts.width, opts.merge_threshold,
                           opts.width * opts.max_row_width_factor));
}

std::vector<KvIndex> BuildIndexSet(const TimeSeries& series, size_t wu,
                                   size_t num_levels, double width,
                                   double merge_threshold) {
  std::vector<KvIndex> out;
  out.reserve(num_levels);
  size_t w = wu;
  for (size_t i = 0; i < num_levels; ++i, w *= 2) {
    IndexBuildOptions opts;
    opts.window = w;
    opts.width = width;
    opts.merge_threshold = merge_threshold;
    out.push_back(BuildKvIndex(series, opts));
  }
  return out;
}

}  // namespace kvmatch
