// Window intervals and ordered interval lists (paper Def. 1, §IV-A, §V).
//
// A WindowInterval [l, r] denotes the consecutive sliding windows
// X(l,w) ... X(r,w). KV-index row values, IS_i, CS_i and CS are all ordered
// lists of disjoint intervals; the matching algorithm reduces to the
// merge / shift / intersect operations defined here.
#ifndef KVMATCH_INDEX_INTERVAL_H_
#define KVMATCH_INDEX_INTERVAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kvmatch {

/// Inclusive interval of window positions (0-based).
struct WindowInterval {
  int64_t l = 0;
  int64_t r = 0;

  int64_t size() const { return r - l + 1; }
  bool operator==(const WindowInterval&) const = default;
};

/// Ordered list of disjoint, non-adjacentable intervals.
///
/// Invariant: intervals[k].r + 1 < intervals[k+1].l — i.e. sorted, disjoint
/// and maximally merged (adjacent intervals are coalesced on construction).
class IntervalList {
 public:
  IntervalList() = default;
  explicit IntervalList(std::vector<WindowInterval> intervals);

  /// Appends a position, extending the last interval when adjacent.
  /// Positions must arrive in non-decreasing order.
  void AppendPosition(int64_t pos);

  /// Appends an interval; must start after the current back (adjacent
  /// intervals are coalesced).
  void AppendInterval(WindowInterval wi);

  size_t num_intervals() const { return intervals_.size(); }   // n_I
  int64_t num_positions() const { return num_positions_; }     // n_P
  bool empty() const { return intervals_.empty(); }

  const std::vector<WindowInterval>& intervals() const { return intervals_; }
  const WindowInterval& operator[](size_t i) const { return intervals_[i]; }

  bool Contains(int64_t pos) const;

  /// Set union (merging overlapping/adjacent intervals) — used when
  /// building the row merge and when unioning RList rows into IS_i.
  static IntervalList Union(const IntervalList& a, const IntervalList& b);

  /// Set intersection — the CS ∩ CS_i step of Algorithm 1.
  static IntervalList Intersect(const IntervalList& a, const IntervalList& b);

  /// Left-shifts every interval by `delta`, clamping at position >= 0
  /// (candidates cannot start before the series does). Intervals entirely
  /// below 0 are dropped.
  IntervalList ShiftLeft(int64_t delta) const;

  /// Serialization: delta-encoded varints — <count> then per interval
  /// <varint gap_from_previous_r_plus_1><varint length-1>.
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(std::string_view* input, IntervalList* out);

  bool operator==(const IntervalList&) const = default;

 private:
  std::vector<WindowInterval> intervals_;
  int64_t num_positions_ = 0;
};

}  // namespace kvmatch

#endif  // KVMATCH_INDEX_INTERVAL_H_
