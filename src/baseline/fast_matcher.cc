#include "baseline/fast_matcher.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "distance/dtw.h"
#include "distance/ed.h"
#include "distance/envelope.h"
#include "distance/lower_bounds.h"

namespace kvmatch {

std::vector<MatchResult> FastMatcher::Match(std::span<const double> q,
                                            const QueryParams& params,
                                            FastStats* stats) const {
  std::vector<MatchResult> results;
  const size_t m = q.size();
  const size_t n = series_.size();
  if (m == 0 || n < m) return results;
  const bool normalized = IsNormalized(params.type);
  const bool dtw = IsDtw(params.type);
  const double eps = params.epsilon;
  const double eps_sq = eps * eps;

  const auto t0 = std::chrono::steady_clock::now();

  std::vector<double> q_cmp(q.begin(), q.end());
  if (normalized) q_cmp = ZNormalize(q);
  const MeanStd q_ms = ComputeMeanStd(q);
  Envelope env;
  std::vector<int> order;
  if (dtw) {
    env = BuildEnvelope(q_cmp, params.rho);
  } else {
    order = SortedAbsOrder(q_cmp);
  }

  // Extra lower-bound preparation: disjoint-window PAA of the comparison
  // query (and its envelope for DTW), with per-window admissible mean
  // ranges. This is the data preparation whose overhead the paper notes.
  const size_t paa_w = 32;
  const size_t p = m / paa_w;
  std::vector<double> paa_lo(p), paa_hi(p);
  for (size_t i = 0; i < p; ++i) {
    if (dtw) {
      paa_lo[i] = Mean(std::span<const double>(env.lower)
                           .subspan(i * paa_w, paa_w));
      paa_hi[i] = Mean(std::span<const double>(env.upper)
                           .subspan(i * paa_w, paa_w));
    } else {
      const double mu =
          Mean(std::span<const double>(q_cmp).subspan(i * paa_w, paa_w));
      paa_lo[i] = mu;
      paa_hi[i] = mu;
    }
  }
  if (stats != nullptr) {
    stats->prepare_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  }

  std::vector<double> s_hat(m);
  std::vector<double> s_means(p);
  std::vector<double> cb;
  for (size_t off = 0; off + m <= n; ++off) {
    if (stats != nullptr) ++stats->offsets_scanned;
    const auto s = series_.Subsequence(off, m);
    double mean = 0.0, std = 0.0;
    if (normalized) {
      const MeanStd ms = prefix_.WindowMeanStd(off, m);
      mean = ms.mean;
      std = ms.std;
      const bool sigma_ok = std >= q_ms.std / params.alpha - 1e-12 &&
                            std <= q_ms.std * params.alpha + 1e-12;
      const bool mu_ok = std::fabs(mean - q_ms.mean) <= params.beta + 1e-12;
      if (!sigma_ok || !mu_ok) {
        if (stats != nullptr) ++stats->constraint_pruned;
        continue;
      }
    }

    // PAA prefilter: window means of the (normalized) candidate vs the
    // query PAA envelope. Sound: LB_PAA <= ED² and <= DTW²; the L1 analog
    // is w·Σ|µ^S_i - µ^Q_i| <= L1.
    if (p > 0) {
      const double inv = std > 1e-12 ? 1.0 / std : 0.0;
      for (size_t i = 0; i < p; ++i) {
        double mu = prefix_.WindowMean(off + i * paa_w, paa_w);
        if (normalized) mu = (mu - mean) * inv;
        s_means[i] = mu;
      }
      if (IsL1(params.type)) {
        double lb_l1 = 0.0;
        for (size_t i = 0; i < p; ++i) {
          lb_l1 += std::fabs(s_means[i] - paa_lo[i]);
        }
        if (lb_l1 * static_cast<double>(paa_w) > eps) {
          if (stats != nullptr) ++stats->paa_pruned;
          continue;
        }
      } else if (LbPaaSquared(s_means, paa_lo, paa_hi, paa_w) > eps_sq) {
        if (stats != nullptr) ++stats->paa_pruned;
        continue;
      }
    }

    if (IsL1(params.type)) {
      const double d = L1DistanceEarlyAbandon(s, q_cmp, eps);
      if (stats != nullptr) ++stats->distance_calls;
      if (d <= eps) results.push_back({off, d});
      continue;
    }

    if (!dtw) {
      double dist_sq;
      if (normalized) {
        dist_sq =
            SquaredNormalizedEdOrdered(s, mean, std, q_cmp, order, eps_sq);
      } else {
        dist_sq = SquaredEdEarlyAbandon(s, q_cmp, eps_sq);
      }
      if (stats != nullptr) ++stats->distance_calls;
      if (dist_sq <= eps_sq) results.push_back({off, std::sqrt(dist_sq)});
      continue;
    }

    std::span<const double> s_cmp = s;
    if (normalized) {
      const double inv = std > 1e-12 ? 1.0 / std : 0.0;
      for (size_t i = 0; i < m; ++i) s_hat[i] = (s[i] - mean) * inv;
      s_cmp = s_hat;
    }
    if (LbKimSquared(s_cmp, q_cmp, eps_sq) > eps_sq) {
      if (stats != nullptr) ++stats->lb_kim_pruned;
      continue;
    }
    if (LbKeoghSquared(s_cmp, env, eps_sq, &cb) > eps_sq) {
      if (stats != nullptr) ++stats->lb_keogh_pruned;
      continue;
    }
    // Second Keogh pass: query against the candidate's own envelope.
    {
      const Envelope cand_env = BuildEnvelope(s_cmp, params.rho);
      if (LbKeoghSquared(q_cmp, cand_env, eps_sq, nullptr) > eps_sq) {
        if (stats != nullptr) ++stats->lb_keogh_ec_pruned;
        continue;
      }
    }
    const std::vector<double> cum = SuffixCumulate(cb);
    const double d = DtwDistance(s_cmp, q_cmp, params.rho, eps, cum);
    if (stats != nullptr) ++stats->distance_calls;
    if (d <= eps) results.push_back({off, d});
  }
  return results;
}

}  // namespace kvmatch
