#include "baseline/ucr_suite.h"

#include <cmath>
#include <limits>

#include "distance/dtw.h"
#include "distance/ed.h"
#include "distance/envelope.h"
#include "distance/lower_bounds.h"

namespace kvmatch {

std::vector<MatchResult> UcrSuite::Match(std::span<const double> q,
                                         const QueryParams& params,
                                         UcrStats* stats) const {
  std::vector<MatchResult> results;
  const size_t m = q.size();
  const size_t n = series_.size();
  if (m == 0 || n < m) return results;
  const bool normalized = IsNormalized(params.type);
  const bool dtw = IsDtw(params.type);
  const double eps = params.epsilon;
  const double eps_sq = eps * eps;

  // Query-side preparation.
  std::vector<double> q_cmp(q.begin(), q.end());
  if (normalized) q_cmp = ZNormalize(q);
  const MeanStd q_ms = ComputeMeanStd(q);
  Envelope env;
  std::vector<int> order;
  if (dtw) {
    env = BuildEnvelope(q_cmp, params.rho);
  } else {
    order = SortedAbsOrder(q_cmp);
  }

  std::vector<double> s_hat(m);
  std::vector<double> cb;
  for (size_t off = 0; off + m <= n; ++off) {
    if (stats != nullptr) ++stats->offsets_scanned;
    const auto s = series_.Subsequence(off, m);
    double mean = 0.0, std = 0.0;
    if (normalized) {
      const MeanStd ms = prefix_.WindowMeanStd(off, m);
      mean = ms.mean;
      std = ms.std;
      const bool sigma_ok = std >= q_ms.std / params.alpha - 1e-12 &&
                            std <= q_ms.std * params.alpha + 1e-12;
      const bool mu_ok = std::fabs(mean - q_ms.mean) <= params.beta + 1e-12;
      if (!sigma_ok || !mu_ok) {
        if (stats != nullptr) ++stats->constraint_pruned;
        continue;
      }
    }

    if (IsL1(params.type)) {
      const double d = L1DistanceEarlyAbandon(s, q_cmp, eps);
      if (stats != nullptr) ++stats->distance_calls;
      if (d <= eps) results.push_back({off, d});
      continue;
    }

    if (!dtw) {
      double dist_sq;
      if (normalized) {
        dist_sq =
            SquaredNormalizedEdOrdered(s, mean, std, q_cmp, order, eps_sq);
      } else {
        dist_sq = SquaredEdEarlyAbandon(s, q_cmp, eps_sq);
      }
      if (stats != nullptr) ++stats->distance_calls;
      if (dist_sq <= eps_sq) results.push_back({off, std::sqrt(dist_sq)});
      continue;
    }

    // DTW path.
    std::span<const double> s_cmp = s;
    if (normalized) {
      const double inv = std > 1e-12 ? 1.0 / std : 0.0;
      for (size_t i = 0; i < m; ++i) s_hat[i] = (s[i] - mean) * inv;
      s_cmp = s_hat;
    }
    if (LbKimSquared(s_cmp, q_cmp, eps_sq) > eps_sq) {
      if (stats != nullptr) ++stats->lb_kim_pruned;
      continue;
    }
    if (LbKeoghSquared(s_cmp, env, eps_sq, &cb) > eps_sq) {
      if (stats != nullptr) ++stats->lb_keogh_pruned;
      continue;
    }
    const std::vector<double> cum = SuffixCumulate(cb);
    const double d = DtwDistance(s_cmp, q_cmp, params.rho, eps, cum);
    if (stats != nullptr) ++stats->distance_calls;
    if (d <= eps) results.push_back({off, d});
  }
  return results;
}

}  // namespace kvmatch
