// UCR Suite baseline (Rakthanmanon et al., KDD'12), adapted to ε-match as
// in the paper's evaluation (§VIII-A3): full scan of X with the UCR
// optimization cascade — streaming mean/std, reordered early-abandoning
// normalized ED, LB_Kim / LB_Keogh cascades and early-abandoning DTW.
//
// Handles all four query types: RSM variants skip normalization; cNSM
// variants additionally push the α/β constraints down into the scan.
#ifndef KVMATCH_BASELINE_UCR_SUITE_H_
#define KVMATCH_BASELINE_UCR_SUITE_H_

#include <span>
#include <vector>

#include "match/query_types.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {

struct UcrStats {
  uint64_t offsets_scanned = 0;
  uint64_t constraint_pruned = 0;
  uint64_t lb_kim_pruned = 0;
  uint64_t lb_keogh_pruned = 0;
  uint64_t distance_calls = 0;
};

class UcrSuite {
 public:
  /// `prefix` must be built over `series`.
  UcrSuite(const TimeSeries& series, const PrefixStats& prefix)
      : series_(series), prefix_(prefix) {}

  std::vector<MatchResult> Match(std::span<const double> q,
                                 const QueryParams& params,
                                 UcrStats* stats = nullptr) const;

 private:
  const TimeSeries& series_;
  const PrefixStats& prefix_;
};

}  // namespace kvmatch

#endif  // KVMATCH_BASELINE_UCR_SUITE_H_
