#include "baseline/dmatch.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "baseline/transforms.h"
#include "distance/envelope.h"
#include "index/interval.h"
#include "match/verifier.h"

namespace kvmatch {

namespace {
double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

DMatch::DMatch(const TimeSeries& series, const PrefixStats& prefix,
               Options options)
    : series_(series),
      prefix_(prefix),
      options_(options),
      tree_(options.paa_dims, options.rtree_fanout) {
  const auto t0 = std::chrono::steady_clock::now();
  const size_t n = series.size();
  const size_t w = options_.window;
  std::vector<std::pair<Rect, int64_t>> items;
  for (size_t j = 0; j + w <= n; j += w) {  // disjoint data windows
    const auto window = series.Subsequence(j, w);
    items.emplace_back(Rect::Point(Paa(window, options_.paa_dims)),
                       static_cast<int64_t>(j));
  }
  tree_.BulkLoad(std::move(items));
  build_seconds_ = MsSince(t0) / 1000.0;
}

std::vector<MatchResult> DMatch::Match(std::span<const double> q,
                                       double epsilon, size_t rho,
                                       RtreeMatchStats* stats) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<MatchResult> results;
  const size_t m = q.size();
  const size_t w = options_.window;
  const size_t n = series_.size();
  if (m < 2 * w - 1 || n < m) return results;

  // Any length-m subsequence fully contains at least p_d disjoint data
  // windows; if DTW(S, Q) <= ε, at least one contained window pair is
  // within ε / sqrt(p_d) of the corresponding (envelope-relaxed) query
  // region.
  const size_t p_d = std::max<size_t>(1, (m - w + 1) / w);
  const double radius = epsilon / std::sqrt(static_cast<double>(p_d));

  // Sliding envelope windows of the query: data window at alignment a may
  // warp against q[a-rho, a+w-1+rho]; the envelope already folds the band
  // in, so window a of (L, U) covers it.
  const Envelope env = BuildEnvelope(q, rho);
  std::vector<int64_t> candidates;
  for (size_t a = 0; a + w <= m; ++a) {
    const auto la = std::span<const double>(env.lower).subspan(a, w);
    const auto ua = std::span<const double>(env.upper).subspan(a, w);
    const Rect rect = PaaEnvelopeRect(Paa(la, options_.paa_dims),
                                      Paa(ua, options_.paa_dims), w, radius);
    std::vector<int64_t> hits;
    const uint64_t visited = tree_.RangeQuery(rect, &hits);
    if (stats != nullptr) {
      stats->index_accesses += visited;
      stats->range_queries += 1;
      stats->per_window_candidates.push_back(hits.size());
    }
    for (int64_t t : hits) {
      const int64_t s = t - static_cast<int64_t>(a);
      if (s >= 0 && s + static_cast<int64_t>(m) <= static_cast<int64_t>(n)) {
        candidates.push_back(s);
      }
    }
  }

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  IntervalList cs;
  for (int64_t c : candidates) cs.AppendPosition(c);
  if (stats != nullptr) {
    stats->candidate_positions = static_cast<uint64_t>(cs.num_positions());
    stats->phase1_ms = MsSince(t0);
  }

  const auto t1 = std::chrono::steady_clock::now();
  QueryParams params;
  params.type = QueryType::kRsmDtw;
  params.epsilon = epsilon;
  params.rho = rho;
  Verifier verifier(series_, prefix_);
  MatchStats vstats;
  results = verifier.Verify(q, params, cs, &vstats);
  if (stats != nullptr) {
    stats->distance_calls = vstats.distance_calls;
    stats->lb_pruned = vstats.lb_pruned;
    stats->phase2_ms = MsSince(t1);
  }
  return results;
}

}  // namespace kvmatch
