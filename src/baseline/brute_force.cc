#include "baseline/brute_force.h"

#include <cmath>

#include "distance/dtw.h"
#include "distance/ed.h"

namespace kvmatch {

std::vector<MatchResult> BruteForceMatch(const TimeSeries& series,
                                         std::span<const double> q,
                                         const QueryParams& params) {
  std::vector<MatchResult> results;
  const size_t m = q.size();
  const size_t n = series.size();
  if (m == 0 || n < m) return results;
  const bool normalized = IsNormalized(params.type);
  const bool dtw = IsDtw(params.type);

  std::vector<double> q_cmp(q.begin(), q.end());
  if (normalized) q_cmp = ZNormalize(q);
  const MeanStd q_ms = ComputeMeanStd(q);

  for (size_t off = 0; off + m <= n; ++off) {
    const auto s = series.Subsequence(off, m);
    std::vector<double> s_cmp(s.begin(), s.end());
    if (normalized) {
      const MeanStd ms = ComputeMeanStd(s);
      if (ms.std < q_ms.std / params.alpha - 1e-12 ||
          ms.std > q_ms.std * params.alpha + 1e-12) {
        continue;
      }
      if (std::fabs(ms.mean - q_ms.mean) > params.beta + 1e-12) continue;
      s_cmp = ZNormalize(s);
    }
    double d;
    if (IsL1(params.type)) {
      d = L1DistanceEarlyAbandon(s_cmp, q_cmp);
    } else if (dtw) {
      d = DtwDistance(s_cmp, q_cmp, params.rho);
    } else {
      d = EuclideanDistance(s_cmp, q_cmp);
    }
    if (d <= params.epsilon) results.push_back({off, d});
  }
  return results;
}

}  // namespace kvmatch
