#include "baseline/general_match.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "baseline/transforms.h"
#include "index/interval.h"
#include "match/verifier.h"

namespace kvmatch {

namespace {
double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

GeneralMatch::GeneralMatch(const TimeSeries& series,
                           const PrefixStats& prefix, Options options)
    : series_(series),
      prefix_(prefix),
      options_(options),
      tree_(options.paa_dims, options.rtree_fanout) {
  const auto t0 = std::chrono::steady_clock::now();
  const size_t n = series.size();
  const size_t w = options_.window;
  std::vector<std::pair<Rect, int64_t>> items;
  if (n >= w) {
    for (size_t j = 0; j + w <= n; j += options_.stride) {
      const auto window = series.Subsequence(j, w);
      items.emplace_back(Rect::Point(Paa(window, options_.paa_dims)),
                         static_cast<int64_t>(j));
    }
  }
  tree_.BulkLoad(std::move(items));
  build_seconds_ = MsSince(t0) / 1000.0;
}

std::vector<MatchResult> GeneralMatch::Match(std::span<const double> q,
                                             double epsilon,
                                             RtreeMatchStats* stats) const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<MatchResult> results;
  const size_t m = q.size();
  const size_t w = options_.window;
  const size_t n = series_.size();
  if (m < w || n < m) return results;
  const size_t j_stride = options_.stride;

  std::vector<int64_t> candidates;

  if (j_stride == 1) {
    // FRM: disjoint query windows, sliding data windows.
    const size_t p = m / w;
    const double radius = epsilon / std::sqrt(static_cast<double>(p));
    for (size_t i = 0; i < p; ++i) {
      const auto qi = q.subspan(i * w, w);
      const Rect rect = PaaQueryRect(Paa(qi, options_.paa_dims), w, radius);
      std::vector<int64_t> hits;
      const uint64_t visited = tree_.RangeQuery(rect, &hits);
      if (stats != nullptr) {
        stats->index_accesses += visited;
        stats->range_queries += 1;
        stats->per_window_candidates.push_back(hits.size());
      }
      for (int64_t t : hits) {
        const int64_t s = t - static_cast<int64_t>(i * w);
        if (s >= 0 && s + static_cast<int64_t>(m) <= static_cast<int64_t>(n)) {
          candidates.push_back(s);
        }
      }
    }
  } else {
    // Dual-Match flavor: data windows every J positions, query windows at
    // every alignment a. Each subsequence of length m fully contains at
    // least p_d = ⌊(m - w + 1) / J⌋ indexed windows.
    const size_t p_d =
        std::max<size_t>(1, (m - w + 1) / j_stride);
    const double radius = epsilon / std::sqrt(static_cast<double>(p_d));
    for (size_t a = 0; a + w <= m; ++a) {
      const auto qa = q.subspan(a, w);
      const Rect rect = PaaQueryRect(Paa(qa, options_.paa_dims), w, radius);
      std::vector<int64_t> hits;
      const uint64_t visited = tree_.RangeQuery(rect, &hits);
      if (stats != nullptr) {
        stats->index_accesses += visited;
        stats->range_queries += 1;
        stats->per_window_candidates.push_back(hits.size());
      }
      for (int64_t t : hits) {
        const int64_t s = t - static_cast<int64_t>(a);
        if (s >= 0 && s + static_cast<int64_t>(m) <= static_cast<int64_t>(n)) {
          candidates.push_back(s);
        }
      }
    }
  }

  // Union, then verify with the shared phase-2 machinery.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  IntervalList cs;
  for (int64_t c : candidates) cs.AppendPosition(c);
  if (stats != nullptr) {
    stats->candidate_positions = static_cast<uint64_t>(cs.num_positions());
    stats->phase1_ms = MsSince(t0);
  }

  const auto t1 = std::chrono::steady_clock::now();
  QueryParams params;
  params.type = QueryType::kRsmEd;
  params.epsilon = epsilon;
  Verifier verifier(series_, prefix_);
  MatchStats vstats;
  results = verifier.Verify(q, params, cs, &vstats);
  if (stats != nullptr) {
    stats->distance_calls = vstats.distance_calls;
    stats->lb_pruned = vstats.lb_pruned;
    stats->phase2_ms = MsSince(t1);
  }
  return results;
}

}  // namespace kvmatch
