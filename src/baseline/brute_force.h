// Brute-force reference matcher: exact answers for all four query types
// with no pruning. The ground truth every other matcher is tested against.
#ifndef KVMATCH_BASELINE_BRUTE_FORCE_H_
#define KVMATCH_BASELINE_BRUTE_FORCE_H_

#include <span>
#include <vector>

#include "match/query_types.h"
#include "ts/time_series.h"

namespace kvmatch {

/// Scans every offset, computing the exact (normalized) ED/DTW distance and
/// checking the cNSM constraints directly from the definitions.
std::vector<MatchResult> BruteForceMatch(const TimeSeries& series,
                                         std::span<const double> q,
                                         const QueryParams& params);

}  // namespace kvmatch

#endif  // KVMATCH_BASELINE_BRUTE_FORCE_H_
