// DMatch (Fu et al., VLDBJ'08): duality-based subsequence matching under
// DTW (paper §VIII-A3). Disjoint data windows are PAA-transformed into an
// R-tree; every sliding window of the query's Sakoe-Chiba envelope issues
// a box query; candidates are unioned and verified with banded DTW.
//
// Per the paper's setup: window length 64, PAA to 4 dimensions.
#ifndef KVMATCH_BASELINE_DMATCH_H_
#define KVMATCH_BASELINE_DMATCH_H_

#include <span>
#include <vector>

#include "baseline/general_match.h"
#include "baseline/rtree.h"
#include "match/query_types.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {

class DMatch {
 public:
  struct Options {
    size_t window = 64;   // w
    size_t paa_dims = 4;  // f
    size_t rtree_fanout = 16;
  };

  DMatch(const TimeSeries& series, const PrefixStats& prefix,
         Options options);

  /// RSM-DTW ε-match with band width `rho`. |Q| must be >= 2w - 1 so every
  /// subsequence contains at least one disjoint data window.
  std::vector<MatchResult> Match(std::span<const double> q, double epsilon,
                                 size_t rho,
                                 RtreeMatchStats* stats = nullptr) const;

  uint64_t IndexBytes() const { return tree_.ApproximateBytes(); }
  double BuildSeconds() const { return build_seconds_; }

 private:
  const TimeSeries& series_;
  const PrefixStats& prefix_;
  Options options_;
  RTree tree_;
  double build_seconds_ = 0.0;
};

}  // namespace kvmatch

#endif  // KVMATCH_BASELINE_DMATCH_H_
