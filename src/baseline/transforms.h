// Feature transforms for the R-tree baselines: PAA (piecewise aggregate
// approximation). PAA satisfies (w/f)·Σ(paa_i − paa'_i)² ≤ ED²(S, S'),
// which makes R-tree box queries safe (no false dismissals).
#ifndef KVMATCH_BASELINE_TRANSFORMS_H_
#define KVMATCH_BASELINE_TRANSFORMS_H_

#include <span>
#include <vector>

#include "baseline/rtree.h"

namespace kvmatch {

/// PAA of a length-w series into f coefficients (w must be >= f; trailing
/// remainder points fold into the last coefficient).
std::vector<double> Paa(std::span<const double> s, size_t f);

/// The R-tree box that safely contains every PAA point within ED-distance
/// `radius` of `center`: per-dimension half-width radius / sqrt(w/f).
Rect PaaQueryRect(const std::vector<double>& center, size_t w, double radius);

/// Box built from per-dimension [lo, hi] PAA envelopes (DMatch / DTW side)
/// expanded by `radius` as in PaaQueryRect.
Rect PaaEnvelopeRect(const std::vector<double>& lo,
                     const std::vector<double>& hi, size_t w, double radius);

}  // namespace kvmatch

#endif  // KVMATCH_BASELINE_TRANSFORMS_H_
