// FAST baseline (Li et al., EDBT'17): UCR Suite plus additional lower
// bounds to reduce distance computations (paper §VIII-A3, §IX).
//
// Our reconstruction adds, ahead of the UCR cascade:
//  * a PAA window-mean prefilter (LB_PAA-style) over precomputed sliding
//    window sums — cheap per offset, with the data-preparation overhead the
//    paper observes making FAST slower than UCR for ED;
//  * for DTW, the LB_Kim + LB_Keogh cascade of UCR with an extra
//    data-side envelope bound (LB_Keogh EC: query against the candidate's
//    envelope), the classic "second Keogh pass".
#ifndef KVMATCH_BASELINE_FAST_MATCHER_H_
#define KVMATCH_BASELINE_FAST_MATCHER_H_

#include <span>
#include <vector>

#include "match/query_types.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {

struct FastStats {
  uint64_t offsets_scanned = 0;
  uint64_t constraint_pruned = 0;
  uint64_t paa_pruned = 0;
  uint64_t lb_kim_pruned = 0;
  uint64_t lb_keogh_pruned = 0;
  uint64_t lb_keogh_ec_pruned = 0;
  uint64_t distance_calls = 0;
  double prepare_ms = 0.0;  // data-preparation overhead per query
};

class FastMatcher {
 public:
  FastMatcher(const TimeSeries& series, const PrefixStats& prefix)
      : series_(series), prefix_(prefix) {}

  std::vector<MatchResult> Match(std::span<const double> q,
                                 const QueryParams& params,
                                 FastStats* stats = nullptr) const;

 private:
  const TimeSeries& series_;
  const PrefixStats& prefix_;
};

}  // namespace kvmatch

#endif  // KVMATCH_BASELINE_FAST_MATCHER_H_
