// FRM (Faloutsos et al., SIGMOD'94) and Dual-Match (Moon et al., ICDE'01)
// under the General Match umbrella (Moon et al., SIGMOD'02): R-tree based
// RSM-ED baselines (paper §VIII-A3, §IX).
//
// The `stride` parameter is General Match's J:
//   J = 1  -> FRM: every sliding data window is indexed; the query is
//             split into disjoint windows, each issuing one range query of
//             radius ε/√p; candidates are the UNION across windows.
//   J = w  -> Dual-Match: only disjoint data windows are indexed; every
//             sliding query window issues a range query of radius ε/√p_d.
// Intermediate J interpolates (data windows every J positions; query
// windows at all J alignments).
//
// Verification (phase 2) reuses the library's Verifier so the comparison
// against KV-match isolates candidate generation + index access cost.
#ifndef KVMATCH_BASELINE_GENERAL_MATCH_H_
#define KVMATCH_BASELINE_GENERAL_MATCH_H_

#include <span>
#include <vector>

#include "baseline/rtree.h"
#include "match/query_types.h"
#include "ts/stats_oracle.h"
#include "ts/time_series.h"

namespace kvmatch {

struct RtreeMatchStats {
  uint64_t index_accesses = 0;  // R-tree nodes visited
  uint64_t range_queries = 0;
  uint64_t candidate_positions = 0;  // final candidate count (post union)
  uint64_t distance_calls = 0;
  uint64_t lb_pruned = 0;
  double phase1_ms = 0.0;
  double phase2_ms = 0.0;
  /// Per-query-window candidate counts before the union (Table VII).
  std::vector<uint64_t> per_window_candidates;
};

class GeneralMatch {
 public:
  struct Options {
    size_t window = 50;    // w
    size_t paa_dims = 4;   // f
    size_t stride = 1;     // J: 1 = FRM, window = Dual-Match
    size_t rtree_fanout = 16;
  };

  /// Builds the R-tree over `series` (STR bulk load).
  GeneralMatch(const TimeSeries& series, const PrefixStats& prefix,
               Options options);

  /// RSM-ED ε-match. |Q| must be >= window.
  std::vector<MatchResult> Match(std::span<const double> q, double epsilon,
                                 RtreeMatchStats* stats = nullptr) const;

  uint64_t IndexBytes() const { return tree_.ApproximateBytes(); }
  double BuildSeconds() const { return build_seconds_; }
  const Options& options() const { return options_; }

 private:
  const TimeSeries& series_;
  const PrefixStats& prefix_;
  Options options_;
  RTree tree_;
  double build_seconds_ = 0.0;
};

}  // namespace kvmatch

#endif  // KVMATCH_BASELINE_GENERAL_MATCH_H_
