#include "baseline/transforms.h"

#include <cmath>

namespace kvmatch {

std::vector<double> Paa(std::span<const double> s, size_t f) {
  std::vector<double> out(f, 0.0);
  const size_t w = s.size();
  const size_t seg = w / f;
  for (size_t i = 0; i < f; ++i) {
    const size_t begin = i * seg;
    const size_t end = (i + 1 == f) ? w : begin + seg;
    double sum = 0.0;
    for (size_t k = begin; k < end; ++k) sum += s[k];
    out[i] = sum / static_cast<double>(end - begin);
  }
  return out;
}

Rect PaaQueryRect(const std::vector<double>& center, size_t w,
                  double radius) {
  const size_t f = center.size();
  const double half =
      radius / std::sqrt(static_cast<double>(w) / static_cast<double>(f));
  Rect rect;
  rect.lo.resize(f);
  rect.hi.resize(f);
  for (size_t i = 0; i < f; ++i) {
    rect.lo[i] = center[i] - half;
    rect.hi[i] = center[i] + half;
  }
  return rect;
}

Rect PaaEnvelopeRect(const std::vector<double>& lo,
                     const std::vector<double>& hi, size_t w, double radius) {
  const size_t f = lo.size();
  const double half =
      radius / std::sqrt(static_cast<double>(w) / static_cast<double>(f));
  Rect rect;
  rect.lo.resize(f);
  rect.hi.resize(f);
  for (size_t i = 0; i < f; ++i) {
    rect.lo[i] = lo[i] - half;
    rect.hi[i] = hi[i] + half;
  }
  return rect;
}

}  // namespace kvmatch
