#include "baseline/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace kvmatch {

bool Rect::Intersects(const Rect& o) const {
  for (size_t d = 0; d < lo.size(); ++d) {
    if (hi[d] < o.lo[d] || o.hi[d] < lo[d]) return false;
  }
  return true;
}

bool Rect::ContainsPoint(const std::vector<double>& p) const {
  for (size_t d = 0; d < lo.size(); ++d) {
    if (p[d] < lo[d] || p[d] > hi[d]) return false;
  }
  return true;
}

void Rect::Enlarge(const Rect& o) {
  for (size_t d = 0; d < lo.size(); ++d) {
    lo[d] = std::min(lo[d], o.lo[d]);
    hi[d] = std::max(hi[d], o.hi[d]);
  }
}

double Rect::Volume() const {
  double v = 1.0;
  for (size_t d = 0; d < lo.size(); ++d) v *= hi[d] - lo[d];
  return v;
}

double Rect::EnlargementNeeded(const Rect& o) const {
  double enlarged = 1.0;
  for (size_t d = 0; d < lo.size(); ++d) {
    enlarged *= std::max(hi[d], o.hi[d]) - std::min(lo[d], o.lo[d]);
  }
  return enlarged - Volume();
}

struct RTree::Node {
  bool leaf = true;
  Rect mbr;
  // Leaf: (rect, id); internal: children with their MBRs.
  std::vector<std::pair<Rect, int64_t>> entries;
  std::vector<std::unique_ptr<Node>> children;

  void RecomputeMbr() {
    if (leaf) {
      if (entries.empty()) return;
      mbr = entries[0].first;
      for (size_t i = 1; i < entries.size(); ++i) mbr.Enlarge(entries[i].first);
    } else {
      if (children.empty()) return;
      mbr = children[0]->mbr;
      for (size_t i = 1; i < children.size(); ++i) mbr.Enlarge(children[i]->mbr);
    }
  }
};

RTree::RTree(size_t dims, size_t max_entries)
    : dims_(dims),
      max_entries_(std::max<size_t>(4, max_entries)),
      min_entries_(std::max<size_t>(2, max_entries * 2 / 5)),
      root_(std::make_unique<Node>()) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::Insert(const Rect& rect, int64_t id) {
  assert(rect.lo.size() == dims_);
  std::unique_ptr<Node> split;
  InsertRec(root_.get(), rect, id, 0, &split);
  if (split != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
  }
  ++size_;
}

void RTree::InsertRec(Node* node, const Rect& rect, int64_t id, int level,
                      std::unique_ptr<Node>* split_out) {
  if (node->leaf) {
    node->entries.emplace_back(rect, id);
    if (node->entries.size() == 1) {
      node->mbr = rect;
    } else {
      node->mbr.Enlarge(rect);
    }
    if (node->entries.size() > max_entries_) *split_out = SplitNode(node);
    return;
  }
  // Choose the child needing least enlargement (ties: smaller volume).
  size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_vol = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->children.size(); ++i) {
    const double enl = node->children[i]->mbr.EnlargementNeeded(rect);
    const double vol = node->children[i]->mbr.Volume();
    if (enl < best_enl || (enl == best_enl && vol < best_vol)) {
      best = i;
      best_enl = enl;
      best_vol = vol;
    }
  }
  std::unique_ptr<Node> child_split;
  InsertRec(node->children[best].get(), rect, id, level + 1, &child_split);
  node->mbr.Enlarge(rect);
  if (child_split != nullptr) {
    node->children.push_back(std::move(child_split));
    if (node->children.size() > max_entries_) *split_out = SplitNode(node);
  }
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  // Quadratic split (Guttman): pick the two seeds wasting the most area
  // together, then assign remaining entries greedily.
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  auto rect_of = [&](size_t i) -> const Rect& {
    return node->leaf ? node->entries[i].first : node->children[i]->mbr;
  };
  const size_t count =
      node->leaf ? node->entries.size() : node->children.size();

  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      Rect combined = rect_of(i);
      combined.Enlarge(rect_of(j));
      const double waste =
          combined.Volume() - rect_of(i).Volume() - rect_of(j).Volume();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  // Distribute: group A stays in node, group B moves to sibling.
  std::vector<std::pair<Rect, int64_t>> entries;
  std::vector<std::unique_ptr<Node>> children;
  entries.swap(node->entries);
  children.swap(node->children);

  Rect mbr_a = node->leaf ? entries[seed_a].first : children[seed_a]->mbr;
  Rect mbr_b = node->leaf ? entries[seed_b].first : children[seed_b]->mbr;

  auto push = [&](size_t i, bool to_a) {
    if (node->leaf) {
      (to_a ? node->entries : sibling->entries).push_back(std::move(entries[i]));
    } else {
      (to_a ? node->children : sibling->children)
          .push_back(std::move(children[i]));
    }
  };
  push(seed_a, true);
  push(seed_b, false);
  size_t count_a = 1, count_b = 1;

  for (size_t i = 0; i < count; ++i) {
    if (i == seed_a || i == seed_b) continue;
    // Copy: push() moves the entry out from under a reference.
    const Rect r = node->leaf ? entries[i].first : children[i]->mbr;
    const size_t remaining = count - i;
    bool to_a;
    // Force-assign to keep the minimum fill.
    if (count_a + remaining <= min_entries_) {
      to_a = true;
    } else if (count_b + remaining <= min_entries_) {
      to_a = false;
    } else {
      const double enl_a = mbr_a.EnlargementNeeded(r);
      const double enl_b = mbr_b.EnlargementNeeded(r);
      to_a = enl_a < enl_b || (enl_a == enl_b && count_a <= count_b);
    }
    push(i, to_a);
    if (to_a) {
      mbr_a.Enlarge(r);
      ++count_a;
    } else {
      mbr_b.Enlarge(r);
      ++count_b;
    }
  }
  node->RecomputeMbr();
  sibling->RecomputeMbr();
  return sibling;
}

void RTree::BulkLoad(std::vector<std::pair<Rect, int64_t>> items) {
  size_ = items.size();
  if (items.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }
  // STR-style load: sort by the first dimension's center and tile into
  // leaf-sized runs. (Classic STR uses per-dim slabs; for the PAA-point
  // workloads of the baselines the first dimension already clusters well,
  // and queries touch contiguous runs.)
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    return a.first.lo[0] + a.first.hi[0] < b.first.lo[0] + b.first.hi[0];
  });
  std::vector<std::unique_ptr<Node>> level;
  for (size_t i = 0; i < items.size(); i += max_entries_) {
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    const size_t end = std::min(items.size(), i + max_entries_);
    for (size_t k = i; k < end; ++k) leaf->entries.push_back(std::move(items[k]));
    leaf->RecomputeMbr();
    level.push_back(std::move(leaf));
  }
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    for (size_t i = 0; i < level.size(); i += max_entries_) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      const size_t end = std::min(level.size(), i + max_entries_);
      for (size_t k = i; k < end; ++k) parent->children.push_back(std::move(level[k]));
      parent->RecomputeMbr();
      next.push_back(std::move(parent));
    }
    level = std::move(next);
  }
  root_ = std::move(level[0]);
}

uint64_t RTree::RangeQuery(const Rect& query,
                           std::vector<int64_t>* out) const {
  uint64_t visited = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++visited;
    if (node->leaf) {
      for (const auto& [rect, id] : node->entries) {
        if (rect.Intersects(query)) out->push_back(id);
      }
    } else {
      for (const auto& child : node->children) {
        if (child->mbr.Intersects(query)) stack.push_back(child.get());
      }
    }
  }
  return visited;
}

uint64_t RTree::ApproximateBytes() const {
  // Entries dominate: each holds 2 f-dim double vectors + an id; nodes add
  // MBRs. Walk the tree.
  uint64_t bytes = 0;
  std::vector<const Node*> stack = {root_.get()};
  const uint64_t rect_bytes = 2 * dims_ * sizeof(double) + 32;
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    bytes += rect_bytes + 64;
    if (node->leaf) {
      bytes += node->entries.size() * (rect_bytes + sizeof(int64_t));
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return bytes;
}

}  // namespace kvmatch
