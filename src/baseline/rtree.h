// In-memory R-tree over f-dimensional boxes: the index substrate of the
// FRM / General Match / DMatch baselines (§VIII-A3, §IX).
//
// Supports STR bulk loading (sort-tile-recursive) for fast construction
// plus classic insert with quadratic split. Range queries count visited
// nodes — the "#index accesses" metric of Tables III/IV.
#ifndef KVMATCH_BASELINE_RTREE_H_
#define KVMATCH_BASELINE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace kvmatch {

/// Axis-aligned box in f dimensions (f fixed per tree).
struct Rect {
  std::vector<double> lo;
  std::vector<double> hi;

  static Rect Point(const std::vector<double>& p) { return {p, p}; }

  bool Intersects(const Rect& o) const;
  bool ContainsPoint(const std::vector<double>& p) const;
  /// Grows to cover `o`.
  void Enlarge(const Rect& o);
  double Volume() const;
  double EnlargementNeeded(const Rect& o) const;
};

class RTree {
 public:
  /// `dims` is the dimensionality, `max_entries` the node fanout M
  /// (min fanout is M * 0.4).
  explicit RTree(size_t dims, size_t max_entries = 16);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Inserts a box with an opaque payload id.
  void Insert(const Rect& rect, int64_t id);

  /// STR bulk load: builds the tree from all items at once (replaces any
  /// current contents). Much faster than repeated Insert for large n.
  void BulkLoad(std::vector<std::pair<Rect, int64_t>> items);

  /// Appends ids of all entries whose box intersects `query` to `out`.
  /// Returns the number of tree nodes visited.
  uint64_t RangeQuery(const Rect& query, std::vector<int64_t>* out) const;

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }
  /// Approximate bytes used by nodes + entries (for Fig. 8-style size
  /// comparisons).
  uint64_t ApproximateBytes() const;

 private:
  struct Node;

  void InsertRec(Node* node, const Rect& rect, int64_t id, int level,
                 std::unique_ptr<Node>* split_out);
  std::unique_ptr<Node> SplitNode(Node* node);

  size_t dims_;
  size_t max_entries_;
  size_t min_entries_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace kvmatch

#endif  // KVMATCH_BASELINE_RTREE_H_
