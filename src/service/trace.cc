#include "service/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace kvmatch {

void QueryTrace::AddSpan(const char* name, Clock::time_point t0,
                         Clock::time_point t1,
                         std::vector<std::pair<std::string, uint64_t>> args) {
  TraceSpan span;
  span.name = name;
  span.start_ms = MsSinceOrigin(t0);
  span.dur_ms = std::max(0.0, MsSinceOrigin(t1) - span.start_ms);
  span.args = std::move(args);
  const std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t worker = workers_.size();
  for (const auto& [id, w] : workers_) {
    if (id == tid) {
      worker = w;
      break;
    }
  }
  if (worker == workers_.size()) workers_.emplace_back(tid, worker);
  span.worker = worker;
  spans_.push_back(std::move(span));
}

void QueryTrace::AddSpanAt(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> QueryTrace::spans() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_ms < b.start_ms;
                   });
  return out;
}

StageBreakdown ComputeStageBreakdown(const QueryTrace& trace) {
  StageBreakdown b;
  // Verify slices overlap under parallel verify; take the union extent.
  double verify_lo = 0.0, verify_hi = 0.0;
  bool have_verify = false;
  for (const TraceSpan& s : trace.spans()) {
    if (s.name == kSpanQueue) {
      b.queue_ms += s.dur_ms;
    } else if (s.name == kSpanProbe) {
      b.probe_ms += s.dur_ms;
    } else if (s.name == kSpanSerialize) {
      b.serialize_ms += s.dur_ms;
    } else if (s.name == kSpanVerify) {
      const double lo = s.start_ms, hi = s.start_ms + s.dur_ms;
      if (!have_verify) {
        verify_lo = lo;
        verify_hi = hi;
        have_verify = true;
      } else {
        verify_lo = std::min(verify_lo, lo);
        verify_hi = std::max(verify_hi, hi);
      }
    }
  }
  if (have_verify) b.verify_ms = verify_hi - verify_lo;
  return b;
}

namespace {

void AppendDouble(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

void AppendSpanArgsJson(const TraceSpan& span, std::string* out) {
  *out += "{";
  bool first = true;
  for (const auto& [key, value] : span.args) {
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    *out += JsonEscape(key);
    *out += "\":";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    *out += buf;
  }
  *out += "}";
}

}  // namespace

void AppendChromeTraceEvents(const QueryTrace& trace, uint64_t pid,
                             std::string* out) {
  bool first = out->empty() || out->back() == '[';
  for (const TraceSpan& span : trace.spans()) {
    if (!first) *out += ",";
    first = false;
    *out += "{\"name\":\"";
    *out += JsonEscape(span.name);
    *out += "\",\"ph\":\"X\",\"pid\":";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, pid);
    *out += buf;
    *out += ",\"tid\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, span.worker);
    *out += buf;
    *out += ",\"ts\":";
    AppendDouble(span.start_ms * 1000.0, out);  // chrome wants µs
    *out += ",\"dur\":";
    AppendDouble(span.dur_ms * 1000.0, out);
    *out += ",\"args\":";
    AppendSpanArgsJson(span, out);
    *out += "}";
  }
}

std::string TraceToChromeJson(const QueryTrace& trace) {
  std::string out = "{\"traceEvents\":[";
  AppendChromeTraceEvents(trace, 0, &out);
  out += "]}";
  return out;
}

std::string TraceToJsonLine(const std::string& series,
                            const std::string& status, double latency_ms,
                            const QueryTrace& trace) {
  std::string out = "{\"slow_query\":true,\"series\":\"";
  out += JsonEscape(series);
  out += "\",\"status\":\"";
  out += JsonEscape(status);
  out += "\",\"latency_ms\":";
  AppendDouble(latency_ms, &out);
  out += ",\"spans\":[";
  bool first = true;
  for (const TraceSpan& span : trace.spans()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(span.name);
    out += "\",\"start_ms\":";
    AppendDouble(span.start_ms, &out);
    out += ",\"dur_ms\":";
    AppendDouble(span.dur_ms, &out);
    out += ",\"worker\":";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, span.worker);
    out += buf;
    out += ",\"args\":";
    AppendSpanArgsJson(span, &out);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace kvmatch
