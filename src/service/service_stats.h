// Service-level observability: per-series throughput and latency plus the
// paper's per-query MatchStats/ProbeStats, aggregated across every request
// the QueryService executes. Feeds the bench harness, the CLI's
// batch-query / serve-bench tables, and the Prometheus STATS exposition.
//
// The hot path (RecordQuery and friends) is lock-free: every counter is a
// relaxed atomic and latencies go into striped LatencyHistograms, so a
// pool of workers finishing queries never serializes on a registry mutex.
// The per-series map itself is guarded by a shared_mutex taken shared for
// lookups (the common case — the series already exists) and exclusive
// only on first touch and Reset().
#ifndef KVMATCH_SERVICE_SERVICE_STATS_H_
#define KVMATCH_SERVICE_SERVICE_STATS_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "match/query_types.h"
#include "storage/instrumented_kvstore.h"

namespace kvmatch {

class EventLog;

/// Live state of the Catalog's MVCC machinery, filled by
/// QueryService::Stats() from Catalog::Gauges() (the registry itself does
/// not own the catalog).
struct CatalogGauges {
  uint64_t live_epochs = 0;         // series with a committed epoch
  uint64_t data_generations = 0;    // live shared data-chunk namespaces
  uint64_t pinned_snapshots = 0;    // retired generations held by readers
  uint64_t resident_series = 0;     // sessions in the open cache
  uint64_t resident_bytes = 0;      // open + retired-but-pinned bytes
  uint64_t memory_budget_bytes = 0;
  uint64_t ingest_state_bytes = 0;  // warm incremental-builder state
  uint64_t journal_replays = 0;     // recovery roll-backs + roll-forwards
  uint64_t orphans_swept = 0;       // at the catalog's open
  uint64_t series_evicted = 0;      // LRU evictions from the open cache
  /// Backend-specific gauges (KvStore::FillGauges), exposed as
  /// kvmatch_storage_<name>.
  std::vector<std::pair<std::string, uint64_t>> backend;
};

/// One epoch commit's measured breakdown, recorded by the Catalog.
struct CommitRecord {
  const char* kind = "";  // "create" | "append" | "replace"
  double total_ms = 0.0;
  double journal_ms = 0.0;  // intent-record write
  double data_ms = 0.0;     // chunk puts
  double index_ms = 0.0;    // γ-merge + index-row batches
  double header_ms = 0.0;   // header flip batch (SeriesStore header)
  double flip_ms = 0.0;     // directory-row flip + flush
  uint64_t chunk_rows = 0;
  uint64_t index_rows = 0;
  uint64_t bytes_written = 0;
  uint64_t batches = 0;
};

/// Latency distribution of a set of queries, in milliseconds. Percentiles
/// are derived from the log-bucketed histogram (within ~9% of exact).
struct LatencySummary {
  uint64_t count = 0;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Snapshot of one series' service-side counters.
struct SeriesStatsSnapshot {
  std::string series;
  uint64_t queries = 0;   // completed (ok or error), excludes rejections
  uint64_t errors = 0;
  double qps = 0.0;       // queries / seconds since the registry started
  LatencySummary latency;
  MatchStats match;       // aggregated over completed queries
};

/// Snapshot of the whole service.
struct ServiceStatsSnapshot {
  double elapsed_seconds = 0.0;
  uint64_t total_queries = 0;
  uint64_t total_errors = 0;
  uint64_t rejected = 0;           // queue-full load sheds
  uint64_t deadline_exceeded = 0;  // expired before execution
  uint64_t not_found = 0;          // requests for unregistered series
  /// Accepted requests not yet answered (queued or executing) — gauge.
  uint64_t in_flight = 0;
  /// Queries aborted by an explicit Cancel (queued or mid-execution).
  uint64_t cancelled = 0;
  /// Deadlines enforced *mid-execution* by the cooperative executor
  /// (distinct from `deadline_exceeded`, which never started running).
  uint64_t deadline_aborted_running = 0;
  // Thread-pool gauges, filled in by QueryService::Stats() (the registry
  // itself does not own the pool). workers_busy counts workers currently
  // inside a task; queue_depth counts tasks waiting for a worker — their
  // sum splits the `in_flight` conflation apart.
  uint64_t queue_depth = 0;
  uint64_t workers_busy = 0;
  uint64_t workers_total = 0;
  // Network front-end gauges; all zero when no server is attached.
  uint64_t connections_open = 0;
  uint64_t connections_accepted = 0;  // lifetime, includes open ones
  uint64_t connections_rejected = 0;  // over the connection limit
  uint64_t protocol_errors = 0;       // corrupt/malformed frames received
  // Reactor gauges (epoll event-loop server); zero without one attached.
  uint64_t net_outbox_bytes = 0;      // queued-unsent response bytes, live
  uint64_t net_reads_paused = 0;      // backpressure read-pauses, lifetime
  uint64_t net_loop_iterations = 0;   // epoll_wait returns
  uint64_t net_epoll_wakeups = 0;     // eventfd prods from worker threads
  // Ingest pipeline counters (catalog write path).
  uint64_t points_appended = 0;    // across create/append/replace
  uint64_t ingest_batches = 0;     // WriteBatches committed
  uint64_t epochs_retired = 0;     // generations superseded or dropped
  uint64_t series_dropped = 0;
  /// Current epoch per live series (gauge), sorted by name.
  std::vector<std::pair<std::string, uint64_t>> series_epochs;
  /// Lifetime points appended per series (counter), sorted by name.
  std::vector<std::pair<std::string, uint64_t>> series_ingest_points;
  LatencySummary latency;          // across all series
  /// Raw bucket counts behind `latency`, for the Prometheus
  /// `_bucket`/`_sum`/`_count` exposition.
  LatencyHistogram::Snapshot latency_hist;
  std::vector<SeriesStatsSnapshot> series;  // sorted by name
  // Storage-layer op metrics (InstrumentedKvStore); present only when a
  // catalog with an instrumented store attached its sink.
  bool has_storage = false;
  KvStoreStats::Snapshot storage;
  // Epoch-commit breakdown (catalog write path).
  uint64_t commits_create = 0;
  uint64_t commits_append = 0;
  uint64_t commits_replace = 0;
  uint64_t slow_commits = 0;
  LatencyHistogram::Snapshot commit_latency_hist;
  double commit_journal_ms = 0.0;  // cumulative per-stage wall time
  double commit_data_ms = 0.0;
  double commit_index_ms = 0.0;
  double commit_header_ms = 0.0;
  double commit_flip_ms = 0.0;
  uint64_t commit_chunk_rows = 0;
  uint64_t commit_index_rows = 0;
  uint64_t commit_bytes = 0;
  // Event-journal counters (EventLog::CountsByType), sorted by type.
  uint64_t events_total = 0;
  std::vector<std::pair<std::string, uint64_t>> event_counts;
  /// HTTP requests served by the /metrics responder.
  uint64_t http_requests = 0;
  /// Catalog MVCC gauges; all zero when no catalog fills them.
  CatalogGauges catalog;
};

/// Renders a snapshot as a Prometheus-style plaintext exposition:
/// service-wide counters, connection/pool gauges, the query-latency
/// histogram (`kvmatch_query_latency_ms_bucket{le="..."}` cumulative
/// lines plus `_sum`/`_count`), and per-series metrics with a
/// `series="<name>"` label (series names are [A-Za-z0-9._-] so no label
/// escaping is needed). Served over the wire as a STATS response.
std::string StatsToText(const ServiceStatsSnapshot& snapshot);

/// Thread-safe sink for per-request measurements. All record paths are
/// lock-free once a series has been seen (relaxed atomics + striped
/// histograms); only first-touch of a new series and administrative
/// updates (epoch gauges, Reset) take a lock.
class StatsRegistry {
 public:
  StatsRegistry();

  void RecordQuery(const std::string& series, double latency_ms,
                   const MatchStats& stats, bool ok);
  void RecordRejected();
  void RecordDeadlineExceeded(const std::string& series);
  /// Unknown-series request; counted service-wide, never per-series.
  void RecordLookupFailure();
  // In-flight gauge: Started when a request is accepted onto the queue,
  // Finished when its response is delivered (any outcome).
  void RecordQueryStarted();
  void RecordQueryFinished();
  /// Query aborted by an explicit Cancel (queued or mid-execution).
  void RecordCancelled(const std::string& series);
  /// Deadline enforced mid-execution by the cooperative executor.
  void RecordDeadlineAbortedRunning(const std::string& series);

  // Network front-end gauges, recorded by the TCP server.
  void RecordConnectionOpened();
  void RecordConnectionClosed();
  void RecordConnectionRejected();
  void RecordProtocolError();
  /// Live queued-but-unsent response bytes across every connection:
  /// positive deltas on enqueue, negative as the reactor writes them out
  /// (or drops them with a closing connection).
  void RecordNetOutboxBytes(int64_t delta);
  /// One backpressure read-pause (a connection's outbox hit its cap).
  void RecordNetReadPaused();
  /// Loop-health counters, exported by the reactor on its tick.
  void SetNetLoopCounters(uint64_t iterations, uint64_t wakeups);

  // Ingest pipeline metrics, recorded by the Catalog's write path.
  void RecordIngest(const std::string& series, uint64_t points,
                    uint64_t batches);
  /// One epoch commit's span breakdown.
  void RecordCommit(const CommitRecord& rec);
  /// A commit whose total latency crossed the catalog's slow threshold.
  void RecordSlowCommit();
  /// One request served by the HTTP /metrics responder.
  void RecordHttpRequest();

  /// Attaches the instrumented store's sink; Snapshot() folds it in and
  /// Reset() rebases it. shared_ptr: the sink outlives the catalog.
  void AttachStorage(std::shared_ptr<KvStoreStats> storage);
  /// Attaches the event journal; Snapshot() reads its per-type counters
  /// and Reset() rebases them (the flight-recorder ring is untouched).
  /// Not owned; must outlive this registry's use.
  void AttachEventLog(EventLog* events);
  /// Updates the per-series epoch gauge.
  void RecordEpochInstalled(const std::string& series, uint64_t epoch);
  void RecordEpochRetired();
  /// Drops the series' epoch gauge and counts the drop. The ingest-points
  /// counter survives (it is lifetime volume, not live state).
  void RecordSeriesDropped(const std::string& series);

  ServiceStatsSnapshot Snapshot() const;

  /// StatsToText(Snapshot()).
  std::string ToText() const;

  /// Resets every counter and restarts the QPS clock (bench warm-up).
  void Reset();

 private:
  /// Atomic mirror of MatchStats: counters as relaxed uint64 atomics,
  /// phase wall times as integer nanoseconds (atomic<double> has no
  /// portable lock-free fetch_add).
  struct AtomicMatchStats {
    std::atomic<uint64_t> index_accesses{0};
    std::atomic<uint64_t> rows_fetched{0};
    std::atomic<uint64_t> intervals_fetched{0};
    std::atomic<uint64_t> bytes_fetched{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> candidate_positions{0};
    std::atomic<uint64_t> candidate_intervals{0};
    std::atomic<uint64_t> distance_calls{0};
    std::atomic<uint64_t> lb_pruned{0};
    std::atomic<uint64_t> constraint_pruned{0};
    std::atomic<uint64_t> phase1_ns{0};
    std::atomic<uint64_t> phase2_ns{0};

    void Add(const MatchStats& s);
    MatchStats Load() const;
  };

  struct PerSeries {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> errors{0};
    AtomicMatchStats match;
    LatencyHistogram latency;
  };

  static LatencySummary Summarize(const LatencyHistogram::Snapshot& h);

  /// Shared-lock lookup; takes the exclusive lock only to insert.
  PerSeries* GetSeries(const std::string& series);

  mutable std::shared_mutex series_mu_;
  // shared_ptr so Snapshot()/Reset() can't free a PerSeries out from
  // under a concurrent lock-free recorder.
  std::map<std::string, std::shared_ptr<PerSeries>> series_;

  LatencyHistogram all_latency_;  // across every series

  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> not_found_{0};
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_aborted_running_{0};
  std::atomic<uint64_t> connections_open_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<int64_t> net_outbox_bytes_{0};
  std::atomic<uint64_t> net_reads_paused_{0};
  std::atomic<uint64_t> net_loop_iterations_{0};
  std::atomic<uint64_t> net_epoll_wakeups_{0};
  std::atomic<uint64_t> points_appended_{0};
  std::atomic<uint64_t> ingest_batches_{0};
  std::atomic<uint64_t> epochs_retired_{0};
  std::atomic<uint64_t> series_dropped_{0};
  std::atomic<uint64_t> http_requests_{0};

  // Commit-breakdown accumulators (stage times as integer nanoseconds —
  // atomic<double> has no portable lock-free fetch_add).
  std::atomic<uint64_t> commits_create_{0};
  std::atomic<uint64_t> commits_append_{0};
  std::atomic<uint64_t> commits_replace_{0};
  std::atomic<uint64_t> slow_commits_{0};
  std::atomic<uint64_t> commit_journal_ns_{0};
  std::atomic<uint64_t> commit_data_ns_{0};
  std::atomic<uint64_t> commit_index_ns_{0};
  std::atomic<uint64_t> commit_header_ns_{0};
  std::atomic<uint64_t> commit_flip_ns_{0};
  std::atomic<uint64_t> commit_chunk_rows_{0};
  std::atomic<uint64_t> commit_index_rows_{0};
  std::atomic<uint64_t> commit_bytes_{0};
  LatencyHistogram commit_latency_;

  // Cold administrative state: epoch gauges, per-series ingest totals,
  // and the QPS clock. Ingest is batched (catalog write path, not the
  // query hot path) so a plain mutex here is fine.
  mutable std::mutex gauge_mu_;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, uint64_t> epoch_gauges_;
  std::map<std::string, uint64_t> ingest_points_;
  std::shared_ptr<KvStoreStats> storage_;  // guarded by gauge_mu_
  EventLog* events_ = nullptr;             // guarded by gauge_mu_
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_SERVICE_STATS_H_
