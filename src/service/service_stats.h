// Service-level observability: per-series throughput and latency plus the
// paper's per-query MatchStats/ProbeStats, aggregated across every request
// the QueryService executes. Feeds the bench harness and the CLI's
// batch-query / serve-bench tables.
#ifndef KVMATCH_SERVICE_SERVICE_STATS_H_
#define KVMATCH_SERVICE_SERVICE_STATS_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "match/query_types.h"

namespace kvmatch {

/// Latency distribution of a set of queries, in milliseconds.
struct LatencySummary {
  uint64_t count = 0;
  double min_ms = 0.0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Snapshot of one series' service-side counters.
struct SeriesStatsSnapshot {
  std::string series;
  uint64_t queries = 0;   // completed (ok or error), excludes rejections
  uint64_t errors = 0;
  double qps = 0.0;       // queries / seconds since the registry started
  LatencySummary latency;
  MatchStats match;       // aggregated over completed queries
};

/// Snapshot of the whole service.
struct ServiceStatsSnapshot {
  double elapsed_seconds = 0.0;
  uint64_t total_queries = 0;
  uint64_t total_errors = 0;
  uint64_t rejected = 0;           // queue-full load sheds
  uint64_t deadline_exceeded = 0;  // expired before execution
  uint64_t not_found = 0;          // requests for unregistered series
  /// Accepted requests not yet answered (queued or executing) — gauge.
  uint64_t in_flight = 0;
  /// Queries aborted by an explicit Cancel (queued or mid-execution).
  uint64_t cancelled = 0;
  /// Deadlines enforced *mid-execution* by the cooperative executor
  /// (distinct from `deadline_exceeded`, which never started running).
  uint64_t deadline_aborted_running = 0;
  // Network front-end gauges; all zero when no server is attached.
  uint64_t connections_open = 0;
  uint64_t connections_accepted = 0;  // lifetime, includes open ones
  uint64_t connections_rejected = 0;  // over the connection limit
  uint64_t protocol_errors = 0;       // corrupt/malformed frames received
  // Ingest pipeline counters (catalog write path).
  uint64_t points_appended = 0;    // across create/append/replace
  uint64_t ingest_batches = 0;     // WriteBatches committed
  uint64_t epochs_retired = 0;     // generations superseded or dropped
  uint64_t series_dropped = 0;
  /// Current epoch per live series (gauge), sorted by name.
  std::vector<std::pair<std::string, uint64_t>> series_epochs;
  LatencySummary latency;          // across all series
  std::vector<SeriesStatsSnapshot> series;  // sorted by name
};

/// Renders a snapshot as a Prometheus-style plaintext exposition:
/// service-wide counters, connection gauges, and per-series metrics with
/// a `series="<name>"` label (series names are [A-Za-z0-9._-] so no label
/// escaping is needed). Served over the wire as a STATS response.
std::string StatsToText(const ServiceStatsSnapshot& snapshot);

/// Thread-safe sink for per-request measurements. Latencies are kept in a
/// bounded per-series reservoir (most recent kMaxSamples) for the
/// percentile estimate; counters and MatchStats aggregation are exact.
class StatsRegistry {
 public:
  StatsRegistry();

  void RecordQuery(const std::string& series, double latency_ms,
                   const MatchStats& stats, bool ok);
  void RecordRejected();
  void RecordDeadlineExceeded(const std::string& series);
  /// Unknown-series request; counted service-wide, never per-series.
  void RecordLookupFailure();
  // In-flight gauge: Started when a request is accepted onto the queue,
  // Finished when its response is delivered (any outcome).
  void RecordQueryStarted();
  void RecordQueryFinished();
  /// Query aborted by an explicit Cancel (queued or mid-execution).
  void RecordCancelled(const std::string& series);
  /// Deadline enforced mid-execution by the cooperative executor.
  void RecordDeadlineAbortedRunning(const std::string& series);

  // Network front-end gauges, recorded by the TCP server.
  void RecordConnectionOpened();
  void RecordConnectionClosed();
  void RecordConnectionRejected();
  void RecordProtocolError();

  // Ingest pipeline metrics, recorded by the Catalog's write path.
  void RecordIngest(const std::string& series, uint64_t points,
                    uint64_t batches);
  /// Updates the per-series epoch gauge.
  void RecordEpochInstalled(const std::string& series, uint64_t epoch);
  void RecordEpochRetired();
  /// Drops the series' epoch gauge and counts the drop.
  void RecordSeriesDropped(const std::string& series);

  ServiceStatsSnapshot Snapshot() const;

  /// StatsToText(Snapshot()).
  std::string ToText() const;

  /// Resets every counter and restarts the QPS clock (bench warm-up).
  void Reset();

 private:
  static constexpr size_t kMaxSamples = 1 << 16;

  struct PerSeries {
    uint64_t queries = 0;
    uint64_t errors = 0;
    MatchStats match;
    std::vector<double> latencies_ms;  // ring buffer of recent samples
    size_t next_sample = 0;
    double lat_min = 0.0, lat_max = 0.0, lat_sum = 0.0;
  };

  static LatencySummary Summarize(const PerSeries& s);

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point start_;
  std::map<std::string, PerSeries> series_;
  uint64_t rejected_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t not_found_ = 0;
  uint64_t in_flight_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t deadline_aborted_running_ = 0;
  uint64_t connections_open_ = 0;
  uint64_t connections_accepted_ = 0;
  uint64_t connections_rejected_ = 0;
  uint64_t protocol_errors_ = 0;
  uint64_t points_appended_ = 0;
  uint64_t ingest_batches_ = 0;
  uint64_t epochs_retired_ = 0;
  uint64_t series_dropped_ = 0;
  std::map<std::string, uint64_t> epoch_gauges_;
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_SERVICE_STATS_H_
