// SeriesIngestor: the streaming write path of the catalog (ROADMAP's
// "catalog ingest pipeline").
//
// Points are fed in chunks; each level of the KV-matchDP index stack is
// maintained by an IncrementalIndexBuilder, so appending k points costs
// O(k · levels) bucket updates — no O(n) rebuild — and the γ-merge runs
// once per Commit. Commit persists into two caller-chosen namespaces: the
// chunked data rows land in a shared data namespace starting at a caller
// supplied offset (so an append writes only the grown tail, never the
// chunks a previous commit already wrote), while the index stack and the
// series header are written fresh under the per-epoch namespace. Writes
// are grouped into bounded WriteBatches so each chunk of the series lands
// atomically and peak batch memory stays flat.
//
// The Catalog drives one SeriesIngestor per mutable series and commits
// every generation under a fresh epoch namespace; the ingestor itself
// knows nothing about epochs or the commit journal.
//
// Not thread-safe: the Catalog serializes all ingest work.
#ifndef KVMATCH_SERVICE_INGEST_H_
#define KVMATCH_SERVICE_INGEST_H_

#include <span>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "matchdp/session.h"
#include "storage/kvstore.h"
#include "ts/time_series.h"

namespace kvmatch {

/// Per-stage measurements of one Commit, for the catalog's commit spans
/// and the ingest bench's write-amplification table.
struct CommitBreakdown {
  double data_ms = 0.0;    // chunk-row batches
  double index_ms = 0.0;   // γ-merge snapshots + index-row batches
  double header_ms = 0.0;  // final header batch
  uint64_t chunk_rows = 0;
  uint64_t index_rows = 0;     // index rows + per-level meta rows
  uint64_t bytes_written = 0;  // encoded bytes across all batches
};

class SeriesIngestor {
 public:
  /// `options` fixes the index layout (wu, levels, width) and the data
  /// chunk size for every Commit of this ingestor.
  explicit SeriesIngestor(Session::Options options);

  /// Streams `values` into the logical series and every index level.
  void Append(std::span<const double> values);

  size_t size() const { return series_.size(); }
  const TimeSeries& series() const { return series_; }

  /// Approximate resident bytes of the ingest state (series values +
  /// per-level builder rows).
  uint64_t MemoryBytes() const;

  /// Target encoded bytes per commit batch (data chunks are grouped up to
  /// this size; each index level commits as its own batch).
  static constexpr uint64_t kBatchTargetBytes = 1ull << 20;

  /// Persists the current state: chunk rows into `data_ns` starting at
  /// the chunk containing `from_offset` (pass 0 to write the whole
  /// series, or the previously committed length to write only the grown
  /// tail — the partial last chunk is rewritten, full older chunks are
  /// not), then the index stack under epoch_ns + "idx/", and — in the
  /// final batch — the series header under epoch_ns + "data/" with a
  /// redirect to `data_ns`, so the epoch only becomes openable once it is
  /// complete. `batches_committed` (may be null) reports how many
  /// WriteBatches were applied; `breakdown` (may be null) receives the
  /// per-stage timings and row/byte counts. On failure the namespaces are
  /// left partially written; the caller owns cleanup (the Catalog's
  /// journal rolls abandoned commits back).
  Status Commit(KvStore* store, const std::string& epoch_ns,
                const std::string& data_ns, uint64_t from_offset,
                uint64_t* batches_committed,
                CommitBreakdown* breakdown = nullptr) const;

 private:
  Session::Options options_;
  TimeSeries series_;
  std::vector<IncrementalIndexBuilder> builders_;  // one per index level
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_INGEST_H_
