// Fixed-size worker pool with a bounded FIFO task queue — the execution
// engine behind QueryService. Submission never blocks: when the queue is
// full the task is rejected with ResourceExhausted, pushing backpressure
// to the caller instead of letting an unbounded backlog grow (the
// load-shedding discipline a service fronting millions of users needs).
#ifndef KVMATCH_SERVICE_THREAD_POOL_H_
#define KVMATCH_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace kvmatch {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1). `max_queue` bounds the
  /// number of tasks waiting to run (not counting the ones executing);
  /// 0 means unbounded.
  explicit ThreadPool(size_t num_threads, size_t max_queue = 0);

  /// Drains: waits for all queued and running tasks to finish.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`. Returns ResourceExhausted (without running or storing
  /// `fn`) when the queue is at capacity or the pool is shutting down.
  Status Submit(std::function<void()> fn);

  /// Stops accepting work, runs everything already queued, joins workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t QueueDepth() const;
  /// Workers currently inside a task (utilization gauge). Approximate by
  /// nature — it races task pickup/completion — but never exceeds
  /// num_threads().
  size_t NumBusy() const { return busy_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t max_queue_ = 0;
  bool shutdown_ = false;
  std::atomic<size_t> busy_{0};
};

}  // namespace kvmatch

#endif  // KVMATCH_SERVICE_THREAD_POOL_H_
