#include "service/service_stats.h"

#include <algorithm>

namespace kvmatch {

namespace {

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(p * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

StatsRegistry::StatsRegistry() : start_(std::chrono::steady_clock::now()) {}

void StatsRegistry::RecordQuery(const std::string& series, double latency_ms,
                                const MatchStats& stats, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  PerSeries& s = series_[series];
  if (s.queries == 0) {
    s.lat_min = s.lat_max = latency_ms;
  } else {
    s.lat_min = std::min(s.lat_min, latency_ms);
    s.lat_max = std::max(s.lat_max, latency_ms);
  }
  s.queries += 1;
  s.lat_sum += latency_ms;
  if (!ok) s.errors += 1;
  s.match.Add(stats);
  if (s.latencies_ms.size() < kMaxSamples) {
    s.latencies_ms.push_back(latency_ms);
  } else {
    s.latencies_ms[s.next_sample] = latency_ms;
    s.next_sample = (s.next_sample + 1) % kMaxSamples;
  }
}

void StatsRegistry::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  rejected_ += 1;
}

void StatsRegistry::RecordLookupFailure() {
  // Deliberately not per-series: arbitrary unknown names must not grow
  // the series map without bound.
  std::lock_guard<std::mutex> lock(mu_);
  not_found_ += 1;
}

void StatsRegistry::RecordDeadlineExceeded(const std::string& series) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_exceeded_ += 1;
  (void)series;  // deadline misses never ran, so no per-series latency
}

LatencySummary StatsRegistry::Summarize(const PerSeries& s) {
  LatencySummary out;
  out.count = s.queries;
  if (s.queries == 0) return out;
  out.min_ms = s.lat_min;
  out.max_ms = s.lat_max;
  out.mean_ms = s.lat_sum / static_cast<double>(s.queries);
  out.p99_ms = Percentile(s.latencies_ms, 0.99);
  return out;
}

ServiceStatsSnapshot StatsRegistry::Snapshot() const {
  // Copy the raw state under the lock, then sort/summarize outside it so a
  // monitoring poll never stalls workers mid-RecordQuery.
  std::map<std::string, PerSeries> series_copy;
  ServiceStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.elapsed_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    snap.rejected = rejected_;
    snap.deadline_exceeded = deadline_exceeded_;
    snap.not_found = not_found_;
    series_copy = series_;
  }

  PerSeries all;  // merged view for the service-wide latency summary
  for (const auto& [name, s] : series_copy) {
    SeriesStatsSnapshot out;
    out.series = name;
    out.queries = s.queries;
    out.errors = s.errors;
    out.qps = snap.elapsed_seconds > 0.0
                  ? static_cast<double>(s.queries) / snap.elapsed_seconds
                  : 0.0;
    out.latency = Summarize(s);
    out.match = s.match;
    snap.total_queries += s.queries;
    snap.total_errors += s.errors;

    if (all.queries == 0) {
      all.lat_min = s.lat_min;
      all.lat_max = s.lat_max;
    } else if (s.queries > 0) {
      all.lat_min = std::min(all.lat_min, s.lat_min);
      all.lat_max = std::max(all.lat_max, s.lat_max);
    }
    all.queries += s.queries;
    all.lat_sum += s.lat_sum;
    all.latencies_ms.insert(all.latencies_ms.end(), s.latencies_ms.begin(),
                            s.latencies_ms.end());
    snap.series.push_back(std::move(out));
  }
  snap.latency = Summarize(all);
  return snap;
}

void StatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  rejected_ = 0;
  deadline_exceeded_ = 0;
  not_found_ = 0;
  start_ = std::chrono::steady_clock::now();
}

}  // namespace kvmatch
