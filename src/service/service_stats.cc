#include "service/service_stats.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "common/event_log.h"

namespace kvmatch {

namespace {

constexpr double kNsPerMs = 1e6;

uint64_t ToNs(double ms) {
  return ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * kNsPerMs);
}

}  // namespace

void StatsRegistry::AtomicMatchStats::Add(const MatchStats& s) {
  const auto add = [](std::atomic<uint64_t>& a, uint64_t v) {
    if (v) a.fetch_add(v, std::memory_order_relaxed);
  };
  add(index_accesses, s.probe.index_accesses);
  add(rows_fetched, s.probe.rows_fetched);
  add(intervals_fetched, s.probe.intervals_fetched);
  add(bytes_fetched, s.probe.bytes_fetched);
  add(cache_hits, s.probe.cache_hits);
  add(candidate_positions, s.candidate_positions);
  add(candidate_intervals, s.candidate_intervals);
  add(distance_calls, s.distance_calls);
  add(lb_pruned, s.lb_pruned);
  add(constraint_pruned, s.constraint_pruned);
  add(phase1_ns, ToNs(s.phase1_ms));
  add(phase2_ns, ToNs(s.phase2_ms));
}

MatchStats StatsRegistry::AtomicMatchStats::Load() const {
  MatchStats out;
  out.probe.index_accesses = index_accesses.load(std::memory_order_relaxed);
  out.probe.rows_fetched = rows_fetched.load(std::memory_order_relaxed);
  out.probe.intervals_fetched =
      intervals_fetched.load(std::memory_order_relaxed);
  out.probe.bytes_fetched = bytes_fetched.load(std::memory_order_relaxed);
  out.probe.cache_hits = cache_hits.load(std::memory_order_relaxed);
  out.candidate_positions =
      candidate_positions.load(std::memory_order_relaxed);
  out.candidate_intervals =
      candidate_intervals.load(std::memory_order_relaxed);
  out.distance_calls = distance_calls.load(std::memory_order_relaxed);
  out.lb_pruned = lb_pruned.load(std::memory_order_relaxed);
  out.constraint_pruned = constraint_pruned.load(std::memory_order_relaxed);
  out.phase1_ms =
      static_cast<double>(phase1_ns.load(std::memory_order_relaxed)) /
      kNsPerMs;
  out.phase2_ms =
      static_cast<double>(phase2_ns.load(std::memory_order_relaxed)) /
      kNsPerMs;
  return out;
}

StatsRegistry::StatsRegistry() : start_(std::chrono::steady_clock::now()) {}

StatsRegistry::PerSeries* StatsRegistry::GetSeries(const std::string& series) {
  {
    std::shared_lock<std::shared_mutex> lock(series_mu_);
    auto it = series_.find(series);
    if (it != series_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(series_mu_);
  auto& slot = series_[series];
  if (!slot) slot = std::make_shared<PerSeries>();
  return slot.get();
}

void StatsRegistry::RecordQuery(const std::string& series, double latency_ms,
                                const MatchStats& stats, bool ok) {
  PerSeries* s = GetSeries(series);
  s->queries.fetch_add(1, std::memory_order_relaxed);
  if (!ok) s->errors.fetch_add(1, std::memory_order_relaxed);
  s->match.Add(stats);
  s->latency.Record(latency_ms);
  all_latency_.Record(latency_ms);
}

void StatsRegistry::RecordRejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordLookupFailure() {
  // Deliberately not per-series: arbitrary unknown names must not grow
  // the series map without bound.
  not_found_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordDeadlineExceeded(const std::string& series) {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  (void)series;  // deadline misses never ran, so no per-series latency
}

void StatsRegistry::RecordQueryStarted() {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordQueryFinished() {
  // fetch_sub with a floor: a Reset() racing a finish must not wrap the
  // gauge to 2^64.
  uint64_t cur = in_flight_.load(std::memory_order_relaxed);
  while (cur > 0 && !in_flight_.compare_exchange_weak(
                        cur, cur - 1, std::memory_order_relaxed)) {
  }
}

void StatsRegistry::RecordCancelled(const std::string& series) {
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  (void)series;  // aborted runs report no completion latency
}

void StatsRegistry::RecordDeadlineAbortedRunning(const std::string& series) {
  deadline_aborted_running_.fetch_add(1, std::memory_order_relaxed);
  (void)series;
}

void StatsRegistry::RecordConnectionOpened() {
  connections_open_.fetch_add(1, std::memory_order_relaxed);
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordConnectionClosed() {
  uint64_t cur = connections_open_.load(std::memory_order_relaxed);
  while (cur > 0 && !connections_open_.compare_exchange_weak(
                        cur, cur - 1, std::memory_order_relaxed)) {
  }
}

void StatsRegistry::RecordConnectionRejected() {
  connections_rejected_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordProtocolError() {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordNetOutboxBytes(int64_t delta) {
  net_outbox_bytes_.fetch_add(delta, std::memory_order_relaxed);
}

void StatsRegistry::RecordNetReadPaused() {
  net_reads_paused_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::SetNetLoopCounters(uint64_t iterations,
                                       uint64_t wakeups) {
  net_loop_iterations_.store(iterations, std::memory_order_relaxed);
  net_epoll_wakeups_.store(wakeups, std::memory_order_relaxed);
}

void StatsRegistry::RecordIngest(const std::string& series, uint64_t points,
                                 uint64_t batches) {
  points_appended_.fetch_add(points, std::memory_order_relaxed);
  ingest_batches_.fetch_add(batches, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(gauge_mu_);
  ingest_points_[series] += points;
}

void StatsRegistry::RecordEpochInstalled(const std::string& series,
                                         uint64_t epoch) {
  std::lock_guard<std::mutex> lock(gauge_mu_);
  epoch_gauges_[series] = epoch;
}

void StatsRegistry::RecordEpochRetired() {
  epochs_retired_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordCommit(const CommitRecord& rec) {
  const std::string_view kind = rec.kind;
  if (kind == "create") {
    commits_create_.fetch_add(1, std::memory_order_relaxed);
  } else if (kind == "append") {
    commits_append_.fetch_add(1, std::memory_order_relaxed);
  } else {
    commits_replace_.fetch_add(1, std::memory_order_relaxed);
  }
  commit_latency_.Record(rec.total_ms);
  const auto add = [](std::atomic<uint64_t>& a, uint64_t v) {
    if (v) a.fetch_add(v, std::memory_order_relaxed);
  };
  add(commit_journal_ns_, ToNs(rec.journal_ms));
  add(commit_data_ns_, ToNs(rec.data_ms));
  add(commit_index_ns_, ToNs(rec.index_ms));
  add(commit_header_ns_, ToNs(rec.header_ms));
  add(commit_flip_ns_, ToNs(rec.flip_ms));
  add(commit_chunk_rows_, rec.chunk_rows);
  add(commit_index_rows_, rec.index_rows);
  add(commit_bytes_, rec.bytes_written);
}

void StatsRegistry::RecordSlowCommit() {
  slow_commits_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::RecordHttpRequest() {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
}

void StatsRegistry::AttachStorage(std::shared_ptr<KvStoreStats> storage) {
  std::lock_guard<std::mutex> lock(gauge_mu_);
  storage_ = std::move(storage);
}

void StatsRegistry::AttachEventLog(EventLog* events) {
  std::lock_guard<std::mutex> lock(gauge_mu_);
  events_ = events;
}

void StatsRegistry::RecordSeriesDropped(const std::string& series) {
  series_dropped_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(gauge_mu_);
  epoch_gauges_.erase(series);
}

LatencySummary StatsRegistry::Summarize(
    const LatencyHistogram::Snapshot& h) {
  LatencySummary out;
  out.count = h.total;
  if (h.total == 0) return out;
  out.min_ms = h.min_ms;
  out.max_ms = h.max_ms;
  out.mean_ms = h.MeanMs();
  out.p50_ms = h.Percentile(0.50);
  out.p95_ms = h.Percentile(0.95);
  out.p99_ms = h.Percentile(0.99);
  return out;
}

ServiceStatsSnapshot StatsRegistry::Snapshot() const {
  ServiceStatsSnapshot snap;
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  snap.not_found = not_found_.load(std::memory_order_relaxed);
  snap.in_flight = in_flight_.load(std::memory_order_relaxed);
  snap.cancelled = cancelled_.load(std::memory_order_relaxed);
  snap.deadline_aborted_running =
      deadline_aborted_running_.load(std::memory_order_relaxed);
  snap.connections_open = connections_open_.load(std::memory_order_relaxed);
  snap.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  snap.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  snap.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  // The outbox gauge can transiently read negative (an enqueue's add and
  // the flusher's subtract are not one atomic step); clamp for display.
  snap.net_outbox_bytes = static_cast<uint64_t>(std::max<int64_t>(
      0, net_outbox_bytes_.load(std::memory_order_relaxed)));
  snap.net_reads_paused = net_reads_paused_.load(std::memory_order_relaxed);
  snap.net_loop_iterations =
      net_loop_iterations_.load(std::memory_order_relaxed);
  snap.net_epoll_wakeups =
      net_epoll_wakeups_.load(std::memory_order_relaxed);
  snap.points_appended = points_appended_.load(std::memory_order_relaxed);
  snap.ingest_batches = ingest_batches_.load(std::memory_order_relaxed);
  snap.epochs_retired = epochs_retired_.load(std::memory_order_relaxed);
  snap.series_dropped = series_dropped_.load(std::memory_order_relaxed);
  snap.http_requests = http_requests_.load(std::memory_order_relaxed);

  snap.commits_create = commits_create_.load(std::memory_order_relaxed);
  snap.commits_append = commits_append_.load(std::memory_order_relaxed);
  snap.commits_replace = commits_replace_.load(std::memory_order_relaxed);
  snap.slow_commits = slow_commits_.load(std::memory_order_relaxed);
  snap.commit_latency_hist = commit_latency_.TakeSnapshot();
  const auto ns_to_ms = [](const std::atomic<uint64_t>& a) {
    return static_cast<double>(a.load(std::memory_order_relaxed)) / kNsPerMs;
  };
  snap.commit_journal_ms = ns_to_ms(commit_journal_ns_);
  snap.commit_data_ms = ns_to_ms(commit_data_ns_);
  snap.commit_index_ms = ns_to_ms(commit_index_ns_);
  snap.commit_header_ms = ns_to_ms(commit_header_ns_);
  snap.commit_flip_ms = ns_to_ms(commit_flip_ns_);
  snap.commit_chunk_rows =
      commit_chunk_rows_.load(std::memory_order_relaxed);
  snap.commit_index_rows =
      commit_index_rows_.load(std::memory_order_relaxed);
  snap.commit_bytes = commit_bytes_.load(std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(gauge_mu_);
    if (storage_ != nullptr) {
      snap.has_storage = true;
      snap.storage = storage_->TakeSnapshot();
    }
    if (events_ != nullptr) {
      snap.events_total = events_->TotalEvents();
      snap.event_counts = events_->CountsByType();
    }
    snap.elapsed_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    snap.series_epochs.assign(epoch_gauges_.begin(), epoch_gauges_.end());
    snap.series_ingest_points.assign(ingest_points_.begin(),
                                     ingest_points_.end());
  }

  std::vector<std::pair<std::string, std::shared_ptr<PerSeries>>> live;
  {
    std::shared_lock<std::shared_mutex> lock(series_mu_);
    live.assign(series_.begin(), series_.end());  // std::map: sorted by name
  }
  for (const auto& [name, s] : live) {
    SeriesStatsSnapshot out;
    out.series = name;
    out.queries = s->queries.load(std::memory_order_relaxed);
    out.errors = s->errors.load(std::memory_order_relaxed);
    out.qps = snap.elapsed_seconds > 0.0
                  ? static_cast<double>(out.queries) / snap.elapsed_seconds
                  : 0.0;
    out.latency = Summarize(s->latency.TakeSnapshot());
    out.match = s->match.Load();
    snap.total_queries += out.queries;
    snap.total_errors += out.errors;
    snap.series.push_back(std::move(out));
  }
  snap.latency_hist = all_latency_.TakeSnapshot();
  snap.latency = Summarize(snap.latency_hist);
  return snap;
}

void StatsRegistry::Reset() {
  {
    std::unique_lock<std::shared_mutex> lock(series_mu_);
    series_.clear();
  }
  all_latency_.Reset();
  rejected_.store(0, std::memory_order_relaxed);
  deadline_exceeded_.store(0, std::memory_order_relaxed);
  not_found_.store(0, std::memory_order_relaxed);
  // in_flight_ is a live gauge owned by the QueryService's submit/finish
  // pairing (like connections_open_ below); resetting it would desync it.
  cancelled_.store(0, std::memory_order_relaxed);
  deadline_aborted_running_.store(0, std::memory_order_relaxed);
  // connections_open_ is a live gauge owned by the server's accept loop;
  // resetting it would desync the open/close pairing. Re-base the
  // lifetime counter so accepted >= open still holds.
  connections_accepted_.store(
      connections_open_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  connections_rejected_.store(0, std::memory_order_relaxed);
  protocol_errors_.store(0, std::memory_order_relaxed);
  // net_outbox_bytes_ is a live gauge owned by the reactor's enqueue/flush
  // pairing; the loop counters are absolute exports overwritten on every
  // tick — resetting either would desync them.
  net_reads_paused_.store(0, std::memory_order_relaxed);
  points_appended_.store(0, std::memory_order_relaxed);
  ingest_batches_.store(0, std::memory_order_relaxed);
  epochs_retired_.store(0, std::memory_order_relaxed);
  series_dropped_.store(0, std::memory_order_relaxed);
  http_requests_.store(0, std::memory_order_relaxed);
  commits_create_.store(0, std::memory_order_relaxed);
  commits_append_.store(0, std::memory_order_relaxed);
  commits_replace_.store(0, std::memory_order_relaxed);
  slow_commits_.store(0, std::memory_order_relaxed);
  commit_journal_ns_.store(0, std::memory_order_relaxed);
  commit_data_ns_.store(0, std::memory_order_relaxed);
  commit_index_ns_.store(0, std::memory_order_relaxed);
  commit_header_ns_.store(0, std::memory_order_relaxed);
  commit_flip_ns_.store(0, std::memory_order_relaxed);
  commit_chunk_rows_.store(0, std::memory_order_relaxed);
  commit_index_rows_.store(0, std::memory_order_relaxed);
  commit_bytes_.store(0, std::memory_order_relaxed);
  commit_latency_.Reset();
  std::lock_guard<std::mutex> lock(gauge_mu_);
  // epoch_gauges_ describes the catalog's current state, not this
  // registry's history; a stats rebase must not forget it.
  ingest_points_.clear();
  // The attached storage histograms and event counters are part of this
  // registry's exposition: a rebase that skipped them would make `stats
  // --watch` deltas drift. The event log's flight-recorder ring is
  // deliberately untouched (it is incident history, not a counter).
  if (storage_ != nullptr) storage_->Reset();
  if (events_ != nullptr) events_->ResetCounters();
  start_ = std::chrono::steady_clock::now();
}

std::string StatsRegistry::ToText() const { return StatsToText(Snapshot()); }

namespace {

void EmitCounter(std::string* out, const char* name, uint64_t value) {
  out->append(name);
  out->append(" ");
  out->append(std::to_string(value));
  out->append("\n");
}

void EmitGauge(std::string* out, const std::string& name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out->append(name);
  out->append(" ");
  out->append(buf);
  out->append("\n");
}

// `extra_labels` is either empty or a "key=\"value\"," prefix for the
// stat label, e.g. "series=\"s0\",".
void EmitLatency(std::string* out, const std::string& name,
                 const std::string& extra_labels,
                 const LatencySummary& latency) {
  const auto emit = [&](const char* stat, double value) {
    EmitGauge(out,
              name + "{" + extra_labels + "stat=\"" + stat + "\"}", value);
  };
  emit("min", latency.min_ms);
  emit("mean", latency.mean_ms);
  emit("p50", latency.p50_ms);
  emit("p95", latency.p95_ms);
  emit("p99", latency.p99_ms);
  emit("max", latency.max_ms);
}

// Prometheus histogram exposition: cumulative buckets. Buckets with no
// observations are skipped (200 mostly-empty lines per poll would drown
// the dump) except the mandatory le="+Inf" terminator.
void EmitHistogram(std::string* out, const std::string& name,
                   const LatencyHistogram::Snapshot& h) {
  uint64_t cum = 0;
  for (size_t i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    if (h.counts[i] == 0) continue;
    cum += h.counts[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g",
                  LatencyHistogram::BucketUpperBoundMs(i));
    EmitCounter(out, (name + "_bucket{le=\"" + buf + "\"}").c_str(), cum);
  }
  EmitCounter(out, (name + "_bucket{le=\"+Inf\"}").c_str(), h.total);
  EmitGauge(out, name + "_sum", h.sum_ms);
  EmitCounter(out, (name + "_count").c_str(), h.total);
}

}  // namespace

std::string StatsToText(const ServiceStatsSnapshot& snap) {
  std::string out;
  out.reserve(2048 + 512 * snap.series.size());
  EmitGauge(&out, "kvmatch_uptime_seconds", snap.elapsed_seconds);
  EmitCounter(&out, "kvmatch_queries_total", snap.total_queries);
  EmitCounter(&out, "kvmatch_query_errors_total", snap.total_errors);
  EmitCounter(&out, "kvmatch_rejected_total", snap.rejected);
  EmitCounter(&out, "kvmatch_deadline_exceeded_total",
              snap.deadline_exceeded);
  EmitCounter(&out, "kvmatch_not_found_total", snap.not_found);
  EmitCounter(&out, "kvmatch_queries_in_flight", snap.in_flight);
  EmitCounter(&out, "kvmatch_queue_depth", snap.queue_depth);
  EmitCounter(&out, "kvmatch_workers_busy", snap.workers_busy);
  EmitCounter(&out, "kvmatch_workers_total", snap.workers_total);
  EmitCounter(&out, "kvmatch_cancelled_total", snap.cancelled);
  EmitCounter(&out, "kvmatch_deadline_aborted_running_total",
              snap.deadline_aborted_running);
  EmitCounter(&out, "kvmatch_connections_open", snap.connections_open);
  EmitCounter(&out, "kvmatch_connections_accepted_total",
              snap.connections_accepted);
  EmitCounter(&out, "kvmatch_connections_rejected_total",
              snap.connections_rejected);
  EmitCounter(&out, "kvmatch_protocol_errors_total", snap.protocol_errors);
  // Reactor (epoll event-loop server) gauges.
  EmitCounter(&out, "kvmatch_net_open_connections", snap.connections_open);
  EmitCounter(&out, "kvmatch_net_accept_refused_total",
              snap.connections_rejected);
  EmitCounter(&out, "kvmatch_net_outbox_bytes", snap.net_outbox_bytes);
  EmitCounter(&out, "kvmatch_net_reads_paused_total", snap.net_reads_paused);
  EmitCounter(&out, "kvmatch_net_loop_iterations_total",
              snap.net_loop_iterations);
  EmitCounter(&out, "kvmatch_net_epoll_wakeups_total",
              snap.net_epoll_wakeups);
  EmitCounter(&out, "kvmatch_ingest_points_total", snap.points_appended);
  EmitCounter(&out, "kvmatch_ingest_batches_total", snap.ingest_batches);
  EmitCounter(&out, "kvmatch_epochs_retired_total", snap.epochs_retired);
  EmitCounter(&out, "kvmatch_series_dropped_total", snap.series_dropped);
  EmitCounter(&out, "kvmatch_http_requests_total", snap.http_requests);

  // Catalog MVCC gauges (zero when no catalog fills them).
  EmitCounter(&out, "kvmatch_live_epochs", snap.catalog.live_epochs);
  EmitCounter(&out, "kvmatch_data_generations",
              snap.catalog.data_generations);
  EmitCounter(&out, "kvmatch_pinned_snapshots",
              snap.catalog.pinned_snapshots);
  EmitCounter(&out, "kvmatch_resident_series", snap.catalog.resident_series);
  EmitCounter(&out, "kvmatch_resident_bytes", snap.catalog.resident_bytes);
  EmitCounter(&out, "kvmatch_memory_budget_bytes",
              snap.catalog.memory_budget_bytes);
  EmitCounter(&out, "kvmatch_ingest_state_bytes",
              snap.catalog.ingest_state_bytes);
  EmitCounter(&out, "kvmatch_journal_replays_total",
              snap.catalog.journal_replays);
  EmitCounter(&out, "kvmatch_orphans_swept_total",
              snap.catalog.orphans_swept);
  EmitCounter(&out, "kvmatch_series_evicted_total",
              snap.catalog.series_evicted);
  for (const auto& [name, value] : snap.catalog.backend) {
    EmitCounter(&out, ("kvmatch_storage_" + name).c_str(), value);
  }

  // Storage-layer op metrics (instrumented KvStore decorator).
  if (snap.has_storage) {
    for (int op = 0; op < KvStoreStats::kNumOps; ++op) {
      const std::string label =
          std::string("{op=\"") + KvStoreStats::OpName(op) + "\"}";
      EmitCounter(&out, ("kvmatch_kvstore_ops_total" + label).c_str(),
                  snap.storage.ops[op].count);
      EmitCounter(&out, ("kvmatch_kvstore_errors_total" + label).c_str(),
                  snap.storage.ops[op].errors);
      EmitHistogram(&out,
                    std::string("kvmatch_kvstore_") +
                        KvStoreStats::OpName(op) + "_latency_ms",
                    snap.storage.ops[op].latency);
    }
    EmitCounter(&out, "kvmatch_kvstore_bytes_read_total",
                snap.storage.bytes_read);
    EmitCounter(&out, "kvmatch_kvstore_bytes_written_total",
                snap.storage.bytes_written);
    EmitCounter(&out, "kvmatch_kvstore_scan_rows_total",
                snap.storage.scan_rows);
    EmitHistogram(&out, "kvmatch_kvstore_batch_ops", snap.storage.batch_ops);
  }

  // Epoch-commit breakdown (ingest write path).
  EmitCounter(&out, "kvmatch_commits_total{kind=\"create\"}",
              snap.commits_create);
  EmitCounter(&out, "kvmatch_commits_total{kind=\"append\"}",
              snap.commits_append);
  EmitCounter(&out, "kvmatch_commits_total{kind=\"replace\"}",
              snap.commits_replace);
  EmitCounter(&out, "kvmatch_slow_commits_total", snap.slow_commits);
  EmitHistogram(&out, "kvmatch_commit_latency_ms", snap.commit_latency_hist);
  EmitGauge(&out, "kvmatch_commit_stage_ms_total{stage=\"journal\"}",
            snap.commit_journal_ms);
  EmitGauge(&out, "kvmatch_commit_stage_ms_total{stage=\"data\"}",
            snap.commit_data_ms);
  EmitGauge(&out, "kvmatch_commit_stage_ms_total{stage=\"index\"}",
            snap.commit_index_ms);
  EmitGauge(&out, "kvmatch_commit_stage_ms_total{stage=\"header\"}",
            snap.commit_header_ms);
  EmitGauge(&out, "kvmatch_commit_stage_ms_total{stage=\"flip\"}",
            snap.commit_flip_ms);
  EmitCounter(&out, "kvmatch_commit_chunk_rows_total",
              snap.commit_chunk_rows);
  EmitCounter(&out, "kvmatch_commit_index_rows_total",
              snap.commit_index_rows);
  EmitCounter(&out, "kvmatch_commit_bytes_total", snap.commit_bytes);

  // Event-journal counters.
  EmitCounter(&out, "kvmatch_events_emitted_total", snap.events_total);
  for (const auto& [type, count] : snap.event_counts) {
    EmitCounter(&out,
                ("kvmatch_events_total{type=\"" + type + "\"}").c_str(),
                count);
  }
  for (const auto& [name, epoch] : snap.series_epochs) {
    EmitCounter(&out, ("kvmatch_series_epoch{series=\"" + name + "\"}")
                          .c_str(),
                epoch);
  }
  for (const auto& [name, points] : snap.series_ingest_points) {
    EmitCounter(
        &out,
        ("kvmatch_series_ingest_points_total{series=\"" + name + "\"}")
            .c_str(),
        points);
  }
  EmitLatency(&out, "kvmatch_latency_ms", "", snap.latency);
  EmitHistogram(&out, "kvmatch_query_latency_ms", snap.latency_hist);
  for (const auto& s : snap.series) {
    const std::string label = "{series=\"" + s.series + "\"}";
    EmitCounter(&out, ("kvmatch_series_queries_total" + label).c_str(),
                s.queries);
    EmitCounter(&out, ("kvmatch_series_errors_total" + label).c_str(),
                s.errors);
    EmitGauge(&out, "kvmatch_series_qps" + label, s.qps);
    EmitLatency(&out, "kvmatch_series_latency_ms",
                "series=\"" + s.series + "\",", s.latency);
    EmitCounter(&out,
                ("kvmatch_series_candidates_total" + label).c_str(),
                s.match.candidate_positions);
    EmitCounter(&out,
                ("kvmatch_series_index_accesses_total" + label).c_str(),
                s.match.probe.index_accesses);
    EmitCounter(&out,
                ("kvmatch_series_distance_calls_total" + label).c_str(),
                s.match.distance_calls);
  }
  return out;
}

}  // namespace kvmatch
