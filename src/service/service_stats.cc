#include "service/service_stats.h"

#include <algorithm>
#include <cstdio>

namespace kvmatch {

namespace {

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(p * (samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

}  // namespace

StatsRegistry::StatsRegistry() : start_(std::chrono::steady_clock::now()) {}

void StatsRegistry::RecordQuery(const std::string& series, double latency_ms,
                                const MatchStats& stats, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  PerSeries& s = series_[series];
  if (s.queries == 0) {
    s.lat_min = s.lat_max = latency_ms;
  } else {
    s.lat_min = std::min(s.lat_min, latency_ms);
    s.lat_max = std::max(s.lat_max, latency_ms);
  }
  s.queries += 1;
  s.lat_sum += latency_ms;
  if (!ok) s.errors += 1;
  s.match.Add(stats);
  if (s.latencies_ms.size() < kMaxSamples) {
    s.latencies_ms.push_back(latency_ms);
  } else {
    s.latencies_ms[s.next_sample] = latency_ms;
    s.next_sample = (s.next_sample + 1) % kMaxSamples;
  }
}

void StatsRegistry::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  rejected_ += 1;
}

void StatsRegistry::RecordLookupFailure() {
  // Deliberately not per-series: arbitrary unknown names must not grow
  // the series map without bound.
  std::lock_guard<std::mutex> lock(mu_);
  not_found_ += 1;
}

void StatsRegistry::RecordDeadlineExceeded(const std::string& series) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_exceeded_ += 1;
  (void)series;  // deadline misses never ran, so no per-series latency
}

void StatsRegistry::RecordQueryStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_ += 1;
}

void StatsRegistry::RecordQueryFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) in_flight_ -= 1;
}

void StatsRegistry::RecordCancelled(const std::string& series) {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ += 1;
  (void)series;  // aborted runs report no completion latency
}

void StatsRegistry::RecordDeadlineAbortedRunning(const std::string& series) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_aborted_running_ += 1;
  (void)series;
}

void StatsRegistry::RecordConnectionOpened() {
  std::lock_guard<std::mutex> lock(mu_);
  connections_open_ += 1;
  connections_accepted_ += 1;
}

void StatsRegistry::RecordConnectionClosed() {
  std::lock_guard<std::mutex> lock(mu_);
  if (connections_open_ > 0) connections_open_ -= 1;
}

void StatsRegistry::RecordConnectionRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  connections_rejected_ += 1;
}

void StatsRegistry::RecordProtocolError() {
  std::lock_guard<std::mutex> lock(mu_);
  protocol_errors_ += 1;
}

void StatsRegistry::RecordIngest(const std::string& series, uint64_t points,
                                 uint64_t batches) {
  std::lock_guard<std::mutex> lock(mu_);
  points_appended_ += points;
  ingest_batches_ += batches;
  (void)series;  // per-series ingest volume can ride on the epoch gauge
}

void StatsRegistry::RecordEpochInstalled(const std::string& series,
                                         uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_gauges_[series] = epoch;
}

void StatsRegistry::RecordEpochRetired() {
  std::lock_guard<std::mutex> lock(mu_);
  epochs_retired_ += 1;
}

void StatsRegistry::RecordSeriesDropped(const std::string& series) {
  std::lock_guard<std::mutex> lock(mu_);
  series_dropped_ += 1;
  epoch_gauges_.erase(series);
}

LatencySummary StatsRegistry::Summarize(const PerSeries& s) {
  LatencySummary out;
  out.count = s.queries;
  if (s.queries == 0) return out;
  out.min_ms = s.lat_min;
  out.max_ms = s.lat_max;
  out.mean_ms = s.lat_sum / static_cast<double>(s.queries);
  out.p99_ms = Percentile(s.latencies_ms, 0.99);
  return out;
}

ServiceStatsSnapshot StatsRegistry::Snapshot() const {
  // Copy the raw state under the lock, then sort/summarize outside it so a
  // monitoring poll never stalls workers mid-RecordQuery.
  std::map<std::string, PerSeries> series_copy;
  ServiceStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.elapsed_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    snap.rejected = rejected_;
    snap.deadline_exceeded = deadline_exceeded_;
    snap.not_found = not_found_;
    snap.in_flight = in_flight_;
    snap.cancelled = cancelled_;
    snap.deadline_aborted_running = deadline_aborted_running_;
    snap.connections_open = connections_open_;
    snap.connections_accepted = connections_accepted_;
    snap.connections_rejected = connections_rejected_;
    snap.protocol_errors = protocol_errors_;
    snap.points_appended = points_appended_;
    snap.ingest_batches = ingest_batches_;
    snap.epochs_retired = epochs_retired_;
    snap.series_dropped = series_dropped_;
    snap.series_epochs.assign(epoch_gauges_.begin(), epoch_gauges_.end());
    series_copy = series_;
  }

  PerSeries all;  // merged view for the service-wide latency summary
  for (const auto& [name, s] : series_copy) {
    SeriesStatsSnapshot out;
    out.series = name;
    out.queries = s.queries;
    out.errors = s.errors;
    out.qps = snap.elapsed_seconds > 0.0
                  ? static_cast<double>(s.queries) / snap.elapsed_seconds
                  : 0.0;
    out.latency = Summarize(s);
    out.match = s.match;
    snap.total_queries += s.queries;
    snap.total_errors += s.errors;

    if (all.queries == 0) {
      all.lat_min = s.lat_min;
      all.lat_max = s.lat_max;
    } else if (s.queries > 0) {
      all.lat_min = std::min(all.lat_min, s.lat_min);
      all.lat_max = std::max(all.lat_max, s.lat_max);
    }
    all.queries += s.queries;
    all.lat_sum += s.lat_sum;
    all.latencies_ms.insert(all.latencies_ms.end(), s.latencies_ms.begin(),
                            s.latencies_ms.end());
    snap.series.push_back(std::move(out));
  }
  snap.latency = Summarize(all);
  return snap;
}

void StatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  rejected_ = 0;
  deadline_exceeded_ = 0;
  not_found_ = 0;
  // in_flight_ is a live gauge owned by the QueryService's submit/finish
  // pairing (like connections_open_ below); resetting it would desync it.
  cancelled_ = 0;
  deadline_aborted_running_ = 0;
  // connections_open_ is a live gauge owned by the server's accept loop;
  // resetting it would desync the open/close pairing. Re-base the
  // lifetime counter so accepted >= open still holds.
  connections_accepted_ = connections_open_;
  connections_rejected_ = 0;
  protocol_errors_ = 0;
  points_appended_ = 0;
  ingest_batches_ = 0;
  epochs_retired_ = 0;
  series_dropped_ = 0;
  // epoch_gauges_ describes the catalog's current state, not this
  // registry's history; a stats rebase must not forget it.
  start_ = std::chrono::steady_clock::now();
}

std::string StatsRegistry::ToText() const { return StatsToText(Snapshot()); }

namespace {

void EmitCounter(std::string* out, const char* name, uint64_t value) {
  out->append(name);
  out->append(" ");
  out->append(std::to_string(value));
  out->append("\n");
}

void EmitGauge(std::string* out, const std::string& name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out->append(name);
  out->append(" ");
  out->append(buf);
  out->append("\n");
}

// `extra_labels` is either empty or a "key=\"value\"," prefix for the
// stat label, e.g. "series=\"s0\",".
void EmitLatency(std::string* out, const std::string& name,
                 const std::string& extra_labels,
                 const LatencySummary& latency) {
  const auto emit = [&](const char* stat, double value) {
    EmitGauge(out,
              name + "{" + extra_labels + "stat=\"" + stat + "\"}", value);
  };
  emit("min", latency.min_ms);
  emit("mean", latency.mean_ms);
  emit("p99", latency.p99_ms);
  emit("max", latency.max_ms);
}

}  // namespace

std::string StatsToText(const ServiceStatsSnapshot& snap) {
  std::string out;
  out.reserve(1024 + 512 * snap.series.size());
  EmitGauge(&out, "kvmatch_uptime_seconds", snap.elapsed_seconds);
  EmitCounter(&out, "kvmatch_queries_total", snap.total_queries);
  EmitCounter(&out, "kvmatch_query_errors_total", snap.total_errors);
  EmitCounter(&out, "kvmatch_rejected_total", snap.rejected);
  EmitCounter(&out, "kvmatch_deadline_exceeded_total",
              snap.deadline_exceeded);
  EmitCounter(&out, "kvmatch_not_found_total", snap.not_found);
  EmitCounter(&out, "kvmatch_queries_in_flight", snap.in_flight);
  EmitCounter(&out, "kvmatch_cancelled_total", snap.cancelled);
  EmitCounter(&out, "kvmatch_deadline_aborted_running_total",
              snap.deadline_aborted_running);
  EmitCounter(&out, "kvmatch_connections_open", snap.connections_open);
  EmitCounter(&out, "kvmatch_connections_accepted_total",
              snap.connections_accepted);
  EmitCounter(&out, "kvmatch_connections_rejected_total",
              snap.connections_rejected);
  EmitCounter(&out, "kvmatch_protocol_errors_total", snap.protocol_errors);
  EmitCounter(&out, "kvmatch_ingest_points_total", snap.points_appended);
  EmitCounter(&out, "kvmatch_ingest_batches_total", snap.ingest_batches);
  EmitCounter(&out, "kvmatch_epochs_retired_total", snap.epochs_retired);
  EmitCounter(&out, "kvmatch_series_dropped_total", snap.series_dropped);
  for (const auto& [name, epoch] : snap.series_epochs) {
    EmitCounter(&out, ("kvmatch_series_epoch{series=\"" + name + "\"}")
                          .c_str(),
                epoch);
  }
  EmitLatency(&out, "kvmatch_latency_ms", "", snap.latency);
  for (const auto& s : snap.series) {
    const std::string label = "{series=\"" + s.series + "\"}";
    EmitCounter(&out, ("kvmatch_series_queries_total" + label).c_str(),
                s.queries);
    EmitCounter(&out, ("kvmatch_series_errors_total" + label).c_str(),
                s.errors);
    EmitGauge(&out, "kvmatch_series_qps" + label, s.qps);
    EmitLatency(&out, "kvmatch_series_latency_ms",
                "series=\"" + s.series + "\",", s.latency);
    EmitCounter(&out,
                ("kvmatch_series_candidates_total" + label).c_str(),
                s.match.candidate_positions);
    EmitCounter(&out,
                ("kvmatch_series_index_accesses_total" + label).c_str(),
                s.match.probe.index_accesses);
    EmitCounter(&out,
                ("kvmatch_series_distance_calls_total" + label).c_str(),
                s.match.distance_calls);
  }
  return out;
}

}  // namespace kvmatch
