#include "service/query_service.h"

#include <memory>
#include <thread>
#include <utility>

namespace kvmatch {

namespace {

size_t DefaultThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 4;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

QueryService::QueryService(Catalog* catalog)
    : QueryService(catalog, Options()) {}

QueryService::QueryService(Catalog* catalog, Options options)
    : catalog_(catalog),
      pool_(DefaultThreads(options.num_threads), options.max_queue) {}

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  const auto enqueued = std::chrono::steady_clock::now();
  const auto deadline =
      request.timeout_ms > 0.0
          ? enqueued + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               request.timeout_ms))
          : std::chrono::steady_clock::time_point::max();

  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();

  // The request is moved into the task; shared_ptr keeps the lambda
  // copyable for std::function.
  auto shared_request = std::make_shared<QueryRequest>(std::move(request));
  Status submitted = pool_.Submit([this, promise, shared_request, enqueued,
                                   deadline] {
    promise->set_value(Execute(*shared_request, enqueued, deadline));
  });
  if (!submitted.ok()) {
    stats_.RecordRejected();
    QueryResponse response;
    response.status = submitted;
    response.latency_ms = MsSince(enqueued);
    promise->set_value(std::move(response));
  }
  return future;
}

std::vector<std::future<QueryResponse>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(Submit(std::move(request)));
  return futures;
}

QueryResponse QueryService::Execute(
    const QueryRequest& request,
    std::chrono::steady_clock::time_point enqueued,
    std::chrono::steady_clock::time_point deadline) {
  QueryResponse response;
  if (std::chrono::steady_clock::now() > deadline) {
    stats_.RecordDeadlineExceeded(request.series);
    response.status = Status::DeadlineExceeded(
        "request expired after waiting in queue");
    response.latency_ms = MsSince(enqueued);
    return response;
  }

  auto session = catalog_->Acquire(request.series);
  if (!session.ok()) {
    response.status = session.status();
    response.latency_ms = MsSince(enqueued);
    stats_.RecordLookupFailure();
    return response;
  }

  Result<std::vector<MatchResult>> matches =
      request.top_k > 0
          ? (*session)->QueryTopK(request.query, request.params,
                                  request.top_k, request.topk_options)
          : (*session)->Query(request.query, request.params,
                              &response.stats);
  if (matches.ok()) {
    response.matches = std::move(matches).value();
  } else {
    response.status = matches.status();
  }
  response.latency_ms = MsSince(enqueued);
  stats_.RecordQuery(request.series, response.latency_ms, response.stats,
                     response.status.ok());
  return response;
}

}  // namespace kvmatch
