#include "service/query_service.h"

#include <memory>
#include <thread>
#include <utility>

namespace kvmatch {

namespace {

size_t DefaultThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 4;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Absolute deadline for a request submitted at `enqueued`; the clock's
/// max() means "no deadline". A non-positive budget maps to the enqueue
/// instant itself, i.e. already expired.
std::chrono::steady_clock::time_point ComputeDeadline(
    std::chrono::steady_clock::time_point enqueued, double timeout_ms) {
  if (timeout_ms == 0.0) return std::chrono::steady_clock::time_point::max();
  if (timeout_ms < 0.0) return enqueued;
  return enqueued + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(timeout_ms));
}

bool HasDeadline(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point::max();
}

}  // namespace

QueryService::QueryService(Catalog* catalog)
    : QueryService(catalog, Options()) {}

QueryService::QueryService(Catalog* catalog, Options options)
    : catalog_(catalog),
      pool_(DefaultThreads(options.num_threads), options.max_queue) {}

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  SubmitWithCallback(std::move(request), [promise](QueryResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

void QueryService::SubmitWithCallback(
    QueryRequest request, std::function<void(QueryResponse)> done) {
  const auto enqueued = std::chrono::steady_clock::now();
  const auto deadline = ComputeDeadline(enqueued, request.timeout_ms);

  // A budget that is already spent never deserves a queue slot: answer
  // right away instead of displacing a request that could still make it.
  if (HasDeadline(deadline) && deadline <= enqueued) {
    stats_.RecordDeadlineExceeded(request.series);
    QueryResponse response;
    response.status =
        Status::DeadlineExceeded("request budget spent before submission");
    done(std::move(response));
    return;
  }

  // The request and callback are moved into the task; shared_ptr keeps
  // the lambda copyable for std::function.
  auto shared_request = std::make_shared<QueryRequest>(std::move(request));
  auto shared_done =
      std::make_shared<std::function<void(QueryResponse)>>(std::move(done));
  Status submitted = pool_.Submit([this, shared_request, shared_done,
                                   enqueued, deadline] {
    (*shared_done)(Execute(*shared_request, enqueued, deadline));
  });
  if (!submitted.ok()) {
    stats_.RecordRejected();
    QueryResponse response;
    response.status = submitted;
    response.latency_ms = MsSince(enqueued);
    (*shared_done)(std::move(response));
  }
}

std::vector<std::future<QueryResponse>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(Submit(std::move(request)));
  return futures;
}

QueryResponse QueryService::Execute(
    const QueryRequest& request,
    std::chrono::steady_clock::time_point enqueued,
    std::chrono::steady_clock::time_point deadline) {
  QueryResponse response;
  // Checked at dequeue, before any work: a request that outlived its
  // budget in the queue is answered immediately, not run to completion.
  // `>=` (not `>`) so a zero-length budget can never slip through on a
  // coarse clock tick.
  if (HasDeadline(deadline) && std::chrono::steady_clock::now() >= deadline) {
    stats_.RecordDeadlineExceeded(request.series);
    response.status = Status::DeadlineExceeded(
        "request expired after waiting in queue");
    response.latency_ms = MsSince(enqueued);
    return response;
  }

  auto session = catalog_->Acquire(request.series);
  if (!session.ok()) {
    response.status = session.status();
    response.latency_ms = MsSince(enqueued);
    stats_.RecordLookupFailure();
    return response;
  }

  Result<std::vector<MatchResult>> matches =
      request.top_k > 0
          ? (*session)->QueryTopK(request.query, request.params,
                                  request.top_k, request.topk_options)
          : (*session)->Query(request.query, request.params,
                              &response.stats);
  if (matches.ok()) {
    response.matches = std::move(matches).value();
  } else {
    response.status = matches.status();
  }
  response.latency_ms = MsSince(enqueued);
  stats_.RecordQuery(request.series, response.latency_ms, response.stats,
                     response.status.ok());
  return response;
}

}  // namespace kvmatch
