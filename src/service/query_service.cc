#include "service/query_service.h"

#include <algorithm>
#include <condition_variable>
#include <thread>
#include <utility>

namespace kvmatch {

namespace {

size_t DefaultThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 4;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Absolute deadline for a request submitted at `enqueued`; the clock's
/// max() means "no deadline". A non-positive budget maps to the enqueue
/// instant itself, i.e. already expired.
std::chrono::steady_clock::time_point ComputeDeadline(
    std::chrono::steady_clock::time_point enqueued, double timeout_ms) {
  if (timeout_ms == 0.0) return std::chrono::steady_clock::time_point::max();
  if (timeout_ms < 0.0) return enqueued;
  return enqueued + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(timeout_ms));
}

bool HasDeadline(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point::max();
}

/// Shared state of one request's fanned-out verify phase. Slice indices
/// are claimed atomically, so every slice runs exactly once no matter how
/// many helpers actually got scheduled; the owning worker always claims
/// too, so completion never depends on idle pool capacity. Helpers hold
/// the state (and the pinned session) through a shared_ptr, so a helper
/// task that only gets dequeued after the owner already returned still
/// finds live memory and exits without claiming anything.
struct SliceFanout {
  std::shared_ptr<const Session> session;  // pins series/index memory
  /// Owned by the submitting worker's stack; safe because that worker
  /// waits for every *claimed* slice before returning, and a helper that
  /// arrives later finds no slice left to claim and never dereferences.
  QueryExecutor* executor = nullptr;
  /// ctx.cancel is likewise owned by the submitting worker for the whole
  /// fanout (it holds the token's shared_ptr across Execute()).
  ExecContext ctx;

  /// Optional streaming consumer (owned by the submitting worker, like
  /// executor/ctx). Flushed strictly in slice order under `mu`.
  const QueryExecutor::MatchSink* sink = nullptr;

  std::atomic<size_t> next{0};
  std::vector<Status> status;               // per slice
  std::vector<std::vector<MatchResult>> results;
  std::vector<MatchStats> stats;

  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;     // guarded by mu
  std::vector<char> done;   // per slice, guarded by mu
  size_t flush_next = 0;    // first unflushed slice, guarded by mu

  void RunSlices() {
    const size_t total = results.size();
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      auto part = executor->VerifySlice(i, ctx, &stats[i]);
      if (part.ok()) {
        results[i] = std::move(part).value();
      } else {
        status[i] = part.status();
      }
      std::lock_guard<std::mutex> lock(mu);
      completed += 1;
      done[i] = 1;
      if (sink != nullptr) {
        // In-order flush: emit every finished slice whose predecessors
        // have all been emitted, so the wire sees offset order even when
        // slices complete out of order. Whoever finishes slice
        // `flush_next` drains the run; the callback runs under `mu`,
        // which also serializes concurrent emitters.
        while (flush_next < total && done[flush_next]) {
          if (status[flush_next].ok() && !results[flush_next].empty()) {
            (*sink)(results[flush_next]);
            results[flush_next].clear();
            results[flush_next].shrink_to_fit();
          }
          flush_next += 1;
        }
      }
      if (completed == total) cv.notify_all();
    }
  }
};

}  // namespace

QueryService::QueryService(Catalog* catalog)
    : QueryService(catalog, Options()) {}

QueryService::QueryService(Catalog* catalog, Options options)
    : catalog_(catalog),
      options_(options),
      pool_(DefaultThreads(options.num_threads), options.max_queue) {}

std::future<QueryResponse> QueryService::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  SubmitWithCallback(std::move(request), [promise](QueryResponse response) {
    promise->set_value(std::move(response));
  });
  return future;
}

uint64_t QueryService::SubmitWithCallback(
    QueryRequest request, std::function<void(QueryResponse)> done) {
  const auto enqueued = std::chrono::steady_clock::now();
  const auto deadline = ComputeDeadline(enqueued, request.timeout_ms);

  // Every submission gets an id; only accepted ones get registered.
  std::shared_ptr<CancelToken> token = request.cancel;
  if (token == nullptr) token = std::make_shared<CancelToken>();
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    id = next_request_id_++;
  }

  // A budget that is already spent never deserves a queue slot: answer
  // right away instead of displacing a request that could still make it.
  if (HasDeadline(deadline) && deadline <= enqueued) {
    stats_.RecordDeadlineExceeded(request.series);
    QueryResponse response;
    response.status =
        Status::DeadlineExceeded("request budget spent before submission");
    done(std::move(response));
    return id;
  }

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_[id] = token;
  }
  stats_.RecordQueryStarted();

  // The request and callback are moved into the task; shared_ptr keeps
  // the lambda copyable for std::function.
  auto shared_request = std::make_shared<QueryRequest>(std::move(request));
  auto shared_done =
      std::make_shared<std::function<void(QueryResponse)>>(std::move(done));
  Status submitted = pool_.Submit([this, shared_request, shared_done, token,
                                   id, enqueued, deadline] {
    QueryResponse response =
        Execute(*shared_request, token, enqueued, deadline);
    Unregister(id);
    stats_.RecordQueryFinished();
    (*shared_done)(std::move(response));
  });
  if (!submitted.ok()) {
    Unregister(id);
    stats_.RecordQueryFinished();
    stats_.RecordRejected();
    QueryResponse response;
    response.status = submitted;
    response.latency_ms = MsSince(enqueued);
    (*shared_done)(std::move(response));
  }
  return id;
}

void QueryService::Unregister(uint64_t request_id) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.erase(request_id);
}

Status QueryService::Cancel(uint64_t request_id) {
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(request_id);
    if (it == inflight_.end()) {
      return Status::NotFound("request " + std::to_string(request_id) +
                              " is not in flight");
    }
    token = it->second;
  }
  token->Cancel();
  return Status::OK();
}

void QueryService::CancelAll() {
  std::vector<std::shared_ptr<CancelToken>> tokens;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    tokens.reserve(inflight_.size());
    for (auto& [id, token] : inflight_) tokens.push_back(token);
  }
  for (auto& token : tokens) token->Cancel();
}

size_t QueryService::InFlight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_.size();
}

std::vector<std::future<QueryResponse>> QueryService::SubmitBatch(
    std::vector<QueryRequest> requests) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(requests.size());
  for (auto& request : requests) futures.push_back(Submit(std::move(request)));
  return futures;
}

Status QueryService::ParallelVerify(
    const std::shared_ptr<const Session>& session, QueryExecutor* executor,
    const ExecContext& ctx, std::vector<MatchResult>* matches,
    MatchStats* stats, const QueryExecutor::MatchSink* sink) {
  const size_t num_slices = executor->num_slices();
  auto fanout = std::make_shared<SliceFanout>();
  fanout->session = session;
  fanout->executor = executor;
  fanout->ctx = ctx;
  fanout->sink = (sink != nullptr && *sink) ? sink : nullptr;
  fanout->status.assign(num_slices, Status::OK());
  fanout->results.resize(num_slices);
  fanout->stats.resize(num_slices);
  fanout->done.assign(num_slices, 0);

  // Opportunistic helpers: leave one worker for the owner itself, and
  // never mind a full queue — a rejected helper just means the owner
  // verifies more slices. Helpers never block, so they cannot deadlock
  // the pool the way a nested Submit-and-wait would.
  const size_t helpers = std::min(num_slices, pool_.num_threads()) - 1;
  for (size_t h = 0; h < helpers; ++h) {
    if (!pool_.Submit([fanout] { fanout->RunSlices(); }).ok()) break;
  }

  fanout->RunSlices();
  {
    std::unique_lock<std::mutex> lock(fanout->mu);
    fanout->cv.wait(lock, [&] { return fanout->completed == num_slices; });
  }

  Status overall = Status::OK();
  double phase2_ms = 0.0;
  size_t total = 0;
  for (size_t i = 0; i < num_slices; ++i) {
    // Per-slice wall times overlap under parallelism; report the phase as
    // the max slice time instead of their sum so phase2_ms stays a
    // wall-clock figure.
    phase2_ms = std::max(phase2_ms, fanout->stats[i].phase2_ms);
    fanout->stats[i].phase2_ms = 0.0;
    stats->Add(fanout->stats[i]);
    if (!fanout->status[i].ok() && overall.ok()) overall = fanout->status[i];
    total += fanout->results[i].size();
  }
  stats->phase2_ms += phase2_ms;
  if (!overall.ok()) return overall;
  matches->reserve(total);
  for (auto& part : fanout->results) {
    matches->insert(matches->end(), part.begin(), part.end());
  }
  return Status::OK();
}

QueryResponse QueryService::Execute(
    const QueryRequest& request, const std::shared_ptr<CancelToken>& token,
    std::chrono::steady_clock::time_point enqueued,
    std::chrono::steady_clock::time_point deadline) {
  QueryResponse response;
  if (request.collect_trace) {
    // Origin = submission instant, so span offsets line up with
    // latency_ms; the time between then and now is queue wait.
    response.trace = std::make_shared<QueryTrace>(enqueued);
    response.trace->AddSpan(
        kSpanQueue, enqueued, std::chrono::steady_clock::now(),
        {{"queue_depth", static_cast<uint64_t>(pool_.QueueDepth())}});
  }
  // Checked at dequeue, before any work: a request that was cancelled or
  // outlived its budget in the queue is answered immediately, not run.
  // `>=` (not `>`) so a zero-length budget can never slip through on a
  // coarse clock tick.
  if (token->cancelled()) {
    stats_.RecordCancelled(request.series);
    response.status = Status::Cancelled("request cancelled while queued");
    response.latency_ms = MsSince(enqueued);
    return response;
  }
  if (HasDeadline(deadline) && std::chrono::steady_clock::now() >= deadline) {
    stats_.RecordDeadlineExceeded(request.series);
    response.status = Status::DeadlineExceeded(
        "request expired after waiting in queue");
    response.latency_ms = MsSince(enqueued);
    return response;
  }

  auto session = catalog_->Acquire(request.series);
  if (!session.ok()) {
    response.status = session.status();
    response.latency_ms = MsSince(enqueued);
    stats_.RecordLookupFailure();
    return response;
  }

  ExecContext ctx;
  ctx.cancel = token.get();
  ctx.deadline = deadline;
  ctx.trace = response.trace.get();

  Result<std::vector<MatchResult>> matches = std::vector<MatchResult>{};
  if (request.top_k > 0) {
    // Top-k rides the single-shot wrapper: each ε-round is cancellable at
    // its own probe/slice checkpoints.
    matches = (*session)->QueryTopK(request.query, request.params,
                                    request.top_k, request.topk_options, ctx);
  } else {
    auto executor =
        (*session)->MakeExecutor(request.query, request.params);
    if (!executor.ok()) {
      matches = executor.status();
    } else {
      Status st = (*executor)->RunPhase1(ctx);
      if (!st.ok()) {
        response.stats.Add((*executor)->stats());  // partial phase-1
        matches = st;
      } else {
        const size_t num_slices =
            (*executor)->SliceCandidates(options_.verify_slice_positions);
        const QueryExecutor::MatchSink* sink =
            request.on_partial ? &request.on_partial : nullptr;
        if (options_.parallel_verify && num_slices >= 2 &&
            pool_.num_threads() >= 2) {
          std::vector<MatchResult> merged;
          st = ParallelVerify(*session, executor->get(), ctx, &merged,
                              &response.stats, sink);
          response.stats.Add((*executor)->stats());  // phase-1 counters
          if (st.ok()) {
            matches = std::move(merged);
          } else {
            matches = st;
          }
        } else {
          // Serial: Run() walks the prepared slices with per-slice ctx
          // checks and folds phase-1 + verify stats into one report.
          matches = (*executor)->Run(ctx, &response.stats, sink);
        }
      }
    }
  }

  response.latency_ms = MsSince(enqueued);
  if (matches.ok()) {
    response.matches = std::move(matches).value();
    stats_.RecordQuery(request.series, response.latency_ms, response.stats,
                       /*ok=*/true);
  } else {
    response.status = matches.status();
    if (response.status.IsCancelled()) {
      stats_.RecordCancelled(request.series);
    } else if (response.status.IsDeadlineExceeded()) {
      stats_.RecordDeadlineAbortedRunning(request.series);
    } else {
      stats_.RecordQuery(request.series, response.latency_ms, response.stats,
                         /*ok=*/false);
    }
  }
  return response;
}

}  // namespace kvmatch
