#include "service/ingest.h"

#include <algorithm>
#include <chrono>

#include "ts/series_store.h"

namespace kvmatch {

SeriesIngestor::SeriesIngestor(Session::Options options)
    : options_(options) {
  builders_.reserve(options_.levels);
  size_t w = options_.wu;
  for (size_t level = 0; level < options_.levels; ++level, w *= 2) {
    IndexBuildOptions opts;
    opts.window = w;
    opts.width = options_.width;
    builders_.emplace_back(opts);
  }
}

void SeriesIngestor::Append(std::span<const double> values) {
  series_.Extend(values);
  for (auto& builder : builders_) builder.AppendChunk(values);
}

uint64_t SeriesIngestor::MemoryBytes() const {
  uint64_t bytes = 8 * static_cast<uint64_t>(series_.size());
  for (const auto& builder : builders_) bytes += builder.ApproxMemoryBytes();
  return bytes;
}

Status SeriesIngestor::Commit(KvStore* store, const std::string& epoch_ns,
                              const std::string& data_ns,
                              uint64_t from_offset,
                              uint64_t* batches_committed,
                              CommitBreakdown* breakdown) const {
  using Clock = std::chrono::steady_clock;
  const auto stage_ms = [](Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  uint64_t batches = 0;
  uint64_t bytes_written = 0;
  WriteBatch batch;
  auto flush_batch = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    bytes_written += batch.ApproximateBytes();
    KVMATCH_RETURN_NOT_OK(store->Apply(batch));
    batch.Clear();
    ++batches;
    return Status::OK();
  };

  // Data: only the chunk rows from `from_offset`'s chunk on — everything
  // before it was written by an earlier commit into the same shared
  // namespace and is byte-identical (appends never change old values).
  // Rewriting the partial last chunk only grows it, which readers pinned
  // on an older header never notice (they stop at their own length).
  const auto data_t0 = Clock::now();
  uint64_t chunk_rows = 0;
  const size_t chunk = options_.series_chunk;
  const size_t first_chunk =
      (std::min<size_t>(from_offset, series_.size()) / chunk) * chunk;
  for (size_t offset = first_chunk; offset < series_.size();
       offset += chunk) {
    const size_t len = std::min(chunk, series_.size() - offset);
    SeriesStore::PutChunk(&batch, data_ns, offset,
                          series_.Subsequence(offset, len));
    ++chunk_rows;
    if (batch.ApproximateBytes() >= kBatchTargetBytes) {
      KVMATCH_RETURN_NOT_OK(flush_batch());
    }
  }
  KVMATCH_RETURN_NOT_OK(flush_batch());
  const double data_ms = stage_ms(data_t0);

  // Index stack: the γ-merge runs here, once per level per commit; each
  // level's rows + meta land as one atomic batch, versioned per epoch.
  const auto index_t0 = Clock::now();
  uint64_t index_rows = 0;
  for (const auto& builder : builders_) {
    const KvIndex index = builder.Snapshot();
    index.Persist(&batch,
                  epoch_ns + "idx/w" + std::to_string(index.window()) + "/");
    index_rows += batch.num_ops();
    KVMATCH_RETURN_NOT_OK(flush_batch());
  }
  const double index_ms = stage_ms(index_t0);

  // Header last: SeriesStore::Open (and therefore Session::Open) only
  // succeeds once every byte it will read exists. The header lives in the
  // epoch namespace but redirects chunk reads to the shared data rows.
  const auto header_t0 = Clock::now();
  SeriesStore::PutHeaderRedirect(&batch, epoch_ns + "data/", series_.size(),
                                 chunk, data_ns);
  KVMATCH_RETURN_NOT_OK(flush_batch());

  if (batches_committed != nullptr) *batches_committed = batches;
  if (breakdown != nullptr) {
    breakdown->data_ms = data_ms;
    breakdown->index_ms = index_ms;
    breakdown->header_ms = stage_ms(header_t0);
    breakdown->chunk_rows = chunk_rows;
    breakdown->index_rows = index_rows;
    breakdown->bytes_written = bytes_written;
  }
  return Status::OK();
}

}  // namespace kvmatch
