#include "service/ingest.h"

#include <algorithm>

#include "ts/series_store.h"

namespace kvmatch {

SeriesIngestor::SeriesIngestor(Session::Options options)
    : options_(options) {
  builders_.reserve(options_.levels);
  size_t w = options_.wu;
  for (size_t level = 0; level < options_.levels; ++level, w *= 2) {
    IndexBuildOptions opts;
    opts.window = w;
    opts.width = options_.width;
    builders_.emplace_back(opts);
  }
}

void SeriesIngestor::Append(std::span<const double> values) {
  series_.Extend(values);
  for (auto& builder : builders_) builder.AppendChunk(values);
}

uint64_t SeriesIngestor::MemoryBytes() const {
  uint64_t bytes = 8 * static_cast<uint64_t>(series_.size());
  for (const auto& builder : builders_) bytes += builder.ApproxMemoryBytes();
  return bytes;
}

Status SeriesIngestor::Commit(KvStore* store, const std::string& epoch_ns,
                              const std::string& data_ns,
                              uint64_t from_offset,
                              uint64_t* batches_committed) const {
  uint64_t batches = 0;
  WriteBatch batch;
  auto flush_batch = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    KVMATCH_RETURN_NOT_OK(store->Apply(batch));
    batch.Clear();
    ++batches;
    return Status::OK();
  };

  // Data: only the chunk rows from `from_offset`'s chunk on — everything
  // before it was written by an earlier commit into the same shared
  // namespace and is byte-identical (appends never change old values).
  // Rewriting the partial last chunk only grows it, which readers pinned
  // on an older header never notice (they stop at their own length).
  const size_t chunk = options_.series_chunk;
  const size_t first_chunk =
      (std::min<size_t>(from_offset, series_.size()) / chunk) * chunk;
  for (size_t offset = first_chunk; offset < series_.size();
       offset += chunk) {
    const size_t len = std::min(chunk, series_.size() - offset);
    SeriesStore::PutChunk(&batch, data_ns, offset,
                          series_.Subsequence(offset, len));
    if (batch.ApproximateBytes() >= kBatchTargetBytes) {
      KVMATCH_RETURN_NOT_OK(flush_batch());
    }
  }
  KVMATCH_RETURN_NOT_OK(flush_batch());

  // Index stack: the γ-merge runs here, once per level per commit; each
  // level's rows + meta land as one atomic batch, versioned per epoch.
  for (const auto& builder : builders_) {
    const KvIndex index = builder.Snapshot();
    index.Persist(&batch,
                  epoch_ns + "idx/w" + std::to_string(index.window()) + "/");
    KVMATCH_RETURN_NOT_OK(flush_batch());
  }

  // Header last: SeriesStore::Open (and therefore Session::Open) only
  // succeeds once every byte it will read exists. The header lives in the
  // epoch namespace but redirects chunk reads to the shared data rows.
  SeriesStore::PutHeaderRedirect(&batch, epoch_ns + "data/", series_.size(),
                                 chunk, data_ns);
  KVMATCH_RETURN_NOT_OK(flush_batch());

  if (batches_committed != nullptr) *batches_committed = batches;
  return Status::OK();
}

}  // namespace kvmatch
