#include "service/thread_pool.h"

namespace kvmatch {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::ResourceExhausted("pool is shut down");
    }
    if (max_queue_ > 0 && queue_.size() >= max_queue_) {
      return Status::ResourceExhausted("request queue full");
    }
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace kvmatch
