#include "service/catalog.h"

#include <cstdio>

namespace kvmatch {

namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string EncodeLayout(const Session::Options& o) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%zu %zu %.17g %zu %zu", o.wu, o.levels,
                o.width, o.row_cache_rows, o.series_chunk);
  return buf;
}

bool DecodeLayout(const std::string& in, Session::Options* o) {
  return std::sscanf(in.c_str(), "%zu %zu %lf %zu %zu", &o->wu, &o->levels,
                     &o->width, &o->row_cache_rows, &o->series_chunk) == 5;
}

}  // namespace

Catalog::Catalog(KvStore* store) : Catalog(store, Options()) {}

Catalog::Catalog(KvStore* store, Options options)
    : store_(store), options_(options) {
  // Directory rows live under "catalog/"; '0' is '/' + 1, so this scan
  // covers exactly the "catalog/<name>" range.
  for (auto it = store_->Scan("catalog/", "catalog0"); it->Valid();
       it->Next()) {
    const std::string name(it->key().substr(std::string("catalog/").size()));
    Session::Options layout = options_.session;
    if (!DecodeLayout(std::string(it->value()), &layout)) continue;
    directory_.emplace(name, layout);
  }
}

Status Catalog::Ingest(const std::string& name, TimeSeries series) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("bad series name: " + name);
  }
  // Whole-call serialization: two ingests must never write the store
  // concurrently (see the contract in the header).
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (directory_.count(name) > 0) {
      return Status::InvalidArgument("series already registered: " + name);
    }
  }

  // Build + persist outside mu_: ingest is slow and must not stall
  // queries against already-open sessions.
  auto session =
      Session::Ingest(store_, SeriesNs(name), std::move(series),
                      options_.session);
  if (!session.ok()) return session.status();
  KVMATCH_RETURN_NOT_OK(
      store_->Put(DirectoryKey(name), EncodeLayout(options_.session)));
  KVMATCH_RETURN_NOT_OK(store_->Flush());

  std::lock_guard<std::mutex> lock(mu_);
  if (!directory_.emplace(name, options_.session).second) {
    return Status::InvalidArgument("series already registered: " + name);
  }
  CacheLocked(name, std::shared_ptr<const Session>(
                        std::move(session).value().release()));
  return Status::OK();
}

Result<std::shared_ptr<const Session>> Catalog::Acquire(
    const std::string& name) {
  Session::Options layout;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_.count(name) > 0) return TouchLocked(name);
    auto dir = directory_.find(name);
    if (dir == directory_.end()) {
      return Status::NotFound("unknown series: " + name);
    }
    layout = dir->second;
  }

  // Open outside the lock; a racing thread may open the same series
  // concurrently — the loser's copy is discarded below, which only wastes
  // work, never correctness.
  auto session = Session::Open(store_, SeriesNs(name), layout);
  if (!session.ok()) return session.status();

  std::lock_guard<std::mutex> lock(mu_);
  if (open_.count(name) > 0) return TouchLocked(name);
  return CacheLocked(name, std::shared_ptr<const Session>(
                               std::move(session).value().release()));
}

std::shared_ptr<const Session> Catalog::TouchLocked(const std::string& name) {
  Entry& entry = open_.at(name);
  entry.last_used = ++tick_;
  // Re-measure: store-backed sessions grow as probes warm the row caches,
  // and the budget should see that growth.
  const uint64_t now_bytes = entry.session->MemoryBytes();
  open_bytes_ = open_bytes_ - entry.bytes + now_bytes;
  entry.bytes = now_bytes;
  std::shared_ptr<const Session> session = entry.session;
  EvictOverBudgetLocked(name);
  return session;
}

std::shared_ptr<const Session> Catalog::CacheLocked(
    const std::string& name, std::shared_ptr<const Session> session) {
  Entry entry;
  entry.session = session;
  entry.bytes = session->MemoryBytes();
  entry.last_used = ++tick_;
  open_bytes_ += entry.bytes;
  open_.emplace(name, std::move(entry));
  EvictOverBudgetLocked(name);
  return session;
}

void Catalog::EvictOverBudgetLocked(const std::string& protect) {
  if (options_.memory_budget_bytes == 0) return;
  while (open_bytes_ > options_.memory_budget_bytes && open_.size() > 1) {
    auto victim = open_.end();
    for (auto it = open_.begin(); it != open_.end(); ++it) {
      if (it->first == protect) continue;  // keep the entry just touched
      if (victim == open_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == open_.end()) break;
    open_bytes_ -= victim->second.bytes;
    open_.erase(victim);
  }
}

bool Catalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.count(name) > 0;
}

std::vector<std::string> Catalog::ListSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(directory_.size());
  for (const auto& [name, layout] : directory_) names.push_back(name);
  return names;
}

size_t Catalog::cached_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

uint64_t Catalog::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_bytes_;
}

}  // namespace kvmatch
